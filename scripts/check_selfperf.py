#!/usr/bin/env python3
"""Perf-regression gate: compare a fresh BENCH_selfperf.json against
the committed baseline.

Usage: check_selfperf.py BASELINE FRESH [--tolerance PCT]
                         [--floor KEY=VALUE]... [--ceiling KEY=VALUE]...

Throughput keys (*_per_sec, *_x ratios such as parallel_scaling_x,
batch_speedup_x and superblock_speedup_x, *_ops_per_round, and
*_rate ratios such as superblock_hit_rate) gate on slowdown: a fresh
run being slower than baseline by more than the tolerance fails;
being faster only prints a note (the committed baseline should then
be refreshed). A gated key present in only one of the two files is
itself a failure — a silently vanished (or never-committed) gate is
how regressions slip through, so the baseline must be refreshed
whenever the bench grows a gated key. --floor KEY=VALUE (repeatable) additionally enforces
an absolute minimum on a fresh-run key, independent of the baseline
— CI uses it to pin hard floors under the headline throughputs so a
slow creep across many refreshed baselines still gets caught. Latency keys (*_cycles — the PEC read-latency
percentiles) gate the other way: a fresh run exceeding the baseline
by more than the latency tolerance fails. They are measured in
*simulated* cycles on a fixed seed, so they are deterministic and
host-independent — the default latency tolerance is therefore 0%:
any increase is a real regression (or deliberate cost-model change)
in the PEC read fast path and must be acknowledged by refreshing the
baseline. --ceiling KEY=VALUE (repeatable) is the mirror of --floor:
an absolute maximum on a fresh-run key — CI uses it to cap overhead
metrics such as sentinel_overhead_pct. Keys ending in _pct are
informational overhead percentages, not throughputs: they are printed
but never gated except through an explicit --ceiling. Non-throughput,
non-latency keys (run_ticks, repetitions, parallel_jobs) must match
exactly, since differing run shapes make the numbers incomparable.
"""

import argparse
import json
import sys


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline")
    ap.add_argument("fresh")
    ap.add_argument("--tolerance", type=float, default=15.0,
                    help="allowed slowdown, percent (default 15)")
    ap.add_argument("--latency-tolerance", type=float, default=0.0,
                    help="allowed latency increase, percent (default 0:"
                         " the *_cycles keys are simulated-deterministic)")
    ap.add_argument("--floor", action="append", default=[],
                    metavar="KEY=VALUE",
                    help="absolute floor on a fresh-run key (repeatable);"
                         " fails if fresh[KEY] < VALUE")
    ap.add_argument("--ceiling", action="append", default=[],
                    metavar="KEY=VALUE",
                    help="absolute ceiling on a fresh-run key"
                         " (repeatable); fails if fresh[KEY] > VALUE")
    args = ap.parse_args()

    def parse_bounds(specs, flag):
        out = []
        for spec in specs:
            key, sep, text = spec.partition("=")
            if not sep or not key:
                ap.error(f"{flag} needs KEY=VALUE, got '{spec}'")
            try:
                out.append((key, float(text)))
            except ValueError:
                ap.error(f"{flag} value for '{key}' is not a number: "
                         f"'{text}'")
        return out

    floors = parse_bounds(args.floor, "--floor")
    ceilings = parse_bounds(args.ceiling, "--ceiling")

    def load(path, role):
        try:
            with open(path) as f:
                return json.load(f)
        except FileNotFoundError:
            print(f"check_selfperf: {role} file '{path}' does not exist"
                  f" — run bench_selfperf to produce it (it writes"
                  f" BENCH_selfperf.json into its working directory)",
                  file=sys.stderr)
            sys.exit(1)
        except json.JSONDecodeError as e:
            print(f"check_selfperf: {role} file '{path}' is not valid"
                  f" JSON ({e}) — rerun bench_selfperf; a truncated"
                  f" file usually means the bench was interrupted",
                  file=sys.stderr)
            sys.exit(1)

    base = load(args.baseline, "baseline")
    fresh = load(args.fresh, "fresh")

    gated_suffixes = ("_per_sec", "_x", "_ops_per_round", "_rate",
                      "_cycles")

    failures = []
    # A gated key the fresh bench emits but the committed baseline
    # lacks means the gate never ran for it: fail loudly instead of
    # letting an ungated number drift.
    for key in sorted(fresh.keys() - base.keys()):
        if key.endswith("_pct"):
            continue
        if key.endswith(gated_suffixes):
            failures.append(
                f"{key}: gated key missing from baseline "
                f"{args.baseline}; refresh the committed baseline")
    for key, base_val in sorted(base.items()):
        if key not in fresh:
            failures.append(f"{key}: missing from fresh run")
            continue
        fresh_val = fresh[key]
        if key.endswith("_cycles"):
            if base_val <= 0:
                failures.append(f"{key}: non-positive baseline {base_val}")
                continue
            delta_pct = 100.0 * (fresh_val - base_val) / base_val
            marker = "ok"
            if delta_pct > args.latency_tolerance:
                marker = "FAIL"
                failures.append(
                    f"{key}: {fresh_val} vs baseline {base_val} "
                    f"({delta_pct:+.1f}% > "
                    f"+{args.latency_tolerance:.0f}% budget)")
            elif delta_pct < 0:
                marker = "faster (consider refreshing the baseline)"
            print(f"  {key}: {base_val} -> {fresh_val} "
                  f"({delta_pct:+.1f}%) {marker}")
            continue
        if key.endswith("_pct"):
            # Overhead percentages vary with host load; print them for
            # the log but gate only through an explicit --ceiling.
            print(f"  {key}: {base_val:.2f} -> {fresh_val:.2f} "
                  f"(informational)")
            continue
        if not key.endswith(("_per_sec", "_x", "_ops_per_round",
                             "_rate")):
            if fresh_val != base_val:
                failures.append(
                    f"{key}: run shape changed ({base_val} -> "
                    f"{fresh_val}); refresh the baseline")
            continue
        if base_val <= 0:
            failures.append(f"{key}: non-positive baseline {base_val}")
            continue
        delta_pct = 100.0 * (fresh_val - base_val) / base_val
        marker = "ok"
        if delta_pct < -args.tolerance:
            marker = "FAIL"
            failures.append(
                f"{key}: {fresh_val:.2f} vs baseline {base_val:.2f} "
                f"({delta_pct:+.1f}% > -{args.tolerance:.0f}% budget)")
        elif delta_pct > args.tolerance:
            marker = "faster (consider refreshing the baseline)"
        print(f"  {key}: {base_val:.2f} -> {fresh_val:.2f} "
              f"({delta_pct:+.1f}%) {marker}")

    for key, want in floors:
        if key not in fresh:
            failures.append(f"{key}: --floor key missing from fresh run")
            continue
        have = fresh[key]
        marker = "ok"
        if have < want:
            marker = "FAIL"
            failures.append(f"{key}: {have} below floor {want}")
        print(f"  {key}: {have} >= floor {want} {marker}")

    for key, want in ceilings:
        if key not in fresh:
            failures.append(
                f"{key}: --ceiling key missing from fresh run"
                f" {args.fresh}; the bench that emits it did not run"
                f" (or dropped the key) — the gate cannot pass by"
                f" omission")
            continue
        have = fresh[key]
        marker = "ok"
        if have > want:
            marker = "FAIL"
            failures.append(f"{key}: {have} above ceiling {want}")
        print(f"  {key}: {have} <= ceiling {want} {marker}")

    if failures:
        print("\nperf gate FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print(f"\nperf gate passed (tolerance {args.tolerance:.0f}%)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
