/**
 * @file
 * E2 — Real-hardware analogue of the access-cost comparison.
 *
 * The container exposes no PMU (rdpmc would fault), so this bench
 * measures the host-silicon costs that bound each access method:
 *
 *   - rdtsc / fenced rdtsc: the userspace counter-read fast path the
 *     PEC read is built from (rdpmc costs within ~2x of rdtsc);
 *   - clock_gettime: the vDSO path — userspace, no kernel crossing;
 *   - getpid via syscall(2): the cheapest possible kernel crossing,
 *     a strict lower bound on any perf_event read() syscall;
 *   - pread of /proc/self/stat: a realistic "ask the kernel for
 *     accounting data" round trip, the perf/rusage class.
 *
 * Expected shape: the userspace paths sit one to two orders of
 * magnitude below anything that enters the kernel — the gap the
 * paper's fast reads exploit.
 */

#include <benchmark/benchmark.h>

#include <cstring>
#include <ctime>
#include <fcntl.h>
#include <vector>
#include <sys/syscall.h>
#include <unistd.h>

#if defined(__x86_64__)
#include <x86intrin.h>
#endif

namespace {

void
BM_rdtsc(benchmark::State &state)
{
#if defined(__x86_64__)
    for (auto _ : state) {
        benchmark::DoNotOptimize(__rdtsc());
    }
#else
    for (auto _ : state) {
        struct timespec ts;
        clock_gettime(CLOCK_MONOTONIC, &ts);
        benchmark::DoNotOptimize(ts);
    }
#endif
}
BENCHMARK(BM_rdtsc);

void
BM_rdtsc_fenced(benchmark::State &state)
{
#if defined(__x86_64__)
    unsigned aux = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(__rdtscp(&aux));
    }
#else
    for (auto _ : state) {
        struct timespec ts;
        clock_gettime(CLOCK_MONOTONIC, &ts);
        benchmark::DoNotOptimize(ts);
    }
#endif
}
BENCHMARK(BM_rdtsc_fenced);

void
BM_clock_gettime_vdso(benchmark::State &state)
{
    for (auto _ : state) {
        struct timespec ts;
        clock_gettime(CLOCK_MONOTONIC, &ts);
        benchmark::DoNotOptimize(ts);
    }
}
BENCHMARK(BM_clock_gettime_vdso);

void
BM_syscall_getpid(benchmark::State &state)
{
    for (auto _ : state) {
        benchmark::DoNotOptimize(syscall(SYS_getpid));
    }
}
BENCHMARK(BM_syscall_getpid);

void
BM_proc_self_stat_read(benchmark::State &state)
{
    const int fd = open("/proc/self/stat", O_RDONLY);
    if (fd < 0) {
        state.SkipWithError("cannot open /proc/self/stat");
        return;
    }
    char buf[512];
    for (auto _ : state) {
        const ssize_t n = pread(fd, buf, sizeof(buf), 0);
        benchmark::DoNotOptimize(n);
    }
    close(fd);
}
BENCHMARK(BM_proc_self_stat_read);

} // namespace

// Accept (and ignore) the suite-wide --seeds/--jobs/--trace/
// --trace-cap/--faults/--profile/--profile-out flags so drivers can
// pass a uniform command line to every bench; this one measures real
// host hardware, so simulated seeds, fan-out, tracing, fault
// injection and profiling do not apply.
int
main(int argc, char **argv)
{
    struct SuiteFlag
    {
        const char *name;
        bool takes_value;
    };
    const SuiteFlag suite_flags[] = {
        {"--seeds", true},     {"--jobs", true},
        {"--trace", true},     {"--trace-cap", true},
        {"--faults", true},    {"--profile-out", true},
        {"--profile", false},
    };
    auto is_suite_flag = [&](const char *arg, bool &consumes_next) {
        for (const SuiteFlag &flag : suite_flags) {
            const std::size_t len = std::strlen(flag.name);
            if (std::strncmp(arg, flag.name, len) != 0)
                continue;
            if (arg[len] == '=') {
                consumes_next = false; // value was inline
                return true;
            }
            if (arg[len] == '\0') {
                consumes_next = flag.takes_value;
                return true;
            }
        }
        return false;
    };
    std::vector<char *> kept;
    kept.push_back(argv[0]);
    for (int i = 1; i < argc; ++i) {
        bool consumes_next = false;
        if (is_suite_flag(argv[i], consumes_next)) {
            if (consumes_next && i + 1 < argc)
                ++i; // skip the flag's value too
            continue;
        }
        kept.push_back(argv[i]);
    }
    int kept_argc = static_cast<int>(kept.size());
    benchmark::Initialize(&kept_argc, kept.data());
    if (benchmark::ReportUnrecognizedArguments(kept_argc, kept.data()))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
