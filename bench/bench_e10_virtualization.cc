/**
 * @file
 * E10 — What virtualization and multiplexing cost.
 *
 * (a) Context-switch overhead as a function of how many counters the
 *     kernel must save/restore — the price of per-thread precision.
 * (b) Multiplexing error: four events rotated through one hardware
 *     counter over a phased (non-steady) workload, estimates compared
 *     with the exact ledger. Expected shape: switch cost grows
 *     linearly with saved counters; multiplexed estimates err by
 *     several percent and the error is workload-dependent — scaled
 *     extrapolations are not counts.
 */

#include <cmath>
#include <cstdio>
#include <vector>

#include "analysis/args.hh"
#include "analysis/bundle.hh"
#include "analysis/campaign.hh"
#include "analysis/profile_report.hh"
#include "analysis/trace_report.hh"
#include "os/sysno.hh"
#include "pec/pec.hh"
#include "stats/table.hh"

namespace {

using namespace limit;

double
switchCostWithCounters(unsigned counters, std::uint64_t seed,
                       const analysis::BenchArgs *trace = nullptr)
{
    analysis::SimBundle b(
        analysis::BundleOptions::builder()
            .cores(1)
            .quantum(10'000'000)
            .pmuCounters(8)
            .seed(1 + seed)
            .traceCapacity(trace ? trace->captureCap() : 0)
            .timelineInterval(
                trace ? trace->captureTimelineInterval() : 0)
            .build());
    pec::PecSession session(b.kernel());
    const sim::EventType evs[8] = {
        sim::EventType::Cycles,      sim::EventType::Instructions,
        sim::EventType::Loads,       sim::EventType::Stores,
        sim::EventType::Branches,    sim::EventType::BranchMisses,
        sim::EventType::L1DMiss,     sim::EventType::LLCMiss,
    };
    for (unsigned i = 0; i < counters; ++i)
        session.addEvent(i, evs[i]);

    for (int i = 0; i < 2; ++i) {
        b.kernel().spawn("t" + std::to_string(i),
                         [&](sim::Guest &g) -> sim::Task<void> {
                             for (int j = 0; j < 400; ++j) {
                                 co_await g.compute(100);
                                 co_await g.syscall(os::sysYield);
                             }
                             co_return;
                         });
    }
    b.machine().run();
    if (trace)
        analysis::writeStandardArtifacts(b, *trace, "bench_e10_virtualization");
    return static_cast<double>(analysis::totalEvent(
               b.kernel(), sim::EventType::Cycles,
               sim::PrivMode::Kernel)) /
           static_cast<double>(b.kernel().totalContextSwitches());
}

struct MuxResult
{
    double errInstr;
    double errLoads;
    double errBranches;
    double errStores;
    std::uint64_t rotations;
};

MuxResult
runMux(sim::Tick rotation_interval, std::uint64_t seed)
{
    analysis::SimBundle b(analysis::BundleOptions::builder()
                              .cores(2)
                              .seed(1 + seed)
                              .build());
    pec::MuxSession mux(b.kernel(), 0,
                        {{sim::EventType::Instructions, true, false},
                         {sim::EventType::Loads, true, false},
                         {sim::EventType::Branches, true, false},
                         {sim::EventType::Stores, true, false}});

    // Phased workload: alternating compute-heavy and memory-heavy
    // phases make per-event rates time-varying, which is where
    // duty-cycle scaling goes wrong.
    b.kernel().spawn("worker", [&](sim::Guest &g) -> sim::Task<void> {
        bool compute_phase = true;
        while (!g.shouldStop()) {
            if (compute_phase) {
                for (int i = 0; i < 400; ++i)
                    co_await g.compute(250);
            } else {
                for (int i = 0; i < 2000; ++i) {
                    co_await g.load(0x100000 + (i % 512) * 64);
                    co_await g.store(0x200000 + (i % 512) * 64);
                    co_await g.compute(4);
                }
            }
            compute_phase = !compute_phase;
        }
        co_return;
    });
    b.kernel().spawn("rotator", [&](sim::Guest &g) -> sim::Task<void> {
        while (!g.shouldStop()) {
            co_await g.syscall(os::sysSleep,
                               {rotation_interval, 0, 0, 0});
            co_await mux.rotate(g);
        }
        co_return;
    });
    const sim::Tick end = b.run(20'000'000);
    mux.finish(end);

    const auto &ledger = b.kernel().thread(0).ctx.ledger();
    auto err = [&](unsigned idx, sim::EventType e) {
        const double truth = static_cast<double>(
            ledger.count(e, sim::PrivMode::User));
        return 100.0 * std::fabs(mux.estimate(0, idx) - truth) / truth;
    };
    return {err(0, sim::EventType::Instructions),
            err(1, sim::EventType::Loads),
            err(2, sim::EventType::Branches),
            err(3, sim::EventType::Stores), mux.rotations()};
}

} // namespace

int
main(int argc, char **argv)
{
    using limit::stats::Table;

    const auto args = limit::analysis::parseBenchArgs(
        argc, argv, {.seeds = 1, .jobs = 1},
        "simulation seeds averaged per table row");
    const limit::analysis::CampaignOptions copts =
        limit::analysis::campaignOptions(args);

    const std::vector<unsigned> counter_counts = {0, 2, 4, 8};
    const std::vector<sim::Tick> intervals = {500'000, 150'000,
                                              50'000};

    // Both sub-experiments fan out in a single map: switch-cost jobs
    // first, then the multiplexing runs.
    const std::size_t n_switch = counter_counts.size() * args.seeds;
    const std::vector<MuxResult> mux_runs = limit::analysis::mapGuarded(
        copts, intervals.size() * args.seeds, [&](std::size_t i) {
            return runMux(intervals[i / args.seeds], i % args.seeds);
        });
    const std::vector<double> switch_costs = limit::analysis::mapGuarded(
        copts, n_switch, [&](std::size_t i) {
            return switchCostWithCounters(counter_counts[i / args.seeds],
                                          i % args.seeds);
        });

    Table t1("E10a: context-switch cost vs counters saved/restored");
    t1.header({"active counters", "kernel cycles per switch"});
    for (std::size_t c = 0; c < counter_counts.size(); ++c) {
        double sum = 0;
        for (unsigned s = 0; s < args.seeds; ++s)
            sum += switch_costs[c * args.seeds + s];
        t1.beginRow().cell(counter_counts[c]).cell(sum / args.seeds, 0);
    }
    std::fputs(t1.render().c_str(), stdout);

    Table t2("E10b: multiplexing estimate error (4 events on 1 "
             "counter, phased workload, 20M-cycle run)");
    t2.header({"rotation interval", "rotations", "instr err%",
               "loads err%", "branches err%", "stores err%"});
    for (std::size_t c = 0; c < intervals.size(); ++c) {
        double rotations = 0, instr = 0, loads = 0, branches = 0,
               stores = 0;
        for (unsigned s = 0; s < args.seeds; ++s) {
            const MuxResult &r = mux_runs[c * args.seeds + s];
            rotations += static_cast<double>(r.rotations);
            instr += r.errInstr;
            loads += r.errLoads;
            branches += r.errBranches;
            stores += r.errStores;
        }
        const double n = args.seeds;
        t2.beginRow()
            .cell(static_cast<std::uint64_t>(intervals[c]))
            .cell(static_cast<std::uint64_t>(rotations / n + 0.5))
            .cell(instr / n, 1)
            .cell(loads / n, 1)
            .cell(branches / n, 1)
            .cell(stores / n, 1);
    }
    std::puts("");
    std::fputs(t2.render().c_str(), stdout);
    std::puts("\nShape check: switch cost rises linearly with the "
              "counter set (the virtualization tax), and multiplexed "
              "estimates carry percent-level, workload-dependent\n"
              "error that faster rotation only partly repairs — "
              "precise counting avoids both by reading real counts "
              "from userspace.");

    // Dedicated traced re-run: the full 8-counter save/restore set.
    if (args.instrumented())
        switchCostWithCounters(8, 0, &args);
    return 0;
}
