/**
 * @file
 * E11 — Characterizing web-era applications against SPEC-class
 * kernels (the paper's "fresh insights" comparison).
 *
 * One table of microarchitectural rates per workload, produced from
 * the precise per-thread counters. Expected shape: the interactive/
 * server apps differ qualitatively from the compute kernels — more
 * kernel time, more context switches, worse branch behaviour than
 * the regular kernels, cache behaviour in between the streaming and
 * pointer-chasing extremes.
 */

#include <cstdio>
#include <memory>
#include <vector>

#include "analysis/args.hh"
#include "analysis/bundle.hh"
#include "analysis/campaign.hh"
#include "analysis/profile_report.hh"
#include "analysis/trace_report.hh"
#include "stats/table.hh"
#include "workloads/browser.hh"
#include "workloads/kernels.hh"
#include "workloads/oltp.hh"
#include "workloads/webserver.hh"

namespace {

using namespace limit;

struct Row
{
    std::string name;
    double ipc;        // user instructions per user cycle
    double l1MissPct;  // L1D misses per data access, %
    double llcMpki;    // LLC misses per kilo-instruction
    double branchMpki; // branch misses per kilo-instruction
    double dtlbMpki;
    double kernelPct;
    double switchesPerMcycle;
};

Row
characterize(const std::string &which, std::uint64_t seed,
             const analysis::BenchArgs *trace = nullptr)
{
    analysis::SimBundle b(
        analysis::BundleOptions::builder()
            .cores(4)
            .quantum(1'000'000)
            .seed(1 + seed)
            .traceCapacity(trace ? trace->captureCap() : 0)
            .timelineInterval(
                trace ? trace->captureTimelineInterval() : 0)
            .build());

    std::unique_ptr<workloads::OltpServer> oltp;
    std::unique_ptr<workloads::WebServer> web;
    std::unique_ptr<workloads::BrowserLoop> browser;
    std::unique_ptr<workloads::ComputeKernel> kern;

    if (which == "oltp (MySQL-like)") {
        workloads::OltpConfig cfg;
        cfg.clients = 6;
        cfg.rowsPerTable = 1 << 18; // big leaves: real cache pressure
        oltp = std::make_unique<workloads::OltpServer>(
            b.machine(), b.kernel(), cfg, 777 + seed);
        oltp->spawn();
    } else if (which == "web (Apache-like)") {
        workloads::WebConfig cfg;
        cfg.workers = 6;
        web = std::make_unique<workloads::WebServer>(
            b.machine(), b.kernel(), cfg, 777 + seed);
        web->spawn();
    } else if (which == "browser (Firefox-like)") {
        workloads::BrowserConfig cfg;
        browser = std::make_unique<workloads::BrowserLoop>(
            b.machine(), b.kernel(), cfg, 777 + seed);
        browser->spawn();
    } else {
        workloads::KernelKind kind = workloads::KernelKind::Stream;
        if (which == "spec-like: ptrchase")
            kind = workloads::KernelKind::PtrChase;
        else if (which == "spec-like: matmul")
            kind = workloads::KernelKind::MatMul;
        else if (which == "spec-like: sortlike")
            kind = workloads::KernelKind::SortLike;
        kern = std::make_unique<workloads::ComputeKernel>(
            b.kernel(), kind, 16 << 20, 777 + seed);
        kern->spawn();
    }

    b.run(25'000'000);

    using sim::EventType;
    using sim::PrivMode;
    auto &k = b.kernel();
    const double u_instr = static_cast<double>(analysis::totalEvent(
        k, EventType::Instructions, PrivMode::User));
    const double u_cycles = static_cast<double>(
        analysis::totalEvent(k, EventType::Cycles, PrivMode::User));
    const double k_instr = static_cast<double>(analysis::totalEvent(
        k, EventType::Instructions, PrivMode::Kernel));
    const double accesses = static_cast<double>(
        analysis::totalEvent(k, EventType::Loads) +
        analysis::totalEvent(k, EventType::Stores));
    const double l1 = static_cast<double>(
        analysis::totalEvent(k, EventType::L1DMiss));
    const double llc = static_cast<double>(
        analysis::totalEvent(k, EventType::LLCMiss));
    const double br = static_cast<double>(
        analysis::totalEvent(k, EventType::BranchMisses));
    const double dtlb = static_cast<double>(
        analysis::totalEvent(k, EventType::DTlbMiss));
    const double all_cycles = static_cast<double>(
        analysis::totalEvent(k, EventType::Cycles));

    Row r;
    r.name = which;
    r.ipc = u_instr / u_cycles;
    r.l1MissPct = accesses > 0 ? 100.0 * l1 / accesses : 0;
    r.llcMpki = 1000.0 * llc / (u_instr + k_instr);
    r.branchMpki = 1000.0 * br / (u_instr + k_instr);
    r.dtlbMpki = 1000.0 * dtlb / (u_instr + k_instr);
    r.kernelPct = 100.0 * k_instr / (u_instr + k_instr);
    r.switchesPerMcycle =
        1e6 * static_cast<double>(k.totalContextSwitches()) /
        all_cycles;
    if (trace)
        analysis::writeStandardArtifacts(b, *trace, "bench_e11_characterization");
    return r;
}

} // namespace

int
main(int argc, char **argv)
{
    using limit::stats::Table;

    const auto args = limit::analysis::parseBenchArgs(
        argc, argv, {.seeds = 1, .jobs = 1},
        "workload seeds averaged per row");

    Table t("E11: web-era applications vs SPEC-class kernels "
            "(25M-cycle runs)");
    t.header({"workload", "user IPC", "L1D miss%", "LLC MPKI",
              "br MPKI", "dTLB MPKI", "kernel instr%", "cs/Mcyc"});

    const std::vector<std::string> names = {
        "oltp (MySQL-like)",   "web (Apache-like)",
        "browser (Firefox-like)", "spec-like: stream",
        "spec-like: ptrchase", "spec-like: matmul",
        "spec-like: sortlike"};
    const std::vector<Row> runs = limit::analysis::mapGuarded(
        limit::analysis::campaignOptions(args),
        names.size() * args.seeds, [&](std::size_t i) {
            return characterize(names[i / args.seeds], i % args.seeds);
        });

    for (std::size_t w = 0; w < names.size(); ++w) {
        Row sum{};
        for (unsigned s = 0; s < args.seeds; ++s) {
            const Row &r = runs[w * args.seeds + s];
            sum.ipc += r.ipc;
            sum.l1MissPct += r.l1MissPct;
            sum.llcMpki += r.llcMpki;
            sum.branchMpki += r.branchMpki;
            sum.dtlbMpki += r.dtlbMpki;
            sum.kernelPct += r.kernelPct;
            sum.switchesPerMcycle += r.switchesPerMcycle;
        }
        const double n = args.seeds;
        t.beginRow()
            .cell(names[w])
            .cell(sum.ipc / n, 2)
            .cell(sum.l1MissPct / n, 1)
            .cell(sum.llcMpki / n, 2)
            .cell(sum.branchMpki / n, 2)
            .cell(sum.dtlbMpki / n, 2)
            .cell(sum.kernelPct / n, 1)
            .cell(sum.switchesPerMcycle / n, 1);
    }
    std::fputs(t.render().c_str(), stdout);
    std::puts("\nShape check: the applications occupy a different "
              "corner of the design space than SPEC-class kernels — "
              "nontrivial kernel shares, frequent context switches,\n"
              "and mixed locality — supporting the paper's implication "
              "that cloud-era workloads need their own "
              "characterization.");

    if (args.instrumented())
        characterize(names[0], 0, &args);
    return 0;
}
