/**
 * @file
 * E12 — Design-choice ablations beyond the paper's headline results.
 *
 * (a) Scheduler quantum: how preemption frequency scales the counter
 *     virtualization tax (and confirms PEC reads stay exact at any
 *     quantum — asserted in the property tests).
 * (b) PMI skid: how realistic interrupt skid corrupts sampling's
 *     attribution of short regions while leaving precise counting
 *     untouched.
 * (c) Next-line prefetching: the memory-substrate knob, shifting
 *     cache-event profiles without touching the counting machinery.
 * (d) Delta reads across the unified source roster: what one
 *     "count since my last look" costs per access method, the
 *     operation dense self-monitoring loops actually issue.
 */

#include <cmath>
#include <cstdio>
#include <vector>

#include "analysis/args.hh"
#include "analysis/bundle.hh"
#include "analysis/campaign.hh"
#include "analysis/profile_report.hh"
#include "analysis/trace_report.hh"
#include "baseline/sampler.hh"
#include "baseline/source_set.hh"
#include "pec/pec.hh"
#include "stats/table.hh"
#include "workloads/oltp.hh"

namespace {

using namespace limit;

// --- (a) quantum sweep ------------------------------------------------

struct QuantumResult
{
    std::uint64_t switches;
    double switchKernelPct; // % of all cycles spent context switching
};

QuantumResult
runQuantum(sim::Tick quantum, std::uint64_t seed,
           const analysis::BenchArgs *trace = nullptr)
{
    analysis::SimBundle b(
        analysis::BundleOptions::builder()
            .cores(2)
            .quantum(quantum)
            .seed(1 + seed)
            .traceCapacity(trace ? trace->captureCap() : 0)
            .timelineInterval(
                trace ? trace->captureTimelineInterval() : 0)
            .build());
    pec::PecSession s(b.kernel());
    s.addEvent(0, sim::EventType::Cycles);
    s.addEvent(1, sim::EventType::Instructions);
    s.addEvent(2, sim::EventType::L1DMiss);
    s.addEvent(3, sim::EventType::Branches);

    // Over-subscribe the cores so quanta actually expire.
    for (int i = 0; i < 6; ++i) {
        b.kernel().spawn("t" + std::to_string(i),
                         [&](sim::Guest &g) -> sim::Task<void> {
                             while (!g.shouldStop())
                                 co_await g.compute(2'000);
                             co_return;
                         });
    }
    b.run(20'000'000);

    const auto &costs = b.machine().cpu(0).costs();
    const std::uint64_t switches = b.kernel().totalContextSwitches();
    // Per switch: base cost + 4 counters saved+restored.
    const double switch_cycles = static_cast<double>(switches) *
        static_cast<double>(costs.contextSwitchCost +
                            4 * costs.counterSwitchCost);
    const double total = static_cast<double>(
        analysis::totalEvent(b.kernel(), sim::EventType::Cycles));
    if (trace)
        analysis::writeStandardArtifacts(b, *trace, "bench_e12_ablations");
    return {switches, 100.0 * switch_cycles / total};
}

// --- (b) skid sweep ----------------------------------------------------

double
shortRegionErrorWithSkid(sim::Tick skid, std::uint64_t seed)
{
    analysis::SimBundle b(analysis::BundleOptions::builder()
                              .cores(1)
                              .pmuWidth(30)
                              .seed(1 + seed)
                              .build());
    b.kernel().perf().setSkid(skid);
    baseline::SamplingProfiler prof(b.kernel(), 0,
                                    sim::EventType::Instructions,
                                    3'000);
    const auto region = b.machine().regions().intern("target");
    constexpr unsigned iters = 3000;
    constexpr std::uint64_t seg = 400;
    b.kernel().spawn("t", [&](sim::Guest &g) -> sim::Task<void> {
        sim::ComputeProfile p;
        p.branchFrac = 0;
        p.mispredictRate = 0;
        for (unsigned i = 0; i < iters; ++i) {
            co_await g.regionEnter(region);
            // Fine-grained ops so PMIs land throughout the region
            // (single-op regions make skid all-or-nothing).
            for (int c = 0; c < 8; ++c)
                co_await g.compute(seg / 8, p);
            co_await g.regionExit();
            co_await g.compute(2'200 + g.rng().below(1'400), p);
        }
        co_return;
    });
    b.machine().run();
    prof.aggregate();
    const double truth = static_cast<double>(seg) * iters;
    return 100.0 * (prof.estimate(region) - truth) / truth;
}

// --- (c) prefetcher ablation -------------------------------------------

struct PrefetchResult
{
    std::uint64_t committed;
    double llcMpki;
};

PrefetchResult
runPrefetch(bool enabled, std::uint64_t seed)
{
    mem::HierarchyConfig h;
    h.nextLinePrefetch = enabled;
    analysis::SimBundle b(analysis::BundleOptions::builder()
                              .cores(4)
                              .hierarchy(h)
                              .seed(1 + seed)
                              .build());
    workloads::OltpConfig cfg;
    cfg.clients = 6;
    cfg.rowsPerTable = 1 << 18;
    workloads::OltpServer oltp(b.machine(), b.kernel(), cfg, 55 + seed);
    oltp.spawn();
    b.run(20'000'000);
    const double instr = static_cast<double>(
        analysis::totalEvent(b.kernel(), sim::EventType::Instructions));
    const double llc = static_cast<double>(
        analysis::totalEvent(b.kernel(), sim::EventType::LLCMiss));
    return {oltp.committed(), 1000.0 * llc / instr};
}

// --- (d) delta reads across the unified source roster ------------------

struct DeltaResult
{
    std::string method;
    limit::CounterCost cost;
    double cyclesPerDelta;
};

/**
 * Mean guest cost of one readDelta() through the unified
 * limit::CounterSource interface. The same loop body runs against
 * every method in baseline::standardSources(); only the source
 * changes.
 */
DeltaResult
runDelta(const baseline::SourceSpec &spec, std::uint64_t seed)
{
    analysis::SimBundle b(analysis::BundleOptions::builder()
                              .cores(1)
                              .seed(1 + seed)
                              .build());
    baseline::SourceInstance inst =
        spec.make(b.kernel(), 0, sim::EventType::Instructions, true,
                  false);
    limit::CounterSource &src = *inst.source;
    DeltaResult out;
    out.method = src.name();
    out.cost = src.cost();
    constexpr int reps = 1500;
    b.kernel().spawn("t", [&](sim::Guest &g) -> sim::Task<void> {
        for (int i = 0; i < 8; ++i) {
            const std::uint64_t v = co_await src.readDelta(g, 0);
            (void)v;
        }
        const sim::Tick t0 = g.now();
        for (int i = 0; i < reps; ++i) {
            co_await g.compute(50);
            const std::uint64_t v = co_await src.readDelta(g, 0);
            (void)v;
        }
        out.cyclesPerDelta = static_cast<double>(g.now() - t0) / reps;
        co_return;
    });
    b.machine().run();
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    using limit::stats::Table;

    const auto args = limit::analysis::parseBenchArgs(
        argc, argv, {.seeds = 1, .jobs = 1},
        "simulation seeds averaged per table row");
    const limit::analysis::CampaignOptions copts =
        limit::analysis::campaignOptions(args);
    const unsigned seeds = args.seeds;

    const std::vector<sim::Tick> quanta = {25'000, 100'000, 1'000'000,
                                           12'000'000};
    const std::vector<sim::Tick> skids = {0, 150, 400, 1'000};

    const std::vector<QuantumResult> q_runs = limit::analysis::mapGuarded(
        copts, quanta.size() * seeds, [&](std::size_t i) {
            return runQuantum(quanta[i / seeds], i % seeds);
        });
    const std::vector<double> skid_errs = limit::analysis::mapGuarded(
        copts, skids.size() * seeds, [&](std::size_t i) {
            return shortRegionErrorWithSkid(skids[i / seeds], i % seeds);
        });
    const std::vector<PrefetchResult> pf_runs = limit::analysis::mapGuarded(
        copts, 2 * seeds, [&](std::size_t i) {
            return runPrefetch(i / seeds == 1, i % seeds);
        });
    const auto roster = limit::baseline::standardSources();
    const std::vector<DeltaResult> delta_runs = limit::analysis::mapGuarded(
        copts, roster.size() * seeds, [&](std::size_t i) {
            return runDelta(roster[i / seeds], i % seeds);
        });

    Table t1("E12a: context-switch tax vs scheduler quantum "
             "(4 virtualized counters, 6 threads on 2 cores)");
    t1.header({"quantum (cycles)", "switches", "% cycles switching"});
    for (std::size_t c = 0; c < quanta.size(); ++c) {
        double switches = 0, pct = 0;
        for (unsigned s = 0; s < seeds; ++s) {
            switches +=
                static_cast<double>(q_runs[c * seeds + s].switches);
            pct += q_runs[c * seeds + s].switchKernelPct;
        }
        t1.beginRow()
            .cell(static_cast<std::uint64_t>(quanta[c]))
            .cell(static_cast<std::uint64_t>(switches / seeds + 0.5))
            .cell(pct / seeds, 2);
    }
    std::fputs(t1.render().c_str(), stdout);

    Table t2("E12b: sampling attribution of a 400-instr region vs PMI "
             "skid (period 3k, 3000 visits; precise counting is exact "
             "regardless)");
    t2.header({"skid (cycles)", "estimate error %"});
    for (std::size_t c = 0; c < skids.size(); ++c) {
        double err = 0;
        for (unsigned s = 0; s < seeds; ++s)
            err += skid_errs[c * seeds + s];
        t2.beginRow()
            .cell(static_cast<std::uint64_t>(skids[c]))
            .cell(err / seeds, 1);
    }
    std::puts("");
    std::fputs(t2.render().c_str(), stdout);

    Table t3("E12c: next-line prefetcher ablation (OLTP, 20M cycles)");
    t3.header({"prefetcher", "txns committed", "LLC MPKI"});
    for (int on = 0; on < 2; ++on) {
        double committed = 0, mpki = 0;
        for (unsigned s = 0; s < seeds; ++s) {
            committed +=
                static_cast<double>(pf_runs[on * seeds + s].committed);
            mpki += pf_runs[on * seeds + s].llcMpki;
        }
        t3.beginRow()
            .cell(on ? "on" : "off")
            .cell(static_cast<std::uint64_t>(committed / seeds + 0.5))
            .cell(mpki / seeds, 3);
    }
    std::puts("");
    std::fputs(t3.render().c_str(), stdout);

    Table t4("E12d: cost of one delta read (count since last look, "
             "50-instr gap) per access method");
    t4.header({"method", "syscall/read", "precise", "library instrs",
               "cycles/delta"});
    for (std::size_t m = 0; m < roster.size(); ++m) {
        double cyc = 0;
        for (unsigned s = 0; s < seeds; ++s)
            cyc += delta_runs[m * seeds + s].cyclesPerDelta;
        const DeltaResult &r = delta_runs[m * seeds];
        t4.beginRow()
            .cell(r.method)
            .cell(r.cost.syscallPerRead ? "yes" : "no")
            .cell(r.cost.preciseEvents ? "yes" : "no")
            .cell(r.cost.libraryInstrs)
            .cell(cyc / seeds, 1);
    }
    std::puts("");
    std::fputs(t4.render().c_str(), stdout);

    std::puts("\nShape check: the virtualization tax is negligible at "
              "realistic quanta and only bites under pathological "
              "preemption; skid silently drains samples out of short\n"
              "regions (a bias no amount of extra samples repairs); "
              "the prefetcher shifts the measured cache profile — "
              "counters report it, counting machinery unaffected.");

    // Dedicated traced re-run: the pathological quantum, so the
    // timeline is wall-to-wall preemptions and counter save/restore.
    if (args.instrumented())
        runQuantum(25'000, 0, &args);
    return 0;
}
