/**
 * @file
 * E12 — Design-choice ablations beyond the paper's headline results.
 *
 * (a) Scheduler quantum: how preemption frequency scales the counter
 *     virtualization tax (and confirms PEC reads stay exact at any
 *     quantum — asserted in the property tests).
 * (b) PMI skid: how realistic interrupt skid corrupts sampling's
 *     attribution of short regions while leaving precise counting
 *     untouched.
 * (c) Next-line prefetching: the memory-substrate knob, shifting
 *     cache-event profiles without touching the counting machinery.
 */

#include <cmath>
#include <cstdio>

#include "analysis/bundle.hh"
#include "baseline/sampler.hh"
#include "pec/pec.hh"
#include "stats/table.hh"
#include "workloads/oltp.hh"

namespace {

using namespace limit;

// --- (a) quantum sweep ------------------------------------------------

struct QuantumResult
{
    std::uint64_t switches;
    double switchKernelPct; // % of all cycles spent context switching
};

QuantumResult
runQuantum(sim::Tick quantum)
{
    analysis::BundleOptions o;
    o.cores = 2;
    o.quantum = quantum;
    analysis::SimBundle b(o);
    pec::PecSession s(b.kernel());
    s.addEvent(0, sim::EventType::Cycles);
    s.addEvent(1, sim::EventType::Instructions);
    s.addEvent(2, sim::EventType::L1DMiss);
    s.addEvent(3, sim::EventType::Branches);

    // Over-subscribe the cores so quanta actually expire.
    for (int i = 0; i < 6; ++i) {
        b.kernel().spawn("t" + std::to_string(i),
                         [&](sim::Guest &g) -> sim::Task<void> {
                             while (!g.shouldStop())
                                 co_await g.compute(2'000);
                             co_return;
                         });
    }
    b.run(20'000'000);

    const auto &costs = b.machine().cpu(0).costs();
    const std::uint64_t switches = b.kernel().totalContextSwitches();
    // Per switch: base cost + 4 counters saved+restored.
    const double switch_cycles = static_cast<double>(switches) *
        static_cast<double>(costs.contextSwitchCost +
                            4 * costs.counterSwitchCost);
    const double total = static_cast<double>(
        analysis::totalEvent(b.kernel(), sim::EventType::Cycles));
    return {switches, 100.0 * switch_cycles / total};
}

// --- (b) skid sweep ----------------------------------------------------

double
shortRegionErrorWithSkid(sim::Tick skid)
{
    analysis::BundleOptions o;
    o.cores = 1;
    o.pmuFeatures.counterWidth = 30;
    analysis::SimBundle b(o);
    b.kernel().perf().setSkid(skid);
    baseline::SamplingProfiler prof(b.kernel(), 0,
                                    sim::EventType::Instructions,
                                    3'000);
    const auto region = b.machine().regions().intern("target");
    constexpr unsigned iters = 3000;
    constexpr std::uint64_t seg = 400;
    b.kernel().spawn("t", [&](sim::Guest &g) -> sim::Task<void> {
        sim::ComputeProfile p;
        p.branchFrac = 0;
        p.mispredictRate = 0;
        for (unsigned i = 0; i < iters; ++i) {
            co_await g.regionEnter(region);
            // Fine-grained ops so PMIs land throughout the region
            // (single-op regions make skid all-or-nothing).
            for (int c = 0; c < 8; ++c)
                co_await g.compute(seg / 8, p);
            co_await g.regionExit();
            co_await g.compute(2'200 + g.rng().below(1'400), p);
        }
        co_return;
    });
    b.machine().run();
    prof.aggregate();
    const double truth = static_cast<double>(seg) * iters;
    return 100.0 * (prof.estimate(region) - truth) / truth;
}

// --- (c) prefetcher ablation -------------------------------------------

struct PrefetchResult
{
    std::uint64_t committed;
    double llcMpki;
};

PrefetchResult
runPrefetch(bool enabled)
{
    analysis::BundleOptions o;
    o.cores = 4;
    o.hierarchy.nextLinePrefetch = enabled;
    analysis::SimBundle b(o);
    workloads::OltpConfig cfg;
    cfg.clients = 6;
    cfg.rowsPerTable = 1 << 18;
    workloads::OltpServer oltp(b.machine(), b.kernel(), cfg, 55);
    oltp.spawn();
    b.run(20'000'000);
    const double instr = static_cast<double>(
        analysis::totalEvent(b.kernel(), sim::EventType::Instructions));
    const double llc = static_cast<double>(
        analysis::totalEvent(b.kernel(), sim::EventType::LLCMiss));
    return {oltp.committed(), 1000.0 * llc / instr};
}

} // namespace

int
main()
{
    using limit::stats::Table;

    Table t1("E12a: context-switch tax vs scheduler quantum "
             "(4 virtualized counters, 6 threads on 2 cores)");
    t1.header({"quantum (cycles)", "switches", "% cycles switching"});
    for (sim::Tick q : {25'000u, 100'000u, 1'000'000u, 12'000'000u}) {
        const auto r = runQuantum(q);
        t1.beginRow()
            .cell(static_cast<std::uint64_t>(q))
            .cell(r.switches)
            .cell(r.switchKernelPct, 2);
    }
    std::fputs(t1.render().c_str(), stdout);

    Table t2("E12b: sampling attribution of a 400-instr region vs PMI "
             "skid (period 3k, 3000 visits; precise counting is exact "
             "regardless)");
    t2.header({"skid (cycles)", "estimate error %"});
    for (sim::Tick skid : {0u, 150u, 400u, 1'000u}) {
        t2.beginRow()
            .cell(static_cast<std::uint64_t>(skid))
            .cell(shortRegionErrorWithSkid(skid), 1);
    }
    std::puts("");
    std::fputs(t2.render().c_str(), stdout);

    Table t3("E12c: next-line prefetcher ablation (OLTP, 20M cycles)");
    t3.header({"prefetcher", "txns committed", "LLC MPKI"});
    const auto off = runPrefetch(false);
    const auto on = runPrefetch(true);
    t3.beginRow().cell("off").cell(off.committed).cell(off.llcMpki, 3);
    t3.beginRow().cell("on").cell(on.committed).cell(on.llcMpki, 3);
    std::puts("");
    std::fputs(t3.render().c_str(), stdout);

    std::puts("\nShape check: the virtualization tax is negligible at "
              "realistic quanta and only bites under pathological "
              "preemption; skid silently drains samples out of short\n"
              "regions (a bias no amount of extra samples repairs); "
              "the prefetcher shifts the measured cache profile — "
              "counters report it, counting machinery unaffected.");
    return 0;
}
