/**
 * @file
 * E3 — Application slowdown vs. instrumentation density.
 *
 * Runs the OLTP engine for a fixed simulated duration while reading a
 * counter after every R-th database operation, for each access
 * method, and reports throughput relative to the uninstrumented run.
 * Expected shape (paper): syscall-based methods become unusable at
 * high density (large slowdowns) while the PEC fast read stays within
 * a few percent — which is what makes dense instrumentation (per
 * lock acquisition, per handler) feasible at all.
 */

#include <cstdio>
#include <memory>
#include <vector>

#include "analysis/args.hh"
#include "analysis/bundle.hh"
#include "analysis/campaign.hh"
#include "analysis/profile_report.hh"
#include "analysis/trace_report.hh"
#include "base/logging.hh"
#include "baseline/source_set.hh"
#include "stats/table.hh"
#include "workloads/oltp.hh"

namespace {

using namespace limit;

constexpr sim::Tick runTicks = 30'000'000;

/**
 * One OLTP run instrumented through a unified counter source (null
 * spec = uninstrumented baseline). All methods flow through the same
 * limit::CounterSource interface; the bench only varies density.
 */
std::uint64_t
runOnce(const baseline::SourceSpec *spec, unsigned read_every,
        unsigned reads_per_hook, std::uint64_t seed,
        const analysis::BenchArgs *trace = nullptr)
{
    analysis::SimBundle b(
        analysis::BundleOptions::builder()
            .cores(4)
            .seed(1 + seed)
            .traceCapacity(trace ? trace->captureCap() : 0)
            .timelineInterval(
                trace ? trace->captureTimelineInterval() : 0)
            .build());

    baseline::SourceInstance inst;
    if (spec)
        inst = spec->make(b.kernel(), 0, sim::EventType::Cycles, true,
                          true);

    workloads::OltpConfig cfg;
    cfg.clients = 6;
    if (inst.source) {
        limit::CounterSource *source = inst.source.get();
        cfg.hookEvery = read_every;
        cfg.opHook =
            [source, reads_per_hook](sim::Guest &g) -> sim::Task<void> {
            for (unsigned i = 0; i < reads_per_hook; ++i) {
                const std::uint64_t v = co_await source->read(g, 0);
                (void)v;
            }
        };
    }
    workloads::OltpServer oltp(b.machine(), b.kernel(), cfg, 99 + seed);
    oltp.spawn();
    b.run(runTicks);
    if (trace)
        analysis::writeStandardArtifacts(b, *trace, "bench_e03_overhead_scaling");
    return oltp.operations();
}

/** Find a roster entry by its stable label. */
const baseline::SourceSpec &
findSpec(const std::vector<baseline::SourceSpec> &roster,
         const std::string &label)
{
    for (const auto &s : roster) {
        if (s.label == label)
            return s;
    }
    fatal("no counter source labelled '", label,
          "' in the standard roster");
}

} // namespace

int
main(int argc, char **argv)
{
    using limit::stats::Table;

    const auto args = analysis::parseBenchArgs(
        argc, argv, {.seeds = 1, .jobs = 1},
        "OLTP workload seeds averaged per table cell");

    struct Density
    {
        const char *label;
        unsigned every;
        unsigned reads;
    };
    // From sparse spot checks to the dense multi-counter segment
    // instrumentation the case studies need (reads at every lock
    // event, several counters each).
    const Density densities[] = {
        {"1/16", 16, 1}, {"1/4", 4, 1}, {"1", 1, 1},
        {"4", 1, 4},     {"16", 1, 16},
    };
    // The density sweep uses the three methods the paper contrasts,
    // pulled from the same roster E1 tabulates in full.
    const auto roster = limit::baseline::standardSources();
    const std::vector<const limit::baseline::SourceSpec *> methods = {
        &findSpec(roster, "pec/kernel-fixup"),
        &findSpec(roster, "papi-like"),
        &findSpec(roster, "perf-syscall"),
    };

    // One job per (table cell, seed): the uninstrumented baseline
    // first, then every density x method point. Each job owns its
    // whole simulated machine, so the fan-out is embarrassingly
    // parallel and results are independent of worker count.
    struct Job
    {
        const limit::baseline::SourceSpec *spec;
        unsigned every;
        unsigned reads;
        std::uint64_t seed;
    };
    std::vector<Job> jobs;
    for (unsigned s = 0; s < args.seeds; ++s)
        jobs.push_back({nullptr, 1, 0, s});
    for (const auto &d : densities) {
        for (const auto *m : methods) {
            for (unsigned s = 0; s < args.seeds; ++s)
                jobs.push_back({m, d.every, d.reads, s});
        }
    }
    const std::vector<std::uint64_t> ops = analysis::mapGuarded(
        analysis::campaignOptions(args), jobs.size(), [&](std::size_t i) {
            const Job &j = jobs[i];
            return runOnce(j.spec, j.every, j.reads, j.seed);
        });

    std::size_t cursor = 0;
    auto mean_ops = [&]() {
        double sum = 0;
        for (unsigned s = 0; s < args.seeds; ++s)
            sum += static_cast<double>(ops[cursor++]);
        return sum / args.seeds;
    };
    const double baseline_ops = mean_ops();

    Table t("E3: OLTP throughput vs instrumentation density "
            "(counter reads per DB operation; 30M-cycle run)");
    t.header({"reads per op", "method", "ops done", "slowdown"});
    for (const auto &d : densities) {
        for (const auto *m : methods) {
            const double cell_ops = mean_ops();
            t.beginRow()
                .cell(d.label)
                .cell(m->label)
                .cell(static_cast<std::uint64_t>(cell_ops + 0.5))
                .cell(baseline_ops / cell_ops, 2);
        }
    }
    std::printf("uninstrumented ops in the same window: %llu\n\n",
                static_cast<unsigned long long>(baseline_ops + 0.5));
    std::fputs(t.render().c_str(), stdout);
    std::puts("\nShape check: pec stays within a few percent even at "
              "one read per operation; syscall methods degrade "
              "severely as density rises.");

    // Dedicated traced re-run: densest PEC instrumentation, so the
    // timeline carries syscall, futex and switch traffic.
    if (args.instrumented())
        runOnce(methods[0], 1, 1, 0, &args);
    return 0;
}
