/**
 * @file
 * E3 — Application slowdown vs. instrumentation density.
 *
 * Runs the OLTP engine for a fixed simulated duration while reading a
 * counter after every R-th database operation, for each access
 * method, and reports throughput relative to the uninstrumented run.
 * Expected shape (paper): syscall-based methods become unusable at
 * high density (large slowdowns) while the PEC fast read stays within
 * a few percent — which is what makes dense instrumentation (per
 * lock acquisition, per handler) feasible at all.
 */

#include <cstdio>
#include <memory>
#include <vector>

#include "analysis/args.hh"
#include "analysis/bundle.hh"
#include "analysis/runner.hh"
#include "baseline/readers.hh"
#include "pec/pec.hh"
#include "stats/table.hh"
#include "workloads/oltp.hh"

namespace {

using namespace limit;

constexpr sim::Tick runTicks = 30'000'000;

enum class Method { None, Pec, Papi, Perf };

const char *
methodName(Method m)
{
    switch (m) {
      case Method::None: return "uninstrumented";
      case Method::Pec: return "pec/kernel-fixup";
      case Method::Papi: return "papi-like";
      case Method::Perf: return "perf-syscall";
    }
    return "?";
}

std::uint64_t
runOnce(Method method, unsigned read_every, unsigned reads_per_hook,
        std::uint64_t seed)
{
    analysis::BundleOptions o;
    o.cores = 4;
    o.seed = 1 + seed;
    analysis::SimBundle b(o);

    std::unique_ptr<pec::PecSession> session;
    std::unique_ptr<baseline::CounterReader> reader;
    switch (method) {
      case Method::None:
        break;
      case Method::Pec:
        session = std::make_unique<pec::PecSession>(b.kernel());
        session->addEvent(0, sim::EventType::Cycles, true, true);
        reader = std::make_unique<baseline::PecReader>(*session);
        break;
      case Method::Papi:
        b.kernel().perf().setupCounting(0, sim::EventType::Cycles, true,
                                        true);
        reader = std::make_unique<baseline::PapiReader>();
        break;
      case Method::Perf:
        b.kernel().perf().setupCounting(0, sim::EventType::Cycles, true,
                                        true);
        reader = std::make_unique<baseline::PerfSyscallReader>();
        break;
    }

    workloads::OltpConfig cfg;
    cfg.clients = 6;
    if (reader) {
        cfg.hookEvery = read_every;
        cfg.opHook =
            [&reader, reads_per_hook](sim::Guest &g) -> sim::Task<void> {
            for (unsigned i = 0; i < reads_per_hook; ++i) {
                const std::uint64_t v = co_await reader->read(g, 0);
                (void)v;
            }
        };
    }
    workloads::OltpServer oltp(b.machine(), b.kernel(), cfg, 99 + seed);
    oltp.spawn();
    b.run(runTicks);
    return oltp.operations();
}

} // namespace

int
main(int argc, char **argv)
{
    using limit::stats::Table;

    const auto args = analysis::parseBenchArgs(
        argc, argv, {.seeds = 1, .jobs = 1},
        "OLTP workload seeds averaged per table cell");
    analysis::ParallelRunner pool(args.jobs);

    struct Density
    {
        const char *label;
        unsigned every;
        unsigned reads;
    };
    // From sparse spot checks to the dense multi-counter segment
    // instrumentation the case studies need (reads at every lock
    // event, several counters each).
    const Density densities[] = {
        {"1/16", 16, 1}, {"1/4", 4, 1}, {"1", 1, 1},
        {"4", 1, 4},     {"16", 1, 16},
    };
    const Method methods[] = {Method::Pec, Method::Papi, Method::Perf};

    // One job per (table cell, seed): the uninstrumented baseline
    // first, then every density x method point. Each job owns its
    // whole simulated machine, so the fan-out is embarrassingly
    // parallel and results are independent of worker count.
    struct Job
    {
        Method m;
        unsigned every;
        unsigned reads;
        std::uint64_t seed;
    };
    std::vector<Job> jobs;
    for (unsigned s = 0; s < args.seeds; ++s)
        jobs.push_back({Method::None, 1, 0, s});
    for (const auto &d : densities) {
        for (Method m : methods) {
            for (unsigned s = 0; s < args.seeds; ++s)
                jobs.push_back({m, d.every, d.reads, s});
        }
    }
    const std::vector<std::uint64_t> ops = pool.map(
        jobs.size(), [&](std::size_t i) {
            const Job &j = jobs[i];
            return runOnce(j.m, j.every, j.reads, j.seed);
        });

    std::size_t cursor = 0;
    auto mean_ops = [&]() {
        double sum = 0;
        for (unsigned s = 0; s < args.seeds; ++s)
            sum += static_cast<double>(ops[cursor++]);
        return sum / args.seeds;
    };
    const double baseline_ops = mean_ops();

    Table t("E3: OLTP throughput vs instrumentation density "
            "(counter reads per DB operation; 30M-cycle run)");
    t.header({"reads per op", "method", "ops done", "slowdown"});
    for (const auto &d : densities) {
        for (Method m : methods) {
            const double cell_ops = mean_ops();
            t.beginRow()
                .cell(d.label)
                .cell(methodName(m))
                .cell(static_cast<std::uint64_t>(cell_ops + 0.5))
                .cell(baseline_ops / cell_ops, 2);
        }
    }
    std::printf("uninstrumented ops in the same window: %llu\n\n",
                static_cast<unsigned long long>(baseline_ops + 0.5));
    std::fputs(t.render().c_str(), stdout);
    std::puts("\nShape check: pec stays within a few percent even at "
              "one read per operation; syscall methods degrade "
              "severely as density rises.");
    return 0;
}
