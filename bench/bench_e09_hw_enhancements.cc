/**
 * @file
 * E9 — The paper's three proposed hardware enhancements, as ablations.
 *
 *   #1 64-bit userspace-visible counters: no overflow machinery at
 *      all — the read collapses to a bare rdpmc.
 *   #2 destructive (read-and-clear) reads: segment measurement drops
 *      the start-snapshot bookkeeping.
 *   #3 tagged counter virtualization: hardware swaps counter state on
 *      context switch, removing the kernel's per-counter MSR cost.
 *
 * Expected shape: each enhancement removes exactly the cost its
 * motivation names — cheaper reads, cheaper segment measurement,
 * cheaper context switches — with no loss of exactness.
 */

#include <cstdio>
#include <functional>
#include <vector>

#include "analysis/args.hh"
#include "analysis/bundle.hh"
#include "analysis/campaign.hh"
#include "analysis/profile_report.hh"
#include "analysis/trace_report.hh"
#include "os/sysno.hh"
#include "pec/pec.hh"
#include "stats/table.hh"

namespace {

using namespace limit;

/** Cost of one plain read under a feature set / policy. */
double
readCost(const sim::PmuFeatures &features, pec::OverflowPolicy policy,
         std::uint64_t seed)
{
    analysis::SimBundle b(analysis::BundleOptions::builder()
                              .cores(1)
                              .pmuFeatures(features)
                              .seed(1 + seed)
                              .build());
    pec::PecConfig pc;
    pc.policy = policy;
    pec::PecSession session(b.kernel(), pc);
    session.addEvent(0, sim::EventType::Instructions);
    double out = 0;
    constexpr int reps = 2000;
    b.kernel().spawn("t", [&](sim::Guest &g) -> sim::Task<void> {
        for (int i = 0; i < 8; ++i) {
            const std::uint64_t v = co_await session.read(g, 0);
            (void)v;
        }
        const sim::Tick t0 = g.now();
        for (int i = 0; i < reps; ++i) {
            const std::uint64_t v = co_await session.read(g, 0);
            (void)v;
        }
        out = static_cast<double>(g.now() - t0) / reps;
        co_return;
    });
    b.machine().run();
    return out;
}

/** Cost of one enter+exit segment measurement pair. */
double
segmentCost(bool destructive, std::uint64_t seed)
{
    analysis::SimBundle b(analysis::BundleOptions::builder()
                              .cores(1)
                              .destructiveRead()
                              .seed(1 + seed)
                              .build());
    pec::PecSession session(b.kernel());
    session.addEvent(0, sim::EventType::Instructions);
    pec::RegionProfilerConfig rc;
    rc.counters = {0};
    rc.destructiveReads = destructive;
    rc.subtractOverhead = false;
    pec::RegionProfiler prof(session, rc);
    const auto region = b.machine().regions().intern("empty");
    double out = 0;
    constexpr int reps = 1000;
    b.kernel().spawn("t", [&](sim::Guest &g) -> sim::Task<void> {
        const sim::Tick t0 = g.now();
        for (int i = 0; i < reps; ++i) {
            co_await prof.enter(g, region);
            co_await prof.exit(g, region);
        }
        out = static_cast<double>(g.now() - t0) / reps;
        co_return;
    });
    b.machine().run();
    return out;
}

/** Mean kernel cycles per context switch with 4 counters active. */
double
switchCost(bool tagged, bool virtualized, std::uint64_t seed,
           const analysis::BenchArgs *trace = nullptr)
{
    analysis::SimBundle b(
        analysis::BundleOptions::builder()
            .cores(1)
            .quantum(10'000'000) // only voluntary switches
            .taggedVirtualization(tagged)
            .virtualizeCounters(virtualized)
            .seed(1 + seed)
            .traceCapacity(trace ? trace->captureCap() : 0)
            .timelineInterval(
                trace ? trace->captureTimelineInterval() : 0)
            .build());
    pec::PecSession session(b.kernel());
    session.addEvent(0, sim::EventType::Cycles);
    session.addEvent(1, sim::EventType::Instructions);
    session.addEvent(2, sim::EventType::Loads);
    session.addEvent(3, sim::EventType::Stores);

    // Two threads ping-pong via sched_yield; every yield is a switch.
    for (int i = 0; i < 2; ++i) {
        b.kernel().spawn("t" + std::to_string(i),
                         [&](sim::Guest &g) -> sim::Task<void> {
                             for (int j = 0; j < 500; ++j) {
                                 co_await g.compute(100);
                                 co_await g.syscall(os::sysYield);
                             }
                             co_return;
                         });
    }
    b.machine().run();
    const std::uint64_t kernel_cycles = analysis::totalEvent(
        b.kernel(), sim::EventType::Cycles, sim::PrivMode::Kernel);
    const std::uint64_t switches =
        b.kernel().totalContextSwitches();
    if (trace)
        analysis::writeStandardArtifacts(b, *trace, "bench_e09_hw_enhancements");
    return static_cast<double>(kernel_cycles) /
           static_cast<double>(switches);
}

} // namespace

int
main(int argc, char **argv)
{
    using limit::stats::Table;

    const auto args = limit::analysis::parseBenchArgs(
        argc, argv, {.seeds = 1, .jobs = 1},
        "simulation seeds averaged per table cell");

    // Every table cell is an independent closure over (seed); the
    // whole bench fans out as cells x seeds and each cell reports the
    // mean across seeds.
    sim::PmuFeatures base;
    sim::PmuFeatures wide;
    wide.counterWidth = 64;
    const std::vector<std::function<double(std::uint64_t)>> cells = {
        [&](std::uint64_t s) {
            return readCost(base, pec::OverflowPolicy::KernelFixup, s);
        },
        [&](std::uint64_t s) {
            return readCost(base, pec::OverflowPolicy::DoubleCheck, s);
        },
        [&](std::uint64_t s) {
            return readCost(wide, pec::OverflowPolicy::None, s);
        },
        [](std::uint64_t s) { return segmentCost(false, s); },
        [](std::uint64_t s) { return segmentCost(true, s); },
        [](std::uint64_t s) { return switchCost(false, true, s); },
        [](std::uint64_t s) { return switchCost(true, true, s); },
        [](std::uint64_t s) { return switchCost(false, false, s); },
    };
    const std::vector<double> raw = limit::analysis::mapGuarded(
        limit::analysis::campaignOptions(args),
        cells.size() * args.seeds, [&](std::size_t i) {
            return cells[i / args.seeds](i % args.seeds);
        });
    auto mean = [&](std::size_t cell) {
        double sum = 0;
        for (unsigned s = 0; s < args.seeds; ++s)
            sum += raw[cell * args.seeds + s];
        return sum / args.seeds;
    };

    Table t1("E9a: enhancement #1 — 64-bit counters vs 48-bit + "
             "overflow machinery (cycles per read)");
    t1.header({"hardware", "read path", "cycles/read"});
    t1.beginRow()
        .cell("48-bit")
        .cell("accum+rdpmc, kernel fix-up")
        .cell(mean(0), 1);
    t1.beginRow()
        .cell("48-bit")
        .cell("accum+rdpmc+recheck (double-check)")
        .cell(mean(1), 1);
    t1.beginRow()
        .cell("64-bit (enh. #1)")
        .cell("bare rdpmc, no virtualization needed")
        .cell(mean(2), 1);
    std::fputs(t1.render().c_str(), stdout);

    Table t2("E9b: enhancement #2 — destructive reads "
             "(cycles per empty segment measurement)");
    t2.header({"segment measurement", "cycles/enter+exit"});
    t2.beginRow().cell("start/stop snapshots").cell(mean(3), 1);
    t2.beginRow()
        .cell("destructive read-and-clear (enh. #2)")
        .cell(mean(4), 1);
    std::puts("");
    std::fputs(t2.render().c_str(), stdout);

    Table t3("E9c: enhancement #3 — tagged counter virtualization "
             "(kernel cycles per context switch, 4 counters)");
    t3.header({"virtualization", "kernel cycles/switch"});
    t3.beginRow().cell("software save/restore").cell(mean(5), 0);
    t3.beginRow().cell("hardware-tagged (enh. #3)").cell(mean(6), 0);
    t3.beginRow()
        .cell("(none: per-CPU counters, loses per-thread precision)")
        .cell(mean(7), 0);
    std::puts("");
    std::fputs(t3.render().c_str(), stdout);

    std::puts("\nShape check: each enhancement removes exactly the "
              "cost its motivation names — the 64-bit counter makes "
              "the read a bare rdpmc, destructive reads halve the\n"
              "segment-measurement footprint, and tagging returns the "
              "context switch to its unvirtualized cost while keeping "
              "per-thread precision.");

    // Dedicated traced re-run: software save/restore of a full
    // counter set — every yield shows switch + save + restore events.
    if (args.instrumented())
        switchCost(false, true, 0, &args);
    return 0;
}
