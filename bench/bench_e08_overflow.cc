/**
 * @file
 * E8 — Overflow handling: correctness and cost of each policy.
 *
 * Narrow counters compress time so wraps happen at bench scale (a
 * 48-bit cycle counter takes ~26 hours to wrap at 3 GHz; a 16-bit one
 * wraps every 22 us — same protocol, observable now). A thread reads
 * a cycle counter repeatedly; any read that returns less than its
 * predecessor lost a wrap. Expected shape (paper): the naive
 * userspace sum exhibits rare huge undercounts (2^width), the
 * kernel fix-up and double-check reads never err, and the fix-up
 * adds no cost to reads that see no overflow.
 */

#include <cstdio>
#include <vector>

#include "analysis/args.hh"
#include "analysis/bundle.hh"
#include "analysis/campaign.hh"
#include "analysis/profile_report.hh"
#include "analysis/trace_report.hh"
#include "pec/pec.hh"
#include "stats/table.hh"

namespace {

using namespace limit;

struct Outcome
{
    std::uint64_t reads = 0;
    std::uint64_t erroneous = 0; // value regressed vs predecessor
    std::uint64_t wraps = 0;
    std::uint64_t restarts = 0;
    std::uint64_t retries = 0;
    double cyclesPerRead = 0;
};

Outcome
run(pec::OverflowPolicy policy, unsigned width, std::uint64_t seed,
    const analysis::BenchArgs *trace = nullptr)
{
    analysis::SimBundle b(
        analysis::BundleOptions::builder()
            .cores(1)
            .pmuWidth(width)
            .seed(1 + seed)
            .traceCapacity(trace ? trace->captureCap() : 0)
            .timelineInterval(
                trace ? trace->captureTimelineInterval() : 0)
            .build());
    pec::PecConfig pc;
    pc.policy = policy;
    pec::PecSession session(b.kernel(), pc);
    session.addEvent(0, sim::EventType::Cycles); // user cycles

    Outcome out;
    constexpr unsigned reps = 20'000;
    b.kernel().spawn("t", [&](sim::Guest &g) -> sim::Task<void> {
        std::uint64_t prev = 0;
        const sim::Tick t0 = g.now();
        for (unsigned i = 0; i < reps; ++i) {
            co_await g.compute(40); // workload between reads
            const std::uint64_t v = co_await session.read(g, 0);
            if (v < prev)
                ++out.erroneous;
            prev = v;
        }
        out.cyclesPerRead =
            static_cast<double>(g.now() - t0) / reps;
        co_return;
    });
    b.machine().run();
    out.reads = reps;
    out.wraps = session.overflowFixups();
    out.restarts = session.readRestarts();
    out.retries = session.doubleCheckRetries();
    if (trace)
        analysis::writeStandardArtifacts(b, *trace, "bench_e08_overflow");
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    using limit::stats::Table;
    using pec::OverflowPolicy;

    const auto args = limit::analysis::parseBenchArgs(
        argc, argv, {.seeds = 1, .jobs = 1},
        "simulation seeds averaged per (width, policy) row");
    Table t("E8: read correctness and cost under counter overflow "
            "(20k reads of a user-cycle counter)");
    t.header({"width", "policy", "wraps", "bad reads", "restarts",
              "dbl-chk retries", "cyc/read (incl 40-instr gap)"});

    const std::vector<unsigned> widths = {12, 16, 20};
    const std::vector<OverflowPolicy> policies = {
        OverflowPolicy::None, OverflowPolicy::NaiveSum,
        OverflowPolicy::KernelFixup, OverflowPolicy::DoubleCheck};

    struct Job
    {
        unsigned width;
        OverflowPolicy policy;
        std::uint64_t seed;
    };
    std::vector<Job> jobs;
    for (unsigned width : widths)
        for (auto policy : policies)
            for (unsigned s = 0; s < args.seeds; ++s)
                jobs.push_back({width, policy, s});
    const std::vector<Outcome> runs = limit::analysis::mapGuarded(
        limit::analysis::campaignOptions(args), jobs.size(),
        [&](std::size_t i) {
            const Job &j = jobs[i];
            return run(j.policy, j.width, j.seed);
        });

    std::size_t cursor = 0;
    for (unsigned width : widths) {
        for (auto policy : policies) {
            double wraps = 0, bad = 0, restarts = 0, retries = 0,
                   cyc = 0;
            for (unsigned s = 0; s < args.seeds; ++s) {
                const Outcome &r = runs[cursor++];
                wraps += static_cast<double>(r.wraps);
                bad += static_cast<double>(r.erroneous);
                restarts += static_cast<double>(r.restarts);
                retries += static_cast<double>(r.retries);
                cyc += r.cyclesPerRead;
            }
            const double n = args.seeds;
            t.beginRow()
                .cell(width)
                .cell(pec::policyName(policy))
                .cell(static_cast<std::uint64_t>(wraps / n + 0.5))
                .cell(static_cast<std::uint64_t>(bad / n + 0.5))
                .cell(static_cast<std::uint64_t>(restarts / n + 0.5))
                .cell(static_cast<std::uint64_t>(retries / n + 0.5))
                .cell(cyc / n, 1);
        }
    }
    std::fputs(t.render().c_str(), stdout);
    std::puts("\nShape check: 'none' regresses constantly (raw wrapping "
              "value), 'naive-sum' loses full 2^width wraps when the "
              "overflow lands mid-read, while 'kernel-fixup' and\n"
              "'double-check' never produce a bad read; the fix-up's "
              "per-read cost matches naive-sum when no overflow hits "
              "the read window.");

    // Dedicated traced re-run: a 12-bit counter under the kernel
    // fix-up wraps constantly, so the timeline is dense with overflow
    // PMIs and fix-up events.
    if (args.instrumented())
        run(OverflowPolicy::KernelFixup, 12, 0, &args);
    return 0;
}
