/**
 * @file
 * E5 — Synchronization case study (the paper's MySQL/Apache/Firefox
 * study): exact cycles spent acquiring locks and holding them, per
 * lock class and acquire call site, measured with dense PEC
 * instrumentation that syscall methods could not afford (see E3).
 *
 * Expected shape: every app spends a modest single-digit share of
 * cycles on synchronization, dominated by *frequent, short* critical
 * sections rather than long ones.
 */

#include <cstdio>
#include <vector>

#include "analysis/args.hh"
#include "analysis/profile_report.hh"
#include "analysis/campaign.hh"
#include "prof/report.hh"
#include "sync_common.hh"

int
main(int argc, char **argv)
{
    using namespace limit;
    using benchsync::runApp;

    constexpr sim::Tick ticks = 40'000'000;

    const auto args = analysis::parseBenchArgs(
        argc, argv, {.seeds = 1, .jobs = 1},
        "workload seeds averaged in the summary table");

    // One job per (app, seed); runs merge into the Report in
    // submission order, so the output is identical for any --jobs.
    const auto &apps = benchsync::appNames();
    const std::vector<benchsync::SyncRunResult> runs =
        analysis::mapGuarded(
            analysis::campaignOptions(args), apps.size() * args.seeds,
            [&](std::size_t i) {
                return runApp(apps[i / args.seeds], ticks,
                              i % args.seeds, nullptr, &args);
            });

    prof::Report report;
    for (const auto &r : runs)
        report.addSync(r.app, r.sync, r.totalCycles, r.workItems);

    std::fputs(report
                   .syncSummaryTable(
                       "E5a: per-application synchronization summary "
                       "(40M-cycle run, 4 cores)")
                   .render()
                   .c_str(),
               stdout);
    std::puts("");
    std::fputs(
        report
            .syncDetailTable(
                "E5b: per-lock-class / per-call-site detail")
            .render()
            .c_str(),
        stdout);

    for (const auto &s : report.syncSections()) {
        const prof::SyncProfile::Chain chain =
            s.profile.longestWaiterChain();
        if (chain.tids.size() < 2)
            continue;
        std::printf("\n%s longest waiter chain (%llu wait cycles): ",
                    s.name.c_str(),
                    static_cast<unsigned long long>(chain.waitCycles));
        for (std::size_t i = 0; i < chain.tids.size(); ++i)
            std::printf("%st%u", i ? " -> " : "", chain.tids[i]);
        std::puts("");
    }

    // One extra dedicated run with the tracer attached (and counters
    // narrow enough to wrap, so overflow PMIs show up in the
    // timeline); tables above stay bit-identical to untraced runs.
    if (args.tracing() || args.timelineOn()) {
        benchsync::TraceSpec tspec;
        tspec.path = args.trace;
        tspec.capacity = args.traceCap;
        runApp(apps[0], ticks, 0, args.tracing() ? &tspec : nullptr,
               &args, "bench_e05_sync_study");
    }
    analysis::writeProfile(report, args, "bench_e05_sync_study");

    // The exact table EXPERIMENTS.md embeds — regenerate by pasting.
    std::puts("\nEXPERIMENTS.md (E5) markdown:");
    std::fputs(report.syncSummaryMarkdown().c_str(), stdout);

    std::puts("\nShape check: synchronization is a modest share of "
              "total cycles in every app, and mean critical sections "
              "are short (hundreds to a few thousand cycles) —\n"
              "lock *acquisition* cost is comparable to hold time, the "
              "paper's argument that architects should optimize "
              "acquisition, not just contention.");
    return 0;
}
