/**
 * @file
 * E5 — Synchronization case study (the paper's MySQL/Apache/Firefox
 * study): exact cycles spent acquiring locks and holding them, per
 * lock class, measured with dense PEC instrumentation that syscall
 * methods could not afford (see E3).
 *
 * Expected shape: every app spends a modest single-digit share of
 * cycles on synchronization, dominated by *frequent, short* critical
 * sections rather than long ones.
 */

#include <cstdio>
#include <vector>

#include "analysis/args.hh"
#include "analysis/runner.hh"
#include "stats/table.hh"
#include "sync_common.hh"

int
main(int argc, char **argv)
{
    using namespace limit;
    using benchsync::runApp;
    using stats::Table;

    constexpr sim::Tick ticks = 40'000'000;

    const auto args = analysis::parseBenchArgs(
        argc, argv, {.seeds = 1, .jobs = 1},
        "workload seeds averaged in the summary table");
    analysis::ParallelRunner pool(args.jobs);

    // One job per (app, seed); the summary averages across seeds, the
    // per-lock detail table shows the seed-0 run.
    const auto &apps = benchsync::appNames();
    const std::vector<benchsync::SyncRunResult> runs = pool.map(
        apps.size() * args.seeds, [&](std::size_t i) {
            return runApp(apps[i / args.seeds], ticks, i % args.seeds);
        });

    Table summary("E5a: per-application synchronization summary "
                  "(40M-cycle run, 4 cores)");
    summary.header({"app", "work items", "total Mcycles",
                    "% cyc acquiring", "% cyc in crit sec",
                    "acquisitions"});

    Table detail("E5b: per-lock-class detail");
    detail.header({"app", "lock", "acquisitions", "mean acq cyc",
                   "mean held cyc", "p95 held cyc"});

    for (std::size_t a = 0; a < apps.size(); ++a) {
        double work_items = 0, mcycles = 0, acq_pct = 0, held_pct = 0,
               acqs = 0;
        for (unsigned s = 0; s < args.seeds; ++s) {
            const auto &r = runs[a * args.seeds + s];
            std::uint64_t acq_cycles = 0, held_cycles = 0,
                          acquisitions = 0;
            for (const auto &l : r.locks) {
                acq_cycles += l.acquire.totals[0];
                held_cycles += l.held.totals[0];
                acquisitions += l.held.entries;
                if (s == 0) {
                    detail.beginRow()
                        .cell(r.app)
                        .cell(l.name)
                        .cell(l.held.entries)
                        .cell(l.acquire.mean(0), 0)
                        .cell(l.held.mean(0), 0)
                        .cell(l.held.histogram.quantile(0.95), 0);
                }
            }
            work_items += static_cast<double>(r.workItems);
            mcycles += static_cast<double>(r.totalCycles) / 1e6;
            acq_pct += analysis::percentOf(acq_cycles, r.totalCycles);
            held_pct += analysis::percentOf(held_cycles, r.totalCycles);
            acqs += static_cast<double>(acquisitions);
        }
        const double n = args.seeds;
        summary.beginRow()
            .cell(apps[a])
            .cell(static_cast<std::uint64_t>(work_items / n + 0.5))
            .cell(mcycles / n, 1)
            .cell(acq_pct / n, 2)
            .cell(held_pct / n, 2)
            .cell(static_cast<std::uint64_t>(acqs / n + 0.5));
    }

    std::fputs(summary.render().c_str(), stdout);
    std::puts("");
    std::fputs(detail.render().c_str(), stdout);

    // One extra dedicated run with the tracer attached (and counters
    // narrow enough to wrap, so overflow PMIs show up in the
    // timeline); tables above stay bit-identical to untraced runs.
    if (args.tracing()) {
        benchsync::TraceSpec tspec;
        tspec.path = args.trace;
        tspec.capacity = args.traceCap;
        runApp(apps[0], ticks, 0, &tspec);
    }
    std::puts("\nShape check: synchronization is a modest share of "
              "total cycles in every app, and mean critical sections "
              "are short (hundreds to a few thousand cycles) —\n"
              "lock *acquisition* cost is comparable to hold time, the "
              "paper's argument that architects should optimize "
              "acquisition, not just contention.");
    return 0;
}
