/**
 * @file
 * E5 — Synchronization case study (the paper's MySQL/Apache/Firefox
 * study): exact cycles spent acquiring locks and holding them, per
 * lock class, measured with dense PEC instrumentation that syscall
 * methods could not afford (see E3).
 *
 * Expected shape: every app spends a modest single-digit share of
 * cycles on synchronization, dominated by *frequent, short* critical
 * sections rather than long ones.
 */

#include <cstdio>

#include "stats/table.hh"
#include "sync_common.hh"

int
main()
{
    using namespace limit;
    using benchsync::runApp;
    using stats::Table;

    constexpr sim::Tick ticks = 40'000'000;

    Table summary("E5a: per-application synchronization summary "
                  "(40M-cycle run, 4 cores)");
    summary.header({"app", "work items", "total Mcycles",
                    "% cyc acquiring", "% cyc in crit sec",
                    "acquisitions"});

    Table detail("E5b: per-lock-class detail");
    detail.header({"app", "lock", "acquisitions", "mean acq cyc",
                   "mean held cyc", "p95 held cyc"});

    for (const auto &app : benchsync::appNames()) {
        const auto r = runApp(app, ticks);
        std::uint64_t acq_cycles = 0, held_cycles = 0, acquisitions = 0;
        for (const auto &l : r.locks) {
            acq_cycles += l.acquire.totals[0];
            held_cycles += l.held.totals[0];
            acquisitions += l.held.entries;
            detail.beginRow()
                .cell(r.app)
                .cell(l.name)
                .cell(l.held.entries)
                .cell(l.acquire.mean(0), 0)
                .cell(l.held.mean(0), 0)
                .cell(l.held.histogram.quantile(0.95), 0);
        }
        summary.beginRow()
            .cell(r.app)
            .cell(r.workItems)
            .cell(static_cast<double>(r.totalCycles) / 1e6, 1)
            .cell(analysis::percentOf(acq_cycles, r.totalCycles), 2)
            .cell(analysis::percentOf(held_cycles, r.totalCycles), 2)
            .cell(acquisitions);
    }

    std::fputs(summary.render().c_str(), stdout);
    std::puts("");
    std::fputs(detail.render().c_str(), stdout);
    std::puts("\nShape check: synchronization is a modest share of "
              "total cycles in every app, and mean critical sections "
              "are short (hundreds to a few thousand cycles) —\n"
              "lock *acquisition* cost is comparable to hold time, the "
              "paper's argument that architects should optimize "
              "acquisition, not just contention.");
    return 0;
}
