/**
 * @file
 * E4 — Precision: sampling vs. precise counting on short segments.
 *
 * A thread alternates between a target region of L instructions and a
 * filler phase, for L swept across 3.5 decades. The target region's
 * instruction count is estimated (a) by overflow sampling at two
 * periods and (b) by PEC precise region measurement, then compared
 * to the analytically known ground truth. Expected shape (paper):
 * sampling error explodes once L falls below the sampling period —
 * short segments are unmeasurable — while precise counting stays
 * within a fraction of a percent at every L.
 */

#include <cmath>
#include <cstdio>
#include <vector>

#include "analysis/args.hh"
#include "analysis/bundle.hh"
#include "analysis/campaign.hh"
#include "analysis/profile_report.hh"
#include "analysis/trace_report.hh"
#include "baseline/sampler.hh"
#include "pec/pec.hh"
#include "stats/table.hh"

namespace {

using namespace limit;

constexpr unsigned iterations = 400;
constexpr std::uint64_t fillerInstrs = 20'000;

/** Jittered filler defeats sampling/workload phase aliasing. */
std::uint64_t
fillerFor(Rng &rng)
{
    // Jitter on the order of the largest sampling period under test.
    return fillerInstrs + rng.below(60'000);
}

/** No branches: instruction counts are exact. */
sim::ComputeProfile
straight()
{
    sim::ComputeProfile p;
    p.branchFrac = 0;
    p.mispredictRate = 0;
    return p;
}

/** Run the workload once; measure the region with one method. */
double
runSampled(std::uint64_t segment, std::uint64_t period,
           std::uint64_t seed,
           const analysis::BenchArgs *trace = nullptr)
{
    analysis::SimBundle b(
        analysis::BundleOptions::builder()
            .cores(1)
            .pmuWidth(30)
            .seed(seed)
            .traceCapacity(trace ? trace->captureCap() : 0)
            .timelineInterval(
                trace ? trace->captureTimelineInterval() : 0)
            .build());
    baseline::SamplingProfiler prof(b.kernel(), 0,
                                    sim::EventType::Instructions,
                                    period);
    const auto region = b.machine().regions().intern("target");
    b.kernel().spawn("t", [&](sim::Guest &g) -> sim::Task<void> {
        for (unsigned i = 0; i < iterations; ++i) {
            co_await g.regionEnter(region);
            co_await g.compute(segment, straight());
            co_await g.regionExit();
            co_await g.compute(fillerFor(g.rng()), straight());
        }
        co_return;
    });
    b.machine().run();
    prof.aggregate();
    if (trace)
        analysis::writeStandardArtifacts(b, *trace, "bench_e04_sampling_accuracy");
    return prof.estimate(region);
}

double
runPec(std::uint64_t segment)
{
    analysis::SimBundle b(
        analysis::BundleOptions::builder().cores(1).build());
    pec::PecSession session(b.kernel());
    session.addEvent(0, sim::EventType::Instructions);
    pec::RegionProfilerConfig rc;
    rc.counters = {0};
    pec::RegionProfiler prof(session, rc);
    const auto region = b.machine().regions().intern("target");
    b.kernel().spawn("t", [&](sim::Guest &g) -> sim::Task<void> {
        co_await prof.calibrate(g);
        for (unsigned i = 0; i < iterations; ++i) {
            co_await prof.enter(g, region);
            co_await g.compute(segment, straight());
            co_await prof.exit(g, region);
            co_await g.compute(fillerFor(g.rng()), straight());
        }
        co_return;
    });
    b.machine().run();
    return static_cast<double>(prof.stats(region).totals[0]);
}

double
relErrPct(double est, double truth)
{
    return 100.0 * std::fabs(est - truth) / truth;
}

} // namespace

int
main(int argc, char **argv)
{
    using limit::stats::Table;

    const auto args = limit::analysis::parseBenchArgs(
        argc, argv, {.seeds = 8, .jobs = 1},
        "sampling seeds averaged per segment length");
    const unsigned seeds = args.seeds;

    Table t("E4: target-segment instruction estimate error vs segment "
            "length (400 visits each)");
    t.header({"segment len", "truth", "pec est", "pec err%",
              "sample@4k err%", "sample@64k err%"});

    const std::vector<std::uint64_t> lengths = {
        100, 300, 1000, 3000, 10'000, 30'000, 100'000};

    // One job per (L, method, seed) estimate; the whole sweep fans
    // out at once and the table is assembled from the flat results.
    struct Job
    {
        std::uint64_t L;
        std::uint64_t period; // 0 = PEC precise measurement
        std::uint64_t seed;
    };
    std::vector<Job> jobs;
    for (std::uint64_t L : lengths) {
        jobs.push_back({L, 0, 0});
        for (unsigned s = 0; s < seeds; ++s)
            jobs.push_back({L, 4'000, 11 + s});
        for (unsigned s = 0; s < seeds; ++s)
            jobs.push_back({L, 64'000, 11 + s});
    }
    const std::vector<double> estimates = limit::analysis::mapGuarded(
        limit::analysis::campaignOptions(args), jobs.size(),
        [&](std::size_t i) {
            const Job &j = jobs[i];
            return j.period == 0 ? runPec(j.L)
                                 : runSampled(j.L, j.period, j.seed);
        });

    std::size_t cursor = 0;
    for (std::uint64_t L : lengths) {
        const double truth = static_cast<double>(L) * iterations;
        const double pec = estimates[cursor++];
        double fine_err = 0, coarse_err = 0;
        for (unsigned s = 0; s < seeds; ++s)
            fine_err += relErrPct(estimates[cursor++], truth);
        for (unsigned s = 0; s < seeds; ++s)
            coarse_err += relErrPct(estimates[cursor++], truth);
        t.beginRow()
            .cell(L)
            .cell(truth, 0)
            .cell(pec, 0)
            .cell(relErrPct(pec, truth), 3)
            .cell(fine_err / seeds, 1)
            .cell(coarse_err / seeds, 1);
    }
    std::fputs(t.render().c_str(), stdout);
    std::puts("\nShape check: precise counting holds sub-percent error "
              "at every length; sampling error grows without bound as "
              "segments shrink below the sampling period (short\n"
              "segments are effectively invisible), matching the "
              "paper's precision argument.");

    // Dedicated traced re-run of one sampling point — the timeline
    // shows the sampling PMIs landing against the region boundaries.
    if (args.instrumented())
        runSampled(1000, 4'000, 11, &args);
    return 0;
}
