/**
 * @file
 * E1 — Counter access cost (the paper's headline table).
 *
 * Measures the average cost of one 64-bit virtualized counter read
 * for every access method, in simulated cycles and nanoseconds at the
 * nominal 3 GHz clock. Expected shape (paper): the PEC fast read
 * lands in the low tens of nanoseconds; PAPI-class reads are roughly
 * an order of magnitude slower; perf_event syscall reads one to two
 * orders of magnitude slower.
 */

#include <cstdio>
#include <memory>

#include "analysis/bundle.hh"
#include "baseline/readers.hh"
#include "pec/pec.hh"
#include "stats/table.hh"

namespace {

using namespace limit;

/** Average guest cost of one read, measured over many iterations. */
sim::Tick
measure(baseline::CounterReader &reader, analysis::SimBundle &bundle)
{
    constexpr int reps = 2000;
    sim::Tick total = 0;
    bundle.kernel().spawn(
        "measure", [&](sim::Guest &g) -> sim::Task<void> {
            // Warm-up: first-touch costs (TLB, cache) out of the way.
            for (int i = 0; i < 16; ++i) {
                const std::uint64_t v = co_await reader.read(g, 0);
                (void)v;
            }
            const sim::Tick t0 = g.now();
            for (int i = 0; i < reps; ++i) {
                const std::uint64_t v = co_await reader.read(g, 0);
                (void)v;
            }
            total = g.now() - t0;
            co_return;
        });
    bundle.machine().run();
    return total / reps;
}

analysis::BundleOptions
options()
{
    analysis::BundleOptions o;
    o.cores = 1;
    return o;
}

} // namespace

int
main()
{
    using limit::stats::Table;

    struct Row
    {
        std::string method;
        sim::Tick cycles;
    };
    std::vector<Row> rows;

    // PEC policies.
    for (auto policy :
         {pec::OverflowPolicy::KernelFixup, pec::OverflowPolicy::DoubleCheck,
          pec::OverflowPolicy::NaiveSum}) {
        analysis::SimBundle b(options());
        pec::PecConfig pc;
        pc.policy = policy;
        pec::PecSession session(b.kernel(), pc);
        session.addEvent(0, sim::EventType::Instructions);
        baseline::PecReader reader(session);
        rows.push_back({reader.name(), measure(reader, b)});
    }
    {
        analysis::SimBundle b(options());
        b.kernel().perf().setupCounting(0, sim::EventType::Instructions,
                                        true, false);
        baseline::PapiReader reader;
        rows.push_back({reader.name(), measure(reader, b)});
    }
    {
        analysis::SimBundle b(options());
        b.kernel().perf().setupCounting(0, sim::EventType::Instructions,
                                        true, false);
        baseline::PerfSyscallReader reader;
        rows.push_back({reader.name(), measure(reader, b)});
    }
    {
        analysis::SimBundle b(options());
        baseline::RusageReader reader;
        rows.push_back({reader.name(), measure(reader, b)});
    }

    const double pec_ns = sim::ticksToNs(rows[0].cycles);

    Table t("E1: cost of one virtualized counter read "
            "(simulated, 3 GHz nominal)");
    t.header({"method", "cycles/read", "ns/read", "slowdown vs pec"});
    for (const auto &r : rows) {
        t.beginRow()
            .cell(r.method)
            .cell(static_cast<std::uint64_t>(r.cycles))
            .cell(sim::ticksToNs(r.cycles), 1)
            .cell(sim::ticksToNs(r.cycles) / pec_ns, 1);
    }
    std::fputs(t.render().c_str(), stdout);

    std::printf("\nPaper shape check: pec read = %.1f ns (low tens of "
                "ns), papi ~%.0fx, perf-syscall ~%.0fx (one to two "
                "orders of magnitude).\n",
                pec_ns, sim::ticksToNs(rows[3].cycles) / pec_ns,
                sim::ticksToNs(rows[4].cycles) / pec_ns);
    return 0;
}
