/**
 * @file
 * E1 — Counter access cost (the paper's headline table).
 *
 * Measures the average cost of one 64-bit virtualized counter read
 * for every access method, in simulated cycles and nanoseconds at the
 * nominal 3 GHz clock. Expected shape (paper): the PEC fast read
 * lands in the low tens of nanoseconds; PAPI-class reads are roughly
 * an order of magnitude slower; perf_event syscall reads one to two
 * orders of magnitude slower.
 */

#include <cstdio>
#include <memory>
#include <vector>

#include "analysis/args.hh"
#include "analysis/bundle.hh"
#include "analysis/runner.hh"
#include "baseline/readers.hh"
#include "pec/pec.hh"
#include "stats/table.hh"

namespace {

using namespace limit;

/** Average guest cost of one read, measured over many iterations. */
sim::Tick
measure(baseline::CounterReader &reader, analysis::SimBundle &bundle)
{
    constexpr int reps = 2000;
    sim::Tick total = 0;
    bundle.kernel().spawn(
        "measure", [&](sim::Guest &g) -> sim::Task<void> {
            // Warm-up: first-touch costs (TLB, cache) out of the way.
            for (int i = 0; i < 16; ++i) {
                const std::uint64_t v = co_await reader.read(g, 0);
                (void)v;
            }
            const sim::Tick t0 = g.now();
            for (int i = 0; i < reps; ++i) {
                const std::uint64_t v = co_await reader.read(g, 0);
                (void)v;
            }
            total = g.now() - t0;
            co_return;
        });
    bundle.machine().run();
    return total / reps;
}

analysis::BundleOptions
options(std::uint64_t seed)
{
    analysis::BundleOptions o;
    o.cores = 1;
    o.seed = 1 + seed;
    return o;
}

struct Row
{
    std::string method;
    sim::Tick cycles;
};

constexpr unsigned numMethods = 6;

/** Measure method `m` (0-2 = PEC policies, then papi/perf/rusage). */
Row
runMethod(unsigned m, std::uint64_t seed)
{
    analysis::SimBundle b(options(seed));
    if (m < 3) {
        constexpr pec::OverflowPolicy policies[3] = {
            pec::OverflowPolicy::KernelFixup,
            pec::OverflowPolicy::DoubleCheck,
            pec::OverflowPolicy::NaiveSum};
        pec::PecConfig pc;
        pc.policy = policies[m];
        pec::PecSession session(b.kernel(), pc);
        session.addEvent(0, sim::EventType::Instructions);
        baseline::PecReader reader(session);
        return {reader.name(), measure(reader, b)};
    }
    if (m == 3) {
        b.kernel().perf().setupCounting(0, sim::EventType::Instructions,
                                        true, false);
        baseline::PapiReader reader;
        return {reader.name(), measure(reader, b)};
    }
    if (m == 4) {
        b.kernel().perf().setupCounting(0, sim::EventType::Instructions,
                                        true, false);
        baseline::PerfSyscallReader reader;
        return {reader.name(), measure(reader, b)};
    }
    baseline::RusageReader reader;
    return {reader.name(), measure(reader, b)};
}

} // namespace

int
main(int argc, char **argv)
{
    using limit::stats::Table;

    const auto args = limit::analysis::parseBenchArgs(
        argc, argv, {.seeds = 1, .jobs = 1},
        "simulation seeds averaged per method");
    limit::analysis::ParallelRunner pool(args.jobs);

    const std::vector<Row> raw = pool.map(
        numMethods * args.seeds, [&](std::size_t i) {
            return runMethod(static_cast<unsigned>(i / args.seeds),
                             i % args.seeds);
        });
    std::vector<Row> rows;
    for (unsigned m = 0; m < numMethods; ++m) {
        double sum = 0;
        for (unsigned s = 0; s < args.seeds; ++s)
            sum += static_cast<double>(raw[m * args.seeds + s].cycles);
        rows.push_back({raw[m * args.seeds].method,
                        static_cast<sim::Tick>(sum / args.seeds + 0.5)});
    }

    const double pec_ns = sim::ticksToNs(rows[0].cycles);

    Table t("E1: cost of one virtualized counter read "
            "(simulated, 3 GHz nominal)");
    t.header({"method", "cycles/read", "ns/read", "slowdown vs pec"});
    for (const auto &r : rows) {
        t.beginRow()
            .cell(r.method)
            .cell(static_cast<std::uint64_t>(r.cycles))
            .cell(sim::ticksToNs(r.cycles), 1)
            .cell(sim::ticksToNs(r.cycles) / pec_ns, 1);
    }
    std::fputs(t.render().c_str(), stdout);

    std::printf("\nPaper shape check: pec read = %.1f ns (low tens of "
                "ns), papi ~%.0fx, perf-syscall ~%.0fx (one to two "
                "orders of magnitude).\n",
                pec_ns, sim::ticksToNs(rows[3].cycles) / pec_ns,
                sim::ticksToNs(rows[4].cycles) / pec_ns);
    return 0;
}
