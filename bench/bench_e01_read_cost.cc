/**
 * @file
 * E1 — Counter access cost (the paper's headline table).
 *
 * Measures the average cost of one 64-bit virtualized counter read
 * for every access method, in simulated cycles and nanoseconds at the
 * nominal 3 GHz clock. Expected shape (paper): the PEC fast read
 * lands in the low tens of nanoseconds; PAPI-class reads are roughly
 * an order of magnitude slower; perf_event syscall reads one to two
 * orders of magnitude slower.
 */

#include <cstdio>
#include <memory>
#include <vector>

#include "analysis/args.hh"
#include "analysis/bundle.hh"
#include "analysis/campaign.hh"
#include "analysis/profile_report.hh"
#include "analysis/trace_report.hh"
#include "baseline/source_set.hh"
#include "stats/table.hh"

namespace {

using namespace limit;

/** Average guest cost of one read, measured over many iterations. */
sim::Tick
measure(limit::CounterSource &reader, analysis::SimBundle &bundle)
{
    constexpr int reps = 2000;
    sim::Tick total = 0;
    bundle.kernel().spawn(
        "measure", [&](sim::Guest &g) -> sim::Task<void> {
            // Warm-up: first-touch costs (TLB, cache) out of the way.
            for (int i = 0; i < 16; ++i) {
                const std::uint64_t v = co_await reader.read(g, 0);
                (void)v;
            }
            const sim::Tick t0 = g.now();
            for (int i = 0; i < reps; ++i) {
                const std::uint64_t v = co_await reader.read(g, 0);
                (void)v;
            }
            total = g.now() - t0;
            co_return;
        });
    bundle.machine().run();
    return total / reps;
}

struct Row
{
    std::string method;
    sim::Tick cycles;
};

/**
 * Measure one access method from the standard roster. Every method
 * goes through the same limit::CounterSource interface, so the bench
 * body has no per-method branching — adding a source to
 * baseline::standardSources() adds a table row here.
 */
Row
runMethod(const baseline::SourceSpec &spec, std::uint64_t seed,
          const analysis::BenchArgs *trace = nullptr)
{
    analysis::SimBundle b(
        analysis::BundleOptions::builder()
            .cores(1)
            .seed(1 + seed)
            .traceCapacity(trace ? trace->captureCap() : 0)
            .timelineInterval(
                trace ? trace->captureTimelineInterval() : 0)
            .build());
    baseline::SourceInstance inst =
        spec.make(b.kernel(), 0, sim::EventType::Instructions, true,
                  false);
    Row row{inst.source->name(), measure(*inst.source, b)};
    if (trace)
        analysis::writeStandardArtifacts(b, *trace, "bench_e01_read_cost");
    return row;
}

} // namespace

int
main(int argc, char **argv)
{
    using limit::stats::Table;

    const auto args = limit::analysis::parseBenchArgs(
        argc, argv, {.seeds = 1, .jobs = 1},
        "simulation seeds averaged per method");

    const std::vector<limit::baseline::SourceSpec> methods =
        limit::baseline::standardSources();
    const unsigned numMethods = static_cast<unsigned>(methods.size());

    const std::vector<Row> raw = limit::analysis::mapGuarded(
        limit::analysis::campaignOptions(args),
        numMethods * args.seeds, [&](std::size_t i) {
            return runMethod(methods[i / args.seeds], i % args.seeds);
        });
    std::vector<Row> rows;
    for (unsigned m = 0; m < numMethods; ++m) {
        double sum = 0;
        for (unsigned s = 0; s < args.seeds; ++s)
            sum += static_cast<double>(raw[m * args.seeds + s].cycles);
        rows.push_back({raw[m * args.seeds].method,
                        static_cast<sim::Tick>(sum / args.seeds + 0.5)});
    }

    const double pec_ns = sim::ticksToNs(rows[0].cycles);

    Table t("E1: cost of one virtualized counter read "
            "(simulated, 3 GHz nominal)");
    t.header({"method", "cycles/read", "ns/read", "slowdown vs pec"});
    for (const auto &r : rows) {
        t.beginRow()
            .cell(r.method)
            .cell(static_cast<std::uint64_t>(r.cycles))
            .cell(sim::ticksToNs(r.cycles), 1)
            .cell(sim::ticksToNs(r.cycles) / pec_ns, 1);
    }
    std::fputs(t.render().c_str(), stdout);

    std::printf("\nPaper shape check: pec read = %.1f ns (low tens of "
                "ns), papi ~%.0fx, perf-syscall ~%.0fx (one to two "
                "orders of magnitude).\n",
                pec_ns, sim::ticksToNs(rows[3].cycles) / pec_ns,
                sim::ticksToNs(rows[4].cycles) / pec_ns);

    // Dedicated traced re-run of the headline method.
    if (args.instrumented())
        runMethod(methods[0], 0, &args);
    return 0;
}
