/**
 * @file
 * E13 — Read-method resilience under deterministic fault injection.
 *
 * The fault subsystem (docs/FAULTS.md) replays the adversarial
 * schedules the paper's double-check read was designed around —
 * preemption inside the read window, overflow landing between the
 * accumulator load and the rdpmc — plus harsher classes real kernels
 * exhibit (lost or delayed PMIs, corrupted save/restore). Two tables:
 *
 *  1. Per-read error: the worst |read − truth| any single read
 *     returned, per policy per recoverable fault class. The safe
 *     policies (kernel-fixup, double-check) must be zero everywhere;
 *     naive-sum must lose a full 2^width when the overflow lands in
 *     its window; the bare rdpmc ('none') undercounts by the wrap
 *     modulus as soon as anything wraps.
 *
 *  2. Settled accounting gap: |processTotal − ledger| after the run,
 *     per destructive fault class. A delayed PMI must settle to zero
 *     (eventual exactness); a dropped PMI permanently loses one wrap;
 *     corrupt-save / skip-restore leave gaps no userspace policy can
 *     repair — the point is that the gap is *visible*, so a harness
 *     comparing against ground truth detects the faulty kernel.
 *
 * `--faults SPEC` replaces the built-in fault classes with a custom
 * plan and reports both metrics for it under every policy.
 */

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "analysis/args.hh"
#include "analysis/bundle.hh"
#include "analysis/campaign.hh"
#include "analysis/profile_report.hh"
#include "analysis/trace_report.hh"
#include "fault/plan.hh"
#include "pec/pec.hh"
#include "stats/table.hh"

namespace {

using namespace limit;

constexpr unsigned kWidth = 18;      // wraps every 262144 instructions
constexpr unsigned kReads = 1'500;
constexpr std::uint64_t kWorkPerRead = 500;
constexpr sim::Tick kQuantum = 20'000;

/**
 * PlanController that snapshots the exact expected value at each
 * AfterRdpmc the victim passes, *before* the injection at that step
 * runs (a fault armed after the rdpmc latched postdates the read;
 * retried reads re-snapshot). Same discipline as fault::explore().
 */
class ReadVerifier final : public fault::PlanController
{
  public:
    ReadVerifier(sim::Machine &machine, fault::Plan plan,
                 sim::ThreadId victim)
        : PlanController(machine, std::move(plan)), victim_(victim)
    {
    }

    std::uint64_t lastExpected() const { return lastExpected_; }

    void
    onPecReadStep(sim::GuestContext &ctx, unsigned ctr,
                  fault::ReadStep step) override
    {
        if (step == fault::ReadStep::AfterRdpmc && ctx.tid() == victim_) {
            lastExpected_ =
                ctx.ledger().count(sim::EventType::Instructions,
                                   sim::PrivMode::User) +
                counterBias(ctr);
        }
        PlanController::onPecReadStep(ctx, ctr, step);
    }

  private:
    sim::ThreadId victim_;
    std::uint64_t lastExpected_ = 0;
};

struct Outcome
{
    std::uint64_t reads = 0;
    std::uint64_t injected = 0;
    /** Worst single-read |got − expected| the victim observed. */
    std::uint64_t maxReadError = 0;
    /** |processTotal − summed ledger| once everything settled. */
    std::uint64_t settledGap = 0;
};

Outcome
run(pec::OverflowPolicy policy, const fault::Plan &plan,
    std::uint64_t seed, const analysis::BenchArgs *trace = nullptr)
{
    analysis::SimBundle b(
        analysis::BundleOptions::builder()
            .cores(1) // a forced switch needs a competitor on the core
            .pmuWidth(kWidth)
            .quantum(kQuantum)
            .seed(1 + seed)
            .traceCapacity(trace ? trace->captureCap() : 0)
            .timelineInterval(
                trace ? trace->captureTimelineInterval() : 0)
            .build());
    pec::PecConfig pc;
    pc.policy = policy;
    pec::PecSession session(b.kernel(), pc);
    session.addEvent(0, sim::EventType::Instructions, /*user=*/true,
                     /*kernel_mode=*/false);

    Outcome out;
    bool done = false;
    ReadVerifier *verifier_ptr = nullptr; // set below, before run()
    const sim::ThreadId victim = b.kernel().spawn(
        "victim", [&](sim::Guest &g) -> sim::Task<void> {
            ReadVerifier &v = *verifier_ptr;
            for (unsigned i = 0; i < kReads; ++i) {
                co_await g.compute(kWorkPerRead);
                const std::uint64_t got = co_await session.read(g, 0);
                const std::uint64_t want = v.lastExpected();
                const std::uint64_t err =
                    got > want ? got - want : want - got;
                if (err > out.maxReadError)
                    out.maxReadError = err;
                ++out.reads;
            }
            // Outlive any delayed PMI so eventual exactness can
            // actually settle before the final harvest.
            co_await g.compute(200'000);
            done = true;
        });
    b.kernel().spawn("competitor", [&](sim::Guest &g) -> sim::Task<void> {
        while (!done && !g.shouldStop())
            co_await g.compute(60);
    });

    ReadVerifier verifier(b.machine(), plan, victim);
    verifier_ptr = &verifier;
    b.machine().setFaults(&verifier);
    b.machine().run();
    b.machine().setFaults(nullptr);
    out.injected = verifier.injected();

    std::uint64_t truth = 0;
    for (unsigned t = 0; t < b.kernel().numThreads(); ++t) {
        truth += b.kernel().thread(t).ctx.ledger().count(
            sim::EventType::Instructions, sim::PrivMode::User);
    }
    const std::uint64_t total = session.processTotal(0);
    out.settledGap = total > truth ? total - truth : truth - total;

    if (trace)
        analysis::writeStandardArtifacts(b, *trace, "bench_e13_fault_resilience");
    return out;
}

struct FaultClass
{
    const char *label;
    const char *spec; // Plan grammar; "" = no injection
};

fault::Plan
planOf(const char *spec)
{
    fault::Plan plan;
    if (*spec != '\0') {
        std::string err;
        if (!fault::Plan::parse(spec, plan, err)) {
            std::fprintf(stderr, "bad built-in fault spec '%s': %s\n",
                         spec, err.c_str());
            std::exit(1);
        }
    }
    return plan;
}

const std::vector<pec::OverflowPolicy> kPolicies = {
    pec::OverflowPolicy::None, pec::OverflowPolicy::NaiveSum,
    pec::OverflowPolicy::KernelFixup, pec::OverflowPolicy::DoubleCheck};

/** One table: rows = fault classes, one metric column per policy. */
void
renderTable(const char *title, const char *metric,
            const std::vector<FaultClass> &classes,
            const std::vector<Outcome> &runs, unsigned seeds,
            bool settled)
{
    stats::Table t(title);
    std::vector<std::string> head{"fault class"};
    for (auto policy : kPolicies)
        head.push_back(std::string(pec::policyName(policy)) + " " +
                       metric);
    head.push_back("injected");
    t.header(head);

    std::size_t cursor = 0;
    for (const FaultClass &fc : classes) {
        auto &row = t.beginRow();
        row.cell(fc.label);
        std::uint64_t injected = 0;
        for (std::size_t p = 0; p < kPolicies.size(); ++p) {
            std::uint64_t worst = 0;
            for (unsigned s = 0; s < seeds; ++s) {
                const Outcome &r = runs[cursor++];
                const std::uint64_t v =
                    settled ? r.settledGap : r.maxReadError;
                if (v > worst)
                    worst = v;
                injected += r.injected;
            }
            row.cell(worst);
        }
        row.cell(injected);
    }
    std::fputs(t.render().c_str(), stdout);
}

} // namespace

int
main(int argc, char **argv)
{
    const auto args = analysis::parseBenchArgs(
        argc, argv, {.seeds = 1, .jobs = 1},
        "simulation seeds per (fault class, policy) cell; worst case "
        "reported");
    const analysis::CampaignOptions copts =
        analysis::campaignOptions(args);

    // Recoverable classes: per-read exactness is the bar.
    const std::vector<FaultClass> perRead = {
        {"(no faults)", ""},
        {"preempt-in-read", "preempt-read:step=0:nth=2"},
        {"overflow-in-read", "overflow-read:step=1:margin=1:nth=2"},
    };
    // Destructive / deferred classes: the settled gap is the bar.
    const std::vector<FaultClass> settled = {
        {"delay-pmi (30k ticks)", "delay-pmi:ticks=30000"},
        {"drop-pmi", "drop-pmi:nth=2"},
        {"corrupt-save", "corrupt-save:value=123456789:nth=3"},
        {"skip-restore", "skip-restore:nth=3"},
    };

    // Custom plan from --faults replaces the built-in classes.
    if (!args.faults.empty()) {
        std::vector<Outcome> runs;
        for (auto policy : kPolicies)
            runs.push_back(run(policy, planOf(args.faults.c_str()), 0));
        stats::Table t("E13 (custom plan): " + args.faults);
        t.header({"policy", "max |read-truth|", "settled gap",
                  "injected"});
        for (std::size_t p = 0; p < kPolicies.size(); ++p) {
            t.beginRow()
                .cell(pec::policyName(kPolicies[p]))
                .cell(runs[p].maxReadError)
                .cell(runs[p].settledGap)
                .cell(runs[p].injected);
        }
        std::fputs(t.render().c_str(), stdout);
        return 0;
    }

    struct Job
    {
        const FaultClass *fc;
        pec::OverflowPolicy policy;
        std::uint64_t seed;
    };
    const auto enqueue = [&](const std::vector<FaultClass> &classes) {
        std::vector<Job> jobs;
        for (const FaultClass &fc : classes)
            for (auto policy : kPolicies)
                for (unsigned s = 0; s < args.seeds; ++s)
                    jobs.push_back({&fc, policy, s});
        return analysis::mapGuarded(
            copts, jobs.size(), [&](std::size_t i) {
                const Job &j = jobs[i];
                return run(j.policy, planOf(j.fc->spec), j.seed);
            });
    };

    renderTable(
        "E13a: worst single-read error vs ground truth (18-bit "
        "counter, 1500 reads, forced schedules)",
        "max err", perRead, enqueue(perRead), args.seeds,
        /*settled=*/false);
    std::puts("");
    renderTable(
        "E13b: accounting gap after the run settles (destructive and "
        "deferred fault classes)",
        "gap", settled, enqueue(settled), args.seeds,
        /*settled=*/true);

    std::puts(
        "\nShape check: kernel-fixup and double-check read exactly "
        "under every recoverable class; naive-sum loses 2^18 = 262144 "
        "when the\noverflow lands inside its read window; bare rdpmc "
        "('none') undercounts by the wrap modulus whenever anything "
        "wraps. A delayed PMI\nsettles to a zero gap for accumulating "
        "policies; dropped PMIs and save/restore corruption leave "
        "permanent, *visible* gaps — the\nharness detects a faulty "
        "kernel instead of silently reporting wrong counts.");

    // Traced re-run: naive-sum with the overflow landing mid-read is
    // the paper's motivating interleaving — the timeline shows the
    // injection record between the accumulator load and the PMI.
    if (args.instrumented()) {
        run(pec::OverflowPolicy::NaiveSum,
            planOf("overflow-read:step=1:margin=1:nth=2"), 0, &args);
    }
    return 0;
}
