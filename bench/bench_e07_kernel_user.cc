/**
 * @file
 * E7 — Kernel/user instruction breakdown per workload.
 *
 * Uses two mode-filtered counters (user-only and kernel-only
 * instructions, read through PEC) and cross-checks them against the
 * simulator's exact ledger. Expected shape (paper): server workloads
 * execute a large kernel share (the web server most of all), the
 * browser is user-dominated, and SPEC-class kernels are ~pure user —
 * so characterizing modern server apps with user-only counting (or
 * SPEC alone) misses much of the picture.
 */

#include <cstdio>
#include <memory>
#include <vector>

#include "analysis/args.hh"
#include "analysis/bundle.hh"
#include "analysis/runner.hh"
#include "analysis/trace_report.hh"
#include "os/sysno.hh"
#include "pec/pec.hh"
#include "stats/table.hh"
#include "workloads/browser.hh"
#include "workloads/kernels.hh"
#include "workloads/oltp.hh"
#include "workloads/webserver.hh"

namespace {

using namespace limit;

struct Breakdown
{
    std::uint64_t pecUser = 0;
    std::uint64_t pecKernel = 0;
    std::uint64_t ledgerUser = 0;
    std::uint64_t ledgerKernel = 0;
};

/** Run `which` for `ticks`, measuring both modes via PEC counters. */
Breakdown
run(const std::string &which, sim::Tick ticks, std::uint64_t seed,
    const analysis::BenchArgs *trace = nullptr)
{
    analysis::SimBundle b(
        analysis::BundleOptions::builder()
            .cores(4)
            .seed(1 + seed)
            .traceCapacity(trace ? trace->traceCap : 0)
            .build());
    pec::PecSession session(b.kernel());
    session.addEvent(0, sim::EventType::Instructions, true, false);
    session.addEvent(1, sim::EventType::Instructions, false, true);

    std::unique_ptr<workloads::OltpServer> oltp;
    std::unique_ptr<workloads::WebServer> web;
    std::unique_ptr<workloads::BrowserLoop> browser;
    std::unique_ptr<workloads::ComputeKernel> kern;

    if (which == "oltp (MySQL-like)") {
        workloads::OltpConfig cfg;
        cfg.clients = 6;
        oltp = std::make_unique<workloads::OltpServer>(
            b.machine(), b.kernel(), cfg, 4321 + seed);
        oltp->spawn();
    } else if (which == "web (Apache-like)") {
        workloads::WebConfig cfg;
        cfg.workers = 6;
        web = std::make_unique<workloads::WebServer>(
            b.machine(), b.kernel(), cfg, 4321 + seed);
        web->spawn();
    } else if (which == "browser (Firefox-like)") {
        workloads::BrowserConfig cfg;
        browser = std::make_unique<workloads::BrowserLoop>(
            b.machine(), b.kernel(), cfg, 4321 + seed);
        browser->spawn();
    } else if (which == "spec-like: matmul") {
        kern = std::make_unique<workloads::ComputeKernel>(
            b.kernel(), workloads::KernelKind::MatMul, 8 << 20, 4321 + seed);
        kern->spawn();
    } else {
        kern = std::make_unique<workloads::ComputeKernel>(
            b.kernel(), workloads::KernelKind::PtrChase, 16 << 20, 4321 + seed);
        kern->spawn();
    }

    // Per-thread PEC values are harvested host-side after the run
    // (accumulator + saved hardware value once every thread exits)
    // and cross-checked against the exact ledger.
    Breakdown out;
    b.run(ticks);
    out.ledgerUser = analysis::totalEvent(
        b.kernel(), sim::EventType::Instructions, sim::PrivMode::User);
    out.ledgerKernel = analysis::totalEvent(
        b.kernel(), sim::EventType::Instructions,
        sim::PrivMode::Kernel);
    out.pecUser = session.processTotal(0);
    out.pecKernel = session.processTotal(1);
    if (trace)
        analysis::writeTraceReport(b, trace->trace);
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    using limit::stats::Table;

    const auto args = limit::analysis::parseBenchArgs(
        argc, argv, {.seeds = 1, .jobs = 1},
        "workload seeds averaged per row");
    limit::analysis::ParallelRunner pool(args.jobs);

    constexpr sim::Tick ticks = 30'000'000;
    Table t("E7: kernel/user dynamic instruction breakdown "
            "(mode-filtered counters, 30M-cycle run)");
    t.header({"workload", "user Minstr", "kernel Minstr", "kernel %",
              "counter-vs-ledger drift %"});

    const std::vector<std::string> workloads = {
        "oltp (MySQL-like)", "web (Apache-like)",
        "browser (Firefox-like)", "spec-like: matmul",
        "spec-like: ptrchase"};
    const std::vector<Breakdown> runs = pool.map(
        workloads.size() * args.seeds, [&](std::size_t i) {
            return run(workloads[i / args.seeds], ticks,
                       i % args.seeds);
        });

    for (std::size_t w = 0; w < workloads.size(); ++w) {
        double user = 0, kern = 0, kern_pct = 0, drift = 0;
        for (unsigned s = 0; s < args.seeds; ++s) {
            const Breakdown &r = runs[w * args.seeds + s];
            user += static_cast<double>(r.ledgerUser) / 1e6;
            kern += static_cast<double>(r.ledgerKernel) / 1e6;
            kern_pct += analysis::percentOf(
                r.ledgerKernel, r.ledgerUser + r.ledgerKernel);
            drift += 100.0 *
                     (static_cast<double>(r.pecUser + r.pecKernel) -
                      static_cast<double>(r.ledgerUser +
                                          r.ledgerKernel)) /
                     static_cast<double>(r.ledgerUser + r.ledgerKernel);
        }
        const double n = args.seeds;
        t.beginRow()
            .cell(workloads[w])
            .cell(user / n, 2)
            .cell(kern / n, 2)
            .cell(kern_pct / n, 1)
            .cell(drift / n, 2);
    }
    std::fputs(t.render().c_str(), stdout);
    std::puts("\nShape check: the web server executes the largest "
              "kernel share, OLTP a moderate one, the browser is "
              "user-dominated, and SPEC-class kernels are ~0% kernel\n"
              "— user-only characterization misses a large fraction "
              "of server behaviour. Drift shows the virtualized "
              "counters track the exact ledger closely.");

    if (args.tracing())
        run(workloads[0], ticks, 0, &args);
    return 0;
}
