/**
 * @file
 * E7 — Kernel/user instruction breakdown per workload.
 *
 * Uses two mode-filtered counters (user-only and kernel-only
 * instructions, read through PEC) and cross-checks them against the
 * simulator's exact ledger via prof::KernelProfile, which also gives
 * per-thread context-switch counts and syscall latency histograms
 * when the run is traced (--trace or --profile). Expected shape
 * (paper): server workloads execute a large kernel share (the web
 * server most of all), the browser is user-dominated, and SPEC-class
 * kernels are ~pure user — so characterizing modern server apps with
 * user-only counting (or SPEC alone) misses much of the picture.
 */

#include <cstdio>
#include <memory>
#include <vector>

#include "analysis/args.hh"
#include "analysis/bundle.hh"
#include "analysis/profile_report.hh"
#include "analysis/campaign.hh"
#include "analysis/trace_report.hh"
#include "pec/pec.hh"
#include "prof/kernel_profile.hh"
#include "prof/report.hh"
#include "workloads/browser.hh"
#include "workloads/kernels.hh"
#include "workloads/oltp.hh"
#include "workloads/webserver.hh"

namespace {

using namespace limit;

struct Breakdown
{
    std::uint64_t pecUser = 0;
    std::uint64_t pecKernel = 0;
    prof::KernelProfile profile;
};

/**
 * Run `which` for `ticks`, measuring both modes via PEC counters.
 * `trace_cap` attaches a tracer (populating the profile's syscall
 * latency histograms); `artifacts`, when non-null, marks this the
 * dedicated representative run and writes the --trace / --timeline
 * files it requests.
 */
Breakdown
run(const std::string &which, sim::Tick ticks, std::uint64_t seed,
    unsigned trace_cap = 0,
    const analysis::BenchArgs *artifacts = nullptr)
{
    analysis::SimBundle b(
        analysis::BundleOptions::builder()
            .cores(4)
            .seed(1 + seed)
            .traceCapacity(trace_cap)
            .timelineInterval(
                artifacts ? artifacts->captureTimelineInterval() : 0)
            .build());
    pec::PecSession session(b.kernel());
    session.addEvent(0, sim::EventType::Instructions, true, false);
    session.addEvent(1, sim::EventType::Instructions, false, true);

    std::unique_ptr<workloads::OltpServer> oltp;
    std::unique_ptr<workloads::WebServer> web;
    std::unique_ptr<workloads::BrowserLoop> browser;
    std::unique_ptr<workloads::ComputeKernel> kern;

    if (which == "oltp (MySQL-like)") {
        workloads::OltpConfig cfg;
        cfg.clients = 6;
        oltp = std::make_unique<workloads::OltpServer>(
            b.machine(), b.kernel(), cfg, 4321 + seed);
        oltp->spawn();
    } else if (which == "web (Apache-like)") {
        workloads::WebConfig cfg;
        cfg.workers = 6;
        web = std::make_unique<workloads::WebServer>(
            b.machine(), b.kernel(), cfg, 4321 + seed);
        web->spawn();
    } else if (which == "browser (Firefox-like)") {
        workloads::BrowserConfig cfg;
        browser = std::make_unique<workloads::BrowserLoop>(
            b.machine(), b.kernel(), cfg, 4321 + seed);
        browser->spawn();
    } else if (which == "spec-like: matmul") {
        kern = std::make_unique<workloads::ComputeKernel>(
            b.kernel(), workloads::KernelKind::MatMul, 8 << 20, 4321 + seed);
        kern->spawn();
    } else {
        kern = std::make_unique<workloads::ComputeKernel>(
            b.kernel(), workloads::KernelKind::PtrChase, 16 << 20, 4321 + seed);
        kern->spawn();
    }

    // Per-thread PEC values are harvested host-side after the run
    // (accumulator + saved hardware value once every thread exits)
    // and cross-checked against the exact ledger inside the profile.
    Breakdown out;
    b.run(ticks);
    out.profile = prof::buildKernelProfile(
        b.kernel(),
        b.tracer() ? b.tracer()->merged()
                   : std::vector<trace::TraceRecord>{});
    out.pecUser = session.processTotal(0);
    out.pecKernel = session.processTotal(1);
    if (artifacts) {
        if (b.timeline() != nullptr)
            b.timeline()->finalize(b.machine().maxTime());
        if (artifacts->tracing())
            analysis::writeTraceReport(b, artifacts->trace);
        analysis::writeTimeline(b, *artifacts,
                                "bench_e07_kernel_user");
    }
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    const auto args = limit::analysis::parseBenchArgs(
        argc, argv, {.seeds = 1, .jobs = 1},
        "workload seeds averaged per row");
    constexpr sim::Tick ticks = 30'000'000;

    const std::vector<std::string> workloads = {
        "oltp (MySQL-like)", "web (Apache-like)",
        "browser (Firefox-like)", "spec-like: matmul",
        "spec-like: ptrchase"};
    // A profiled run attaches the tracer to every job so the syscall
    // latency histograms populate; tracing is passive, so the table
    // stays bit-identical to untraced runs.
    const unsigned cap = args.captureCap();
    const std::vector<Breakdown> runs = limit::analysis::mapGuarded(
        limit::analysis::campaignOptions(args),
        workloads.size() * args.seeds, [&](std::size_t i) {
            return run(workloads[i / args.seeds], ticks,
                       i % args.seeds, cap);
        });

    prof::Report report;
    for (std::size_t i = 0; i < runs.size(); ++i) {
        report.addKernel(workloads[i / args.seeds], runs[i].profile,
                         runs[i].pecUser, runs[i].pecKernel);
    }

    std::fputs(report
                   .kernelTable(
                       "E7: kernel/user dynamic instruction breakdown "
                       "(mode-filtered counters, 30M-cycle run)")
                   .render()
                   .c_str(),
               stdout);

    // The exact table EXPERIMENTS.md embeds — regenerate by pasting.
    std::puts("\nEXPERIMENTS.md (E7) markdown:");
    std::fputs(report.kernelMarkdown().c_str(), stdout);

    std::puts("\nShape check: the web server executes the largest "
              "kernel share, OLTP a moderate one, the browser is "
              "user-dominated, and SPEC-class kernels are ~0% kernel\n"
              "— user-only characterization misses a large fraction "
              "of server behaviour. Drift shows the virtualized "
              "counters track the exact ledger closely.");

    if (args.tracing() || args.timelineOn())
        run(workloads[0], ticks, 0, args.captureCap(), &args);
    limit::analysis::writeProfile(report, args, "bench_e07_kernel_user");
    return 0;
}
