/**
 * @file
 * Shared plumbing for the synchronization case-study benches (E5/E6):
 * run each application analogue with cycle-precise lock
 * instrumentation and return its per-call-site prof::SyncProfile.
 *
 * The per-bench LockClassStats/collectLock aggregation helpers that
 * used to live here are gone: all aggregation now happens in
 * prof::SyncProfile / prof::Report (one path for tables, markdown,
 * and the --profile JSON artifact).
 */

#ifndef LIMIT_BENCH_SYNC_COMMON_HH
#define LIMIT_BENCH_SYNC_COMMON_HH

#include <memory>
#include <string>
#include <vector>

#include "analysis/args.hh"
#include "analysis/bundle.hh"
#include "analysis/profile_report.hh"
#include "analysis/trace_report.hh"
#include "base/logging.hh"
#include "fault/plan.hh"
#include "pec/pec.hh"
#include "prof/sync_profile.hh"
#include "workloads/browser.hh"
#include "workloads/oltp.hh"
#include "workloads/webserver.hh"

namespace limit::benchsync {

/**
 * Request for an instrumented (traced) run. The PMU counter width is
 * narrowed so the cycle counter actually wraps at bench scale and the
 * trace shows overflow PMIs alongside switches and futex traffic; the
 * published tables always come from untraced full-width runs.
 */
struct TraceSpec
{
    std::string path;
    unsigned capacity = 65536;
    unsigned pmuWidth = 22; // wraps every ~4.2M cycles at 3 GHz
};

/** One instrumented application run. */
struct SyncRunResult
{
    std::string app;
    sim::Tick wallTicks = 0;
    std::uint64_t totalCycles = 0; // user+kernel, all threads
    std::uint64_t workItems = 0;   // txns / requests / events
    prof::SyncProfile sync;
};

/**
 * Run one app with lock instrumentation for `ticks`. `seed` offsets
 * the workload RNG (0 reproduces the historical tables). A non-null
 * `tspec` attaches a tracer (and narrows the counters, see TraceSpec)
 * and writes the Chrome-trace JSON before returning. A non-null
 * `args` applies the shared bench CLI to the run the same way every
 * other bench does: a --faults plan is installed on the machine
 * (--no-batch/--no-superblock already act through the process-wide
 * execution defaults parseBenchArgs sets). A non-null
 * `artifact_bench` marks this the dedicated representative run: the
 * timeline recorder attaches when --timeline was given and the
 * artifact is written under that bench name before returning (per-job
 * runs pass nullptr so the fan-out stays uninstrumented).
 */
inline SyncRunResult
runApp(const std::string &which, sim::Tick ticks, std::uint64_t seed = 0,
       const TraceSpec *tspec = nullptr,
       const analysis::BenchArgs *args = nullptr,
       const char *artifact_bench = nullptr)
{
    auto ob = analysis::BundleOptions::builder().cores(4).seed(1 + seed);
    if (tspec)
        ob.traceCapacity(tspec->capacity).pmuWidth(tspec->pmuWidth);
    if (artifact_bench && args)
        ob.timelineInterval(args->captureTimelineInterval());
    analysis::SimBundle b(ob.build());

    // Deterministic fault injection, identical to the --faults
    // behaviour of the non-sync benches. The controller must outlive
    // the run; detach before it goes out of scope.
    std::unique_ptr<fault::PlanController> fault_controller;
    if (args && !args->faults.empty()) {
        fault::Plan plan;
        std::string err;
        // parseBenchArgs already validated the grammar up front.
        fatal_if(!fault::Plan::parse(args->faults, plan, err),
                 "bad --faults spec '", args->faults, "': ", err);
        fault_controller = std::make_unique<fault::PlanController>(
            b.machine(), std::move(plan));
        b.machine().setFaults(fault_controller.get());
    }
    pec::PecSession session(b.kernel());
    session.addEvent(0, sim::EventType::Cycles, true, true);
    pec::RegionProfilerConfig rc;
    rc.counters = {0};
    pec::RegionProfiler prof(session, rc);

    // A short-lived helper calibrates read overhead before the app
    // threads begin measuring.
    b.kernel().spawn("calibrate", [&](sim::Guest &g) -> sim::Task<void> {
        co_await prof.calibrate(g);
    });

    SyncRunResult out;
    out.app = which;

    std::unique_ptr<workloads::OltpServer> oltp;
    std::unique_ptr<workloads::WebServer> web;
    std::unique_ptr<workloads::BrowserLoop> browser;

    if (which == "oltp (MySQL-like)") {
        workloads::OltpConfig cfg;
        cfg.clients = 6;
        cfg.readRatio = 0.5;
        oltp = std::make_unique<workloads::OltpServer>(
            b.machine(), b.kernel(), cfg, 1234 + seed);
        oltp->attachProfiler(&prof);
        oltp->attachSyncProfile(&out.sync);
        oltp->spawn();
    } else if (which == "web (Apache-like)") {
        workloads::WebConfig cfg;
        cfg.workers = 6;
        web = std::make_unique<workloads::WebServer>(
            b.machine(), b.kernel(), cfg, 1234 + seed);
        web->attachProfiler(&prof);
        web->attachSyncProfile(&out.sync);
        web->spawn();
    } else {
        workloads::BrowserConfig cfg;
        browser = std::make_unique<workloads::BrowserLoop>(
            b.machine(), b.kernel(), cfg, 1234 + seed);
        browser->attachProfiler(&prof);
        browser->attachSyncProfile(&out.sync);
        browser->spawn();
    }

    out.wallTicks = b.run(ticks);
    out.totalCycles = analysis::totalEvent(b.kernel(),
                                           sim::EventType::Cycles);

    if (oltp)
        out.workItems = oltp->committed();
    else if (web)
        out.workItems = web->served();
    else
        out.workItems = browser->totalEvents();
    if (b.timeline() != nullptr)
        b.timeline()->finalize(b.machine().maxTime());
    if (tspec)
        analysis::writeTraceReport(b, tspec->path);
    if (artifact_bench && args)
        analysis::writeTimeline(b, *args, artifact_bench);
    if (fault_controller)
        b.machine().setFaults(nullptr);
    return out;
}

inline const std::vector<std::string> &
appNames()
{
    static const std::vector<std::string> names = {
        "oltp (MySQL-like)",
        "web (Apache-like)",
        "browser (Firefox-like)",
    };
    return names;
}

} // namespace limit::benchsync

#endif // LIMIT_BENCH_SYNC_COMMON_HH
