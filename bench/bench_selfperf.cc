/**
 * @file
 * Self-throughput benchmark: how fast is the simulator itself?
 *
 * Every other bench reports *simulated* quantities; this one reports
 * host throughput of the simulation loop, so optimizations to the hot
 * path (event application, cache model, run loop) show up as a number
 * that can be tracked across commits. Two scenarios probe the two
 * regimes the suite spends its time in:
 *
 *   - stream: one core running a pure compute kernel — the tight
 *     step/apply/ledger path with almost no kernel involvement;
 *   - oltp: four cores, six clients, syscalls, futexes and context
 *     switches — the scheduling- and memory-heavy path.
 *
 * The stream scenario is also re-run on the per-op reference scheduler
 * (--no-batch equivalent) and with the superblock replay cache off
 * (--no-superblock equivalent) so the horizon-batching and superblock
 * wins are measured in the same process, and on `--jobs` worker
 * threads via the
 * ParallelRunner to measure experiment-level scaling (distinct
 * simulations in parallel, the way the bench suite fans out;
 * single-simulation execution stays serial by design).
 *
 * Timing uses per-thread CPU time (CLOCK_THREAD_CPUTIME_ID), not wall
 * clock: CI runners and dev containers are routinely oversubscribed,
 * and wall clock there measures the neighbours' load, not this code.
 * CPU time is what the simulator actually consumed and is stable to a
 * few percent across runs on a noisy host.
 *
 * Results go to stdout as a table and to BENCH_selfperf.json in the
 * current directory for machine consumption (fields documented in
 * the README).
 */

#include <algorithm>
#include <ctime>
#include <cstdio>
#include <memory>
#include <vector>

#include "analysis/args.hh"
#include "analysis/bundle.hh"
#include "analysis/campaign.hh"
#include "analysis/profile_report.hh"
#include "analysis/runner.hh"
#include "analysis/sensitivity/engine.hh"
#include "analysis/sensitivity/param_space.hh"
#include "analysis/trace_report.hh"
#include "pec/pec.hh"
#include "prof/report.hh"
#include "stats/hdr_histogram.hh"
#include "stats/table.hh"
#include "workloads/kernels.hh"
#include "workloads/oltp.hh"

namespace {

using namespace limit;

constexpr sim::Tick runTicks = 60'000'000;

/** CPU time consumed by the calling thread, in seconds. */
double
threadCpuSec()
{
    timespec ts{};
    clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
    return static_cast<double>(ts.tv_sec) +
           static_cast<double>(ts.tv_nsec) * 1e-9;
}

/**
 * CPU time consumed by the whole process, in seconds. The sensitivity
 * lattice fans its runs across ParallelRunner worker threads, so the
 * calling thread's clock misses nearly all of the work; the process
 * clock captures every worker and stays oversubscription-immune the
 * same way the per-thread clock does.
 */
double
processCpuSec()
{
    timespec ts{};
    clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
    return static_cast<double>(ts.tv_sec) +
           static_cast<double>(ts.tv_nsec) * 1e-9;
}

struct Throughput
{
    double instr = 0;    // guest instructions executed
    double cycles = 0;   // guest cycles elapsed (all cores)
    double hostSec = 0;  // thread CPU seconds
    double rounds = 0;   // scheduler rounds (batches)
    double ops = 0;      // guest ops across all rounds
    double sbReplayed = 0; // guest ops retired via superblock replay
    double sbRecorded = 0; // replay-visible ops retired per-op
                           // (detector-recorded + stall-bridged)
};

/** One-core compute kernel: the tight simulation hot path. */
Throughput
runStream(std::uint64_t seed, bool batched = true,
          bool superblocks = true, unsigned timeline_interval = 0)
{
    const double t0 = threadCpuSec();
    analysis::SimBundle b(analysis::BundleOptions::builder()
                              .cores(1)
                              .seed(1 + seed)
                              .batched(batched)
                              .superblocks(superblocks)
                              .timelineInterval(timeline_interval)
                              .build());
    pec::PecSession session(b.kernel());
    session.addEvent(0, sim::EventType::Cycles, true, true);
    workloads::ComputeKernel k(b.kernel(), workloads::KernelKind::Stream,
                               16 << 20, 777 + seed);
    k.spawn();
    b.run(runTicks);
    Throughput out;
    out.hostSec = threadCpuSec() - t0;
    out.instr = static_cast<double>(analysis::totalEvent(
        b.kernel(), sim::EventType::Instructions));
    out.cycles = static_cast<double>(
        analysis::totalEvent(b.kernel(), sim::EventType::Cycles));
    out.rounds = static_cast<double>(b.machine().batchRounds());
    out.ops = static_cast<double>(b.machine().batchOps());
    const sim::SuperblockStats &sb = b.machine().superblockStats();
    out.sbReplayed = static_cast<double>(sb.opsReplayed);
    out.sbRecorded =
        static_cast<double>(sb.opsRecorded + sb.stallBridges);
    return out;
}

/** Four-core OLTP: scheduling, syscalls and memory hierarchy. */
Throughput
runOltp(std::uint64_t seed, const analysis::BenchArgs *trace = nullptr)
{
    const double t0 = threadCpuSec();
    analysis::SimBundle b(
        analysis::BundleOptions::builder()
            .cores(4)
            .seed(1 + seed)
            .traceCapacity(trace ? trace->traceCap : 0)
            .build());
    pec::PecSession session(b.kernel());
    session.addEvent(0, sim::EventType::Cycles, true, true);
    workloads::OltpConfig cfg;
    cfg.clients = 6;
    workloads::OltpServer oltp(b.machine(), b.kernel(), cfg, 99 + seed);
    oltp.spawn();
    b.run(runTicks);
    Throughput out;
    out.hostSec = threadCpuSec() - t0;
    out.instr = static_cast<double>(analysis::totalEvent(
        b.kernel(), sim::EventType::Instructions));
    out.cycles = static_cast<double>(
        analysis::totalEvent(b.kernel(), sim::EventType::Cycles));
    out.rounds = static_cast<double>(b.machine().batchRounds());
    out.ops = static_cast<double>(b.machine().batchOps());
    if (trace)
        analysis::writeTraceReport(b, trace->trace);
    return out;
}

/**
 * Sharded-execution throughput: one 16-core machine mixing twelve
 * parallel-safe stream kernels with a serial OLTP server, run once on
 * the single-thread scheduler and once across `shards` host threads.
 * The speedup is measured on a CPU-time basis — single-thread CPU
 * seconds over the sharded run's critical-path thread (the busiest of
 * coordinator and workers, per Machine::ShardTelemetry) — so the
 * figure is oversubscription-immune like every other row here.
 * Results are bit-identical by the sharding contract; only the host
 * cost moves.
 */
constexpr sim::Tick shardMixTicks = 20'000'000;

struct ShardMixRun
{
    double instr = 0;
    /** Critical-path CPU seconds (the whole thread for shards=1). */
    double cpuSec = 0;
    std::uint64_t leasedOps = 0;
};

ShardMixRun
runShardMix(std::uint64_t seed, unsigned shards)
{
    const double t0 = threadCpuSec();
    analysis::SimBundle b(analysis::BundleOptions::builder()
                              .cores(16)
                              .seed(1 + seed)
                              .shards(shards)
                              .build());
    std::vector<std::unique_ptr<workloads::ComputeKernel>> kernels;
    for (unsigned i = 0; i < 12; ++i) {
        kernels.push_back(std::make_unique<workloads::ComputeKernel>(
            b.kernel(), workloads::KernelKind::Stream, 16 << 20,
            777 + seed * 64 + i));
        kernels.back()->spawn();
    }
    workloads::OltpConfig cfg;
    cfg.clients = 4;
    workloads::OltpServer oltp(b.machine(), b.kernel(), cfg, 99 + seed);
    oltp.spawn();
    b.run(shardMixTicks);

    ShardMixRun out;
    out.instr = static_cast<double>(analysis::totalEvent(
        b.kernel(), sim::EventType::Instructions));
    if (b.machine().shardTelemetry().shards > 1) {
        out.cpuSec = b.machine().shardTelemetry().criticalPathCpuSec();
        out.leasedOps = b.machine().shardTelemetry().leasedOps;
    } else {
        out.cpuSec = threadCpuSec() - t0;
    }
    return out;
}

/**
 * Deterministic PEC read-latency distribution: 20k consecutive fast
 * reads on one idle core, each visit's guest-visible duration into an
 * exact histogram. Simulated cycles, so the percentiles are
 * reproducible host-independently — the perf gate pins p99 exactly
 * (see scripts/check_selfperf.py).
 */
stats::HdrHistogram
pecReadLatency()
{
    analysis::SimBundle b(
        analysis::BundleOptions::builder().cores(1).seed(1).build());
    pec::PecSession session(b.kernel());
    session.addEvent(0, sim::EventType::Cycles, true, true);
    stats::HdrHistogram h;
    b.kernel().spawn("probe", [&](sim::Guest &g) -> sim::Task<void> {
        for (int i = 0; i < 20'000; ++i) {
            const sim::Tick t0 = g.now();
            const std::uint64_t v = co_await session.read(g, 0);
            (void)v;
            h.add(g.now() - t0);
        }
        co_return;
    });
    b.machine().run();
    return h;
}

/**
 * Sensitivity-lattice throughput: the full analysis::sensitivity
 * stack (ParamSpace expansion through the validating builder, the
 * ParallelRunner fan-out, per-axis derivative reduction) driven over
 * a small real-simulation lattice. Points-per-CPU-second is the
 * figure E15-style studies scale with, so it is gated like the other
 * headline throughputs.
 */
struct LatticeRun
{
    double runs = 0;   // simulations executed (baseline + points) x seeds
    double cpuSec = 0; // process CPU seconds consumed
};

LatticeRun
runLattice(unsigned jobs)
{
    using analysis::sensitivity::Axis;
    using analysis::sensitivity::Measurement;

    const double t0 = processCpuSec();
    analysis::sensitivity::ParamSpace space(
        analysis::BundleOptions::builder()
            .cores(1)
            .l1Size(4 * 1024)
            .build());
    space.add(Axis::l1Size({32 * 1024}))
        .add(Axis::l2Latency({24}))
        .add(Axis::memLatency({440}));

    analysis::sensitivity::Options opts;
    opts.scenario = "selfperf";
    opts.workMetric = "iters";
    opts.seeds = 2;
    opts.jobs = jobs;
    const auto section = analysis::sensitivity::analyze(
        space,
        [](const analysis::BundleOptions &base, std::uint64_t seed) {
            analysis::SimBundle b(
                analysis::BundleOptions::Builder::from(base)
                    .seed(seed)
                    .build());
            std::uint64_t iters = 0;
            b.kernel().spawn(
                "lat", [&](sim::Guest &g) -> sim::Task<void> {
                    while (!g.shouldStop()) {
                        co_await g.load(0x8000 + (iters % 256) * 64);
                        co_await g.compute(2);
                        ++iters;
                    }
                    co_return;
                });
            b.run(2'000'000);
            Measurement m;
            m.work = static_cast<double>(iters);
            return m;
        },
        opts);

    LatticeRun r;
    r.cpuSec = processCpuSec() - t0;
    r.runs = static_cast<double>((1 + space.points().size()) *
                                 opts.seeds);
    // The reduction must still have done its job: restoring the
    // shrunken L1 is the dominant axis on this lattice by design.
    if (section.axes.empty() || section.axes.front().axis != "l1_size")
        std::fprintf(stderr,
                     "selfperf lattice sanity: expected l1_size to "
                     "rank first\n");
    return r;
}

/** Best (max throughput) run of `reps` repetitions. */
template <typename Fn>
Throughput
best(unsigned reps, Fn &&fn)
{
    Throughput b{};
    for (unsigned i = 0; i < reps; ++i) {
        const Throughput t = fn(i);
        if (b.hostSec == 0 ||
            t.instr / t.hostSec > b.instr / b.hostSec)
            b = t;
    }
    return b;
}

} // namespace

int
main(int argc, char **argv)
{
    using limit::stats::Table;

    // --seeds = repetitions per scenario (best-of, to shed host
    // noise); --jobs = worker threads for the scaling section.
    const auto args = limit::analysis::parseBenchArgs(
        argc, argv, {.seeds = 3, .jobs = 0},
        "repetitions per scenario; the best run is reported");
    analysis::ParallelRunner pool(args.jobs);
    const unsigned jobs = pool.workers();

    const Throughput stream = best(args.seeds,
                                   [](unsigned i) { return runStream(i); });
    // Same probe on the per-op reference scheduler: the spread between
    // this row and the one above is the horizon-batching win. (Under
    // --no-batch / LIMITPP_FORCE_NO_BATCH both rows run per-op and
    // the speedup reads 1.0 by construction.)
    // (The per-op loop has no superblock cache, so it is passed
    // explicitly off — superblocks(true) without batching is a
    // builder-level contradiction.)
    const Throughput nobatch = best(args.seeds, [](unsigned i) {
        return runStream(i, /*batched=*/false, /*superblocks=*/false);
    });
    // Batched but with the superblock replay cache off: the spread
    // between this row and the hot-path row is the superblock win on
    // top of batching. (Under --no-superblock both run cache-off and
    // the speedup reads 1.0 by construction.)
    const Throughput nosb = best(args.seeds, [](unsigned i) {
        return runStream(i, /*batched=*/true, /*superblocks=*/false);
    });
    const Throughput oltp = best(args.seeds,
                                 [](unsigned i) { return runOltp(i); });
    // Hot path with the exact timeline recorder attached at the
    // default --timeline-interval: the spread against the plain stream
    // row is the full price of leaving --timeline on, and the perf
    // gate holds it under 5% (scripts/check_selfperf.py). With the
    // recorder detached the hook is a single predicted-not-taken
    // branch, so the plain row pays nothing.
    const Throughput tl = best(args.seeds, [](unsigned i) {
        return runStream(i, /*batched=*/true, /*superblocks=*/true,
                         /*timeline_interval=*/65536);
    });

    // Experiment-level scaling: `jobs` independent stream simulations
    // driven through the same runner the bench suite uses. Each job
    // measures its own thread CPU time; the scaling figure is
    // jobs x per-worker efficiency — the wall-clock speedup the
    // fan-out delivers on an otherwise-idle host with >= jobs cores.
    // Anything below jobs x 1.0 is software overhead (allocator or
    // lock contention, false sharing of result slots), which is what
    // this probe is built to catch; host oversubscription is not,
    // which is why wall clock is deliberately not used.
    const std::vector<Throughput> par = pool.map(
        jobs, [](std::size_t i) {
            return runStream(100 + static_cast<std::uint64_t>(i));
        });
    double par_instr = 0, par_cycles = 0, par_cpu = 0;
    for (const auto &t : par) {
        par_instr += t.instr;
        par_cycles += t.cycles;
        par_cpu += t.hostSec;
    }

    // Divergence-sentinel overhead: the stream scenario run through
    // the same guarded-job machinery the campaigns use, with the
    // sentinel cross-checking every job at the default probe window
    // (1/256 of the run, fast path + per-op reference). The figure is
    // probe CPU time as a percentage of accepted-job CPU time — the
    // price of leaving --sentinel on for a whole campaign — and the
    // perf gate holds it under 5% (scripts/check_selfperf.py).
    guard::SentinelOptions sopt;
    sopt.enabled = true;
    sopt.sampleEvery = 1;
    sopt.reportPath.clear();
    guard::Sentinel sentinel(sopt);
    const analysis::CampaignOptions guard_opts;
    double guarded_cpu = 0;
    const unsigned sentinel_reps = std::max(2u, args.seeds);
    for (unsigned i = 0; i < sentinel_reps; ++i) {
        Throughput accepted{};
        analysis::detail::runGuardedJob(
            guard_opts, &sentinel, i, [&](guard::ExecMode) {
                Throughput t =
                    runStream(200 + static_cast<std::uint64_t>(i));
                if (guard::ProbeScope::active() == nullptr)
                    accepted = t;
            });
        guarded_cpu += accepted.hostSec;
    }
    const double sentinel_overhead_pct =
        guarded_cpu == 0 ? 0
                         : 100.0 * sentinel.probeSeconds() / guarded_cpu;

    // Sharded single-machine execution: the same 16-core stream/oltp
    // mix on one host thread and on four, best-of like every other
    // row. The sharded run's cost is its critical-path thread, so the
    // speedup is the end-to-end win of --shards 4 on this machine.
    ShardMixRun shard1{}, shard4{};
    for (unsigned i = 0; i < args.seeds; ++i) {
        const ShardMixRun s1 = runShardMix(i, 1);
        if (shard1.cpuSec == 0 ||
            s1.instr / s1.cpuSec > shard1.instr / shard1.cpuSec)
            shard1 = s1;
        const ShardMixRun s4 = runShardMix(i, 4);
        if (shard4.cpuSec == 0 ||
            s4.instr / s4.cpuSec > shard4.instr / shard4.cpuSec)
            shard4 = s4;
    }
    const double shard1_mips = shard1.instr / 1e6 / shard1.cpuSec;
    const double shard4_mips = shard4.instr / 1e6 / shard4.cpuSec;
    const double shard_speedup = shard1.cpuSec / shard4.cpuSec;

    // Sensitivity-lattice throughput, serial then fanned out: the
    // points-per-CPU-second figure plus the same jobs x efficiency
    // scaling construction the parallel-runner row uses.
    const LatticeRun lat1 = runLattice(1);
    const LatticeRun latN = runLattice(jobs);
    const double lat1_pps = lat1.runs / lat1.cpuSec;
    const double latN_pps = latN.runs / latN.cpuSec;
    const double lat_scaling = jobs * (latN_pps / lat1_pps);

    const double stream_mips = stream.instr / 1e6 / stream.hostSec;
    const double tl_mips = tl.instr / 1e6 / tl.hostSec;
    const double timeline_overhead_pct =
        tl_mips == 0 ? 0 : 100.0 * (stream_mips / tl_mips - 1.0);
    const double nobatch_mips = nobatch.instr / 1e6 / nobatch.hostSec;
    const double nosb_mips = nosb.instr / 1e6 / nosb.hostSec;
    const double oltp_mips = oltp.instr / 1e6 / oltp.hostSec;
    const double par_mips = par_instr / 1e6 / par_cpu;
    const double scaling = jobs * (par_mips / stream_mips);
    const double batch_speedup = stream_mips / nobatch_mips;
    const double sb_speedup = stream_mips / nosb_mips;
    const double sb_ops = stream.sbReplayed + stream.sbRecorded;
    const double sb_hit_rate =
        sb_ops == 0 ? 0 : stream.sbReplayed / sb_ops;
    const double ops_per_round =
        stream.rounds == 0 ? 0 : stream.ops / stream.rounds;

    Table t("Self-throughput: simulator performance on this host "
            "(60M-tick runs, thread-CPU time, best of " +
            std::to_string(args.seeds) + ")");
    t.header({"scenario", "guest Minstr", "host CPU s",
              "M guest-instr/s", "M guest-cyc/s"});
    t.beginRow()
        .cell("stream x1 (hot path)")
        .cell(stream.instr / 1e6, 1)
        .cell(stream.hostSec, 3)
        .cell(stream_mips, 1)
        .cell(stream.cycles / 1e6 / stream.hostSec, 1);
    t.beginRow()
        .cell("stream x1 (--no-batch)")
        .cell(nobatch.instr / 1e6, 1)
        .cell(nobatch.hostSec, 3)
        .cell(nobatch_mips, 1)
        .cell(nobatch.cycles / 1e6 / nobatch.hostSec, 1);
    t.beginRow()
        .cell("stream x1 (--no-superblock)")
        .cell(nosb.instr / 1e6, 1)
        .cell(nosb.hostSec, 3)
        .cell(nosb_mips, 1)
        .cell(nosb.cycles / 1e6 / nosb.hostSec, 1);
    t.beginRow()
        .cell("oltp x4 (sched+mem)")
        .cell(oltp.instr / 1e6, 1)
        .cell(oltp.hostSec, 3)
        .cell(oltp_mips, 1)
        .cell(oltp.cycles / 1e6 / oltp.hostSec, 1);
    t.beginRow()
        .cell("stream x" + std::to_string(jobs) + " (parallel runner)")
        .cell(par_instr / 1e6, 1)
        .cell(par_cpu, 3)
        .cell(par_mips, 1)
        .cell(par_cycles / 1e6 / par_cpu, 1);
    std::fputs(t.render().c_str(), stdout);
    std::printf("\nhorizon batching: %.2fx the per-op scheduler "
                "(%.0f ops per scheduler round)\n",
                batch_speedup, ops_per_round);
    std::printf("superblock replay: %.2fx the cache-off batched loop "
                "(%.1f%% of guest ops replayed)\n",
                sb_speedup, 100.0 * sb_hit_rate);
    std::printf("parallel-runner scaling at %u jobs: %.2fx "
                "(jobs x per-worker CPU efficiency)\n",
                jobs, scaling);
    std::printf("sharded machine (16 cores, stream/oltp mix): %.2fx "
                "at --shards 4 (%.1f -> %.1f M guest-instr/s on the "
                "critical-path thread, %llu leased ops)\n",
                shard_speedup, shard1_mips, shard4_mips,
                static_cast<unsigned long long>(shard4.leasedOps));
    std::printf("sensitivity lattice: %.1f lattice runs/CPU-s serial, "
                "%.1f at %u jobs (scaling %.2fx)\n",
                lat1_pps, latN_pps, jobs, lat_scaling);
    std::printf("timeline recorder: %.2f%% overhead on stream at the "
                "default 65536-tick interval (%.1f M guest-instr/s)\n",
                timeline_overhead_pct, tl_mips);
    std::printf("divergence sentinel: %.2f%% probe overhead on stream "
                "(%llu checks, every job, 1/%llu window)\n",
                sentinel_overhead_pct,
                static_cast<unsigned long long>(sentinel.checksRun()),
                static_cast<unsigned long long>(sopt.windowDiv));

    const stats::HdrHistogram read_lat = pecReadLatency();
    const std::uint64_t read_p50 = read_lat.quantile(0.5);
    const std::uint64_t read_p99 = read_lat.quantile(0.99);
    const std::uint64_t read_p999 = read_lat.quantile(0.999);
    std::printf("pec read latency (simulated cycles): p50 %llu  "
                "p99 %llu  p999 %llu over %llu reads\n",
                static_cast<unsigned long long>(read_p50),
                static_cast<unsigned long long>(read_p99),
                static_cast<unsigned long long>(read_p999),
                static_cast<unsigned long long>(read_lat.totalCount()));

    // Machine-readable copy for tracking the perf trajectory.
    std::FILE *json = std::fopen("BENCH_selfperf.json", "w");
    if (json) {
        std::fprintf(
            json,
            "{\n"
            "  \"run_ticks\": %llu,\n"
            "  \"repetitions\": %u,\n"
            "  \"stream_minstr_per_sec\": %.2f,\n"
            "  \"stream_mcycles_per_sec\": %.2f,\n"
            "  \"stream_nobatch_minstr_per_sec\": %.2f,\n"
            "  \"batch_speedup_x\": %.3f,\n"
            "  \"batch_avg_ops_per_round\": %.1f,\n"
            "  \"superblock_minstr_per_sec\": %.2f,\n"
            "  \"stream_nosb_minstr_per_sec\": %.2f,\n"
            "  \"superblock_speedup_x\": %.3f,\n"
            "  \"superblock_hit_rate\": %.4f,\n"
            "  \"oltp_minstr_per_sec\": %.2f,\n"
            "  \"oltp_mcycles_per_sec\": %.2f,\n"
            "  \"parallel_jobs\": %u,\n"
            "  \"parallel_minstr_per_sec\": %.2f,\n"
            "  \"parallel_scaling_x\": %.3f,\n"
            "  \"shard_speedup_x\": %.3f,\n"
            "  \"sharded_minstr_per_sec\": %.2f,\n"
            "  \"sensitivity_points_per_sec\": %.2f,\n"
            "  \"sensitivity_scaling_x\": %.3f,\n"
            "  \"timeline_overhead_pct\": %.2f,\n"
            "  \"sentinel_overhead_pct\": %.2f,\n"
            "  \"pec_read_p50_cycles\": %llu,\n"
            "  \"pec_read_p99_cycles\": %llu,\n"
            "  \"pec_read_p999_cycles\": %llu\n"
            "}\n",
            static_cast<unsigned long long>(runTicks), args.seeds,
            stream_mips, stream.cycles / 1e6 / stream.hostSec,
            nobatch_mips, batch_speedup, ops_per_round,
            stream_mips, nosb_mips, sb_speedup, sb_hit_rate,
            oltp_mips, oltp.cycles / 1e6 / oltp.hostSec, jobs,
            par_mips, scaling, shard_speedup, shard4_mips,
            latN_pps, lat_scaling,
            timeline_overhead_pct, sentinel_overhead_pct,
            static_cast<unsigned long long>(read_p50),
            static_cast<unsigned long long>(read_p99),
            static_cast<unsigned long long>(read_p999));
        std::fclose(json);
        std::puts("wrote BENCH_selfperf.json");
    }

    // Dedicated traced re-run of the scheduling-heavy scenario; never
    // part of the timed best-of runs above, so throughput numbers are
    // identical with and without --trace.
    if (args.tracing())
        runOltp(0, &args);
    if (args.profile) {
        prof::Report report;
        report.addHistogram("pec_read_latency_cycles", read_lat);
        analysis::writeProfile(report, args, "bench_selfperf");
    }
    return 0;
}
