/**
 * @file
 * E15 — Sensitivity/causality bottleneck identification: the titular
 * "rapid identification" automated. Two scenarios each plant one
 * deliberate bottleneck in the base machine, then the sensitivity
 * engine perturbs every axis one-factor-at-a-time and ranks them by
 * how far each perturbation moves the work completed in a fixed
 * simulated interval — the planted axis must come out on top.
 *
 *  - "stream": a cache-resident stride-64 sweep on a machine whose
 *    L1D was shrunk to 2 KiB. The working set (24 KiB) fits the
 *    healthy 32 KiB L1 but thrashes the shrunken one into L2, so
 *    restoring the L1 size dominates every latency/TLB/PMU axis.
 *  - "overflow": a counter-read loop on a machine with a 12-bit
 *    cycle counter under the kernel fix-up policy — the counter
 *    wraps every 4096 cycles and the resulting overflow-PMI storm is
 *    the bottleneck; widening the counter beats every cache axis.
 *  - "spin": a flat-memory load/compute loop on a machine whose
 *    scheduling quantum was shrunk to 2 000 ticks, so timer overhead
 *    throttles the loop; restoring the quantum dominates the PMU and
 *    core-count axes. Unlike the cache-bound scenarios this loop
 *    retires through the superblock replay cache, which makes it the
 *    scenario `--faults corrupt-replay` + `--sentinel` exercises:
 *    the fault corrupts replay commits, the sentinel catches the
 *    fingerprint divergence and quarantines the fast path, and the
 *    quarantined re-run restores the oracle's numbers.
 *
 * All lattice points fan through analysis::ParallelRunner, so the
 * report (and the --profile-out JSON, schema limitpp-sensitivity-v1)
 * is bit-identical for any --jobs value and across
 * batched/per-op/superblock execution modes.
 */

#include <cstdio>
#include <optional>
#include <string>

#include "analysis/args.hh"
#include "analysis/bundle.hh"
#include "analysis/campaign.hh"
#include "analysis/profile_report.hh"
#include "analysis/sensitivity/engine.hh"
#include "analysis/sensitivity/param_space.hh"
#include "fault/plan.hh"
#include "pec/pec.hh"
#include "prof/report.hh"

namespace {

using namespace limit;
using analysis::BundleOptions;
using analysis::sensitivity::Axis;
using analysis::sensitivity::Measurement;
using analysis::sensitivity::ParamSpace;

/**
 * Fault plan spec from --faults, applied to every lattice run (one
 * fresh PlanController per bundle — workloads run concurrently).
 * Corrupt-replay plans are the sanctioned way to make the fast path
 * lie so --sentinel has something to catch.
 */
std::string g_faults; // NOLINT: set once in main before any job runs

/** Attach a per-bundle controller for g_faults (empty = none). */
class ScopedFaults
{
  public:
    explicit ScopedFaults(analysis::SimBundle &b) : bundle_(b)
    {
        if (g_faults.empty())
            return;
        fault::Plan plan;
        std::string error;
        if (!fault::Plan::parse(g_faults, plan, error))
            return; // already validated by parseBenchArgs
        controller_.emplace(b.machine(), std::move(plan));
        b.machine().setFaults(&*controller_);
    }

    ~ScopedFaults()
    {
        if (controller_)
            bundle_.machine().setFaults(nullptr);
    }

  private:
    analysis::SimBundle &bundle_;
    std::optional<fault::PlanController> controller_;
};

/**
 * Stride-64 sweep over a 24 KiB buffer (384 lines): resident in a
 * 32 KiB L1D, a guaranteed miss-per-access on the planted 2 KiB one.
 * Work = memory accesses completed in 2M simulated cycles. Each full
 * sweep is wrapped in a calibrated PEC region, so the lattice carries
 * exact per-sweep cycle attribution through Measurement::metrics —
 * the region instrumentation is identical at every lattice point, so
 * rankings are unperturbed. A non-null `artifacts` marks this the
 * dedicated representative run and writes the --timeline artifact.
 */
Measurement
streamWorkload(const BundleOptions &base, std::uint64_t seed,
               const analysis::BenchArgs *artifacts = nullptr)
{
    analysis::SimBundle b(
        BundleOptions::Builder::from(base).seed(seed).build());
    ScopedFaults faults(b);
    pec::PecSession session(b.kernel());
    session.addEvent(0, sim::EventType::Cycles, true, true);
    pec::RegionProfilerConfig rc;
    rc.counters = {0};
    pec::RegionProfiler rprof(session, rc);
    constexpr sim::RegionId sweepRegion = 1;

    constexpr sim::Addr bufBase = 0x10'0000;
    constexpr unsigned lines = 384; // 24 KiB of 64-byte lines
    std::uint64_t accesses = 0;
    b.kernel().spawn("stream", [&](sim::Guest &g) -> sim::Task<void> {
        co_await rprof.calibrate(g);
        while (!g.shouldStop()) {
            co_await rprof.enter(g, sweepRegion);
            for (unsigned i = 0; i < lines && !g.shouldStop(); ++i) {
                co_await g.load(bufBase + i * 64);
                co_await g.compute(1);
                ++accesses;
            }
            co_await rprof.exit(g, sweepRegion);
        }
        co_return;
    });
    b.run(2'000'000);

    Measurement m;
    m.work = static_cast<double>(accesses);
    const auto loads =
        analysis::totalEvent(b.kernel(), sim::EventType::Loads);
    m.metrics["l1d_miss_pct"] = analysis::percentOf(
        analysis::totalEvent(b.kernel(), sim::EventType::L1DMiss),
        loads);
    m.metrics["dtlb_miss_pct"] = analysis::percentOf(
        analysis::totalEvent(b.kernel(), sim::EventType::DTlbMiss),
        loads);
    m.metrics["cycles_per_access"] = accesses == 0
        ? 0.0
        : static_cast<double>(analysis::totalEvent(
              b.kernel(), sim::EventType::Cycles)) /
            static_cast<double>(accesses);
    // Exact region attribution (overhead-subtracted): completed
    // sweeps and their mean cycle cost ride the lattice so profdiff
    // can compare them across runs. The sweep cut short by the stop
    // request stays open and is deliberately not folded.
    const pec::RegionStats &rs = rprof.stats(sweepRegion);
    m.metrics["region.sweep.entries"] =
        static_cast<double>(rs.entries);
    m.metrics["region.sweep.cycles_mean"] = rs.mean(0);
    m.metrics["region.sweep.open_visits"] =
        static_cast<double>(rprof.openRegions().size());
    if (artifacts)
        analysis::writeTimeline(b, *artifacts,
                                "bench_e15_sensitivity");
    return m;
}

/**
 * Counter-read loop under the kernel overflow fix-up: 40 compute
 * cycles then one exact read, repeated for 1.5M simulated cycles.
 * With the planted 12-bit cycle counter every ~4096 cycles raise an
 * overflow PMI, and the fix-up overhead throttles the loop.
 * Work = exact reads completed.
 */
Measurement
overflowWorkload(const BundleOptions &base, std::uint64_t seed)
{
    analysis::SimBundle b(
        BundleOptions::Builder::from(base).seed(seed).build());
    ScopedFaults faults(b);
    pec::PecConfig pc;
    pc.policy = pec::OverflowPolicy::KernelFixup;
    pec::PecSession session(b.kernel(), pc);
    session.addEvent(0, sim::EventType::Cycles); // user cycles

    std::uint64_t reads = 0;
    b.kernel().spawn("reader", [&](sim::Guest &g) -> sim::Task<void> {
        while (!g.shouldStop()) {
            co_await g.compute(40);
            (void)co_await session.read(g, 0);
            ++reads;
        }
        co_return;
    });
    b.run(1'500'000);

    Measurement m;
    m.work = static_cast<double>(reads);
    m.metrics["overflow_fixups"] =
        static_cast<double>(session.overflowFixups());
    m.metrics["read_restarts"] =
        static_cast<double>(session.readRestarts());
    return m;
}

/**
 * Flat-memory load/compute spin under a starved 2 000-tick quantum:
 * the loop body (one fast-path load, one 2-instruction compute) forms
 * a superblock and retires through replay, so this is the scenario
 * that puts the divergence sentinel's quarry — the replay cache — on
 * the hot path. Work = loop iterations in 2M simulated cycles.
 */
Measurement
spinWorkload(const BundleOptions &base, std::uint64_t seed)
{
    analysis::SimBundle b(
        BundleOptions::Builder::from(base).seed(seed).build());
    ScopedFaults faults(b);

    std::uint64_t iters = 0;
    b.kernel().spawn("spin", [&](sim::Guest &g) -> sim::Task<void> {
        while (!g.shouldStop()) {
            co_await g.load(0x8000 + (iters % 256) * 64);
            co_await g.compute(2);
            ++iters;
        }
        co_return;
    });
    b.run(2'000'000);

    Measurement m;
    m.work = static_cast<double>(iters);
    m.metrics["context_switches"] = static_cast<double>(
        b.kernel().totalContextSwitches());
    m.metrics["cycles_per_iter"] = iters == 0
        ? 0.0
        : static_cast<double>(analysis::totalEvent(
              b.kernel(), sim::EventType::Cycles)) /
            static_cast<double>(iters);
    return m;
}

} // namespace

int
main(int argc, char **argv)
{
    const auto args = analysis::parseBenchArgs(
        argc, argv, {.seeds = 1, .jobs = 1},
        "seeds averaged per lattice point");
    g_faults = args.faults;

    // Both scenarios share the robustness knobs (and the journal
    // file: records are keyed by config fingerprint, so one file
    // safely holds both).
    const auto robustness = [&](analysis::sensitivity::Options &o) {
        o.jobTimeoutSec = args.jobTimeoutSec;
        o.journalPath = args.journal;
        o.resume = args.resume;
        o.statusPath = args.statusFile;
        o.sentinel.enabled = args.sentinel;
        o.sentinel.sampleEvery = args.sentinelEvery;
    };

    prof::Report report;

    try {
        // --- Scenario 1: shrunken L1 on a cache-resident stream ------
        {
            ParamSpace space(
                BundleOptions::builder()
                    .cores(1)
                    .l1Size(2 * 1024) // the planted bottleneck
                    .build());
            space.add(Axis::l1Size({32 * 1024})) // restore to healthy
                .add(Axis::l1Latency({8}))
                .add(Axis::l2Latency({24}))
                .add(Axis::memLatency({440}))
                .add(Axis::tlbEntries({16}))
                .add(Axis::counterWidth({16}))
                .add(Axis::quantum({20'000}));

            analysis::sensitivity::Options opts;
            opts.scenario = "stream";
            opts.workMetric = "accesses";
            opts.seeds = args.seeds;
            opts.jobs = args.jobs;
            robustness(opts);
            analysis::sensitivity::analyzeInto(
                report, space,
                [](const BundleOptions &o, std::uint64_t s) {
                    return streamWorkload(o, s);
                },
                opts);
        }

        // --- Scenario 2: narrowed counter on an exact-read loop ------
        {
            ParamSpace space(BundleOptions::builder()
                                 .cores(1)
                                 .pmuWidth(12) // the planted bottleneck
                                 .build());
            space.add(Axis::counterWidth({24, 48})) // widen back out
                .add(Axis::l1Latency({8}))
                .add(Axis::l2Latency({24}))
                .add(Axis::memLatency({440}))
                .add(Axis::quantum({20'000}));

            analysis::sensitivity::Options opts;
            opts.scenario = "overflow";
            opts.workMetric = "reads";
            opts.seeds = args.seeds;
            opts.jobs = args.jobs;
            robustness(opts);
            analysis::sensitivity::analyzeInto(report, space,
                                               overflowWorkload, opts);
        }

        // --- Scenario 3: starved quantum on a replayable spin loop ---
        {
            ParamSpace space(BundleOptions::builder()
                                 .cores(1)
                                 .flatMemory()
                                 .quantum(2'000) // the planted bottleneck
                                 .build());
            space.add(Axis::quantum({20'000})) // restore to healthy
                .add(Axis::counterWidth({48}))
                .add(Axis::cores({2}));

            analysis::sensitivity::Options opts;
            opts.scenario = "spin";
            opts.workMetric = "iterations";
            opts.seeds = args.seeds;
            opts.jobs = args.jobs;
            robustness(opts);
            analysis::sensitivity::analyzeInto(report, space,
                                               spinWorkload, opts);
        }
    } catch (const analysis::CampaignInterrupted &e) {
        std::fprintf(stderr, "\n%s\n", e.what());
        return 130; // 128 + SIGINT, the conventional ^C exit status
    }

    std::fputs(report
                   .sensitivityTable(
                       "E15: one-factor sensitivity, axes ranked by "
                       "max |Δwork| (planted bottleneck must rank 1)")
                   .render()
                   .c_str(),
               stdout);

    // Verdict lines: the thing a human would read off the table.
    for (const auto &s : report.sensitivitySections()) {
        if (s.axes.empty())
            continue;
        const auto &top = s.axes.front();
        std::printf("\n%s bottleneck: %s (score %.2f, baseline %s "
                    "%.0f)\n",
                    s.name.c_str(), top.axis.c_str(), top.score,
                    s.workMetric.c_str(), s.baselineWork);
    }

    // Dedicated instrumented run (stream scenario's planted-bottleneck
    // baseline, lattice-independent seed) for the --timeline artifact;
    // the tables above are untouched by it.
    if (args.timelineOn()) {
        const BundleOptions rep =
            BundleOptions::builder()
                .cores(1)
                .l1Size(2 * 1024)
                .timelineInterval(args.captureTimelineInterval())
                .build();
        streamWorkload(rep, 1, &args);
    }

    analysis::writeProfile(report, args, "bench_e15_sensitivity");

    std::puts("\nEXPERIMENTS.md (E15) markdown:");
    std::fputs(report.sensitivityMarkdown().c_str(), stdout);

    std::puts("\nShape check: 'stream' ranks l1_size first (restoring "
              "the shrunken L1 recovers the most work), 'overflow' "
              "ranks pmu_width first (widening the 12-bit\n"
              "counter dissolves the overflow-PMI storm), 'spin' ranks "
              "quantum first (the starved 2000-tick quantum is pure "
              "timer overhead) — the engine identifies\n"
              "the planted bottleneck without a human reading the "
              "tables.");
    return 0;
}
