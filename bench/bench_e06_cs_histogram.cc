/**
 * @file
 * E6 — Critical-section length distributions (paper figure).
 *
 * Exact log-bucketed histograms of lock-held and lock-acquire
 * durations per application, measurable only because every single
 * acquisition is counted precisely. The histograms come straight out
 * of prof::SyncProfile (the same data --profile serializes), rendered
 * regrouped per power of two. Expected shape: distributions peak at
 * short durations (2^7..2^12 cycles) with a thin long tail.
 */

#include <cstdio>
#include <vector>

#include "analysis/args.hh"
#include "analysis/profile_report.hh"
#include "analysis/campaign.hh"
#include "prof/report.hh"
#include "sync_common.hh"

int
main(int argc, char **argv)
{
    using namespace limit;
    using benchsync::runApp;

    constexpr sim::Tick ticks = 40'000'000;

    const auto args = analysis::parseBenchArgs(
        argc, argv, {.seeds = 1, .jobs = 1},
        "workload seeds; each seed prints its own histogram section");

    const auto &apps = benchsync::appNames();
    const std::vector<benchsync::SyncRunResult> runs =
        analysis::mapGuarded(
            analysis::campaignOptions(args), apps.size() * args.seeds,
            [&](std::size_t i) {
                return runApp(apps[i / args.seeds], ticks,
                              i % args.seeds, nullptr, &args);
            });

    prof::Report report;
    for (std::size_t i = 0; i < runs.size(); ++i) {
        const auto &r = runs[i];
        if (args.seeds > 1)
            std::printf("=== %s (seed %zu) ===\n", r.app.c_str(),
                        i % args.seeds);
        else
            std::printf("=== %s ===\n", r.app.c_str());
        report.addSync(r.app, r.sync, r.totalCycles, r.workItems);
        for (const std::string &lock : r.sync.classNames()) {
            const prof::SyncSiteStats s = r.sync.classStats(lock);
            std::printf("\n[%s] critical-section length (cycles held), "
                        "%llu acquisitions:\n",
                        lock.c_str(),
                        static_cast<unsigned long long>(
                            s.holdCycles.totalCount()));
            std::fputs(s.holdCycles.renderLog2(44).c_str(), stdout);
            std::printf(
                "mean %.0f  p50 %llu  p95 %llu  p99 %llu\n",
                s.holdCycles.mean(),
                static_cast<unsigned long long>(
                    s.holdCycles.quantile(0.5)),
                static_cast<unsigned long long>(
                    s.holdCycles.quantile(0.95)),
                static_cast<unsigned long long>(
                    s.holdCycles.quantile(0.99)));

            std::printf("\n[%s] acquisition cost (cycles):\n",
                        lock.c_str());
            std::fputs(s.waitCycles.renderLog2(44).c_str(), stdout);
        }
        std::puts("");
    }
    if (args.tracing() || args.timelineOn()) {
        benchsync::TraceSpec tspec;
        tspec.path = args.trace;
        tspec.capacity = args.traceCap;
        runApp(apps[0], ticks, 0, args.tracing() ? &tspec : nullptr,
               &args, "bench_e06_cs_histogram");
    }
    analysis::writeProfile(report, args, "bench_e06_cs_histogram");

    std::puts("Shape check: every distribution peaks at short "
              "durations (2^7..2^12 cycles) with a thin long tail "
              "(contended futex sleeps) — many short critical\n"
              "sections, invisible to sampling, dominate "
              "synchronization behaviour.");
    return 0;
}
