/**
 * @file
 * E6 — Critical-section length distributions (paper figure).
 *
 * Full log2 histograms of lock-held and lock-acquire durations per
 * application, measurable only because every single acquisition is
 * counted precisely. Expected shape: distributions peak at short
 * durations (2^7..2^12 cycles) with a thin long tail.
 */

#include <cstdio>

#include "sync_common.hh"

int
main()
{
    using namespace limit;
    using benchsync::runApp;

    constexpr sim::Tick ticks = 40'000'000;

    for (const auto &app : benchsync::appNames()) {
        const auto r = runApp(app, ticks);
        std::printf("=== %s ===\n", r.app.c_str());
        for (const auto &l : r.locks) {
            std::printf("\n[%s] critical-section length (cycles held), "
                        "%llu acquisitions:\n",
                        l.name.c_str(),
                        static_cast<unsigned long long>(l.held.entries));
            std::fputs(l.held.histogram.render(44).c_str(), stdout);
            std::printf("mean %.0f  p50 %.0f  p95 %.0f  p99 %.0f\n",
                        l.held.mean(0), l.held.histogram.quantile(0.5),
                        l.held.histogram.quantile(0.95),
                        l.held.histogram.quantile(0.99));

            std::printf("\n[%s] acquisition cost (cycles):\n",
                        l.name.c_str());
            std::fputs(l.acquire.histogram.render(44).c_str(), stdout);
        }
        std::puts("");
    }
    std::puts("Shape check: every distribution peaks at short "
              "durations (2^7..2^12 cycles) with a thin long tail "
              "(contended futex sleeps) — many short critical\n"
              "sections, invisible to sampling, dominate "
              "synchronization behaviour.");
    return 0;
}
