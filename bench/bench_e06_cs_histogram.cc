/**
 * @file
 * E6 — Critical-section length distributions (paper figure).
 *
 * Full log2 histograms of lock-held and lock-acquire durations per
 * application, measurable only because every single acquisition is
 * counted precisely. Expected shape: distributions peak at short
 * durations (2^7..2^12 cycles) with a thin long tail.
 */

#include <cstdio>
#include <vector>

#include "analysis/args.hh"
#include "analysis/runner.hh"
#include "sync_common.hh"

int
main(int argc, char **argv)
{
    using namespace limit;
    using benchsync::runApp;

    constexpr sim::Tick ticks = 40'000'000;

    const auto args = analysis::parseBenchArgs(
        argc, argv, {.seeds = 1, .jobs = 1},
        "workload seeds; each seed prints its own histogram section");
    analysis::ParallelRunner pool(args.jobs);

    const auto &apps = benchsync::appNames();
    const std::vector<benchsync::SyncRunResult> runs = pool.map(
        apps.size() * args.seeds, [&](std::size_t i) {
            return runApp(apps[i / args.seeds], ticks, i % args.seeds);
        });

    for (std::size_t i = 0; i < runs.size(); ++i) {
        const auto &r = runs[i];
        if (args.seeds > 1)
            std::printf("=== %s (seed %zu) ===\n", r.app.c_str(),
                        i % args.seeds);
        else
            std::printf("=== %s ===\n", r.app.c_str());
        for (const auto &l : r.locks) {
            std::printf("\n[%s] critical-section length (cycles held), "
                        "%llu acquisitions:\n",
                        l.name.c_str(),
                        static_cast<unsigned long long>(l.held.entries));
            std::fputs(l.held.histogram.render(44).c_str(), stdout);
            std::printf("mean %.0f  p50 %.0f  p95 %.0f  p99 %.0f\n",
                        l.held.mean(0), l.held.histogram.quantile(0.5),
                        l.held.histogram.quantile(0.95),
                        l.held.histogram.quantile(0.99));

            std::printf("\n[%s] acquisition cost (cycles):\n",
                        l.name.c_str());
            std::fputs(l.acquire.histogram.render(44).c_str(), stdout);
        }
        std::puts("");
    }
    if (args.tracing()) {
        benchsync::TraceSpec tspec;
        tspec.path = args.trace;
        tspec.capacity = args.traceCap;
        runApp(apps[0], ticks, 0, &tspec);
    }

    std::puts("Shape check: every distribution peaks at short "
              "durations (2^7..2^12 cycles) with a thin long tail "
              "(contended futex sleeps) — many short critical\n"
              "sections, invisible to sampling, dominate "
              "synchronization behaviour.");
    return 0;
}
