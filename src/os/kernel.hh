/**
 * @file
 * The simulated operating system kernel.
 *
 * Implements the sim::KernelIf entry points: syscall dispatch, the
 * scheduler (round-robin with work stealing), futexes, timed sleeps,
 * PMU counter virtualization across context switches (the kernel
 * mechanism the paper's LiMiT patch adds to Linux), and PMI dispatch
 * to per-counter handlers (perf sampling, PEC overflow fix-up).
 */

#ifndef LIMIT_OS_KERNEL_HH
#define LIMIT_OS_KERNEL_HH

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <string>
#include <unordered_map>
#include <vector>

#include "os/perf_event.hh"
#include "os/scheduler.hh"
#include "os/thread.hh"
#include "sim/kernel_if.hh"
#include "sim/machine.hh"

namespace limit::os {

/** Kernel-wide policy switches. */
struct KernelConfig
{
    /**
     * Save/restore PMU counter values across context switches so each
     * thread observes only its own events (the paper's kernel-side
     * virtualization). Turning this off models raw per-CPU counters,
     * which leak other threads' events into measurements.
     */
    bool virtualizeCounters = true;
    /** Seed for per-thread RNG derivation. */
    std::uint64_t seed = 42;
};

/** The OS: scheduler + syscalls + counter virtualization + PMIs. */
class Kernel : public sim::KernelIf
{
  public:
    /** Handler invoked when counter `ctr` wraps with PMIs enabled. */
    using PmiHandler = std::function<void(sim::Cpu &, sim::GuestContext *,
                                          unsigned ctr,
                                          std::uint32_t wraps)>;

    Kernel(sim::Machine &machine, const KernelConfig &config = {});
    ~Kernel() override;

    sim::Machine &machine() { return machine_; }
    const KernelConfig &config() const { return config_; }
    PerfSubsystem &perf() { return perf_; }

    /** @name Host-side setup & inspection @{ */

    /**
     * Create a thread; placed round-robin across cores.
     *
     * @param parallel_safe opt the guest into leased execution under
     *        sharded machine runs (see GuestContext::parallelSafe for
     *        the host-state contract the body must satisfy).
     */
    sim::ThreadId spawn(std::string name,
                        std::function<sim::Task<void>(sim::Guest &)> body,
                        bool parallel_safe = false);

    /** Create a thread with explicit placement. */
    sim::ThreadId spawnOn(sim::CoreId core, bool pinned, std::string name,
                          std::function<sim::Task<void>(sim::Guest &)> body,
                          bool parallel_safe = false);

    Thread &thread(sim::ThreadId tid);
    const Thread &thread(sim::ThreadId tid) const;
    unsigned numThreads() const
    {
        return static_cast<unsigned>(threads_.size());
    }
    unsigned liveThreads() const { return liveThreads_; }

    /** Program counter `idx` identically on every core's PMU. */
    void configureCounter(unsigned idx, const sim::CounterConfig &cfg);

    /** Enable/disable counter `idx` on every core. */
    void setCounterEnabled(unsigned idx, bool enabled);

    /** Number of counters currently enabled (core 0's view). */
    unsigned numEnabledCounters() const;

    /** Install/remove the PMI handler for counter `idx`. */
    void setPmiHandler(unsigned idx, PmiHandler handler);
    void clearPmiHandler(unsigned idx);

    std::uint64_t totalContextSwitches() const { return contextSwitches_; }

    /** Run the machine to completion. */
    sim::Tick run() { return machine_.run(); }
    /** @} */

    /** @name sim::KernelIf @{ */
    sim::SyscallOutcome syscall(
        sim::Cpu &cpu, sim::GuestContext &ctx, std::uint32_t nr,
        const std::array<std::uint64_t, 4> &args) override;
    void timerTick(sim::Cpu &cpu) override;
    void pmuOverflow(sim::Cpu &cpu, unsigned counter,
                     std::uint32_t wraps) override;
    void threadExited(sim::Cpu &cpu, sim::GuestContext &ctx) override;
    bool poll(sim::Tick now) override;
    bool allThreadsDone() const override { return liveThreads_ == 0; }
    std::string blockedReport() const override;
    /** @} */

  private:
    friend class PerfSubsystem;

    Thread &threadOf(sim::GuestContext &ctx);

    /** Pop the next runnable thread for `core` (steals when allowed). */
    Thread *pickNext(sim::CoreId core);

    /**
     * Remove the running thread from `cpu`: charge switch cost, save
     * virtualized counters, transition to `to`.
     */
    void deschedule(sim::Cpu &cpu, Thread &t, ThreadState to,
                    bool voluntary);

    /** Install `t` on `cpu` (restore counters, start a fresh quantum). */
    void installThread(sim::Cpu &cpu, Thread &t);

    /** Make a blocked/sleeping thread runnable and place it. */
    void wakeThread(Thread &t, sim::Tick earliest,
                    std::uint64_t wake_value);

    /**
     * Deliver a fault-injected spurious futex wakeup: drop `t` from its
     * wait queue and wake it with the normal success result.
     */
    void deliverSpuriousWake(Thread &t, sim::Tick at);

    /** Re-arm the machine's poll hint from both timed-wake heaps. */
    void armPollHint();

    /** Dispatch body of syscall(); the public entry point wraps it in
     *  enter/exit tracepoints. */
    sim::SyscallOutcome syscallImpl(
        sim::Cpu &cpu, sim::GuestContext &ctx, std::uint32_t nr,
        const std::array<std::uint64_t, 4> &args);

    /** @name Syscall implementations @{ */
    sim::SyscallOutcome sysFutexWaitImpl(
        sim::Cpu &cpu, Thread &t,
        const std::array<std::uint64_t, 4> &args);
    sim::SyscallOutcome sysFutexWakeImpl(
        sim::Cpu &cpu, Thread &t,
        const std::array<std::uint64_t, 4> &args);
    sim::SyscallOutcome sysSleepImpl(sim::Cpu &cpu, Thread &t,
                                     sim::Tick duration, sim::Tick cost);
    sim::SyscallOutcome sysYieldImpl(sim::Cpu &cpu, Thread &t);
    /** @} */

    sim::Machine &machine_;
    KernelConfig config_;
    Scheduler scheduler_;
    PerfSubsystem perf_;
    Rng rng_;

    std::vector<std::unique_ptr<Thread>> threads_;
    unsigned liveThreads_ = 0;
    sim::CoreId nextSpawnCore_ = 0;
    std::uint64_t contextSwitches_ = 0;

    std::unordered_map<const std::uint64_t *, std::deque<sim::ThreadId>>
        futexQueues_;

    /** Min-heap of (wakeTick, tid). */
    using SleepEntry = std::pair<sim::Tick, sim::ThreadId>;
    using SleepHeap = std::priority_queue<SleepEntry,
                                          std::vector<SleepEntry>,
                                          std::greater<>>;
    SleepHeap sleepers_;

    /** Fault-injected spurious futex wakeups still to deliver. */
    SleepHeap spuriousWakes_;

    std::array<PmiHandler, sim::maxPmuCounters> pmiHandlers_{};
};

} // namespace limit::os

#endif // LIMIT_OS_KERNEL_HH
