#include "os/perf_event.hh"

#include <algorithm>

#include "base/logging.hh"
#include "os/kernel.hh"
#include "os/sysno.hh"
#include "sim/cpu.hh"

namespace limit::os {

PerfSubsystem::PerfSubsystem(Kernel &kernel) : kernel_(kernel)
{
}

std::uint64_t
PerfSubsystem::reloadBase(unsigned ctr) const
{
    const sim::Pmu &pmu = kernel_.machine_.cpu(0).pmu();
    const std::uint64_t period = periods_[ctr];
    panic_if(period == 0, "sampling reload with zero period");
    panic_if(pmu.features().counterWidth >= 64,
             "sampling via overflow needs a <64-bit counter");
    return pmu.wrapModulus() - period;
}

void
PerfSubsystem::setupCounting(unsigned ctr, sim::EventType event, bool user,
                             bool kernel_mode)
{
    sim::CounterConfig cfg;
    cfg.event = event;
    cfg.countUser = user;
    cfg.countKernel = kernel_mode;
    cfg.enabled = true;
    cfg.interruptOnOverflow = true;
    kernel_.configureCounter(ctr, cfg);
    modes_[ctr] = PerfMode::Counting;
    periods_[ctr] = 0;
    kernel_.setPmiHandler(
        ctr, [this](sim::Cpu &cpu, sim::GuestContext *ctx, unsigned c,
                    std::uint32_t wraps) {
            onOverflow(cpu, ctx, c, wraps);
        });
}

void
PerfSubsystem::setupSampling(unsigned ctr, sim::EventType event,
                             std::uint64_t period, bool user,
                             bool kernel_mode)
{
    fatal_if(period == 0, "sampling period must be nonzero");
    sim::CounterConfig cfg;
    cfg.event = event;
    cfg.countUser = user;
    cfg.countKernel = kernel_mode;
    cfg.enabled = true;
    cfg.interruptOnOverflow = true;
    kernel_.configureCounter(ctr, cfg);
    modes_[ctr] = PerfMode::Sampling;
    periods_[ctr] = period;

    // Preload every core's counter (and every thread's saved value) so
    // the first overflow fires after `period` events.
    const std::uint64_t base = reloadBase(ctr);
    for (sim::CoreId c = 0; c < kernel_.machine_.numCores(); ++c)
        kernel_.machine_.cpu(c).pmu().write(ctr, base);
    for (auto &t : kernel_.threads_)
        t->savedCounters[ctr] = base;

    kernel_.setPmiHandler(
        ctr, [this](sim::Cpu &cpu, sim::GuestContext *ctx, unsigned c,
                    std::uint32_t wraps) {
            onOverflow(cpu, ctx, c, wraps);
        });
}

void
PerfSubsystem::teardown(unsigned ctr)
{
    sim::CounterConfig off;
    kernel_.configureCounter(ctr, off);
    kernel_.clearPmiHandler(ctr);
    modes_[ctr] = PerfMode::Off;
    periods_[ctr] = 0;
}

std::uint64_t
PerfSubsystem::readValue(sim::Cpu &cpu, Thread &thread, unsigned ctr)
{
    // Fold any PMI that the read's own kernel work raised into the
    // 64-bit accumulation before summing (the kernel reads counters
    // with overflow processing serialized, so this path is race-free
    // — the precision the heavyweight syscall buys).
    cpu.drainOverflows();
    return thread.perfAccum[ctr] + cpu.pmu().read(ctr);
}

std::uint64_t
PerfSubsystem::read(sim::Cpu &cpu, Thread &thread, unsigned ctr)
{
    panic_if(modes_[ctr] != PerfMode::Counting,
             "perf read of a counter not in counting mode");
    cpu.kernelWork(cpu.costs().perfReadKernelCost);
    return readValue(cpu, thread, ctr);
}

std::uint64_t
PerfSubsystem::readPapi(sim::Cpu &cpu, Thread &thread, unsigned ctr)
{
    panic_if(modes_[ctr] != PerfMode::Counting,
             "papi read of a counter not in counting mode");
    cpu.kernelWork(cpu.costs().papiKernelCost);
    return readValue(cpu, thread, ctr);
}

void
PerfSubsystem::ioctl(sim::Cpu &cpu, Thread &, unsigned ctr,
                     PerfIoctlOp op)
{
    cpu.kernelWork(cpu.costs().perfIoctlKernelCost);
    switch (op) {
      case PerfIoctlOp::Enable:
        kernel_.setCounterEnabled(ctr, true);
        break;
      case PerfIoctlOp::Disable:
        kernel_.setCounterEnabled(ctr, false);
        break;
      case PerfIoctlOp::Reset: {
        const std::uint64_t value =
            modes_[ctr] == PerfMode::Sampling ? reloadBase(ctr) : 0;
        for (sim::CoreId c = 0; c < kernel_.machine_.numCores(); ++c)
            kernel_.machine_.cpu(c).pmu().write(ctr, value);
        for (auto &t : kernel_.threads_) {
            t->savedCounters[ctr] = value;
            t->perfAccum[ctr] = 0;
        }
        break;
      }
      default:
        fatal("unknown perf ioctl op");
    }
}

void
PerfSubsystem::initThread(Thread &thread) const
{
    for (unsigned i = 0; i < sim::maxPmuCounters; ++i) {
        if (modes_[i] == PerfMode::Sampling)
            thread.savedCounters[i] = reloadBase(i);
    }
}

std::uint64_t
PerfSubsystem::adjustSavedValue(unsigned ctr, std::uint64_t value) const
{
    if (modes_[ctr] != PerfMode::Sampling)
        return value;
    const std::uint64_t base = reloadBase(ctr);
    if (value >= base)
        return value; // still armed
    return base + value % periods_[ctr];
}

void
PerfSubsystem::onOverflow(sim::Cpu &cpu, sim::GuestContext *ctx,
                          unsigned ctr, std::uint32_t wraps)
{
    switch (modes_[ctr]) {
      case PerfMode::Counting: {
        if (!ctx) {
            // Overflow with no thread on the core (idle-time kernel
            // work): nothing to attribute it to.
            return;
        }
        Thread &t = *static_cast<Thread *>(ctx->osThread);
        const std::uint64_t modulus = cpu.pmu().wrapModulus();
        t.perfAccum[ctr] += static_cast<std::uint64_t>(wraps) * modulus;
        break;
      }
      case PerfMode::Sampling: {
        // One op may retire more events than the sampling period (the
        // simulator's op granularity coalesces what real hardware
        // would deliver as several PMIs): account for every elapsed
        // period, not just the counter wrap itself. Two hazards make
        // this careful: (a) several PMIs for the same counter can
        // queue up within one long op (syscall kernel chains), so a
        // later invocation may find the counter already reloaded by
        // an earlier one (value back above the reload base — treat
        // the PMI as exactly its reported wraps); (b) pathological
        // period/op-size combinations are capped to keep a stale PMI
        // from fabricating unbounded samples.
        const sim::Tick pmi_time = cpu.now(); // before handler work
        const std::uint64_t period = periods_[ctr];
        const std::uint64_t base = reloadBase(ctr);
        const std::uint64_t value = cpu.pmu().read(ctr);
        std::uint64_t elapsed;
        if (value >= base) {
            elapsed = wraps; // stale PMI: already reloaded earlier
        } else {
            elapsed = wraps + value / period;
        }
        elapsed = std::min<std::uint64_t>(elapsed, 1024);

        cpu.kernelWork(cpu.costs().sampleRecordCost * elapsed);
        if (!ctx) {
            lostSamples_ += elapsed;
        } else {
            // Skid model: when the region changed within the skid
            // window before the PMI fired, the event that overflowed
            // the counter likely predates the change — attribute to
            // the previous region.
            sim::RegionId region = ctx->currentRegion();
            if (skid_ > 0 &&
                pmi_time - ctx->regionChangedAt < skid_) {
                region = ctx->prevRegion;
            }
            for (std::uint64_t i = 0; i < elapsed; ++i)
                samples_.push_back({pmi_time, ctx->tid(), region});
        }
        // Reload so the next overflow fires one period later; keep
        // the residue past the last period boundary. A counter that
        // is already re-armed (stale PMI) is left untouched.
        if (value < base)
            cpu.pmu().write(ctr, base + value % period);
        break;
      }
      case PerfMode::Off:
        break;
    }
}

} // namespace limit::os
