/**
 * @file
 * Syscall numbers understood by the simulated kernel.
 */

#ifndef LIMIT_OS_SYSNO_HH
#define LIMIT_OS_SYSNO_HH

#include <cstdint>

namespace limit::os {

/** Syscall numbers (see Kernel::syscall for argument conventions). */
enum Sys : std::uint32_t {
    /** No-op trap; measures bare kernel-crossing cost. */
    sysNop = 0,
    /** Voluntarily yield the core. */
    sysYield,
    /** Sleep: arg0 = duration in ticks. */
    sysSleep,
    /**
     * Futex wait: arg0 = host word pointer, arg1 = expected value,
     * arg2 = simulated address. Returns 0 when woken, 1 (EAGAIN) when
     * the value did not match.
     */
    sysFutexWait,
    /**
     * Futex wake: arg0 = host word pointer, arg1 = max waiters to
     * wake. Returns the number woken.
     */
    sysFutexWake,
    /** perf_event-style counter read: arg0 = counter idx. */
    sysPerfRead,
    /**
     * perf_event-style ioctl: arg0 = counter idx, arg1 = op
     * (see PerfIoctlOp).
     */
    sysPerfIoctl,
    /** PAPI-class lighter-weight counter read: arg0 = counter idx. */
    sysPapiRead,
    /**
     * rusage-style accounting read: arg0 = 0 for user jiffies-cycles,
     * 1 for system. Quantum resolution by construction.
     */
    sysRusage,
    /**
     * Submit blocking I/O (network/disk): arg0 = device latency in
     * ticks. The thread sleeps until completion.
     */
    sysIoSubmit,
    /** Returns the calling thread id. */
    sysGetTid,
    /**
     * Reprogram PMU counters (multiplex rotation): arg0 = number of
     * counters rewritten. Charges the MSR write cost; the actual
     * reconfiguration is performed by the caller's host-side session.
     */
    sysPmcConfig,

    sysCount, // must be last
};

/** Short syscall name (nullptr for out-of-range numbers). */
constexpr const char *
sysName(std::uint32_t nr)
{
    switch (static_cast<Sys>(nr)) {
      case sysNop: return "nop";
      case sysYield: return "yield";
      case sysSleep: return "sleep";
      case sysFutexWait: return "futex-wait";
      case sysFutexWake: return "futex-wake";
      case sysPerfRead: return "perf-read";
      case sysPerfIoctl: return "perf-ioctl";
      case sysPapiRead: return "papi-read";
      case sysRusage: return "rusage";
      case sysIoSubmit: return "io-submit";
      case sysGetTid: return "gettid";
      case sysPmcConfig: return "pmc-config";
      default: return nullptr;
    }
}

/** Ops for sysPerfIoctl. */
enum class PerfIoctlOp : std::uint64_t {
    Enable = 0,
    Disable = 1,
    Reset = 2,
};

} // namespace limit::os

#endif // LIMIT_OS_SYSNO_HH
