#include "os/kernel.hh"

#include <algorithm>
#include <sstream>

#include "base/logging.hh"
#include "fault/controller.hh"
#include "os/sysno.hh"
#include "sim/cpu.hh"
#include "trace/trace.hh"

namespace limit::os {

Kernel::Kernel(sim::Machine &machine, const KernelConfig &config)
    : machine_(machine), config_(config),
      scheduler_(machine.numCores()), perf_(*this), rng_(config.seed)
{
    machine_.setKernel(this);
}

Kernel::~Kernel() = default;

Thread &
Kernel::thread(sim::ThreadId tid)
{
    panic_if(tid >= threads_.size(), "bad thread id ", tid);
    return *threads_[tid];
}

const Thread &
Kernel::thread(sim::ThreadId tid) const
{
    panic_if(tid >= threads_.size(), "bad thread id ", tid);
    return *threads_[tid];
}

Thread &
Kernel::threadOf(sim::GuestContext &ctx)
{
    panic_if(!ctx.osThread, "guest context without a kernel thread");
    return *static_cast<Thread *>(ctx.osThread);
}

sim::ThreadId
Kernel::spawn(std::string name,
              std::function<sim::Task<void>(sim::Guest &)> body,
              bool parallel_safe)
{
    const sim::CoreId core = nextSpawnCore_;
    nextSpawnCore_ = (nextSpawnCore_ + 1) % machine_.numCores();
    return spawnOn(core, /*pinned=*/false, std::move(name),
                   std::move(body), parallel_safe);
}

sim::ThreadId
Kernel::spawnOn(sim::CoreId core, bool pinned, std::string name,
                std::function<sim::Task<void>(sim::Guest &)> body,
                bool parallel_safe)
{
    fatal_if(core >= machine_.numCores(), "spawn on nonexistent core ",
             core);
    const auto tid = static_cast<sim::ThreadId>(threads_.size());
    threads_.push_back(std::make_unique<Thread>(
        machine_, tid, std::move(name), rng_()));
    Thread &t = *threads_.back();
    t.homeCore = core;
    t.pinned = pinned;
    t.ctx.parallelSafe = parallel_safe;
    perf_.initThread(t); // inherit sampling preloads into saved state
    t.ctx.start(std::move(body));
    ++liveThreads_;

    // Same placement policy as a wake: preferred core when idle, any
    // idle core otherwise, else the preferred core's run queue.
    t.state = ThreadState::Runnable;
    wakeThread(t, machine_.cpu(core).now(), 0);
    return tid;
}

void
Kernel::configureCounter(unsigned idx, const sim::CounterConfig &cfg)
{
    for (sim::CoreId c = 0; c < machine_.numCores(); ++c)
        machine_.cpu(c).pmu().configure(idx, cfg);
    for (auto &t : threads_) {
        t->savedCounters[idx] = 0;
        t->perfAccum[idx] = 0;
    }
}

void
Kernel::setCounterEnabled(unsigned idx, bool enabled)
{
    for (sim::CoreId c = 0; c < machine_.numCores(); ++c)
        machine_.cpu(c).pmu().setEnabled(idx, enabled);
}

unsigned
Kernel::numEnabledCounters() const
{
    const sim::Pmu &pmu =
        const_cast<sim::Machine &>(machine_).cpu(0).pmu();
    unsigned n = 0;
    for (unsigned i = 0; i < pmu.numCounters(); ++i) {
        if (pmu.config(i).enabled)
            ++n;
    }
    return n;
}

void
Kernel::setPmiHandler(unsigned idx, PmiHandler handler)
{
    panic_if(idx >= sim::maxPmuCounters, "bad counter index ", idx);
    pmiHandlers_[idx] = std::move(handler);
}

void
Kernel::clearPmiHandler(unsigned idx)
{
    panic_if(idx >= sim::maxPmuCounters, "bad counter index ", idx);
    pmiHandlers_[idx] = nullptr;
}

// ---------------------------------------------------------------------
// Scheduling
// ---------------------------------------------------------------------

Thread *
Kernel::pickNext(sim::CoreId core)
{
    const sim::ThreadId tid = scheduler_.dequeue(
        core, [this, core](sim::ThreadId cand) {
            return !thread(cand).pinned || thread(cand).homeCore == core;
        });
    return tid == sim::invalidThread ? nullptr : &thread(tid);
}

void
Kernel::deschedule(sim::Cpu &cpu, Thread &t, ThreadState to,
                   bool voluntary)
{
    panic_if(cpu.current() != &t.ctx, "descheduling a non-current thread");

    // The switch cost (and its counter events) is charged while the
    // outgoing thread is still current so both the ledger and the
    // virtualized counters attribute it to the thread being switched
    // out — matching how tick-based kernels account switch time.
    sim::EventDeltas d;
    d[sim::EventType::ContextSwitches] = 1;
    cpu.applyEvents(sim::PrivMode::Kernel, d);
    cpu.kernelWork(cpu.costs().contextSwitchCost);

    if (config_.virtualizeCounters) {
        sim::Pmu &pmu = cpu.pmu();
        fault::FaultController *const faults = machine_.faults();
        unsigned enabled = 0;
        for (unsigned i = 0; i < pmu.numCounters(); ++i) {
            if (!pmu.config(i).enabled)
                continue;
            ++enabled;
            std::uint64_t v = perf_.adjustSavedValue(i, pmu.read(i));
            if (faults) {
                const fault::SaveRestoreAction act =
                    faults->onCounterSave(cpu, t.ctx.tid(), i, v);
                if (act.skip)
                    continue; // stale savedCounters[i] persists
                if (act.corrupt)
                    v = act.value;
            }
            t.savedCounters[i] = v;
        }
        // Tagged virtualization (hardware enhancement #3) swaps the
        // counter set in hardware: no per-counter MSR cost.
        if (!pmu.features().taggedVirtualization && enabled > 0) {
            cpu.kernelWork(enabled * cpu.costs().counterSwitchCost / 2);
        }
        if (enabled > 0) {
            LIMIT_TRACE(machine_.tracer(), cpu.id(),
                        trace::TraceEvent::CounterSave, cpu.now(),
                        t.ctx.tid(), enabled);
        }
    }

    if (voluntary)
        ++t.voluntarySwitches;
    else
        ++t.involuntarySwitches;
    ++contextSwitches_;
    t.state = to;
    LIMIT_TRACE(machine_.tracer(), cpu.id(),
                trace::TraceEvent::ContextSwitch, cpu.now(), t.ctx.tid(),
                static_cast<std::uint64_t>(to), voluntary);
    cpu.setCurrent(nullptr);
}

void
Kernel::installThread(sim::Cpu &cpu, Thread &t)
{
    panic_if(!cpu.idle(), "installing on a busy core");
    panic_if(t.state == ThreadState::Done, "installing a finished thread");

    cpu.setCurrent(&t.ctx);
    t.state = ThreadState::Running;
    t.homeCore = cpu.id();
    if (t.firstScheduledAt == sim::maxTick)
        t.firstScheduledAt = cpu.now();

    if (config_.virtualizeCounters) {
        sim::Pmu &pmu = cpu.pmu();
        fault::FaultController *const faults = machine_.faults();
        unsigned enabled = 0;
        for (unsigned i = 0; i < pmu.numCounters(); ++i) {
            if (pmu.config(i).enabled)
                ++enabled;
        }
        if (!pmu.features().taggedVirtualization && enabled > 0)
            cpu.kernelWork(enabled * cpu.costs().counterSwitchCost / 2);
        // Hardware restore happens at the end of the switch path; the
        // restore's own kernel cycles are not visible in the restored
        // values (modelled measurement fuzz for kernel-mode counters).
        for (unsigned i = 0; i < pmu.numCounters(); ++i) {
            if (!pmu.config(i).enabled)
                continue;
            std::uint64_t v = t.savedCounters[i];
            if (faults) {
                const fault::SaveRestoreAction act =
                    faults->onCounterRestore(cpu, t.ctx.tid(), i, v);
                if (act.skip)
                    continue; // stale hardware value persists
                if (act.corrupt)
                    v = act.value;
            }
            pmu.write(i, v);
        }
        if (enabled > 0) {
            LIMIT_TRACE(machine_.tracer(), cpu.id(),
                        trace::TraceEvent::CounterRestore, cpu.now(),
                        t.ctx.tid(), enabled);
        }
    }

    cpu.quantumEnd = cpu.now() + cpu.costs().quantum;
}

void
Kernel::wakeThread(Thread &t, sim::Tick earliest, std::uint64_t wake_value)
{
    panic_if(t.state == ThreadState::Running ||
                 t.state == ThreadState::Done,
             "waking thread '", t.ctx.name(), "' in state ",
             threadStateName(t.state));
    t.ctx.result = wake_value;
    t.futexWord = nullptr;
    t.state = ThreadState::Runnable;

    // Prefer the home core when idle, else any idle core (unless
    // pinned), else queue on the home core.
    sim::Cpu *target = nullptr;
    if (machine_.cpu(t.homeCore).idle()) {
        target = &machine_.cpu(t.homeCore);
    } else if (!t.pinned) {
        for (sim::CoreId c = 0; c < machine_.numCores(); ++c) {
            if (machine_.cpu(c).idle()) {
                target = &machine_.cpu(c);
                break;
            }
        }
    }
    if (target) {
        target->syncTimeAtLeast(earliest);
        // The idle core pays the switch-in cost (no deschedule ran);
        // charged after install so it is attributed to the incoming
        // thread's ledger and counters.
        installThread(*target, t);
        target->kernelWork(target->costs().contextSwitchCost);
    } else {
        scheduler_.enqueue(t.homeCore, t.ctx.tid());
    }
}

void
Kernel::timerTick(sim::Cpu &cpu)
{
    panic_if(cpu.idle(), "timer tick on an idle core");
    Thread &t = threadOf(*cpu.current());
    cpu.kernelWork(cpu.costs().timerIrqCost);
    // Tick-based accounting: the whole jiffy goes to whichever mode
    // dominated it — the coarse attribution real tick-based kernels
    // perform, and exactly the imprecision rusage readers inherit.
    const std::uint64_t kcycles =
        t.ctx.ledger().count(sim::EventType::Cycles,
                             sim::PrivMode::Kernel);
    if (kcycles - t.kernelCyclesAtTick > cpu.costs().quantum / 2)
        ++t.kernelJiffies;
    else
        ++t.userJiffies;
    t.kernelCyclesAtTick = kcycles;

    Thread *next = pickNext(cpu.id());
    if (next) {
        deschedule(cpu, t, ThreadState::Runnable, /*voluntary=*/false);
        scheduler_.enqueue(cpu.id(), t.ctx.tid());
        installThread(cpu, *next);
    } else {
        cpu.quantumEnd = cpu.now() + cpu.costs().quantum;
    }
}

void
Kernel::threadExited(sim::Cpu &cpu, sim::GuestContext &ctx)
{
    Thread &t = threadOf(ctx);
    cpu.kernelWork(cpu.costs().exitKernelCost);
    t.exitedAt = cpu.now();
    deschedule(cpu, t, ThreadState::Done, /*voluntary=*/true);
    panic_if(liveThreads_ == 0, "thread exit underflow");
    --liveThreads_;

    Thread *next = pickNext(cpu.id());
    if (next)
        installThread(cpu, *next);
}

bool
Kernel::poll(sim::Tick now)
{
    bool woke = false;
    for (;;) {
        // Drop stale heap tops so the earliest-event pick below only
        // sees live entries.
        while (!sleepers_.empty() &&
               thread(sleepers_.top().second).state !=
                   ThreadState::Sleeping) {
            sleepers_.pop();
        }
        while (!spuriousWakes_.empty()) {
            const Thread &t = thread(spuriousWakes_.top().second);
            if (t.state == ThreadState::Blocked && t.futexWord)
                break;
            spuriousWakes_.pop(); // woken for real in the meantime
        }

        const bool have_sleep = !sleepers_.empty();
        const bool have_spurious = !spuriousWakes_.empty();
        if (!have_sleep && !have_spurious)
            break;
        const bool spurious_first =
            have_spurious &&
            (!have_sleep ||
             spuriousWakes_.top().first < sleepers_.top().first);
        const sim::Tick at = spurious_first ? spuriousWakes_.top().first
                                            : sleepers_.top().first;
        if (now != sim::maxTick && at > now)
            break;
        if (spurious_first) {
            const sim::ThreadId tid = spuriousWakes_.top().second;
            spuriousWakes_.pop();
            deliverSpuriousWake(thread(tid), at);
        } else {
            const sim::ThreadId tid = sleepers_.top().second;
            sleepers_.pop();
            wakeThread(thread(tid), at, 0);
        }
        woke = true;
        if (now == sim::maxTick) {
            // Everything is idle: wake only the earliest event; the
            // machine loop re-polls with real time afterwards.
            break;
        }
    }
    // Tell the run loop when the next poll can matter. A stale heap
    // top only makes the hint conservative (an early, no-op poll).
    armPollHint();
    return woke;
}

void
Kernel::deliverSpuriousWake(Thread &t, sim::Tick at)
{
    auto it = futexQueues_.find(t.futexWord);
    if (it != futexQueues_.end()) {
        auto &queue = it->second;
        queue.erase(std::remove(queue.begin(), queue.end(), t.ctx.tid()),
                    queue.end());
        if (queue.empty())
            futexQueues_.erase(it);
    }
    // A real spurious wakeup is indistinguishable from a futexWake to
    // the waiter: same trace event, same success result.
    LIMIT_TRACE(machine_.tracer(), t.ctx.lastCore,
                trace::TraceEvent::FutexWake, at, t.ctx.tid(),
                reinterpret_cast<std::uint64_t>(t.futexWord), 1);
    wakeThread(t, at, 0);
}

/*
 * Contract with the batched run loop: every poll() re-arms the hint
 * before returning, and the hint is never later than the earliest
 * sleeper/spurious-wake deadline. Cpu::runUntil treats the hint as a
 * batch ceiling, so an accurate hint is what lets a lone busy core
 * run thousands of ops per scheduler round (maxTick when both heaps
 * are empty); a conservative hint only costs an early no-op poll,
 * never a missed wake.
 */
void
Kernel::armPollHint()
{
    sim::Tick next =
        sleepers_.empty() ? sim::maxTick : sleepers_.top().first;
    if (!spuriousWakes_.empty() && spuriousWakes_.top().first < next)
        next = spuriousWakes_.top().first;
    machine_.setNextPoll(next);
}

// ---------------------------------------------------------------------
// PMIs
// ---------------------------------------------------------------------

void
Kernel::pmuOverflow(sim::Cpu &cpu, unsigned counter, std::uint32_t wraps)
{
    LIMIT_TRACE(machine_.tracer(), cpu.id(),
                trace::TraceEvent::PmiDelivered, cpu.now(),
                cpu.current() ? cpu.current()->tid()
                              : sim::invalidThread,
                counter, wraps);
    // Handler first so it observes the true delivery time (skid
    // modelling depends on it); the PMI entry/exit cost is charged to
    // the same thread immediately after.
    if (pmiHandlers_[counter])
        pmiHandlers_[counter](cpu, cpu.current(), counter, wraps);
    cpu.kernelWork(cpu.costs().pmiCost);
}

// ---------------------------------------------------------------------
// Syscalls
// ---------------------------------------------------------------------

sim::SyscallOutcome
Kernel::syscall(sim::Cpu &cpu, sim::GuestContext &ctx, std::uint32_t nr,
                const std::array<std::uint64_t, 4> &args)
{
    LIMIT_TRACE(machine_.tracer(), cpu.id(),
                trace::TraceEvent::SyscallEnter, cpu.now(), ctx.tid(),
                nr, args[0]);
    const sim::SyscallOutcome out = syscallImpl(cpu, ctx, nr, args);
    // For a blocking syscall the exit is stamped when the core moves
    // on (the caller's result arrives at wake time); the record is
    // still attributed to the calling thread.
    LIMIT_TRACE(machine_.tracer(), cpu.id(),
                trace::TraceEvent::SyscallExit, cpu.now(), ctx.tid(),
                nr, out.value);
    return out;
}

sim::SyscallOutcome
Kernel::syscallImpl(sim::Cpu &cpu, sim::GuestContext &ctx,
                    std::uint32_t nr,
                    const std::array<std::uint64_t, 4> &args)
{
    Thread &t = threadOf(ctx);
    const sim::CostModel &costs = cpu.costs();

    if (fault::FaultController *f = machine_.faults()) {
        // Injected slow-path stall: extra kernel work charged to the
        // caller before the handler runs.
        const sim::Tick stall = f->onSyscallEnter(cpu, t.ctx.tid(), nr);
        if (stall > 0)
            cpu.kernelWork(stall);
    }

    switch (static_cast<Sys>(nr)) {
      case sysNop:
        cpu.kernelWork(costs.trivialSyscallCost);
        return {0, false};

      case sysGetTid:
        cpu.kernelWork(costs.trivialSyscallCost);
        return {t.ctx.tid(), false};

      case sysYield:
        return sysYieldImpl(cpu, t);

      case sysSleep:
        return sysSleepImpl(cpu, t, args[0], costs.trivialSyscallCost);

      case sysIoSubmit:
        return sysSleepImpl(cpu, t, args[0], costs.ioSyscallCost);

      case sysFutexWait:
        return sysFutexWaitImpl(cpu, t, args);

      case sysFutexWake:
        return sysFutexWakeImpl(cpu, t, args);

      case sysPerfRead:
        return {perf_.read(cpu, t, static_cast<unsigned>(args[0])),
                false};

      case sysPapiRead:
        return {perf_.readPapi(cpu, t, static_cast<unsigned>(args[0])),
                false};

      case sysPerfIoctl:
        perf_.ioctl(cpu, t, static_cast<unsigned>(args[0]),
                    static_cast<PerfIoctlOp>(args[1]));
        return {0, false};

      case sysPmcConfig:
        cpu.kernelWork(costs.trapEntryCost / 2 +
                       2 * args[0] * costs.msrAccessCost);
        return {0, false};

      case sysRusage: {
        cpu.kernelWork(costs.rusageKernelCost);
        const std::uint64_t jiffies =
            args[0] == 0 ? t.userJiffies : t.kernelJiffies;
        return {jiffies * costs.quantum, false};
      }

      default:
        fatal("unknown syscall ", nr, " from thread '", ctx.name(), "'");
    }
}

sim::SyscallOutcome
Kernel::sysYieldImpl(sim::Cpu &cpu, Thread &t)
{
    cpu.kernelWork(cpu.costs().yieldKernelCost);
    Thread *next = pickNext(cpu.id());
    if (!next) {
        cpu.quantumEnd = cpu.now() + cpu.costs().quantum;
        return {0, false};
    }
    deschedule(cpu, t, ThreadState::Runnable, /*voluntary=*/true);
    scheduler_.enqueue(cpu.id(), t.ctx.tid());
    installThread(cpu, *next);
    // The result slot is already valid (0); no wake needed.
    t.ctx.result = 0;
    return {0, true};
}

sim::SyscallOutcome
Kernel::sysSleepImpl(sim::Cpu &cpu, Thread &t, sim::Tick duration,
                     sim::Tick cost)
{
    cpu.kernelWork(cost);
    t.wakeTick = cpu.now() + duration;
    sleepers_.emplace(t.wakeTick, t.ctx.tid());
    armPollHint();
    deschedule(cpu, t, ThreadState::Sleeping, /*voluntary=*/true);
    Thread *next = pickNext(cpu.id());
    if (next)
        installThread(cpu, *next);
    return {0, true};
}

sim::SyscallOutcome
Kernel::sysFutexWaitImpl(sim::Cpu &cpu, Thread &t,
                         const std::array<std::uint64_t, 4> &args)
{
    cpu.kernelWork(cpu.costs().futexWaitKernelCost);
    const auto *word =
        reinterpret_cast<const std::uint64_t *>(args[0]);
    panic_if(word == nullptr, "futex wait on null word");
    // The op-granular global serialization makes this check atomic
    // with respect to every guest store.
    if (*word != args[1]) {
        LIMIT_TRACE(machine_.tracer(), cpu.id(),
                    trace::TraceEvent::FutexWait, cpu.now(),
                    t.ctx.tid(), args[0], 1 /* EAGAIN */);
        return {1 /* EAGAIN */, false};
    }

    LIMIT_TRACE(machine_.tracer(), cpu.id(),
                trace::TraceEvent::FutexWait, cpu.now(), t.ctx.tid(),
                args[0], 0);
    t.futexWord = word;
    futexQueues_[word].push_back(t.ctx.tid());
    if (fault::FaultController *f = machine_.faults()) {
        const sim::Tick in = f->onFutexBlock(cpu, t.ctx.tid(), word);
        if (in > 0) {
            spuriousWakes_.emplace(cpu.now() + in, t.ctx.tid());
            armPollHint();
        }
    }
    deschedule(cpu, t, ThreadState::Blocked, /*voluntary=*/true);
    Thread *next = pickNext(cpu.id());
    if (next)
        installThread(cpu, *next);
    return {0, true};
}

sim::SyscallOutcome
Kernel::sysFutexWakeImpl(sim::Cpu &cpu, Thread &,
                         const std::array<std::uint64_t, 4> &args)
{
    cpu.kernelWork(cpu.costs().futexWakeKernelCost);
    const auto *word =
        reinterpret_cast<const std::uint64_t *>(args[0]);
    const std::uint64_t max_wake = args[1];

    auto it = futexQueues_.find(word);
    if (it == futexQueues_.end()) {
        LIMIT_TRACE(machine_.tracer(), cpu.id(),
                    trace::TraceEvent::FutexWake, cpu.now(),
                    cpu.current()->tid(), args[0], 0);
        return {0, false};
    }

    std::uint64_t woken = 0;
    auto &queue = it->second;
    while (woken < max_wake && !queue.empty()) {
        const sim::ThreadId tid = queue.front();
        queue.pop_front();
        Thread &w = thread(tid);
        panic_if(w.state != ThreadState::Blocked,
                 "futex queue held thread '", w.ctx.name(),
                 "' in state ", threadStateName(w.state));
        wakeThread(w, cpu.now(), 0);
        ++woken;
    }
    if (queue.empty())
        futexQueues_.erase(it);
    LIMIT_TRACE(machine_.tracer(), cpu.id(),
                trace::TraceEvent::FutexWake, cpu.now(),
                cpu.current()->tid(), args[0], woken);
    return {woken, false};
}

std::string
Kernel::blockedReport() const
{
    std::ostringstream os;
    for (const auto &t : threads_) {
        if (t->state == ThreadState::Done)
            continue;
        os << "  thread " << t->ctx.tid() << " '" << t->ctx.name()
           << "': " << threadStateName(t->state) << '\n';
    }
    return os.str();
}

} // namespace limit::os
