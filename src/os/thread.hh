/**
 * @file
 * Kernel-side per-thread state.
 */

#ifndef LIMIT_OS_THREAD_HH
#define LIMIT_OS_THREAD_HH

#include <array>
#include <cstdint>
#include <memory>
#include <string>

#include "sim/guest.hh"
#include "sim/pmu.hh"
#include "sim/types.hh"

namespace limit::os {

/** Scheduler-visible thread states. */
enum class ThreadState : std::uint8_t {
    Runnable, ///< on a run queue
    Running,  ///< installed on a core
    Blocked,  ///< waiting on a futex
    Sleeping, ///< waiting for a timed wake (sleep / I/O completion)
    Done,     ///< body completed and reaped
};

/** Human-readable state name. */
constexpr const char *
threadStateName(ThreadState s)
{
    switch (s) {
      case ThreadState::Runnable: return "runnable";
      case ThreadState::Running: return "running";
      case ThreadState::Blocked: return "blocked";
      case ThreadState::Sleeping: return "sleeping";
      case ThreadState::Done: return "done";
      default: return "?";
    }
}

/**
 * A kernel thread: guest context plus scheduling, accounting, and
 * counter-virtualization state.
 */
class Thread
{
  public:
    Thread(sim::Machine &machine, sim::ThreadId tid, std::string name,
           std::uint64_t seed)
        : ctx(machine, tid, std::move(name), seed)
    {
        ctx.osThread = this;
    }

    sim::GuestContext ctx;
    ThreadState state = ThreadState::Runnable;

    /** Preferred core (last ran / spawn placement). */
    sim::CoreId homeCore = 0;
    /** When pinned, the thread only ever runs on homeCore. */
    bool pinned = false;

    /** Timed wake deadline while Sleeping. */
    sim::Tick wakeTick = 0;
    /** Host futex word the thread is blocked on. */
    const std::uint64_t *futexWord = nullptr;
    /** Value delivered as the blocking syscall's result at wake. */
    std::uint64_t wakeValue = 0;

    /** @name Software counter virtualization (see Kernel) @{ */
    /** Saved hardware counter values while descheduled. */
    std::array<std::uint64_t, sim::maxPmuCounters> savedCounters{};
    /** Kernel-side 64-bit overflow accumulation for perf counting. */
    std::array<std::uint64_t, sim::maxPmuCounters> perfAccum{};
    /** @} */

    /** @name Accounting @{ */
    std::uint64_t userJiffies = 0;
    std::uint64_t kernelJiffies = 0;
    /** Kernel cycles observed at the last timer tick (for jiffy
        mode attribution). */
    std::uint64_t kernelCyclesAtTick = 0;
    std::uint64_t voluntarySwitches = 0;
    std::uint64_t involuntarySwitches = 0;
    sim::Tick firstScheduledAt = sim::maxTick;
    sim::Tick exitedAt = 0;
    /** @} */
};

} // namespace limit::os

#endif // LIMIT_OS_THREAD_HH
