/**
 * @file
 * perf_event-style kernel counter subsystem.
 *
 * Models the two access styles the paper compares against:
 *   - counting mode: counters virtualized in the kernel, read through
 *     a heavyweight syscall (sysPerfRead / the lighter sysPapiRead);
 *   - sampling mode: the counter is preloaded so it overflows every
 *     `period` events; the PMI handler records (tick, tid, region)
 *     into a ring buffer, which a profiler aggregates afterwards.
 */

#ifndef LIMIT_OS_PERF_EVENT_HH
#define LIMIT_OS_PERF_EVENT_HH

#include <array>
#include <cstdint>
#include <vector>

#include "sim/pmu.hh"
#include "sim/types.hh"

namespace limit::sim {
class Cpu;
class GuestContext;
} // namespace limit::sim

namespace limit::os {

class Kernel;
class Thread;
enum class PerfIoctlOp : std::uint64_t;

/** One PMU-overflow sample. */
struct SampleRecord
{
    sim::Tick tick;
    sim::ThreadId tid;
    sim::RegionId region;
};

/** How a hardware counter is being used by the perf subsystem. */
enum class PerfMode : std::uint8_t { Off, Counting, Sampling };

/** Kernel counter-session manager (one global session, all threads). */
class PerfSubsystem
{
  public:
    explicit PerfSubsystem(Kernel &kernel);

    /** @name Host-side session setup @{ */
    /** Count `event` on counter `ctr` with kernel 64-bit virtualization. */
    void setupCounting(unsigned ctr, sim::EventType event, bool user,
                       bool kernel_mode);
    /** Sample every `period` occurrences of `event` on counter `ctr`. */
    void setupSampling(unsigned ctr, sim::EventType event,
                       std::uint64_t period, bool user, bool kernel_mode);
    /** Release counter `ctr`. */
    void teardown(unsigned ctr);
    /** @} */

    /** @name Syscall backends (invoked by the Kernel) @{ */
    std::uint64_t read(sim::Cpu &cpu, Thread &thread, unsigned ctr);
    std::uint64_t readPapi(sim::Cpu &cpu, Thread &thread, unsigned ctr);
    void ioctl(sim::Cpu &cpu, Thread &thread, unsigned ctr,
               PerfIoctlOp op);
    /** @} */

    /** PMI handler (registered with the Kernel per counter). */
    void onOverflow(sim::Cpu &cpu, sim::GuestContext *ctx, unsigned ctr,
                    std::uint32_t wraps);

    /**
     * Initialize a freshly spawned thread's saved counter state so it
     * inherits sampling preloads (called by Kernel::spawnOn).
     */
    void initThread(Thread &thread) const;

    /**
     * Adjust a counter value as it is saved at context switch: a
     * sampling counter that wrapped (PMI still pending or already
     * handled on-core) must be saved re-armed, otherwise the thread
     * resumes with a near-zero counter and never samples again.
     * Returns `value` unchanged for non-sampling counters.
     */
    std::uint64_t adjustSavedValue(unsigned ctr,
                                   std::uint64_t value) const;

    PerfMode mode(unsigned ctr) const { return modes_.at(ctr); }
    std::uint64_t period(unsigned ctr) const { return periods_.at(ctr); }

    /**
     * Model PMI skid: a sample whose owning event fired within
     * `cycles` before the interrupt is attributed to the region that
     * was current back then — the misattribution real (non-PEBS) PMIs
     * exhibit, which hurts short regions most. 0 (default) disables.
     */
    void setSkid(sim::Tick cycles) { skid_ = cycles; }
    sim::Tick skid() const { return skid_; }

    /** All samples recorded so far (global ring buffer). */
    const std::vector<SampleRecord> &samples() const { return samples_; }
    void clearSamples() { samples_.clear(); }
    /** Samples dropped because no thread was running at PMI time. */
    std::uint64_t lostSamples() const { return lostSamples_; }

  private:
    /** Counter preload value that overflows after `period` events. */
    std::uint64_t reloadBase(unsigned ctr) const;
    std::uint64_t readValue(sim::Cpu &cpu, Thread &thread, unsigned ctr);

    Kernel &kernel_;
    std::array<PerfMode, sim::maxPmuCounters> modes_{};
    std::array<std::uint64_t, sim::maxPmuCounters> periods_{};
    std::vector<SampleRecord> samples_;
    std::uint64_t lostSamples_ = 0;
    sim::Tick skid_ = 0;
};

} // namespace limit::os

#endif // LIMIT_OS_PERF_EVENT_HH
