/**
 * @file
 * Per-core round-robin run queues with idle-time work stealing.
 */

#ifndef LIMIT_OS_SCHEDULER_HH
#define LIMIT_OS_SCHEDULER_HH

#include <cstddef>
#include <deque>
#include <vector>

#include "sim/types.hh"

namespace limit::os {

/**
 * Run-queue bookkeeping only; state transitions live in the Kernel.
 * Threads are queued by id; affinity is a preference, not a contract,
 * unless the thread is pinned (the kernel filters steals for pins).
 */
class Scheduler
{
  public:
    explicit Scheduler(unsigned num_cores);

    /** Append to `core`'s queue. */
    void enqueue(sim::CoreId core, sim::ThreadId tid);

    /**
     * Pop the next thread for `core`: local queue first, then steal
     * from the longest remote queue (honouring `can_steal`).
     * @return invalidThread when nothing is runnable for this core.
     */
    template <typename StealFilter>
    sim::ThreadId
    dequeue(sim::CoreId core, StealFilter can_steal)
    {
        auto &local = queues_[core];
        if (!local.empty()) {
            const sim::ThreadId tid = local.front();
            local.pop_front();
            --queued_;
            return tid;
        }
        // Steal from the longest queue that has a stealable thread.
        for (;;) {
            std::size_t best_len = 0;
            sim::CoreId victim = 0;
            for (sim::CoreId c = 0; c < queues_.size(); ++c) {
                if (c != core && queues_[c].size() > best_len) {
                    best_len = queues_[c].size();
                    victim = c;
                }
            }
            if (best_len == 0)
                return sim::invalidThread;
            auto &q = queues_[victim];
            for (auto it = q.begin(); it != q.end(); ++it) {
                if (can_steal(*it)) {
                    const sim::ThreadId tid = *it;
                    q.erase(it);
                    --queued_;
                    return tid;
                }
            }
            // Everything in the longest queue is pinned elsewhere:
            // no other queue can be longer-with-stealables; scan all.
            for (sim::CoreId c = 0; c < queues_.size(); ++c) {
                if (c == core)
                    continue;
                auto &qc = queues_[c];
                for (auto it = qc.begin(); it != qc.end(); ++it) {
                    if (can_steal(*it)) {
                        const sim::ThreadId tid = *it;
                        qc.erase(it);
                        --queued_;
                        return tid;
                    }
                }
            }
            return sim::invalidThread;
        }
    }

    /** Total queued (not running/blocked) threads. */
    std::size_t queued() const { return queued_; }

    /** Queue length for one core. */
    std::size_t queueLength(sim::CoreId core) const;

  private:
    std::vector<std::deque<sim::ThreadId>> queues_;
    std::size_t queued_ = 0;
};

} // namespace limit::os

#endif // LIMIT_OS_SCHEDULER_HH
