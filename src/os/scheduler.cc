#include "os/scheduler.hh"

#include "base/logging.hh"

namespace limit::os {

Scheduler::Scheduler(unsigned num_cores) : queues_(num_cores)
{
    fatal_if(num_cores == 0, "scheduler needs at least one core");
}

void
Scheduler::enqueue(sim::CoreId core, sim::ThreadId tid)
{
    panic_if(core >= queues_.size(), "bad core id ", core);
    queues_[core].push_back(tid);
    ++queued_;
}

std::size_t
Scheduler::queueLength(sim::CoreId core) const
{
    panic_if(core >= queues_.size(), "bad core id ", core);
    return queues_[core].size();
}

} // namespace limit::os
