/**
 * @file
 * Per-thread kernel-interaction attribution.
 *
 * A KernelProfile decomposes each thread's work into user and kernel
 * cycles/instructions (from the simulator's exact ledger — the same
 * ground truth E7 cross-checks its mode-filtered counters against),
 * counts voluntary/involuntary context switches and PMIs, and builds
 * syscall-by-number latency histograms by pairing syscall-enter/exit
 * trace records. For blocking syscalls the recorded latency is the
 * kernel-path core occupancy (enter to the completion stamp on the
 * issuing core), not wall-clock blocked time.
 *
 * Built host-side after the run; attaching one never perturbs the
 * simulation. With tracing compiled out (LIMITPP_TRACE=OFF) the
 * syscall histograms and PMI counts are empty — the ledger-based
 * decomposition and switch counts remain exact.
 */

#ifndef LIMIT_PROF_KERNEL_PROFILE_HH
#define LIMIT_PROF_KERNEL_PROFILE_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/types.hh"
#include "stats/hdr_histogram.hh"
#include "trace/trace.hh"

namespace limit::os {
class Kernel;
}

namespace limit::prof {

/** Latency aggregate for one syscall number on one thread. */
struct SyscallStats
{
    std::uint64_t calls = 0;
    stats::HdrHistogram latencyCycles{5};

    void merge(const SyscallStats &other);
};

/** Kernel-interaction aggregates for one thread. */
struct ThreadKernelStats
{
    std::string name;
    std::uint64_t userCycles = 0;
    std::uint64_t kernelCycles = 0;
    std::uint64_t userInstructions = 0;
    std::uint64_t kernelInstructions = 0;
    std::uint64_t voluntarySwitches = 0;
    std::uint64_t involuntarySwitches = 0;
    /** PMIs delivered while this thread was current. */
    std::uint64_t pmis = 0;
    /** Keyed by syscall number, sorted. */
    std::map<std::uint32_t, SyscallStats> syscalls;

    std::uint64_t totalCycles() const { return userCycles + kernelCycles; }
    std::uint64_t
    totalInstructions() const
    {
        return userInstructions + kernelInstructions;
    }

    void merge(const ThreadKernelStats &other);
};

/** Per-thread kernel profile for one run (mergeable across runs). */
class KernelProfile
{
  public:
    /** Per-thread entry, created on first use. */
    ThreadKernelStats &thread(sim::ThreadId tid);

    const std::map<sim::ThreadId, ThreadKernelStats> &threads() const
    {
        return threads_;
    }

    /** @name Process-wide totals @{ */
    std::uint64_t userCycles() const;
    std::uint64_t kernelCycles() const;
    std::uint64_t userInstructions() const;
    std::uint64_t kernelInstructions() const;
    std::uint64_t contextSwitches() const;
    std::uint64_t pmis() const;
    std::uint64_t syscallCount() const;
    /** @} */

    /** Fold another profile in, matching threads by tid. */
    void merge(const KernelProfile &other);

  private:
    std::map<sim::ThreadId, ThreadKernelStats> threads_;
};

/**
 * Harvest a KernelProfile from a finished run: exact ledger
 * decomposition and switch counts from `kernel`'s threads, syscall
 * latencies and PMI counts from `records` (a time-ordered trace
 * snapshot, e.g. Tracer::merged()). Enter records whose exit was
 * overwritten in the ring (and vice versa) are skipped.
 */
KernelProfile buildKernelProfile(
    os::Kernel &kernel, const std::vector<trace::TraceRecord> &records);

} // namespace limit::prof

#endif // LIMIT_PROF_KERNEL_PROFILE_HH
