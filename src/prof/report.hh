/**
 * @file
 * Report: the profile-to-output pipeline.
 *
 * Benches feed per-run profiles (sync, kernel, named histograms,
 * open-region diagnostics) into a Report; it renders the machine-
 * readable JSON artifact (--profile-out), the aligned-ASCII tables
 * the benches print, and the markdown tables EXPERIMENTS.md embeds —
 * one aggregation path for all three, so the published numbers can
 * never drift from the profile data.
 *
 * Everything is deterministic: sections keep insertion order, maps
 * iterate sorted, and all statistics are exact integers (or ratios
 * thereof), so a rerun with the same seeds produces a byte-identical
 * JSON file.
 */

#ifndef LIMIT_PROF_REPORT_HH
#define LIMIT_PROF_REPORT_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "pec/region.hh"
#include "sim/types.hh"
#include "prof/kernel_profile.hh"
#include "prof/sync_profile.hh"
#include "stats/hdr_histogram.hh"
#include "stats/table.hh"

namespace limit::prof {

/** Aggregates profiles and renders JSON / ASCII / markdown. */
class Report
{
  public:
    /** One named synchronization section (e.g. one application). */
    struct SyncSection
    {
        std::string name;
        SyncProfile profile;
        /** All-thread user+kernel cycles, summed over runs. */
        std::uint64_t totalCycles = 0;
        /** Txns / requests / events, summed over runs. */
        std::uint64_t workItems = 0;
        unsigned runs = 0;
    };

    /** One named kernel-interaction section. */
    struct KernelSection
    {
        std::string name;
        KernelProfile profile;
        /** PEC mode-filtered instruction totals (drift check). */
        std::uint64_t pecUserInstructions = 0;
        std::uint64_t pecKernelInstructions = 0;
        unsigned runs = 0;
    };

    /**
     * One scenario's ranked sensitivity analysis: how a work metric
     * responds to perturbing each machine-configuration axis, ranked
     * most-sensitive-first (produced by analysis::sensitivity).
     */
    struct SensitivitySection
    {
        /** One measured lattice point along one axis. */
        struct Level
        {
            /** Axis parameter value at this point. */
            double param = 0;
            /** Work metric at this point (seed-averaged). */
            double work = 0;
            /** 100 * (work - baseline) / baseline. */
            double workRelPct = 0;
            /** (Δwork/work0) / (Δparam/param0). */
            double elasticity = 0;
            /** Secondary metrics (miss rates, IPC, ...), sorted. */
            std::map<std::string, double> metrics;
        };

        /** One configuration axis with its measured levels. */
        struct AxisResult
        {
            std::string axis;
            std::string unit;
            /** Axis parameter value at the baseline machine. */
            double baseParam = 0;
            /** Ranking key: max |workRelPct| over the levels. */
            double score = 0;
            std::vector<Level> levels;
        };

        std::string name;
        /** What `work` measures (e.g. "iterations", "txns"). */
        std::string workMetric;
        double baselineWork = 0;
        std::map<std::string, double> baselineMetrics;
        /** Ranked most-sensitive-first; ties keep insertion order. */
        std::vector<AxisResult> axes;
    };

    /**
     * One run's exact guest-cycle timeline: per-core PMU event
     * deltas per fixed interval, plus the phase segmentation the
     * change-point detector derived from them (produced by
     * prof::buildTimeline from a sim::TimelineRecorder).
     */
    struct TimelineSection
    {
        /** One detected phase: a run of consecutive slices. */
        struct Phase
        {
            std::uint64_t firstSlice = 0;
            std::uint64_t numSlices = 0;
            /** Machine-wide instructions per cycle over the phase. */
            double ipc = 0;
            /** Highest-rate architectural event (see buildTimeline). */
            std::string dominant;
            /** Mean per-cycle event rates, keyed by event name. */
            std::map<std::string, double> rates;
        };

        std::string name;
        std::uint64_t intervalTicks = 0;
        /** cores[core][slice]: exact event deltas for that interval. */
        std::vector<std::vector<sim::EventDeltas>> cores;
        std::vector<Phase> phases;
    };

    /**
     * Override the "schema" tag in the JSON artifact (default
     * "limitpp-profile-v1"; the sensitivity engine stamps
     * "limitpp-sensitivity-v1").
     */
    void schema(const std::string &schema_tag);

    /** Free-form run metadata, emitted under "meta". */
    void meta(const std::string &key, const std::string &value);
    void meta(const std::string &key, std::uint64_t value);
    void meta(const std::string &key, double value);

    /**
     * Add one run's synchronization profile under `name`; repeated
     * adds with the same name merge (multi-seed aggregation).
     */
    void addSync(const std::string &name, const SyncProfile &profile,
                 std::uint64_t total_cycles, std::uint64_t work_items);

    /** Add one run's kernel profile under `name`; same-name merges. */
    void addKernel(const std::string &name, const KernelProfile &profile,
                   std::uint64_t pec_user_instructions,
                   std::uint64_t pec_kernel_instructions);

    /** Attach a standalone named histogram (e.g. read latencies). */
    void addHistogram(const std::string &name,
                      const stats::HdrHistogram &histogram);

    /**
     * Record `profiler`'s entered-never-exited visits (resolved to
     * region names) so dangling measurements show up in the output,
     * not just the diagnostic API.
     */
    void addOpenRegions(const pec::RegionProfiler &profiler,
                        const sim::RegionTable &regions);

    /** Attach one scenario's ranked sensitivity analysis. */
    void addSensitivity(const SensitivitySection &section);

    /** Attach one run's exact interval timeline. */
    void addTimeline(const TimelineSection &section);

    const SyncSection *sync(const std::string &name) const;
    const KernelSection *kernel(const std::string &name) const;
    const std::vector<SyncSection> &syncSections() const
    {
        return sync_;
    }
    const std::vector<KernelSection> &kernelSections() const
    {
        return kernel_;
    }
    const std::vector<SensitivitySection> &sensitivitySections() const
    {
        return sensitivity_;
    }
    const std::vector<TimelineSection> &timelineSections() const
    {
        return timeline_;
    }

    /** @name Rendering @{ */

    /** E5a-style per-application summary. */
    stats::Table syncSummaryTable(const std::string &title) const;

    /** E5b-style per-lock-class × call-site detail. */
    stats::Table syncDetailTable(const std::string &title) const;

    /** E7-style kernel/user breakdown with ledger drift. */
    stats::Table kernelTable(const std::string &title) const;

    /** E15-style ranked axis × level sensitivity detail. */
    stats::Table sensitivityTable(const std::string &title) const;

    /** The markdown table EXPERIMENTS.md embeds for E5. */
    std::string syncSummaryMarkdown() const;

    /**
     * The markdown table EXPERIMENTS.md embeds for E7, rows sorted
     * by kernel share descending (the published presentation).
     */
    std::string kernelMarkdown() const;

    /** The markdown ranking table EXPERIMENTS.md embeds for E15. */
    std::string sensitivityMarkdown() const;

    /**
     * Per-core ASCII heatmap (rows = cores, columns = slices,
     * intensity = instruction rate), a machine-wide IPC sparkline,
     * and the phase table — the terminal view `--timeline` prints.
     */
    std::string timelineAscii() const;

    /** The whole report as deterministic JSON. */
    std::string toJson() const;

    /** Write toJson() to `path`; false on I/O failure. */
    bool writeJson(const std::string &path) const;
    /** @} */

  private:
    struct OpenRegionEntry
    {
        std::string region;
        sim::ThreadId tid = sim::invalidThread;
        sim::Tick enterTick = 0;
    };

    SyncSection &syncSection(const std::string &name);
    KernelSection &kernelSection(const std::string &name);

    std::string schema_ = "limitpp-profile-v1";
    std::map<std::string, std::string> meta_;
    std::vector<SyncSection> sync_;
    std::vector<KernelSection> kernel_;
    std::vector<SensitivitySection> sensitivity_;
    std::vector<TimelineSection> timeline_;
    std::vector<std::pair<std::string, stats::HdrHistogram>> histograms_;
    std::vector<OpenRegionEntry> openRegions_;
};

} // namespace limit::prof

#endif // LIMIT_PROF_REPORT_HH
