#include "prof/sync_profile.hh"

#include <algorithm>

#include "base/logging.hh"

namespace limit::prof {

void
SyncSiteStats::merge(const SyncSiteStats &other)
{
    acquisitions += other.acquisitions;
    contended += other.contended;
    futexWaits += other.futexWaits;
    waitCycles.merge(other.waitCycles);
    holdCycles.merge(other.holdCycles);
}

CallSiteId
SyncProfile::internSite(std::string_view name)
{
    for (std::size_t i = 0; i < siteNames_.size(); ++i) {
        if (siteNames_[i] == name)
            return static_cast<CallSiteId>(i);
    }
    siteNames_.emplace_back(name);
    return static_cast<CallSiteId>(siteNames_.size() - 1);
}

const std::string &
SyncProfile::siteName(CallSiteId site) const
{
    static const std::string unknown = "?";
    return site < siteNames_.size() ? siteNames_[site] : unknown;
}

void
SyncProfile::onAcquire(sim::Addr lock, std::string_view lock_name,
                       CallSiteId site, sim::ThreadId waiter,
                       sim::ThreadId owner_at_entry,
                       std::uint64_t wait_cycles,
                       std::uint64_t futex_waits)
{
    lockNames_.emplace(lock, std::string(lock_name));
    SyncSiteStats &s = sites_[{lock, site}];
    ++s.acquisitions;
    s.futexWaits += futex_waits;
    s.waitCycles.add(wait_cycles);
    if (futex_waits > 0) {
        ++s.contended;
        if (owner_at_entry != sim::invalidThread &&
            owner_at_entry != waiter) {
            WaitEdge &e = edges_[{waiter, owner_at_entry}];
            ++e.count;
            e.waitCycles += wait_cycles;
        }
    }
}

void
SyncProfile::onRelease(sim::Addr lock, CallSiteId site,
                       std::uint64_t hold_cycles)
{
    sites_[{lock, site}].holdCycles.add(hold_cycles);
}

std::uint64_t
SyncProfile::totalAcquisitions() const
{
    std::uint64_t n = 0;
    for (const auto &[k, s] : sites_)
        n += s.acquisitions;
    return n;
}

std::uint64_t
SyncProfile::totalContended() const
{
    std::uint64_t n = 0;
    for (const auto &[k, s] : sites_)
        n += s.contended;
    return n;
}

std::uint64_t
SyncProfile::totalWaitCycles() const
{
    std::uint64_t n = 0;
    for (const auto &[k, s] : sites_)
        n += s.waitCycles.totalValue();
    return n;
}

std::uint64_t
SyncProfile::totalHoldCycles() const
{
    std::uint64_t n = 0;
    for (const auto &[k, s] : sites_)
        n += s.holdCycles.totalValue();
    return n;
}

SyncSiteStats
SyncProfile::classStats(std::string_view lock_name) const
{
    SyncSiteStats out;
    for (const auto &[key, s] : sites_) {
        auto it = lockNames_.find(key.first);
        if (it != lockNames_.end() && it->second == lock_name)
            out.merge(s);
    }
    return out;
}

std::vector<std::string>
SyncProfile::classNames() const
{
    std::vector<std::string> out;
    for (const auto &[addr, name] : lockNames_) {
        if (std::find(out.begin(), out.end(), name) == out.end())
            out.push_back(name);
    }
    std::sort(out.begin(), out.end());
    return out;
}

SyncProfile::Chain
SyncProfile::longestWaiterChain() const
{
    // Adjacency: waiter -> [(owner, cycles)], sorted by tid for
    // determinism (std::map iteration order).
    std::map<sim::ThreadId, std::vector<std::pair<sim::ThreadId,
                                                  std::uint64_t>>> adj;
    for (const auto &[key, e] : edges_)
        adj[key.first].emplace_back(key.second, e.waitCycles);

    // Thread counts are small (tens), so plain DFS over simple paths
    // is fine; the wait graph can contain cycles (A waited on B in
    // one acquisition, B on A in another), hence the on-path set.
    Chain best;
    std::vector<sim::ThreadId> path;
    std::vector<sim::ThreadId> on_path;

    auto dfs = [&](auto &&self, sim::ThreadId node,
                   std::uint64_t cycles) -> void {
        path.push_back(node);
        on_path.push_back(node);
        if (cycles > best.waitCycles ||
            (cycles == best.waitCycles &&
             path.size() > best.tids.size())) {
            best.tids = path;
            best.waitCycles = cycles;
        }
        auto it = adj.find(node);
        if (it != adj.end()) {
            for (const auto &[next, w] : it->second) {
                if (std::find(on_path.begin(), on_path.end(), next) !=
                    on_path.end())
                    continue;
                self(self, next, cycles + w);
            }
        }
        path.pop_back();
        on_path.pop_back();
    };
    for (const auto &[start, out_edges] : adj)
        dfs(dfs, start, 0);
    if (best.tids.size() < 2)
        return {}; // no edges: no chain worth reporting
    return best;
}

void
SyncProfile::merge(const SyncProfile &other)
{
    for (const auto &[addr, name] : other.lockNames_)
        lockNames_.emplace(addr, name);
    for (const auto &[key, s] : other.sites_) {
        // Remap the other profile's site id through its label: the
        // two profiles interned independently.
        const CallSiteId site = key.second == noCallSite
            ? noCallSite
            : internSite(other.siteName(key.second));
        sites_[{key.first, site}].merge(s);
    }
    for (const auto &[key, e] : other.edges_) {
        WaitEdge &mine = edges_[key];
        mine.count += e.count;
        mine.waitCycles += e.waitCycles;
    }
}

} // namespace limit::prof
