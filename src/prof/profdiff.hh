/**
 * @file
 * Differential profiling: diff two `limitpp-profile-v1` /
 * `limitpp-sensitivity-v1` / `limitpp-timeline-v1` reports.
 *
 * Each side of the diff is one or more report JSON files (one per
 * seed); every numeric leaf is flattened to a dotted key — per
 * lock-class site, per kernel thread/syscall, per sensitivity
 * axis/level/metric (which carries the per-region `region.*` keys),
 * per timeline phase and per-event totals — then keys are compared
 * mean-to-mean with min/max spread bands across the side's files. A
 * delta is *significant* only when the two bands do not overlap, so
 * seed-level noise cannot trip the gate. `tools/profdiff` wraps this
 * in a CLI with markdown output and a `--gate pct` exit code, the
 * guest-metric mirror of scripts/check_selfperf.py.
 */

#ifndef LIMIT_PROF_PROFDIFF_HH
#define LIMIT_PROF_PROFDIFF_HH

#include <cstddef>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace limit::prof {

/** One compared metric (present on both sides). */
struct DiffEntry
{
    /** Dotted path, e.g. "sync.oltp.locks.orders:addr_256.acquisitions". */
    std::string key;
    /** Per-side mean and [min, max] spread band across seed files. */
    double base = 0, baseLo = 0, baseHi = 0;
    double fresh = 0, freshLo = 0, freshHi = 0;
    /** fresh - base (of the means). */
    double delta = 0;
    /** 100 * delta / |base|; +-inf is clamped to +-1e9 when base==0. */
    double deltaPct = 0;
    /** The spread bands do not overlap (always true for 1v1 diffs
     * with differing values: the bands collapse to points). */
    bool significant = false;
};

/** Result of diffing two report sets. */
struct DiffResult
{
    /** Differing keys, largest |deltaPct| first (ties: key order). */
    std::vector<DiffEntry> entries;
    /** Keys equal on both sides (count only; they carry no signal). */
    std::size_t identical = 0;
    /** Keys present on one side only. */
    std::vector<std::string> onlyBase;
    std::vector<std::string> onlyFresh;

    /** Significant entries with |deltaPct| above `gate_pct`. */
    std::size_t exceeding(double gate_pct) const;

    /** True when nothing differs at all (self-diff). */
    bool
    clean() const
    {
        return entries.empty() && onlyBase.empty() && onlyFresh.empty();
    }

    /**
     * Markdown report: summary line, then a table of differing keys
     * (gate violations marked), then side-only key lists.
     */
    std::string markdown(double gate_pct) const;
};

/**
 * Flatten one report JSON document into dotted-key numeric leaves.
 * Array elements are labeled by their identifying fields ("name",
 * "axis", "class", ... falling back to the index), histogram objects
 * collapse to count/sum/min/max, and timeline slice matrices collapse
 * to per-event machine and per-core totals (slice-level noise would
 * drown the table; the phase rows carry the shape). Returns false
 * with `*error` set on malformed JSON.
 */
bool flattenReportJson(std::string_view json,
                       std::map<std::string, double> &out,
                       std::string *error);

/**
 * Diff two sides, each a list of report JSON documents (not paths).
 * A key counts for a side when any of its files carries it; the mean
 * is over the files that do. Returns false with `*error` set when a
 * document fails to parse or a side is empty.
 */
bool diffReports(const std::vector<std::string> &base_jsons,
                 const std::vector<std::string> &fresh_jsons,
                 DiffResult &out, std::string *error);

} // namespace limit::prof

#endif // LIMIT_PROF_PROFDIFF_HH
