#include "prof/profdiff.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <vector>

namespace limit::prof {

namespace {

// ---------------------------------------------------------------------
// Minimal JSON reader — just enough for the reports this repo writes.
// ---------------------------------------------------------------------

struct JsonValue
{
    enum class Kind { Null, Bool, Number, String, Array, Object };
    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0;
    std::string text;
    std::vector<JsonValue> items;
    /** Insertion-ordered (report keys are ordered on purpose). */
    std::vector<std::pair<std::string, JsonValue>> members;

    const JsonValue *
    find(std::string_view key) const
    {
        for (const auto &[k, v] : members) {
            if (k == key)
                return &v;
        }
        return nullptr;
    }
};

struct Parser
{
    std::string_view in;
    std::size_t pos = 0;
    std::string error;

    bool
    fail(const std::string &what)
    {
        if (error.empty()) {
            error = what + " at offset " + std::to_string(pos);
        }
        return false;
    }

    void
    ws()
    {
        while (pos < in.size() &&
               (in[pos] == ' ' || in[pos] == '\t' || in[pos] == '\n' ||
                in[pos] == '\r')) {
            ++pos;
        }
    }

    bool
    consume(char c)
    {
        ws();
        if (pos >= in.size() || in[pos] != c)
            return fail(std::string("expected '") + c + "'");
        ++pos;
        return true;
    }

    bool
    parseString(std::string &out)
    {
        if (!consume('"'))
            return false;
        out.clear();
        while (pos < in.size() && in[pos] != '"') {
            char c = in[pos++];
            if (c == '\\') {
                if (pos >= in.size())
                    return fail("truncated escape");
                char e = in[pos++];
                switch (e) {
                  case '"': out += '"'; break;
                  case '\\': out += '\\'; break;
                  case '/': out += '/'; break;
                  case 'n': out += '\n'; break;
                  case 't': out += '\t'; break;
                  case 'r': out += '\r'; break;
                  case 'b': out += '\b'; break;
                  case 'f': out += '\f'; break;
                  case 'u': {
                    if (pos + 4 > in.size())
                        return fail("truncated \\u escape");
                    unsigned v = 0;
                    for (int i = 0; i < 4; ++i) {
                        char h = in[pos++];
                        v <<= 4;
                        if (h >= '0' && h <= '9')
                            v |= static_cast<unsigned>(h - '0');
                        else if (h >= 'a' && h <= 'f')
                            v |= static_cast<unsigned>(h - 'a' + 10);
                        else if (h >= 'A' && h <= 'F')
                            v |= static_cast<unsigned>(h - 'A' + 10);
                        else
                            return fail("bad \\u escape");
                    }
                    // Reports only escape control chars; encode the
                    // code point as UTF-8 without surrogate handling.
                    if (v < 0x80) {
                        out += static_cast<char>(v);
                    } else if (v < 0x800) {
                        out += static_cast<char>(0xC0 | (v >> 6));
                        out += static_cast<char>(0x80 | (v & 0x3F));
                    } else {
                        out += static_cast<char>(0xE0 | (v >> 12));
                        out += static_cast<char>(0x80 |
                                                 ((v >> 6) & 0x3F));
                        out += static_cast<char>(0x80 | (v & 0x3F));
                    }
                    break;
                  }
                  default: return fail("unknown escape");
                }
            } else {
                out += c;
            }
        }
        if (pos >= in.size())
            return fail("unterminated string");
        ++pos;
        return true;
    }

    bool
    parseValue(JsonValue &out)
    {
        ws();
        if (pos >= in.size())
            return fail("unexpected end of input");
        const char c = in[pos];
        if (c == '{') {
            ++pos;
            out.kind = JsonValue::Kind::Object;
            ws();
            if (pos < in.size() && in[pos] == '}') {
                ++pos;
                return true;
            }
            while (true) {
                std::string key;
                if (!parseString(key))
                    return false;
                if (!consume(':'))
                    return false;
                JsonValue v;
                if (!parseValue(v))
                    return false;
                out.members.emplace_back(std::move(key), std::move(v));
                ws();
                if (pos < in.size() && in[pos] == ',') {
                    ++pos;
                    continue;
                }
                return consume('}');
            }
        }
        if (c == '[') {
            ++pos;
            out.kind = JsonValue::Kind::Array;
            ws();
            if (pos < in.size() && in[pos] == ']') {
                ++pos;
                return true;
            }
            while (true) {
                JsonValue v;
                if (!parseValue(v))
                    return false;
                out.items.push_back(std::move(v));
                ws();
                if (pos < in.size() && in[pos] == ',') {
                    ++pos;
                    continue;
                }
                return consume(']');
            }
        }
        if (c == '"') {
            out.kind = JsonValue::Kind::String;
            return parseString(out.text);
        }
        if (in.compare(pos, 4, "true") == 0) {
            out.kind = JsonValue::Kind::Bool;
            out.boolean = true;
            pos += 4;
            return true;
        }
        if (in.compare(pos, 5, "false") == 0) {
            out.kind = JsonValue::Kind::Bool;
            pos += 5;
            return true;
        }
        if (in.compare(pos, 4, "null") == 0) {
            pos += 4;
            return true;
        }
        // Number.
        const char *start = in.data() + pos;
        char *end = nullptr;
        out.number = std::strtod(start, &end);
        if (end == start)
            return fail("bad value");
        out.kind = JsonValue::Kind::Number;
        pos += static_cast<std::size_t>(end - start);
        return true;
    }
};

// ---------------------------------------------------------------------
// Flattening
// ---------------------------------------------------------------------

/** Sanitize a label for use inside a dotted key. */
std::string
sanitize(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s)
        out += (c == '.' || c == ' ' || c == '|') ? '_' : c;
    return out;
}

/**
 * Label an array element by its identifying fields so keys line up
 * across reports regardless of position shifts.
 */
std::string
elementLabel(const JsonValue &v, std::size_t index)
{
    if (v.kind != JsonValue::Kind::Object)
        return std::to_string(index);
    std::string label;
    for (const char *key : {"name", "axis", "class", "site", "region"}) {
        if (const JsonValue *f = v.find(key);
            f && f->kind == JsonValue::Kind::String) {
            if (!label.empty())
                label += ':';
            label += sanitize(f->text);
        }
    }
    for (const char *key :
         {"addr", "core", "tid", "nr", "waiter", "param",
          "first_slice"}) {
        if (const JsonValue *f = v.find(key);
            f && f->kind == JsonValue::Kind::Number) {
            if (!label.empty())
                label += ':';
            label += key;
            label += '_';
            std::ostringstream num;
            num << f->number;
            label += num.str();
        }
        if (!label.empty())
            break;
    }
    return label.empty() ? std::to_string(index) : label;
}

bool
isHistogram(const JsonValue &v)
{
    return v.kind == JsonValue::Kind::Object &&
           v.find("bucket_bits") != nullptr &&
           v.find("buckets") != nullptr;
}

bool
isTimelineSection(const JsonValue &v)
{
    return v.kind == JsonValue::Kind::Object &&
           v.find("cores") != nullptr && v.find("events") != nullptr &&
           v.find("interval_ticks") != nullptr;
}

void flatten(const JsonValue &v, const std::string &prefix,
             std::map<std::string, double> &out);

/** Collapse a timeline section's slice matrix to per-event totals. */
void
flattenTimeline(const JsonValue &v, const std::string &prefix,
                std::map<std::string, double> &out)
{
    std::vector<std::string> events;
    for (const auto &e : v.find("events")->items)
        events.push_back(sanitize(e.text));
    const JsonValue *cores = v.find("cores");
    std::vector<double> total(events.size(), 0.0);
    for (const auto &core : cores->items) {
        const JsonValue *id = core.find("core");
        const JsonValue *slices = core.find("slices");
        if (!id || !slices)
            continue;
        std::vector<double> coreTotal(events.size(), 0.0);
        for (const auto &row : slices->items) {
            for (std::size_t e = 0;
                 e < row.items.size() && e < events.size(); ++e) {
                coreTotal[e] += row.items[e].number;
            }
        }
        std::ostringstream cid;
        cid << id->number;
        for (std::size_t e = 0; e < events.size(); ++e) {
            total[e] += coreTotal[e];
            out[prefix + ".core_" + cid.str() + ".event." + events[e]] =
                coreTotal[e];
        }
    }
    for (std::size_t e = 0; e < events.size(); ++e)
        out[prefix + ".event." + events[e]] = total[e];
    for (const auto &[k, m] : v.members) {
        if (k == "cores" || k == "events" || k == "name")
            continue;
        flatten(m, prefix + "." + k, out);
    }
}

void
flatten(const JsonValue &v, const std::string &prefix,
        std::map<std::string, double> &out)
{
    switch (v.kind) {
      case JsonValue::Kind::Number:
        out[prefix] = v.number;
        return;
      case JsonValue::Kind::String: {
        // Meta values are strings even when numeric; surface the
        // parseable ones so meta counters diff too.
        const char *start = v.text.c_str();
        char *end = nullptr;
        const double d = std::strtod(start, &end);
        if (end != start && *end == '\0')
            out[prefix] = d;
        return;
      }
      case JsonValue::Kind::Object: {
        if (isHistogram(v)) {
            for (const char *key : {"count", "sum", "min", "max"}) {
                if (const JsonValue *f = v.find(key);
                    f && f->kind == JsonValue::Kind::Number) {
                    out[prefix + "." + key] = f->number;
                }
            }
            return;
        }
        if (isTimelineSection(v)) {
            flattenTimeline(v, prefix, out);
            return;
        }
        for (const auto &[k, m] : v.members) {
            if (k == "schema" || k == "name")
                continue;
            // Run-shape knobs, not results: a 1-seed run diffed
            // against a 4-seed baseline should compare measurements,
            // not fail the gate on the depth setting itself.
            if (prefix == "meta" && (k == "seeds" || k == "jobs"))
                continue;
            flatten(m, prefix.empty() ? k : prefix + "." + k, out);
        }
        return;
      }
      case JsonValue::Kind::Array: {
        for (std::size_t i = 0; i < v.items.size(); ++i) {
            flatten(v.items[i],
                    prefix + "." + elementLabel(v.items[i], i), out);
        }
        return;
      }
      default:
        return;
    }
}

} // namespace

bool
flattenReportJson(std::string_view json,
                  std::map<std::string, double> &out, std::string *error)
{
    Parser p;
    p.in = json;
    JsonValue root;
    if (!p.parseValue(root)) {
        if (error)
            *error = p.error;
        return false;
    }
    if (root.kind != JsonValue::Kind::Object) {
        if (error)
            *error = "report root is not a JSON object";
        return false;
    }
    flatten(root, "", out);
    return true;
}

bool
diffReports(const std::vector<std::string> &base_jsons,
            const std::vector<std::string> &fresh_jsons,
            DiffResult &out, std::string *error)
{
    out = DiffResult{};
    if (base_jsons.empty() || fresh_jsons.empty()) {
        if (error)
            *error = "each side of the diff needs at least one report";
        return false;
    }

    struct Stat
    {
        double sum = 0, lo = 0, hi = 0;
        std::size_t n = 0;

        void
        add(double v)
        {
            if (n == 0) {
                lo = hi = v;
            } else {
                lo = std::min(lo, v);
                hi = std::max(hi, v);
            }
            sum += v;
            ++n;
        }

        double mean() const { return n ? sum / static_cast<double>(n) : 0; }
    };

    auto gather = [&](const std::vector<std::string> &docs,
                      std::map<std::string, Stat> &stats) {
        for (std::size_t i = 0; i < docs.size(); ++i) {
            std::map<std::string, double> flat;
            std::string err;
            if (!flattenReportJson(docs[i], flat, &err)) {
                if (error) {
                    *error = "report " + std::to_string(i) +
                             " failed to parse: " + err;
                }
                return false;
            }
            for (const auto &[k, v] : flat)
                stats[k].add(v);
        }
        return true;
    };

    std::map<std::string, Stat> base, fresh;
    if (!gather(base_jsons, base) || !gather(fresh_jsons, fresh))
        return false;

    for (const auto &[k, b] : base) {
        auto it = fresh.find(k);
        if (it == fresh.end()) {
            out.onlyBase.push_back(k);
            continue;
        }
        const Stat &f = it->second;
        if (b.mean() == f.mean() && b.lo == f.lo && b.hi == f.hi) {
            ++out.identical;
            continue;
        }
        DiffEntry e;
        e.key = k;
        e.base = b.mean();
        e.baseLo = b.lo;
        e.baseHi = b.hi;
        e.fresh = f.mean();
        e.freshLo = f.lo;
        e.freshHi = f.hi;
        e.delta = e.fresh - e.base;
        e.deltaPct = e.base != 0
                         ? 100.0 * e.delta / std::abs(e.base)
                         : (e.delta > 0 ? 1e9 : -1e9);
        e.significant = f.lo > b.hi || f.hi < b.lo;
        out.entries.push_back(std::move(e));
    }
    for (const auto &[k, f] : fresh) {
        if (!base.count(k))
            out.onlyFresh.push_back(k);
    }
    std::stable_sort(out.entries.begin(), out.entries.end(),
                     [](const DiffEntry &a, const DiffEntry &b) {
                         return std::abs(a.deltaPct) >
                                std::abs(b.deltaPct);
                     });
    return true;
}

std::size_t
DiffResult::exceeding(double gate_pct) const
{
    std::size_t n = 0;
    for (const auto &e : entries) {
        if (e.significant && std::abs(e.deltaPct) > gate_pct)
            ++n;
    }
    return n;
}

std::string
DiffResult::markdown(double gate_pct) const
{
    std::ostringstream os;
    auto fmt = [](double v) {
        std::ostringstream s;
        if (v == static_cast<double>(static_cast<long long>(v)) &&
            std::abs(v) < 1e15) {
            s << static_cast<long long>(v);
        } else {
            char buf[64];
            std::snprintf(buf, sizeof buf, "%.6g", v);
            s << buf;
        }
        return s.str();
    };
    os << "# profdiff\n\n";
    if (clean()) {
        os << "No deltas: " << identical
           << " metrics identical on both sides.\n";
        return os.str();
    }
    os << entries.size() << " differing metrics ("
       << exceeding(gate_pct) << " significant above the "
       << fmt(gate_pct) << "% gate), " << identical
       << " identical.\n\n";
    if (!entries.empty()) {
        os << "| metric | base | new | delta | delta % | base band |"
              " new band | gate |\n"
           << "|---|---|---|---|---|---|---|---|\n";
        for (const auto &e : entries) {
            const bool over =
                e.significant && std::abs(e.deltaPct) > gate_pct;
            os << "| " << e.key << " | " << fmt(e.base) << " | "
               << fmt(e.fresh) << " | " << fmt(e.delta) << " | "
               << fmt(e.deltaPct) << " | [" << fmt(e.baseLo) << ", "
               << fmt(e.baseHi) << "] | [" << fmt(e.freshLo) << ", "
               << fmt(e.freshHi) << "] | "
               << (over ? "**FAIL**"
                        : (e.significant ? "ok" : "within spread"))
               << " |\n";
        }
    }
    auto listKeys = [&](const char *title,
                        const std::vector<std::string> &keys) {
        if (keys.empty())
            return;
        os << "\n" << title << ":\n";
        for (const auto &k : keys)
            os << "- " << k << "\n";
    };
    listKeys("Only in base", onlyBase);
    listKeys("Only in new", onlyFresh);
    return os.str();
}

} // namespace limit::prof
