/**
 * @file
 * Timeline analysis: turn a finalized sim::TimelineRecorder into a
 * Report::TimelineSection, running online phase segmentation
 * (change-point detection on normalized event-rate vectors) over the
 * exact per-interval deltas.
 */

#ifndef LIMIT_PROF_TIMELINE_HH
#define LIMIT_PROF_TIMELINE_HH

#include <string>

#include "prof/report.hh"
#include "sim/timeline.hh"

namespace limit::prof {

/**
 * L1 distance (over per-cycle event rates) a slice must diverge from
 * its phase's running mean to open a new phase. The rates are O(1)
 * quantities — IPC, misses per cycle — so 0.15 means "the slice's
 * behaviour vector moved by 0.15 events/cycle in aggregate".
 */
inline constexpr double phaseChangeThreshold = 0.15;

/**
 * Build a timeline section named `name` from `recorder`, which must
 * be finalized (Machine run complete, recorder.finalize(maxTime)
 * called). Copies the slice matrix and segments phases:
 *
 *  - each slice's feature vector is the machine-summed per-cycle rate
 *    of every non-cycle event (an all-idle slice is the zero vector);
 *  - a slice whose L1 distance from the current phase's mean exceeds
 *    phaseChangeThreshold starts a new phase;
 *  - each phase reports its mean IPC, per-event mean rates (plus a
 *    synthetic "utilization" = busy cycles / (cores * interval)), and
 *    the dominant architectural event (highest-rate event excluding
 *    cycles and instructions; "idle" when nothing ran).
 *
 * Fully deterministic: inputs are exact integers, so identical runs
 * produce identical sections across execution modes and --jobs.
 */
Report::TimelineSection buildTimeline(const std::string &name,
                                      const sim::TimelineRecorder &recorder);

} // namespace limit::prof

#endif // LIMIT_PROF_TIMELINE_HH
