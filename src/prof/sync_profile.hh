/**
 * @file
 * Per-call-site synchronization attribution — the paper's MySQL lock
 * study as a reusable layer.
 *
 * A SyncProfile aggregates every lock acquisition by (lock address,
 * acquire call site): how often, how often contended (at least one
 * futex sleep), exact wait- and hold-cycle distributions, and which
 * thread each contended waiter was blocked behind (the owner at the
 * time the waiter arrived). The wait edges feed a longest-waiter
 * chain report: the heaviest path of "A waited on B waited on C"
 * by total blocked cycles.
 *
 * Feeding is host-side only (no guest work), so attaching a profile
 * does not perturb the simulation: tables produced with and without
 * one attached are bit-identical.
 */

#ifndef LIMIT_PROF_SYNC_PROFILE_HH
#define LIMIT_PROF_SYNC_PROFILE_HH

#include <cstdint>
#include <limits>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "sim/types.hh"
#include "stats/hdr_histogram.hh"

namespace limit::prof {

/** Interned acquire-call-site identifier (per SyncProfile). */
using CallSiteId = std::uint32_t;

/** Sentinel for "call site not annotated". */
inline constexpr CallSiteId noCallSite =
    std::numeric_limits<CallSiteId>::max();

/** Aggregates for one (lock, call site) pair. */
struct SyncSiteStats
{
    std::uint64_t acquisitions = 0;
    /** Acquisitions that slept in the kernel at least once. */
    std::uint64_t contended = 0;
    /** Total futexWait syscalls across all acquisitions. */
    std::uint64_t futexWaits = 0;
    /** Acquisition cost per visit (lock() entry to ownership). */
    stats::HdrHistogram waitCycles{5};
    /** Critical-section length per visit. */
    stats::HdrHistogram holdCycles{5};

    void merge(const SyncSiteStats &other);
};

/** Accumulated "waiter blocked behind owner" relation. */
struct WaitEdge
{
    std::uint64_t count = 0;
    std::uint64_t waitCycles = 0;
};

/** Synchronization profile for one run (mergeable across runs). */
class SyncProfile
{
  public:
    /** Key: lock address then call site, sorted for determinism. */
    using SiteKey = std::pair<sim::Addr, CallSiteId>;
    /** Key: (waiter tid, owner tid). */
    using EdgeKey = std::pair<sim::ThreadId, sim::ThreadId>;

    /** Intern a call-site label; same label returns the same id. */
    CallSiteId internSite(std::string_view name);

    /** Label of an interned site ("?" for noCallSite). */
    const std::string &siteName(CallSiteId site) const;

    /**
     * Record one completed acquisition.
     * @param owner_at_entry the lock holder observed when this waiter
     *        arrived (invalidThread when the lock was free); only
     *        contended acquisitions contribute a wait edge, and the
     *        edge's target is an approximation — the owner may hand
     *        off to another thread while the waiter sleeps.
     */
    void onAcquire(sim::Addr lock, std::string_view lock_name,
                   CallSiteId site, sim::ThreadId waiter,
                   sim::ThreadId owner_at_entry,
                   std::uint64_t wait_cycles, std::uint64_t futex_waits);

    /** Record the matching release (hold time attribution). */
    void onRelease(sim::Addr lock, CallSiteId site,
                   std::uint64_t hold_cycles);

    const std::map<SiteKey, SyncSiteStats> &sites() const
    {
        return sites_;
    }
    const std::map<sim::Addr, std::string> &lockNames() const
    {
        return lockNames_;
    }
    const std::map<EdgeKey, WaitEdge> &waitEdges() const
    {
        return edges_;
    }

    /** @name Totals over every (lock, site) @{ */
    std::uint64_t totalAcquisitions() const;
    std::uint64_t totalContended() const;
    std::uint64_t totalWaitCycles() const;
    std::uint64_t totalHoldCycles() const;
    /** @} */

    /**
     * Aggregates for one lock *class* (every lock sharing `lock_name`
     * summed over all sites) — the per-lock-class rows E5/E6 print.
     */
    SyncSiteStats classStats(std::string_view lock_name) const;

    /** Lock-class names present, sorted. */
    std::vector<std::string> classNames() const;

    /** The heaviest waiter chain by total blocked cycles. */
    struct Chain
    {
        /** tids[0] waited on tids[1] waited on ... */
        std::vector<sim::ThreadId> tids;
        std::uint64_t waitCycles = 0;
    };
    Chain longestWaiterChain() const;

    /**
     * Fold another profile in (parallel runner jobs). Call sites are
     * matched by label, locks by address — deterministic as long as
     * runs construct their locks in the same order.
     */
    void merge(const SyncProfile &other);

  private:
    std::vector<std::string> siteNames_;
    std::map<SiteKey, SyncSiteStats> sites_;
    std::map<sim::Addr, std::string> lockNames_;
    std::map<EdgeKey, WaitEdge> edges_;
};

} // namespace limit::prof

#endif // LIMIT_PROF_SYNC_PROFILE_HH
