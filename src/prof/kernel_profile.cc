#include "prof/kernel_profile.hh"

#include "os/kernel.hh"

namespace limit::prof {

void
SyscallStats::merge(const SyscallStats &other)
{
    calls += other.calls;
    latencyCycles.merge(other.latencyCycles);
}

void
ThreadKernelStats::merge(const ThreadKernelStats &other)
{
    if (name.empty())
        name = other.name;
    userCycles += other.userCycles;
    kernelCycles += other.kernelCycles;
    userInstructions += other.userInstructions;
    kernelInstructions += other.kernelInstructions;
    voluntarySwitches += other.voluntarySwitches;
    involuntarySwitches += other.involuntarySwitches;
    pmis += other.pmis;
    for (const auto &[nr, s] : other.syscalls)
        syscalls[nr].merge(s);
}

ThreadKernelStats &
KernelProfile::thread(sim::ThreadId tid)
{
    return threads_[tid];
}

std::uint64_t
KernelProfile::userCycles() const
{
    std::uint64_t n = 0;
    for (const auto &[t, s] : threads_)
        n += s.userCycles;
    return n;
}

std::uint64_t
KernelProfile::kernelCycles() const
{
    std::uint64_t n = 0;
    for (const auto &[t, s] : threads_)
        n += s.kernelCycles;
    return n;
}

std::uint64_t
KernelProfile::userInstructions() const
{
    std::uint64_t n = 0;
    for (const auto &[t, s] : threads_)
        n += s.userInstructions;
    return n;
}

std::uint64_t
KernelProfile::kernelInstructions() const
{
    std::uint64_t n = 0;
    for (const auto &[t, s] : threads_)
        n += s.kernelInstructions;
    return n;
}

std::uint64_t
KernelProfile::contextSwitches() const
{
    std::uint64_t n = 0;
    for (const auto &[t, s] : threads_)
        n += s.voluntarySwitches + s.involuntarySwitches;
    return n;
}

std::uint64_t
KernelProfile::pmis() const
{
    std::uint64_t n = 0;
    for (const auto &[t, s] : threads_)
        n += s.pmis;
    return n;
}

std::uint64_t
KernelProfile::syscallCount() const
{
    std::uint64_t n = 0;
    for (const auto &[t, s] : threads_) {
        for (const auto &[nr, sc] : s.syscalls)
            n += sc.calls;
    }
    return n;
}

void
KernelProfile::merge(const KernelProfile &other)
{
    for (const auto &[tid, s] : other.threads_)
        threads_[tid].merge(s);
}

KernelProfile
buildKernelProfile(os::Kernel &kernel,
                   const std::vector<trace::TraceRecord> &records)
{
    KernelProfile out;

    for (unsigned t = 0; t < kernel.numThreads(); ++t) {
        const os::Thread &th = kernel.thread(t);
        ThreadKernelStats &s = out.thread(th.ctx.tid());
        s.name = th.ctx.name();
        const sim::EventLedger &ledger = th.ctx.ledger();
        s.userCycles =
            ledger.count(sim::EventType::Cycles, sim::PrivMode::User);
        s.kernelCycles =
            ledger.count(sim::EventType::Cycles, sim::PrivMode::Kernel);
        s.userInstructions = ledger.count(sim::EventType::Instructions,
                                          sim::PrivMode::User);
        s.kernelInstructions = ledger.count(
            sim::EventType::Instructions, sim::PrivMode::Kernel);
        s.voluntarySwitches = th.voluntarySwitches;
        s.involuntarySwitches = th.involuntarySwitches;
    }

    // Pair syscall enter/exit per thread. Syscalls do not nest inside
    // one thread, so one open slot per tid suffices; a stale nr (the
    // matching record fell out of the ring) just discards the pair.
    std::map<sim::ThreadId, std::pair<std::uint64_t, sim::Tick>> open;
    for (const trace::TraceRecord &r : records) {
        switch (r.event) {
          case trace::TraceEvent::SyscallEnter:
            if (r.tid != sim::invalidThread)
                open[r.tid] = {r.a0, r.tick};
            break;
          case trace::TraceEvent::SyscallExit: {
            if (r.tid == sim::invalidThread)
                break;
            auto it = open.find(r.tid);
            if (it == open.end() || it->second.first != r.a0)
                break;
            SyscallStats &sc =
                out.thread(r.tid)
                    .syscalls[static_cast<std::uint32_t>(r.a0)];
            ++sc.calls;
            sc.latencyCycles.add(r.tick - it->second.second);
            open.erase(it);
            break;
          }
          case trace::TraceEvent::PmiDelivered:
            if (r.tid != sim::invalidThread)
                ++out.thread(r.tid).pmis;
            break;
          default:
            break;
        }
    }
    return out;
}

} // namespace limit::prof
