#include "prof/timeline.hh"

#include <cmath>
#include <cstdint>
#include <vector>

#include "base/logging.hh"

namespace limit::prof {

namespace {

using sim::EventType;
using sim::numEventTypes;

/** Machine-summed deltas of one slice. */
sim::EventDeltas
sliceSum(const Report::TimelineSection &t, std::size_t slice)
{
    sim::EventDeltas v{};
    for (const auto &lane : t.cores)
        v += lane[slice];
    return v;
}

/** Per-cycle rate vector of a slice (zero vector when fully idle). */
void
rateVector(const sim::EventDeltas &v, double (&r)[numEventTypes])
{
    const double cycles =
        static_cast<double>(v[EventType::Cycles]);
    for (unsigned e = 0; e < numEventTypes; ++e)
        r[e] = cycles <= 0 ? 0.0 : static_cast<double>(v.counts[e]) /
                                       cycles;
}

} // namespace

Report::TimelineSection
buildTimeline(const std::string &name,
              const sim::TimelineRecorder &recorder)
{
    fatal_if(!recorder.finalized(),
             "buildTimeline: recorder not finalized (call "
             "recorder.finalize(machine.maxTime()) after the run)");
    Report::TimelineSection t;
    t.name = name;
    t.intervalTicks = recorder.interval();
    t.cores.reserve(recorder.numLanes());
    for (const auto &lane : recorder.lanes())
        t.cores.push_back(lane.slices);

    const std::size_t slices = recorder.numSlices();
    if (slices == 0 || t.cores.empty())
        return t;

    // Online change-point scan. The phase accumulator keeps exact
    // integer sums; means are only formed when comparing/closing, so
    // the arithmetic is identical for identical inputs.
    sim::EventDeltas phaseSum{};
    std::size_t phaseFirst = 0;

    auto closePhase = [&](std::size_t end_exclusive) {
        Report::TimelineSection::Phase p;
        p.firstSlice = phaseFirst;
        p.numSlices = end_exclusive - phaseFirst;
        const double cycles =
            static_cast<double>(phaseSum[EventType::Cycles]);
        p.ipc = cycles <= 0
                    ? 0.0
                    : static_cast<double>(
                          phaseSum[EventType::Instructions]) /
                          cycles;
        double bestRate = 0;
        for (unsigned e = 0; e < numEventTypes; ++e) {
            const auto ev = static_cast<EventType>(e);
            const double rate =
                cycles <= 0 ? 0.0
                            : static_cast<double>(phaseSum.counts[e]) /
                                  cycles;
            if (ev != EventType::Cycles)
                p.rates[std::string(sim::eventName(ev))] = rate;
            if (ev != EventType::Cycles &&
                ev != EventType::Instructions && rate > bestRate) {
                bestRate = rate;
                p.dominant = std::string(sim::eventName(ev));
            }
        }
        p.rates["utilization"] =
            cycles /
            (static_cast<double>(t.cores.size()) *
             static_cast<double>(t.intervalTicks) *
             static_cast<double>(p.numSlices));
        if (p.dominant.empty())
            p.dominant = cycles <= 0 ? "idle" : "compute";
        t.phases.push_back(std::move(p));
        phaseFirst = end_exclusive;
        phaseSum = sim::EventDeltas{};
    };

    for (std::size_t s = 0; s < slices; ++s) {
        const sim::EventDeltas v = sliceSum(t, s);
        if (s > phaseFirst) {
            double r[numEventTypes], m[numEventTypes];
            rateVector(v, r);
            rateVector(phaseSum, m);
            double dist = 0;
            for (unsigned e = 0; e < numEventTypes; ++e) {
                if (static_cast<EventType>(e) != EventType::Cycles)
                    dist += std::abs(r[e] - m[e]);
            }
            if (dist > phaseChangeThreshold)
                closePhase(s);
        }
        phaseSum += v;
    }
    closePhase(slices);
    return t;
}

} // namespace limit::prof
