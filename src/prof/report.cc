#include "prof/report.hh"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "os/sysno.hh"

namespace limit::prof {

namespace {

/** Escape a string for a JSON string literal. */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
quoted(const std::string &s)
{
    return '"' + jsonEscape(s) + '"';
}

std::string
fmtDouble(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

double
pct(std::uint64_t part, std::uint64_t whole)
{
    return whole == 0
        ? 0.0
        : 100.0 * static_cast<double>(part) / static_cast<double>(whole);
}

} // namespace

void
Report::schema(const std::string &schema_tag)
{
    schema_ = schema_tag;
}

void
Report::meta(const std::string &key, const std::string &value)
{
    meta_[key] = value;
}

void
Report::meta(const std::string &key, std::uint64_t value)
{
    meta_[key] = std::to_string(value);
}

void
Report::meta(const std::string &key, double value)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", value);
    meta_[key] = buf;
}

Report::SyncSection &
Report::syncSection(const std::string &name)
{
    for (auto &s : sync_) {
        if (s.name == name)
            return s;
    }
    sync_.push_back({});
    sync_.back().name = name;
    return sync_.back();
}

Report::KernelSection &
Report::kernelSection(const std::string &name)
{
    for (auto &s : kernel_) {
        if (s.name == name)
            return s;
    }
    kernel_.push_back({});
    kernel_.back().name = name;
    return kernel_.back();
}

void
Report::addSync(const std::string &name, const SyncProfile &profile,
                std::uint64_t total_cycles, std::uint64_t work_items)
{
    SyncSection &s = syncSection(name);
    s.profile.merge(profile);
    s.totalCycles += total_cycles;
    s.workItems += work_items;
    ++s.runs;
}

void
Report::addKernel(const std::string &name, const KernelProfile &profile,
                  std::uint64_t pec_user_instructions,
                  std::uint64_t pec_kernel_instructions)
{
    KernelSection &s = kernelSection(name);
    s.profile.merge(profile);
    s.pecUserInstructions += pec_user_instructions;
    s.pecKernelInstructions += pec_kernel_instructions;
    ++s.runs;
}

void
Report::addHistogram(const std::string &name,
                     const stats::HdrHistogram &histogram)
{
    histograms_.emplace_back(name, histogram);
}

void
Report::addOpenRegions(const pec::RegionProfiler &profiler,
                       const sim::RegionTable &regions)
{
    for (const auto &v : profiler.openRegions())
        openRegions_.push_back({regions.name(v.region), v.tid,
                                v.enterTick});
}

void
Report::addSensitivity(const SensitivitySection &section)
{
    sensitivity_.push_back(section);
}

void
Report::addTimeline(const TimelineSection &section)
{
    timeline_.push_back(section);
}

const Report::SyncSection *
Report::sync(const std::string &name) const
{
    for (const auto &s : sync_) {
        if (s.name == name)
            return &s;
    }
    return nullptr;
}

const Report::KernelSection *
Report::kernel(const std::string &name) const
{
    for (const auto &s : kernel_) {
        if (s.name == name)
            return &s;
    }
    return nullptr;
}

stats::Table
Report::syncSummaryTable(const std::string &title) const
{
    stats::Table t(title);
    t.header({"app", "work items", "total Mcycles", "% cyc acquiring",
              "% cyc in crit sec", "acquisitions"});
    for (const auto &s : sync_) {
        const unsigned runs = std::max(1u, s.runs);
        t.beginRow()
            .cell(s.name)
            .cell(s.workItems / runs)
            .cell(static_cast<double>(s.totalCycles) / runs / 1e6, 1)
            .cell(pct(s.profile.totalWaitCycles(), s.totalCycles), 2)
            .cell(pct(s.profile.totalHoldCycles(), s.totalCycles), 2)
            .cell(s.profile.totalAcquisitions() / runs);
    }
    return t;
}

stats::Table
Report::syncDetailTable(const std::string &title) const
{
    stats::Table t(title);
    t.header({"app", "lock", "acquire site", "acq", "contended",
              "mean acq cyc", "mean held cyc", "p95 held cyc"});
    for (const auto &s : sync_) {
        // Group (lock addr, site) pairs into (lock class, site) rows:
        // striped locks share a class name and belong in one row.
        std::map<std::pair<std::string, std::string>, SyncSiteStats>
            by_class;
        for (const auto &[key, st] : s.profile.sites()) {
            auto name_it = s.profile.lockNames().find(key.first);
            const std::string lock_class = name_it ==
                    s.profile.lockNames().end()
                ? "?"
                : name_it->second;
            by_class[{lock_class, s.profile.siteName(key.second)}]
                .merge(st);
        }
        for (const auto &[key, st] : by_class) {
            const double acq_mean = st.acquisitions == 0
                ? 0.0
                : static_cast<double>(st.waitCycles.totalValue()) /
                    static_cast<double>(st.acquisitions);
            t.beginRow()
                .cell(s.name)
                .cell(key.first)
                .cell(key.second)
                .cell(st.acquisitions)
                .cell(st.contended)
                .cell(acq_mean, 0)
                .cell(st.holdCycles.mean(), 0)
                .cell(st.holdCycles.quantile(0.95));
        }
    }
    return t;
}

stats::Table
Report::kernelTable(const std::string &title) const
{
    stats::Table t(title);
    t.header({"workload", "user Minstr", "kernel Minstr", "kernel %",
              "counter-vs-ledger drift %"});
    for (const auto &s : kernel_) {
        const unsigned runs = std::max(1u, s.runs);
        const std::uint64_t user = s.profile.userInstructions();
        const std::uint64_t kern = s.profile.kernelInstructions();
        const std::uint64_t pec =
            s.pecUserInstructions + s.pecKernelInstructions;
        const double drift = user + kern == 0
            ? 0.0
            : 100.0 * (static_cast<double>(pec) -
                       static_cast<double>(user + kern)) /
                static_cast<double>(user + kern);
        t.beginRow()
            .cell(s.name)
            .cell(static_cast<double>(user) / runs / 1e6, 2)
            .cell(static_cast<double>(kern) / runs / 1e6, 2)
            .cell(pct(kern, user + kern), 1)
            .cell(drift, 2);
    }
    return t;
}

stats::Table
Report::sensitivityTable(const std::string &title) const
{
    stats::Table t(title);
    t.header({"scenario", "rank", "axis", "param", "work", "Δwork %",
              "elasticity", "score"});
    for (const auto &s : sensitivity_) {
        unsigned rank = 0;
        for (const auto &a : s.axes) {
            ++rank;
            for (const auto &l : a.levels) {
                t.beginRow()
                    .cell(s.name)
                    .cell(rank)
                    .cell(a.axis + " (" + a.unit + ")")
                    .cell(l.param, 0)
                    .cell(l.work, 0)
                    .cell(l.workRelPct, 2)
                    .cell(l.elasticity, 3)
                    .cell(a.score, 2);
            }
        }
    }
    return t;
}

std::string
Report::sensitivityMarkdown() const
{
    std::ostringstream os;
    os << "| scenario | rank | axis | base | most sensitive level | "
          "Δwork % | score |\n|---|---|---|---|---|---|---|\n";
    for (const auto &s : sensitivity_) {
        unsigned rank = 0;
        for (const auto &a : s.axes) {
            ++rank;
            // Report the level that realizes the ranking score.
            const SensitivitySection::Level *best = nullptr;
            for (const auto &l : a.levels) {
                if (!best ||
                    std::abs(l.workRelPct) > std::abs(best->workRelPct))
                    best = &l;
            }
            os << "| " << s.name << " | " << rank << " | " << a.axis
               << " (" << a.unit << ") | " << fmtDouble(a.baseParam, 0)
               << " | " << (best ? fmtDouble(best->param, 0) : "-")
               << " | " << (best ? fmtDouble(best->workRelPct, 2) : "-")
               << " | " << fmtDouble(a.score, 2) << " |\n";
        }
    }
    return os.str();
}

std::string
Report::timelineAscii() const
{
    // Pure-ASCII intensity ramp, darkest last.
    static const char ramp[] = " .:-=+*#%@";
    constexpr unsigned rampMax = sizeof(ramp) - 2;
    constexpr std::size_t width = 72;
    std::ostringstream os;
    for (const auto &t : timeline_) {
        const std::size_t slices =
            t.cores.empty() ? 0 : t.cores.front().size();
        os << "timeline '" << t.name << "': interval "
           << t.intervalTicks << " ticks, " << slices << " slices, "
           << t.cores.size() << " cores\n";
        if (slices == 0)
            continue;
        // Resample to at most `width` columns: each column is the mean
        // per-tick instruction rate of its slice group.
        const std::size_t group = (slices + width - 1) / width;
        const std::size_t cols = (slices + group - 1) / group;
        auto colRate = [&](const std::vector<sim::EventDeltas> &lane,
                           std::size_t col, sim::EventType ev) {
            const std::size_t lo = col * group;
            const std::size_t hi = std::min(slices, lo + group);
            std::uint64_t n = 0;
            for (std::size_t s = lo; s < hi; ++s)
                n += lane[s][ev];
            return static_cast<double>(n) /
                   (static_cast<double>(hi - lo) *
                    static_cast<double>(t.intervalTicks));
        };
        // Heatmap rows: per-core instruction rate, normalized to the
        // busiest column in the section so relative phases pop out.
        double peak = 0;
        for (const auto &lane : t.cores) {
            for (std::size_t c = 0; c < cols; ++c) {
                peak = std::max(
                    peak,
                    colRate(lane, c, sim::EventType::Instructions));
            }
        }
        for (std::size_t core = 0; core < t.cores.size(); ++core) {
            os << "  core " << core << " |";
            for (std::size_t c = 0; c < cols; ++c) {
                const double r = colRate(
                    t.cores[core], c, sim::EventType::Instructions);
                const unsigned g =
                    peak <= 0 ? 0
                              : static_cast<unsigned>(
                                    r / peak * rampMax + 0.5);
                os << ramp[std::min(g, rampMax)];
            }
            os << "|\n";
        }
        // Machine-wide IPC sparkline (instructions / cycles per column).
        os << "  ipc    |";
        for (std::size_t c = 0; c < cols; ++c) {
            double instr = 0, cyc = 0;
            for (const auto &lane : t.cores) {
                instr += colRate(lane, c, sim::EventType::Instructions);
                cyc += colRate(lane, c, sim::EventType::Cycles);
            }
            const double ipc = cyc <= 0 ? 0 : instr / cyc;
            const unsigned g = static_cast<unsigned>(
                std::min(1.0, ipc) * rampMax + 0.5);
            os << ramp[std::min(g, rampMax)];
        }
        os << "|\n";
        for (std::size_t i = 0; i < t.phases.size(); ++i) {
            const auto &p = t.phases[i];
            os << "  phase " << i << ": slices [" << p.firstSlice
               << ".." << (p.firstSlice + p.numSlices - 1) << "] ipc "
               << fmtDouble(p.ipc, 3) << " dominant " << p.dominant
               << "\n";
        }
    }
    return os.str();
}

std::string
Report::syncSummaryMarkdown() const
{
    std::ostringstream os;
    os << "| app | % cycles acquiring | % cycles in crit. sec. | "
          "acquisitions |\n|---|---|---|---|\n";
    for (const auto &s : sync_) {
        const unsigned runs = std::max(1u, s.runs);
        os << "| " << s.name << " | "
           << fmtDouble(pct(s.profile.totalWaitCycles(), s.totalCycles),
                        2)
           << " | "
           << fmtDouble(pct(s.profile.totalHoldCycles(), s.totalCycles),
                        2)
           << " | " << s.profile.totalAcquisitions() / runs << " |\n";
    }
    return os.str();
}

std::string
Report::kernelMarkdown() const
{
    std::vector<const KernelSection *> rows;
    rows.reserve(kernel_.size());
    for (const auto &s : kernel_)
        rows.push_back(&s);
    std::stable_sort(rows.begin(), rows.end(),
                     [](const KernelSection *a, const KernelSection *b) {
                         return pct(a->profile.kernelInstructions(),
                                    a->profile.userInstructions() +
                                        a->profile.kernelInstructions()) >
                             pct(b->profile.kernelInstructions(),
                                 b->profile.userInstructions() +
                                     b->profile.kernelInstructions());
                     });

    std::ostringstream os;
    os << "| workload | kernel instruction % | counter-vs-ledger drift "
          "|\n|---|---|---|\n";
    for (const KernelSection *s : rows) {
        const std::uint64_t user = s->profile.userInstructions();
        const std::uint64_t kern = s->profile.kernelInstructions();
        const std::uint64_t pec =
            s->pecUserInstructions + s->pecKernelInstructions;
        const double drift = user + kern == 0
            ? 0.0
            : 100.0 * (static_cast<double>(pec) -
                       static_cast<double>(user + kern)) /
                static_cast<double>(user + kern);
        os << "| " << s->name << " | " << fmtDouble(pct(kern, user + kern), 1)
           << " % | " << fmtDouble(drift, 1) << " % |\n";
    }
    return os.str();
}

std::string
Report::toJson() const
{
    std::ostringstream os;
    os << "{\n  \"schema\": " << quoted(schema_) << ",\n  \"meta\": {";
    bool first = true;
    for (const auto &[k, v] : meta_) {
        os << (first ? "" : ",") << "\n    " << quoted(k) << ": "
           << quoted(v);
        first = false;
    }
    os << (meta_.empty() ? "" : "\n  ") << "},\n  \"sync\": [";

    first = true;
    for (const auto &s : sync_) {
        os << (first ? "" : ",") << "\n    {\n      \"name\": "
           << quoted(s.name) << ",\n      \"runs\": " << s.runs
           << ",\n      \"total_cycles\": " << s.totalCycles
           << ",\n      \"work_items\": " << s.workItems
           << ",\n      \"acquisitions\": "
           << s.profile.totalAcquisitions()
           << ",\n      \"contended\": " << s.profile.totalContended()
           << ",\n      \"locks\": [";
        // sites() is sorted by (addr, site); group runs of one addr.
        bool first_lock = true;
        auto it = s.profile.sites().begin();
        while (it != s.profile.sites().end()) {
            const sim::Addr addr = it->first.first;
            auto name_it = s.profile.lockNames().find(addr);
            os << (first_lock ? "" : ",") << "\n        {\"addr\": "
               << addr << ", \"class\": "
               << quoted(name_it == s.profile.lockNames().end()
                             ? std::string("?")
                             : name_it->second)
               << ", \"sites\": [";
            bool first_site = true;
            for (; it != s.profile.sites().end() &&
                   it->first.first == addr;
                 ++it) {
                const SyncSiteStats &st = it->second;
                os << (first_site ? "" : ",") << "\n          {\"site\": "
                   << quoted(s.profile.siteName(it->first.second))
                   << ", \"acquisitions\": " << st.acquisitions
                   << ", \"contended\": " << st.contended
                   << ", \"futex_waits\": " << st.futexWaits
                   << ",\n           \"wait_cycles\": "
                   << st.waitCycles.toJson()
                   << ",\n           \"hold_cycles\": "
                   << st.holdCycles.toJson() << "}";
                first_site = false;
            }
            os << "\n        ]}";
            first_lock = false;
        }
        os << "\n      ],\n      \"wait_edges\": [";
        bool first_edge = true;
        for (const auto &[key, e] : s.profile.waitEdges()) {
            os << (first_edge ? "" : ",") << "\n        {\"waiter\": "
               << key.first << ", \"owner\": " << key.second
               << ", \"count\": " << e.count << ", \"wait_cycles\": "
               << e.waitCycles << "}";
            first_edge = false;
        }
        os << "\n      ],\n      \"longest_waiter_chain\": ";
        const SyncProfile::Chain chain = s.profile.longestWaiterChain();
        os << "{\"tids\": [";
        for (std::size_t i = 0; i < chain.tids.size(); ++i)
            os << (i ? ", " : "") << chain.tids[i];
        os << "], \"wait_cycles\": " << chain.waitCycles << "}\n    }";
        first = false;
    }
    os << (sync_.empty() ? "" : "\n  ") << "],\n  \"kernel\": [";

    first = true;
    for (const auto &s : kernel_) {
        os << (first ? "" : ",") << "\n    {\n      \"name\": "
           << quoted(s.name) << ",\n      \"runs\": " << s.runs
           << ",\n      \"user_instructions\": "
           << s.profile.userInstructions()
           << ",\n      \"kernel_instructions\": "
           << s.profile.kernelInstructions()
           << ",\n      \"user_cycles\": " << s.profile.userCycles()
           << ",\n      \"kernel_cycles\": " << s.profile.kernelCycles()
           << ",\n      \"pec_user_instructions\": "
           << s.pecUserInstructions
           << ",\n      \"pec_kernel_instructions\": "
           << s.pecKernelInstructions << ",\n      \"threads\": [";
        bool first_thread = true;
        for (const auto &[tid, th] : s.profile.threads()) {
            os << (first_thread ? "" : ",") << "\n        {\"tid\": "
               << tid << ", \"name\": " << quoted(th.name)
               << ", \"user_cycles\": " << th.userCycles
               << ", \"kernel_cycles\": " << th.kernelCycles
               << ",\n         \"user_instructions\": "
               << th.userInstructions << ", \"kernel_instructions\": "
               << th.kernelInstructions
               << ",\n         \"voluntary_switches\": "
               << th.voluntarySwitches << ", \"involuntary_switches\": "
               << th.involuntarySwitches << ", \"pmis\": " << th.pmis
               << ",\n         \"syscalls\": [";
            bool first_sys = true;
            for (const auto &[nr, sc] : th.syscalls) {
                const char *nm = os::sysName(nr);
                os << (first_sys ? "" : ",") << "\n          {\"nr\": "
                   << nr << ", \"name\": "
                   << quoted(nm ? nm : "?") << ", \"calls\": "
                   << sc.calls << ",\n           \"latency_cycles\": "
                   << sc.latencyCycles.toJson() << "}";
                first_sys = false;
            }
            os << (th.syscalls.empty() ? "" : "\n         ") << "]}";
            first_thread = false;
        }
        os << "\n      ]\n    }";
        first = false;
    }
    os << (kernel_.empty() ? "" : "\n  ") << "],\n  \"sensitivity\": [";

    first = true;
    for (const auto &s : sensitivity_) {
        os << (first ? "" : ",") << "\n    {\n      \"name\": "
           << quoted(s.name) << ",\n      \"work_metric\": "
           << quoted(s.workMetric) << ",\n      \"baseline_work\": "
           << fmtDouble(s.baselineWork, 6)
           << ",\n      \"baseline_metrics\": {";
        bool first_metric = true;
        for (const auto &[k, v] : s.baselineMetrics) {
            os << (first_metric ? "" : ", ") << quoted(k) << ": "
               << fmtDouble(v, 6);
            first_metric = false;
        }
        os << "},\n      \"axes\": [";
        bool first_axis = true;
        for (const auto &a : s.axes) {
            os << (first_axis ? "" : ",") << "\n        {\"axis\": "
               << quoted(a.axis) << ", \"unit\": " << quoted(a.unit)
               << ", \"base_param\": " << fmtDouble(a.baseParam, 6)
               << ", \"score\": " << fmtDouble(a.score, 6)
               << ",\n         \"levels\": [";
            bool first_level = true;
            for (const auto &l : a.levels) {
                os << (first_level ? "" : ",")
                   << "\n          {\"param\": " << fmtDouble(l.param, 6)
                   << ", \"work\": " << fmtDouble(l.work, 6)
                   << ", \"work_rel_pct\": "
                   << fmtDouble(l.workRelPct, 6)
                   << ", \"elasticity\": "
                   << fmtDouble(l.elasticity, 6)
                   << ",\n           \"metrics\": {";
                first_metric = true;
                for (const auto &[k, v] : l.metrics) {
                    os << (first_metric ? "" : ", ") << quoted(k)
                       << ": " << fmtDouble(v, 6);
                    first_metric = false;
                }
                os << "}}";
                first_level = false;
            }
            os << (a.levels.empty() ? "" : "\n         ") << "]}";
            first_axis = false;
        }
        os << (s.axes.empty() ? "" : "\n      ") << "]\n    }";
        first = false;
    }
    os << (sensitivity_.empty() ? "" : "\n  ")
       << "],\n  \"timeline\": [";

    first = true;
    for (const auto &t : timeline_) {
        const std::uint64_t slices =
            t.cores.empty() ? 0 : t.cores.front().size();
        os << (first ? "" : ",") << "\n    {\n      \"name\": "
           << quoted(t.name) << ",\n      \"interval_ticks\": "
           << t.intervalTicks << ",\n      \"num_cores\": "
           << t.cores.size() << ",\n      \"num_slices\": " << slices
           << ",\n      \"events\": [";
        for (unsigned e = 0; e < sim::numEventTypes; ++e) {
            os << (e ? ", " : "")
               << quoted(std::string(sim::eventName(
                      static_cast<sim::EventType>(e))));
        }
        os << "],\n      \"cores\": [";
        bool first_core = true;
        for (std::size_t c = 0; c < t.cores.size(); ++c) {
            os << (first_core ? "" : ",") << "\n        {\"core\": "
               << c << ", \"slices\": [";
            bool first_slice = true;
            for (const auto &d : t.cores[c]) {
                os << (first_slice ? "" : ",") << "\n          [";
                for (unsigned e = 0; e < sim::numEventTypes; ++e) {
                    os << (e ? ", " : "")
                       << d.counts[e];
                }
                os << "]";
                first_slice = false;
            }
            os << (t.cores[c].empty() ? "" : "\n        ") << "]}";
            first_core = false;
        }
        os << (t.cores.empty() ? "" : "\n      ")
           << "],\n      \"phases\": [";
        bool first_phase = true;
        for (const auto &p : t.phases) {
            os << (first_phase ? "" : ",")
               << "\n        {\"first_slice\": " << p.firstSlice
               << ", \"slices\": " << p.numSlices << ", \"ipc\": "
               << fmtDouble(p.ipc, 6) << ", \"dominant\": "
               << quoted(p.dominant) << ",\n         \"rates\": {";
            bool first_rate = true;
            for (const auto &[k, v] : p.rates) {
                os << (first_rate ? "" : ", ") << quoted(k) << ": "
                   << fmtDouble(v, 6);
                first_rate = false;
            }
            os << "}}";
            first_phase = false;
        }
        os << (t.phases.empty() ? "" : "\n      ") << "]\n    }";
        first = false;
    }
    os << (timeline_.empty() ? "" : "\n  ")
       << "],\n  \"histograms\": {";

    first = true;
    for (const auto &[name, h] : histograms_) {
        os << (first ? "" : ",") << "\n    " << quoted(name) << ": "
           << h.toJson();
        first = false;
    }
    os << (histograms_.empty() ? "" : "\n  ")
       << "},\n  \"open_regions\": [";
    first = true;
    for (const auto &o : openRegions_) {
        os << (first ? "" : ",") << "\n    {\"region\": "
           << quoted(o.region) << ", \"tid\": " << o.tid
           << ", \"enter_tick\": " << o.enterTick << "}";
        first = false;
    }
    os << (openRegions_.empty() ? "" : "\n  ") << "]\n}\n";
    return os.str();
}

bool
Report::writeJson(const std::string &path) const
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        return false;
    const std::string body = toJson();
    const bool ok =
        std::fwrite(body.data(), 1, body.size(), f) == body.size();
    return std::fclose(f) == 0 && ok;
}

} // namespace limit::prof
