#include "sim/pmu.hh"

#include "base/logging.hh"

namespace limit::sim {

Pmu::Pmu(unsigned num_counters, const PmuFeatures &features)
    : numCounters_(num_counters), features_(features)
{
    fatal_if(num_counters == 0 || num_counters > maxPmuCounters,
             "PMU supports 1..", maxPmuCounters, " counters, got ",
             num_counters);
    fatal_if(features.counterWidth < 8 || features.counterWidth > 64,
             "PMU counter width must be in [8, 64], got ",
             features.counterWidth);
}

void
Pmu::configure(unsigned idx, const CounterConfig &cfg)
{
    panic_if(idx >= numCounters_, "PMU counter index ", idx,
             " out of range");
    configs_[idx] = cfg;
    values_[idx] = 0;
    rebuildActive();
}

void
Pmu::rebuildActive()
{
    for (unsigned m = 0; m < 2; ++m) {
        activeCount_[m] = 0;
        for (unsigned i = 0; i < numCounters_; ++i) {
            const CounterConfig &cfg = configs_[i];
            if (!cfg.enabled)
                continue;
            if (m == 0 ? !cfg.countUser : !cfg.countKernel)
                continue;
            active_[m][activeCount_[m]++] = {
                static_cast<std::uint8_t>(i),
                static_cast<std::uint8_t>(cfg.event)};
        }
    }
}

const CounterConfig &
Pmu::config(unsigned idx) const
{
    panic_if(idx >= numCounters_, "PMU counter index ", idx,
             " out of range");
    return configs_[idx];
}

void
Pmu::write(unsigned idx, std::uint64_t value)
{
    panic_if(idx >= numCounters_, "PMU counter index ", idx,
             " out of range");
    values_[idx] = value & valueMask();
}

std::uint64_t
Pmu::read(unsigned idx) const
{
    panic_if(idx >= numCounters_, "PMU counter index ", idx,
             " out of range");
    return values_[idx];
}

std::uint64_t
Pmu::readAndClear(unsigned idx)
{
    panic_if(idx >= numCounters_, "PMU counter index ", idx,
             " out of range");
    panic_if(!features_.destructiveRead,
             "readAndClear without the destructiveRead feature");
    const std::uint64_t v = values_[idx];
    values_[idx] = 0;
    return v;
}

void
Pmu::setEnabled(unsigned idx, bool enabled)
{
    panic_if(idx >= numCounters_, "PMU counter index ", idx,
             " out of range");
    configs_[idx].enabled = enabled;
    rebuildActive();
}

OverflowSet
Pmu::apply(PrivMode mode, const EventDeltas &deltas)
{
    WrapEvent ev[maxPmuCounters];
    const unsigned n = applyFast(mode, deltas, ev);
    OverflowSet out;
    for (unsigned k = 0; k < n; ++k) {
        out.wraps[ev[k].counter] = ev[k].wraps;
        out.any = true;
    }
    return out;
}

} // namespace limit::sim
