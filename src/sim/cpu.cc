#include "sim/cpu.hh"

#include <bit>
#include <cmath>
#include <cstddef>

#include "fault/controller.hh"
#include "sim/kernel_if.hh"
#include "sim/machine.hh"
#include "sim/memory_if.hh"
#include "trace/trace.hh"

namespace limit::sim {

Cpu::Cpu(CoreId id, Machine &machine, const CostModel &costs,
         unsigned pmu_counters, const PmuFeatures &pmu_features)
    : id_(id), machine_(machine), costs_(costs),
      pmu_(pmu_counters, pmu_features)
{
}

void
Cpu::setCurrent(GuestContext *ctx)
{
    current_ = ctx;
    if (ctx) {
        ctx->lastCore = id_;
        // Superblock stats are per core (leased cores must never
        // write a shared block); re-bind a migrating thread's
        // detector to this core's stats.
        if (ctx->sbState != nullptr)
            ctx->sbState->setStats(&sbStats_);
    }
}

void
Cpu::syncTimeAtLeast(Tick t)
{
    if (t > now_)
        now_ = t;
}

void
Cpu::step()
{
    panic_if(!current_, "Cpu::step on an idle core");
    GuestContext &ctx = *current_;
    ctx.hasOp = false;
    ctx.resumeHandle().resume();

    if (!ctx.hasOp) {
        panic_if(!ctx.finished(),
                 "guest thread '", ctx.name(),
                 "' suspended without issuing an op");
        machine_.kernel()->threadExited(*this, ctx);
        drainOverflows();
        return;
    }
    executeOp(ctx);
}

void
Cpu::setSuperblocksEnabled(bool on)
{
    sbEnabled_ = on;
    if (on)
        sbPeek_ = machine_.memory()->fastPeekView(id_);
}

void
Cpu::setTimelineLane(TimelineLane *lane, Tick interval_ticks)
{
    tlLane_ = lane;
    if (lane == nullptr) {
        tlInterval_ = 0;
        tlNextBoundary_ = maxTick;
        return;
    }
    fatal_if(interval_ticks == 0,
             "Cpu::setTimelineLane: interval must be > 0");
    tlInterval_ = interval_ticks;
    lane->curIndex = now_ / interval_ticks;
    tlNextBoundary_ = (lane->curIndex + 1) * interval_ticks;
}

void
Cpu::tlRoll()
{
    tlLane_->flush();
    tlLane_->curIndex = now_ / tlInterval_;
    tlNextBoundary_ = (tlLane_->curIndex + 1) * tlInterval_;
}

Cpu::BatchResult
Cpu::runUntil(Tick bound, Tick poll_at, Tick hard_limit,
              unsigned max_ops)
{
    BatchResult r;
    batchBound_ = bound;
    batchPollAt_ = poll_at;
    batchHardLimit_ = hard_limit;
    batchOpsLeft_ = max_ops;
    while (current_) {
        panic_if(now_ > hard_limit,
                 "runaway simulation: core ", id_,
                 " passed the hard limit at tick ", now_);
        GuestContext &ctx = *current_;
        ctx.hasOp = false;
        ctx.opConsumedInline = false;
        // Let the guest's co_await points feed core-local ops straight
        // into tryInlineOp while the budget lasts; the resume comes
        // back only for an op that needs a scheduler round (published
        // in ctx.op), a deferred epilogue, an ended batch, or exit.
        ctx.inlineCpu = this;
        ctx.resumeHandle().resume();
        ctx.inlineCpu = nullptr;

        if (!ctx.hasOp) {
            if (ctx.finished()) {
                if (ctx.sbr.cur != nullptr) {
                    // The loop's last iterations replayed and then the
                    // guest ran off the end: commit before the kernel
                    // reads the exit ledger.
                    sbCommitReplay(ctx, /*partial=*/true);
                }
                if (batchOpsLeft_ > 0)
                    --batchOpsLeft_; // the exiting resume was a round
                machine_.kernel()->threadExited(*this, ctx);
                drainOverflows();
                r.interacted = true;
                break;
            }
            panic_if(!ctx.opConsumedInline,
                     "guest thread '", ctx.name(),
                     "' suspended without issuing an op");
            ctx.opConsumedInline = false;
            if (epiloguePending_) {
                // tryInlineOp's last op queued a PMI or crossed the
                // quantum; replay executeOp's epilogue now that the
                // coroutine is suspended (it may context-switch).
                epiloguePending_ = false;
                kernelRound_ = false;
                drainOverflows();
                if (current_ && now_ >= quantumEnd) {
                    kernelRound_ = true;
                    machine_.kernel()->timerTick(*this);
                    drainOverflows();
                }
                r.interacted = kernelRound_;
            }
            break; // horizon / poll deadline / budget reached
        }

        --batchOpsLeft_;
        const bool local = opIsCoreLocal(ctx.op.kind);
        kernelRound_ = false;
        executeOp(ctx);
        if (ctx.sbState != nullptr) {
            // Anything that needed a scheduler round (syscall, atomic,
            // PMC read, refused-inline op) breaks straight-line code.
            ctx.sbState->noteDiscontinuity();
        }
        if (kernelRound_) {
            // Timer tick, PMI, or syscall re-entered the kernel: the
            // schedule (busy set, other cores' clocks, poll hint) may
            // have changed under us.
            r.interacted = true;
            break;
        }
        if (!local)
            break; // conservative: published cross-core-visible state
        // The next op may only run here if this core would still win
        // the global earliest-core pick and no poll is due.
        if (now_ >= bound || now_ >= poll_at || batchOpsLeft_ == 0)
            break;
    }
    r.ops = max_ops - batchOpsLeft_;
    batchOpsLeft_ = 0;
    return r;
}

Cpu::LeaseResult
Cpu::runLeased(Tick hard_limit, unsigned max_ops)
{
    // The runUntil loop with both horizons at infinity: a leased core
    // has no serial peer ordering to respect *as long as* every op
    // commutes with the rest of the machine — which tryInlineOp
    // enforces in lease mode by refusing (parking) anything that
    // would touch the kernel, shared memory levels, or another core.
    // Runs on a worker thread; the park publication's release store
    // (Machine::runSharded) fences everything written here.
    batchBound_ = maxTick;
    batchPollAt_ = maxTick;
    batchHardLimit_ = hard_limit;
    batchOpsLeft_ = max_ops;
    leaseMode_ = true;
    LeaseResult r;
    while (true) {
        panic_if(now_ > hard_limit,
                 "runaway simulation: core ", id_,
                 " passed the hard limit at tick ", now_);
        GuestContext &ctx = *current_;
        ctx.hasOp = false;
        ctx.opConsumedInline = false;
        ctx.inlineCpu = this;
        ctx.resumeHandle().resume();
        ctx.inlineCpu = nullptr;

        if (!ctx.hasOp) {
            if (ctx.finished()) {
                if (ctx.sbr.cur != nullptr)
                    sbCommitReplay(ctx, /*partial=*/true);
                if (batchOpsLeft_ > 0)
                    --batchOpsLeft_; // the exiting resume was a round
                // threadExited is a kernel action: park and let the
                // coordinator retire the thread in global order.
                parkKey_ = now_;
                r.park = LeasePark::Exit;
                break;
            }
            panic_if(!ctx.opConsumedInline,
                     "guest thread '", ctx.name(),
                     "' suspended without issuing an op");
            ctx.opConsumedInline = false;
            if (epiloguePending_) {
                // The last op queued a PMI or crossed the quantum
                // end. The oracle runs op + epilogue as one atomic
                // round, so the park key is the pre-op clock that
                // tryInlineOp captured in parkKey_.
                epiloguePending_ = false;
                r.park = LeasePark::Epilogue;
                break;
            }
            // Op budget spent: chunk boundary, core stays leased.
            r.park = LeasePark::Chunk;
            break;
        }
        // A non-commuting op was published unexecuted (syscall,
        // atomic, PMC read, slow memory access): the coordinator must
        // run it as a classic round at the current clock.
        parkKey_ = now_;
        r.park = LeasePark::PendingOp;
        break;
    }
    leaseMode_ = false;
    r.ops = max_ops - batchOpsLeft_;
    leasedOps_ += r.ops;
    batchOpsLeft_ = 0;
    return r;
}

void
Cpu::serialCatchUp(LeasePark reason)
{
    // Coordinator side: the core was just reclaimed at its park key's
    // global-order turn; complete the withheld action exactly as the
    // reference loop would have.
    switch (reason) {
      case LeasePark::PendingOp: {
        panic_if(current_ == nullptr || !current_->hasOp,
                 "pending-op catch-up without a published op");
        GuestContext &ctx = *current_;
        // The coroutine is suspended *holding* this op; executing it
        // here mirrors runUntil's classic round (the next resume will
        // hand the result back).
        kernelRound_ = false;
        executeOp(ctx);
        if (ctx.sbState != nullptr)
            ctx.sbState->noteDiscontinuity();
        break;
      }
      case LeasePark::Epilogue: {
        // Mirror runUntil's deferred-epilogue block.
        kernelRound_ = false;
        drainOverflows();
        if (current_ && now_ >= quantumEnd) {
            kernelRound_ = true;
            machine_.kernel()->timerTick(*this);
            drainOverflows();
        }
        break;
      }
      case LeasePark::Exit: {
        panic_if(current_ == nullptr,
                 "exit catch-up on an idle core");
        machine_.kernel()->threadExited(*this, *current_);
        drainOverflows();
        break;
      }
      case LeasePark::Chunk:
        panic("serialCatchUp on a core that did not park");
    }
}

bool
Cpu::tryInlineOp(GuestContext &ctx)
{
    bool flushed = false;
    if (ctx.sbr.cur != nullptr) [[unlikely]] {
        // sbStep rejected this op: commit the iterations that did
        // replay, then run the op on the normal path below. The flush
        // arms the mid-block resume hint, which belongs to the *next*
        // op — so no re-entry is attempted for this one.
        sbCommitReplay(ctx, /*partial=*/true);
        flushed = true;
    }
    // Pre-checks mirror runUntil's continue conditions: refusing sends
    // the op down the suspend path, where runUntil either executes it
    // as a classic round or ends the batch.
    if (batchOpsLeft_ == 0 || now_ >= batchBound_ || now_ >= batchPollAt_)
        return false;
    panic_if(now_ > batchHardLimit_,
             "runaway simulation: core ", id_,
             " passed the hard limit at tick ", now_);

    const PendingOp &op = ctx.op;
    // One nap gate for the whole superblock machinery: while the
    // detector sleeps (see SuperblockState::shouldRecord) this op pays
    // a single decrement instead of hint/candidate probing plus
    // recording — the win that keeps non-loopy workloads at cache-off
    // speed.
    bool sb_awake = false;
    if (sbEnabled_) {
        SuperblockState *st = ctx.sbState.get();
        if (st == nullptr) [[unlikely]] {
            ctx.sbState = std::make_unique<SuperblockState>(
                &sbStats_, costs_.mispredictPenalty);
            st = ctx.sbState.get();
        }
        sb_awake = st->shouldRecord();
    }
    if (sb_awake && !flushed) {
        SuperblockState *st = ctx.sbState.get();
        std::uint32_t start = 0;
        Superblock *b = st->takeHint(start);
        if (b == nullptr) {
            start = 0; // takeHint leaves pos unspecified when unarmed
            b = st->candidateFor(op.kind);
        } else if (b->ops[start].kind != op.kind) {
            b = nullptr; // stale resume hint; fall back to recording
        }
        if (b != nullptr && sbTryEnter(ctx, *b, start)) {
            if (ctx.sbStep())
                return true;
            if (ctx.opConsumedInline)
                return false; // single-op replay ended the batch
            // Entry op mismatched after all (a mem stall has already
            // flushed via sbStallMem); commit and fall through.
            if (ctx.sbr.cur != nullptr)
                sbCommitReplay(ctx, /*partial=*/true);
            // A stall flush advances the clock and spends budget, so
            // the entry pre-checks may no longer hold for this op.
            if (batchOpsLeft_ == 0 || now_ >= batchBound_ ||
                now_ >= batchPollAt_)
                return false;
        }
    }
    // From here the op executes at the current clock — which is the
    // key the reference scheduler's earliest-core pick would run it
    // (and its epilogue) at. A leased core parking on the epilogue
    // below must publish exactly this key.
    if (leaseMode_)
        parkKey_ = now_;
    switch (op.kind) {
      case OpKind::Compute:
        execCompute(ctx, op);
        break;
      case OpKind::Load:
      case OpKind::Store:
        if (leaseMode_) {
            // Leased cores may only take the per-core fast path; a
            // miss means shared hierarchy levels, so the op parks and
            // the coordinator runs it as a classic round.
            if (!execMemoryFast(ctx, op))
                return false;
        } else {
            execMemory(ctx, op);
        }
        break;
      case OpKind::RegionEnter:
      case OpKind::RegionExit:
        execRegion(ctx, op);
        break;
      default:
        return false; // cross-core-visible: scheduler round
    }
    --batchOpsLeft_;
    if (sb_awake) {
        ctx.sbState->record(op.kind, op.instrs, op.profile,
                            lastFastLat_);
    }

    if (!pendingPmis_.empty() || now_ >= quantumEnd) {
        // The drain/timer epilogue can switch threads, which is only
        // safe with this coroutine suspended; hand back to runUntil.
        epiloguePending_ = true;
        ctx.opConsumedInline = true;
        return false;
    }
    if (now_ >= batchBound_ || now_ >= batchPollAt_ || batchOpsLeft_ == 0) {
        ctx.opConsumedInline = true;
        return false;
    }
    return true;
}

void
Cpu::executeOp(GuestContext &ctx)
{
    // No copy: ctx.op is stable for the whole handler — guest
    // coroutines (the only writers) never resume inside one. Handlers
    // that re-enter the kernel before their last read of an op field
    // still take scalar copies of what they need up front.
    const PendingOp &op = ctx.op;

    switch (op.kind) {
      case OpKind::Compute:
        execCompute(ctx, op);
        break;
      case OpKind::Load:
      case OpKind::Store:
        execMemory(ctx, op);
        break;
      case OpKind::AtomicCas:
      case OpKind::AtomicFetchAdd:
      case OpKind::AtomicExchange:
      case OpKind::AtomicLoad:
      case OpKind::AtomicStore:
        execAtomic(ctx, op);
        break;
      case OpKind::PmcRead:
      case OpKind::PmcReadClear:
        execPmcRead(ctx, op);
        break;
      case OpKind::Syscall:
        execSyscall(ctx, op);
        break;
      case OpKind::RegionEnter:
      case OpKind::RegionExit:
        execRegion(ctx, op);
        break;
      default:
        panic("unknown op kind");
    }

    drainOverflows();
    if (current_ && now_ >= quantumEnd) {
        kernelRound_ = true;
        machine_.kernel()->timerTick(*this);
        drainOverflows();
    }
}

void
Cpu::execCompute(GuestContext &ctx, const PendingOp &op)
{
    const ComputeProfile &p = op.profile;
    const std::uint64_t instrs = op.instrs;

    // Deterministic fractional-event accounting: carry residues so
    // that long-run branch counts match instrs * branchFrac exactly.
    // The zero-rate cases reduce to exact identities (the residue is
    // always < 1, so the truncated count is 0 and the residue is
    // unchanged); skip the floating-point work on those paths.
    std::uint64_t branches = 0;
    if (p.branchFrac != 0.0) {
        const double branches_f = static_cast<double>(instrs) *
                                      p.branchFrac +
                                  ctx.branchResidue;
        branches = static_cast<std::uint64_t>(branches_f);
        ctx.branchResidue = branches_f - static_cast<double>(branches);
    }

    std::uint64_t misses = 0;
    if (branches != 0 && p.mispredictRate != 0.0) {
        const double miss_f = static_cast<double>(branches) *
                                  p.mispredictRate +
                              ctx.mispredictResidue;
        misses = static_cast<std::uint64_t>(miss_f);
        ctx.mispredictResidue = miss_f - static_cast<double>(misses);
    }

    // cpi == 1.0 is exact in integers (instrs < 2^53 in any feasible
    // run, so the double round-trip below would be lossless anyway).
    const Tick base = p.cpi == 1.0
        ? instrs
        : static_cast<Tick>(
              std::ceil(static_cast<double>(instrs) * p.cpi));
    const Tick duration = base + misses * costs_.mispredictPenalty;

    const SparseDelta d[4] = {{EventType::Cycles, duration},
                              {EventType::Instructions, instrs},
                              {EventType::Branches, branches},
                              {EventType::BranchMisses, misses}};
    applyFewEvents(PrivMode::User, d);
    now_ += duration;
    ctx.result = 0;
}

bool
Cpu::execMemoryFast(GuestContext &ctx, const PendingOp &op)
{
    const bool write = op.kind == OpKind::Store;

    // All-hit accesses (the common case on streaming patterns) carry
    // exactly three events; skip the dense-deltas machinery for them.
    const Tick fast = machine_.memory()->tryFastAccess(id_, op.addr,
                                                       write);
    if (fast == 0)
        return false;
    lastFastLat_ = fast;
    const SparseDelta d[3] = {
        {EventType::Cycles, fast},
        {EventType::Instructions, 1},
        {write ? EventType::Stores : EventType::Loads, 1}};
    applyFewEvents(PrivMode::User, d);
    now_ += fast;
    ctx.result = 0;
    return true;
}

void
Cpu::execMemory(GuestContext &ctx, const PendingOp &op)
{
    if (execMemoryFast(ctx, op))
        return;

    const bool write = op.kind == OpKind::Store;
    MemoryIf *mem = machine_.memory();
    lastFastLat_ = 0;
    EventDeltas d;
    const Tick latency = mem->access(id_, op.addr, write, false, d);

    d[EventType::Cycles] += latency;
    d[EventType::Instructions] += 1;
    d[write ? EventType::Stores : EventType::Loads] += 1;
    applyEvents(PrivMode::User, d);
    now_ += latency;
    ctx.result = 0;
}

void
Cpu::execMemorySlow(GuestContext &ctx, const PendingOp &op)
{
    const bool write = op.kind == OpKind::Store;
    lastFastLat_ = 0;
    EventDeltas d;
    const Tick latency =
        machine_.memory()->access(id_, op.addr, write, false, d);

    d[EventType::Cycles] += latency;
    d[EventType::Instructions] += 1;
    d[write ? EventType::Stores : EventType::Loads] += 1;
    applyEvents(PrivMode::User, d);
    now_ += latency;
    ctx.result = 0;
}

void
Cpu::execAtomic(GuestContext &ctx, const PendingOp &op)
{
    panic_if(op.word == nullptr, "atomic op without host storage");
    EventDeltas d;
    const Tick latency = machine_.memory()->access(id_, op.addr,
                                                   /*write=*/true,
                                                   /*atomic=*/true, d);
    d[EventType::Cycles] += latency;
    d[EventType::Instructions] += 1;
    d[EventType::Loads] += 1;

    std::uint64_t result = 0;
    switch (op.kind) {
      case OpKind::AtomicCas: {
        const std::uint64_t old = *op.word;
        if (old == op.a) {
            *op.word = op.b;
            d[EventType::Stores] += 1;
        }
        result = old;
        break;
      }
      case OpKind::AtomicFetchAdd: {
        const std::uint64_t old = *op.word;
        *op.word = old + op.a;
        d[EventType::Stores] += 1;
        result = old;
        break;
      }
      case OpKind::AtomicExchange: {
        const std::uint64_t old = *op.word;
        *op.word = op.a;
        d[EventType::Stores] += 1;
        result = old;
        break;
      }
      case OpKind::AtomicLoad:
        result = *op.word;
        break;
      case OpKind::AtomicStore:
        *op.word = op.a;
        d[EventType::Stores] += 1;
        break;
      default:
        panic("non-atomic op in execAtomic");
    }

    applyEvents(PrivMode::User, d);
    now_ += latency;
    ctx.result = result;
}

void
Cpu::execPmcRead(GuestContext &ctx, const PendingOp &op)
{
    const unsigned counter = op.counter;
    const bool clear = op.kind == OpKind::PmcReadClear;
    fatal_if(counter >= pmu_.numCounters(),
             "rdpmc of nonexistent counter ", counter);

    // Charge the read cost *before* sampling the counter value: the
    // value architecturally reflects the moment the rdpmc retires, so
    // events generated by the read itself (cycles, the instruction)
    // are visible in it — and so is any overflow they trigger. This
    // ordering is what makes the accumulate-then-rdpmc race of naive
    // userspace reads reproducible (see pec/).
    EventDeltas d;
    d[EventType::Cycles] = costs_.rdpmcCost;
    d[EventType::Instructions] = 1;
    applyEvents(PrivMode::User, d);
    now_ += costs_.rdpmcCost;

    // Deliver any overflow the read itself produced before the value
    // is observed, mirroring a PMI that hits during the instruction.
    drainOverflows();

    ctx.result = clear ? pmu_.readAndClear(counter) : pmu_.read(counter);
}

void
Cpu::execSyscall(GuestContext &ctx, const PendingOp &op)
{
    const std::uint32_t nr = op.sysNr;
    const std::array<std::uint64_t, 4> args = op.sysArgs;
    kernelRound_ = true;

    // The syscall instruction itself.
    EventDeltas d;
    d[EventType::Cycles] = 2;
    d[EventType::Instructions] = 1;
    applyEvents(PrivMode::User, d);
    now_ += 2;

    // Trap entry + eventual return are charged up front to keep the
    // accounting attached to the calling thread even when the handler
    // blocks it and switches away (see DESIGN.md).
    kernelWork(costs_.trapEntryCost + costs_.trapExitCost);

    SyscallOutcome out = machine_.kernel()->syscall(*this, ctx, nr, args);
    if (!out.blocked)
        ctx.result = out.value;
}

void
Cpu::execRegion(GuestContext &ctx, const PendingOp &op)
{
    EventDeltas d;
    d[EventType::Cycles] = 2;
    d[EventType::Instructions] = 2;
    applyEvents(PrivMode::User, d);
    now_ += 2;

    ctx.prevRegion = ctx.currentRegion();
    ctx.regionChangedAt = now_;
    if (op.kind == OpKind::RegionEnter) {
        ctx.regionStack.push_back(op.region);
    } else {
        panic_if(ctx.regionStack.empty(),
                 "regionExit with empty region stack in thread '",
                 ctx.name(), "'");
        ctx.regionStack.pop_back();
    }
    ctx.result = 0;
}

void
Cpu::kernelWork(Tick cycles)
{
    if (cycles == 0)
        return;
    const double instr_f =
        static_cast<double>(cycles) * costs_.kernelIpc +
        kernelInstrResidue_;
    const auto instrs = static_cast<std::uint64_t>(instr_f);
    kernelInstrResidue_ = instr_f - static_cast<double>(instrs);

    EventDeltas d;
    d[EventType::Cycles] = cycles;
    d[EventType::Instructions] = instrs;
    applyEvents(PrivMode::Kernel, d);
    now_ += cycles;
}

void
Cpu::drainOverflowsSlow()
{
    if (draining_)
        return; // the outer drain loop will pick up new PMIs
    draining_ = true;
    kernelRound_ = true;
    unsigned guard = 0;
    // Index scan instead of front-pop: a fault controller may hold a
    // PMI back (notBefore in the future) while later ones deliver, and
    // each delivery can queue new PMIs, so restart from 0 after one.
    std::size_t i = 0;
    while (i < pendingPmis_.size()) {
        PendingPmi &pending = pendingPmis_[i];
        if (!pending.vetted) {
            pending.vetted = true;
            if (fault::FaultController *f = machine_.faults()) {
                const fault::PmiAction act =
                    f->onPmiDeliver(*this, pending.counter,
                                    pending.wraps);
                if (act.drop) {
                    pendingPmis_.erase(i);
                    continue;
                }
                if (act.delay > 0)
                    pending.notBefore = now_ + act.delay;
            }
        }
        if (pending.notBefore > now_) {
            ++i; // still held back; look at later arrivals
            continue;
        }
        panic_if(++guard > 256,
                 "PMI storm: overflow handler keeps re-overflowing "
                 "(counter width too small for the handler cost?)");
        const PendingPmi pmi = pending;
        pendingPmis_.erase(i);
        LIMIT_TRACE(machine_.tracer(), id_,
                    trace::TraceEvent::CounterOverflow, now_,
                    current_ ? current_->tid() : invalidThread,
                    pmi.counter, pmi.wraps);
        machine_.kernel()->pmuOverflow(*this, pmi.counter, pmi.wraps);
        i = 0;
    }
    draining_ = false;
}

// ---------------------------------------------------------------------
// Superblock replay (see sim/superblock.hh and DESIGN.md)
// ---------------------------------------------------------------------

bool
Cpu::sbSizeIters(const Superblock &block, std::uint64_t &out)
{
    SuperblockStats &stats = sbStats_;
    // Every replayed op must land strictly below the batch bound, the
    // poll deadline and the quantum end (so per-op execution would
    // also have run the whole span back to back on this core), and at
    // or below the hard limit.
    Tick lim = batchBound_;
    if (batchPollAt_ < lim)
        lim = batchPollAt_;
    if (quantumEnd < lim)
        lim = quantumEnd;
    if (tlLane_ != nullptr) [[unlikely]] {
        // Timeline slices must be bit-identical to per-op execution,
        // where each op's events land in the slice holding its start
        // time. A replayed span commits all its events at the span's
        // *end*, so the span must not cross a slice boundary: bounding
        // lim keeps spanEnd <= lim - 1 < boundary (maxIterCycles
        // upper-bounds each iteration, so `avail` below holds for the
        // whole span). The cached boundary can be stale — the clock
        // advanced past it after the last apply — so roll first; that
        // also keeps `lim - now_` from wrapping below.
        if (now_ >= tlNextBoundary_)
            tlRoll();
        if (tlNextBoundary_ < lim)
            lim = tlNextBoundary_;
    }
    if (lim - now_ <= 1) {
        ++stats.refusedHorizon;
        return false;
    }
    Tick avail = lim - now_ - 1;
    if (batchHardLimit_ - now_ < avail)
        avail = batchHardLimit_ - now_;
    // The op budget (≤ max_ops per round) is almost always the binding
    // bound, so start there and confirm the others with multiplies;
    // the exact divisions only run when a bound actually binds.
    const std::uint32_t size = static_cast<std::uint32_t>(block.ops.size());
    std::uint64_t iters = batchOpsLeft_ / size;
    if (iters == 0) {
        ++stats.refusedBudget;
        return false;
    }
    // Size the replay to the worst case: maxIterCycles bounds one
    // iteration's cycles from above, so `iters` full iterations are
    // guaranteed to fit whatever the residues do.
    if (static_cast<unsigned __int128>(block.maxIterCycles) * iters >
        avail) {
        iters = avail / block.maxIterCycles;
        if (iters == 0) {
            ++stats.refusedHorizon;
            return false;
        }
    }
    // No active counter may wrap inside the replay: wraps raise PMIs
    // at op granularity, which the one-shot commit could not time.
    if (!pmu_.fitsWithoutWrap(PrivMode::User, block.iterUb, iters)) {
        const std::uint64_t byWrap =
            pmu_.noWrapIterBound(PrivMode::User, block.iterUb);
        if (byWrap == 0) {
            ++stats.refusedOverflow;
            return false;
        }
        if (byWrap < iters)
            iters = byWrap;
    }
    out = iters;
    return true;
}

bool
Cpu::sbTryEnter(GuestContext &ctx, Superblock &block, std::uint32_t start)
{
    SuperblockStats &stats = sbStats_;
    // A fault plan can trigger on any op's seams; replay would skip
    // its probe points. Refuse outright — fault runs are diagnostics,
    // not throughput runs — unless the controller targets the replay
    // path itself (corrupt-replay plans) and opts in.
    if (fault::FaultController *f = machine_.faults();
        f != nullptr && !f->allowSuperblockReplay()) {
        ++stats.refusedFaults;
        return false;
    }
    // A pending PMI must be delivered at the next op boundary.
    if (!pendingPmis_.empty()) {
        ++stats.refusedPmi;
        return false;
    }
    SbReplay &r = ctx.sbr;
    if (block.numMemOps > 0) {
        // Model swapped or reconfigured since recording (the view is
        // refreshed each round; memLat is nonzero by formation), or a
        // geometry the shift-based set indexing can't express.
        if (sbPeek_.latency != block.memLat ||
            (!sbPeek_.alwaysHit &&
             (sbPeek_.ways & (sbPeek_.ways - 1)) != 0)) {
            ++stats.refusedMemView;
            return false;
        }
        r.peek = sbPeek_;
        r.memAlwaysHit = sbPeek_.alwaysHit;
        if (!sbPeek_.alwaysHit) {
            r.pageShift = sbPeek_.pageShift;
            r.lineShift = sbPeek_.lineShift;
            r.waysShift = static_cast<unsigned>(
                std::countr_zero(sbPeek_.ways));
            r.pageVal = *sbPeek_.lastPage;
            r.setMask = sbPeek_.setMask;
            r.mruTags = sbPeek_.mruTags;
            r.lastGoodLine = ~0ull;
        }
    }
    std::uint64_t iters;
    if (!sbSizeIters(block, iters))
        return false;
    r.opsBegin = block.ops.data();
    r.opsEnd = r.opsBegin + block.ops.size();
    r.cur = r.opsBegin + start;
    r.startOffset = start;
    r.itersTotal = iters;
    r.itersLeft = iters;
    r.mispredictPenalty = costs_.mispredictPenalty;
    r.accBranches = 0;
    r.accMisses = 0;
    r.block = &block;
    // Replayable ops all produce a zero result; publish it once.
    ctx.result = 0;
    ++stats.entries;
    return true;
}

bool
Cpu::sbResume(GuestContext &ctx, Superblock &block, std::uint32_t start)
{
    // Same round, same block: the peek view, fault state (attachable
    // only between runs), and ops pointers are all still valid, and
    // the caller already verified no PMI is pending. Only the sizing
    // must be redone against the advanced clock and budget.
    std::uint64_t iters;
    if (!sbSizeIters(block, iters))
        return false;
    SbReplay &r = ctx.sbr;
    r.cur = r.opsBegin + start;
    r.startOffset = start;
    r.itersTotal = iters;
    r.itersLeft = iters;
    r.accBranches = 0;
    r.accMisses = 0;
    r.block = &block;
    // The bridged access may have moved the TLB's hot page and the L1
    // MRU tags; the other flattened fields are geometry, invariant
    // within a run. The validation cache is poisoned for the same
    // reason.
    if (!r.memAlwaysHit && block.numMemOps > 0) {
        r.pageVal = *r.peek.lastPage;
        r.lastGoodLine = ~0ull;
    }
    ++sbStats_.entries;
    return true;
}

bool
Cpu::sbStallMem(GuestContext &ctx)
{
    SbReplay &r = ctx.sbr;
    Superblock &b = *r.block;
    const std::uint64_t curOff =
        static_cast<std::uint64_t>(r.cur - r.opsBegin);
    // No progress yet: a plain entry miss. Take the ordinary flush so
    // blocks whose assumptions never hold still accrue failStreak and
    // go dormant instead of looping through the bridge forever.
    if (r.itersLeft == r.itersTotal && curOff == r.startOffset) {
        sbCommitReplay(ctx, /*partial=*/true);
        return false;
    }
    // Commit the span first: the bulk TLB/L1 credits must land before
    // the full access below mutates the recency state they assume,
    // and the access's own deltas must apply after the span's.
    sbCommitReplay(ctx, /*partial=*/true);
    if (leaseMode_) {
        // The stalled op left the per-core fast path; on a leased
        // core it must park and run as a coordinator round. The span
        // is committed and the hint armed, so the suspend path picks
        // up exactly where a serial run would.
        return false;
    }
    // The stalled op itself needs the normal path's budget/horizons.
    if (batchOpsLeft_ == 0 || now_ >= batchBound_ || now_ >= batchPollAt_)
        return false; // suspend path; hint is armed for the next op
    panic_if(now_ > batchHardLimit_,
             "runaway simulation: core ", id_,
             " passed the hard limit at tick ", now_);
    execMemorySlow(ctx, ctx.op);
    --batchOpsLeft_;
    ++sbStats_.stallBridges;
    if (!pendingPmis_.empty() || now_ >= quantumEnd) {
        epiloguePending_ = true;
        ctx.opConsumedInline = true;
        return false;
    }
    if (now_ >= batchBound_ || now_ >= batchPollAt_ ||
        batchOpsLeft_ == 0) {
        ctx.opConsumedInline = true;
        return false;
    }
    // Continue the same block right after the stalled op. On refusal
    // the guest still continues inline — just without a replay (the
    // armed hint lets the next op re-enter through the full path).
    std::uint32_t next = static_cast<std::uint32_t>(curOff) + 1;
    if (next == b.ops.size())
        next = 0;
    sbResume(ctx, b, next);
    return true;
}

bool
superblockStallMem(GuestContext &ctx) noexcept
{
    return ctx.inlineCpu->sbStallMem(ctx);
}

void
Cpu::sbCommitReplay(GuestContext &ctx, bool partial)
{
    SbReplay &r = ctx.sbr;
    Superblock &b = *r.block;
    SuperblockStats &stats = sbStats_;
    const std::uint64_t size = b.ops.size();
    const std::uint64_t fullIters = r.itersTotal - r.itersLeft;
    const std::uint64_t curOff =
        static_cast<std::uint64_t>(r.cur - r.opsBegin);
    const std::uint64_t ops =
        fullIters * size + curOff - r.startOffset;
    r.cur = nullptr;
    r.block = nullptr;
    if (ops == 0) {
        // Armed, but the very first op already mismatched: the loop
        // left its straight line. Back off blocks that keep missing.
        ++stats.entryMisses;
        if (++b.failStreak >= 16) {
            b.failStreak = 0;
            b.dormantUntil = ctx.sbState->recorded() + 4096;
        }
        return;
    }

    // O(1) commit: everything except the residue-driven branch terms
    // is a prefix-sum difference (`ops` spans fullIters whole
    // iterations plus the [startOffset, curOff) partial span).
    const MicroOp *curOp = r.opsBegin + curOff;
    const MicroOp *startOp = r.opsBegin + r.startOffset;
    const Tick base = fullIters * b.iterBase + curOp->prefixBase -
                      startOp->prefixBase;
    std::uint64_t instrs = fullIters * b.iterInstrs +
                           curOp->prefixInstrs - startOp->prefixInstrs;
    const std::uint64_t loads = fullIters * b.iterLoads +
                                curOp->prefixLoads - startOp->prefixLoads;
    const std::uint64_t stores = fullIters * b.iterStores +
                                 curOp->prefixStores -
                                 startOp->prefixStores;
    const Tick cycles = base + r.accMisses * costs_.mispredictPenalty;
    // Deferred clock: sbStep does not advance the core clock per op;
    // the whole span lands here (mid-replay readers reconstruct the
    // exact time via GuestContext::sbPendingTicks).
    now_ += cycles;
    // Only reachable with a controller that allowed replay: phantom
    // instructions injected here corrupt the commit on purpose, for
    // the divergence sentinel to catch (Site::CorruptReplay).
    if (fault::FaultController *f = machine_.faults())
        instrs += f->onSuperblockCommit(*this, ctx.tid(), ops);
    const SparseDelta d[6] = {{EventType::Cycles, cycles},
                              {EventType::Instructions, instrs},
                              {EventType::Loads, loads},
                              {EventType::Stores, stores},
                              {EventType::Branches, r.accBranches},
                              {EventType::BranchMisses, r.accMisses}};
    // sbTryEnter sized the replay so no counter can wrap: this apply
    // queues no PMIs, making the one-shot fold exact.
    applyFewEvents(PrivMode::User, d);
    if (loads + stores > 0)
        machine_.memory()->creditFastAccesses(id_, loads + stores);
    batchOpsLeft_ -= static_cast<unsigned>(ops);

    // A productive span is the one signal that keeps the detector out
    // of its nap (entry misses deliberately don't — a block that keeps
    // missing should not pin the detector awake).
    if (ctx.sbState != nullptr)
        ctx.sbState->noteReplayed();
    stats.opsReplayed += ops;
    if (partial)
        ++stats.partialFlushes;
    else
        ++stats.fullCommits;
    ++b.replays;
    b.failStreak = 0;
    if (partial && ctx.sbState != nullptr) {
        // The op that ended the replay runs on the normal path; the
        // one after it is expected right after the mismatch point.
        ctx.sbState->armHint(
            &b, static_cast<std::uint32_t>((curOff + 1) % size));
    }
}

bool
Cpu::sbFinishReplay(GuestContext &ctx)
{
    // The final op of the final iteration just retired: wrap the
    // cursor so the commit sees `itersTotal` whole iterations.
    ctx.sbr.cur = ctx.sbr.opsBegin;
    ctx.sbr.itersLeft = 0;
    sbCommitReplay(ctx, /*partial=*/false);
    // Defensive for lease mode: sizing keeps spans strictly inside
    // the quantum and PMU headroom, so the epilogue below should be
    // unreachable there — but if it ever fires, the post-commit clock
    // is the only coherent park key.
    if (leaseMode_)
        parkKey_ = now_;
    // Mirror tryInlineOp's post-op checks: the replay was sized to
    // stay inside every horizon, but it may have consumed the whole
    // op budget or landed exactly on a boundary.
    if (!pendingPmis_.empty() || now_ >= quantumEnd) {
        epiloguePending_ = true;
        ctx.opConsumedInline = true;
        return false;
    }
    if (now_ >= batchBound_ || now_ >= batchPollAt_ ||
        batchOpsLeft_ == 0) {
        ctx.opConsumedInline = true;
        return false;
    }
    return true;
}

bool
superblockFinishReplay(GuestContext &ctx) noexcept
{
    return ctx.inlineCpu->sbFinishReplay(ctx);
}

} // namespace limit::sim
