#include "sim/cpu.hh"

#include <cmath>
#include <cstddef>

#include "fault/controller.hh"
#include "sim/kernel_if.hh"
#include "sim/machine.hh"
#include "sim/memory_if.hh"
#include "trace/trace.hh"

namespace limit::sim {

Cpu::Cpu(CoreId id, Machine &machine, const CostModel &costs,
         unsigned pmu_counters, const PmuFeatures &pmu_features)
    : id_(id), machine_(machine), costs_(costs),
      pmu_(pmu_counters, pmu_features)
{
}

void
Cpu::setCurrent(GuestContext *ctx)
{
    current_ = ctx;
    if (ctx)
        ctx->lastCore = id_;
}

void
Cpu::syncTimeAtLeast(Tick t)
{
    if (t > now_)
        now_ = t;
}

void
Cpu::step()
{
    panic_if(!current_, "Cpu::step on an idle core");
    GuestContext &ctx = *current_;
    ctx.hasOp = false;
    ctx.resumeHandle().resume();

    if (!ctx.hasOp) {
        panic_if(!ctx.finished(),
                 "guest thread '", ctx.name(),
                 "' suspended without issuing an op");
        machine_.kernel()->threadExited(*this, ctx);
        drainOverflows();
        return;
    }
    executeOp(ctx);
}

Cpu::BatchResult
Cpu::runUntil(Tick bound, Tick poll_at, Tick hard_limit,
              unsigned max_ops)
{
    BatchResult r;
    batchBound_ = bound;
    batchPollAt_ = poll_at;
    batchHardLimit_ = hard_limit;
    batchOpsLeft_ = max_ops;
    while (current_) {
        panic_if(now_ > hard_limit,
                 "runaway simulation: core ", id_,
                 " passed the hard limit at tick ", now_);
        GuestContext &ctx = *current_;
        ctx.hasOp = false;
        ctx.opConsumedInline = false;
        // Let the guest's co_await points feed core-local ops straight
        // into tryInlineOp while the budget lasts; the resume comes
        // back only for an op that needs a scheduler round (published
        // in ctx.op), a deferred epilogue, an ended batch, or exit.
        ctx.inlineCpu = this;
        ctx.resumeHandle().resume();
        ctx.inlineCpu = nullptr;

        if (!ctx.hasOp) {
            if (ctx.finished()) {
                if (batchOpsLeft_ > 0)
                    --batchOpsLeft_; // the exiting resume was a round
                machine_.kernel()->threadExited(*this, ctx);
                drainOverflows();
                r.interacted = true;
                break;
            }
            panic_if(!ctx.opConsumedInline,
                     "guest thread '", ctx.name(),
                     "' suspended without issuing an op");
            ctx.opConsumedInline = false;
            if (epiloguePending_) {
                // tryInlineOp's last op queued a PMI or crossed the
                // quantum; replay executeOp's epilogue now that the
                // coroutine is suspended (it may context-switch).
                epiloguePending_ = false;
                kernelRound_ = false;
                drainOverflows();
                if (current_ && now_ >= quantumEnd) {
                    kernelRound_ = true;
                    machine_.kernel()->timerTick(*this);
                    drainOverflows();
                }
                r.interacted = kernelRound_;
            }
            break; // horizon / poll deadline / budget reached
        }

        --batchOpsLeft_;
        const bool local = opIsCoreLocal(ctx.op.kind);
        kernelRound_ = false;
        executeOp(ctx);
        if (kernelRound_) {
            // Timer tick, PMI, or syscall re-entered the kernel: the
            // schedule (busy set, other cores' clocks, poll hint) may
            // have changed under us.
            r.interacted = true;
            break;
        }
        if (!local)
            break; // conservative: published cross-core-visible state
        // The next op may only run here if this core would still win
        // the global earliest-core pick and no poll is due.
        if (now_ >= bound || now_ >= poll_at || batchOpsLeft_ == 0)
            break;
    }
    r.ops = max_ops - batchOpsLeft_;
    batchOpsLeft_ = 0;
    return r;
}

bool
Cpu::tryInlineOp(GuestContext &ctx)
{
    // Pre-checks mirror runUntil's continue conditions: refusing sends
    // the op down the suspend path, where runUntil either executes it
    // as a classic round or ends the batch.
    if (batchOpsLeft_ == 0 || now_ >= batchBound_ || now_ >= batchPollAt_)
        return false;
    panic_if(now_ > batchHardLimit_,
             "runaway simulation: core ", id_,
             " passed the hard limit at tick ", now_);

    const PendingOp &op = ctx.op;
    switch (op.kind) {
      case OpKind::Compute:
        execCompute(ctx, op);
        break;
      case OpKind::Load:
      case OpKind::Store:
        execMemory(ctx, op);
        break;
      case OpKind::RegionEnter:
      case OpKind::RegionExit:
        execRegion(ctx, op);
        break;
      default:
        return false; // cross-core-visible: scheduler round
    }
    --batchOpsLeft_;

    if (!pendingPmis_.empty() || now_ >= quantumEnd) {
        // The drain/timer epilogue can switch threads, which is only
        // safe with this coroutine suspended; hand back to runUntil.
        epiloguePending_ = true;
        ctx.opConsumedInline = true;
        return false;
    }
    if (now_ >= batchBound_ || now_ >= batchPollAt_ || batchOpsLeft_ == 0) {
        ctx.opConsumedInline = true;
        return false;
    }
    return true;
}

void
Cpu::executeOp(GuestContext &ctx)
{
    // No copy: ctx.op is stable for the whole handler — guest
    // coroutines (the only writers) never resume inside one. Handlers
    // that re-enter the kernel before their last read of an op field
    // still take scalar copies of what they need up front.
    const PendingOp &op = ctx.op;

    switch (op.kind) {
      case OpKind::Compute:
        execCompute(ctx, op);
        break;
      case OpKind::Load:
      case OpKind::Store:
        execMemory(ctx, op);
        break;
      case OpKind::AtomicCas:
      case OpKind::AtomicFetchAdd:
      case OpKind::AtomicExchange:
      case OpKind::AtomicLoad:
      case OpKind::AtomicStore:
        execAtomic(ctx, op);
        break;
      case OpKind::PmcRead:
      case OpKind::PmcReadClear:
        execPmcRead(ctx, op);
        break;
      case OpKind::Syscall:
        execSyscall(ctx, op);
        break;
      case OpKind::RegionEnter:
      case OpKind::RegionExit:
        execRegion(ctx, op);
        break;
      default:
        panic("unknown op kind");
    }

    drainOverflows();
    if (current_ && now_ >= quantumEnd) {
        kernelRound_ = true;
        machine_.kernel()->timerTick(*this);
        drainOverflows();
    }
}

void
Cpu::execCompute(GuestContext &ctx, const PendingOp &op)
{
    const ComputeProfile &p = op.profile;
    const std::uint64_t instrs = op.instrs;

    // Deterministic fractional-event accounting: carry residues so
    // that long-run branch counts match instrs * branchFrac exactly.
    // The zero-rate cases reduce to exact identities (the residue is
    // always < 1, so the truncated count is 0 and the residue is
    // unchanged); skip the floating-point work on those paths.
    std::uint64_t branches = 0;
    if (p.branchFrac != 0.0) {
        const double branches_f = static_cast<double>(instrs) *
                                      p.branchFrac +
                                  ctx.branchResidue;
        branches = static_cast<std::uint64_t>(branches_f);
        ctx.branchResidue = branches_f - static_cast<double>(branches);
    }

    std::uint64_t misses = 0;
    if (branches != 0 && p.mispredictRate != 0.0) {
        const double miss_f = static_cast<double>(branches) *
                                  p.mispredictRate +
                              ctx.mispredictResidue;
        misses = static_cast<std::uint64_t>(miss_f);
        ctx.mispredictResidue = miss_f - static_cast<double>(misses);
    }

    // cpi == 1.0 is exact in integers (instrs < 2^53 in any feasible
    // run, so the double round-trip below would be lossless anyway).
    const Tick base = p.cpi == 1.0
        ? instrs
        : static_cast<Tick>(
              std::ceil(static_cast<double>(instrs) * p.cpi));
    const Tick duration = base + misses * costs_.mispredictPenalty;

    const SparseDelta d[4] = {{EventType::Cycles, duration},
                              {EventType::Instructions, instrs},
                              {EventType::Branches, branches},
                              {EventType::BranchMisses, misses}};
    applyFewEvents(PrivMode::User, d);
    now_ += duration;
    ctx.result = 0;
}

void
Cpu::execMemory(GuestContext &ctx, const PendingOp &op)
{
    const bool write = op.kind == OpKind::Store;
    MemoryIf *mem = machine_.memory();

    // All-hit accesses (the common case on streaming patterns) carry
    // exactly three events; skip the dense-deltas machinery for them.
    if (const Tick fast = mem->tryFastAccess(id_, op.addr, write)) {
        const SparseDelta d[3] = {
            {EventType::Cycles, fast},
            {EventType::Instructions, 1},
            {write ? EventType::Stores : EventType::Loads, 1}};
        applyFewEvents(PrivMode::User, d);
        now_ += fast;
        ctx.result = 0;
        return;
    }

    EventDeltas d;
    const Tick latency = mem->access(id_, op.addr, write, false, d);

    d[EventType::Cycles] += latency;
    d[EventType::Instructions] += 1;
    d[write ? EventType::Stores : EventType::Loads] += 1;
    applyEvents(PrivMode::User, d);
    now_ += latency;
    ctx.result = 0;
}

void
Cpu::execAtomic(GuestContext &ctx, const PendingOp &op)
{
    panic_if(op.word == nullptr, "atomic op without host storage");
    EventDeltas d;
    const Tick latency = machine_.memory()->access(id_, op.addr,
                                                   /*write=*/true,
                                                   /*atomic=*/true, d);
    d[EventType::Cycles] += latency;
    d[EventType::Instructions] += 1;
    d[EventType::Loads] += 1;

    std::uint64_t result = 0;
    switch (op.kind) {
      case OpKind::AtomicCas: {
        const std::uint64_t old = *op.word;
        if (old == op.a) {
            *op.word = op.b;
            d[EventType::Stores] += 1;
        }
        result = old;
        break;
      }
      case OpKind::AtomicFetchAdd: {
        const std::uint64_t old = *op.word;
        *op.word = old + op.a;
        d[EventType::Stores] += 1;
        result = old;
        break;
      }
      case OpKind::AtomicExchange: {
        const std::uint64_t old = *op.word;
        *op.word = op.a;
        d[EventType::Stores] += 1;
        result = old;
        break;
      }
      case OpKind::AtomicLoad:
        result = *op.word;
        break;
      case OpKind::AtomicStore:
        *op.word = op.a;
        d[EventType::Stores] += 1;
        break;
      default:
        panic("non-atomic op in execAtomic");
    }

    applyEvents(PrivMode::User, d);
    now_ += latency;
    ctx.result = result;
}

void
Cpu::execPmcRead(GuestContext &ctx, const PendingOp &op)
{
    const unsigned counter = op.counter;
    const bool clear = op.kind == OpKind::PmcReadClear;
    fatal_if(counter >= pmu_.numCounters(),
             "rdpmc of nonexistent counter ", counter);

    // Charge the read cost *before* sampling the counter value: the
    // value architecturally reflects the moment the rdpmc retires, so
    // events generated by the read itself (cycles, the instruction)
    // are visible in it — and so is any overflow they trigger. This
    // ordering is what makes the accumulate-then-rdpmc race of naive
    // userspace reads reproducible (see pec/).
    EventDeltas d;
    d[EventType::Cycles] = costs_.rdpmcCost;
    d[EventType::Instructions] = 1;
    applyEvents(PrivMode::User, d);
    now_ += costs_.rdpmcCost;

    // Deliver any overflow the read itself produced before the value
    // is observed, mirroring a PMI that hits during the instruction.
    drainOverflows();

    ctx.result = clear ? pmu_.readAndClear(counter) : pmu_.read(counter);
}

void
Cpu::execSyscall(GuestContext &ctx, const PendingOp &op)
{
    const std::uint32_t nr = op.sysNr;
    const std::array<std::uint64_t, 4> args = op.sysArgs;
    kernelRound_ = true;

    // The syscall instruction itself.
    EventDeltas d;
    d[EventType::Cycles] = 2;
    d[EventType::Instructions] = 1;
    applyEvents(PrivMode::User, d);
    now_ += 2;

    // Trap entry + eventual return are charged up front to keep the
    // accounting attached to the calling thread even when the handler
    // blocks it and switches away (see DESIGN.md).
    kernelWork(costs_.trapEntryCost + costs_.trapExitCost);

    SyscallOutcome out = machine_.kernel()->syscall(*this, ctx, nr, args);
    if (!out.blocked)
        ctx.result = out.value;
}

void
Cpu::execRegion(GuestContext &ctx, const PendingOp &op)
{
    EventDeltas d;
    d[EventType::Cycles] = 2;
    d[EventType::Instructions] = 2;
    applyEvents(PrivMode::User, d);
    now_ += 2;

    ctx.prevRegion = ctx.currentRegion();
    ctx.regionChangedAt = now_;
    if (op.kind == OpKind::RegionEnter) {
        ctx.regionStack.push_back(op.region);
    } else {
        panic_if(ctx.regionStack.empty(),
                 "regionExit with empty region stack in thread '",
                 ctx.name(), "'");
        ctx.regionStack.pop_back();
    }
    ctx.result = 0;
}

void
Cpu::kernelWork(Tick cycles)
{
    if (cycles == 0)
        return;
    const double instr_f =
        static_cast<double>(cycles) * costs_.kernelIpc +
        kernelInstrResidue_;
    const auto instrs = static_cast<std::uint64_t>(instr_f);
    kernelInstrResidue_ = instr_f - static_cast<double>(instrs);

    EventDeltas d;
    d[EventType::Cycles] = cycles;
    d[EventType::Instructions] = instrs;
    applyEvents(PrivMode::Kernel, d);
    now_ += cycles;
}

void
Cpu::drainOverflowsSlow()
{
    if (draining_)
        return; // the outer drain loop will pick up new PMIs
    draining_ = true;
    kernelRound_ = true;
    unsigned guard = 0;
    // Index scan instead of front-pop: a fault controller may hold a
    // PMI back (notBefore in the future) while later ones deliver, and
    // each delivery can queue new PMIs, so restart from 0 after one.
    std::size_t i = 0;
    while (i < pendingPmis_.size()) {
        PendingPmi &pending = pendingPmis_[i];
        if (!pending.vetted) {
            pending.vetted = true;
            if (fault::FaultController *f = machine_.faults()) {
                const fault::PmiAction act =
                    f->onPmiDeliver(*this, pending.counter,
                                    pending.wraps);
                if (act.drop) {
                    pendingPmis_.erase(i);
                    continue;
                }
                if (act.delay > 0)
                    pending.notBefore = now_ + act.delay;
            }
        }
        if (pending.notBefore > now_) {
            ++i; // still held back; look at later arrivals
            continue;
        }
        panic_if(++guard > 256,
                 "PMI storm: overflow handler keeps re-overflowing "
                 "(counter width too small for the handler cost?)");
        const PendingPmi pmi = pending;
        pendingPmis_.erase(i);
        LIMIT_TRACE(machine_.tracer(), id_,
                    trace::TraceEvent::CounterOverflow, now_,
                    current_ ? current_->tid() : invalidThread,
                    pmi.counter, pmi.wraps);
        machine_.kernel()->pmuOverflow(*this, pmi.counter, pmi.wraps);
        i = 0;
    }
    draining_ = false;
}

} // namespace limit::sim
