/**
 * @file
 * Guest-cycle timeline recorder: exact per-interval PMU event deltas.
 *
 * Every event application on a core lands in the slice holding the
 * core's clock at apply time (slice = now / interval). Because all
 * three execution loops apply an op's events *before* advancing the
 * clock — and superblock replay sizing additionally refuses to let a
 * span cross the next slice boundary (see Cpu::sbSizeIters) — the
 * slice vectors are bit-identical across per-op, batched and
 * superblock execution, and across any `--jobs` fan-out (the
 * instrumented run is a dedicated single representative run).
 *
 * Unlike sampling, nothing here is statistical: each slice is the
 * exact sum of the event deltas of the ops that started inside it.
 *
 * Header-only on purpose: `limit_trace` links only `limit_base` (the
 * sim library links trace, not vice versa), so the Perfetto exporter
 * reads recorder data through these inline accessors without adding
 * a circular library dependency.
 */

#ifndef LIMIT_SIM_TIMELINE_HH
#define LIMIT_SIM_TIMELINE_HH

#include <cstdint>
#include <vector>

#include "base/logging.hh"
#include "sim/types.hh"

namespace limit::sim {

/**
 * One core's accumulation lane. `cur` collects deltas for the slice
 * `curIndex`; Cpu::tlRoll flushes it when the clock crosses the next
 * boundary. Plain struct: the Cpu hot path pokes it directly.
 */
struct TimelineLane
{
    /** Committed slices; index i covers ticks [i*interval, (i+1)*interval). */
    std::vector<EventDeltas> slices;
    /** In-flight accumulator for slice curIndex. */
    EventDeltas cur{};
    /** Slice `cur` belongs to. */
    std::uint64_t curIndex = 0;

    /** Fold `cur` into its slice (growing as needed) and zero it. */
    void
    flush()
    {
        if (curIndex >= slices.size())
            slices.resize(curIndex + 1);
        slices[static_cast<std::size_t>(curIndex)] += cur;
        cur = EventDeltas{};
    }
};

/**
 * Whole-machine timeline: one lane per core plus the slicing
 * interval. Attach via Machine::setTimeline before running, call
 * finalize(machine.maxTime()) after; lanes are then padded to a
 * common, mode-invariant slice count (the slice holding the final
 * machine clock), so trailing idle slices never differ between
 * execution modes.
 */
class TimelineRecorder
{
  public:
    explicit TimelineRecorder(Tick interval_ticks)
        : interval_(interval_ticks)
    {
        fatal_if(interval_ticks == 0,
                 "TimelineRecorder: interval must be > 0");
    }

    Tick interval() const { return interval_; }

    /** Called by Machine::setTimeline; resets any previous capture. */
    void
    attach(unsigned num_cores)
    {
        lanes_.assign(num_cores, TimelineLane{});
        finalized_ = false;
    }

    unsigned
    numLanes() const
    {
        return static_cast<unsigned>(lanes_.size());
    }

    TimelineLane &lane(unsigned core) { return lanes_.at(core); }

    /**
     * Flush every lane and pad all of them to the slice containing
     * `max_time` (the final machine clock — identical across
     * execution modes). Idempotent.
     */
    void
    finalize(Tick max_time)
    {
        if (finalized_)
            return;
        const std::size_t n =
            static_cast<std::size_t>(max_time / interval_) + 1;
        for (auto &lane : lanes_) {
            lane.flush();
            if (lane.slices.size() < n)
                lane.slices.resize(n);
        }
        finalized_ = true;
    }

    bool finalized() const { return finalized_; }

    std::size_t
    numSlices() const
    {
        return lanes_.empty() ? 0 : lanes_.front().slices.size();
    }

    const std::vector<TimelineLane> &lanes() const { return lanes_; }

  private:
    Tick interval_;
    std::vector<TimelineLane> lanes_;
    bool finalized_ = false;
};

} // namespace limit::sim

#endif // LIMIT_SIM_TIMELINE_HH
