/**
 * @file
 * Per-core performance monitoring unit model.
 *
 * Counters are `counterWidth`-bit saturating-free (wrapping) registers
 * programmed with an event selector and user/kernel mode filters, in
 * the style of x86 architectural performance counters. Overflow raises
 * a PMI (delivered by the Cpu at the next op boundary) when the
 * counter's interrupt enable is set.
 *
 * The paper's three proposed hardware enhancements appear as
 * PmuFeatures: 64-bit userspace-visible counters (no overflow
 * machinery needed), destructive reads (read-and-clear in one
 * instruction), and tag-based virtualization (hardware swaps counter
 * state on context switch, eliminating the kernel's MSR save/restore).
 */

#ifndef LIMIT_SIM_PMU_HH
#define LIMIT_SIM_PMU_HH

#include <array>
#include <cstdint>

#include "sim/types.hh"

namespace limit::sim {

/** Upper bound on programmable counters per core. */
inline constexpr unsigned maxPmuCounters = 8;

/** Programming of one hardware counter. */
struct CounterConfig
{
    EventType event = EventType::Cycles;
    bool countUser = true;
    bool countKernel = false;
    bool enabled = false;
    /** Raise a PMI when the counter wraps. */
    bool interruptOnOverflow = false;
};

/** Optional hardware capabilities (the paper's enhancement proposals). */
struct PmuFeatures
{
    /** Counter width in bits; 64 is enhancement #1. */
    unsigned counterWidth = 48;
    /** Enhancement #2: a single-instruction read-and-clear. */
    bool destructiveRead = false;
    /**
     * Enhancement #3: hardware tags counter state with the thread
     * context so the kernel pays no MSR save/restore on switches.
     */
    bool taggedVirtualization = false;
};

/** Per-counter wrap counts produced by applying one batch of events. */
struct OverflowSet
{
    std::array<std::uint32_t, maxPmuCounters> wraps{};
    bool any = false;
};

/** One core's PMU. */
class Pmu
{
  public:
    Pmu(unsigned num_counters, const PmuFeatures &features);

    unsigned numCounters() const { return numCounters_; }
    const PmuFeatures &features() const { return features_; }

    /** Program counter `idx`; resets its value to zero. */
    void configure(unsigned idx, const CounterConfig &cfg);

    /** Current programming of counter `idx`. */
    const CounterConfig &config(unsigned idx) const;

    /** Kernel-mode write (WRMSR-style); value is masked to the width. */
    void write(unsigned idx, std::uint64_t value);

    /** Userspace read (RDPMC-style). */
    std::uint64_t read(unsigned idx) const;

    /**
     * Destructive read: returns the value and clears the counter.
     * Only legal when features().destructiveRead is set.
     */
    std::uint64_t readAndClear(unsigned idx);

    /** Enable/disable counting on counter `idx` without reprogramming. */
    void setEnabled(unsigned idx, bool enabled);

    /**
     * Apply one op's event deltas in the given privilege mode,
     * honouring each counter's filters. Returns how many times each
     * counter wrapped (possibly more than once for tiny widths).
     */
    OverflowSet apply(PrivMode mode, const EventDeltas &deltas);

    /** Value mask for the configured width. */
    std::uint64_t
    valueMask() const
    {
        return features_.counterWidth >= 64
            ? ~0ull
            : (1ull << features_.counterWidth) - 1;
    }

    /** 2^width as a 128-bit-safe modulus helper (0 means 2^64). */
    std::uint64_t
    wrapModulus() const
    {
        return features_.counterWidth >= 64
            ? 0
            : 1ull << features_.counterWidth;
    }

  private:
    unsigned numCounters_;
    PmuFeatures features_;
    std::array<CounterConfig, maxPmuCounters> configs_{};
    std::array<std::uint64_t, maxPmuCounters> values_{};
};

} // namespace limit::sim

#endif // LIMIT_SIM_PMU_HH
