/**
 * @file
 * Per-core performance monitoring unit model.
 *
 * Counters are `counterWidth`-bit saturating-free (wrapping) registers
 * programmed with an event selector and user/kernel mode filters, in
 * the style of x86 architectural performance counters. Overflow raises
 * a PMI (delivered by the Cpu at the next op boundary) when the
 * counter's interrupt enable is set.
 *
 * The paper's three proposed hardware enhancements appear as
 * PmuFeatures: 64-bit userspace-visible counters (no overflow
 * machinery needed), destructive reads (read-and-clear in one
 * instruction), and tag-based virtualization (hardware swaps counter
 * state on context switch, eliminating the kernel's MSR save/restore).
 */

#ifndef LIMIT_SIM_PMU_HH
#define LIMIT_SIM_PMU_HH

#include <array>
#include <cstdint>

#include "sim/types.hh"

namespace limit::sim {

/** Upper bound on programmable counters per core. */
inline constexpr unsigned maxPmuCounters = 8;

/** Programming of one hardware counter. */
struct CounterConfig
{
    EventType event = EventType::Cycles;
    bool countUser = true;
    bool countKernel = false;
    bool enabled = false;
    /** Raise a PMI when the counter wraps. */
    bool interruptOnOverflow = false;
};

/** Optional hardware capabilities (the paper's enhancement proposals). */
struct PmuFeatures
{
    /** Counter width in bits; 64 is enhancement #1. */
    unsigned counterWidth = 48;
    /** Enhancement #2: a single-instruction read-and-clear. */
    bool destructiveRead = false;
    /**
     * Enhancement #3: hardware tags counter state with the thread
     * context so the kernel pays no MSR save/restore on switches.
     */
    bool taggedVirtualization = false;
};

/** Per-counter wrap counts produced by applying one batch of events. */
struct OverflowSet
{
    std::array<std::uint32_t, maxPmuCounters> wraps{};
    bool any = false;
};

/** One counter's wrap report from the allocation-free apply path. */
struct WrapEvent
{
    std::uint8_t counter;
    std::uint32_t wraps;
};

/** One core's PMU. */
class Pmu
{
  public:
    Pmu(unsigned num_counters, const PmuFeatures &features);

    unsigned numCounters() const { return numCounters_; }
    const PmuFeatures &features() const { return features_; }

    /** Program counter `idx`; resets its value to zero. */
    void configure(unsigned idx, const CounterConfig &cfg);

    /** Current programming of counter `idx`. */
    const CounterConfig &config(unsigned idx) const;

    /** Kernel-mode write (WRMSR-style); value is masked to the width. */
    void write(unsigned idx, std::uint64_t value);

    /** Userspace read (RDPMC-style). */
    std::uint64_t read(unsigned idx) const;

    /**
     * Destructive read: returns the value and clears the counter.
     * Only legal when features().destructiveRead is set.
     */
    std::uint64_t readAndClear(unsigned idx);

    /** Enable/disable counting on counter `idx` without reprogramming. */
    void setEnabled(unsigned idx, bool enabled);

    /**
     * Apply one op's event deltas in the given privilege mode,
     * honouring each counter's filters. Returns how many times each
     * counter wrapped (possibly more than once for tiny widths).
     */
    OverflowSet apply(PrivMode mode, const EventDeltas &deltas);

    /**
     * Hot-path apply: identical counting semantics to apply(), but
     * iterates only the counters active in `mode` (precomputed when
     * counters are (re)programmed) and reports wraps into `out`
     * without zero-initializing anything. `delta_of(event_index)`
     * supplies the per-event delta, so callers with a known-sparse op
     * (a cache-hit load is exactly {Cycles, Instructions, Loads}) can
     * skip materializing the dense EventDeltas array. Defined inline:
     * it runs once per guest op.
     * @return number of entries written to `out`.
     */
    template <typename DeltaOf>
    unsigned
    applyActive(PrivMode mode, DeltaOf delta_of,
                WrapEvent (&out)[maxPmuCounters])
    {
        const unsigned m = static_cast<unsigned>(mode);
        const unsigned n = activeCount_[m];
        if (n == 0)
            return 0;

        unsigned wrapped = 0;
        const unsigned width = features_.counterWidth;
        if (width >= 64) {
            // 64-bit counters: wraps are possible in principle but
            // unreachable in any feasible simulation; plain add.
            for (unsigned k = 0; k < n; ++k) {
                const ActiveCounter ac = active_[m][k];
                values_[ac.idx] += delta_of(ac.event);
            }
            return 0;
        }

        // The modulus is a power of two, so wrap count and remainder
        // are a shift and a mask — no 128-bit division per op.
        const std::uint64_t mask = valueMask();
        for (unsigned k = 0; k < n; ++k) {
            const ActiveCounter ac = active_[m][k];
            const std::uint64_t delta = delta_of(ac.event);
            if (delta == 0)
                continue;
            const unsigned __int128 sum =
                static_cast<unsigned __int128>(values_[ac.idx]) + delta;
            values_[ac.idx] = static_cast<std::uint64_t>(sum) & mask;
            const auto wraps = static_cast<std::uint32_t>(sum >> width);
            if (wraps > 0)
                out[wrapped++] = {ac.idx, wraps};
        }
        return wrapped;
    }

    /** applyActive over a dense per-event delta array. */
    unsigned
    applyFast(PrivMode mode, const EventDeltas &deltas,
              WrapEvent (&out)[maxPmuCounters])
    {
        return applyActive(
            mode, [&](unsigned e) { return deltas.counts[e]; }, out);
    }

    /**
     * Largest number of loop iterations a superblock replay may apply
     * in `mode` without any active counter wrapping, given the dense
     * per-iteration upper-bound deltas in `per_iter` (indexed by
     * EventType). Conservative by construction: the bounds dominate
     * the actual deltas, and "no wrap on the final value" plus
     * monotonic accumulation rules out intermediate wraps too, which
     * is what lets the replay commit fold a whole block into a single
     * applyActive call without missing a PMI.
     */
    std::uint64_t
    noWrapIterBound(PrivMode mode,
                    const std::uint64_t (&per_iter)[numEventTypes]) const
    {
        const unsigned m = static_cast<unsigned>(mode);
        const std::uint64_t mask = valueMask();
        std::uint64_t best = ~0ull;
        for (unsigned k = 0; k < activeCount_[m]; ++k) {
            const ActiveCounter ac = active_[m][k];
            const std::uint64_t u = per_iter[ac.event];
            if (u == 0)
                continue;
            const std::uint64_t bound = (mask - values_[ac.idx]) / u;
            if (bound < best)
                best = bound;
        }
        return best;
    }

    /**
     * Division-free fast path for noWrapIterBound: true when `iters`
     * iterations provably fit every active counter in `mode` without
     * a wrap. Callers fall back to noWrapIterBound's exact division
     * only when this multiply-compare says the bound may bind.
     */
    bool
    fitsWithoutWrap(PrivMode mode,
                    const std::uint64_t (&per_iter)[numEventTypes],
                    std::uint64_t iters) const
    {
        const unsigned m = static_cast<unsigned>(mode);
        const std::uint64_t mask = valueMask();
        for (unsigned k = 0; k < activeCount_[m]; ++k) {
            const ActiveCounter ac = active_[m][k];
            const auto need =
                static_cast<unsigned __int128>(per_iter[ac.event]) * iters;
            if (need > mask - values_[ac.idx])
                return false;
        }
        return true;
    }

    /** Value mask for the configured width. */
    std::uint64_t
    valueMask() const
    {
        return features_.counterWidth >= 64
            ? ~0ull
            : (1ull << features_.counterWidth) - 1;
    }

    /** 2^width as a 128-bit-safe modulus helper (0 means 2^64). */
    std::uint64_t
    wrapModulus() const
    {
        return features_.counterWidth >= 64
            ? 0
            : 1ull << features_.counterWidth;
    }

  private:
    /** Rebuild the per-mode active-counter lists after reprogramming. */
    void rebuildActive();

    /** Compact (counter index, event index) pair for the hot loop. */
    struct ActiveCounter
    {
        std::uint8_t idx;
        std::uint8_t event;
    };

    unsigned numCounters_;
    PmuFeatures features_;
    std::array<CounterConfig, maxPmuCounters> configs_{};
    std::array<std::uint64_t, maxPmuCounters> values_{};
    /** Counters enabled for each privilege mode (index: PrivMode). */
    std::array<ActiveCounter, maxPmuCounters> active_[2]{};
    unsigned activeCount_[2] = {0, 0};
};

} // namespace limit::sim

#endif // LIMIT_SIM_PMU_HH
