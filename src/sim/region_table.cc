#include "sim/region_table.hh"

#include "base/logging.hh"

namespace limit::sim {

RegionId
RegionTable::intern(std::string_view name)
{
    auto it = ids_.find(std::string(name));
    if (it != ids_.end())
        return it->second;
    const auto id = static_cast<RegionId>(names_.size());
    panic_if(id == noRegion, "region table overflow");
    names_.emplace_back(name);
    ids_.emplace(names_.back(), id);
    return id;
}

RegionId
RegionTable::find(std::string_view name) const
{
    auto it = ids_.find(std::string(name));
    return it == ids_.end() ? noRegion : it->second;
}

const std::string &
RegionTable::name(RegionId id) const
{
    static const std::string none = "<none>";
    if (id == noRegion)
        return none;
    panic_if(id >= names_.size(), "bad region id ", id);
    return names_[id];
}

} // namespace limit::sim
