#include "sim/machine.hh"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <ctime>
#include <exception>
#include <optional>
#include <sstream>
#include <thread>

#include "base/logging.hh"
#include "sim/kernel_if.hh"

namespace limit::sim {

namespace {

/** Cap on ops per batch; any positive value is bit-identical. */
constexpr unsigned batchMaxOps = 4096;

bool
forcedNoBatch()
{
    static const bool forced = [] {
        const char *v = std::getenv("LIMITPP_FORCE_NO_BATCH");
        return v != nullptr && v[0] != '\0' &&
               !(v[0] == '0' && v[1] == '\0');
    }();
    return forced;
}

bool batchedDefault = true;

bool
forcedNoSuperblock()
{
    static const bool forced = [] {
        const char *v = std::getenv("LIMITPP_FORCE_NO_SUPERBLOCK");
        return v != nullptr && v[0] != '\0' &&
               !(v[0] == '0' && v[1] == '\0');
    }();
    return forced;
}

bool superblockDefault = true;

/** LIMITPP_FORCE_SHARDS override; 0 = unset / unparsable. */
unsigned
forcedShardCount()
{
    static const unsigned forced = [] {
        const char *v = std::getenv("LIMITPP_FORCE_SHARDS");
        if (v == nullptr || v[0] == '\0')
            return 0u;
        char *end = nullptr;
        const unsigned long n = std::strtoul(v, &end, 10);
        if (end == v || *end != '\0' || n > 1024)
            return 0u;
        return static_cast<unsigned>(n);
    }();
    return forced;
}

unsigned shardsDefault = 1;

/** CPU time this thread has consumed, in seconds. */
double
threadCpuSec()
{
    timespec ts{};
    clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
    return static_cast<double>(ts.tv_sec) +
           static_cast<double>(ts.tv_nsec) * 1e-9;
}

double watchdogDefaultSec = 0;

/** Absolute CLOCK_MONOTONIC deadline in ns; 0 = no watchdog armed. */
thread_local std::uint64_t watchdogDeadlineNs = 0;
/** The budget behind the armed deadline (for the timeout message). */
thread_local double watchdogBudgetSec = 0;

std::uint64_t
monotonicNs()
{
    timespec ts{};
    clock_gettime(CLOCK_MONOTONIC, &ts);
    return static_cast<std::uint64_t>(ts.tv_sec) * 1'000'000'000ull +
           static_cast<std::uint64_t>(ts.tv_nsec);
}

[[noreturn]] void
throwWatchdogTimeout(Tick now)
{
    std::ostringstream os;
    os << "job watchdog: simulation exceeded its " << watchdogBudgetSec
       << "s host-time budget (simulated tick " << now << ")";
    throw WatchdogTimeout(os.str());
}

/**
 * Cheap periodic deadline check for the run loops: `ticker` advances
 * once per scheduler round and the clock is only read every `mask + 1`
 * rounds, keeping the no-watchdog and not-yet-due cases at a couple of
 * predictable branches.
 */
inline void
watchdogPoll(std::uint32_t &ticker, std::uint32_t mask, Tick now)
{
    if ((++ticker & mask) != 0)
        return;
    if (watchdogDeadlineNs != 0 && monotonicNs() > watchdogDeadlineNs)
        throwWatchdogTimeout(now);
}

} // namespace

void
setJobWatchdogDefault(double seconds)
{
    watchdogDefaultSec = seconds > 0 ? seconds : 0;
}

double
jobWatchdogDefault()
{
    return watchdogDefaultSec;
}

ScopedWatchdog::ScopedWatchdog(double seconds)
    : prevDeadline_(watchdogDeadlineNs), prevBudget_(watchdogBudgetSec)
{
    if (seconds > 0) {
        watchdogDeadlineNs =
            monotonicNs() +
            static_cast<std::uint64_t>(seconds * 1e9);
        watchdogBudgetSec = seconds;
    }
}

ScopedWatchdog::~ScopedWatchdog()
{
    watchdogDeadlineNs = prevDeadline_;
    watchdogBudgetSec = prevBudget_;
}

bool
ScopedWatchdog::armed()
{
    return watchdogDeadlineNs != 0;
}

void
setBatchedExecutionDefault(bool batched)
{
    batchedDefault = batched;
}

bool
batchedExecutionDefault()
{
    return batchedDefault && !forcedNoBatch();
}

void
setSuperblockExecutionDefault(bool enabled)
{
    superblockDefault = enabled;
}

bool
superblockExecutionDefault()
{
    return superblockDefault && !forcedNoSuperblock();
}

void
setShardExecutionDefault(unsigned shards)
{
    shardsDefault = shards > 0 ? shards : 1;
}

unsigned
shardExecutionDefault()
{
    return shardsDefault;
}

Machine::Machine(const MachineConfig &config)
    : config_(config), memory_(&flatMemory_)
{
    fatal_if(config.numCores == 0, "machine needs at least one core");
    cpus_.reserve(config.numCores);
    for (CoreId i = 0; i < config.numCores; ++i) {
        cpus_.push_back(std::make_unique<Cpu>(
            i, *this, config.costs, config.pmuCounters,
            config.pmuFeatures));
    }
}

Machine::~Machine() = default;

Cpu &
Machine::cpu(CoreId id)
{
    panic_if(id >= cpus_.size(), "bad core id ", id);
    return *cpus_[id];
}

KernelIf *
Machine::kernel()
{
    panic_if(!kernel_, "no kernel installed on the machine");
    return kernel_;
}

void
Machine::setMemory(MemoryIf *memory)
{
    memory_ = memory ? memory : &flatMemory_;
}

void
Machine::setTimeline(TimelineRecorder *timeline)
{
    timeline_ = timeline;
    if (timeline == nullptr) {
        for (auto &cpu : cpus_)
            cpu->setTimelineLane(nullptr, 0);
        return;
    }
    timeline->attach(numCores());
    for (unsigned i = 0; i < numCores(); ++i)
        cpus_[i]->setTimelineLane(&timeline->lane(i),
                                  timeline->interval());
}

Tick
Machine::run()
{
    panic_if(!kernel_, "Machine::run without a kernel");
    // Benches with no campaign still honour --job-timeout: each run is
    // one job unless an outer ScopedWatchdog (a campaign's per-job
    // deadline, which may span several runs) is already armed.
    std::optional<ScopedWatchdog> wd;
    if (!ScopedWatchdog::armed() && jobWatchdogDefault() > 0)
        wd.emplace(jobWatchdogDefault());
    const unsigned shards = effectiveShards();
    if (shards > 1)
        return runSharded(shards);
    if (config_.batched && batchedExecutionDefault() &&
        ScopedExecutionClamp::batchedAllowed()) {
        return runBatched();
    }
    return runPerOp();
}

unsigned
Machine::effectiveShards() const
{
    unsigned s = config_.shards > 1 ? config_.shards
                                    : shardExecutionDefault();
    if (const unsigned f = forcedShardCount(); f > 0)
        s = f;
    // The lease loop is batched machinery; single-shard clamps force
    // the exact loop the contract's oracle is defined against.
    if (ScopedSingleShard::active() || faults_ != nullptr ||
        !(config_.batched && batchedExecutionDefault() &&
          ScopedExecutionClamp::batchedAllowed())) {
        s = 1;
    }
    if (s < 1)
        s = 1;
    if (s > numCores())
        s = numCores();
    return s;
}

/**
 * Reference scheduler: one op per global round. Kept verbatim as the
 * bit-identity oracle for runBatched() (--no-batch, the no-batch CI
 * job, and tests/test_batch.cc).
 */
Tick
Machine::runPerOp()
{
    // The reference loop never records or replays superblocks.
    for (auto &cpu : cpus_)
        cpu->setSuperblocksEnabled(false);
    auto earliest_busy = [this]() -> Cpu * {
        Cpu *best = nullptr;
        for (auto &cpu : cpus_) {
            if (cpu->idle())
                continue;
            if (!best || cpu->now() < best->now())
                best = cpu.get();
        }
        return best;
    };

    std::uint32_t wdTicker = 0;
    for (;;) {
        Cpu *best = earliest_busy();
        // Let timed sleepers whose deadline has passed (relative to
        // global time = the earliest busy core) wake onto idle cores.
        // A wake can install a thread on an idle core with an earlier
        // clock, so the earliest core is re-derived only in that case.
        // The kernel's setNextPoll hint elides the poll call entirely
        // while no sleeper deadline is in range (the common case).
        const Tick now = best ? best->now() : maxTick;
        if (now >= nextPollAt_) {
            nextPollAt_ = 0; // conservative unless the kernel re-arms
            if (kernel_->poll(now))
                best = earliest_busy();
        }
        if (!best) {
            if (!kernel_->allThreadsDone()) {
                panic("deadlock: live threads but no runnable core\n",
                      kernel_->blockedReport());
            }
            break;
        }
        panic_if(best->now() > config_.hardLimit,
                 "runaway simulation: core ", best->id(),
                 " passed the hard limit at tick ", best->now());
        best->step();
        ++batchRounds_;
        ++batchOps_;
        watchdogPoll(wdTicker, 0xFFF, best->now());
    }
    return maxTime();
}

/**
 * Horizon-batched scheduler. Executes the exact op sequence of
 * runPerOp(): the earliest busy core (ties broken by lowest id, as the
 * strict `<` scan does) would keep winning the per-op pick for every
 * tick strictly below the second-earliest core's key, so it may run
 * that far in one tight Cpu::runUntil loop, breaking out on anything
 * that could perturb the global schedule (kernel entry, cross-core-
 * visible ops, a due poll). Busy cores sit in a binary min-heap keyed
 * by (now, id); a batch that stayed core-local only grows the root's
 * key (sift down), while any kernel interaction rebuilds the heap.
 */
Tick
Machine::runBatched()
{
    const bool sb = config_.superblocks && superblockExecutionDefault() &&
                    ScopedExecutionClamp::superblocksAllowed();
    for (auto &cpu : cpus_)
        cpu->setSuperblocksEnabled(sb);
    // (now, id)-lexicographic order; strict-weak, heap comparator is
    // the inverse (std::*_heap build max-heaps).
    auto after = [](const Cpu *a, const Cpu *b) {
        return a->now() != b->now() ? a->now() > b->now()
                                    : a->id() > b->id();
    };
    std::vector<Cpu *> heap;
    heap.reserve(cpus_.size());
    auto rebuild = [&] {
        heap.clear();
        for (auto &cpu : cpus_) {
            if (!cpu->idle())
                heap.push_back(cpu.get());
        }
        std::make_heap(heap.begin(), heap.end(), after);
    };
    rebuild();

    std::uint32_t wdTicker = 0;
    for (;;) {
        Cpu *best = heap.empty() ? nullptr : heap.front();
        // Poll timing matches runPerOp: global time is the earliest
        // busy core's clock (maxTick when all cores idle), the hint is
        // cleared before the call, and a wake can change the earliest
        // core, so the ordering is re-derived only on poll() == true.
        const Tick now = best ? best->now() : maxTick;
        if (now >= nextPollAt_) {
            nextPollAt_ = 0; // conservative unless the kernel re-arms
            if (kernel_->poll(now)) {
                rebuild();
                best = heap.empty() ? nullptr : heap.front();
            }
        }
        if (!best) {
            if (!kernel_->allThreadsDone()) {
                panic("deadlock: live threads but no runnable core\n",
                      kernel_->blockedReport());
            }
            break;
        }

        // Safe horizon: `best` stays the per-op winner while
        // (now, id) < (second.now, second.id), i.e. for all ticks
        // strictly below second.now (+1 when best wins the id tie).
        // The root's children heap[1]/heap[2] are the only candidates
        // for the second-earliest key.
        Tick bound = maxTick;
        if (heap.size() > 1) {
            const Cpu *second = heap[1];
            if (heap.size() > 2 && after(second, heap[2]))
                second = heap[2];
            bound = second->now();
            if (best->id() < second->id() && bound != maxTick)
                ++bound;
        }

        // Pass the poll hint verbatim: 0 ("poll every round") makes
        // runUntil stop after its unconditional first op, exactly the
        // conservative per-op cadence.
        const Cpu::BatchResult res = best->runUntil(
            bound, nextPollAt_, config_.hardLimit, batchMaxOps);
        ++batchRounds_;
        batchOps_ += res.ops;
        watchdogPoll(wdTicker, 0xFF, best->now());

        if (res.interacted || best->idle()) {
            // Kernel touched the schedule (wakes, switches, exits,
            // poll re-arm): start the ordering over.
            rebuild();
        } else {
            // Only the root's clock advanced; restore the heap.
            std::pop_heap(heap.begin(), heap.end(), after);
            std::push_heap(heap.begin(), heap.end(), after);
        }
    }
    return maxTime();
}

/**
 * Sharded scheduler: the calling thread stays the serial coordinator —
 * it runs runBatched's exact pick/poll/bound protocol — and N-1 worker
 * threads run *leased* cores concurrently (Cpu::runLeased). A lease is
 * sound because leased cores execute only commuting ops: core-local
 * compute/region/fast-path-memory work that touches no state any other
 * core or the kernel can observe, so its interleaving with the serial
 * schedule is irrelevant. Anything else parks the core with the exact
 * global-order key of the withheld action, and the coordinator replays
 * it at that key's turn (Cpu::serialCatchUp) — producing the same
 * serial action sequence, in the same order, as runBatched and the
 * per-op reference loop. Leased horizons enter the coordinator's
 * safe-horizon bound exactly like busy cores' clocks, so no serial
 * action ever runs ahead of a leased core's possible next park. See
 * DESIGN.md "Sharded safe-horizon execution" for the full argument.
 */
Tick
Machine::runSharded(unsigned shards)
{
    const unsigned nWorkers = shards - 1;
    shardTelemetry_ = ShardTelemetry{};
    const bool sb = config_.superblocks && superblockExecutionDefault() &&
                    ScopedExecutionClamp::superblocksAllowed();
    for (auto &cpu : cpus_)
        cpu->setSuperblocksEnabled(sb);

    /**
     * A leased core parking this few ops back goes on cooldown. The
     * threshold is deliberately low: a streaming guest parks at every
     * L1 line crossing (~20-30 ops apart), and those leases are still
     * profitable — only guests that park within a handful of ops
     * (futex spinners, syscall loops) are worth benching back to the
     * serial loop.
     */
    constexpr unsigned leaseMinOps = 12;
    constexpr unsigned leaseStallRounds = 256;

    enum : std::uint8_t { Serial = 0, Active = 1, Parked = 2 };
    struct alignas(64) LeaseSlot
    {
        /**
         * Serial: the coordinator owns the core. Active: a worker
         * runs it; `horizon` is a published lower bound on the key of
         * its next serial action. Parked: the worker stopped at a
         * withheld action (reason/parkKey valid; the release store of
         * this state fences all core state written under the lease).
         */
        std::atomic<std::uint8_t> state{Serial};
        std::atomic<Tick> horizon{0};
        Cpu::LeasePark reason = Cpu::LeasePark::Chunk;
        Tick parkKey = 0;
        unsigned opsSinceLease = 0;
    };
    std::vector<LeaseSlot> slots(cpus_.size());
    /** Bumped by workers on every park / horizon advance. */
    std::atomic<std::uint64_t> progress{0};
    /** Bumped by the coordinator after leasing (wakes idle workers). */
    std::atomic<std::uint64_t> leaseSignal{0};
    std::atomic<bool> coordWaiting{false};
    std::atomic<bool> stop{false};
    std::vector<double> workerCpu(nWorkers, 0.0);
    std::vector<std::exception_ptr> workerErr(nWorkers);

    auto workerMain = [&](unsigned w) {
        try {
            for (;;) {
                const std::uint64_t signal =
                    leaseSignal.load(std::memory_order_acquire);
                if (stop.load(std::memory_order_acquire))
                    break;
                bool anyActive = false;
                for (std::size_t c = w; c < slots.size();
                     c += nWorkers) {
                    LeaseSlot &slot = slots[c];
                    if (slot.state.load(std::memory_order_acquire) !=
                        Active) {
                        continue;
                    }
                    anyActive = true;
                    Cpu &cpu = *cpus_[c];
                    const Cpu::LeaseResult res =
                        cpu.runLeased(config_.hardLimit, batchMaxOps);
                    slot.opsSinceLease += res.ops;
                    if (res.park == Cpu::LeasePark::Chunk) {
                        slot.horizon.store(cpu.now(),
                                           std::memory_order_release);
                    } else {
                        slot.reason = res.park;
                        slot.parkKey = cpu.parkKey();
                        slot.state.store(Parked,
                                         std::memory_order_release);
                    }
                    // seq_cst bump + flag read pair with the
                    // coordinator's flag write + epoch read, so a
                    // blocked coordinator always sees one of them.
                    progress.fetch_add(1);
                    if (coordWaiting.load())
                        progress.notify_all();
                }
                if (!anyActive)
                    leaseSignal.wait(signal, std::memory_order_acquire);
            }
        } catch (...) {
            workerErr[w] = std::current_exception();
            stop.store(true, std::memory_order_release);
            progress.fetch_add(1);
            progress.notify_all();
        }
        workerCpu[w] = threadCpuSec();
    };

    const double coordCpuStart = threadCpuSec();
    std::vector<std::thread> workers;
    workers.reserve(nWorkers);
    for (unsigned w = 0; w < nWorkers; ++w)
        workers.emplace_back(workerMain, w);

    auto joinWorkers = [&] {
        stop.store(true, std::memory_order_release);
        leaseSignal.fetch_add(1, std::memory_order_release);
        leaseSignal.notify_all();
        for (auto &t : workers) {
            if (t.joinable())
                t.join();
        }
        for (auto &cpu : cpus_) {
            const std::uint64_t ops = cpu->takeLeasedOps();
            batchOps_ += ops;
            shardTelemetry_.leasedOps += ops;
        }
    };

    /** (key, id) candidate for the global pick. */
    struct Cand
    {
        Tick key = maxTick;
        CoreId id = 0;
        /** -1 none, 0 serial busy, 1 parked, 2 leased horizon. */
        int type = -1;
        std::size_t idx = 0;
    };
    auto before = [](const Cand &a, const Cand &b) {
        return a.key != b.key ? a.key < b.key : a.id < b.id;
    };

    std::uint32_t wdTicker = 0;
    try {
        for (;;) {
            if (stop.load(std::memory_order_acquire))
                break; // worker failed; its exception rethrows below

            // Lease pass: hand parallel-safe busy cores to workers.
            // Placement only — never ordering — so the heuristics
            // (classification, cooldown) cannot affect outputs.
            bool leasedAny = false;
            for (std::size_t c = 0; c < slots.size(); ++c) {
                LeaseSlot &slot = slots[c];
                if (slot.state.load(std::memory_order_relaxed) !=
                    Serial) {
                    continue;
                }
                Cpu &cpu = *cpus_[c];
                GuestContext *ctx = cpu.current();
                if (ctx == nullptr || !ctx->parallelSafe)
                    continue;
                if (ctx->leaseStall > 0) {
                    --ctx->leaseStall;
                    continue;
                }
                slot.opsSinceLease = 0;
                slot.horizon.store(cpu.now(),
                                   std::memory_order_relaxed);
                slot.state.store(Active, std::memory_order_release);
                leasedAny = true;
            }
            if (leasedAny) {
                leaseSignal.fetch_add(1, std::memory_order_release);
                leaseSignal.notify_all();
            }

            // Epoch read BEFORE the scan: a park or horizon advance
            // after this load re-runs the scan instead of blocking.
            const std::uint64_t progressSeen =
                progress.load(std::memory_order_acquire);

            // Global pick over serial clocks, park keys and leased
            // horizons — runBatched's (now, id) order with horizons
            // standing in (conservatively) for leased cores' clocks.
            Cand best, second;
            auto offer = [&](Tick key, CoreId id, int type,
                             std::size_t idx) {
                const Cand c{key, id, type, idx};
                if (best.type < 0 || before(c, best)) {
                    second = best;
                    best = c;
                } else if (second.type < 0 || before(c, second)) {
                    second = c;
                }
            };
            auto scan = [&] {
                best = Cand{};
                second = Cand{};
                for (std::size_t c = 0; c < slots.size(); ++c) {
                    LeaseSlot &slot = slots[c];
                    const std::uint8_t st =
                        slot.state.load(std::memory_order_acquire);
                    Cpu &cpu = *cpus_[c];
                    if (st == Serial) {
                        if (!cpu.idle())
                            offer(cpu.now(), cpu.id(), 0, c);
                    } else if (st == Parked) {
                        offer(slot.parkKey, cpu.id(), 1, c);
                    } else {
                        offer(slot.horizon.load(
                                  std::memory_order_acquire),
                              cpu.id(), 2, c);
                    }
                }
            };
            scan();

            // Poll protocol as in runBatched: global time is the pick
            // key (leased cores cannot observe wakes, so a horizon
            // standing in for one is safe), hint cleared before the
            // call, busy set re-derived on poll() == true. The
            // re-derived pick must run in THIS iteration: the oracle
            // polls again only after that round, so looping back to
            // the top (which would re-poll with the re-armed hint
            // already due — poll(maxTick) wakes one sleeper at a
            // time) would wake later sleepers before the woken
            // thread's first op and change the schedule.
            const Tick globalNow = best.type < 0 ? maxTick : best.key;
            if (globalNow >= nextPollAt_) {
                nextPollAt_ = 0;
                if (kernel_->poll(globalNow))
                    scan();
            }
            if (best.type < 0) {
                if (!kernel_->allThreadsDone()) {
                    panic("deadlock: live threads but no runnable "
                          "core\n",
                          kernel_->blockedReport());
                }
                break;
            }
            watchdogPoll(wdTicker, 0xFF, globalNow);

            if (best.type == 2) {
                // The minimum is a leased horizon: nothing serial may
                // run yet. Block until a worker parks or advances.
                coordWaiting.store(true);
                if (progress.load() == progressSeen)
                    progress.wait(progressSeen);
                coordWaiting.store(false, std::memory_order_relaxed);
                continue;
            }

            if (best.type == 1) {
                // Reclaim the parked core (the acquire load above
                // fenced everything the worker wrote) and run the
                // withheld action at its exact global-order turn.
                LeaseSlot &slot = slots[best.idx];
                Cpu &cpu = *cpus_[best.idx];
                const Cpu::LeasePark reason = slot.reason;
                if (slot.opsSinceLease < leaseMinOps) {
                    if (GuestContext *ctx = cpu.current())
                        ctx->leaseStall = leaseStallRounds;
                }
                slot.state.store(Serial, std::memory_order_relaxed);
                cpu.serialCatchUp(reason);
                ++batchRounds_;
                if (reason == Cpu::LeasePark::PendingOp)
                    ++batchOps_;
                continue;
            }

            // Serial round: runBatched's bound, additionally clamped
            // by park keys and leased horizons. A horizon is a lower
            // bound on the leased core's next serial key, so clamping
            // by it is conservative and the tie-break stays valid.
            Cpu &cpu = *cpus_[best.idx];
            Tick bound = maxTick;
            if (second.type >= 0) {
                bound = second.key;
                if (best.id < second.id && bound != maxTick)
                    ++bound;
            }
            const Cpu::BatchResult res = cpu.runUntil(
                bound, nextPollAt_, config_.hardLimit, batchMaxOps);
            ++batchRounds_;
            batchOps_ += res.ops;
        }
    } catch (...) {
        // Watchdog timeout (or any coordinator failure): stop the
        // fleet before unwinding so no worker touches a dying Machine.
        joinWorkers();
        throw;
    }
    joinWorkers();
    for (unsigned w = 0; w < nWorkers; ++w) {
        if (workerErr[w])
            std::rethrow_exception(workerErr[w]);
    }
    shardTelemetry_.shards = shards;
    shardTelemetry_.coordinatorCpuSec = threadCpuSec() - coordCpuStart;
    shardTelemetry_.workerCpuSec = std::move(workerCpu);
    return maxTime();
}

SuperblockStats
Machine::superblockStats() const
{
    SuperblockStats s;
    for (const auto &cpu : cpus_) {
        const SuperblockStats &c = cpu->superblockStats();
        s.blocksFormed += c.blocksFormed;
        s.entries += c.entries;
        s.fullCommits += c.fullCommits;
        s.partialFlushes += c.partialFlushes;
        s.entryMisses += c.entryMisses;
        s.opsReplayed += c.opsReplayed;
        s.opsRecorded += c.opsRecorded;
        s.stallBridges += c.stallBridges;
        s.refusedFaults += c.refusedFaults;
        s.refusedPmi += c.refusedPmi;
        s.refusedHorizon += c.refusedHorizon;
        s.refusedBudget += c.refusedBudget;
        s.refusedOverflow += c.refusedOverflow;
        s.refusedMemView += c.refusedMemView;
    }
    return s;
}

Tick
Machine::maxTime() const
{
    Tick t = 0;
    for (const auto &cpu : cpus_)
        t = std::max(t, cpu->now());
    return t;
}

} // namespace limit::sim
