#include "sim/machine.hh"

#include "base/logging.hh"
#include "sim/kernel_if.hh"

namespace limit::sim {

Machine::Machine(const MachineConfig &config)
    : config_(config), memory_(&flatMemory_)
{
    fatal_if(config.numCores == 0, "machine needs at least one core");
    cpus_.reserve(config.numCores);
    for (CoreId i = 0; i < config.numCores; ++i) {
        cpus_.push_back(std::make_unique<Cpu>(
            i, *this, config.costs, config.pmuCounters,
            config.pmuFeatures));
    }
}

Machine::~Machine() = default;

Cpu &
Machine::cpu(CoreId id)
{
    panic_if(id >= cpus_.size(), "bad core id ", id);
    return *cpus_[id];
}

KernelIf *
Machine::kernel()
{
    panic_if(!kernel_, "no kernel installed on the machine");
    return kernel_;
}

void
Machine::setMemory(MemoryIf *memory)
{
    memory_ = memory ? memory : &flatMemory_;
}

Tick
Machine::run()
{
    panic_if(!kernel_, "Machine::run without a kernel");
    auto earliest_busy = [this]() -> Cpu * {
        Cpu *best = nullptr;
        for (auto &cpu : cpus_) {
            if (cpu->idle())
                continue;
            if (!best || cpu->now() < best->now())
                best = cpu.get();
        }
        return best;
    };

    for (;;) {
        Cpu *best = earliest_busy();
        // Let timed sleepers whose deadline has passed (relative to
        // global time = the earliest busy core) wake onto idle cores.
        // A wake can install a thread on an idle core with an earlier
        // clock, so the earliest core is re-derived only in that case.
        // The kernel's setNextPoll hint elides the poll call entirely
        // while no sleeper deadline is in range (the common case).
        const Tick now = best ? best->now() : maxTick;
        if (now >= nextPollAt_) {
            nextPollAt_ = 0; // conservative unless the kernel re-arms
            if (kernel_->poll(now))
                best = earliest_busy();
        }
        if (!best) {
            if (!kernel_->allThreadsDone()) {
                panic("deadlock: live threads but no runnable core\n",
                      kernel_->blockedReport());
            }
            break;
        }
        panic_if(best->now() > config_.hardLimit,
                 "runaway simulation: core ", best->id(),
                 " passed the hard limit at tick ", best->now());
        best->step();
    }
    return maxTime();
}

Tick
Machine::maxTime() const
{
    Tick t = 0;
    for (const auto &cpu : cpus_)
        t = std::max(t, cpu->now());
    return t;
}

} // namespace limit::sim
