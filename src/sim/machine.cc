#include "sim/machine.hh"

#include <algorithm>
#include <cstdlib>
#include <ctime>
#include <optional>
#include <sstream>

#include "base/logging.hh"
#include "sim/kernel_if.hh"

namespace limit::sim {

namespace {

/** Cap on ops per batch; any positive value is bit-identical. */
constexpr unsigned batchMaxOps = 4096;

bool
forcedNoBatch()
{
    static const bool forced = [] {
        const char *v = std::getenv("LIMITPP_FORCE_NO_BATCH");
        return v != nullptr && v[0] != '\0' &&
               !(v[0] == '0' && v[1] == '\0');
    }();
    return forced;
}

bool batchedDefault = true;

bool
forcedNoSuperblock()
{
    static const bool forced = [] {
        const char *v = std::getenv("LIMITPP_FORCE_NO_SUPERBLOCK");
        return v != nullptr && v[0] != '\0' &&
               !(v[0] == '0' && v[1] == '\0');
    }();
    return forced;
}

bool superblockDefault = true;

double watchdogDefaultSec = 0;

/** Absolute CLOCK_MONOTONIC deadline in ns; 0 = no watchdog armed. */
thread_local std::uint64_t watchdogDeadlineNs = 0;
/** The budget behind the armed deadline (for the timeout message). */
thread_local double watchdogBudgetSec = 0;

std::uint64_t
monotonicNs()
{
    timespec ts{};
    clock_gettime(CLOCK_MONOTONIC, &ts);
    return static_cast<std::uint64_t>(ts.tv_sec) * 1'000'000'000ull +
           static_cast<std::uint64_t>(ts.tv_nsec);
}

[[noreturn]] void
throwWatchdogTimeout(Tick now)
{
    std::ostringstream os;
    os << "job watchdog: simulation exceeded its " << watchdogBudgetSec
       << "s host-time budget (simulated tick " << now << ")";
    throw WatchdogTimeout(os.str());
}

/**
 * Cheap periodic deadline check for the run loops: `ticker` advances
 * once per scheduler round and the clock is only read every `mask + 1`
 * rounds, keeping the no-watchdog and not-yet-due cases at a couple of
 * predictable branches.
 */
inline void
watchdogPoll(std::uint32_t &ticker, std::uint32_t mask, Tick now)
{
    if ((++ticker & mask) != 0)
        return;
    if (watchdogDeadlineNs != 0 && monotonicNs() > watchdogDeadlineNs)
        throwWatchdogTimeout(now);
}

} // namespace

void
setJobWatchdogDefault(double seconds)
{
    watchdogDefaultSec = seconds > 0 ? seconds : 0;
}

double
jobWatchdogDefault()
{
    return watchdogDefaultSec;
}

ScopedWatchdog::ScopedWatchdog(double seconds)
    : prevDeadline_(watchdogDeadlineNs), prevBudget_(watchdogBudgetSec)
{
    if (seconds > 0) {
        watchdogDeadlineNs =
            monotonicNs() +
            static_cast<std::uint64_t>(seconds * 1e9);
        watchdogBudgetSec = seconds;
    }
}

ScopedWatchdog::~ScopedWatchdog()
{
    watchdogDeadlineNs = prevDeadline_;
    watchdogBudgetSec = prevBudget_;
}

bool
ScopedWatchdog::armed()
{
    return watchdogDeadlineNs != 0;
}

void
setBatchedExecutionDefault(bool batched)
{
    batchedDefault = batched;
}

bool
batchedExecutionDefault()
{
    return batchedDefault && !forcedNoBatch();
}

void
setSuperblockExecutionDefault(bool enabled)
{
    superblockDefault = enabled;
}

bool
superblockExecutionDefault()
{
    return superblockDefault && !forcedNoSuperblock();
}

Machine::Machine(const MachineConfig &config)
    : config_(config), memory_(&flatMemory_)
{
    fatal_if(config.numCores == 0, "machine needs at least one core");
    cpus_.reserve(config.numCores);
    for (CoreId i = 0; i < config.numCores; ++i) {
        cpus_.push_back(std::make_unique<Cpu>(
            i, *this, config.costs, config.pmuCounters,
            config.pmuFeatures));
    }
}

Machine::~Machine() = default;

Cpu &
Machine::cpu(CoreId id)
{
    panic_if(id >= cpus_.size(), "bad core id ", id);
    return *cpus_[id];
}

KernelIf *
Machine::kernel()
{
    panic_if(!kernel_, "no kernel installed on the machine");
    return kernel_;
}

void
Machine::setMemory(MemoryIf *memory)
{
    memory_ = memory ? memory : &flatMemory_;
}

void
Machine::setTimeline(TimelineRecorder *timeline)
{
    timeline_ = timeline;
    if (timeline == nullptr) {
        for (auto &cpu : cpus_)
            cpu->setTimelineLane(nullptr, 0);
        return;
    }
    timeline->attach(numCores());
    for (unsigned i = 0; i < numCores(); ++i)
        cpus_[i]->setTimelineLane(&timeline->lane(i),
                                  timeline->interval());
}

Tick
Machine::run()
{
    panic_if(!kernel_, "Machine::run without a kernel");
    // Benches with no campaign still honour --job-timeout: each run is
    // one job unless an outer ScopedWatchdog (a campaign's per-job
    // deadline, which may span several runs) is already armed.
    std::optional<ScopedWatchdog> wd;
    if (!ScopedWatchdog::armed() && jobWatchdogDefault() > 0)
        wd.emplace(jobWatchdogDefault());
    if (config_.batched && batchedExecutionDefault() &&
        ScopedExecutionClamp::batchedAllowed()) {
        return runBatched();
    }
    return runPerOp();
}

/**
 * Reference scheduler: one op per global round. Kept verbatim as the
 * bit-identity oracle for runBatched() (--no-batch, the no-batch CI
 * job, and tests/test_batch.cc).
 */
Tick
Machine::runPerOp()
{
    // The reference loop never records or replays superblocks.
    for (auto &cpu : cpus_)
        cpu->setSuperblocksEnabled(false);
    auto earliest_busy = [this]() -> Cpu * {
        Cpu *best = nullptr;
        for (auto &cpu : cpus_) {
            if (cpu->idle())
                continue;
            if (!best || cpu->now() < best->now())
                best = cpu.get();
        }
        return best;
    };

    std::uint32_t wdTicker = 0;
    for (;;) {
        Cpu *best = earliest_busy();
        // Let timed sleepers whose deadline has passed (relative to
        // global time = the earliest busy core) wake onto idle cores.
        // A wake can install a thread on an idle core with an earlier
        // clock, so the earliest core is re-derived only in that case.
        // The kernel's setNextPoll hint elides the poll call entirely
        // while no sleeper deadline is in range (the common case).
        const Tick now = best ? best->now() : maxTick;
        if (now >= nextPollAt_) {
            nextPollAt_ = 0; // conservative unless the kernel re-arms
            if (kernel_->poll(now))
                best = earliest_busy();
        }
        if (!best) {
            if (!kernel_->allThreadsDone()) {
                panic("deadlock: live threads but no runnable core\n",
                      kernel_->blockedReport());
            }
            break;
        }
        panic_if(best->now() > config_.hardLimit,
                 "runaway simulation: core ", best->id(),
                 " passed the hard limit at tick ", best->now());
        best->step();
        ++batchRounds_;
        ++batchOps_;
        watchdogPoll(wdTicker, 0xFFF, best->now());
    }
    return maxTime();
}

/**
 * Horizon-batched scheduler. Executes the exact op sequence of
 * runPerOp(): the earliest busy core (ties broken by lowest id, as the
 * strict `<` scan does) would keep winning the per-op pick for every
 * tick strictly below the second-earliest core's key, so it may run
 * that far in one tight Cpu::runUntil loop, breaking out on anything
 * that could perturb the global schedule (kernel entry, cross-core-
 * visible ops, a due poll). Busy cores sit in a binary min-heap keyed
 * by (now, id); a batch that stayed core-local only grows the root's
 * key (sift down), while any kernel interaction rebuilds the heap.
 */
Tick
Machine::runBatched()
{
    const bool sb = config_.superblocks && superblockExecutionDefault() &&
                    ScopedExecutionClamp::superblocksAllowed();
    for (auto &cpu : cpus_)
        cpu->setSuperblocksEnabled(sb);
    // (now, id)-lexicographic order; strict-weak, heap comparator is
    // the inverse (std::*_heap build max-heaps).
    auto after = [](const Cpu *a, const Cpu *b) {
        return a->now() != b->now() ? a->now() > b->now()
                                    : a->id() > b->id();
    };
    std::vector<Cpu *> heap;
    heap.reserve(cpus_.size());
    auto rebuild = [&] {
        heap.clear();
        for (auto &cpu : cpus_) {
            if (!cpu->idle())
                heap.push_back(cpu.get());
        }
        std::make_heap(heap.begin(), heap.end(), after);
    };
    rebuild();

    std::uint32_t wdTicker = 0;
    for (;;) {
        Cpu *best = heap.empty() ? nullptr : heap.front();
        // Poll timing matches runPerOp: global time is the earliest
        // busy core's clock (maxTick when all cores idle), the hint is
        // cleared before the call, and a wake can change the earliest
        // core, so the ordering is re-derived only on poll() == true.
        const Tick now = best ? best->now() : maxTick;
        if (now >= nextPollAt_) {
            nextPollAt_ = 0; // conservative unless the kernel re-arms
            if (kernel_->poll(now)) {
                rebuild();
                best = heap.empty() ? nullptr : heap.front();
            }
        }
        if (!best) {
            if (!kernel_->allThreadsDone()) {
                panic("deadlock: live threads but no runnable core\n",
                      kernel_->blockedReport());
            }
            break;
        }

        // Safe horizon: `best` stays the per-op winner while
        // (now, id) < (second.now, second.id), i.e. for all ticks
        // strictly below second.now (+1 when best wins the id tie).
        // The root's children heap[1]/heap[2] are the only candidates
        // for the second-earliest key.
        Tick bound = maxTick;
        if (heap.size() > 1) {
            const Cpu *second = heap[1];
            if (heap.size() > 2 && after(second, heap[2]))
                second = heap[2];
            bound = second->now();
            if (best->id() < second->id() && bound != maxTick)
                ++bound;
        }

        // Pass the poll hint verbatim: 0 ("poll every round") makes
        // runUntil stop after its unconditional first op, exactly the
        // conservative per-op cadence.
        const Cpu::BatchResult res = best->runUntil(
            bound, nextPollAt_, config_.hardLimit, batchMaxOps);
        ++batchRounds_;
        batchOps_ += res.ops;
        watchdogPoll(wdTicker, 0xFF, best->now());

        if (res.interacted || best->idle()) {
            // Kernel touched the schedule (wakes, switches, exits,
            // poll re-arm): start the ordering over.
            rebuild();
        } else {
            // Only the root's clock advanced; restore the heap.
            std::pop_heap(heap.begin(), heap.end(), after);
            std::push_heap(heap.begin(), heap.end(), after);
        }
    }
    return maxTime();
}

Tick
Machine::maxTime() const
{
    Tick t = 0;
    for (const auto &cpu : cpus_)
        t = std::max(t, cpu->now());
    return t;
}

} // namespace limit::sim
