/**
 * @file
 * Decoded-op superblock trace cache for the batched hot path.
 *
 * A superblock is one period of a straight-line, kernel-free guest
 * loop body — a short sequence of core-local Compute/Load/Store ops —
 * decoded once from the live op stream and stored with precomputed
 * per-op validation fields, prefix-summed event totals, and a
 * conservative per-iteration cycle/event upper bound. On later
 * iterations the Cpu *replays* the block: each incoming op is checked
 * against the recorded micro-op (exact operand match for compute,
 * fast-path-hit preconditions for memory) and, when it matches, is
 * retired with a single clock add instead of the full awaiter →
 * tryInlineOp → exec → ledger → PMU pipeline. The deferred event
 * deltas are committed in one Cpu::applyFewEvents call when the
 * replay ends.
 *
 * Exactness contract (see DESIGN.md "Superblock replay"): replay never
 * *predicts* the op stream — the guest coroutine still runs and still
 * computes every address host-side; replay only validates that each op
 * it consumes is bit-identical in effect to what per-op execution
 * would have produced. Any mismatch, horizon limit, pending PMI,
 * possible counter wrap, or active fault plan refuses or ends the
 * replay and falls back to the normal path, so the published tables
 * stay byte-identical with the cache on, off (--no-superblock /
 * LIMITPP_FORCE_NO_SUPERBLOCK), or under the per-op reference loop.
 */

#ifndef LIMIT_SIM_SUPERBLOCK_HH
#define LIMIT_SIM_SUPERBLOCK_HH

#include <array>
#include <cstdint>
#include <vector>

#include "sim/cost_model.hh"
#include "sim/memory_if.hh"
#include "sim/types.hh"

namespace limit::sim {

// Completed by guest.hh; micro-ops only store and compare values.
enum class OpKind : std::uint8_t;

/**
 * One decoded op of a superblock. Validation fields identify the op
 * exactly; the prefix sums let a replay that ends anywhere commit its
 * ledger/PMU deltas in O(1) instead of accumulating per op.
 */
struct MicroOp
{
    OpKind kind{};
    /** Compute: recorded instruction count (validated against the op). */
    std::uint64_t instrs = 0;
    /** Compute: recorded profile (validated bitwise against the op). */
    ComputeProfile profile{};
    /** Compute: instrs * branchFrac, precomputed for the residue step. */
    double branchStep = 0.0;
    /**
     * Residue-independent cycles: the compute base cost (before the
     * mispredict term) or the memory fast-path latency.
     */
    Tick baseCost = 0;

    /** @name Cumulative totals over ops [0, this) of one iteration @{ */
    Tick prefixBase = 0;
    std::uint64_t prefixInstrs = 0;
    std::uint64_t prefixLoads = 0;
    std::uint64_t prefixStores = 0;
    /** @} */
};

/** One formed superblock: decoded ops plus per-iteration invariants. */
struct Superblock
{
    std::vector<MicroOp> ops;

    /** @name Exact per-iteration totals (residue-independent parts) @{ */
    Tick iterBase = 0;
    std::uint64_t iterInstrs = 0;
    std::uint64_t iterLoads = 0;
    std::uint64_t iterStores = 0;
    /** @} */

    /** Number of Load/Store ops per iteration. */
    unsigned numMemOps = 0;
    /** Fast-path latency every memory op was recorded with. */
    Tick memLat = 0;
    /**
     * Conservative upper bound on one iteration's cycles, including
     * the worst-case mispredict penalty term. Never zero.
     */
    Tick maxIterCycles = 1;
    /**
     * Per-event upper bound on one iteration's deltas (dense, indexed
     * by EventType) for the PMU no-wrap entry check.
     */
    std::uint64_t iterUb[numEventTypes] = {};

    /** @name Adaptive control / bookkeeping @{ */
    std::uint64_t replays = 0;
    std::uint32_t failStreak = 0;
    /** Recorded-op count before which entry is not attempted. */
    std::uint64_t dormantUntil = 0;
    /** @} */
};

/** Machine-wide replay statistics (reported via metrics/meta). */
struct SuperblockStats
{
    std::uint64_t blocksFormed = 0;
    /** Successful sbTryEnter calls (replay armed). */
    std::uint64_t entries = 0;
    /** Replays that ran their full planned iteration count. */
    std::uint64_t fullCommits = 0;
    /** Replays ended early by an op mismatch or thread exit. */
    std::uint64_t partialFlushes = 0;
    /** Replays whose very first op already mismatched. */
    std::uint64_t entryMisses = 0;
    /** Ops retired through replay (the numerator of the hit rate). */
    std::uint64_t opsReplayed = 0;
    /** Ops recorded by the detectors (per-thread, summed). */
    std::uint64_t opsRecorded = 0;
    /**
     * Mid-replay slow memory ops bridged without leaving the replay:
     * the span so far was committed, the op ran on the full path, and
     * the same block resumed at the next offset (Cpu::sbStallMem).
     */
    std::uint64_t stallBridges = 0;

    /** @name Entry refusals by reason @{ */
    std::uint64_t refusedFaults = 0;
    std::uint64_t refusedPmi = 0;
    std::uint64_t refusedHorizon = 0;
    std::uint64_t refusedBudget = 0;
    std::uint64_t refusedOverflow = 0;
    std::uint64_t refusedMemView = 0;
    /** @} */
};

/**
 * Live replay cursor, embedded in GuestContext so the awaiter fast
 * path (GuestContext::sbStep) touches one cache line of state.
 * `cur != nullptr` means a replay is in progress.
 */
struct SbReplay
{
    const MicroOp *cur = nullptr;
    const MicroOp *opsBegin = nullptr;
    const MicroOp *opsEnd = nullptr;
    /** Iterations remaining, counting the one in progress. */
    std::uint64_t itersLeft = 0;
    /** Iterations planned at entry. */
    std::uint64_t itersTotal = 0;
    /** Op offset the replay entered at (mid-block resume). */
    std::uint32_t startOffset = 0;

    /**
     * @name Fast-path assumptions, flattened for the per-op check
     *
     * Scalar copies of the FastPeekView fields sbStep touches, laid
     * out here so the check is a handful of one-level loads (the
     * compiler cannot keep them in registers across an opaque
     * suspension point). `pageVal` is the *value* behind peek
     * .lastPage: it only changes inside tlb.access/fill, which never
     * run between two validated ops of a replay (a bridged slow op
     * refreshes it in sbResume), so comparing against the copy is
     * exactly the live-pointer compare. `waysShift` is log2(ways) —
     * entry refuses mem replay for non-power-of-two ways.
     * @{
     */
    bool memAlwaysHit = false;
    unsigned pageShift = 0;
    unsigned lineShift = 0;
    unsigned waysShift = 0;
    std::uint64_t pageVal = 0;
    std::uint64_t setMask = 0;
    const std::uint64_t *mruTags = nullptr;
    /**
     * Last cache line that passed the page + MRU validation. The
     * assumptions above are frozen for the whole span (no access runs
     * between validated ops), so an op on the same line as the
     * previous one is valid by the previous op's check — same line
     * implies same page, and the MRU tags cannot have changed. Reset
     * to the poison value at entry and after every stall bridge (the
     * bridged access mutates the tags).
     */
    std::uint64_t lastGoodLine = ~0ull;
    /** @} */

    /** For sbPendingTicks: the mid-replay exact-time reconstruction. */
    Tick mispredictPenalty = 0;
    /** @name Residue-driven accumulators (everything else is prefix) @{ */
    std::uint64_t accBranches = 0;
    std::uint64_t accMisses = 0;
    /** @} */
    /** Cold copy of the model's fast-path view (resume refresh). */
    FastPeekView peek{};
    Superblock *block = nullptr;
};

/**
 * Per-thread superblock detector: a small ring of recently recorded
 * ops plus a lag-based periodicity screen. An op stream position is a
 * formation candidate when the same op recurred `lag` positions ago
 * (hash table `lastSeen_`) and the last 2·lag ops each matched their
 * lag-distant predecessor exactly; the block is then the most recent
 * period. Non-replayable ops (kernel interaction, slow memory
 * accesses, region markers) reset the screen so a block can never
 * span a discontinuity.
 */
class SuperblockState
{
  public:
    SuperblockState(SuperblockStats *stats, Tick mispredict_penalty)
        : stats_(stats), mispredictPenalty_(mispredict_penalty)
    {
        lastSeen_.fill(~0ull);
    }

    /**
     * Retarget the stats sink. Stats are kept per *core* (so leased
     * cores never write a shared counter block); a thread that
     * migrates re-binds to its new core's block on install.
     */
    void setStats(SuperblockStats *stats) { stats_ = stats; }

    /** Longest loop body (in ops) a superblock may cover. */
    static constexpr unsigned maxPeriod = 16;
    /** Formed blocks kept per thread (round-robin eviction). */
    static constexpr unsigned maxBlocks = 4;

    /**
     * Record one op executed on the normal inline path. A zero
     * `fast_lat` marks a memory op that missed the fast path (not
     * replayable as recorded).
     */
    void record(OpKind kind, std::uint64_t instrs,
                const ComputeProfile &profile, Tick fast_lat);

    /**
     * Gate in front of record(): false while the detector naps.
     * Detection costs a hash, a ring store, and a table update on
     * every inline op, which is pure overhead on op streams that
     * never loop (scheduler-heavy workloads). A thread that records
     * `activeWindow` consecutive ops without periodicity evidence
     * puts its detector to sleep for exponentially growing windows
     * (capped at maxSleep, reset to the first window by any replay
     * commit via noteReplayed), so such workloads pay one decrement
     * per op instead of the full detector. Purely a host-side
     * throttle: replay output is bit-identical, only *when* blocks
     * can form changes.
     */
    bool
    shouldRecord()
    {
        if (sleepLeft_ > 0) {
            --sleepLeft_;
            return false;
        }
        return true;
    }

    /** A replay span committed: detection is paying for itself. */
    void
    noteReplayed()
    {
        idle_ = 0;
        sleepLeft_ = 0;
        backoff_ = firstSleep;
    }

    /** A non-inline op (syscall, atomic, PMC read, ...) ran. */
    void
    noteDiscontinuity()
    {
        candPeriod_ = 0;
        streak_ = 0;
        seq_ = 0;
        consumeHintFreshness();
    }

    /** Armed block whose next expected op has `kind`, if any. */
    Superblock *
    candidateFor(OpKind kind)
    {
        for (unsigned i = 0; i < blockCount_; ++i) {
            Superblock &b = blocks_[i];
            if (b.ops[0].kind == kind && n_ >= b.dormantUntil)
                return &b;
        }
        return nullptr;
    }

    /**
     * Arm the mid-block resume hint: after a partial flush at op
     * `pos - 1`, the op after the mismatch is expected at `pos`. The
     * hint survives exactly one recorded op (the mismatching one).
     */
    void
    armHint(Superblock *block, std::uint32_t pos)
    {
        hintBlock_ = block;
        hintPos_ = pos;
        hintFresh_ = true;
    }

    /** Consume the armed hint (cleared by this call). */
    Superblock *
    takeHint(std::uint32_t &pos)
    {
        Superblock *b = hintBlock_;
        pos = hintPos_;
        hintBlock_ = nullptr;
        return b;
    }

    /** Total ops recorded by this thread (dormancy clock). */
    std::uint64_t recorded() const { return n_; }

    SuperblockStats &stats() { return *stats_; }

  private:
    static constexpr unsigned histSize = 64; // power of two, > 2*maxPeriod

    struct Rec
    {
        MicroOp op;
        std::uint64_t fp = 0;
    };

    /** Keep the hint through the one op recorded right after a flush. */
    bool
    consumeHintFreshness()
    {
        const bool fresh = hintFresh_;
        hintFresh_ = false;
        if (!fresh)
            hintBlock_ = nullptr;
        return fresh;
    }

    /** One more op without periodicity evidence; maybe start a nap. */
    void
    noteIdle()
    {
        if (++idle_ >= activeWindow) {
            sleepLeft_ = backoff_;
            backoff_ = backoff_ < maxSleep ? backoff_ * 2 : maxSleep;
            idle_ = 0;
        }
    }

    void tryForm();

    /** @name Detector nap state (see shouldRecord) @{ */
    static constexpr std::uint64_t activeWindow = 4096;
    static constexpr std::uint64_t firstSleep = 4096;
    static constexpr std::uint64_t maxSleep = 1u << 20;
    std::uint64_t idle_ = 0;
    std::uint64_t sleepLeft_ = 0;
    std::uint64_t backoff_ = firstSleep;
    /** @} */

    SuperblockStats *stats_;
    Tick mispredictPenalty_;

    std::array<Rec, histSize> hist_{};
    /** Ops recorded since thread start (ring write position). */
    std::uint64_t n_ = 0;
    /** Contiguous replayable ops since the last discontinuity. */
    std::uint64_t seq_ = 0;
    /** fp-hash slot → last op index with that hash. */
    std::array<std::uint64_t, 64> lastSeen_;
    unsigned candPeriod_ = 0;
    unsigned streak_ = 0;

    std::array<Superblock, maxBlocks> blocks_{};
    unsigned blockCount_ = 0;
    unsigned nextEvict_ = 0;

    Superblock *hintBlock_ = nullptr;
    std::uint32_t hintPos_ = 0;
    bool hintFresh_ = false;
};

} // namespace limit::sim

#endif // LIMIT_SIM_SUPERBLOCK_HH
