/**
 * @file
 * Interface the CPU uses for data-memory access timing and events.
 */

#ifndef LIMIT_SIM_MEMORY_IF_HH
#define LIMIT_SIM_MEMORY_IF_HH

#include "sim/types.hh"

namespace limit::sim {

/** Timing/event outcome of one memory access. */
struct MemAccessResult
{
    Tick latency = 4;
    EventDeltas deltas{};
};

/** Pluggable data-memory model (see mem/CacheHierarchy). */
class MemoryIf
{
  public:
    virtual ~MemoryIf() = default;

    /**
     * Access one word (hot path): accumulate miss events into
     * `deltas` and return the access latency. The CPU calls this once
     * per load/store/atomic, so implementations should not allocate.
     * @param core   issuing core (selects private caches)
     * @param addr   virtual address
     * @param write  store vs. load
     * @param atomic locked RMW access (coherence cost may differ)
     * @param deltas event deltas accumulated into (not cleared first)
     */
    virtual Tick access(CoreId core, Addr addr, bool write, bool atomic,
                        EventDeltas &deltas) = 0;

    /**
     * Optional hot-path probe for a plain (non-atomic) access the
     * implementation can complete without producing any event deltas
     * — e.g. a same-line L1 + same-page TLB hit. Must be *exactly*
     * equivalent to access(): same latency, same internal state
     * transitions (hit counters, recency), no observable difference.
     * @return the access latency, or 0 to decline — the caller then
     *         takes the full access() path (an implementation whose
     *         genuine hit latency is 0 simply never fast-paths).
     */
    virtual Tick
    tryFastAccess(CoreId core, Addr addr, bool write)
    {
        (void)core;
        (void)addr;
        (void)write;
        return 0;
    }

    /** Convenience form returning a fresh result (tests, inspection). */
    MemAccessResult
    access(CoreId core, Addr addr, bool write, bool atomic)
    {
        MemAccessResult r;
        r.latency = access(core, addr, write, atomic, r.deltas);
        return r;
    }
};

/** Trivial fixed-latency memory used when no hierarchy is attached. */
class FlatMemory : public MemoryIf
{
  public:
    explicit FlatMemory(Tick latency = 4) : latency_(latency) {}

    using MemoryIf::access;

    Tick
    access(CoreId, Addr, bool, bool atomic, EventDeltas &) override
    {
        return latency_ + (atomic ? atomicExtra_ : 0);
    }

    /** Every plain access is a fixed-latency "hit" with no deltas. */
    Tick
    tryFastAccess(CoreId, Addr, bool) override
    {
        return latency_;
    }

  private:
    Tick latency_;
    Tick atomicExtra_ = 12;
};

} // namespace limit::sim

#endif // LIMIT_SIM_MEMORY_IF_HH
