/**
 * @file
 * Interface the CPU uses for data-memory access timing and events.
 */

#ifndef LIMIT_SIM_MEMORY_IF_HH
#define LIMIT_SIM_MEMORY_IF_HH

#include "sim/types.hh"

namespace limit::sim {

/** Timing/event outcome of one memory access. */
struct MemAccessResult
{
    Tick latency = 4;
    EventDeltas deltas{};
};

/**
 * Zero-indirection view of the conditions under which tryFastAccess
 * succeeds, consumed by the superblock replay loop (see
 * sim/superblock.hh): the replaying core validates each memory
 * micro-op against these raw fields inline instead of paying a
 * virtual call per op.
 *
 * `latency == 0` means the model exposes no fast path and memory
 * micro-ops are never replayed. With `alwaysHit` set, every plain
 * access fast-paths at `latency` and the probe fields are unused.
 * Otherwise a fast hit requires *both*
 *
 *     (addr >> pageShift) == *lastPage
 *     mruTags[((addr >> lineShift) & setMask) * ways] == addr >> lineShift
 *
 * and the implementation guarantees this predicate is exactly its
 * tryFastAccess hit condition. The pointed-to state is owned by the
 * memory model and stays valid while the machine runs; replay
 * re-fetches the view at every block entry, so the fields only need
 * to stay accurate between two consecutive ops of one core.
 */
struct FastPeekView
{
    Tick latency = 0;
    bool alwaysHit = false;
    const std::uint64_t *lastPage = nullptr;
    unsigned pageShift = 0;
    const std::uint64_t *mruTags = nullptr;
    unsigned lineShift = 0;
    std::uint64_t setMask = 0;
    unsigned ways = 1;
};

/** Pluggable data-memory model (see mem/CacheHierarchy). */
class MemoryIf
{
  public:
    virtual ~MemoryIf() = default;

    /**
     * Access one word (hot path): accumulate miss events into
     * `deltas` and return the access latency. The CPU calls this once
     * per load/store/atomic, so implementations should not allocate.
     * @param core   issuing core (selects private caches)
     * @param addr   virtual address
     * @param write  store vs. load
     * @param atomic locked RMW access (coherence cost may differ)
     * @param deltas event deltas accumulated into (not cleared first)
     */
    virtual Tick access(CoreId core, Addr addr, bool write, bool atomic,
                        EventDeltas &deltas) = 0;

    /**
     * Optional hot-path probe for a plain (non-atomic) access the
     * implementation can complete without producing any event deltas
     * — e.g. a same-line L1 + same-page TLB hit. Must be *exactly*
     * equivalent to access(): same latency, same internal state
     * transitions (hit counters, recency), no observable difference.
     * @return the access latency, or 0 to decline — the caller then
     *         takes the full access() path (an implementation whose
     *         genuine hit latency is 0 simply never fast-paths).
     */
    virtual Tick
    tryFastAccess(CoreId core, Addr addr, bool write)
    {
        (void)core;
        (void)addr;
        (void)write;
        return 0;
    }

    /**
     * Publish the fast-path hit predicate for superblock replay (see
     * FastPeekView). The default — no fast path — keeps memory ops
     * out of superblocks without constraining the model.
     */
    virtual FastPeekView
    fastPeekView(CoreId core)
    {
        (void)core;
        return {};
    }

    /**
     * Credit `n` consecutive successful fast-path accesses in one
     * call: must leave the model in exactly the state n successive
     * tryFastAccess hits would have (hit counters, recency state).
     * Called once per superblock replay commit. The default matches
     * the default tryFastAccess, which never succeeds.
     */
    virtual void
    creditFastAccesses(CoreId core, std::uint64_t n)
    {
        (void)core;
        (void)n;
    }

    /** Convenience form returning a fresh result (tests, inspection). */
    MemAccessResult
    access(CoreId core, Addr addr, bool write, bool atomic)
    {
        MemAccessResult r;
        r.latency = access(core, addr, write, atomic, r.deltas);
        return r;
    }
};

/** Trivial fixed-latency memory used when no hierarchy is attached. */
class FlatMemory : public MemoryIf
{
  public:
    explicit FlatMemory(Tick latency = 4) : latency_(latency) {}

    using MemoryIf::access;

    Tick
    access(CoreId, Addr, bool, bool atomic, EventDeltas &) override
    {
        return latency_ + (atomic ? atomicExtra_ : 0);
    }

    /** Every plain access is a fixed-latency "hit" with no deltas. */
    Tick
    tryFastAccess(CoreId, Addr, bool) override
    {
        return latency_;
    }

    /**
     * Unconditional hits, no state to credit (the inherited no-op
     * creditFastAccesses is exact here).
     */
    FastPeekView
    fastPeekView(CoreId) override
    {
        FastPeekView v;
        if (latency_ == 0)
            return v; // a 0-latency hit cannot signal "fast" upstream
        v.latency = latency_;
        v.alwaysHit = true;
        return v;
    }

  private:
    Tick latency_;
    Tick atomicExtra_ = 12;
};

} // namespace limit::sim

#endif // LIMIT_SIM_MEMORY_IF_HH
