/**
 * @file
 * Interface the CPU uses for data-memory access timing and events.
 */

#ifndef LIMIT_SIM_MEMORY_IF_HH
#define LIMIT_SIM_MEMORY_IF_HH

#include "sim/types.hh"

namespace limit::sim {

/** Timing/event outcome of one memory access. */
struct MemAccessResult
{
    Tick latency = 4;
    EventDeltas deltas{};
};

/** Pluggable data-memory model (see mem/CacheHierarchy). */
class MemoryIf
{
  public:
    virtual ~MemoryIf() = default;

    /**
     * Access one word.
     * @param core   issuing core (selects private caches)
     * @param addr   virtual address
     * @param write  store vs. load
     * @param atomic locked RMW access (coherence cost may differ)
     */
    virtual MemAccessResult access(CoreId core, Addr addr, bool write,
                                   bool atomic) = 0;
};

/** Trivial fixed-latency memory used when no hierarchy is attached. */
class FlatMemory : public MemoryIf
{
  public:
    explicit FlatMemory(Tick latency = 4) : latency_(latency) {}

    MemAccessResult
    access(CoreId, Addr, bool, bool atomic) override
    {
        MemAccessResult r;
        r.latency = latency_ + (atomic ? atomicExtra_ : 0);
        return r;
    }

  private:
    Tick latency_;
    Tick atomicExtra_ = 12;
};

} // namespace limit::sim

#endif // LIMIT_SIM_MEMORY_IF_HH
