/**
 * @file
 * Interface the CPU uses for data-memory access timing and events.
 */

#ifndef LIMIT_SIM_MEMORY_IF_HH
#define LIMIT_SIM_MEMORY_IF_HH

#include "sim/types.hh"

namespace limit::sim {

/** Timing/event outcome of one memory access. */
struct MemAccessResult
{
    Tick latency = 4;
    EventDeltas deltas{};
};

/** Pluggable data-memory model (see mem/CacheHierarchy). */
class MemoryIf
{
  public:
    virtual ~MemoryIf() = default;

    /**
     * Access one word (hot path): accumulate miss events into
     * `deltas` and return the access latency. The CPU calls this once
     * per load/store/atomic, so implementations should not allocate.
     * @param core   issuing core (selects private caches)
     * @param addr   virtual address
     * @param write  store vs. load
     * @param atomic locked RMW access (coherence cost may differ)
     * @param deltas event deltas accumulated into (not cleared first)
     */
    virtual Tick access(CoreId core, Addr addr, bool write, bool atomic,
                        EventDeltas &deltas) = 0;

    /** Convenience form returning a fresh result (tests, inspection). */
    MemAccessResult
    access(CoreId core, Addr addr, bool write, bool atomic)
    {
        MemAccessResult r;
        r.latency = access(core, addr, write, atomic, r.deltas);
        return r;
    }
};

/** Trivial fixed-latency memory used when no hierarchy is attached. */
class FlatMemory : public MemoryIf
{
  public:
    explicit FlatMemory(Tick latency = 4) : latency_(latency) {}

    using MemoryIf::access;

    Tick
    access(CoreId, Addr, bool, bool atomic, EventDeltas &) override
    {
        return latency_ + (atomic ? atomicExtra_ : 0);
    }

  private:
    Tick latency_;
    Tick atomicExtra_ = 12;
};

} // namespace limit::sim

#endif // LIMIT_SIM_MEMORY_IF_HH
