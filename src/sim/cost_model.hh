/**
 * @file
 * Calibrated cycle costs for every modelled operation.
 *
 * The absolute values are calibrated against published measurements on
 * ~2011-era Xeon-class hardware at the nominal 3 GHz clock (see
 * DESIGN.md): a PMC fast read lands in the low tens of nanoseconds, a
 * perf_event-style syscall read in the low microseconds, a PAPI-style
 * read between the two — reproducing the one-to-two orders of
 * magnitude access-cost gap the paper reports. Everything is a plain
 * data member so experiments can sweep or ablate individual costs.
 */

#ifndef LIMIT_SIM_COST_MODEL_HH
#define LIMIT_SIM_COST_MODEL_HH

#include "sim/types.hh"

namespace limit::sim {

/** Per-op branch behaviour for compute blocks. */
struct ComputeProfile
{
    /** Fraction of instructions that are branches. */
    double branchFrac = 0.18;
    /** Probability a branch mispredicts. */
    double mispredictRate = 0.03;
    /** Cycles per (non-memory) instruction. */
    double cpi = 1.0;
};

/** All non-memory cycle costs in one tweakable bundle. */
struct CostModel
{
    // --- core ---
    /** Penalty cycles per branch mispredict. */
    Tick mispredictPenalty = 14;

    // --- PMU access ---
    /**
     * Cycles for an rdpmc-style userspace counter read (the
     * serializing read itself dominates the fast-read routine;
     * calibrated so a full PEC read lands at the paper's ~37 ns).
     */
    Tick rdpmcCost = 100;
    /** Cycles for a kernel wrmsr-style counter write/read (per MSR). */
    Tick msrAccessCost = 110;

    // --- privilege transitions ---
    /** Cycles to enter the kernel on a trap/syscall. */
    Tick trapEntryCost = 150;
    /** Cycles to return to user mode. */
    Tick trapExitCost = 150;
    /** Cycles for PMI (counter-overflow interrupt) entry+exit. */
    Tick pmiCost = 400;

    // --- kernel routines ---
    /** Base context-switch cost (scheduler + address space + regs). */
    Tick contextSwitchCost = 3000;
    /**
     * Extra context-switch cycles per PMU counter saved+restored when
     * counters are software-virtualized (two MSR accesses each).
     */
    Tick counterSwitchCost = 2 * 110;
    /** Kernel work for a perf_event-style counter read syscall. */
    Tick perfReadKernelCost = 9900;
    /** Kernel work for a perf_event-style ioctl (enable/disable/reset). */
    Tick perfIoctlKernelCost = 2600;
    /** Userspace library work per PAPI-style read (caching layer). */
    Tick papiUserCost = 380;
    /** Kernel work for a PAPI-style read (one lighter-weight syscall). */
    Tick papiKernelCost = 1900;
    /** Kernel work to record one PMU sample into the ring buffer. */
    Tick sampleRecordCost = 3100;
    /** Kernel work in the overflow handler for counter virtualization. */
    Tick overflowVirtCost = 300;
    /** Kernel work for futex wait enqueue. */
    Tick futexWaitKernelCost = 1200;
    /** Kernel work for futex wake. */
    Tick futexWakeKernelCost = 900;
    /** Kernel work for sched_yield. */
    Tick yieldKernelCost = 600;
    /** Kernel work for a generic cheap syscall (getpid-class). */
    Tick trivialSyscallCost = 250;
    /** Kernel work for a simulated network/disk I/O submission. */
    Tick ioSyscallCost = 5200;
    /** Kernel work to create a thread. */
    Tick spawnKernelCost = 24000;
    /** Kernel work to reap an exited thread. */
    Tick exitKernelCost = 9000;
    /** Kernel work for a rusage-style accounting read. */
    Tick rusageKernelCost = 1400;
    /** Cycles of timer-interrupt bookkeeping at each quantum end. */
    Tick timerIrqCost = 1800;

    // --- scheduling ---
    /** Scheduler time slice in cycles (4 ms at 3 GHz by default). */
    Tick quantum = 12'000'000;

    /** Effective kernel IPC: instructions charged per kernel cycle. */
    double kernelIpc = 0.8;
};

} // namespace limit::sim

#endif // LIMIT_SIM_COST_MODEL_HH
