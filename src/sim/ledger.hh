/**
 * @file
 * Ground-truth event accounting.
 *
 * The ledger records every architectural event a thread generates,
 * split by privilege mode, with full 64-bit precision and no access
 * cost. It is the oracle against which every counter access method
 * (PEC fast reads, perf-style syscalls, sampling) is validated.
 */

#ifndef LIMIT_SIM_LEDGER_HH
#define LIMIT_SIM_LEDGER_HH

#include <cstdint>

#include "sim/types.hh"

namespace limit::sim {

/** Exact per-thread event totals, split user/kernel. */
class EventLedger
{
  public:
    /** Apply one op's deltas in the given mode. */
    void
    apply(PrivMode mode, const EventDeltas &d)
    {
        perMode_[static_cast<unsigned>(mode)] += d;
    }

    /** Apply a single event's delta (sparse hot paths: an op that
     *  produces three known events pays three adds instead of a dense
     *  11-wide array add). */
    void
    add(PrivMode mode, EventType e, std::uint64_t n)
    {
        perMode_[static_cast<unsigned>(mode)][e] += n;
    }

    /** Exact count of event e in mode m. */
    std::uint64_t
    count(EventType e, PrivMode m) const
    {
        return perMode_[static_cast<unsigned>(m)][e];
    }

    /** Exact count of event e summed over both modes. */
    std::uint64_t
    total(EventType e) const
    {
        return count(e, PrivMode::User) + count(e, PrivMode::Kernel);
    }

    /** Count of event e filtered the way a PMU counter config would. */
    std::uint64_t
    filtered(EventType e, bool user, bool kernel) const
    {
        std::uint64_t v = 0;
        if (user)
            v += count(e, PrivMode::User);
        if (kernel)
            v += count(e, PrivMode::Kernel);
        return v;
    }

    void
    clear()
    {
        perMode_[0] = EventDeltas{};
        perMode_[1] = EventDeltas{};
    }

  private:
    EventDeltas perMode_[2];
};

} // namespace limit::sim

#endif // LIMIT_SIM_LEDGER_HH
