#include "sim/guest.hh"

#include "sim/machine.hh"

namespace limit::sim {

GuestContext::GuestContext(Machine &machine, ThreadId tid, std::string name,
                           std::uint64_t seed)
    : machine_(machine), tid_(tid), name_(std::move(name)), rng_(seed)
{
}

GuestContext::~GuestContext() = default;

void
GuestContext::start(std::function<Task<void>(Guest &)> body)
{
    panic_if(started_, "GuestContext::start called twice");
    // Both the Guest handle and the functor (whose captures the
    // coroutine frame references) must outlive the coroutine.
    bodyFn_ = std::move(body);
    guest_ = std::make_unique<Guest>(*this);
    body_ = bodyFn_(*guest_);
    started_ = true;
}

bool
OpAwaiter::inlineExec() const noexcept
{
    return ctx_->inlineCpu->tryInlineOp(*ctx_);
}

bool
Guest::shouldStop() const
{
    return ctx_->machine().stopRequested(now());
}

Tick
Guest::now() const
{
    // The core clock lags during superblock replay (cycles are folded
    // in at the commit); add the pending span for an exact answer.
    return ctx_->machine().cpu(ctx_->lastCore).now() +
           ctx_->sbPendingTicks();
}

} // namespace limit::sim
