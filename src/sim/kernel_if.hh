/**
 * @file
 * Interface the simulated CPU uses to call into the OS layer.
 *
 * Keeps `sim/` independent of `os/`: the kernel implements this
 * interface and registers itself with the Machine.
 */

#ifndef LIMIT_SIM_KERNEL_IF_HH
#define LIMIT_SIM_KERNEL_IF_HH

#include <array>
#include <cstdint>
#include <string>

#include "sim/types.hh"

namespace limit::sim {

class Cpu;
class GuestContext;

/** Result of dispatching a syscall. */
struct SyscallOutcome
{
    std::uint64_t value = 0;
    /**
     * When true the calling thread was blocked (and the kernel already
     * switched the core to another thread); its result will be set at
     * wake time instead.
     */
    bool blocked = false;
};

/** OS entry points invoked by the Cpu at op boundaries. */
class KernelIf
{
  public:
    virtual ~KernelIf() = default;

    /** Dispatch a trap from `ctx` running on `cpu`. */
    virtual SyscallOutcome syscall(Cpu &cpu, GuestContext &ctx,
                                   std::uint32_t nr,
                                   const std::array<std::uint64_t, 4> &args)
        = 0;

    /** The running thread's time slice expired. */
    virtual void timerTick(Cpu &cpu) = 0;

    /**
     * Counter `counter` on `cpu` wrapped `wraps` times with its PMI
     * enable set.
     */
    virtual void pmuOverflow(Cpu &cpu, unsigned counter,
                             std::uint32_t wraps) = 0;

    /** The running thread's body coroutine completed. */
    virtual void threadExited(Cpu &cpu, GuestContext &ctx) = 0;

    /**
     * Called by the machine loop before each step to let the kernel
     * wake timed sleepers. `now` is the earliest busy-core time, or
     * maxTick when every core is idle (in which case the kernel should
     * wake the earliest sleeper unconditionally, fast-forwarding an
     * idle core's clock).
     * @return true when at least one thread was woken (the machine
     *         loop re-derives the earliest busy core only then).
     */
    virtual bool poll(Tick now) = 0;

    /** True when no live (runnable or blocked) threads remain. */
    virtual bool allThreadsDone() const = 0;

    /** Diagnostic description of blocked threads (deadlock reports). */
    virtual std::string blockedReport() const { return {}; }
};

} // namespace limit::sim

#endif // LIMIT_SIM_KERNEL_IF_HH
