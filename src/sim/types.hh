/**
 * @file
 * Fundamental simulation types shared by every layer.
 */

#ifndef LIMIT_SIM_TYPES_HH
#define LIMIT_SIM_TYPES_HH

#include <cstdint>
#include <limits>
#include <string_view>

namespace limit::sim {

/** Simulated time, in core clock cycles at the nominal frequency. */
using Tick = std::uint64_t;

/** Sentinel "never" tick. */
inline constexpr Tick maxTick = std::numeric_limits<Tick>::max();

/** Simulated virtual address. */
using Addr = std::uint64_t;

/** Simulated thread identifier (dense, assigned at spawn). */
using ThreadId = std::uint32_t;

/** Sentinel for "no thread". */
inline constexpr ThreadId invalidThread =
    std::numeric_limits<ThreadId>::max();

/** Core identifier. */
using CoreId = std::uint32_t;

/** Interned code-region identifier used for profile attribution. */
using RegionId = std::uint32_t;

/** Sentinel region meaning "not inside any declared region". */
inline constexpr RegionId noRegion = std::numeric_limits<RegionId>::max();

/** Nominal core frequency used to convert cycles to wall time. */
inline constexpr double nominalGHz = 3.0;

/** Convert a cycle count to nanoseconds at the nominal frequency. */
constexpr double
ticksToNs(Tick t)
{
    return static_cast<double>(t) / nominalGHz;
}

/** Convert nanoseconds to cycles at the nominal frequency. */
constexpr Tick
nsToTicks(double ns)
{
    return static_cast<Tick>(ns * nominalGHz);
}

/** Privilege mode an op executes in; PMU filters count per mode. */
enum class PrivMode : std::uint8_t { User = 0, Kernel = 1 };

/**
 * Architectural events the PMU can be programmed to count. The
 * simulator additionally maintains an exact per-thread ledger of all
 * of these, which serves as ground truth in tests and benches.
 */
enum class EventType : std::uint8_t {
    Cycles = 0,
    Instructions,
    Loads,
    Stores,
    Branches,
    BranchMisses,
    L1DMiss,
    L2Miss,
    LLCMiss,
    DTlbMiss,
    ContextSwitches,
    NumEvents, // must be last
};

/** Number of distinct event types. */
inline constexpr unsigned numEventTypes =
    static_cast<unsigned>(EventType::NumEvents);

/** Short human-readable event name for reports. */
constexpr std::string_view
eventName(EventType e)
{
    switch (e) {
      case EventType::Cycles: return "cycles";
      case EventType::Instructions: return "instructions";
      case EventType::Loads: return "loads";
      case EventType::Stores: return "stores";
      case EventType::Branches: return "branches";
      case EventType::BranchMisses: return "branch-misses";
      case EventType::L1DMiss: return "l1d-miss";
      case EventType::L2Miss: return "l2-miss";
      case EventType::LLCMiss: return "llc-miss";
      case EventType::DTlbMiss: return "dtlb-miss";
      case EventType::ContextSwitches: return "context-switches";
      default: return "?";
    }
}

/**
 * Event deltas produced by executing one op (or one kernel routine).
 * Dense array indexed by EventType.
 */
struct EventDeltas
{
    std::uint64_t counts[numEventTypes] = {};

    std::uint64_t &
    operator[](EventType e)
    {
        return counts[static_cast<unsigned>(e)];
    }

    std::uint64_t
    operator[](EventType e) const
    {
        return counts[static_cast<unsigned>(e)];
    }

    EventDeltas &
    operator+=(const EventDeltas &o)
    {
        for (unsigned i = 0; i < numEventTypes; ++i)
            counts[i] += o.counts[i];
        return *this;
    }
};

} // namespace limit::sim

#endif // LIMIT_SIM_TYPES_HH
