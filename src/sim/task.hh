/**
 * @file
 * C++20 coroutine task type for guest code.
 *
 * Guest thread bodies and guest library routines (synchronization,
 * counter reads, workload logic) are written as `Task` coroutines that
 * `co_await` primitive Guest operations and other Tasks. Suspension at
 * a primitive op returns control to the simulating Cpu, which charges
 * the op's cost and later resumes the leaf coroutine; nested Task
 * completion transfers control to the awaiting parent symmetrically,
 * so arbitrarily deep guest call stacks cost no host recursion.
 *
 * KNOWN TOOLCHAIN ISSUE: GCC 12 miscompiles `co_await` expressions
 * that appear directly inside controlling conditions — e.g.
 * `if (co_await g.load(a) == 0)` or `while (co_await f(g))` — the
 * coroutine frame is corrupted and the guest either traps or resumes
 * without its pending op. Project-wide rule: ALWAYS bind an awaited
 * value to a named local first, then test the local.
 */

#ifndef LIMIT_SIM_TASK_HH
#define LIMIT_SIM_TASK_HH

#include <coroutine>
#include <optional>
#include <utility>

#include "base/logging.hh"

namespace limit::sim {

template <typename T>
class Task;

namespace detail {

/** Shared promise state: who to resume when this coroutine finishes. */
struct PromiseBase
{
    std::coroutine_handle<> continuation;

    struct FinalAwaiter
    {
        bool await_ready() const noexcept { return false; }

        template <typename Promise>
        std::coroutine_handle<>
        await_suspend(std::coroutine_handle<Promise> h) const noexcept
        {
            auto cont = h.promise().continuation;
            return cont ? cont : std::noop_coroutine();
        }

        void await_resume() const noexcept {}
    };

    std::suspend_always initial_suspend() const noexcept { return {}; }
    FinalAwaiter final_suspend() const noexcept { return {}; }

    void
    unhandled_exception()
    {
        panic("unhandled exception escaped a guest task");
    }
};

template <typename T>
struct TaskPromise : PromiseBase
{
    std::optional<T> value;

    Task<T> get_return_object();

    void
    return_value(T v)
    {
        value.emplace(std::move(v));
    }
};

template <>
struct TaskPromise<void> : PromiseBase
{
    Task<void> get_return_object();
    void return_void() {}
};

} // namespace detail

/**
 * Owning handle for a lazily started guest coroutine.
 *
 * Awaiting a Task starts it (symmetric transfer) and resumes the
 * awaiter when it completes; the Task object must outlive the
 * co_await expression, which holds when awaiting a temporary.
 */
template <typename T = void>
class [[nodiscard]] Task
{
  public:
    using promise_type = detail::TaskPromise<T>;
    using handle_type = std::coroutine_handle<promise_type>;

    Task() = default;
    explicit Task(handle_type h) : handle_(h) {}

    Task(Task &&other) noexcept
        : handle_(std::exchange(other.handle_, nullptr))
    {}

    Task &
    operator=(Task &&other) noexcept
    {
        if (this != &other) {
            destroy();
            handle_ = std::exchange(other.handle_, nullptr);
        }
        return *this;
    }

    Task(const Task &) = delete;
    Task &operator=(const Task &) = delete;

    ~Task() { destroy(); }

    /** True when the coroutine ran to completion. */
    bool done() const { return !handle_ || handle_.done(); }

    /** Valid (non-moved-from) check. */
    explicit operator bool() const { return static_cast<bool>(handle_); }

    /** Raw handle; used by the Cpu to resume a top-level thread body. */
    handle_type handle() const { return handle_; }

    /**
     * Extract the result after completion (top-level use; awaiting
     * parents get the value through await_resume instead).
     */
    T
    result() const requires (!std::is_void_v<T>)
    {
        panic_if(!done(), "Task::result before completion");
        panic_if(!handle_.promise().value, "Task finished without a value");
        return *handle_.promise().value;
    }

    /** Awaiter used when a parent coroutine co_awaits this task. */
    auto
    operator co_await() const noexcept
    {
        struct Awaiter
        {
            handle_type h;

            bool
            await_ready() const noexcept
            {
                return !h || h.done();
            }

            std::coroutine_handle<>
            await_suspend(std::coroutine_handle<> parent) const noexcept
            {
                h.promise().continuation = parent;
                return h; // start the child now
            }

            T
            await_resume() const
            {
                if constexpr (!std::is_void_v<T>) {
                    panic_if(!h.promise().value,
                             "awaited Task finished without a value");
                    return std::move(*h.promise().value);
                }
            }
        };
        return Awaiter{handle_};
    }

  private:
    void
    destroy()
    {
        if (handle_) {
            handle_.destroy();
            handle_ = nullptr;
        }
    }

    handle_type handle_ = nullptr;
};

namespace detail {

template <typename T>
Task<T>
TaskPromise<T>::get_return_object()
{
    return Task<T>(
        std::coroutine_handle<TaskPromise<T>>::from_promise(*this));
}

inline Task<void>
TaskPromise<void>::get_return_object()
{
    return Task<void>(
        std::coroutine_handle<TaskPromise<void>>::from_promise(*this));
}

} // namespace detail

} // namespace limit::sim

#endif // LIMIT_SIM_TASK_HH
