/**
 * @file
 * The whole simulated machine: cores + memory + kernel binding.
 */

#ifndef LIMIT_SIM_MACHINE_HH
#define LIMIT_SIM_MACHINE_HH

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <vector>

#include "sim/cost_model.hh"
#include "sim/cpu.hh"
#include "sim/memory_if.hh"
#include "sim/pmu.hh"
#include "sim/region_table.hh"
#include "sim/types.hh"

namespace limit::trace {
class Tracer;
}

namespace limit::fault {
class FaultController;
}

namespace limit::sim {

class KernelIf;

/** Whole-machine construction parameters. */
struct MachineConfig
{
    unsigned numCores = 4;
    unsigned pmuCounters = 4;
    PmuFeatures pmuFeatures{};
    CostModel costs{};
    std::uint64_t seed = 1;
    /**
     * Hard wall: a core whose local clock passes this tick indicates a
     * runaway simulation (guests ignoring the stop request).
     */
    Tick hardLimit = maxTick;
    /**
     * Horizon-batched execution (bit-identical to the per-op reference
     * scheduler; see DESIGN.md "Safe-horizon batching"). Effective only
     * while the process-wide default is also on: --no-batch and the
     * LIMITPP_FORCE_NO_BATCH environment variable force the per-op
     * loop everywhere regardless of this field.
     */
    bool batched = true;
    /**
     * Superblock trace cache on the batched hot path (bit-identical
     * replay of cached loop bodies; see sim/superblock.hh and
     * DESIGN.md "Superblock replay"). Effective only in batched mode
     * and while the process-wide default is also on: --no-superblock
     * and the LIMITPP_FORCE_NO_SUPERBLOCK environment variable
     * disable the cache everywhere regardless of this field.
     */
    bool superblocks = true;
};

/**
 * Process-wide master switch for horizon-batched execution, consulted
 * by every Machine::run. Cleared by --no-batch (analysis::parseBenchArgs)
 * and by setting LIMITPP_FORCE_NO_BATCH in the environment.
 */
void setBatchedExecutionDefault(bool batched);
bool batchedExecutionDefault();

/**
 * Process-wide master switch for the superblock cache, consulted by
 * every Machine::run. Cleared by --no-superblock
 * (analysis::parseBenchArgs) and by setting LIMITPP_FORCE_NO_SUPERBLOCK
 * in the environment.
 */
void setSuperblockExecutionDefault(bool enabled);
bool superblockExecutionDefault();

/**
 * RAII clamp narrowing this *thread's* execution modes below the
 * process-wide defaults: (true, false) forbids superblock replay,
 * (false, false) forces the per-op reference loop. Scopes nest (a
 * nested scope can only narrow further) and restore on destruction.
 * This is how the divergence sentinel re-runs a job through a slower
 * mode — and how a quarantined campaign degrades a job — without
 * touching the job's own BundleOptions (see docs/ROBUSTNESS.md).
 */
class ScopedExecutionClamp
{
  public:
    ScopedExecutionClamp(bool allowBatched, bool allowSuperblocks)
        : prevBatched_(batchedTls()), prevSuperblocks_(superblocksTls())
    {
        batchedTls() = prevBatched_ && allowBatched;
        superblocksTls() = prevSuperblocks_ && allowSuperblocks;
    }
    ~ScopedExecutionClamp()
    {
        batchedTls() = prevBatched_;
        superblocksTls() = prevSuperblocks_;
    }
    ScopedExecutionClamp(const ScopedExecutionClamp &) = delete;
    ScopedExecutionClamp &operator=(const ScopedExecutionClamp &) = delete;

    static bool batchedAllowed() { return batchedTls(); }
    static bool superblocksAllowed() { return superblocksTls(); }

  private:
    static bool &
    batchedTls()
    {
        static thread_local bool allowed = true;
        return allowed;
    }
    static bool &
    superblocksTls()
    {
        static thread_local bool allowed = true;
        return allowed;
    }

    bool prevBatched_;
    bool prevSuperblocks_;
};

/**
 * Thrown by Machine::run when the calling thread's armed watchdog
 * deadline passes: the *host* wall clock ran out, not the simulated
 * one. A campaign catches this to retry the job in a slower execution
 * mode or mark it failed (see analysis::Campaign, --job-timeout).
 */
class WatchdogTimeout : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/**
 * Process-wide default per-run watchdog budget in host seconds
 * (0 = off). Set by --job-timeout via analysis::parseBenchArgs; every
 * Machine::run with no explicit ScopedWatchdog already armed on its
 * thread arms itself with this budget, so each bench's simulated runs
 * are individually bounded even outside a campaign.
 */
void setJobWatchdogDefault(double seconds);
double jobWatchdogDefault();

/**
 * RAII thread-local watchdog: while in scope, Machine::run on this
 * thread throws WatchdogTimeout once `seconds` of host time elapse
 * (checked every few thousand scheduler rounds — granularity, not a
 * hard realtime bound). seconds <= 0 arms nothing. Nested scopes
 * override the outer deadline and restore it on destruction.
 */
class ScopedWatchdog
{
  public:
    explicit ScopedWatchdog(double seconds);
    ~ScopedWatchdog();
    ScopedWatchdog(const ScopedWatchdog &) = delete;
    ScopedWatchdog &operator=(const ScopedWatchdog &) = delete;

    /** True when some scope on this thread armed a deadline. */
    static bool armed();

  private:
    std::uint64_t prevDeadline_;
    double prevBudget_;
};

/**
 * Deterministic multi-core machine.
 *
 * The run loop repeatedly steps the non-idle core with the smallest
 * local clock, which serializes op commits in global time order and
 * makes whole runs reproducible bit for bit.
 */
class Machine
{
  public:
    explicit Machine(const MachineConfig &config);
    ~Machine();

    Machine(const Machine &) = delete;
    Machine &operator=(const Machine &) = delete;

    const MachineConfig &config() const { return config_; }
    unsigned numCores() const { return static_cast<unsigned>(cpus_.size()); }
    Cpu &cpu(CoreId id);
    RegionTable &regions() { return regions_; }

    /** Install the OS; required before run(). */
    void setKernel(KernelIf *kernel) { kernel_ = kernel; }
    KernelIf *kernel();

    /** Replace the memory model (defaults to FlatMemory). */
    void setMemory(MemoryIf *memory);
    MemoryIf *memory() { return memory_; }

    /**
     * Attach a trace sink (nullptr detaches). The machine does not
     * own it; tracepoints across the kernel, CPUs, and PEC session
     * find it here and stay silent while it is null.
     */
    void setTracer(trace::Tracer *tracer) { tracer_ = tracer; }
    trace::Tracer *tracer() const { return tracer_; }

    /**
     * Attach a fault controller (nullptr detaches). Like the tracer,
     * the machine does not own it; the injection seams in the kernel,
     * the CPUs, and the PEC session find it here, and while it is null
     * each seam costs exactly one pointer test.
     */
    void setFaults(fault::FaultController *faults) { faults_ = faults; }
    fault::FaultController *faults() const { return faults_; }

    /**
     * Attach a timeline recorder (nullptr detaches). Not owned; the
     * recorder is (re)attached to the machine's core count and each
     * core gets its lane pointer. Call recorder.finalize(maxTime())
     * after run() before reading slices.
     */
    void setTimeline(TimelineRecorder *timeline);
    TimelineRecorder *timeline() const { return timeline_; }

    /**
     * Ask guests to wind down once any core reaches `t`
     * (Guest::shouldStop turns true); does not forcibly stop them.
     */
    void requestStopAt(Tick t) { stopAt_ = t; }
    bool
    stopRequested(Tick now) const
    {
        return stopAt_ != 0 && now >= stopAt_;
    }

    /**
     * Kernel hint: no timed wake can happen before tick `t`, so the
     * run loop may skip poll() until then. The hint is cleared (reset
     * to "poll every step") right before each poll() call, so a kernel
     * that never re-arms it keeps the conservative behaviour.
     */
    void setNextPoll(Tick t) { nextPollAt_ = t; }

    /**
     * Run until every thread has exited. Panics on deadlock (live
     * threads but nothing runnable) or when a core passes the
     * configured hard limit.
     * @return the largest core-local time reached.
     */
    Tick run();

    /** Largest core-local clock. */
    Tick maxTime() const;

    /** Scheduler rounds taken by run() (batches in batched mode). */
    std::uint64_t batchRounds() const { return batchRounds_; }
    /** Guest ops executed across all rounds. */
    std::uint64_t batchOps() const { return batchOps_; }

    /** True when run() will use the superblock cache. */
    bool
    superblocksEnabled() const
    {
        return config_.batched && batchedExecutionDefault() &&
               ScopedExecutionClamp::batchedAllowed() &&
               config_.superblocks && superblockExecutionDefault() &&
               ScopedExecutionClamp::superblocksAllowed();
    }
    /** Machine-wide superblock cache statistics. */
    SuperblockStats &superblockStats() { return sbStats_; }
    const SuperblockStats &superblockStats() const { return sbStats_; }

  private:
    Tick runPerOp();
    Tick runBatched();

    MachineConfig config_;
    std::vector<std::unique_ptr<Cpu>> cpus_;
    FlatMemory flatMemory_;
    MemoryIf *memory_ = nullptr;
    KernelIf *kernel_ = nullptr;
    trace::Tracer *tracer_ = nullptr;
    fault::FaultController *faults_ = nullptr;
    TimelineRecorder *timeline_ = nullptr;
    RegionTable regions_;
    Tick stopAt_ = 0;
    Tick nextPollAt_ = 0;
    std::uint64_t batchRounds_ = 0;
    std::uint64_t batchOps_ = 0;
    SuperblockStats sbStats_;
};

} // namespace limit::sim

#endif // LIMIT_SIM_MACHINE_HH
