/**
 * @file
 * The whole simulated machine: cores + memory + kernel binding.
 */

#ifndef LIMIT_SIM_MACHINE_HH
#define LIMIT_SIM_MACHINE_HH

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <vector>

#include "sim/cost_model.hh"
#include "sim/cpu.hh"
#include "sim/memory_if.hh"
#include "sim/pmu.hh"
#include "sim/region_table.hh"
#include "sim/types.hh"

namespace limit::trace {
class Tracer;
}

namespace limit::fault {
class FaultController;
}

namespace limit::sim {

class KernelIf;

/** Whole-machine construction parameters. */
struct MachineConfig
{
    unsigned numCores = 4;
    unsigned pmuCounters = 4;
    PmuFeatures pmuFeatures{};
    CostModel costs{};
    std::uint64_t seed = 1;
    /**
     * Hard wall: a core whose local clock passes this tick indicates a
     * runaway simulation (guests ignoring the stop request).
     */
    Tick hardLimit = maxTick;
    /**
     * Horizon-batched execution (bit-identical to the per-op reference
     * scheduler; see DESIGN.md "Safe-horizon batching"). Effective only
     * while the process-wide default is also on: --no-batch and the
     * LIMITPP_FORCE_NO_BATCH environment variable force the per-op
     * loop everywhere regardless of this field.
     */
    bool batched = true;
    /**
     * Superblock trace cache on the batched hot path (bit-identical
     * replay of cached loop bodies; see sim/superblock.hh and
     * DESIGN.md "Superblock replay"). Effective only in batched mode
     * and while the process-wide default is also on: --no-superblock
     * and the LIMITPP_FORCE_NO_SUPERBLOCK environment variable
     * disable the cache everywhere regardless of this field.
     */
    bool superblocks = true;
    /**
     * Host threads executing this machine (1 = single-threaded).
     * N > 1 runs the coordinator/worker sharded loop (see DESIGN.md
     * "Sharded safe-horizon execution"): the calling thread stays the
     * serial coordinator and N-1 workers run leased cores. Output is
     * bit-identical for every value. A value of 1 inherits the
     * process-wide default (--shards); the effective count is clamped
     * to numCores and forced to 1 when a fault controller is attached
     * or a sentinel oracle clamp is active.
     */
    unsigned shards = 1;
};

/**
 * Process-wide master switch for horizon-batched execution, consulted
 * by every Machine::run. Cleared by --no-batch (analysis::parseBenchArgs)
 * and by setting LIMITPP_FORCE_NO_BATCH in the environment.
 */
void setBatchedExecutionDefault(bool batched);
bool batchedExecutionDefault();

/**
 * Process-wide master switch for the superblock cache, consulted by
 * every Machine::run. Cleared by --no-superblock
 * (analysis::parseBenchArgs) and by setting LIMITPP_FORCE_NO_SUPERBLOCK
 * in the environment.
 */
void setSuperblockExecutionDefault(bool enabled);
bool superblockExecutionDefault();

/**
 * Process-wide default host-shard count, consulted by every
 * Machine::run whose config leaves shards at 1. Set by --shards
 * (analysis::parseBenchArgs); the LIMITPP_FORCE_SHARDS environment
 * variable overrides both this and per-machine configs.
 */
void setShardExecutionDefault(unsigned shards);
unsigned shardExecutionDefault();

/**
 * RAII clamp narrowing this *thread's* execution modes below the
 * process-wide defaults: (true, false) forbids superblock replay,
 * (false, false) forces the per-op reference loop. Scopes nest (a
 * nested scope can only narrow further) and restore on destruction.
 * This is how the divergence sentinel re-runs a job through a slower
 * mode — and how a quarantined campaign degrades a job — without
 * touching the job's own BundleOptions (see docs/ROBUSTNESS.md).
 */
class ScopedExecutionClamp
{
  public:
    ScopedExecutionClamp(bool allowBatched, bool allowSuperblocks)
        : prevBatched_(batchedTls()), prevSuperblocks_(superblocksTls())
    {
        batchedTls() = prevBatched_ && allowBatched;
        superblocksTls() = prevSuperblocks_ && allowSuperblocks;
    }
    ~ScopedExecutionClamp()
    {
        batchedTls() = prevBatched_;
        superblocksTls() = prevSuperblocks_;
    }
    ScopedExecutionClamp(const ScopedExecutionClamp &) = delete;
    ScopedExecutionClamp &operator=(const ScopedExecutionClamp &) = delete;

    static bool batchedAllowed() { return batchedTls(); }
    static bool superblocksAllowed() { return superblocksTls(); }

  private:
    static bool &
    batchedTls()
    {
        static thread_local bool allowed = true;
        return allowed;
    }
    static bool &
    superblocksTls()
    {
        static thread_local bool allowed = true;
        return allowed;
    }

    bool prevBatched_;
    bool prevSuperblocks_;
};

/**
 * RAII clamp forcing single-shard execution on this thread's runs
 * regardless of configs, defaults, or LIMITPP_FORCE_SHARDS. Scopes
 * nest. The divergence sentinel arms this around its probe and oracle
 * re-runs: an oracle must be the plain sequential loop the
 * fingerprint contract is defined against (see docs/ROBUSTNESS.md).
 */
class ScopedSingleShard
{
  public:
    ScopedSingleShard() { ++depth(); }
    ~ScopedSingleShard() { --depth(); }
    ScopedSingleShard(const ScopedSingleShard &) = delete;
    ScopedSingleShard &operator=(const ScopedSingleShard &) = delete;

    static bool active() { return depth() > 0; }

  private:
    static unsigned &
    depth()
    {
        static thread_local unsigned d = 0;
        return d;
    }
};

/**
 * Thrown by Machine::run when the calling thread's armed watchdog
 * deadline passes: the *host* wall clock ran out, not the simulated
 * one. A campaign catches this to retry the job in a slower execution
 * mode or mark it failed (see analysis::Campaign, --job-timeout).
 */
class WatchdogTimeout : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/**
 * Process-wide default per-run watchdog budget in host seconds
 * (0 = off). Set by --job-timeout via analysis::parseBenchArgs; every
 * Machine::run with no explicit ScopedWatchdog already armed on its
 * thread arms itself with this budget, so each bench's simulated runs
 * are individually bounded even outside a campaign.
 */
void setJobWatchdogDefault(double seconds);
double jobWatchdogDefault();

/**
 * RAII thread-local watchdog: while in scope, Machine::run on this
 * thread throws WatchdogTimeout once `seconds` of host time elapse
 * (checked every few thousand scheduler rounds — granularity, not a
 * hard realtime bound). seconds <= 0 arms nothing. Nested scopes
 * override the outer deadline and restore it on destruction.
 */
class ScopedWatchdog
{
  public:
    explicit ScopedWatchdog(double seconds);
    ~ScopedWatchdog();
    ScopedWatchdog(const ScopedWatchdog &) = delete;
    ScopedWatchdog &operator=(const ScopedWatchdog &) = delete;

    /** True when some scope on this thread armed a deadline. */
    static bool armed();

  private:
    std::uint64_t prevDeadline_;
    double prevBudget_;
};

/**
 * Deterministic multi-core machine.
 *
 * The run loop repeatedly steps the non-idle core with the smallest
 * local clock, which serializes op commits in global time order and
 * makes whole runs reproducible bit for bit.
 */
class Machine
{
  public:
    explicit Machine(const MachineConfig &config);
    ~Machine();

    Machine(const Machine &) = delete;
    Machine &operator=(const Machine &) = delete;

    const MachineConfig &config() const { return config_; }
    unsigned numCores() const { return static_cast<unsigned>(cpus_.size()); }
    Cpu &cpu(CoreId id);
    RegionTable &regions() { return regions_; }

    /** Install the OS; required before run(). */
    void setKernel(KernelIf *kernel) { kernel_ = kernel; }
    KernelIf *kernel();

    /** Replace the memory model (defaults to FlatMemory). */
    void setMemory(MemoryIf *memory);
    MemoryIf *memory() { return memory_; }

    /**
     * Attach a trace sink (nullptr detaches). The machine does not
     * own it; tracepoints across the kernel, CPUs, and PEC session
     * find it here and stay silent while it is null.
     */
    void setTracer(trace::Tracer *tracer) { tracer_ = tracer; }
    trace::Tracer *tracer() const { return tracer_; }

    /**
     * Attach a fault controller (nullptr detaches). Like the tracer,
     * the machine does not own it; the injection seams in the kernel,
     * the CPUs, and the PEC session find it here, and while it is null
     * each seam costs exactly one pointer test.
     */
    void setFaults(fault::FaultController *faults) { faults_ = faults; }
    fault::FaultController *faults() const { return faults_; }

    /**
     * Attach a timeline recorder (nullptr detaches). Not owned; the
     * recorder is (re)attached to the machine's core count and each
     * core gets its lane pointer. Call recorder.finalize(maxTime())
     * after run() before reading slices.
     */
    void setTimeline(TimelineRecorder *timeline);
    TimelineRecorder *timeline() const { return timeline_; }

    /**
     * Ask guests to wind down once any core reaches `t`
     * (Guest::shouldStop turns true); does not forcibly stop them.
     */
    void requestStopAt(Tick t) { stopAt_ = t; }
    bool
    stopRequested(Tick now) const
    {
        return stopAt_ != 0 && now >= stopAt_;
    }

    /**
     * Kernel hint: no timed wake can happen before tick `t`, so the
     * run loop may skip poll() until then. The hint is cleared (reset
     * to "poll every step") right before each poll() call, so a kernel
     * that never re-arms it keeps the conservative behaviour.
     */
    void setNextPoll(Tick t) { nextPollAt_ = t; }

    /**
     * Run until every thread has exited. Panics on deadlock (live
     * threads but nothing runnable) or when a core passes the
     * configured hard limit.
     * @return the largest core-local time reached.
     */
    Tick run();

    /** Largest core-local clock. */
    Tick maxTime() const;

    /** Scheduler rounds taken by run() (batches in batched mode). */
    std::uint64_t batchRounds() const { return batchRounds_; }
    /** Guest ops executed across all rounds. */
    std::uint64_t batchOps() const { return batchOps_; }

    /** Host-CPU accounting of the most recent sharded run(). */
    struct ShardTelemetry
    {
        /** Host threads the run used (1 = the single-threaded loop). */
        unsigned shards = 1;
        /** Coordinator thread CPU seconds inside run(). */
        double coordinatorCpuSec = 0.0;
        /** Per-worker thread CPU seconds (size shards - 1). */
        std::vector<double> workerCpuSec;
        /** Guest ops executed on leased cores (worker threads). */
        std::uint64_t leasedOps = 0;
        /**
         * CPU seconds of the busiest thread — the parallel critical
         * path a speedup is measured against.
         */
        double
        criticalPathCpuSec() const
        {
            double m = coordinatorCpuSec;
            for (const double w : workerCpuSec)
                m = w > m ? w : m;
            return m;
        }
    };
    const ShardTelemetry &shardTelemetry() const { return shardTelemetry_; }

    /** Effective shard count the next run() will use. */
    unsigned effectiveShards() const;

    /** True when run() will use the superblock cache. */
    bool
    superblocksEnabled() const
    {
        return config_.batched && batchedExecutionDefault() &&
               ScopedExecutionClamp::batchedAllowed() &&
               config_.superblocks && superblockExecutionDefault() &&
               ScopedExecutionClamp::superblocksAllowed();
    }
    /**
     * Machine-wide superblock cache statistics: the sum of the
     * per-core blocks (kept per core so leased cores never write
     * shared counters; see Cpu::superblockStats).
     */
    SuperblockStats superblockStats() const;

  private:
    Tick runPerOp();
    Tick runBatched();
    /** Coordinator/worker sharded loop (see DESIGN.md). */
    Tick runSharded(unsigned shards);

    MachineConfig config_;
    std::vector<std::unique_ptr<Cpu>> cpus_;
    FlatMemory flatMemory_;
    MemoryIf *memory_ = nullptr;
    KernelIf *kernel_ = nullptr;
    trace::Tracer *tracer_ = nullptr;
    fault::FaultController *faults_ = nullptr;
    TimelineRecorder *timeline_ = nullptr;
    RegionTable regions_;
    Tick stopAt_ = 0;
    Tick nextPollAt_ = 0;
    std::uint64_t batchRounds_ = 0;
    std::uint64_t batchOps_ = 0;
    ShardTelemetry shardTelemetry_;
};

} // namespace limit::sim

#endif // LIMIT_SIM_MACHINE_HH
