/**
 * @file
 * The guest instruction-level interface.
 *
 * Guest code (workloads, the synchronization library, counter access
 * libraries) is written as Task coroutines that issue primitive ops
 * through a Guest handle. Each `co_await g.op(...)` suspends the guest
 * until the simulating Cpu has charged the op's cost, applied its
 * architectural events, and produced its result value.
 */

#ifndef LIMIT_SIM_GUEST_HH
#define LIMIT_SIM_GUEST_HH

#include <array>
#include <coroutine>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include <bit>

#include "base/rng.hh"
#include "sim/cost_model.hh"
#include "sim/ledger.hh"
#include "sim/superblock.hh"
#include "sim/task.hh"
#include "sim/types.hh"

namespace limit::sim {

class Cpu;
class Machine;
class Guest;

/** Primitive operations the Cpu knows how to execute. */
enum class OpKind : std::uint8_t {
    Compute,        ///< `instrs` ALU/branch instructions
    Load,           ///< one load from `addr`
    Store,          ///< one store to `addr`
    AtomicCas,      ///< compare-and-swap on `word`; returns old value
    AtomicFetchAdd, ///< fetch-and-add on `word`; returns old value
    AtomicExchange, ///< swap `a` into `word`; returns old value
    AtomicLoad,     ///< acquire load of `word`; returns value
    AtomicStore,    ///< release store of `a` to `word`
    PmcRead,        ///< rdpmc of counter `counter`; returns hw value
    PmcReadClear,   ///< destructive rdpmc (hardware enhancement #2)
    Syscall,        ///< trap to the kernel, `sysNr`/`sysArgs`
    RegionEnter,    ///< push attribution region `region`
    RegionExit,     ///< pop attribution region
};

/**
 * True for ops whose execution touches only core-local state (the
 * issuing core's clock, PMU, and thread ledger — plus memory-model
 * state that is only ever mutated in global time order anyway).
 *
 * The horizon-batched run loop (Machine::run) keeps executing
 * consecutive core-local ops on the earliest core without returning
 * to the global scheduler; any op that can re-enter the kernel or
 * publish a value other threads may consume next (atomics release
 * locks, syscalls wake threads, PMC reads can deliver PMIs) ends the
 * batch so the scheduler can re-derive the global earliest core.
 * This is a conservative classification: batching never changes the
 * serialized op order, only how cheaply it is produced.
 */
constexpr bool
opIsCoreLocal(OpKind kind)
{
    switch (kind) {
      case OpKind::Compute:
      case OpKind::Load:
      case OpKind::Store:
      case OpKind::RegionEnter:
      case OpKind::RegionExit:
        return true;
      default:
        return false;
    }
}

/** One suspended guest operation awaiting execution. */
struct PendingOp
{
    OpKind kind = OpKind::Compute;
    std::uint64_t instrs = 0;       ///< Compute instruction count
    ComputeProfile profile{};       ///< Compute branch behaviour
    Addr addr = 0;                  ///< memory operand address
    std::uint64_t *word = nullptr;  ///< host storage for atomics
    std::uint64_t a = 0;            ///< operand (expected / delta / value)
    std::uint64_t b = 0;            ///< operand (desired)
    unsigned counter = 0;           ///< PMC index
    std::uint32_t sysNr = 0;        ///< syscall number
    std::array<std::uint64_t, 4> sysArgs{};
    RegionId region = noRegion;     ///< RegionEnter operand
};

/**
 * Everything the simulator knows about one guest thread.
 *
 * Owned by the OS layer, manipulated by the Cpu during execution.
 * Opaque `osThread`/`pecThread` slots let the kernel and the PEC
 * library hang their per-thread state off the context without
 * layering violations.
 */
class GuestContext
{
  public:
    GuestContext(Machine &machine, ThreadId tid, std::string name,
                 std::uint64_t seed);

    GuestContext(const GuestContext &) = delete;
    GuestContext &operator=(const GuestContext &) = delete;
    ~GuestContext(); // out of line: Guest is incomplete here

    /** Instantiate the coroutine body; it starts suspended. */
    void start(std::function<Task<void>(Guest &)> body);

    /** True when the body ran to completion. */
    bool finished() const { return started_ && body_.done(); }

    Machine &machine() { return machine_; }
    /** The Guest handle bound to this context (valid after start()). */
    Guest &guest() { return *guest_; }
    ThreadId tid() const { return tid_; }
    const std::string &name() const { return name_; }
    Rng &rng() { return rng_; }
    EventLedger &ledger() { return ledger_; }
    const EventLedger &ledger() const { return ledger_; }

    /** Attribution region currently on top of the stack. */
    RegionId
    currentRegion() const
    {
        return regionStack.empty() ? noRegion : regionStack.back();
    }

    /** @name Cpu-facing execution state @{ */
    std::coroutine_handle<>
    resumeHandle()
    {
        panic_if(!started_, "resuming a thread that was never started");
        if (resumePoint) {
            const auto h = resumePoint;
            resumePoint = nullptr;
            return h;
        }
        return body_.handle();
    }
    bool hasOp = false;
    PendingOp op{};
    std::uint64_t result = 0;
    std::coroutine_handle<> resumePoint = nullptr;
    /**
     * Non-null only while Cpu::runUntil is resuming this thread: lets
     * OpAwaiter hand core-local ops straight to Cpu::tryInlineOp
     * without suspending (see DESIGN.md "Safe-horizon batching"). In
     * per-op mode this stays null and every op takes the suspend path.
     */
    Cpu *inlineCpu = nullptr;
    /**
     * The op was executed by tryInlineOp but the batch must end (PMI
     * or quantum epilogue pending, budget/horizon reached), so the
     * guest suspended anyway — without re-publishing the op in hasOp.
     */
    bool opConsumedInline = false;
    /**
     * Superblock replay cursor: non-null `sbr.cur` means the Cpu
     * armed a replay and the awaiter fast path is validating ops
     * against the cached block (see sbStep below).
     */
    SbReplay sbr;
    /** Per-thread superblock detector (lazily created by the Cpu). */
    std::unique_ptr<SuperblockState> sbState;
    /**
     * One step of superblock replay: validate the pending op against
     * the current micro-op and, on a match, retire it with a single
     * clock add. Returns true when the op was consumed and the guest
     * may continue inline; false when the op mismatched (the Cpu will
     * flush the partial replay and execute it normally) or the replay
     * completed into an ended batch (opConsumedInline set). Defined
     * inline below; this is the hottest code in the simulator.
     */
    bool sbStep() noexcept;
    /**
     * Ticks an in-progress replay has accumulated but not yet folded
     * into the core clock (the commit folds them in one add). Exact:
     * prefix sums cover the residue-independent part, accMisses the
     * mispredict term. Zero when no replay is active.
     */
    Tick sbPendingTicks() const noexcept;
    std::vector<RegionId> regionStack;
    /** Region before the most recent region-stack change (for skid). */
    RegionId prevRegion = noRegion;
    /** Core-local time of the most recent region-stack change. */
    Tick regionChangedAt = 0;
    ComputeProfile defaultProfile{};
    double branchResidue = 0.0;
    double mispredictResidue = 0.0;
    CoreId lastCore = 0;
    /** @} */

    /** @name Sharded-execution classification (see DESIGN.md) @{ */
    /**
     * The guest body's host-side code between ops touches only state
     * owned by this thread (its streams, counters, coroutine frame) —
     * shared host words only ever through atomic/futex ops, which
     * always execute on the coordinator. Only such threads may run on
     * a leased core inside a worker thread; everything else (plain
     * shared host state, e.g. InstrumentedMutex bookkeeping) is
     * pinned to the coordinator. Opt-in at Kernel::spawn.
     */
    bool parallelSafe = false;
    /**
     * Lease-thrash cooldown, decremented once per coordinator lease
     * opportunity: set after an unproductive lease (a handful of ops
     * before parking) so syscall-dense threads run serially instead
     * of ping-ponging. Purely a host-side placement heuristic —
     * affects *where* ops execute, never their order or results.
     */
    unsigned leaseStall = 0;
    /** @} */

    /** @name PMC-read race bookkeeping (see pec/) @{ */
    bool inPmcRead = false;
    bool pmcRestartRequested = false;
    /** @} */

    /** @name Opaque per-subsystem extensions @{ */
    void *osThread = nullptr;
    void *pecThread = nullptr;
    /** @} */

  private:
    friend class Guest;

    Machine &machine_;
    ThreadId tid_;
    std::string name_;
    Rng rng_;
    EventLedger ledger_;
    std::unique_ptr<Guest> guest_;
    /**
     * The body functor is kept alive for the thread's lifetime because
     * a coroutine lambda's captures live in the lambda object, not the
     * coroutine frame. Declared before body_ so the frame (which may
     * reference the captures) is destroyed first.
     */
    std::function<Task<void>(Guest &)> bodyFn_;
    Task<void> body_;
    bool started_ = false;
};

/**
 * Out-of-line completion hook for a replay that consumed its final
 * planned op (defined in cpu.cc; forwards to Cpu::sbFinishReplay).
 * Returns true when the guest may keep running inline.
 */
bool superblockFinishReplay(GuestContext &ctx) noexcept;

/**
 * Out-of-line hook for a mid-replay memory op that left the recorded
 * fast path (defined in cpu.cc; forwards to Cpu::sbStallMem): commits
 * the span replayed so far, executes the op on the full path, and
 * resumes the same block at the next offset when the budgets allow.
 * Returns true when the op was consumed and the guest may continue.
 */
bool superblockStallMem(GuestContext &ctx) noexcept;

inline bool
GuestContext::sbStep() noexcept
{
    SbReplay &r = sbr;
    const MicroOp &m = *r.cur;
    const PendingOp &o = op;
    if (o.kind != m.kind) [[unlikely]]
        return false;
    if (m.kind == OpKind::Compute) {
        // Exact operand match, bitwise on the profile doubles: equal
        // bits guarantee execCompute would compute identical costs
        // and residues (stricter than operator==, never unsafe).
        if (o.instrs != m.instrs ||
            std::bit_cast<std::uint64_t>(o.profile.branchFrac) !=
                std::bit_cast<std::uint64_t>(m.profile.branchFrac) ||
            std::bit_cast<std::uint64_t>(o.profile.mispredictRate) !=
                std::bit_cast<std::uint64_t>(m.profile.mispredictRate) ||
            std::bit_cast<std::uint64_t>(o.profile.cpi) !=
                std::bit_cast<std::uint64_t>(m.profile.cpi)) [[unlikely]]
            return false;
        // The branch/mispredict residues are genuinely dynamic state;
        // run the same recurrence execCompute runs, against the
        // precomputed branchStep (== instrs * branchFrac exactly).
        // Cycles are NOT accumulated per op: the commit reconstructs
        // them exactly from the prefix sums plus accMisses, and
        // Guest::now() adds sbPendingTicks() for mid-replay reads.
        if (m.profile.branchFrac != 0.0) {
            const double branches_f = m.branchStep + branchResidue;
            const auto branches = static_cast<std::uint64_t>(branches_f);
            branchResidue = branches_f - static_cast<double>(branches);
            r.accBranches += branches;
            if (branches != 0 && m.profile.mispredictRate != 0.0) {
                const double miss_f =
                    static_cast<double>(branches) *
                        m.profile.mispredictRate +
                    mispredictResidue;
                const auto misses = static_cast<std::uint64_t>(miss_f);
                mispredictResidue =
                    miss_f - static_cast<double>(misses);
                r.accMisses += misses;
            }
        }
    } else {
        // Load/Store: the recorded fast-path assumptions must still
        // hold for this address (same TLB page, L1 MRU way). A miss
        // here is almost always a line/page crossing of an otherwise
        // stable loop: bridge it — commit the span, run this one op on
        // the full path, resume the same block — without tearing the
        // replay down (Cpu::sbStallMem).
        if (!r.memAlwaysHit) {
            const std::uint64_t line = o.addr >> r.lineShift;
            // Hoisted validation: the assumptions are frozen for the
            // whole span, so an op on the same line as the previous
            // validated one is valid by that op's check (same line ⇒
            // same page; the MRU tags cannot change mid-span). One
            // register compare instead of a page check plus a tags
            // load for the common run of same-line accesses between
            // line crossings.
            if (line != r.lastGoodLine) {
                if ((o.addr >> r.pageShift) != r.pageVal) [[unlikely]]
                    return superblockStallMem(*this);
                if (r.mruTags[(line & r.setMask) << r.waysShift] != line)
                    [[unlikely]]
                    return superblockStallMem(*this);
                r.lastGoodLine = line;
            }
        }
    }
    if (++r.cur == r.opsEnd) [[unlikely]] {
        if (--r.itersLeft == 0)
            return superblockFinishReplay(*this);
        r.cur = r.opsBegin;
    }
    return true;
}

inline Tick
GuestContext::sbPendingTicks() const noexcept
{
    const SbReplay &r = sbr;
    if (r.cur == nullptr)
        return 0;
    const std::uint64_t fullIters = r.itersTotal - r.itersLeft;
    const MicroOp *startOp = r.opsBegin + r.startOffset;
    return fullIters * r.block->iterBase + r.cur->prefixBase -
           startOp->prefixBase + r.accMisses * r.mispredictPenalty;
}

/**
 * Awaiter for a primitive guest op.
 *
 * The issuing Guest method has already written the op's fields into
 * ctx->op by the time the awaiter exists (each method sets every field
 * its op kind consumes, so stale fields from earlier ops are never
 * observed), keeping the per-op issue path free of PendingOp copies.
 * Must be awaited immediately — issuing a second op before awaiting
 * the first would overwrite its operands.
 */
class [[nodiscard]] OpAwaiter
{
  public:
    explicit OpAwaiter(GuestContext &ctx) : ctx_(&ctx) {}

    /**
     * Fast path for horizon-batched execution: while Cpu::runUntil is
     * resuming this thread, core-local ops within the batch budget are
     * executed right here and the coroutine never suspends. Everything
     * else (per-op mode, cross-core-visible ops, exhausted horizon)
     * falls through to the suspend path below.
     */
    bool
    await_ready() const noexcept
    {
        GuestContext &c = *ctx_;
        if (c.inlineCpu == nullptr)
            return false;
        if (c.sbr.cur != nullptr) {
            // Replay in progress: the common outcome is another hit,
            // retiring the op without touching the Cpu at all.
            if (c.sbStep())
                return true;
            if (c.opConsumedInline)
                return false; // replay finished and the batch is over
            // Mismatch: fall through — tryInlineOp flushes the
            // partial replay before executing this op normally.
        }
        return inlineExec();
    }

    void
    await_suspend(std::coroutine_handle<> h) noexcept
    {
        // When tryInlineOp already executed the op but ended the
        // batch (opConsumedInline), suspend without re-publishing it.
        ctx_->hasOp = !ctx_->opConsumedInline;
        ctx_->resumePoint = h;
    }

    std::uint64_t await_resume() const noexcept { return ctx_->result; }

  private:
    /** Out of line: forwards to Cpu::tryInlineOp. */
    bool inlineExec() const noexcept;

    GuestContext *ctx_;
};

/**
 * Handle through which guest coroutines issue operations.
 *
 * One Guest exists per thread; it is passed by reference into the
 * thread body and any guest library routines.
 */
class Guest
{
  public:
    explicit Guest(GuestContext &ctx) : ctx_(&ctx) {}

    /** Execute `instrs` ALU/branch instructions (thread default profile). */
    OpAwaiter
    compute(std::uint64_t instrs)
    {
        PendingOp &op = ctx_->op;
        op.kind = OpKind::Compute;
        op.instrs = instrs;
        op.profile = ctx_->defaultProfile;
        return OpAwaiter{*ctx_};
    }

    /** Execute `instrs` instructions with an explicit branch profile. */
    OpAwaiter
    compute(std::uint64_t instrs, const ComputeProfile &profile)
    {
        PendingOp &op = ctx_->op;
        op.kind = OpKind::Compute;
        op.instrs = instrs;
        op.profile = profile;
        return OpAwaiter{*ctx_};
    }

    /** One load from the simulated address `addr`. */
    OpAwaiter
    load(Addr addr)
    {
        PendingOp &op = ctx_->op;
        op.kind = OpKind::Load;
        op.addr = addr;
        return OpAwaiter{*ctx_};
    }

    /** One store to the simulated address `addr`. */
    OpAwaiter
    store(Addr addr)
    {
        PendingOp &op = ctx_->op;
        op.kind = OpKind::Store;
        op.addr = addr;
        return OpAwaiter{*ctx_};
    }

    /**
     * Compare-and-swap: atomically replace *word with `desired` when it
     * equals `expected`. Returns the previous value. `addr` drives the
     * coherence/cache model.
     */
    OpAwaiter
    atomicCas(std::uint64_t *word, Addr addr, std::uint64_t expected,
              std::uint64_t desired)
    {
        PendingOp &op = ctx_->op;
        op.kind = OpKind::AtomicCas;
        op.word = word;
        op.addr = addr;
        op.a = expected;
        op.b = desired;
        return OpAwaiter{*ctx_};
    }

    /** Fetch-and-add `delta`; returns the previous value. */
    OpAwaiter
    atomicFetchAdd(std::uint64_t *word, Addr addr, std::uint64_t delta)
    {
        PendingOp &op = ctx_->op;
        op.kind = OpKind::AtomicFetchAdd;
        op.word = word;
        op.addr = addr;
        op.a = delta;
        return OpAwaiter{*ctx_};
    }

    /** Atomic swap of `value` into *word; returns the previous value. */
    OpAwaiter
    atomicExchange(std::uint64_t *word, Addr addr, std::uint64_t value)
    {
        PendingOp &op = ctx_->op;
        op.kind = OpKind::AtomicExchange;
        op.word = word;
        op.addr = addr;
        op.a = value;
        return OpAwaiter{*ctx_};
    }

    /** Acquire load; returns the value. */
    OpAwaiter
    atomicLoad(std::uint64_t *word, Addr addr)
    {
        PendingOp &op = ctx_->op;
        op.kind = OpKind::AtomicLoad;
        op.word = word;
        op.addr = addr;
        return OpAwaiter{*ctx_};
    }

    /** Release store of `value`. */
    OpAwaiter
    atomicStore(std::uint64_t *word, Addr addr, std::uint64_t value)
    {
        PendingOp &op = ctx_->op;
        op.kind = OpKind::AtomicStore;
        op.word = word;
        op.addr = addr;
        op.a = value;
        return OpAwaiter{*ctx_};
    }

    /** rdpmc-style userspace read of hardware counter `idx`. */
    OpAwaiter
    pmcRead(unsigned idx)
    {
        PendingOp &op = ctx_->op;
        op.kind = OpKind::PmcRead;
        op.counter = idx;
        return OpAwaiter{*ctx_};
    }

    /** Destructive read-and-clear of counter `idx` (enhancement #2). */
    OpAwaiter
    pmcReadClear(unsigned idx)
    {
        PendingOp &op = ctx_->op;
        op.kind = OpKind::PmcReadClear;
        op.counter = idx;
        return OpAwaiter{*ctx_};
    }

    /** Trap into the kernel. */
    OpAwaiter
    syscall(std::uint32_t nr, std::array<std::uint64_t, 4> args = {})
    {
        PendingOp &op = ctx_->op;
        op.kind = OpKind::Syscall;
        op.sysNr = nr;
        op.sysArgs = args;
        return OpAwaiter{*ctx_};
    }

    /** Push attribution region `region` (see Machine::regions()). */
    OpAwaiter
    regionEnter(RegionId region)
    {
        PendingOp &op = ctx_->op;
        op.kind = OpKind::RegionEnter;
        op.region = region;
        return OpAwaiter{*ctx_};
    }

    /** Pop the current attribution region. */
    OpAwaiter
    regionExit()
    {
        ctx_->op.kind = OpKind::RegionExit;
        return OpAwaiter{*ctx_};
    }

    /** @name Host-side (zero-cost) helpers @{ */
    ThreadId tid() const { return ctx_->tid(); }
    const std::string &name() const { return ctx_->name(); }
    Rng &rng() { return ctx_->rng(); }
    GuestContext &context() { return *ctx_; }
    Machine &machine() { return ctx_->machine(); }
    /** True once the machine's requested stop tick has passed. */
    bool shouldStop() const;
    /** Current simulated time on the core this thread last ran on. */
    Tick now() const;
    /** @} */

  private:
    GuestContext *ctx_;
};

} // namespace limit::sim

#endif // LIMIT_SIM_GUEST_HH
