/**
 * @file
 * One simulated core: executes guest ops, owns a PMU, tracks local time.
 */

#ifndef LIMIT_SIM_CPU_HH
#define LIMIT_SIM_CPU_HH

#include <array>
#include <cstddef>
#include <vector>

#include "sim/cost_model.hh"
#include "sim/guest.hh"
#include "sim/memory_if.hh"
#include "sim/pmu.hh"
#include "sim/timeline.hh"
#include "sim/types.hh"

namespace limit::sim {

class Machine;
class KernelIf;
class MemoryIf;

/**
 * A single in-order core.
 *
 * The Machine steps whichever non-idle core has the smallest local
 * time; a step resumes the core's current thread, executes exactly one
 * primitive op, charges its cost, applies events to the PMU and the
 * thread's ground-truth ledger, and delivers any interrupts that
 * became pending (PMU overflow, end-of-quantum timer).
 */
class Cpu
{
  public:
    Cpu(CoreId id, Machine &machine, const CostModel &costs,
        unsigned pmu_counters, const PmuFeatures &pmu_features);

    CoreId id() const { return id_; }
    Tick now() const { return now_; }
    Pmu &pmu() { return pmu_; }
    const Pmu &pmu() const { return pmu_; }
    const CostModel &costs() const { return costs_; }
    Machine &machine() { return machine_; }

    /** Thread currently installed on this core (nullptr when idle). */
    GuestContext *current() { return current_; }
    bool idle() const { return current_ == nullptr; }

    /**
     * Install a thread (kernel context-switch path). Does not charge
     * cycles; the kernel charges switch costs itself.
     */
    void setCurrent(GuestContext *ctx);

    /** Fast-forward an idle core's clock to a waker's time. */
    void syncTimeAtLeast(Tick t);

    /** End of the running thread's time slice (managed by the kernel). */
    Tick quantumEnd = maxTick;

    /** Resume the current thread and execute one op. */
    void step();

    /** Outcome of one runUntil() batch. */
    struct BatchResult
    {
        /** Ops executed (including the one that ended the batch). */
        unsigned ops = 0;
        /**
         * The batch ended on a kernel interaction (syscall, timer
         * tick, PMI delivery, thread exit) that may have changed
         * another core's clock or the set of busy cores; the caller
         * must re-derive its earliest-core ordering from scratch.
         * When false, only this core's clock advanced.
         */
        bool interacted = false;
    };

    /**
     * Horizon-batched execution: run consecutive ops of the current
     * thread while the core's clock stays strictly below `bound` and
     * below `poll_at`, up to `max_ops` ops. The first op always
     * executes (the caller has established this core is the global
     * earliest); the batch ends early after any op that is not
     * core-local (see sim::opIsCoreLocal) or that re-entered the
     * kernel (PMI delivery, quantum expiry, thread exit). Executes
     * the exact per-op sequence Machine's reference scheduler would:
     * `bound` must be chosen so this core would win the global
     * earliest-core pick for every tick below it.
     */
    BatchResult runUntil(Tick bound, Tick poll_at, Tick hard_limit,
                         unsigned max_ops);

    /**
     * Why a leased core handed control back (Machine::runSharded).
     * Every reason except Chunk parks the core: the worker publishes
     * the park and the coordinator replays the withheld serial action
     * (serialCatchUp) at parkKey() in exact global order.
     */
    enum class LeasePark : std::uint8_t
    {
        /** Op budget spent mid-run: core still leased, horizon moved. */
        Chunk,
        /** Non-core-local / slow op published in ctx.op, unexecuted. */
        PendingOp,
        /** An inline op queued a PMI or crossed the quantum end. */
        Epilogue,
        /** The guest body ran to completion (threadExited withheld). */
        Exit,
    };

    /** Outcome of one runLeased() chunk. */
    struct LeaseResult
    {
        LeasePark park = LeasePark::Chunk;
        /** Ops executed this chunk (thrash detection + accounting). */
        unsigned ops = 0;
    };

    /**
     * Worker-side execution on a leased core: the runUntil loop with
     * both horizons at maxTick — only commuting core-local ops run
     * (compute, regions, fast-path memory; superblock replay
     * included), and the core parks at the first op or epilogue that
     * would need the kernel, the shared memory path, or another
     * core's state. The guest's global-order position of the withheld
     * action is published via parkKey(). Runs on a worker thread: the
     * only Machine state it may touch is this core's own.
     */
    LeaseResult runLeased(Tick hard_limit, unsigned max_ops);

    /**
     * Global-order key of the action a park withheld: the value the
     * per-op reference scheduler's earliest-core pick would see for
     * it. PendingOp/Exit park at the pre-op clock; Epilogue parks at
     * the clock *before* the op that queued it (op + epilogue are one
     * atomic scheduler round in the oracle).
     */
    Tick parkKey() const { return parkKey_; }

    /**
     * Coordinator-side completion of a parked action, exactly as the
     * reference loop would have run it: deliver the epilogue (PMI
     * drain + possible timer tick), execute the pending op via the
     * classic round, or retire the exited thread. Must be called at
     * the park's global-order turn; afterwards the core is plain
     * serial state again.
     */
    void serialCatchUp(LeasePark reason);

    /** Ops executed under lease since the last take (worker-written). */
    std::uint64_t
    takeLeasedOps()
    {
        const std::uint64_t n = leasedOps_;
        leasedOps_ = 0;
        return n;
    }

    /** This core's superblock stats block (see Machine aggregate). */
    SuperblockStats &superblockStats() { return sbStats_; }
    const SuperblockStats &superblockStats() const { return sbStats_; }

    /**
     * OpAwaiter hook (horizon-batched mode only): execute `ctx.op`
     * right at the co_await point — without suspending the guest
     * coroutine — when it is core-local and the batch budget set up by
     * runUntil allows another op. Returns true when the op executed
     * AND the guest may keep running; false when the guest must take
     * the suspend path (op not executed — classic scheduler round — or
     * executed with `ctx.opConsumedInline` set because the batch is
     * over). Ops that queue a PMI or cross the quantum end are
     * consumed but never continued: their drain/timer epilogue can
     * context-switch, so runUntil replays it once the coroutine is
     * safely suspended.
     */
    bool tryInlineOp(GuestContext &ctx);

    /**
     * Superblock replay completed its final planned op (called from
     * GuestContext::sbStep via superblockFinishReplay): commit the
     * deferred deltas. Returns true when the guest may keep running
     * inline, false (with ctx.opConsumedInline) when the replay
     * consumed the whole batch budget.
     */
    bool sbFinishReplay(GuestContext &ctx);

    /**
     * Mid-replay stall on a memory op that left the recorded fast
     * path (called from GuestContext::sbStep via superblockStallMem):
     * commit the replayed span, execute the op on the full path right
     * here, and resume the same block at the next offset — skipping
     * the detector, hint, and candidate machinery entirely. Falls
     * back to the plain flush (entry-miss bookkeeping included) when
     * the replay had made no progress, and to the suspend path when
     * the op budget or a horizon refuses the op. Returns true when
     * the op was consumed and the guest may keep running inline.
     */
    bool sbStallMem(GuestContext &ctx);

    /**
     * Enable/disable the superblock cache on this core's hot path
     * (set by Machine::runBatched / runPerOp per run). Enabling
     * snapshots the memory model's fast-peek view once for the whole
     * run — its pointers are stable for the life of the machine ↔
     * memory binding, which cannot change mid-run — so runUntil
     * rounds don't pay the virtual fastPeekView call.
     */
    void setSuperblocksEnabled(bool on);

    /**
     * Charge `cycles` of kernel-mode work to the current thread (or to
     * nobody when idle), applying PMU/ledger events and advancing time.
     */
    void kernelWork(Tick cycles);

    /**
     * Attach this core's timeline lane (nullptr detaches). Set by
     * Machine::setTimeline; `interval_ticks` must be > 0 when a lane
     * is attached. With no lane the hot-path cost is one always-false
     * predicted branch per apply.
     */
    void setTimelineLane(TimelineLane *lane, Tick interval_ticks);

    /**
     * Apply event deltas in `mode` to the current thread's ledger and
     * the PMU; queues PMIs for overflowed interrupt-enabled counters.
     * Inline: runs once per guest op.
     */
    void
    applyEvents(PrivMode mode, const EventDeltas &deltas)
    {
        if (tlLane_ != nullptr) [[unlikely]] {
            if (now_ >= tlNextBoundary_)
                tlRoll();
            tlLane_->cur += deltas;
        }
        if (current_)
            current_->ledger().apply(mode, deltas);
        WrapEvent ev[maxPmuCounters];
        const unsigned wrapped = pmu_.applyFast(mode, deltas, ev);
        for (unsigned k = 0; k < wrapped; ++k) {
            if (pmu_.config(ev[k].counter).interruptOnOverflow)
                pendingPmis_.push_back({ev[k].counter, ev[k].wraps});
        }
    }

    /** One (event, count) pair for the sparse apply path. */
    struct SparseDelta
    {
        EventType event;
        std::uint64_t count;
    };

    /**
     * applyEvents for ops whose deltas are a handful of known events
     * (an all-hit load, a compute block): identical counting and PMI
     * behaviour, but N scattered adds instead of zero-initializing
     * and applying the dense 11-event array. Inline: this is the
     * hottest few instructions in the simulator.
     */
    template <unsigned N>
    void
    applyFewEvents(PrivMode mode, const SparseDelta (&d)[N])
    {
        if (tlLane_ != nullptr) [[unlikely]] {
            if (now_ >= tlNextBoundary_)
                tlRoll();
            for (unsigned i = 0; i < N; ++i)
                tlLane_->cur[d[i].event] += d[i].count;
        }
        if (current_) {
            auto &ledger = current_->ledger();
            for (unsigned i = 0; i < N; ++i)
                ledger.add(mode, d[i].event, d[i].count);
        }
        WrapEvent ev[maxPmuCounters];
        const unsigned wrapped = pmu_.applyActive(
            mode,
            [&](unsigned e) {
                std::uint64_t n = 0;
                for (unsigned i = 0; i < N; ++i) {
                    if (static_cast<unsigned>(d[i].event) == e)
                        n += d[i].count;
                }
                return n;
            },
            ev);
        for (unsigned k = 0; k < wrapped; ++k) {
            if (pmu_.config(ev[k].counter).interruptOnOverflow)
                pendingPmis_.push_back({ev[k].counter, ev[k].wraps});
        }
    }

    /** Deliver queued PMIs (with a storm guard). */
    void
    drainOverflows()
    {
        if (pendingPmis_.empty())
            return;
        drainOverflowsSlow();
    }

  private:
    void drainOverflowsSlow();
    /**
     * Cold path of the timeline hook: flush the lane's accumulator
     * into its slice and re-anchor at the slice holding `now_`.
     */
    void tlRoll();
    /**
     * Try to arm a superblock replay for the op about to execute:
     * checks fault plans, pending PMIs, the batch horizon/poll/quantum
     * limits, the op budget, PMU headroom (no counter may wrap inside
     * the replay), and the memory fast-path view, then sizes the
     * replay to the largest iteration count safe under all of them.
     */
    bool sbTryEnter(GuestContext &ctx, Superblock &block,
                    std::uint32_t start);
    /**
     * Shared sizing core of sbTryEnter/sbResume: the largest iteration
     * count safe under the batch horizon, poll deadline, quantum end,
     * hard limit, op budget, and PMU no-wrap headroom. False (with the
     * refusal counted) when not even one iteration fits.
     */
    bool sbSizeIters(const Superblock &block, std::uint64_t &iters);
    /**
     * Re-arm the just-committed replay after a bridged stall: same
     * block, same peek view, fresh sizing, starting at op `start`.
     */
    bool sbResume(GuestContext &ctx, Superblock &block,
                  std::uint32_t start);
    /**
     * Commit a replay's deferred effects (one applyFewEvents call plus
     * bulk memory-model credits) and clear the cursor. `partial` marks
     * replays ended by an op mismatch rather than by plan.
     */
    void sbCommitReplay(GuestContext &ctx, bool partial);
    void executeOp(GuestContext &ctx);
    void execCompute(GuestContext &ctx, const PendingOp &op);
    void execMemory(GuestContext &ctx, const PendingOp &op);
    /**
     * Fast-path half of execMemory: probe tryFastAccess and, on a
     * hit, charge + count the access. False on a miss (no state
     * changed beyond the per-core probe). The only memory path a
     * leased core may take — the full path touches shared levels.
     */
    bool execMemoryFast(GuestContext &ctx, const PendingOp &op);
    /**
     * execMemory for an op already known to miss the fast path (the
     * bridge validated the exact tryFastAccess predicate through the
     * live peek view an op ago); skips re-probing it.
     */
    void execMemorySlow(GuestContext &ctx, const PendingOp &op);
    void execAtomic(GuestContext &ctx, const PendingOp &op);
    void execPmcRead(GuestContext &ctx, const PendingOp &op);
    void execSyscall(GuestContext &ctx, const PendingOp &op);
    void execRegion(GuestContext &ctx, const PendingOp &op);

    struct PendingPmi
    {
        unsigned counter;
        std::uint32_t wraps;
        /** Fault controller consulted (consult exactly once per PMI). */
        bool vetted = false;
        /** Earliest delivery time (fault-injected delay; 0 = now). */
        Tick notBefore = 0;
    };

    /**
     * Pending-PMI queue with inline storage. One op can wrap at most
     * maxPmuCounters counters, and the queue drains at every op
     * boundary, so the only way past the inline capacity is a fault
     * plan holding deliveries back (notBefore in the future) across
     * many ops — entries then spill to a heap vector. The common
     * PMI path therefore never touches the allocator.
     */
    class PmiQueue
    {
      public:
        bool empty() const { return inlineCount_ == 0; }

        std::size_t
        size() const
        {
            return inlineCount_ + spill_.size();
        }

        PendingPmi &
        operator[](std::size_t i)
        {
            return i < inlineCount_ ? inline_[i]
                                    : spill_[i - inlineCount_];
        }

        void
        push_back(const PendingPmi &p)
        {
            if (inlineCount_ < inline_.size())
                inline_[inlineCount_++] = p;
            else
                spill_.push_back(p);
        }

        void
        erase(std::size_t i)
        {
            if (i < inlineCount_) {
                for (std::size_t j = i; j + 1 < inlineCount_; ++j)
                    inline_[j] = inline_[j + 1];
                if (!spill_.empty()) {
                    inline_[inlineCount_ - 1] = spill_.front();
                    spill_.erase(spill_.begin());
                } else {
                    --inlineCount_;
                }
            } else {
                spill_.erase(spill_.begin() +
                             static_cast<std::ptrdiff_t>(i -
                                                         inlineCount_));
            }
        }

      private:
        std::array<PendingPmi, 2 * maxPmuCounters> inline_{};
        std::size_t inlineCount_ = 0;
        std::vector<PendingPmi> spill_;
    };

    CoreId id_;
    Machine &machine_;
    CostModel costs_;
    Pmu pmu_;
    Tick now_ = 0;
    GuestContext *current_ = nullptr;
    PmiQueue pendingPmis_;
    double kernelInstrResidue_ = 0.0;
    bool draining_ = false;
    /**
     * Set by any path that re-enters the kernel mid-op (timer tick,
     * PMI delivery, syscall): tells runUntil the global schedule may
     * have changed and the batch must end. Cleared per op by
     * runUntil; meaningless (and harmless) in per-op mode.
     */
    bool kernelRound_ = false;

    /** @name runUntil batch budget (consumed by tryInlineOp) @{ */
    Tick batchBound_ = 0;
    Tick batchPollAt_ = 0;
    Tick batchHardLimit_ = 0;
    unsigned batchOpsLeft_ = 0;
    /** A PMI drain / timer tick was deferred to scheduler context. */
    bool epiloguePending_ = false;
    /** @} */

    /** @name Lease state (Machine::runSharded; see DESIGN.md) @{ */
    /**
     * True only inside runLeased: routes memory ops to the fast path
     * exclusively and makes every kernel-needing action park instead
     * of executing.
     */
    bool leaseMode_ = false;
    /** See parkKey(). Captured at each op's pre-op clock. */
    Tick parkKey_ = 0;
    /** Ops executed under lease (worker-written, summed after join). */
    std::uint64_t leasedOps_ = 0;
    /** @} */

    /**
     * Superblock stats are per core so leased cores never write a
     * machine-shared counter block; Machine::superblockStats() sums
     * them. SuperblockState instances re-bind on install.
     */
    SuperblockStats sbStats_;

    /** @name Superblock cache state @{ */
    /** Replay/record active for this run (batched mode only). */
    bool sbEnabled_ = false;
    /**
     * Fast-path latency of the most recent Load/Store executed by
     * execMemory (0 = took the full access() path). Lets the recorder
     * classify memory ops without re-probing the hierarchy.
     */
    Tick lastFastLat_ = 0;
    /**
     * Memory model's fast-path probe view, refreshed once per batch
     * round (the model can be swapped between runs, never inside a
     * round) so sbTryEnter pays no virtual call per entry.
     */
    FastPeekView sbPeek_{};
    /** @} */

    /** @name Timeline capture (nullptr lane = disabled) @{ */
    TimelineLane *tlLane_ = nullptr;
    Tick tlInterval_ = 0;
    /**
     * First tick of the slice after tlLane_->curIndex; maxTick when
     * detached so the hot-path compare is always false. May be stale
     * (<= now_) between applies — events apply before the clock
     * advances — so every consumer rolls first.
     */
    Tick tlNextBoundary_ = maxTick;
    /** @} */
};

} // namespace limit::sim

#endif // LIMIT_SIM_CPU_HH
