/**
 * @file
 * One simulated core: executes guest ops, owns a PMU, tracks local time.
 */

#ifndef LIMIT_SIM_CPU_HH
#define LIMIT_SIM_CPU_HH

#include <vector>

#include "sim/cost_model.hh"
#include "sim/guest.hh"
#include "sim/pmu.hh"
#include "sim/types.hh"

namespace limit::sim {

class Machine;
class KernelIf;
class MemoryIf;

/**
 * A single in-order core.
 *
 * The Machine steps whichever non-idle core has the smallest local
 * time; a step resumes the core's current thread, executes exactly one
 * primitive op, charges its cost, applies events to the PMU and the
 * thread's ground-truth ledger, and delivers any interrupts that
 * became pending (PMU overflow, end-of-quantum timer).
 */
class Cpu
{
  public:
    Cpu(CoreId id, Machine &machine, const CostModel &costs,
        unsigned pmu_counters, const PmuFeatures &pmu_features);

    CoreId id() const { return id_; }
    Tick now() const { return now_; }
    Pmu &pmu() { return pmu_; }
    const Pmu &pmu() const { return pmu_; }
    const CostModel &costs() const { return costs_; }
    Machine &machine() { return machine_; }

    /** Thread currently installed on this core (nullptr when idle). */
    GuestContext *current() { return current_; }
    bool idle() const { return current_ == nullptr; }

    /**
     * Install a thread (kernel context-switch path). Does not charge
     * cycles; the kernel charges switch costs itself.
     */
    void setCurrent(GuestContext *ctx);

    /** Fast-forward an idle core's clock to a waker's time. */
    void syncTimeAtLeast(Tick t);

    /** End of the running thread's time slice (managed by the kernel). */
    Tick quantumEnd = maxTick;

    /** Resume the current thread and execute one op. */
    void step();

    /**
     * Charge `cycles` of kernel-mode work to the current thread (or to
     * nobody when idle), applying PMU/ledger events and advancing time.
     */
    void kernelWork(Tick cycles);

    /**
     * Apply event deltas in `mode` to the current thread's ledger and
     * the PMU; queues PMIs for overflowed interrupt-enabled counters.
     * Inline: runs once per guest op.
     */
    void
    applyEvents(PrivMode mode, const EventDeltas &deltas)
    {
        if (current_)
            current_->ledger().apply(mode, deltas);
        WrapEvent ev[maxPmuCounters];
        const unsigned wrapped = pmu_.applyFast(mode, deltas, ev);
        for (unsigned k = 0; k < wrapped; ++k) {
            if (pmu_.config(ev[k].counter).interruptOnOverflow)
                pendingPmis_.push_back({ev[k].counter, ev[k].wraps});
        }
    }

    /** Deliver queued PMIs (with a storm guard). */
    void
    drainOverflows()
    {
        if (pendingPmis_.empty())
            return;
        drainOverflowsSlow();
    }

  private:
    void drainOverflowsSlow();
    void executeOp(GuestContext &ctx);
    void execCompute(GuestContext &ctx, const PendingOp &op);
    void execMemory(GuestContext &ctx, const PendingOp &op);
    void execAtomic(GuestContext &ctx, const PendingOp &op);
    void execPmcRead(GuestContext &ctx, const PendingOp &op);
    void execSyscall(GuestContext &ctx, const PendingOp &op);
    void execRegion(GuestContext &ctx, const PendingOp &op);

    struct PendingPmi
    {
        unsigned counter;
        std::uint32_t wraps;
        /** Fault controller consulted (consult exactly once per PMI). */
        bool vetted = false;
        /** Earliest delivery time (fault-injected delay; 0 = now). */
        Tick notBefore = 0;
    };

    CoreId id_;
    Machine &machine_;
    CostModel costs_;
    Pmu pmu_;
    Tick now_ = 0;
    GuestContext *current_ = nullptr;
    std::vector<PendingPmi> pendingPmis_;
    double kernelInstrResidue_ = 0.0;
    bool draining_ = false;
};

} // namespace limit::sim

#endif // LIMIT_SIM_CPU_HH
