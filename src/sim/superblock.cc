#include "sim/superblock.hh"

#include <bit>
#include <cmath>

#include "sim/guest.hh"

namespace limit::sim {

namespace {

std::uint64_t
doubleBits(double d)
{
    return std::bit_cast<std::uint64_t>(d);
}

/** Exact identity compare, matching the replay validation rules. */
bool
sameOp(const MicroOp &a, const MicroOp &b)
{
    if (a.kind != b.kind || a.baseCost != b.baseCost)
        return false;
    if (a.kind != OpKind::Compute)
        return true;
    return a.instrs == b.instrs &&
           doubleBits(a.profile.branchFrac) ==
               doubleBits(b.profile.branchFrac) &&
           doubleBits(a.profile.mispredictRate) ==
               doubleBits(b.profile.mispredictRate) &&
           doubleBits(a.profile.cpi) == doubleBits(b.profile.cpi);
}

std::uint64_t
fingerprint(const MicroOp &m)
{
    std::uint64_t h = static_cast<std::uint64_t>(m.kind) + 1;
    h = (h ^ m.instrs) * 0x9E3779B97F4A7C15ull;
    h = (h ^ m.baseCost) * 0xC2B2AE3D27D4EB4Full;
    if (m.kind == OpKind::Compute) {
        h = (h ^ doubleBits(m.profile.branchFrac)) * 0x165667B19E3779F9ull;
        h = (h ^ doubleBits(m.profile.mispredictRate)) *
            0x27D4EB2F165667C5ull;
        h = (h ^ doubleBits(m.profile.cpi)) * 0x9E3779B97F4A7C15ull;
    }
    return h ^ (h >> 29);
}

/** Mirror of Cpu::execCompute's base-cost computation. */
Tick
computeBaseCost(std::uint64_t instrs, const ComputeProfile &p)
{
    return p.cpi == 1.0
        ? instrs
        : static_cast<Tick>(
              std::ceil(static_cast<double>(instrs) * p.cpi));
}

/** True when two blocks contain the same loop body, up to rotation. */
bool
sameBlockRotated(const std::vector<MicroOp> &a,
                 const std::vector<MicroOp> &b)
{
    const std::size_t n = a.size();
    if (n != b.size())
        return false;
    for (std::size_t rot = 0; rot < n; ++rot) {
        bool match = true;
        for (std::size_t i = 0; i < n && match; ++i)
            match = sameOp(a[i], b[(i + rot) % n]);
        if (match)
            return true;
    }
    return false;
}

} // namespace

void
SuperblockState::record(OpKind kind, std::uint64_t instrs,
                        const ComputeProfile &profile, Tick fast_lat)
{
    consumeHintFreshness();
    ++stats_->opsRecorded;

    const bool mem = kind == OpKind::Load || kind == OpKind::Store;
    if (!(kind == OpKind::Compute || (mem && fast_lat != 0))) {
        // Region markers and slow memory accesses are executed
        // inline but are not replayable; a block can never span one.
        candPeriod_ = 0;
        streak_ = 0;
        seq_ = 0;
        noteIdle();
        return;
    }

    MicroOp m;
    m.kind = kind;
    if (kind == OpKind::Compute) {
        m.instrs = instrs;
        m.profile = profile;
        m.branchStep = static_cast<double>(instrs) * profile.branchFrac;
        m.baseCost = computeBaseCost(instrs, profile);
    } else {
        m.baseCost = fast_lat;
    }
    const std::uint64_t fp = fingerprint(m);
    const std::uint64_t mask = histSize - 1;

    if (candPeriod_ != 0 && seq_ >= candPeriod_ &&
        sameOp(hist_[(n_ - candPeriod_) & mask].op, m)) {
        ++streak_;
    } else {
        // (Re)seed the candidate period from the last position this
        // op's fingerprint was seen at. The `lag <= seq_` guard keeps
        // stale table entries (from before a discontinuity, or hash
        // collisions long past) from producing a period that would
        // reach across non-contiguous history.
        const std::uint64_t lag = n_ - lastSeen_[fp & 63];
        candPeriod_ =
            (lag >= 1 && lag <= maxPeriod && lag <= seq_)
                ? static_cast<unsigned>(lag)
                : 0;
        streak_ = 0;
    }
    hist_[n_ & mask] = {m, fp};
    lastSeen_[fp & 63] = n_;
    ++n_;
    ++seq_;

    if (candPeriod_ != 0) {
        idle_ = 0;
        if (streak_ >= 2 * candPeriod_)
            tryForm();
    } else {
        noteIdle();
    }
}

void
SuperblockState::tryForm()
{
    const unsigned p = candPeriod_;
    const std::uint64_t mask = histSize - 1;
    // Whatever happens below, demand fresh periodicity evidence
    // before trying to form again.
    candPeriod_ = 0;
    streak_ = 0;

    // The streak guarantees the last 2p recorded ops are contiguous
    // and lag-p periodic; the block is the most recent period, so the
    // next recorded op is expected to be ops[0] again.
    std::vector<MicroOp> ops(p);
    for (unsigned i = 0; i < p; ++i)
        ops[i] = hist_[(n_ - p + i) & mask].op;

    // Re-forming the same loop (or a rotation of it) is common right
    // after a replay flush; keep the existing block and its stats.
    for (unsigned i = 0; i < blockCount_; ++i) {
        if (sameBlockRotated(blocks_[i].ops, ops))
            return;
    }

    Superblock b;
    b.ops = std::move(ops);
    Tick memLat = 0;
    std::uint64_t branchesUb = 0;
    for (MicroOp &m : b.ops) {
        m.prefixBase = b.iterBase;
        m.prefixInstrs = b.iterInstrs;
        m.prefixLoads = b.iterLoads;
        m.prefixStores = b.iterStores;
        b.iterBase += m.baseCost;
        if (m.kind == OpKind::Compute) {
            b.iterInstrs += m.instrs;
            if (m.profile.branchFrac != 0.0) {
                // branches = floor(branchStep + residue), residue < 1.
                branchesUb +=
                    static_cast<std::uint64_t>(m.branchStep) + 1;
            }
        } else {
            b.iterInstrs += 1;
            ++b.numMemOps;
            if (m.kind == OpKind::Load)
                b.iterLoads += 1;
            else
                b.iterStores += 1;
            if (memLat != 0 && memLat != m.baseCost)
                return; // mixed fast-path latencies; not replayable
            memLat = m.baseCost;
        }
    }
    b.memLat = memLat;
    b.maxIterCycles = b.iterBase + branchesUb * mispredictPenalty_;
    if (b.maxIterCycles == 0)
        return; // a zero-cost loop would replay unboundedly
    using E = EventType;
    b.iterUb[static_cast<unsigned>(E::Cycles)] = b.maxIterCycles;
    b.iterUb[static_cast<unsigned>(E::Instructions)] = b.iterInstrs;
    b.iterUb[static_cast<unsigned>(E::Loads)] = b.iterLoads;
    b.iterUb[static_cast<unsigned>(E::Stores)] = b.iterStores;
    b.iterUb[static_cast<unsigned>(E::Branches)] = branchesUb;
    b.iterUb[static_cast<unsigned>(E::BranchMisses)] = branchesUb;

    unsigned slot;
    if (blockCount_ < maxBlocks) {
        slot = blockCount_++;
    } else {
        slot = nextEvict_;
        nextEvict_ = (nextEvict_ + 1) % maxBlocks;
        if (hintBlock_ == &blocks_[slot])
            hintBlock_ = nullptr;
    }
    blocks_[slot] = std::move(b);
    ++stats_->blocksFormed;
}

} // namespace limit::sim
