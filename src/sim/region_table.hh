/**
 * @file
 * String-interning table for attribution regions.
 *
 * Regions name the code segments that profiling attributes costs to
 * (e.g. "lock-acquire", "btree-search", "handler:paint"). Both
 * precise counting and the sampling profiler attribute to RegionIds.
 */

#ifndef LIMIT_SIM_REGION_TABLE_HH
#define LIMIT_SIM_REGION_TABLE_HH

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "sim/types.hh"

namespace limit::sim {

/** Bidirectional name <-> RegionId map. */
class RegionTable
{
  public:
    /** Intern `name`, returning a stable id. */
    RegionId intern(std::string_view name);

    /** Look up an existing region; returns noRegion when absent. */
    RegionId find(std::string_view name) const;

    /** Name for an id ("<none>" for noRegion). */
    const std::string &name(RegionId id) const;

    /** Number of interned regions. */
    std::size_t size() const { return names_.size(); }

  private:
    std::vector<std::string> names_;
    std::unordered_map<std::string, RegionId> ids_;
};

} // namespace limit::sim

#endif // LIMIT_SIM_REGION_TABLE_HH
