/**
 * @file
 * Bounded adversarial exploration of the PEC read window.
 *
 * The chaos and property tests probe the overflow/preemption races
 * with seeded randomness — they *hope* a seed lands a fault inside the
 * few-instruction window. The Explorer replaces hope with enumeration:
 * it runs one small victim/competitor scenario once per element of the
 * cross product
 *
 *   ({no fault} ∪ {preempt at step s, occurrence n})
 * × ({no fault} ∪ {overflow at step s, occurrence n})
 *
 * over every read-window step the chosen policy visits and every
 * occurrence up to the read count — every way a forced context switch
 * and a forced counter wrap can land inside (or straddle) the window,
 * up to the bound. Each run checks every read the victim performs
 * against the ground-truth ledger (plus the controller's injected
 * bias), so a pass is a small model-checking proof: no interleaving
 * within the bound can make the policy return a wrong count.
 *
 * Safe policies (kernel-fixup, double-check) must report zero
 * violations; naive-sum must not (its undercount-by-2^width is exactly
 * what the enumeration exposes); policy none is checked modulo the
 * counter width (all a bare rdpmc promises). Failing runs are reported
 * as `--faults` replay strings.
 */

#ifndef LIMIT_FAULT_EXPLORER_HH
#define LIMIT_FAULT_EXPLORER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "pec/session.hh"
#include "sim/types.hh"

namespace limit::fault {

/** Exploration bounds and scenario shape. */
struct ExplorerOptions
{
    /** Read policy under test. */
    pec::OverflowPolicy policy = pec::OverflowPolicy::DoubleCheck;
    /** Reads the victim performs per run (also bounds occurrences). */
    unsigned reads = 3;
    /** Victim instructions between reads. */
    std::uint64_t workPerRead = 400;
    /** Counter width; small widths make wraps reachable. */
    unsigned counterWidth = 16;
    /** Events left before wrap when the overflow fault arms (≥ 1). */
    std::uint64_t overflowMargin = 1;
    /** Scheduler quantum (small: natural preemptions too). */
    sim::Tick quantum = 20'000;
    /** Kernel RNG seed (varies competitor placement noise). */
    std::uint64_t seed = 1;
};

/** What the enumeration found. */
struct ExplorerResult
{
    /** Runs executed (size of the enumerated cross product). */
    std::uint64_t interleavings = 0;
    /** Individual reads checked across all runs. */
    std::uint64_t reads = 0;
    /** Reads whose result broke the exactness invariant. */
    std::uint64_t violations = 0;
    /** Total faults injected across all runs. */
    std::uint64_t injected = 0;
    /** Replay strings (--faults grammar) of the violating runs. */
    std::vector<std::string> failingPlans;
};

/**
 * Enumerate every bounded interleaving for `opts` and verify read
 * exactness in each. Deterministic: same options, same result.
 */
ExplorerResult explore(const ExplorerOptions &opts);

} // namespace limit::fault

#endif // LIMIT_FAULT_EXPLORER_HH
