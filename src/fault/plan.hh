/**
 * @file
 * Deterministic fault plans: what to break, where, and when.
 *
 * A Plan is an ordered list of FaultSpecs, each naming an injection
 * site (one of the simulator's hazard seams) and a trigger (which
 * occurrence, which counter, which read-window step). Plans parse from
 * the `--faults=<spec>` bench flag and print back to the same grammar,
 * so any injected failure is replayable from one string (see
 * docs/FAULTS.md for the grammar and the site catalogue).
 *
 * PlanController executes a Plan against a machine: it implements the
 * FaultController hooks, arms each spec, fires it on the nth matching
 * trigger, and emits a FaultInjected trace record per injection. For
 * overflow injection it also tracks the artificial counter jump it
 * introduced (counterBias), so exactness checks can still predict what
 * a correct read policy must return.
 */

#ifndef LIMIT_FAULT_PLAN_HH
#define LIMIT_FAULT_PLAN_HH

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "fault/controller.hh"
#include "sim/pmu.hh"
#include "sim/types.hh"

namespace limit::sim {
class Machine;
}

namespace limit::fault {

/** Injection sites — one per hazard seam the simulator exposes. */
enum class Site : std::uint8_t {
    /** Force an involuntary context switch inside a PEC read window. */
    PreemptRead = 0,
    /** Arm the counter to overflow `margin` events into a read window. */
    OverflowRead,
    /** Discard a pending PMI for the matching counter. */
    DropPmi,
    /** Hold a pending PMI back for `ticks` before delivery. */
    DelayPmi,
    /** Skip one counter save at switch-out (stale saved value). */
    SkipSave,
    /** Replace one saved counter value with `value`. */
    CorruptSave,
    /** Skip one counter restore at switch-in (stale hardware value). */
    SkipRestore,
    /** Replace one restored counter value with `value`. */
    CorruptRestore,
    /** Wake a futex waiter spuriously `ticks` after it blocks. */
    SpuriousWake,
    /** Stall the matching syscall's slow path by `ticks` of kernel work. */
    StallSyscall,
    /**
     * Fold `value` phantom instructions into a superblock replay
     * commit (default 1). Unlike every other site this one *enables*
     * replay while armed (a plan made only of corrupt-replay specs
     * answers allowSuperblockReplay() = true): it deliberately breaks
     * the fast path's bit-identity contract so the divergence sentinel
     * can be exercised end to end (see docs/ROBUSTNESS.md).
     */
    CorruptReplay,
    NumSites, // must be last
};

/** Number of distinct injection sites. */
inline constexpr unsigned numSites = static_cast<unsigned>(Site::NumSites);

/** Stable kebab-case site name (the grammar's site token). */
std::string_view siteName(Site s);

/** Parse a site token; returns false on unknown names. */
bool parseSite(std::string_view text, Site &out);

/** `nr` wildcard: match every syscall. */
inline constexpr std::uint32_t anySyscall = ~0u;

/**
 * One armed fault. Only the fields a site consults matter to it; the
 * rest keep their defaults (see docs/FAULTS.md for the per-site key
 * table).
 */
struct FaultSpec
{
    Site site = Site::NumSites;
    /** Read-window step to fire at (ReadStep index; read sites). */
    unsigned step = 1;
    /** Hardware counter to match (read/PMI/save/restore sites). */
    unsigned ctr = 0;
    /** Replacement value (corrupt-save / corrupt-restore). */
    std::uint64_t value = 0;
    /** Events left before wrap when arming an overflow (≥ 1). */
    std::uint64_t margin = 1;
    /** Injected latency (delay-pmi / spurious-wake / stall-syscall). */
    sim::Tick ticks = 1000;
    /** Syscall number to match (stall-syscall); anySyscall = all. */
    std::uint32_t nr = anySyscall;
    /** Fire on the nth matching trigger (1-based); 0 = every time. */
    std::uint64_t nth = 1;
};

/** An ordered, replayable set of fault specs. */
class Plan
{
  public:
    Plan() = default;

    Plan &
    add(const FaultSpec &spec)
    {
        specs_.push_back(spec);
        return *this;
    }

    const std::vector<FaultSpec> &specs() const { return specs_; }
    bool empty() const { return specs_.empty(); }

    /**
     * Parse the `--faults` grammar:
     *   plan  := item (';' item)*
     *   item  := site (':' key '=' uint)*
     * On failure, returns false and sets `error` to a one-line
     * diagnostic; `out` is left unspecified.
     */
    static bool parse(std::string_view text, Plan &out,
                      std::string &error);

    /** Canonical replay string (round-trips through parse). */
    std::string str() const;

  private:
    std::vector<FaultSpec> specs_;
};

/**
 * Executes a Plan against one machine. Attach with
 * machine.setFaults(&controller); detach (or let the plan run dry)
 * to stop injecting. Deterministic: firing depends only on the
 * simulation's own event sequence.
 */
class PlanController : public FaultController
{
  public:
    PlanController(sim::Machine &machine, Plan plan);

    /** Total injections performed. */
    std::uint64_t injected() const { return injected_; }

    /** Injections at one site. */
    std::uint64_t
    injectedAt(Site s) const
    {
        return injectedAt_[static_cast<unsigned>(s)];
    }

    /**
     * Net artificial value injected into counter `ctr` by overflow
     * arming (wrapping uint64). A correct read policy must return
     * ledger + bias; anything else lost or double-counted events.
     */
    std::uint64_t
    counterBias(unsigned ctr) const
    {
        return bias_[ctr];
    }

    /** @name FaultController @{ */
    void onPecReadStep(sim::GuestContext &ctx, unsigned ctr,
                       ReadStep step) override;
    PmiAction onPmiDeliver(sim::Cpu &cpu, unsigned ctr,
                           std::uint32_t wraps) override;
    SaveRestoreAction onCounterSave(sim::Cpu &cpu, sim::ThreadId tid,
                                    unsigned ctr,
                                    std::uint64_t value) override;
    SaveRestoreAction onCounterRestore(sim::Cpu &cpu, sim::ThreadId tid,
                                       unsigned ctr,
                                       std::uint64_t value) override;
    sim::Tick onSyscallEnter(sim::Cpu &cpu, sim::ThreadId tid,
                             std::uint32_t nr) override;
    sim::Tick onFutexBlock(sim::Cpu &cpu, sim::ThreadId tid,
                           const std::uint64_t *word) override;
    bool allowSuperblockReplay() const override;
    std::uint64_t onSuperblockCommit(sim::Cpu &cpu, sim::ThreadId tid,
                                     std::uint64_t opsReplayed) override;
    /** @} */

  protected:
    /** One spec plus its firing state. */
    struct Armed
    {
        FaultSpec spec;
        std::uint64_t hits = 0;
        bool fired = false;
    };

    /**
     * Count a trigger match and decide whether to fire: nth == 0 fires
     * every time, otherwise exactly once on the nth match.
     */
    bool due(Armed &a);

    /** Record one injection (counters + FaultInjected tracepoint). */
    void note(sim::CoreId core, sim::Tick tick, sim::ThreadId tid,
              Site site, std::uint64_t arg);

    sim::Machine &machine_;
    std::vector<Armed> armed_;
    std::array<std::uint64_t, sim::maxPmuCounters> bias_{};
    std::uint64_t injected_ = 0;
    std::array<std::uint64_t, numSites> injectedAt_{};
};

} // namespace limit::fault

#endif // LIMIT_FAULT_PLAN_HH
