#include "fault/plan.hh"

#include <cstdlib>
#include <sstream>

#include "base/logging.hh"
#include "sim/cpu.hh"
#include "sim/machine.hh"
#include "trace/trace.hh"

namespace limit::fault {

std::string_view
siteName(Site s)
{
    switch (s) {
      case Site::PreemptRead: return "preempt-read";
      case Site::OverflowRead: return "overflow-read";
      case Site::DropPmi: return "drop-pmi";
      case Site::DelayPmi: return "delay-pmi";
      case Site::SkipSave: return "skip-save";
      case Site::CorruptSave: return "corrupt-save";
      case Site::SkipRestore: return "skip-restore";
      case Site::CorruptRestore: return "corrupt-restore";
      case Site::SpuriousWake: return "spurious-wake";
      case Site::StallSyscall: return "stall-syscall";
      case Site::CorruptReplay: return "corrupt-replay";
      default: return "?";
    }
}

bool
parseSite(std::string_view text, Site &out)
{
    for (unsigned s = 0; s < numSites; ++s) {
        if (text == siteName(static_cast<Site>(s))) {
            out = static_cast<Site>(s);
            return true;
        }
    }
    return false;
}

namespace {

bool
parseUint(std::string_view text, std::uint64_t &out)
{
    if (text.empty())
        return false;
    const std::string buf(text);
    char *end = nullptr;
    errno = 0;
    const unsigned long long v = std::strtoull(buf.c_str(), &end, 10);
    if (errno != 0 || end != buf.c_str() + buf.size())
        return false;
    // strtoull silently negates "-1"; the grammar has no negatives.
    if (buf[0] == '-' || buf[0] == '+')
        return false;
    out = v;
    return true;
}

bool
applyKey(FaultSpec &spec, std::string_view key, std::string_view val,
         std::string &error)
{
    std::uint64_t v = 0;
    if (!parseUint(val, v)) {
        error = "bad value '" + std::string(val) + "' for key '" +
                std::string(key) + "' (unsigned integer expected)";
        return false;
    }
    if (key == "step") {
        if (v >= numReadSteps) {
            error = "step must be < " + std::to_string(numReadSteps);
            return false;
        }
        spec.step = static_cast<unsigned>(v);
    } else if (key == "ctr") {
        if (v >= sim::maxPmuCounters) {
            error = "ctr must be < " +
                    std::to_string(sim::maxPmuCounters);
            return false;
        }
        spec.ctr = static_cast<unsigned>(v);
    } else if (key == "value") {
        spec.value = v;
    } else if (key == "margin") {
        if (v == 0) {
            error = "margin must be >= 1";
            return false;
        }
        spec.margin = v;
    } else if (key == "ticks") {
        spec.ticks = v;
    } else if (key == "nr") {
        spec.nr = static_cast<std::uint32_t>(v);
    } else if (key == "nth") {
        spec.nth = v;
    } else {
        error = "unknown key '" + std::string(key) +
                "' (expected step|ctr|value|margin|ticks|nr|nth)";
        return false;
    }
    return true;
}

bool
parseItem(std::string_view item, FaultSpec &spec, std::string &error)
{
    std::size_t pos = item.find(':');
    const std::string_view name = item.substr(0, pos);
    if (!parseSite(name, spec.site)) {
        std::string all;
        for (unsigned s = 0; s < numSites; ++s) {
            if (s > 0)
                all += '|';
            all += siteName(static_cast<Site>(s));
        }
        error = "unknown fault site '" + std::string(name) +
                "' (expected " + all + ")";
        return false;
    }
    while (pos != std::string_view::npos) {
        const std::string_view rest = item.substr(pos + 1);
        const std::size_t next = rest.find(':');
        const std::string_view kv = rest.substr(0, next);
        const std::size_t eq = kv.find('=');
        if (eq == std::string_view::npos) {
            error = "expected key=value after '" + std::string(name) +
                    ":', got '" + std::string(kv) + "'";
            return false;
        }
        if (!applyKey(spec, kv.substr(0, eq), kv.substr(eq + 1), error))
            return false;
        pos = next == std::string_view::npos
            ? std::string_view::npos
            : pos + 1 + next;
    }
    return true;
}

} // namespace

bool
Plan::parse(std::string_view text, Plan &out, std::string &error)
{
    out = Plan();
    if (text.empty()) {
        error = "empty fault plan";
        return false;
    }
    std::size_t start = 0;
    while (start <= text.size()) {
        const std::size_t sep = text.find(';', start);
        const std::string_view item = text.substr(
            start, sep == std::string_view::npos ? std::string_view::npos
                                                 : sep - start);
        if (item.empty()) {
            error = "empty fault item (stray ';'?)";
            return false;
        }
        FaultSpec spec;
        if (!parseItem(item, spec, error))
            return false;
        out.add(spec);
        if (sep == std::string_view::npos)
            break;
        start = sep + 1;
    }
    return true;
}

std::string
Plan::str() const
{
    const FaultSpec def; // per-key defaults; only deviations print
    std::ostringstream os;
    for (std::size_t i = 0; i < specs_.size(); ++i) {
        const FaultSpec &s = specs_[i];
        if (i > 0)
            os << ';';
        os << siteName(s.site);
        if (s.step != def.step)
            os << ":step=" << s.step;
        if (s.ctr != def.ctr)
            os << ":ctr=" << s.ctr;
        if (s.value != def.value)
            os << ":value=" << s.value;
        if (s.margin != def.margin)
            os << ":margin=" << s.margin;
        if (s.ticks != def.ticks)
            os << ":ticks=" << s.ticks;
        if (s.nr != def.nr)
            os << ":nr=" << s.nr;
        if (s.nth != def.nth)
            os << ":nth=" << s.nth;
    }
    return os.str();
}

// ---------------------------------------------------------------------
// PlanController
// ---------------------------------------------------------------------

PlanController::PlanController(sim::Machine &machine, Plan plan)
    : machine_(machine)
{
    armed_.reserve(plan.specs().size());
    for (const FaultSpec &s : plan.specs()) {
        panic_if(s.site == Site::NumSites,
                 "fault spec without a site in plan");
        armed_.push_back({s, 0, false});
    }
}

bool
PlanController::due(Armed &a)
{
    ++a.hits;
    if (a.spec.nth == 0)
        return true;
    if (a.fired || a.hits != a.spec.nth)
        return false;
    a.fired = true;
    return true;
}

void
PlanController::note(sim::CoreId core, sim::Tick tick, sim::ThreadId tid,
                     Site site, std::uint64_t arg)
{
    ++injected_;
    ++injectedAt_[static_cast<unsigned>(site)];
    LIMIT_TRACE(machine_.tracer(), core,
                trace::TraceEvent::FaultInjected, tick, tid,
                static_cast<std::uint64_t>(site), arg);
    // With LIMITPP_TRACE=OFF the macro expands to nothing.
    (void)core, (void)tick, (void)tid, (void)arg;
}

void
PlanController::onPecReadStep(sim::GuestContext &ctx, unsigned ctr,
                              ReadStep step)
{
    for (Armed &a : armed_) {
        const FaultSpec &s = a.spec;
        if (s.ctr != ctr || s.step != static_cast<unsigned>(step))
            continue;
        if (s.site == Site::PreemptRead) {
            if (!due(a))
                continue;
            // End the quantum now: the timer fires right after the
            // *next* op of the read sequence commits, descheduling the
            // reader inside the window (provided a competitor thread
            // is runnable on the core).
            sim::Cpu &cpu = machine_.cpu(ctx.lastCore);
            cpu.quantumEnd = cpu.now();
            note(cpu.id(), cpu.now(), ctx.tid(), s.site,
                 static_cast<std::uint64_t>(step));
        } else if (s.site == Site::OverflowRead) {
            if (!due(a))
                continue;
            // Arm the counter `margin` events short of wrapping, so
            // the overflow lands inside the window. The artificial
            // jump is remembered as bias: a correct policy now reads
            // ledger + bias, never less.
            sim::Cpu &cpu = machine_.cpu(ctx.lastCore);
            sim::Pmu &pmu = cpu.pmu();
            const std::uint64_t before = pmu.read(s.ctr);
            const std::uint64_t armval =
                (pmu.valueMask() - (s.margin - 1)) & pmu.valueMask();
            pmu.write(s.ctr, armval);
            bias_[s.ctr] += armval - before; // wrapping on purpose
            note(cpu.id(), cpu.now(), ctx.tid(), s.site, s.margin);
        }
    }
}

PmiAction
PlanController::onPmiDeliver(sim::Cpu &cpu, unsigned ctr,
                             std::uint32_t wraps)
{
    for (Armed &a : armed_) {
        const FaultSpec &s = a.spec;
        if (s.ctr != ctr ||
            (s.site != Site::DropPmi && s.site != Site::DelayPmi)) {
            continue;
        }
        if (!due(a))
            continue;
        const sim::ThreadId tid =
            cpu.current() ? cpu.current()->tid() : sim::invalidThread;
        if (s.site == Site::DropPmi) {
            note(cpu.id(), cpu.now(), tid, s.site, wraps);
            return {.drop = true};
        }
        note(cpu.id(), cpu.now(), tid, s.site, s.ticks);
        return {.drop = false, .delay = s.ticks};
    }
    return {};
}

SaveRestoreAction
PlanController::onCounterSave(sim::Cpu &cpu, sim::ThreadId tid,
                              unsigned ctr, std::uint64_t value)
{
    (void)value;
    for (Armed &a : armed_) {
        const FaultSpec &s = a.spec;
        if (s.ctr != ctr ||
            (s.site != Site::SkipSave && s.site != Site::CorruptSave)) {
            continue;
        }
        if (!due(a))
            continue;
        if (s.site == Site::SkipSave) {
            note(cpu.id(), cpu.now(), tid, s.site, ctr);
            return {.skip = true};
        }
        note(cpu.id(), cpu.now(), tid, s.site, s.value);
        return {.skip = false, .corrupt = true, .value = s.value};
    }
    return {};
}

SaveRestoreAction
PlanController::onCounterRestore(sim::Cpu &cpu, sim::ThreadId tid,
                                 unsigned ctr, std::uint64_t value)
{
    (void)value;
    for (Armed &a : armed_) {
        const FaultSpec &s = a.spec;
        if (s.ctr != ctr || (s.site != Site::SkipRestore &&
                             s.site != Site::CorruptRestore)) {
            continue;
        }
        if (!due(a))
            continue;
        if (s.site == Site::SkipRestore) {
            note(cpu.id(), cpu.now(), tid, s.site, ctr);
            return {.skip = true};
        }
        note(cpu.id(), cpu.now(), tid, s.site, s.value);
        return {.skip = false, .corrupt = true, .value = s.value};
    }
    return {};
}

sim::Tick
PlanController::onSyscallEnter(sim::Cpu &cpu, sim::ThreadId tid,
                               std::uint32_t nr)
{
    for (Armed &a : armed_) {
        const FaultSpec &s = a.spec;
        if (s.site != Site::StallSyscall ||
            (s.nr != anySyscall && s.nr != nr)) {
            continue;
        }
        if (!due(a))
            continue;
        note(cpu.id(), cpu.now(), tid, s.site, s.ticks);
        return s.ticks;
    }
    return 0;
}

bool
PlanController::allowSuperblockReplay() const
{
    // Replay skips the per-op seams, so it stays off whenever any spec
    // needs them; a plan aimed purely at the replay commit path is the
    // one case where keeping the cache on is the whole point.
    if (armed_.empty())
        return false;
    for (const Armed &a : armed_) {
        if (a.spec.site != Site::CorruptReplay)
            return false;
    }
    return true;
}

std::uint64_t
PlanController::onSuperblockCommit(sim::Cpu &cpu, sim::ThreadId tid,
                                   std::uint64_t opsReplayed)
{
    (void)opsReplayed;
    std::uint64_t phantom = 0;
    for (Armed &a : armed_) {
        const FaultSpec &s = a.spec;
        if (s.site != Site::CorruptReplay)
            continue;
        if (!due(a))
            continue;
        const std::uint64_t v = s.value != 0 ? s.value : 1;
        note(cpu.id(), cpu.now(), tid, s.site, v);
        phantom += v;
    }
    return phantom;
}

sim::Tick
PlanController::onFutexBlock(sim::Cpu &cpu, sim::ThreadId tid,
                             const std::uint64_t *word)
{
    for (Armed &a : armed_) {
        const FaultSpec &s = a.spec;
        if (s.site != Site::SpuriousWake)
            continue;
        if (!due(a))
            continue;
        note(cpu.id(), cpu.now(), tid, s.site,
             reinterpret_cast<std::uint64_t>(word));
        return s.ticks;
    }
    return 0;
}

} // namespace limit::fault
