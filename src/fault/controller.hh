/**
 * @file
 * The fault-injection hook interface.
 *
 * A FaultController is the observer/effector the simulator consults at
 * its hazard seams: the PEC read window, PMI delivery, counter
 * save/restore at context switches, syscall entry, and futex blocking.
 * Every seam holds a null-by-default pointer (the same zero-cost
 * pattern as LIMIT_TRACE): with no controller attached, each site costs
 * exactly one pointer test; with one attached, the controller can
 * deterministically perturb the run — force a preemption inside a read,
 * arm a counter to overflow mid-window, drop or delay a PMI, corrupt a
 * save/restore, stall a syscall, or wake a futex waiter spuriously.
 *
 * This header is deliberately dependency-light (sim/types.hh only, with
 * forward declarations for Cpu and GuestContext) so the sim/os/pec
 * layers can call the hooks without linking the fault library. Concrete
 * controllers — fault::PlanController, fault::Explorer's verifier —
 * live in the fault library proper (see plan.hh, explorer.hh and
 * docs/FAULTS.md).
 */

#ifndef LIMIT_FAULT_CONTROLLER_HH
#define LIMIT_FAULT_CONTROLLER_HH

#include <cstdint>

#include "sim/types.hh"

namespace limit::sim {
class Cpu;
class GuestContext;
} // namespace limit::sim

namespace limit::fault {

/**
 * Position inside a PEC read sequence. The pec::PecSession read
 * routines report each position they pass through; a controller keyed
 * on a step perturbs the machine between the two ops that bracket it.
 * Not every policy visits every step: None stops at AfterRdpmc with no
 * accumulator load, NaiveSum/KernelFixup have no recheck load, and
 * retried reads (double-check, kernel-fixup restart) revisit the steps
 * once per iteration.
 */
enum class ReadStep : std::uint8_t {
    Enter = 0,        ///< before the first op of the read sequence
    AfterAccumLoad,   ///< accumulator loaded, rdpmc not yet executed
    AfterRdpmc,       ///< hardware value latched
    AfterRecheckLoad, ///< double-check's second accumulator load done
    NumSteps, // must be last
};

/** Number of distinct read-window steps. */
inline constexpr unsigned numReadSteps =
    static_cast<unsigned>(ReadStep::NumSteps);

/** What to do with one counter save or restore at a context switch. */
struct SaveRestoreAction
{
    /** Pretend the MSR access never happened (stale value persists). */
    bool skip = false;
    /** Replace the transferred value with `value`. */
    bool corrupt = false;
    std::uint64_t value = 0;
};

/** What to do with one pending PMI about to be delivered. */
struct PmiAction
{
    /** Discard the interrupt; its wraps are never accumulated. */
    bool drop = false;
    /** Hold delivery until at least `delay` ticks from now (0 = none). */
    sim::Tick delay = 0;
};

/**
 * Hook interface consulted by the simulator's fault seams. Every
 * default implementation is a no-op returning "no fault", so a
 * controller overrides only the seams it cares about. Hooks are called
 * on the simulation's single host thread; controllers need no locking.
 */
class FaultController
{
  public:
    virtual ~FaultController() = default;

    /**
     * The calling thread is at `step` of a PEC read of counter `ctr`
     * (also fired, with the same step vocabulary, by readDelta). Fired
     * between guest ops: mutations to the machine (quantum, counter
     * values) take effect before the next op executes.
     */
    virtual void
    onPecReadStep(sim::GuestContext &ctx, unsigned ctr, ReadStep step)
    {
        (void)ctx;
        (void)ctr;
        (void)step;
    }

    /**
     * A PMI for counter `ctr` (wrapping `wraps` times) is about to be
     * delivered on `cpu`. Consulted once per interrupt, at the first
     * delivery attempt.
     */
    virtual PmiAction
    onPmiDeliver(sim::Cpu &cpu, unsigned ctr, std::uint32_t wraps)
    {
        (void)cpu;
        (void)ctr;
        (void)wraps;
        return {};
    }

    /**
     * Counter `ctr` of thread `tid` is being saved at switch-out with
     * `value` (after any sampling-mode adjustment).
     */
    virtual SaveRestoreAction
    onCounterSave(sim::Cpu &cpu, sim::ThreadId tid, unsigned ctr,
                  std::uint64_t value)
    {
        (void)cpu;
        (void)tid;
        (void)ctr;
        (void)value;
        return {};
    }

    /** Counter `ctr` of thread `tid` is being restored at switch-in. */
    virtual SaveRestoreAction
    onCounterRestore(sim::Cpu &cpu, sim::ThreadId tid, unsigned ctr,
                     std::uint64_t value)
    {
        (void)cpu;
        (void)tid;
        (void)ctr;
        (void)value;
        return {};
    }

    /**
     * Thread `tid` entered the kernel for syscall `nr`. Returned ticks
     * are charged as extra kernel work before the handler runs (a
     * stalled slow path).
     */
    virtual sim::Tick
    onSyscallEnter(sim::Cpu &cpu, sim::ThreadId tid, std::uint32_t nr)
    {
        (void)cpu;
        (void)tid;
        (void)nr;
        return 0;
    }

    /**
     * Thread `tid` is about to block on the futex word `word`. A
     * nonzero return schedules a spurious wakeup that many ticks from
     * now: the thread is woken without a matching futexWake and, like a
     * real spurious wakeup, observes a successful (0) wait result.
     */
    virtual sim::Tick
    onFutexBlock(sim::Cpu &cpu, sim::ThreadId tid,
                 const std::uint64_t *word)
    {
        (void)cpu;
        (void)tid;
        (void)word;
        return 0;
    }

    /**
     * May the superblock replay cache run while this controller is
     * attached? Defaults to false: replay skips every per-op seam
     * above, so a plan keyed on them would silently never fire. A
     * controller that *targets* the replay path itself (corrupt-replay
     * plans, used to exercise the divergence sentinel) opts in.
     */
    virtual bool allowSuperblockReplay() const { return false; }

    /**
     * A superblock replay span of `opsReplayed` guest ops is being
     * committed on `cpu` for thread `tid` (only reachable when
     * allowSuperblockReplay() returned true). The returned count is
     * folded into the committed instruction total as *phantom*
     * instructions — a deliberate fast-path corruption, invisible to
     * the per-op oracle, that the divergence sentinel must catch.
     */
    virtual std::uint64_t
    onSuperblockCommit(sim::Cpu &cpu, sim::ThreadId tid,
                       std::uint64_t opsReplayed)
    {
        (void)cpu;
        (void)tid;
        (void)opsReplayed;
        return 0;
    }
};

} // namespace limit::fault

#endif // LIMIT_FAULT_CONTROLLER_HH
