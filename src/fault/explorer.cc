#include "fault/explorer.hh"

#include <optional>
#include <utility>

#include "base/logging.hh"
#include "fault/plan.hh"
#include "os/kernel.hh"
#include "sim/machine.hh"

namespace limit::fault {

namespace {

/** Read-window steps a policy actually visits (ReadStep indices). */
std::vector<unsigned>
stepsOf(pec::OverflowPolicy policy)
{
    using pec::OverflowPolicy;
    switch (policy) {
      case OverflowPolicy::None:
        return {0, 2}; // Enter, AfterRdpmc
      case OverflowPolicy::NaiveSum:
      case OverflowPolicy::KernelFixup:
        return {0, 1, 2};
      case OverflowPolicy::DoubleCheck:
        return {0, 1, 2, 3};
    }
    panic("unknown PEC policy");
}

/**
 * PlanController that additionally snapshots the exact expected read
 * value at every AfterRdpmc the victim passes. The snapshot is taken
 * *before* the injection at that step runs: a fault armed after the
 * rdpmc latched its value postdates the read and must not be part of
 * what this read is expected to return (a retried read re-snapshots,
 * so policies that recover still match).
 */
class Verifier final : public PlanController
{
  public:
    Verifier(sim::Machine &machine, Plan plan, sim::ThreadId victim)
        : PlanController(machine, std::move(plan)), victim_(victim)
    {
    }

    std::uint64_t lastExpected() const { return lastExpected_; }

    void
    onPecReadStep(sim::GuestContext &ctx, unsigned ctr,
                  ReadStep step) override
    {
        if (step == ReadStep::AfterRdpmc && ctx.tid() == victim_) {
            lastExpected_ =
                ctx.ledger().count(sim::EventType::Instructions,
                                   sim::PrivMode::User) +
                counterBias(ctr);
        }
        PlanController::onPecReadStep(ctx, ctr, step);
    }

  private:
    sim::ThreadId victim_;
    std::uint64_t lastExpected_ = 0;
};

/** One enumerated run; returns reads checked and violations found. */
struct RunOutcome
{
    std::uint64_t reads = 0;
    std::uint64_t violations = 0;
    std::uint64_t injected = 0;
};

RunOutcome
runOne(const ExplorerOptions &opts, const Plan &plan)
{
    sim::MachineConfig mc;
    mc.numCores = 1; // a forced switch needs a competitor on the core
    mc.pmuCounters = 4;
    mc.pmuFeatures.counterWidth = opts.counterWidth;
    mc.costs.quantum = opts.quantum;
    mc.seed = opts.seed;
    sim::Machine machine(mc);
    os::Kernel kernel(machine, {.virtualizeCounters = true,
                                .seed = opts.seed});
    pec::PecSession session(kernel, {.policy = opts.policy});
    session.addEvent(0, sim::EventType::Instructions, /*user=*/true,
                     /*kernel_mode=*/false);

    RunOutcome out;
    bool done = false;
    Verifier *verifier_ptr = nullptr; // set below, before run()
    // Policy None promises exactness only modulo the counter width.
    const std::uint64_t mask = opts.policy == pec::OverflowPolicy::None
        ? (opts.counterWidth >= 64
               ? ~0ull
               : (1ull << opts.counterWidth) - 1)
        : ~0ull;

    const sim::ThreadId victim_tid = kernel.spawn(
        "victim",
        [&](sim::Guest &g) -> sim::Task<void> {
            Verifier &v = *verifier_ptr;
            for (unsigned r = 0; r < opts.reads; ++r) {
                co_await g.compute(opts.workPerRead);
                const std::uint64_t got = co_await session.read(g, 0);
                // No guest op runs between the read returning and this
                // check, so lastExpected() still holds the snapshot of
                // this read's final rdpmc.
                const std::uint64_t want = v.lastExpected();
                ++out.reads;
                if ((got & mask) != (want & mask))
                    ++out.violations;
            }
            done = true;
        });

    kernel.spawn("competitor", [&](sim::Guest &g) -> sim::Task<void> {
        while (!done && !g.shouldStop())
            co_await g.compute(60);
    });

    Verifier verifier(machine, plan, victim_tid);
    verifier_ptr = &verifier;
    machine.setFaults(&verifier);
    machine.run();
    machine.setFaults(nullptr);
    out.injected = verifier.injected();
    return out;
}

} // namespace

ExplorerResult
explore(const ExplorerOptions &opts)
{
    fatal_if(opts.reads == 0, "Explorer needs at least one read");
    fatal_if(opts.overflowMargin == 0, "overflow margin must be >= 1");

    const std::vector<unsigned> steps = stepsOf(opts.policy);

    // A choice is "no fault here" or (step, occurrence). Occurrences
    // are hook hits at the chosen step, bounded by the read count:
    // enough to land the fault in the first, a middle, or the last
    // read's window (retried iterations hit the same steps again, so
    // some occurrences land in retries — that only widens coverage).
    std::vector<std::optional<FaultSpec>> preempts{std::nullopt};
    std::vector<std::optional<FaultSpec>> overflows{std::nullopt};
    for (const unsigned step : steps) {
        for (unsigned nth = 1; nth <= opts.reads; ++nth) {
            FaultSpec p;
            p.site = Site::PreemptRead;
            p.step = step;
            p.nth = nth;
            preempts.push_back(p);
            FaultSpec o;
            o.site = Site::OverflowRead;
            o.step = step;
            o.margin = opts.overflowMargin;
            o.nth = nth;
            overflows.push_back(o);
        }
    }

    ExplorerResult result;
    for (const auto &p : preempts) {
        for (const auto &o : overflows) {
            Plan plan;
            if (p)
                plan.add(*p);
            if (o)
                plan.add(*o);
            const RunOutcome run = runOne(opts, plan);
            ++result.interleavings;
            result.reads += run.reads;
            result.injected += run.injected;
            if (run.violations > 0) {
                result.violations += run.violations;
                result.failingPlans.push_back(
                    plan.empty() ? "(no faults)" : plan.str());
            }
        }
    }
    return result;
}

} // namespace limit::fault
