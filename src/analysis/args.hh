/**
 * @file
 * Shared command-line parsing for the bench binaries.
 *
 * Every bench accepts the same knobs:
 *   --seeds N        repetitions averaged per table point (statistical
 *                    depth; benches with no seed sweep document how
 *                    they interpret it, typically as a repetition
 *                    count)
 *   --jobs N         host threads for the ParallelRunner fan-out
 *                    (0 = one per hardware thread)
 *   --trace FILE     write a Chrome-trace JSON of one representative
 *                    run (Perfetto-loadable; see docs/TRACING.md)
 *   --trace-cap N    per-core trace ring capacity in records
 *   --faults SPEC    deterministic fault plan injected into runs that
 *                    support it (grammar in docs/FAULTS.md; validated
 *                    here so typos fail fast even in benches that
 *                    ignore the plan)
 *   --profile        emit a prof::Report JSON profile artifact
 *   --profile-out F  profile output path (default profile.json;
 *                    implies --profile)
 *   --no-batch       per-op reference scheduler instead of horizon
 *                    batching (bit-identical, slower; equivalence
 *                    checking and CI)
 *   --no-superblock  disable the decoded-op superblock replay cache
 *                    (bit-identical, slower; equivalence checking
 *                    and CI)
 *   --shards N       host threads per simulated machine (sharded
 *                    safe-horizon execution; bit-identical, N-1
 *                    worker threads lease parallel-safe cores;
 *                    see docs/DESIGN.md)
 *   --job-timeout S  per-job host wall-clock watchdog in seconds; a
 *                    job over budget is retried once in the next
 *                    slower execution mode, then marked failed
 *   --journal FILE   append-only crash-safe campaign journal (fsync'd
 *                    per completed job; see docs/ROBUSTNESS.md)
 *   --resume         skip jobs already completed in --journal and
 *                    reproduce the merged tables bit-identically
 *   --sentinel       online divergence sentinel: cross-check sampled
 *                    jobs against the per-op oracle and quarantine
 *                    the fast path on mismatch
 *   --sentinel-every N  cross-check every Nth job (default 1)
 *   --timeline FILE  write a limitpp-timeline-v1 JSON of one
 *                    representative run: exact per-core PMU event
 *                    deltas per guest-cycle interval with phase
 *                    segmentation (see docs/TIMELINE.md)
 *   --timeline-interval N  slice width in guest cycles (default
 *                    65536, minimum 256)
 *   --status-file F  campaign heartbeat: atomically-rewritten JSON
 *                    with done/in-flight/retried/quarantined counts
 *                    and an ETA, for watching long campaigns
 * so `bench_e04 --seeds 16 --jobs 8 --trace e04.json` deepens,
 * parallelizes, and instruments a reproduction run without editing
 * source. Flags also accept the --flag=value spelling. Parsing is
 * deliberately tiny — a handful of flags and --help — rather than a
 * general option library.
 */

#ifndef LIMIT_ANALYSIS_ARGS_HH
#define LIMIT_ANALYSIS_ARGS_HH

#include <string>

namespace limit::analysis {

/** Parsed bench options (defaults supplied by each bench). */
struct BenchArgs
{
    unsigned seeds = 1;
    unsigned jobs = 1;
    /** Chrome-trace output path; empty = tracing off. */
    std::string trace;
    /** Per-core trace ring capacity (records). */
    unsigned traceCap = 65536;
    /** Fault-plan spec (--faults); empty = no injection. Already
        validated by fault::Plan::parse — benches re-parse to use it. */
    std::string faults;
    /** Emit a prof::Report JSON artifact (--profile / --profile-out). */
    bool profile = false;
    /**
     * Force the per-op reference scheduler (--no-batch). Applied by
     * parseBenchArgs via sim::setBatchedExecutionDefault(false); every
     * published number is bit-identical either way — the flag exists
     * so CI can keep proving that.
     */
    bool noBatch = false;
    /**
     * Disable the superblock replay cache (--no-superblock). Applied
     * by parseBenchArgs via sim::setSuperblockExecutionDefault(false);
     * like --no-batch this changes no published number — replay is
     * bit-identical — only how fast the hot path retires ops.
     */
    bool noSuperblock = false;
    /**
     * Host threads per simulated machine (--shards). Applied by
     * parseBenchArgs via sim::setShardExecutionDefault; 1 (default)
     * keeps the existing single-thread schedulers. Values above 1 run
     * each machine under the sharded safe-horizon coordinator with
     * shards-1 worker threads — published results stay bit-identical
     * for any value (clamped per machine to its core count).
     */
    unsigned shards = 1;
    /** Profile artifact path (setting it via --profile-out implies
        --profile). */
    std::string profileOut = "profile.json";
    /**
     * Per-job host wall-clock budget in seconds (--job-timeout); 0 =
     * no watchdog. Applied by parseBenchArgs via
     * sim::setJobWatchdogDefault, so every Machine::run the bench
     * performs throws sim::WatchdogTimeout once the budget lapses; the
     * campaign layer retries the job once one mode-ladder rung slower.
     */
    double jobTimeoutSec = 0;
    /** Crash-safe campaign journal path (--journal); empty = off. */
    std::string journal;
    /** Skip jobs already completed in the journal (--resume). */
    bool resume = false;
    /** Enable the online divergence sentinel (--sentinel). */
    bool sentinel = false;
    /** Cross-check every Nth sentinel-routed job (--sentinel-every). */
    unsigned sentinelEvery = 1;
    /** Timeline artifact path (--timeline); empty = off. */
    std::string timeline;
    /** Timeline slice width in guest cycles (--timeline-interval). */
    unsigned timelineInterval = 65536;
    /** Campaign heartbeat path (--status-file); empty = off. */
    std::string statusFile;

    bool tracing() const { return !trace.empty(); }
    bool timelineOn() const { return !timeline.empty(); }

    /** Any artifact that needs the dedicated representative run. */
    bool
    instrumented() const
    {
        return tracing() || profile || timelineOn();
    }

    /**
     * Trace-ring capacity for the instrumented representative run:
     * nonzero when either a trace artifact or a profile (which pairs
     * syscall enter/exit records) was requested.
     */
    unsigned captureCap() const
    {
        return tracing() || profile ? traceCap : 0;
    }

    /**
     * Timeline slicing interval for the instrumented representative
     * run; 0 (recorder off) unless --timeline was given.
     */
    unsigned captureTimelineInterval() const
    {
        return timelineOn() ? timelineInterval : 0;
    }
};

/**
 * The per-bench knob defaults — deliberately only the fields benches
 * customize, so `{.seeds = 3, .jobs = 0}` initializes it exhaustively
 * (tracing and fault injection always default to off).
 */
struct BenchDefaults
{
    unsigned seeds = 1;
    unsigned jobs = 1;
};

/**
 * Outcome of a parse attempt. Exactly one of three shapes: success
 * (`ok() && !help`), a --help request (`ok() && help`), or a malformed
 * command line (`!ok()`, with a one-line reason naming the offending
 * flag and value).
 */
struct BenchParse
{
    BenchArgs args;
    bool help = false;
    std::string error;

    bool ok() const { return error.empty(); }
};

/**
 * Parse without touching the process: no printing, no exit. This is
 * the testable core — every rejection path (unknown flag, non-numeric
 * or negative value, missing operand, out-of-range, bad --faults
 * grammar) comes back as BenchParse::error.
 */
BenchParse tryParseBenchArgs(int argc, char **argv,
                             BenchDefaults defaults);

/**
 * Parse --seeds/--jobs/--trace/--trace-cap/--faults from argv,
 * starting from the given defaults. Prints usage and exits(0) on
 * --help/-h; prints an error and exits(2) on unknown flags or
 * malformed values. `what_seeds` is the one-line meaning of --seeds
 * shown in --help (nullptr for the generic wording).
 */
BenchArgs parseBenchArgs(int argc, char **argv, BenchDefaults defaults,
                         const char *what_seeds = nullptr);

} // namespace limit::analysis

#endif // LIMIT_ANALYSIS_ARGS_HH
