/**
 * @file
 * Shared command-line parsing for the bench binaries.
 *
 * Every bench accepts the same two knobs:
 *   --seeds N   repetitions averaged per table point (statistical
 *               depth; benches with no seed sweep document how they
 *               interpret it, typically as a repetition count)
 *   --jobs N    host threads for the ParallelRunner fan-out
 *               (0 = one per hardware thread)
 * so `bench_e04 --seeds 16 --jobs 8` deepens and parallelizes a
 * reproduction run without editing source. Parsing is deliberately
 * tiny — two flags and --help — rather than a general option library.
 */

#ifndef LIMIT_ANALYSIS_ARGS_HH
#define LIMIT_ANALYSIS_ARGS_HH

namespace limit::analysis {

/** Parsed bench options (defaults supplied by each bench). */
struct BenchArgs
{
    unsigned seeds = 1;
    unsigned jobs = 1;
};

/**
 * Parse --seeds/--jobs from argv, starting from the given defaults.
 * Prints usage and exits(0) on --help/-h; prints an error and
 * exits(2) on unknown flags or malformed values. `what_seeds` is the
 * one-line meaning of --seeds shown in --help (nullptr for the
 * generic wording).
 */
BenchArgs parseBenchArgs(int argc, char **argv, BenchArgs defaults,
                         const char *what_seeds = nullptr);

} // namespace limit::analysis

#endif // LIMIT_ANALYSIS_ARGS_HH
