/**
 * @file
 * Experiment plumbing shared by benches, examples, and tests: a
 * SimBundle wires a machine, cache hierarchy, and kernel together
 * with one call, and small helpers aggregate ledger totals.
 */

#ifndef LIMIT_ANALYSIS_BUNDLE_HH
#define LIMIT_ANALYSIS_BUNDLE_HH

#include <memory>

#include "mem/hierarchy.hh"
#include "os/kernel.hh"
#include "sim/machine.hh"
#include "trace/metrics.hh"
#include "trace/trace.hh"

namespace limit::analysis {

/**
 * Options for building a standard experiment machine.
 *
 * Construct through BundleOptions::Builder (or derive a variant from
 * an existing options value with Builder::from), which validates the
 * combination at build() time; direct default construction is
 * deprecated and field-by-field aggregate initialization no longer
 * compiles (see docs/API.md).
 */
struct BundleOptions
{
    unsigned cores = 4;
    unsigned pmuCounters = 4;
    sim::PmuFeatures pmuFeatures{};
    /** 0 keeps the CostModel default quantum. */
    sim::Tick quantum = 0;
    std::uint64_t seed = 1;
    /** Attach the Xeon-class cache hierarchy (vs. flat memory). */
    bool useCaches = true;
    mem::HierarchyConfig hierarchy{};
    os::KernelConfig kernelConfig{};
    /**
     * Per-core trace ring capacity in records; 0 builds no tracer.
     * (With LIMITPP_TRACE=OFF a tracer is still built but nothing is
     * ever recorded into it.)
     */
    unsigned traceCapacity = 0;
    /**
     * Timeline slice width in guest cycles; 0 builds no recorder.
     * Nonzero attaches a sim::TimelineRecorder capturing every
     * core's exact per-interval PMU event deltas (bit-identical
     * across execution modes; see docs/TIMELINE.md).
     */
    unsigned timelineInterval = 0;
    /**
     * Horizon-batched run loop (sim::MachineConfig::batched). Results
     * are bit-identical either way; false forces the per-op reference
     * scheduler for this bundle even when the process default is
     * batched. Overridden globally by --no-batch and
     * LIMITPP_FORCE_NO_BATCH (see sim::setBatchedExecutionDefault).
     */
    bool batched = true;
    /**
     * Superblock replay cache on the batched hot path
     * (sim::MachineConfig::superblocks). Bit-identical either way;
     * false disables the cache for this bundle even when the process
     * default is on. Overridden globally by --no-superblock and
     * LIMITPP_FORCE_NO_SUPERBLOCK (see
     * sim::setSuperblockExecutionDefault). No effect unless `batched`.
     */
    bool superblocks = true;
    /**
     * Host threads for this machine (sim::MachineConfig::shards).
     * 1 inherits the process default (--shards /
     * sim::setShardExecutionDefault); values above 1 pin this bundle
     * to the sharded safe-horizon coordinator with shards-1 workers.
     * Bit-identical for any value; build() rejects shards > cores.
     */
    unsigned shards = 1;

    class Builder;
    /** Start a validated fluent build (canonical defaults). */
    static Builder builder();

    [[deprecated("construct BundleOptions via BundleOptions::builder()"
                 " (or Builder::from to derive a variant)")]]
    BundleOptions() = default;

  private:
    /** Non-deprecated construction path reserved for the Builder. */
    struct FromBuilder
    {
    };
    explicit BundleOptions(FromBuilder) {}
};

/**
 * Fluent, validating constructor for BundleOptions. Each setter names
 * the knob it sets; build() cross-checks the combination (counter
 * width range, feature dependencies, cache geometry) and fatals with a
 * message naming the offending pair, so an impossible machine is
 * rejected where it is written instead of misbehaving mid-run.
 */
class BundleOptions::Builder
{
  public:
    /**
     * Seed a builder from an existing options value, so a variant
     * machine can be derived programmatically (the sensitivity
     * lattice's per-axis perturbations use exactly this). The flat-
     * memory/hierarchy choice carries over and still conflict-checks:
     * applying a cache setter to a flat-memory base is rejected at
     * build() rather than silently re-enabling caches.
     */
    static Builder
    from(const BundleOptions &base)
    {
        Builder b;
        b.o_ = base;
        b.flat_ = !base.useCaches;
        b.hier_ = base.useCaches;
        return b;
    }

    Builder &cores(unsigned n) { o_.cores = n; return *this; }
    Builder &pmuCounters(unsigned n) { o_.pmuCounters = n; return *this; }
    /** Replace the whole PMU feature set (still validated by build()). */
    Builder &pmuFeatures(const sim::PmuFeatures &f)
    {
        o_.pmuFeatures = f;
        return *this;
    }
    /** Hardware counter width in bits (paper enhancement #1 at 64). */
    Builder &pmuWidth(unsigned bits)
    {
        o_.pmuFeatures.counterWidth = bits;
        return *this;
    }
    /** Read-and-clear counters (paper enhancement #2). */
    Builder &destructiveRead(bool on = true)
    {
        o_.pmuFeatures.destructiveRead = on;
        return *this;
    }
    /** Hardware-swapped counter sets (paper enhancement #3). */
    Builder &taggedVirtualization(bool on = true)
    {
        o_.pmuFeatures.taggedVirtualization = on;
        return *this;
    }
    Builder &quantum(sim::Tick q) { o_.quantum = q; return *this; }
    Builder &seed(std::uint64_t s) { o_.seed = s; return *this; }
    /** Flat fixed-latency memory instead of the cache hierarchy. */
    Builder &flatMemory()
    {
        flat_ = true;
        o_.useCaches = false;
        return *this;
    }
    Builder &hierarchy(const mem::HierarchyConfig &h)
    {
        hier_ = true;
        o_.useCaches = true;
        o_.hierarchy = h;
        return *this;
    }

    /**
     * @name Per-field cache-hierarchy setters
     * Each names one HierarchyConfig knob, implies the cache
     * hierarchy, and is validated by build() — the sensitivity axes
     * (analysis/sensitivity/param_space.hh) perturb machines through
     * these instead of rebuilding a whole HierarchyConfig.
     * @{
     */
    Builder &l1Size(std::uint64_t bytes)
    {
        return hierField().l1d.sizeBytes = bytes, *this;
    }
    Builder &l1Ways(unsigned n)
    {
        return hierField().l1d.ways = n, *this;
    }
    Builder &l1Latency(sim::Tick t)
    {
        return hierField().l1Latency = t, *this;
    }
    Builder &l2Size(std::uint64_t bytes)
    {
        return hierField().l2.sizeBytes = bytes, *this;
    }
    Builder &l2Latency(sim::Tick t)
    {
        return hierField().l2Latency = t, *this;
    }
    Builder &llcSize(std::uint64_t bytes)
    {
        return hierField().llc.sizeBytes = bytes, *this;
    }
    Builder &llcLatency(sim::Tick t)
    {
        return hierField().llcLatency = t, *this;
    }
    Builder &memLatency(sim::Tick t)
    {
        return hierField().memLatency = t, *this;
    }
    Builder &tlbEntries(unsigned n)
    {
        return hierField().dtlb.entries = n, *this;
    }
    Builder &tlbMissPenalty(sim::Tick t)
    {
        return hierField().tlbMissPenalty = t, *this;
    }
    Builder &nextLinePrefetch(bool on = true)
    {
        return hierField().nextLinePrefetch = on, *this;
    }
    /** @} */

    /** Kernel-side counter save/restore across switches. */
    Builder &virtualizeCounters(bool on)
    {
        o_.kernelConfig.virtualizeCounters = on;
        return *this;
    }
    Builder &traceCapacity(unsigned records)
    {
        o_.traceCapacity = records;
        return *this;
    }
    /** Timeline slice width in guest cycles (0 = no recorder). */
    Builder &timelineInterval(unsigned ticks)
    {
        o_.timelineInterval = ticks;
        return *this;
    }
    /** Per-op reference scheduler instead of horizon batching. */
    Builder &batched(bool on)
    {
        o_.batched = on;
        return *this;
    }
    /** Superblock replay cache (only meaningful with batched(true)). */
    Builder &superblocks(bool on)
    {
        superblocksExplicit_ = true;
        o_.superblocks = on;
        return *this;
    }
    /** Host threads for this machine (1 = process default). */
    Builder &shards(unsigned n)
    {
        o_.shards = n;
        return *this;
    }

    /** Validate the combination and return the options (fatals on
     *  an impossible machine). */
    BundleOptions build() const;

  private:
    mem::HierarchyConfig &
    hierField()
    {
        hier_ = true;
        o_.useCaches = true;
        return o_.hierarchy;
    }

    BundleOptions o_{BundleOptions::FromBuilder{}};
    /** flatMemory() was requested (conflicts with any cache setter). */
    bool flat_ = false;
    /** hierarchy(cfg) or a per-field cache setter was requested. */
    bool hier_ = false;
    /** superblocks(on) was called explicitly (vs. left at default). */
    bool superblocksExplicit_ = false;
};

inline BundleOptions::Builder
BundleOptions::builder()
{
    return Builder{};
}

/** Machine + memory + kernel with consistent construction order. */
class SimBundle
{
  public:
    explicit SimBundle(const BundleOptions &options);

    sim::Machine &machine() { return *machine_; }
    os::Kernel &kernel() { return *kernel_; }
    mem::CacheHierarchy *hierarchy() { return hierarchy_.get(); }

    /** Trace sink (nullptr unless traceCapacity was set). */
    trace::Tracer *tracer() { return tracer_.get(); }

    /** Timeline recorder (nullptr unless timelineInterval was set). */
    sim::TimelineRecorder *timeline() { return timeline_.get(); }

    /** Per-bundle metrics, harvested into bench JSON output. */
    trace::MetricsRegistry &metrics() { return metrics_; }

    /**
     * Run with a stop request at `stop_at` ticks. Under an active
     * guard::ProbeScope (a sentinel cross-check on this thread), the
     * horizon is truncated to the probe's sampled window and the
     * finished run is folded into the probe's fingerprint — the job's
     * own results are discarded by the caller in that case.
     */
    sim::Tick run(sim::Tick stop_at);

  private:
    std::unique_ptr<sim::Machine> machine_;
    std::unique_ptr<mem::CacheHierarchy> hierarchy_;
    std::unique_ptr<os::Kernel> kernel_;
    std::unique_ptr<trace::Tracer> tracer_;
    std::unique_ptr<sim::TimelineRecorder> timeline_;
    trace::MetricsRegistry metrics_;
};

/** Sum one event across every thread (one privilege mode). */
std::uint64_t totalEvent(os::Kernel &kernel, sim::EventType event,
                         sim::PrivMode mode);

/** Sum one event across every thread, both modes. */
std::uint64_t totalEvent(os::Kernel &kernel, sim::EventType event);

/** a / b as a percentage; 0 when b == 0. */
double percentOf(std::uint64_t a, std::uint64_t b);

} // namespace limit::analysis

#endif // LIMIT_ANALYSIS_BUNDLE_HH
