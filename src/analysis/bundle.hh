/**
 * @file
 * Experiment plumbing shared by benches, examples, and tests: a
 * SimBundle wires a machine, cache hierarchy, and kernel together
 * with one call, and small helpers aggregate ledger totals.
 */

#ifndef LIMIT_ANALYSIS_BUNDLE_HH
#define LIMIT_ANALYSIS_BUNDLE_HH

#include <memory>

#include "mem/hierarchy.hh"
#include "os/kernel.hh"
#include "sim/machine.hh"

namespace limit::analysis {

/** Options for building a standard experiment machine. */
struct BundleOptions
{
    unsigned cores = 4;
    unsigned pmuCounters = 4;
    sim::PmuFeatures pmuFeatures{};
    /** 0 keeps the CostModel default quantum. */
    sim::Tick quantum = 0;
    std::uint64_t seed = 1;
    /** Attach the Xeon-class cache hierarchy (vs. flat memory). */
    bool useCaches = true;
    mem::HierarchyConfig hierarchy{};
    os::KernelConfig kernelConfig{};
};

/** Machine + memory + kernel with consistent construction order. */
class SimBundle
{
  public:
    explicit SimBundle(const BundleOptions &options = {});

    sim::Machine &machine() { return *machine_; }
    os::Kernel &kernel() { return *kernel_; }
    mem::CacheHierarchy *hierarchy() { return hierarchy_.get(); }

    /** Run with a stop request at `stop_at` ticks. */
    sim::Tick
    run(sim::Tick stop_at)
    {
        machine_->requestStopAt(stop_at);
        return machine_->run();
    }

  private:
    std::unique_ptr<sim::Machine> machine_;
    std::unique_ptr<mem::CacheHierarchy> hierarchy_;
    std::unique_ptr<os::Kernel> kernel_;
};

/** Sum one event across every thread (one privilege mode). */
std::uint64_t totalEvent(os::Kernel &kernel, sim::EventType event,
                         sim::PrivMode mode);

/** Sum one event across every thread, both modes. */
std::uint64_t totalEvent(os::Kernel &kernel, sim::EventType event);

/** a / b as a percentage; 0 when b == 0. */
double percentOf(std::uint64_t a, std::uint64_t b);

} // namespace limit::analysis

#endif // LIMIT_ANALYSIS_BUNDLE_HH
