/**
 * @file
 * Experiment plumbing shared by benches, examples, and tests: a
 * SimBundle wires a machine, cache hierarchy, and kernel together
 * with one call, and small helpers aggregate ledger totals.
 */

#ifndef LIMIT_ANALYSIS_BUNDLE_HH
#define LIMIT_ANALYSIS_BUNDLE_HH

#include <memory>

#include "mem/hierarchy.hh"
#include "os/kernel.hh"
#include "sim/machine.hh"
#include "trace/metrics.hh"
#include "trace/trace.hh"

namespace limit::analysis {

/**
 * Options for building a standard experiment machine.
 *
 * Direct aggregate initialization still works but is deprecated for
 * bench code in favour of BundleOptions::Builder, which validates
 * combinations at construction time (see docs/API.md).
 */
struct BundleOptions
{
    unsigned cores = 4;
    unsigned pmuCounters = 4;
    sim::PmuFeatures pmuFeatures{};
    /** 0 keeps the CostModel default quantum. */
    sim::Tick quantum = 0;
    std::uint64_t seed = 1;
    /** Attach the Xeon-class cache hierarchy (vs. flat memory). */
    bool useCaches = true;
    mem::HierarchyConfig hierarchy{};
    os::KernelConfig kernelConfig{};
    /**
     * Per-core trace ring capacity in records; 0 builds no tracer.
     * (With LIMITPP_TRACE=OFF a tracer is still built but nothing is
     * ever recorded into it.)
     */
    unsigned traceCapacity = 0;
    /**
     * Horizon-batched run loop (sim::MachineConfig::batched). Results
     * are bit-identical either way; false forces the per-op reference
     * scheduler for this bundle even when the process default is
     * batched. Overridden globally by --no-batch and
     * LIMITPP_FORCE_NO_BATCH (see sim::setBatchedExecutionDefault).
     */
    bool batched = true;
    /**
     * Superblock replay cache on the batched hot path
     * (sim::MachineConfig::superblocks). Bit-identical either way;
     * false disables the cache for this bundle even when the process
     * default is on. Overridden globally by --no-superblock and
     * LIMITPP_FORCE_NO_SUPERBLOCK (see
     * sim::setSuperblockExecutionDefault). No effect unless `batched`.
     */
    bool superblocks = true;

    class Builder;
    /** Start a validated fluent build (canonical defaults). */
    static Builder builder();
};

/**
 * Fluent, validating constructor for BundleOptions. Each setter names
 * the knob it sets; build() cross-checks the combination (counter
 * width range, feature dependencies) and fatals with a message naming
 * the offending pair, so an impossible machine is rejected where it
 * is written instead of misbehaving mid-run.
 */
class BundleOptions::Builder
{
  public:
    Builder &cores(unsigned n) { o_.cores = n; return *this; }
    Builder &pmuCounters(unsigned n) { o_.pmuCounters = n; return *this; }
    /** Replace the whole PMU feature set (still validated by build()). */
    Builder &pmuFeatures(const sim::PmuFeatures &f)
    {
        o_.pmuFeatures = f;
        return *this;
    }
    /** Hardware counter width in bits (paper enhancement #1 at 64). */
    Builder &pmuWidth(unsigned bits)
    {
        o_.pmuFeatures.counterWidth = bits;
        return *this;
    }
    /** Read-and-clear counters (paper enhancement #2). */
    Builder &destructiveRead(bool on = true)
    {
        o_.pmuFeatures.destructiveRead = on;
        return *this;
    }
    /** Hardware-swapped counter sets (paper enhancement #3). */
    Builder &taggedVirtualization(bool on = true)
    {
        o_.pmuFeatures.taggedVirtualization = on;
        return *this;
    }
    Builder &quantum(sim::Tick q) { o_.quantum = q; return *this; }
    Builder &seed(std::uint64_t s) { o_.seed = s; return *this; }
    /** Flat fixed-latency memory instead of the cache hierarchy. */
    Builder &flatMemory() { o_.useCaches = false; return *this; }
    Builder &hierarchy(const mem::HierarchyConfig &h)
    {
        o_.useCaches = true;
        o_.hierarchy = h;
        return *this;
    }
    /** Kernel-side counter save/restore across switches. */
    Builder &virtualizeCounters(bool on)
    {
        o_.kernelConfig.virtualizeCounters = on;
        return *this;
    }
    Builder &traceCapacity(unsigned records)
    {
        o_.traceCapacity = records;
        return *this;
    }
    /** Per-op reference scheduler instead of horizon batching. */
    Builder &batched(bool on)
    {
        o_.batched = on;
        return *this;
    }
    /** Superblock replay cache (only meaningful with batched(true)). */
    Builder &superblocks(bool on)
    {
        o_.superblocks = on;
        return *this;
    }

    /** Validate the combination and return the options (fatals on
     *  an impossible machine). */
    BundleOptions build() const;

  private:
    BundleOptions o_;
};

inline BundleOptions::Builder
BundleOptions::builder()
{
    return Builder{};
}

/** Machine + memory + kernel with consistent construction order. */
class SimBundle
{
  public:
    explicit SimBundle(const BundleOptions &options = {});

    sim::Machine &machine() { return *machine_; }
    os::Kernel &kernel() { return *kernel_; }
    mem::CacheHierarchy *hierarchy() { return hierarchy_.get(); }

    /** Trace sink (nullptr unless traceCapacity was set). */
    trace::Tracer *tracer() { return tracer_.get(); }

    /** Per-bundle metrics, harvested into bench JSON output. */
    trace::MetricsRegistry &metrics() { return metrics_; }

    /** Run with a stop request at `stop_at` ticks. */
    sim::Tick
    run(sim::Tick stop_at)
    {
        machine_->requestStopAt(stop_at);
        return machine_->run();
    }

  private:
    std::unique_ptr<sim::Machine> machine_;
    std::unique_ptr<mem::CacheHierarchy> hierarchy_;
    std::unique_ptr<os::Kernel> kernel_;
    std::unique_ptr<trace::Tracer> tracer_;
    trace::MetricsRegistry metrics_;
};

/** Sum one event across every thread (one privilege mode). */
std::uint64_t totalEvent(os::Kernel &kernel, sim::EventType event,
                         sim::PrivMode mode);

/** Sum one event across every thread, both modes. */
std::uint64_t totalEvent(os::Kernel &kernel, sim::EventType event);

/** a / b as a percentage; 0 when b == 0. */
double percentOf(std::uint64_t a, std::uint64_t b);

} // namespace limit::analysis

#endif // LIMIT_ANALYSIS_BUNDLE_HH
