#include "analysis/profile_report.hh"

#include <cstdio>

#include "analysis/trace_report.hh"
#include "guard/sentinel.hh"
#include "prof/kernel_profile.hh"
#include "prof/timeline.hh"

namespace limit::analysis {

void
annotateReport(prof::Report &report, SimBundle &bundle,
               const BenchArgs &args, const std::string &bench)
{
    report.meta("bench", bench);
    report.meta("seeds", static_cast<std::uint64_t>(args.seeds));
    report.meta("jobs", static_cast<std::uint64_t>(args.jobs));
    report.meta("sim.max_time_ticks",
                static_cast<std::uint64_t>(bundle.machine().maxTime()));
    report.meta("os.context_switches",
                bundle.kernel().totalContextSwitches());
    const sim::SuperblockStats &sb =
        bundle.machine().superblockStats();
    report.meta("superblock.blocks_formed", sb.blocksFormed);
    report.meta("superblock.entries", sb.entries);
    report.meta("superblock.full_commits", sb.fullCommits);
    report.meta("superblock.partial_flushes", sb.partialFlushes);
    report.meta("superblock.stall_bridges", sb.stallBridges);
    report.meta("superblock.ops_replayed", sb.opsReplayed);
    report.meta("superblock.ops_recorded", sb.opsRecorded);
    const trace::Tracer *tracer = bundle.tracer();
    if (tracer) {
        report.meta("trace.records", tracer->totalRecorded());
        report.meta("trace.dropped", tracer->totalDropped());
        for (unsigned c = 0; c < tracer->numCores(); ++c) {
            const std::uint64_t d = tracer->ring(c).dropped();
            if (d > 0) {
                report.meta("trace.dropped.core" + std::to_string(c),
                            d);
            }
        }
    }
}

bool
writeProfile(prof::Report &report, const BenchArgs &args,
             const std::string &bench)
{
    if (!args.profile)
        return true;
    report.meta("bench", bench);
    report.meta("seeds", static_cast<std::uint64_t>(args.seeds));
    report.meta("jobs", static_cast<std::uint64_t>(args.jobs));
    if (!report.writeJson(args.profileOut)) {
        std::fprintf(stderr, "profile: cannot write %s\n",
                     args.profileOut.c_str());
        return false;
    }
    std::printf("wrote %s\n", args.profileOut.c_str());
    return true;
}

bool
writeTimeline(SimBundle &bundle, const BenchArgs &args,
              const std::string &bench)
{
    if (!args.timelineOn())
        return true;
    sim::TimelineRecorder *recorder = bundle.timeline();
    if (recorder == nullptr) {
        // The bench forgot to pass captureTimelineInterval() into its
        // representative BundleOptions — surface it instead of writing
        // an empty artifact.
        std::fprintf(stderr,
                     "timeline: %s built no recorder (bench bug: "
                     "BundleOptions.timelineInterval not wired)\n",
                     bench.c_str());
        return false;
    }
    recorder->finalize(bundle.machine().maxTime());
    prof::Report report;
    report.schema("limitpp-timeline-v1");
    // Deliberately no seeds/jobs metadata: the capture comes from the
    // dedicated representative run, so the artifact must stay
    // byte-identical across --jobs and execution modes.
    report.meta("bench", bench);
    report.meta("interval_ticks",
                static_cast<std::uint64_t>(recorder->interval()));
    report.addTimeline(prof::buildTimeline(bench, *recorder));
    if (!report.writeJson(args.timeline)) {
        std::fprintf(stderr, "timeline: cannot write %s\n",
                     args.timeline.c_str());
        return false;
    }
    std::printf("wrote %s\n", args.timeline.c_str());
    std::fputs(report.timelineAscii().c_str(), stdout);
    return true;
}

bool
writeRunArtifacts(SimBundle &bundle, const BenchArgs &args,
                  prof::Report &report, const std::string &bench)
{
    // Sentinel probes re-run jobs over a truncated window; their
    // bundles must never clobber the artifacts of the accepted run.
    if (guard::ProbeScope::active() != nullptr)
        return true;
    bool ok = true;
    // Finalize before the trace export so its counter tracks see
    // flushed slices (finalize is idempotent; writeTimeline's own
    // call is then a no-op).
    if (bundle.timeline() != nullptr)
        bundle.timeline()->finalize(bundle.machine().maxTime());
    if (args.tracing())
        ok = writeTraceReport(bundle, args.trace) && ok;
    ok = writeTimeline(bundle, args, bench) && ok;
    if (args.profile)
        annotateReport(report, bundle, args, bench);
    return writeProfile(report, args, bench) && ok;
}

bool
writeStandardArtifacts(SimBundle &bundle, const BenchArgs &args,
                       const std::string &bench)
{
    prof::Report report;
    if (args.profile) {
        report.addKernel(
            bench,
            prof::buildKernelProfile(
                bundle.kernel(),
                bundle.tracer()
                    ? bundle.tracer()->merged()
                    : std::vector<trace::TraceRecord>{}),
            0, 0); // no PEC cross-check counters in the generic path
    }
    return writeRunArtifacts(bundle, args, report, bench);
}

} // namespace limit::analysis
