/**
 * @file
 * Durable, self-healing experiment campaigns.
 *
 * A campaign is a ParallelRunner fan-out hardened for long unattended
 * runs. Around every job it layers, in order:
 *
 *   - a per-job host wall-clock watchdog (--job-timeout): a job over
 *     budget aborts with sim::WatchdogTimeout instead of wedging a
 *     worker forever;
 *   - bounded retry-with-degradation: a job that times out or throws
 *     is retried exactly once, one rung down the execution-mode
 *     ladder (superblock → batched → per-op), then marked failed
 *     without stopping the fan-out;
 *   - the divergence sentinel (--sentinel): sampled jobs are
 *     cross-checked against the per-op oracle; a divergent fast path
 *     is quarantined and the job deterministically re-run slower (see
 *     guard/sentinel.hh);
 *   - an append-only crash-safe journal (--journal): each completed
 *     job is fsync'd as one self-describing JSONL record keyed by job
 *     index and config fingerprint, so a SIGKILL'd campaign restarted
 *     with --resume skips finished work and reproduces the merged
 *     tables bit-identically (hexfloat value codec, no rounding);
 *   - graceful SIGINT drain: first ^C stops claiming new jobs but
 *     lets in-flight ones finish and journal; a second ^C kills.
 *
 * Two entry points: Campaign::run for string-valued, journalable jobs
 * (the sensitivity engine), and mapGuarded() for benches that want
 * watchdog + retry + sentinel on arbitrary value types without a
 * journal codec. Formats and semantics: docs/ROBUSTNESS.md.
 */

#ifndef LIMIT_ANALYSIS_CAMPAIGN_HH
#define LIMIT_ANALYSIS_CAMPAIGN_HH

#include <array>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "analysis/args.hh"
#include "analysis/runner.hh"
#include "base/logging.hh"
#include "guard/sentinel.hh"

namespace limit::analysis {

/** A campaign stopped early on SIGINT (after draining in-flight
    jobs); completed work is in the journal for --resume. */
class CampaignInterrupted : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** Durability/robustness knobs for one campaign. */
struct CampaignOptions
{
    /** ParallelRunner worker count (0 = hardware threads). */
    unsigned jobs = 1;
    /** Per-job host wall-clock budget in seconds; 0 = no watchdog. */
    double jobTimeoutSec = 0;
    /** Journal path; empty = no journal. */
    std::string journalPath;
    /** Skip jobs already completed in the journal. */
    bool resume = false;
    /** Heartbeat status-file path (--status-file); empty = off. */
    std::string statusPath;
    /**
     * Hex fingerprint of the campaign's full configuration. Journal
     * records carry it, and resume only trusts records whose
     * fingerprint matches — a journal from a different scenario or
     * parameter sweep is ignored rather than corrupting results.
     */
    std::string configFingerprint;
    /** Divergence-sentinel policy (enabled = --sentinel). */
    guard::SentinelOptions sentinel{};
    /** First SIGINT drains instead of killing (second one kills). */
    bool drainOnSigint = true;
};

/** Build CampaignOptions from parsed bench flags. */
CampaignOptions campaignOptions(const BenchArgs &args,
                                std::string configFingerprint = "");

/** FNV-1a 64 of a canonical config string, as 16 hex digits. */
std::string configHash(std::string_view canonical);

/** Encode a double as a hexfloat literal (bit-exact round trip). */
std::string encodeDouble(double v);

/** Decode encodeDouble()'s output; false on malformed text. */
bool decodeDouble(std::string_view text, double &out);

/**
 * Live campaign telemetry: an atomically-rewritten (write-to-temp +
 * rename, so a reader never sees a torn file) JSON heartbeat, schema
 * limitpp-status-v1, carrying job progress (done / in-flight /
 * resumed / skipped / failed), robustness activity (retried = needed
 * more than one attempt, quarantined = sentinel divergence), the
 * execution-mode ladder position of every accepted run, and a
 * wall-clock ETA. Writes are throttled plus one final flush from the
 * destructor, so `watch cat status.json` follows a day-long campaign
 * with negligible overhead. All methods are thread-safe; a
 * default-constructed or empty-path reporter is a no-op.
 */
class StatusReporter
{
  public:
    StatusReporter() = default;
    /** Report jobs out of `total_jobs` into `path` (empty = off). */
    StatusReporter(std::string path, std::size_t total_jobs);
    /** Final flush (marks the heartbeat finished when all jobs are
        accounted for). */
    ~StatusReporter();

    StatusReporter(const StatusReporter &) = delete;
    StatusReporter &operator=(const StatusReporter &) = delete;

    bool enabled() const { return !path_.empty(); }

    /** A job began executing on a worker. */
    void started();

    /** A fresh job finished (accepted, or failed after its retry). */
    void finished(guard::ExecMode mode, unsigned attempts, bool failed,
                  bool diverged);

    /** A job was satisfied from the journal (--resume). */
    void resumed();

    /** A job was never started (SIGINT drain). */
    void skipped();

    /** Write the heartbeat now, bypassing the throttle. */
    void flush();

  private:
    void maybeWrite(bool force);

    std::string path_;
    std::size_t total_ = 0;
    std::chrono::steady_clock::time_point start_{};
    mutable std::mutex mutex_;
    std::chrono::steady_clock::time_point lastWrite_{};
    std::size_t inFlight_ = 0;
    std::size_t done_ = 0;
    std::size_t resumed_ = 0;
    std::size_t skipped_ = 0;
    std::size_t failed_ = 0;
    std::size_t retried_ = 0;
    std::size_t quarantined_ = 0;
    /** Accepted runs per guard::ExecMode ladder rung. */
    std::array<std::size_t, 3> modes_{};
};

/** What happened to one campaign job. */
struct JobOutcome
{
    /** The job's encoded value (empty when failed/skipped). */
    std::string value;
    /** Mode the accepted run executed in. */
    guard::ExecMode mode = guard::ExecMode::Superblock;
    /** Full executions performed (retries and re-runs included). */
    unsigned attempts = 0;
    /** Value came from the journal (--resume), not a fresh run. */
    bool fromJournal = false;
    /** Job failed after its degradation retry. */
    bool failed = false;
    /** Job never started (SIGINT drain). */
    bool skipped = false;
    /** Failure/skip reason. */
    std::string error;
};

/** Aggregate result of Campaign::run. */
struct CampaignResult
{
    std::vector<JobOutcome> jobs;
    unsigned failedJobs = 0;
    unsigned resumedJobs = 0;
    unsigned skippedJobs = 0;
    /** A SIGINT arrived; unstarted jobs were skipped. */
    bool interrupted = false;
    std::uint64_t sentinelChecks = 0;
    std::vector<guard::DivergenceReport> divergences;

    bool ok() const { return failedJobs == 0 && !interrupted; }
};

namespace detail {

/** Outcome of one watchdog/retry/sentinel-guarded job execution. */
struct GuardedOutcome
{
    guard::ExecMode mode = guard::ExecMode::Superblock;
    unsigned attempts = 0;
    bool failed = false;
    bool diverged = false;
    std::string error;
};

/**
 * Run `attempt` under the campaign's watchdog and mode clamps, with
 * one retry-with-degradation on timeout/throw, then (optionally)
 * sentinel cross-checking with quarantine re-runs. `attempt` must be
 * deterministic and re-runnable; while a guard::ProbeScope is active
 * it runs a truncated probe window, so callers must only capture
 * results when ProbeScope::active() is null.
 */
GuardedOutcome
runGuardedJob(const CampaignOptions &options, guard::Sentinel *sentinel,
              std::size_t index,
              const std::function<void(guard::ExecMode)> &attempt);

/** True once a drained SIGINT has been observed (test hook). */
bool sigintDrainRequested();

/** Reset the SIGINT drain flag (test hook). */
void resetSigintDrain();

} // namespace detail

/**
 * String-valued, journalable campaign. Jobs return their result
 * through a caller-chosen string codec (hexfloat for doubles keeps
 * resume bit-identical); only successful jobs are journaled.
 */
class Campaign
{
  public:
    /** Compute job `index` and return its encoded value. */
    using JobFn = std::function<std::string(std::size_t index)>;

    explicit Campaign(CampaignOptions options)
        : options_(std::move(options))
    {
    }

    const CampaignOptions &options() const { return options_; }

    /**
     * Run jobs 0..count-1 and collect per-job outcomes. Never throws
     * for job failures — inspect CampaignResult. Journal records are
     * written (fsync'd) as jobs finish; with options().resume,
     * matching journal records short-circuit their jobs.
     */
    CampaignResult run(std::size_t count, const JobFn &fn);

  private:
    CampaignOptions options_;
};

/**
 * Guarded fan-out for arbitrary value types: watchdog, bounded
 * retry-with-degradation, and sentinel quarantine around each job,
 * with failures aggregated by ParallelRunner. No journal codec, so
 * `options.journalPath` must be empty (benches that cannot resume
 * reject --journal here with a clear error instead of silently
 * ignoring it).
 */
template <typename Fn>
auto
mapGuarded(const CampaignOptions &options, std::size_t count, Fn fn)
    -> std::vector<std::invoke_result_t<Fn &, std::size_t>>
{
    using R = std::invoke_result_t<Fn &, std::size_t>;
    fatal_if(!options.journalPath.empty(),
             "this bench does not support --journal/--resume (no "
             "journal value codec); only bench_e15_sensitivity "
             "journals campaigns");

    guard::Sentinel sentinel(options.sentinel);
    guard::Sentinel *guardPtr =
        options.sentinel.enabled ? &sentinel : nullptr;
    StatusReporter status(options.statusPath, count);
    ParallelRunner pool(options.jobs);
    std::vector<R> out;
    try {
        out = pool.map(count, [&](std::size_t i) -> R {
            std::optional<R> result;
            status.started();
            auto attempt = [&](guard::ExecMode) {
                R r = fn(i);
                if (guard::ProbeScope::active() == nullptr)
                    result.emplace(std::move(r));
            };
            const detail::GuardedOutcome g =
                detail::runGuardedJob(options, guardPtr, i, attempt);
            status.finished(g.mode, g.attempts, g.failed, g.diverged);
            if (g.failed)
                throw std::runtime_error(g.error);
            return std::move(*result);
        });
    } catch (...) {
        sentinel.writeReport();
        throw;
    }
    sentinel.writeReport();
    return out;
}

} // namespace limit::analysis

#endif // LIMIT_ANALYSIS_CAMPAIGN_HH
