#include "analysis/args.hh"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "fault/plan.hh"
#include "sim/machine.hh"

namespace limit::analysis {

namespace {

[[noreturn]] void
usage(const char *prog, const BenchDefaults &defaults,
      const char *what_seeds, int exit_code)
{
    std::FILE *out = exit_code == 0 ? stdout : stderr;
    std::fprintf(
        out,
        "usage: %s [--seeds N] [--jobs N] [--shards N] [--trace FILE] "
        "[--trace-cap N] [--faults SPEC] [--profile] "
        "[--profile-out FILE] [--job-timeout S] [--journal FILE] "
        "[--resume] [--sentinel] [--sentinel-every N] "
        "[--timeline FILE] [--timeline-interval N] "
        "[--status-file FILE]\n"
        "  --seeds N      %s (default %u)\n"
        "  --jobs N       host threads for parallel experiment "
        "fan-out; 0 = all hardware threads (default %u)\n"
        "  --trace FILE   write a Chrome-trace JSON (Perfetto-"
        "loadable) of one representative run\n"
        "  --trace-cap N  per-core trace ring capacity in records "
        "(default %u)\n"
        "  --faults SPEC  deterministic fault plan, e.g. "
        "'overflow-read:step=2;drop-pmi:nth=3' "
        "(see docs/FAULTS.md)\n"
        "  --profile      write a profile JSON (per-call-site lock "
        "stats, kernel decomposition; see docs/PROFILING.md)\n"
        "  --profile-out FILE  profile path (default profile.json; "
        "implies --profile)\n"
        "  --no-batch     run the per-op reference scheduler instead "
        "of horizon-batched execution (bit-identical results, "
        "slower; for equivalence checking)\n"
        "  --no-superblock  disable the decoded-op superblock replay "
        "cache (bit-identical results, slower; for equivalence "
        "checking)\n"
        "  --shards N     host threads per simulated machine; N-1 "
        "workers lease parallel-safe cores under the safe-horizon "
        "coordinator (bit-identical results for any N; default 1)\n"
        "  --job-timeout S  per-job host wall-clock budget in seconds; "
        "an over-budget job is retried once in the next slower "
        "execution mode, then marked failed (default: no watchdog)\n"
        "  --journal FILE crash-safe append-only campaign journal; "
        "completed jobs are fsync'd as they finish (see "
        "docs/ROBUSTNESS.md)\n"
        "  --resume       skip jobs already completed in --journal "
        "and reproduce merged tables bit-identically\n"
        "  --sentinel     cross-check sampled jobs against the per-op "
        "oracle and quarantine the fast path on divergence\n"
        "  --sentinel-every N  cross-check every Nth job "
        "(default 1)\n"
        "  --timeline FILE  write a limitpp-timeline-v1 JSON of one "
        "representative run: exact per-core PMU event deltas per "
        "guest-cycle interval (see docs/TIMELINE.md)\n"
        "  --timeline-interval N  timeline slice width in guest "
        "cycles (default %u, minimum 256)\n"
        "  --status-file FILE  atomically-rewritten campaign "
        "heartbeat JSON (jobs done/in-flight/retried/quarantined, "
        "ETA)\n",
        prog,
        what_seeds ? what_seeds
                   : "repetitions averaged per table point",
        defaults.seeds, defaults.jobs, BenchArgs{}.traceCap,
        BenchArgs{}.timelineInterval);
    std::exit(exit_code);
}

/**
 * Parse a decimal unsigned into `out`; on failure fill `error` with a
 * message naming the flag and the offending text. Rejects negatives
 * explicitly (strtoul would silently wrap "-1" to a huge value).
 */
bool
parseUnsigned(const char *flag, const char *text, unsigned &out,
              std::string &error)
{
    if (text == nullptr || *text == '\0') {
        error = std::string(flag) + " needs a value";
        return false;
    }
    if (*text == '-') {
        error = std::string(flag) + " must not be negative: '" + text +
                "'";
        return false;
    }
    char *end = nullptr;
    const unsigned long v = std::strtoul(text, &end, 10);
    if (*end != '\0') {
        error = std::string("bad value for ") + flag + ": '" + text +
                "' (not a decimal integer)";
        return false;
    }
    if (v > 100'000'000) {
        error = std::string(flag) + " value " + text +
                " is out of range (max 100000000)";
        return false;
    }
    out = static_cast<unsigned>(v);
    return true;
}

/**
 * Match `arg` against `flag`, accepting both "--flag value" and
 * "--flag=value". Returns the value (consuming argv[i+1] in the first
 * form), or nullptr when `arg` is not this flag. A missing value is
 * reported via parse failure downstream (returns "").
 */
/** Parse a positive finite decimal seconds value into `out`. */
bool
parseSeconds(const char *flag, const char *text, double &out,
             std::string &error)
{
    if (text == nullptr || *text == '\0') {
        error = std::string(flag) + " needs a value";
        return false;
    }
    char *end = nullptr;
    const double v = std::strtod(text, &end);
    if (*end != '\0' || !(v > 0) || !(v <= 1e9)) {
        error = std::string("bad value for ") + flag + ": '" + text +
                "' (need seconds in (0, 1e9])";
        return false;
    }
    out = v;
    return true;
}

const char *
flagValue(const char *flag, const char *arg, int argc, char **argv,
          int &i)
{
    const std::size_t len = std::strlen(flag);
    if (std::strncmp(arg, flag, len) != 0)
        return nullptr;
    if (arg[len] == '=')
        return arg + len + 1;
    if (arg[len] != '\0')
        return nullptr; // longer flag with this prefix
    return i + 1 < argc ? argv[++i] : "";
}

} // namespace

BenchParse
tryParseBenchArgs(int argc, char **argv, BenchDefaults defaults)
{
    BenchParse p;
    p.args.seeds = defaults.seeds;
    p.args.jobs = defaults.jobs;

    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        const char *value = nullptr;
        if (std::strcmp(arg, "--help") == 0 ||
            std::strcmp(arg, "-h") == 0) {
            p.help = true;
            return p;
        } else if ((value = flagValue("--seeds", arg, argc, argv, i))) {
            if (!parseUnsigned("--seeds", value, p.args.seeds, p.error))
                return p;
            if (p.args.seeds == 0) {
                p.error = "--seeds must be >= 1";
                return p;
            }
        } else if ((value = flagValue("--jobs", arg, argc, argv, i))) {
            if (!parseUnsigned("--jobs", value, p.args.jobs, p.error))
                return p;
        } else if ((value = flagValue("--shards", arg, argc, argv, i))) {
            if (!parseUnsigned("--shards", value, p.args.shards,
                               p.error)) {
                return p;
            }
            if (p.args.shards == 0) {
                p.error = "--shards must be >= 1";
                return p;
            }
            // An absurd thread count is a typo, not a tuning choice;
            // per-machine clamping to the core count happens later,
            // but catch the obviously-wrong spelling here.
            if (p.args.shards > 1024) {
                p.error = "--shards must be <= 1024";
                return p;
            }
        } else if ((value =
                        flagValue("--trace-cap", arg, argc, argv, i))) {
            if (!parseUnsigned("--trace-cap", value, p.args.traceCap,
                               p.error)) {
                return p;
            }
            if (p.args.traceCap == 0) {
                p.error = "--trace-cap must be >= 1";
                return p;
            }
        } else if ((value = flagValue("--trace", arg, argc, argv, i))) {
            if (*value == '\0') {
                p.error = "--trace needs a file name";
                return p;
            }
            p.args.trace = value;
        } else if ((value = flagValue("--faults", arg, argc, argv, i))) {
            if (*value == '\0') {
                p.error = "--faults needs a plan spec";
                return p;
            }
            fault::Plan plan;
            std::string plan_error;
            if (!fault::Plan::parse(value, plan, plan_error)) {
                p.error = std::string("bad --faults spec: ") +
                          plan_error;
                return p;
            }
            p.args.faults = value;
        } else if ((value = flagValue("--job-timeout", arg, argc, argv,
                                      i))) {
            if (!parseSeconds("--job-timeout", value,
                              p.args.jobTimeoutSec, p.error)) {
                return p;
            }
        } else if ((value = flagValue("--journal", arg, argc, argv, i))) {
            if (*value == '\0') {
                p.error = "--journal needs a file name";
                return p;
            }
            p.args.journal = value;
        } else if (std::strcmp(arg, "--resume") == 0) {
            p.args.resume = true;
        } else if (std::strcmp(arg, "--sentinel") == 0) {
            p.args.sentinel = true;
        } else if ((value = flagValue("--sentinel-every", arg, argc,
                                      argv, i))) {
            if (!parseUnsigned("--sentinel-every", value,
                               p.args.sentinelEvery, p.error)) {
                return p;
            }
            if (p.args.sentinelEvery == 0) {
                p.error = "--sentinel-every must be >= 1";
                return p;
            }
        } else if ((value = flagValue("--timeline-interval", arg, argc,
                                      argv, i))) {
            if (!parseUnsigned("--timeline-interval", value,
                               p.args.timelineInterval, p.error)) {
                return p;
            }
            // A degenerate interval silently allocates one slice per
            // few ops — gigabytes on a long run; reject like
            // --trace-cap 0 rather than letting it limp.
            if (p.args.timelineInterval < 256) {
                p.error = "--timeline-interval must be >= 256 "
                          "guest cycles";
                return p;
            }
        } else if ((value =
                        flagValue("--timeline", arg, argc, argv, i))) {
            if (*value == '\0') {
                p.error = "--timeline needs a file name";
                return p;
            }
            p.args.timeline = value;
        } else if ((value =
                        flagValue("--status-file", arg, argc, argv, i))) {
            if (*value == '\0') {
                p.error = "--status-file needs a file name";
                return p;
            }
            p.args.statusFile = value;
        } else if (std::strcmp(arg, "--no-batch") == 0) {
            p.args.noBatch = true;
        } else if (std::strcmp(arg, "--no-superblock") == 0) {
            p.args.noSuperblock = true;
        } else if (std::strcmp(arg, "--profile") == 0) {
            p.args.profile = true;
        } else if ((value =
                        flagValue("--profile-out", arg, argc, argv, i))) {
            if (*value == '\0') {
                p.error = "--profile-out needs a file name";
                return p;
            }
            p.args.profile = true;
            p.args.profileOut = value;
        } else {
            p.error = std::string("unknown argument '") + arg + "'";
            return p;
        }
    }
    if (p.args.resume && p.args.journal.empty()) {
        p.error = "--resume needs --journal (nothing to resume from)";
        return p;
    }
    return p;
}

BenchArgs
parseBenchArgs(int argc, char **argv, BenchDefaults defaults,
               const char *what_seeds)
{
    const char *prog = argc > 0 ? argv[0] : "bench";
    const BenchParse p = tryParseBenchArgs(argc, argv, defaults);
    if (p.help)
        usage(prog, defaults, what_seeds, 0);
    if (!p.ok()) {
        std::fprintf(stderr, "%s: %s\n", prog, p.error.c_str());
        usage(prog, defaults, what_seeds, 2);
    }
    // Process-wide so every machine the bench builds — including ones
    // constructed deep inside helpers — honours the flag. (The pure
    // tryParseBenchArgs only records it; side effects live here.)
    if (p.args.noBatch)
        sim::setBatchedExecutionDefault(false);
    if (p.args.noSuperblock)
        sim::setSuperblockExecutionDefault(false);
    if (p.args.jobTimeoutSec > 0)
        sim::setJobWatchdogDefault(p.args.jobTimeoutSec);
    if (p.args.shards > 1)
        sim::setShardExecutionDefault(p.args.shards);
    return p.args;
}

} // namespace limit::analysis
