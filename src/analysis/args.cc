#include "analysis/args.hh"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace limit::analysis {

namespace {

[[noreturn]] void
usage(const char *prog, const BenchArgs &defaults,
      const char *what_seeds, int exit_code)
{
    std::FILE *out = exit_code == 0 ? stdout : stderr;
    std::fprintf(out,
                 "usage: %s [--seeds N] [--jobs N]\n"
                 "  --seeds N  %s (default %u)\n"
                 "  --jobs N   host threads for parallel experiment "
                 "fan-out; 0 = all hardware threads (default %u)\n",
                 prog,
                 what_seeds ? what_seeds
                            : "repetitions averaged per table point",
                 defaults.seeds, defaults.jobs);
    std::exit(exit_code);
}

unsigned
parseUnsigned(const char *prog, const char *flag, const char *text)
{
    char *end = nullptr;
    const unsigned long v = std::strtoul(text ? text : "", &end, 10);
    if (text == nullptr || *text == '\0' || *end != '\0' ||
        v > 1'000'000) {
        std::fprintf(stderr, "%s: bad value for %s: '%s'\n", prog, flag,
                     text ? text : "");
        std::exit(2);
    }
    return static_cast<unsigned>(v);
}

} // namespace

BenchArgs
parseBenchArgs(int argc, char **argv, BenchArgs defaults,
               const char *what_seeds)
{
    BenchArgs args = defaults;
    const char *prog = argc > 0 ? argv[0] : "bench";

    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strcmp(arg, "--help") == 0 ||
            std::strcmp(arg, "-h") == 0) {
            usage(prog, defaults, what_seeds, 0);
        } else if (std::strcmp(arg, "--seeds") == 0) {
            args.seeds = parseUnsigned(
                prog, arg, i + 1 < argc ? argv[++i] : nullptr);
            if (args.seeds == 0) {
                std::fprintf(stderr, "%s: --seeds must be >= 1\n", prog);
                std::exit(2);
            }
        } else if (std::strcmp(arg, "--jobs") == 0) {
            args.jobs = parseUnsigned(
                prog, arg, i + 1 < argc ? argv[++i] : nullptr);
        } else {
            std::fprintf(stderr, "%s: unknown argument '%s'\n", prog,
                         arg);
            usage(prog, defaults, what_seeds, 2);
        }
    }
    return args;
}

} // namespace limit::analysis
