#include "analysis/args.hh"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace limit::analysis {

namespace {

[[noreturn]] void
usage(const char *prog, const BenchDefaults &defaults,
      const char *what_seeds, int exit_code)
{
    std::FILE *out = exit_code == 0 ? stdout : stderr;
    std::fprintf(
        out,
        "usage: %s [--seeds N] [--jobs N] [--trace FILE] "
        "[--trace-cap N]\n"
        "  --seeds N      %s (default %u)\n"
        "  --jobs N       host threads for parallel experiment "
        "fan-out; 0 = all hardware threads (default %u)\n"
        "  --trace FILE   write a Chrome-trace JSON (Perfetto-"
        "loadable) of one representative run\n"
        "  --trace-cap N  per-core trace ring capacity in records "
        "(default %u)\n",
        prog,
        what_seeds ? what_seeds
                   : "repetitions averaged per table point",
        defaults.seeds, defaults.jobs, BenchArgs{}.traceCap);
    std::exit(exit_code);
}

unsigned
parseUnsigned(const char *prog, const char *flag, const char *text)
{
    char *end = nullptr;
    const unsigned long v = std::strtoul(text ? text : "", &end, 10);
    if (text == nullptr || *text == '\0' || *end != '\0' ||
        v > 100'000'000) {
        std::fprintf(stderr, "%s: bad value for %s: '%s'\n", prog, flag,
                     text ? text : "");
        std::exit(2);
    }
    return static_cast<unsigned>(v);
}

/**
 * Match `arg` against `flag`, accepting both "--flag value" and
 * "--flag=value". Returns the value (consuming argv[i+1] in the first
 * form), or nullptr when `arg` is not this flag. A missing value is
 * reported via parse failure downstream (returns "").
 */
const char *
flagValue(const char *flag, const char *arg, int argc, char **argv,
          int &i)
{
    const std::size_t len = std::strlen(flag);
    if (std::strncmp(arg, flag, len) != 0)
        return nullptr;
    if (arg[len] == '=')
        return arg + len + 1;
    if (arg[len] != '\0')
        return nullptr; // longer flag with this prefix
    return i + 1 < argc ? argv[++i] : "";
}

} // namespace

BenchArgs
parseBenchArgs(int argc, char **argv, BenchDefaults defaults,
               const char *what_seeds)
{
    BenchArgs args;
    args.seeds = defaults.seeds;
    args.jobs = defaults.jobs;
    const char *prog = argc > 0 ? argv[0] : "bench";

    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        const char *value = nullptr;
        if (std::strcmp(arg, "--help") == 0 ||
            std::strcmp(arg, "-h") == 0) {
            usage(prog, defaults, what_seeds, 0);
        } else if ((value = flagValue("--seeds", arg, argc, argv, i))) {
            args.seeds = parseUnsigned(prog, "--seeds", value);
            if (args.seeds == 0) {
                std::fprintf(stderr, "%s: --seeds must be >= 1\n", prog);
                std::exit(2);
            }
        } else if ((value = flagValue("--jobs", arg, argc, argv, i))) {
            args.jobs = parseUnsigned(prog, "--jobs", value);
        } else if ((value =
                        flagValue("--trace-cap", arg, argc, argv, i))) {
            args.traceCap = parseUnsigned(prog, "--trace-cap", value);
            if (args.traceCap == 0) {
                std::fprintf(stderr, "%s: --trace-cap must be >= 1\n",
                             prog);
                std::exit(2);
            }
        } else if ((value = flagValue("--trace", arg, argc, argv, i))) {
            if (*value == '\0') {
                std::fprintf(stderr, "%s: --trace needs a file name\n",
                             prog);
                std::exit(2);
            }
            args.trace = value;
        } else {
            std::fprintf(stderr, "%s: unknown argument '%s'\n", prog,
                         arg);
            usage(prog, defaults, what_seeds, 2);
        }
    }
    return args;
}

} // namespace limit::analysis
