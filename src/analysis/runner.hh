/**
 * @file
 * Parallel experiment runner.
 *
 * Every experiment in this repo is a fan of fully independent jobs —
 * one simulated machine per (seed, configuration) point — so the bench
 * tables parallelize trivially across host threads. ParallelRunner
 * owns that fan-out: a fixed-size worker pool pulls job indices off a
 * shared atomic cursor, each job builds and runs its own SimBundle
 * (no sharing, no locks on the simulation path), and results land in
 * a slot vector indexed by submission order.
 *
 * Determinism: a job's result depends only on its index (which the
 * caller maps to a seed/config), never on which worker ran it or in
 * what order jobs finished — so `map(n, fn)` returns bit-identical
 * results for any worker count, including the inline serial path used
 * for workers() == 1. Verified by tests/test_runner.cc.
 *
 * Exceptions: a throwing job never wedges the pool. Workers catch the
 * exception into the job's slot and keep draining the queue; after
 * all workers join, failures are aggregated on the calling thread: a
 * single failed job rethrows its original exception unchanged, while
 * multiple failures throw one std::runtime_error listing every failed
 * job index with its what() (the serial path matches: run everything,
 * then report). failedJobs() exposes the count either way.
 */

#ifndef LIMIT_ANALYSIS_RUNNER_HH
#define LIMIT_ANALYSIS_RUNNER_HH

#include <atomic>
#include <cstddef>
#include <exception>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace limit::analysis {

/** Fixed-size worker pool mapping job indices to results. */
class ParallelRunner
{
  public:
    /**
     * @param workers host threads to fan across; 0 means "one per
     *        hardware thread", 1 means run inline on the caller.
     */
    explicit ParallelRunner(unsigned workers = 1)
        : workers_(resolveWorkers(workers))
    {
    }

    unsigned workers() const { return workers_; }

    /** Jobs that threw in the most recent map() (0 when it returned
        normally; set before the failure is thrown). */
    std::size_t failedJobs() const { return failedJobs_; }

    /**
     * Run `fn(0) .. fn(count - 1)` across the pool and return the
     * results in index (submission) order. `fn` must be invocable
     * with a std::size_t index and return a movable non-void value;
     * it is called concurrently from multiple threads, so everything
     * it touches must be job-local (build the SimBundle inside).
     */
    template <typename Fn>
    auto
    map(std::size_t count, Fn fn)
        -> std::vector<std::invoke_result_t<Fn &, std::size_t>>
    {
        using R = std::invoke_result_t<Fn &, std::size_t>;
        static_assert(!std::is_void_v<R>,
                      "ParallelRunner::map jobs must return a value");

        // One cache line per job: adjacent results written by
        // different workers would otherwise false-share a line and
        // bounce it between cores for the whole batch.
        struct alignas(64) Slot
        {
            std::optional<R> value;
            std::exception_ptr error;
        };
        std::vector<Slot> slots(count);

        auto run_one = [&](std::size_t i) {
            try {
                slots[i].value.emplace(fn(i));
            } catch (...) {
                slots[i].error = std::current_exception();
            }
        };

        if (workers_ <= 1 || count <= 1) {
            for (std::size_t i = 0; i < count; ++i)
                run_one(i);
        } else {
            std::atomic<std::size_t> cursor{0};
            auto worker = [&]() {
                for (;;) {
                    const std::size_t i =
                        cursor.fetch_add(1, std::memory_order_relaxed);
                    if (i >= count)
                        return;
                    run_one(i);
                }
            };
            const std::size_t nthreads =
                std::min<std::size_t>(workers_, count);
            std::vector<std::thread> pool;
            pool.reserve(nthreads);
            for (std::size_t t = 0; t < nthreads; ++t)
                pool.emplace_back(worker);
            for (auto &t : pool)
                t.join();
        }

        std::vector<std::size_t> failed;
        for (std::size_t i = 0; i < count; ++i) {
            if (slots[i].error)
                failed.push_back(i);
        }
        failedJobs_ = failed.size();
        if (failed.size() == 1) {
            // One failure: surface the original exception type intact.
            std::rethrow_exception(slots[failed[0]].error);
        }
        if (!failed.empty()) {
            // Several failures: no single exception can carry them
            // all, so aggregate index + what() into one error instead
            // of silently discarding all but the first.
            std::ostringstream os;
            os << failed.size() << " of " << count << " jobs failed: ";
            const std::size_t shown =
                std::min<std::size_t>(failed.size(), 8);
            for (std::size_t k = 0; k < shown; ++k) {
                if (k > 0)
                    os << "; ";
                os << "job " << failed[k] << ": ";
                try {
                    std::rethrow_exception(slots[failed[k]].error);
                } catch (const std::exception &e) {
                    os << e.what();
                } catch (...) {
                    os << "unknown exception";
                }
            }
            if (failed.size() > shown)
                os << "; (+" << failed.size() - shown << " more)";
            throw std::runtime_error(os.str());
        }

        std::vector<R> out;
        out.reserve(count);
        for (auto &slot : slots)
            out.push_back(std::move(*slot.value));
        return out;
    }

  private:
    static unsigned resolveWorkers(unsigned requested);

    unsigned workers_;
    std::size_t failedJobs_ = 0;
};

} // namespace limit::analysis

#endif // LIMIT_ANALYSIS_RUNNER_HH
