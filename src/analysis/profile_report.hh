/**
 * @file
 * One call from a bench's main: write the --trace and --profile
 * artifacts of an instrumented representative run.
 *
 * Keeps every bench's artifact handling identical: when --trace was
 * given the Chrome-trace JSON is written (via writeTraceReport, which
 * also warns about ring drops); when --profile was given the
 * prof::Report JSON goes to --profile-out. Benches that build richer
 * reports (E5–E7) populate the Report themselves and still funnel it
 * through here so the output path logic lives in one place.
 */

#ifndef LIMIT_ANALYSIS_PROFILE_REPORT_HH
#define LIMIT_ANALYSIS_PROFILE_REPORT_HH

#include <string>

#include "analysis/args.hh"
#include "analysis/bundle.hh"
#include "prof/report.hh"

namespace limit::analysis {

/**
 * Fold standard run metadata into `report` (bench name, seeds/jobs,
 * simulated time, context switches, per-core trace drops when a
 * tracer is attached).
 */
void annotateReport(prof::Report &report, SimBundle &bundle,
                    const BenchArgs &args, const std::string &bench);

/**
 * Write the profile artifact when --profile was requested: stamp
 * bench/seeds/jobs metadata and write `report` to --profile-out.
 * For benches whose report aggregates many bundles (ParallelRunner
 * fan-out) — no per-bundle metadata is added, keeping the JSON
 * byte-identical across job counts. Returns false only when a
 * requested write failed.
 */
bool writeProfile(prof::Report &report, const BenchArgs &args,
                  const std::string &bench);

/**
 * Write the timeline artifact when --timeline was requested:
 * finalize `bundle`'s recorder, build the phase-segmented section,
 * write the limitpp-timeline-v1 JSON to --timeline and print the
 * ASCII heatmap. No seeds/jobs metadata is stamped — the capture
 * comes from the dedicated representative run, so the artifact is
 * byte-identical across --jobs and execution modes. Returns false
 * when the bench requested a timeline but its representative bundle
 * attached no recorder, or when the write failed.
 */
bool writeTimeline(SimBundle &bundle, const BenchArgs &args,
                   const std::string &bench);

/**
 * Write the run artifacts requested on the command line:
 * --trace FILE → Chrome-trace JSON from `bundle`'s tracer (with
 * timeline counter tracks when --timeline is also active);
 * --timeline FILE → limitpp-timeline-v1 JSON;
 * --profile / --profile-out FILE → `report` as profile JSON,
 * annotated with `bundle`'s run metadata.
 * Returns false when a requested artifact could not be written.
 */
bool writeRunArtifacts(SimBundle &bundle, const BenchArgs &args,
                       prof::Report &report, const std::string &bench);

/**
 * The one-liner for benches with no richer report of their own:
 * build a prof::KernelProfile of `bundle`'s run (per-thread
 * user/kernel decomposition, syscall latencies when traced) as the
 * report's only section and write the requested artifacts.
 */
bool writeStandardArtifacts(SimBundle &bundle, const BenchArgs &args,
                            const std::string &bench);

} // namespace limit::analysis

#endif // LIMIT_ANALYSIS_PROFILE_REPORT_HH
