/**
 * @file
 * First-class machine parameter space for sensitivity analysis.
 *
 * An Axis names one machine-configuration knob (L1 size, memory
 * latency, counter width, ...) together with how to read its value
 * out of a BundleOptions and how to apply a perturbed value through
 * the BundleOptions::Builder. A ParamSpace is a base configuration
 * plus a set of axes with alternative levels; points() expands it
 * one-factor-at-a-time into fully validated variant BundleOptions,
 * each derived from the base via Builder::from — so every lattice
 * point passes exactly the same build()-time validation a hand-
 * written bench configuration would.
 */

#ifndef LIMIT_ANALYSIS_SENSITIVITY_PARAM_SPACE_HH
#define LIMIT_ANALYSIS_SENSITIVITY_PARAM_SPACE_HH

#include <functional>
#include <string>
#include <vector>

#include "analysis/bundle.hh"

namespace limit::analysis::sensitivity {

/** One machine-configuration knob with alternative levels to probe. */
struct Axis
{
    /** Stable identifier used in reports ("l1_size", "pmu_width"). */
    std::string name;
    /** Unit label for tables ("bytes", "cycles", "bits", "entries"). */
    std::string unit;
    /** Read the knob's current value out of an options struct. */
    std::function<double(const BundleOptions &)> read;
    /** Apply a perturbed value through the validating builder. */
    std::function<void(BundleOptions::Builder &, double)> apply;
    /** Alternative values to measure (the base value is implicit). */
    std::vector<double> levels;

    Axis &
    with(std::vector<double> values)
    {
        levels = std::move(values);
        return *this;
    }

    /** @name Built-in axes over the standard machine knobs @{ */
    static Axis l1Size(std::vector<double> levels);
    static Axis l1Latency(std::vector<double> levels);
    static Axis l2Size(std::vector<double> levels);
    static Axis l2Latency(std::vector<double> levels);
    static Axis llcSize(std::vector<double> levels);
    static Axis llcLatency(std::vector<double> levels);
    static Axis memLatency(std::vector<double> levels);
    static Axis tlbEntries(std::vector<double> levels);
    static Axis tlbMissPenalty(std::vector<double> levels);
    static Axis counterWidth(std::vector<double> levels);
    static Axis pmuCounters(std::vector<double> levels);
    static Axis quantum(std::vector<double> levels);
    static Axis cores(std::vector<double> levels);
    /** Host threads per machine — a throughput axis: every level is
        bit-identical in guest metrics by the sharding contract. */
    static Axis shards(std::vector<double> levels);
    /** @} */
};

/**
 * A base machine plus perturbation axes. Expansion is deliberately
 * one-factor-at-a-time (OAT): each point varies exactly one axis to
 * one of its levels while every other knob stays at the base value,
 * which is what makes the finite-difference derivatives in
 * sensitivity::analyze attributable to a single cause.
 */
class ParamSpace
{
  public:
    /** One expanded lattice point: axis `axisIndex` set to `value`. */
    struct Point
    {
        /** Index into axes() of the perturbed axis. */
        std::size_t axisIndex = 0;
        /** Index into that axis's levels. */
        std::size_t levelIndex = 0;
        /** The perturbed parameter value. */
        double value = 0;
        /** Fully derived + validated variant configuration. */
        BundleOptions options;
    };

    explicit ParamSpace(BundleOptions base) : base_(std::move(base)) {}

    /** Add one perturbation axis (kept in insertion order). */
    ParamSpace &
    add(Axis axis)
    {
        axes_.push_back(std::move(axis));
        return *this;
    }

    const BundleOptions &base() const { return base_; }
    const std::vector<Axis> &axes() const { return axes_; }

    /**
     * Expand the OAT lattice in deterministic order (axes in
     * insertion order, levels in declaration order). Fatals, via the
     * builder, on any level that produces an impossible machine.
     */
    std::vector<Point> points() const;

  private:
    BundleOptions base_;
    std::vector<Axis> axes_;
};

} // namespace limit::analysis::sensitivity

#endif // LIMIT_ANALYSIS_SENSITIVITY_PARAM_SPACE_HH
