#include "analysis/sensitivity/param_space.hh"

namespace limit::analysis::sensitivity {

namespace {

/** Shorthand for building one of the standard axes. */
Axis
makeAxis(const char *name, const char *unit,
         double (*read)(const BundleOptions &),
         void (*apply)(BundleOptions::Builder &, double),
         std::vector<double> levels)
{
    Axis a;
    a.name = name;
    a.unit = unit;
    a.read = read;
    a.apply = apply;
    a.levels = std::move(levels);
    return a;
}

} // namespace

Axis
Axis::l1Size(std::vector<double> levels)
{
    return makeAxis(
        "l1_size", "bytes",
        [](const BundleOptions &o) {
            return static_cast<double>(o.hierarchy.l1d.sizeBytes);
        },
        [](BundleOptions::Builder &b, double v) {
            b.l1Size(static_cast<std::uint64_t>(v));
        },
        std::move(levels));
}

Axis
Axis::l1Latency(std::vector<double> levels)
{
    return makeAxis(
        "l1_latency", "cycles",
        [](const BundleOptions &o) {
            return static_cast<double>(o.hierarchy.l1Latency);
        },
        [](BundleOptions::Builder &b, double v) {
            b.l1Latency(static_cast<sim::Tick>(v));
        },
        std::move(levels));
}

Axis
Axis::l2Size(std::vector<double> levels)
{
    return makeAxis(
        "l2_size", "bytes",
        [](const BundleOptions &o) {
            return static_cast<double>(o.hierarchy.l2.sizeBytes);
        },
        [](BundleOptions::Builder &b, double v) {
            b.l2Size(static_cast<std::uint64_t>(v));
        },
        std::move(levels));
}

Axis
Axis::l2Latency(std::vector<double> levels)
{
    return makeAxis(
        "l2_latency", "cycles",
        [](const BundleOptions &o) {
            return static_cast<double>(o.hierarchy.l2Latency);
        },
        [](BundleOptions::Builder &b, double v) {
            b.l2Latency(static_cast<sim::Tick>(v));
        },
        std::move(levels));
}

Axis
Axis::llcSize(std::vector<double> levels)
{
    return makeAxis(
        "llc_size", "bytes",
        [](const BundleOptions &o) {
            return static_cast<double>(o.hierarchy.llc.sizeBytes);
        },
        [](BundleOptions::Builder &b, double v) {
            b.llcSize(static_cast<std::uint64_t>(v));
        },
        std::move(levels));
}

Axis
Axis::llcLatency(std::vector<double> levels)
{
    return makeAxis(
        "llc_latency", "cycles",
        [](const BundleOptions &o) {
            return static_cast<double>(o.hierarchy.llcLatency);
        },
        [](BundleOptions::Builder &b, double v) {
            b.llcLatency(static_cast<sim::Tick>(v));
        },
        std::move(levels));
}

Axis
Axis::memLatency(std::vector<double> levels)
{
    return makeAxis(
        "mem_latency", "cycles",
        [](const BundleOptions &o) {
            return static_cast<double>(o.hierarchy.memLatency);
        },
        [](BundleOptions::Builder &b, double v) {
            b.memLatency(static_cast<sim::Tick>(v));
        },
        std::move(levels));
}

Axis
Axis::tlbEntries(std::vector<double> levels)
{
    return makeAxis(
        "tlb_entries", "entries",
        [](const BundleOptions &o) {
            return static_cast<double>(o.hierarchy.dtlb.entries);
        },
        [](BundleOptions::Builder &b, double v) {
            b.tlbEntries(static_cast<unsigned>(v));
        },
        std::move(levels));
}

Axis
Axis::tlbMissPenalty(std::vector<double> levels)
{
    return makeAxis(
        "tlb_miss_penalty", "cycles",
        [](const BundleOptions &o) {
            return static_cast<double>(o.hierarchy.tlbMissPenalty);
        },
        [](BundleOptions::Builder &b, double v) {
            b.tlbMissPenalty(static_cast<sim::Tick>(v));
        },
        std::move(levels));
}

Axis
Axis::counterWidth(std::vector<double> levels)
{
    return makeAxis(
        "pmu_width", "bits",
        [](const BundleOptions &o) {
            return static_cast<double>(o.pmuFeatures.counterWidth);
        },
        [](BundleOptions::Builder &b, double v) {
            b.pmuWidth(static_cast<unsigned>(v));
        },
        std::move(levels));
}

Axis
Axis::pmuCounters(std::vector<double> levels)
{
    return makeAxis(
        "pmu_counters", "counters",
        [](const BundleOptions &o) {
            return static_cast<double>(o.pmuCounters);
        },
        [](BundleOptions::Builder &b, double v) {
            b.pmuCounters(static_cast<unsigned>(v));
        },
        std::move(levels));
}

Axis
Axis::quantum(std::vector<double> levels)
{
    return makeAxis(
        "quantum", "ticks",
        [](const BundleOptions &o) {
            return static_cast<double>(o.quantum);
        },
        [](BundleOptions::Builder &b, double v) {
            b.quantum(static_cast<sim::Tick>(v));
        },
        std::move(levels));
}

Axis
Axis::cores(std::vector<double> levels)
{
    return makeAxis(
        "cores", "cores",
        [](const BundleOptions &o) {
            return static_cast<double>(o.cores);
        },
        [](BundleOptions::Builder &b, double v) {
            b.cores(static_cast<unsigned>(v));
        },
        std::move(levels));
}

Axis
Axis::shards(std::vector<double> levels)
{
    // Perturbs only host parallelism — every level must reproduce the
    // base point's numbers bit-identically, so this axis measures
    // simulator throughput (host seconds per point), never guest
    // metrics. build() still rejects levels above the base core count.
    return makeAxis(
        "shards", "threads",
        [](const BundleOptions &o) {
            return static_cast<double>(o.shards);
        },
        [](BundleOptions::Builder &b, double v) {
            b.shards(static_cast<unsigned>(v));
        },
        std::move(levels));
}

std::vector<ParamSpace::Point>
ParamSpace::points() const
{
    std::vector<Point> out;
    for (std::size_t a = 0; a < axes_.size(); ++a) {
        const Axis &axis = axes_[a];
        for (std::size_t l = 0; l < axis.levels.size(); ++l) {
            BundleOptions::Builder b =
                BundleOptions::Builder::from(base_);
            axis.apply(b, axis.levels[l]);
            out.push_back(Point{a, l, axis.levels[l], b.build()});
        }
    }
    return out;
}

} // namespace limit::analysis::sensitivity
