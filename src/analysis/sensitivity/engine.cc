#include "analysis/sensitivity/engine.hh"

#include <algorithm>
#include <cmath>

#include "analysis/runner.hh"
#include "base/logging.hh"
#include "mem/hierarchy.hh"

namespace limit::analysis::sensitivity {

namespace {

/** Seed-average a contiguous block of per-run measurements. */
Measurement
average(const std::vector<Measurement> &runs, std::size_t first,
        unsigned seeds)
{
    Measurement avg;
    for (unsigned s = 0; s < seeds; ++s) {
        const Measurement &m = runs[first + s];
        avg.work += m.work;
        for (const auto &[k, v] : m.metrics)
            avg.metrics[k] += v;
    }
    avg.work /= seeds;
    for (auto &[k, v] : avg.metrics)
        v /= seeds;
    return avg;
}

} // namespace

prof::Report::SensitivitySection
analyze(const ParamSpace &space, const WorkloadFn &workload,
        const Options &options)
{
    fatal_if(!workload, "sensitivity::analyze: null workload");
    fatal_if(space.axes().empty(),
             "sensitivity::analyze: ParamSpace has no axes");
    const unsigned seeds = std::max(1u, options.seeds);
    const std::vector<ParamSpace::Point> points = space.points();

    // One flat job fan: (baseline then every lattice point) × seeds,
    // in a fixed submission order. The runner returns results in that
    // same order regardless of worker count, which is the entire
    // determinism story — everything below is pure arithmetic on the
    // ordered result vector.
    const std::size_t jobs = (1 + points.size()) * seeds;
    ParallelRunner runner(options.jobs);
    const std::vector<Measurement> runs = runner.map(
        jobs, [&](std::size_t i) -> Measurement {
            const std::size_t point = i / seeds;
            const std::uint64_t seed = 1 + (i % seeds);
            const BundleOptions &o = point == 0
                ? space.base()
                : points[point - 1].options;
            return workload(o, seed);
        });

    prof::Report::SensitivitySection section;
    section.name = options.scenario;
    section.workMetric = options.workMetric;
    const Measurement base = average(runs, 0, seeds);
    section.baselineWork = base.work;
    section.baselineMetrics = base.metrics;

    // Group the point measurements back onto their axes (points() is
    // ordered axis-major, so this walk is sequential).
    std::vector<prof::Report::SensitivitySection::AxisResult> axes;
    for (std::size_t a = 0; a < space.axes().size(); ++a) {
        const Axis &axis = space.axes()[a];
        prof::Report::SensitivitySection::AxisResult r;
        r.axis = axis.name;
        r.unit = axis.unit;
        r.baseParam = axis.read(space.base());
        axes.push_back(std::move(r));
    }
    for (std::size_t p = 0; p < points.size(); ++p) {
        const ParamSpace::Point &pt = points[p];
        const Measurement m = average(runs, (1 + p) * seeds, seeds);
        prof::Report::SensitivitySection::Level level;
        level.param = pt.value;
        level.work = m.work;
        level.metrics = m.metrics;
        if (base.work != 0) {
            level.workRelPct =
                100.0 * (m.work - base.work) / base.work;
            const double base_param = axes[pt.axisIndex].baseParam;
            const double d_param = pt.value - base_param;
            if (base_param != 0 && d_param != 0) {
                level.elasticity = ((m.work - base.work) / base.work) /
                    (d_param / base_param);
            }
        }
        prof::Report::SensitivitySection::AxisResult &r =
            axes[pt.axisIndex];
        r.score = std::max(r.score, std::abs(level.workRelPct));
        r.levels.push_back(std::move(level));
    }

    // Rank most-sensitive-first; stable, so equal scores keep the
    // caller's axis insertion order.
    std::stable_sort(axes.begin(), axes.end(),
                     [](const auto &x, const auto &y) {
                         return x.score > y.score;
                     });
    section.axes = std::move(axes);
    return section;
}

void
analyzeInto(prof::Report &report, const ParamSpace &space,
            const WorkloadFn &workload, const Options &options)
{
    report.schema("limitpp-sensitivity-v1");
    const prof::Report::SensitivitySection section =
        analyze(space, workload, options);

    const std::string prefix = options.scenario + ".";
    report.meta(prefix + "seeds",
                static_cast<std::uint64_t>(std::max(1u, options.seeds)));
    report.meta(prefix + "axes",
                static_cast<std::uint64_t>(space.axes().size()));
    std::size_t lattice = 0;
    for (const Axis &a : space.axes())
        lattice += a.levels.size();
    report.meta(prefix + "lattice_points",
                static_cast<std::uint64_t>(lattice));
    // Stamp the exact base machine so the artifact is self-describing.
    const BundleOptions &base = space.base();
    report.meta(prefix + "base.cores",
                static_cast<std::uint64_t>(base.cores));
    report.meta(prefix + "base.pmu_counters",
                static_cast<std::uint64_t>(base.pmuCounters));
    report.meta(prefix + "base.pmu_width",
                static_cast<std::uint64_t>(base.pmuFeatures.counterWidth));
    report.meta(prefix + "base.quantum",
                static_cast<std::uint64_t>(base.quantum));
    if (base.useCaches) {
        for (const auto &[field, value] : mem::configFields(base.hierarchy))
            report.meta(prefix + "base." + field, value);
    } else {
        report.meta(prefix + "base.memory", "flat");
    }

    report.addSensitivity(section);
}

} // namespace limit::analysis::sensitivity
