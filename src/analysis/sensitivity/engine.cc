#include "analysis/sensitivity/engine.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "analysis/runner.hh"
#include "base/logging.hh"
#include "mem/hierarchy.hh"

namespace limit::analysis::sensitivity {

namespace {

/**
 * Encode a Measurement for the campaign journal: one `w=<hexfloat>`
 * line, then one `<key>=<hexfloat>` line per metric (std::map keeps
 * key order deterministic). Hexfloats round-trip doubles bit-exactly,
 * which is what makes a resumed report byte-identical to an
 * uninterrupted one.
 */
std::string
encodeMeasurement(const Measurement &m)
{
    std::ostringstream os;
    os << "w=" << encodeDouble(m.work);
    for (const auto &[k, v] : m.metrics)
        os << "\n" << k << "=" << encodeDouble(v);
    return os.str();
}

bool
decodeMeasurement(const std::string &text, Measurement &out)
{
    out = Measurement{};
    std::istringstream in(text);
    std::string line;
    bool first = true;
    while (std::getline(in, line)) {
        const std::size_t eq = line.find('=');
        if (eq == std::string::npos || eq == 0)
            return false;
        double v = 0;
        if (!decodeDouble(std::string_view(line).substr(eq + 1), v))
            return false;
        const std::string key = line.substr(0, eq);
        if (first) {
            if (key != "w")
                return false;
            out.work = v;
            first = false;
        } else {
            out.metrics[key] = v;
        }
    }
    return !first;
}

/**
 * Canonical description of everything that determines a job's result:
 * scenario, metric, seed depth, the full lattice, and the base
 * machine. Its hash keys journal records — deliberately excluding
 * --jobs (resume must work across worker counts) and the robustness
 * knobs themselves.
 */
std::string
canonicalConfig(const ParamSpace &space, const Options &options,
                unsigned seeds)
{
    std::ostringstream os;
    os << "scenario=" << options.scenario
       << ";metric=" << options.workMetric << ";seeds=" << seeds;
    const BundleOptions &base = space.base();
    os << ";cores=" << base.cores << ";pmu=" << base.pmuCounters
       << ";width=" << base.pmuFeatures.counterWidth
       << ";quantum=" << base.quantum;
    if (base.useCaches) {
        for (const auto &[field, value] : mem::configFields(base.hierarchy))
            os << ";" << field << "=" << value;
    } else {
        os << ";memory=flat";
    }
    for (const Axis &a : space.axes()) {
        os << ";axis=" << a.name << ":" << a.unit << ":"
           << encodeDouble(a.read(base));
        for (double level : a.levels)
            os << "," << encodeDouble(level);
    }
    return os.str();
}

/** Seed-average a contiguous block of per-run measurements. */
Measurement
average(const std::vector<Measurement> &runs, std::size_t first,
        unsigned seeds)
{
    Measurement avg;
    for (unsigned s = 0; s < seeds; ++s) {
        const Measurement &m = runs[first + s];
        avg.work += m.work;
        for (const auto &[k, v] : m.metrics)
            avg.metrics[k] += v;
    }
    avg.work /= seeds;
    for (auto &[k, v] : avg.metrics)
        v /= seeds;
    return avg;
}

} // namespace

prof::Report::SensitivitySection
analyze(const ParamSpace &space, const WorkloadFn &workload,
        const Options &options, CampaignResult *campaignOut)
{
    fatal_if(!workload, "sensitivity::analyze: null workload");
    fatal_if(space.axes().empty(),
             "sensitivity::analyze: ParamSpace has no axes");
    const unsigned seeds = std::max(1u, options.seeds);
    const std::vector<ParamSpace::Point> points = space.points();

    // One flat job fan: (baseline then every lattice point) × seeds,
    // in a fixed submission order. The campaign returns outcomes in
    // that same order regardless of worker count, which is the entire
    // determinism story — everything below is pure arithmetic on the
    // ordered result vector.
    const std::size_t jobs = (1 + points.size()) * seeds;

    CampaignOptions copts;
    copts.jobs = options.jobs;
    copts.jobTimeoutSec = options.jobTimeoutSec;
    copts.journalPath = options.journalPath;
    copts.resume = options.resume;
    copts.statusPath = options.statusPath;
    copts.sentinel = options.sentinel;
    copts.configFingerprint =
        configHash(canonicalConfig(space, options, seeds));

    Campaign campaign(copts);
    CampaignResult cres =
        campaign.run(jobs, [&](std::size_t i) -> std::string {
            const std::size_t point = i / seeds;
            const std::uint64_t seed = 1 + (i % seeds);
            const BundleOptions &o = point == 0
                ? space.base()
                : points[point - 1].options;
            return encodeMeasurement(workload(o, seed));
        });

    if (cres.interrupted) {
        std::ostringstream os;
        os << "sensitivity campaign '" << options.scenario
           << "' interrupted: "
           << jobs - cres.skippedJobs - cres.resumedJobs
           << " jobs finished this run, " << cres.skippedJobs
           << " skipped";
        if (!copts.journalPath.empty())
            os << "; re-run with --resume to continue from the journal";
        if (campaignOut != nullptr)
            *campaignOut = std::move(cres);
        throw CampaignInterrupted(os.str());
    }
    if (cres.failedJobs > 0) {
        std::ostringstream os;
        os << "sensitivity campaign '" << options.scenario << "': "
           << cres.failedJobs << " of " << jobs << " jobs failed:";
        unsigned shown = 0;
        for (std::size_t i = 0; i < cres.jobs.size() && shown < 8; ++i) {
            if (!cres.jobs[i].failed)
                continue;
            os << (shown == 0 ? " " : "; ") << "job " << i << ": "
               << cres.jobs[i].error;
            ++shown;
        }
        if (cres.failedJobs > shown)
            os << "; (+" << cres.failedJobs - shown << " more)";
        if (campaignOut != nullptr)
            *campaignOut = std::move(cres);
        throw std::runtime_error(os.str());
    }

    std::vector<Measurement> runs(jobs);
    for (std::size_t i = 0; i < jobs; ++i) {
        fatal_if(!decodeMeasurement(cres.jobs[i].value, runs[i]),
                 "sensitivity campaign '", options.scenario,
                 "': corrupt journaled value for job ", i,
                 " (delete the journal and re-run without --resume)");
    }
    if (campaignOut != nullptr)
        *campaignOut = std::move(cres);

    prof::Report::SensitivitySection section;
    section.name = options.scenario;
    section.workMetric = options.workMetric;
    const Measurement base = average(runs, 0, seeds);
    section.baselineWork = base.work;
    section.baselineMetrics = base.metrics;

    // Group the point measurements back onto their axes (points() is
    // ordered axis-major, so this walk is sequential).
    std::vector<prof::Report::SensitivitySection::AxisResult> axes;
    for (std::size_t a = 0; a < space.axes().size(); ++a) {
        const Axis &axis = space.axes()[a];
        prof::Report::SensitivitySection::AxisResult r;
        r.axis = axis.name;
        r.unit = axis.unit;
        r.baseParam = axis.read(space.base());
        axes.push_back(std::move(r));
    }
    for (std::size_t p = 0; p < points.size(); ++p) {
        const ParamSpace::Point &pt = points[p];
        const Measurement m = average(runs, (1 + p) * seeds, seeds);
        prof::Report::SensitivitySection::Level level;
        level.param = pt.value;
        level.work = m.work;
        level.metrics = m.metrics;
        if (base.work != 0) {
            level.workRelPct =
                100.0 * (m.work - base.work) / base.work;
            const double base_param = axes[pt.axisIndex].baseParam;
            const double d_param = pt.value - base_param;
            if (base_param != 0 && d_param != 0) {
                level.elasticity = ((m.work - base.work) / base.work) /
                    (d_param / base_param);
            }
        }
        prof::Report::SensitivitySection::AxisResult &r =
            axes[pt.axisIndex];
        r.score = std::max(r.score, std::abs(level.workRelPct));
        r.levels.push_back(std::move(level));
    }

    // Rank most-sensitive-first; stable, so equal scores keep the
    // caller's axis insertion order.
    std::stable_sort(axes.begin(), axes.end(),
                     [](const auto &x, const auto &y) {
                         return x.score > y.score;
                     });
    section.axes = std::move(axes);
    return section;
}

void
analyzeInto(prof::Report &report, const ParamSpace &space,
            const WorkloadFn &workload, const Options &options,
            CampaignResult *campaignOut)
{
    report.schema("limitpp-sensitivity-v1");
    CampaignResult cres;
    const prof::Report::SensitivitySection section =
        analyze(space, workload, options, &cres);

    const std::string prefix = options.scenario + ".";
    report.meta(prefix + "seeds",
                static_cast<std::uint64_t>(std::max(1u, options.seeds)));
    report.meta(prefix + "axes",
                static_cast<std::uint64_t>(space.axes().size()));
    std::size_t lattice = 0;
    for (const Axis &a : space.axes())
        lattice += a.levels.size();
    report.meta(prefix + "lattice_points",
                static_cast<std::uint64_t>(lattice));
    // Stamp the exact base machine so the artifact is self-describing.
    const BundleOptions &base = space.base();
    report.meta(prefix + "base.cores",
                static_cast<std::uint64_t>(base.cores));
    report.meta(prefix + "base.pmu_counters",
                static_cast<std::uint64_t>(base.pmuCounters));
    report.meta(prefix + "base.pmu_width",
                static_cast<std::uint64_t>(base.pmuFeatures.counterWidth));
    report.meta(prefix + "base.quantum",
                static_cast<std::uint64_t>(base.quantum));
    if (base.useCaches) {
        for (const auto &[field, value] : mem::configFields(base.hierarchy))
            report.meta(prefix + "base." + field, value);
    } else {
        report.meta(prefix + "base.memory", "flat");
    }
    // Only stamped when nonzero: a clean, a resumed, and an
    // uninterrupted run must all serialize byte-identically.
    if (!cres.divergences.empty()) {
        report.meta(prefix + "divergences",
                    static_cast<std::uint64_t>(cres.divergences.size()));
    }

    report.addSensitivity(section);
    if (campaignOut != nullptr)
        *campaignOut = std::move(cres);
}

} // namespace limit::analysis::sensitivity
