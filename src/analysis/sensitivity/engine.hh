/**
 * @file
 * Sensitivity/causality bottleneck engine.
 *
 * Given a ParamSpace and a workload, analyze() measures the baseline
 * machine and every one-factor-at-a-time lattice point (each averaged
 * over the requested seeds), computes finite-difference derivatives
 * of the workload's work metric along each axis, and returns a ranked
 * prof::Report SensitivitySection: the axis whose perturbation moves
 * the work metric the most is the bottleneck. All (point, seed) runs
 * fan out through analysis::ParallelRunner, so results are
 * bit-identical for any --jobs value.
 */

#ifndef LIMIT_ANALYSIS_SENSITIVITY_ENGINE_HH
#define LIMIT_ANALYSIS_SENSITIVITY_ENGINE_HH

#include <cstdint>
#include <functional>
#include <map>
#include <string>

#include "analysis/campaign.hh"
#include "analysis/sensitivity/param_space.hh"
#include "guard/sentinel.hh"
#include "prof/report.hh"

namespace limit::analysis::sensitivity {

/** What one workload run measured on one machine configuration. */
struct Measurement
{
    /**
     * The primary "how much got done" metric (iterations, txns,
     * exact counter reads survived, ...). More is better; the
     * ranking is driven by how far perturbations move it.
     */
    double work = 0;
    /** Secondary PEC-measured metrics carried into the report. */
    std::map<std::string, double> metrics;
};

/**
 * A workload under analysis: build a machine from `options`, run it
 * with `seed`, return what it measured. Called concurrently from
 * runner workers — everything it touches must be call-local.
 */
using WorkloadFn =
    std::function<Measurement(const BundleOptions &options,
                              std::uint64_t seed)>;

/** Engine knobs. */
struct Options
{
    /** Section name in the report (e.g. "stream", "overflow"). */
    std::string scenario = "workload";
    /** Label for the work metric column (e.g. "iterations"). */
    std::string workMetric = "work";
    /** Seeds per lattice point (averaged). */
    unsigned seeds = 1;
    /** Runner fan-out; 0 = one per hardware thread, 1 = inline. */
    unsigned jobs = 1;
    /** Per-job host wall-clock budget (0 = no watchdog). */
    double jobTimeoutSec = 0;
    /** Crash-safe journal path; empty = no journal. Records are keyed
        by a fingerprint of (scenario, metric, seeds, lattice, base
        machine), so one file can serve several scenarios and a stale
        journal can never poison a different sweep. */
    std::string journalPath;
    /** Skip journaled-complete jobs; merged tables stay bit-identical
        to an uninterrupted run (hexfloat value codec). */
    bool resume = false;
    /** Heartbeat status-file path (--status-file); empty = off. */
    std::string statusPath;
    /** Divergence-sentinel policy for the fan-out. */
    guard::SentinelOptions sentinel{};
};

/**
 * Measure the whole lattice and rank the axes.
 *
 * Derivative semantics per axis level L with base value B:
 *   workRelPct = 100 * (work(L) - work(B)) / work(B)
 *   elasticity = (Δwork / work(B)) / (Δparam / B)
 * Score (ranking key) = max |workRelPct| over the axis's levels;
 * ties keep ParamSpace insertion order (stable sort).
 *
 * Every (point, seed) job runs through a Campaign (watchdog, bounded
 * retry-with-degradation, optional sentinel/journal per `options`).
 * Throws CampaignInterrupted on SIGINT drain (completed jobs are in
 * the journal for --resume) and std::runtime_error when jobs failed
 * outright. `campaignOut`, when non-null, receives the campaign
 * outcome (divergence reports, resumed/failed counts).
 */
prof::Report::SensitivitySection
analyze(const ParamSpace &space, const WorkloadFn &workload,
        const Options &options, CampaignResult *campaignOut = nullptr);

/**
 * analyze() plus report packaging: stamps the
 * "limitpp-sensitivity-v1" schema, scenario/lattice metadata, and the
 * base machine's mem::configFields into `report`, then attaches the
 * ranked section. Multiple scenarios may be layered into one report.
 */
void analyzeInto(prof::Report &report, const ParamSpace &space,
                 const WorkloadFn &workload, const Options &options,
                 CampaignResult *campaignOut = nullptr);

} // namespace limit::analysis::sensitivity

#endif // LIMIT_ANALYSIS_SENSITIVITY_ENGINE_HH
