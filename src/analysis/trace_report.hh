/**
 * @file
 * One call from a bench's main: harvest a traced bundle and write the
 * Chrome-trace JSON.
 *
 * Keeps every bench's --trace handling identical: standard metrics
 * (run length, context switches, ledger totals, per-category trace
 * hit counts, ring drops) are folded into the bundle's
 * MetricsRegistry, the JSON file is written with syscall numbers
 * decoded, and the ASCII per-category summary is printed to stdout.
 */

#ifndef LIMIT_ANALYSIS_TRACE_REPORT_HH
#define LIMIT_ANALYSIS_TRACE_REPORT_HH

#include <string>

#include "analysis/bundle.hh"

namespace limit::analysis {

/**
 * Fold standard post-run metrics from `bundle` (ledger totals,
 * scheduler counts, trace aggregates when a tracer is attached) into
 * bundle.metrics(). Safe to call on an untraced bundle.
 */
void harvestStandardMetrics(SimBundle &bundle);

/**
 * harvestStandardMetrics + write the Chrome-trace JSON to `path` +
 * print the ASCII summary. Returns false (with a message on stderr)
 * when the bundle has no tracer or the file cannot be written.
 */
bool writeTraceReport(SimBundle &bundle, const std::string &path);

} // namespace limit::analysis

#endif // LIMIT_ANALYSIS_TRACE_REPORT_HH
