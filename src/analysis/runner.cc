#include "analysis/runner.hh"

namespace limit::analysis {

unsigned
ParallelRunner::resolveWorkers(unsigned requested)
{
    if (requested != 0)
        return requested;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
}

} // namespace limit::analysis
