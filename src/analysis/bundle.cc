#include "analysis/bundle.hh"

namespace limit::analysis {

SimBundle::SimBundle(const BundleOptions &options)
{
    sim::MachineConfig mc;
    mc.numCores = options.cores;
    mc.pmuCounters = options.pmuCounters;
    mc.pmuFeatures = options.pmuFeatures;
    mc.seed = options.seed;
    if (options.quantum != 0)
        mc.costs.quantum = options.quantum;
    machine_ = std::make_unique<sim::Machine>(mc);

    if (options.useCaches) {
        hierarchy_ = std::make_unique<mem::CacheHierarchy>(
            options.cores, options.hierarchy);
        machine_->setMemory(hierarchy_.get());
    }

    os::KernelConfig kc = options.kernelConfig;
    kc.seed = options.seed ^ 0x5eed;
    kernel_ = std::make_unique<os::Kernel>(*machine_, kc);
}

std::uint64_t
totalEvent(os::Kernel &kernel, sim::EventType event, sim::PrivMode mode)
{
    std::uint64_t total = 0;
    for (unsigned t = 0; t < kernel.numThreads(); ++t)
        total += kernel.thread(t).ctx.ledger().count(event, mode);
    return total;
}

std::uint64_t
totalEvent(os::Kernel &kernel, sim::EventType event)
{
    return totalEvent(kernel, event, sim::PrivMode::User) +
           totalEvent(kernel, event, sim::PrivMode::Kernel);
}

double
percentOf(std::uint64_t a, std::uint64_t b)
{
    return b == 0 ? 0.0
                  : 100.0 * static_cast<double>(a) /
                        static_cast<double>(b);
}

} // namespace limit::analysis
