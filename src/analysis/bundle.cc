#include "analysis/bundle.hh"

#include <bit>

#include "base/logging.hh"
#include "guard/sentinel.hh"

namespace limit::analysis {

namespace {

/**
 * Builder-level replica of the mem::Cache constructor geometry checks,
 * so an axis-derived or hand-built configuration fails at build() with
 * a message naming the builder field instead of deep inside machine
 * construction.
 */
void
checkCacheGeometry(const char *level, const mem::CacheGeometry &g)
{
    fatal_if(g.lineBytes == 0 ||
                 !std::has_single_bit(
                     static_cast<std::uint64_t>(g.lineBytes)),
             "BundleOptions: ", level,
             " line size must be a nonzero power of two, got ",
             g.lineBytes);
    fatal_if(g.ways == 0, "BundleOptions: ", level, " needs ways >= 1");
    const std::uint64_t lines = g.sizeBytes / g.lineBytes;
    fatal_if(lines == 0 || lines % g.ways != 0,
             "BundleOptions: ", level, " size ", g.sizeBytes,
             " is inconsistent with ", g.ways, " ways of ", g.lineBytes,
             "-byte lines");
    const std::uint64_t sets = lines / g.ways;
    fatal_if(!std::has_single_bit(sets),
             "BundleOptions: ", level, " set count ", sets,
             " must be a power of two (adjust size or ways)");
}

} // namespace

BundleOptions
BundleOptions::Builder::build() const
{
    fatal_if(flat_ && hier_,
             "BundleOptions: flatMemory() conflicts with hierarchy()/"
             "per-field cache setters — pick one memory model");
    fatal_if(o_.cores == 0, "BundleOptions: need at least one core");
    fatal_if(o_.pmuCounters == 0 ||
                 o_.pmuCounters > sim::maxPmuCounters,
             "BundleOptions: pmuCounters must be in [1, ",
             sim::maxPmuCounters, "], got ", o_.pmuCounters);
    fatal_if(o_.pmuFeatures.counterWidth < 8 ||
                 o_.pmuFeatures.counterWidth > 64,
             "BundleOptions: pmuWidth must be in [8, 64] bits, got ",
             o_.pmuFeatures.counterWidth);
    // Tagged virtualization swaps per-thread counter sets in
    // hardware; with kernel virtualization off nothing ever saves or
    // restores them, so the feature silently does nothing — reject
    // the combination as a configuration error.
    fatal_if(o_.pmuFeatures.taggedVirtualization &&
                 !o_.kernelConfig.virtualizeCounters,
             "BundleOptions: taggedVirtualization requires "
             "virtualizeCounters(true)");
    // Superblock replay rides the batched scheduler; asking for it
    // explicitly on the per-op loop would silently never replay.
    fatal_if(superblocksExplicit_ && o_.superblocks && !o_.batched,
             "BundleOptions: superblocks(true) requires batched(true)");
    // Sharding leases cores to worker threads, so more shards than
    // cores can never have work; the machine clamps the process-wide
    // default silently, but an explicit per-bundle request that can't
    // be honoured is a configuration error.
    fatal_if(o_.shards < 1, "BundleOptions: shards must be >= 1");
    fatal_if(o_.shards > o_.cores,
             "BundleOptions: shards (", o_.shards,
             ") must not exceed cores (", o_.cores, ")");
    // Sharded execution drives the horizon-batched scheduler on every
    // lease; pinning a bundle to the per-op reference loop while also
    // asking for workers is contradictory.
    fatal_if(o_.shards > 1 && !o_.batched,
             "BundleOptions: shards > 1 requires batched(true)");
    // A tiny interval allocates one 88-byte slice per handful of ops —
    // gigabytes over a long run. parseBenchArgs enforces the same
    // bound on --timeline-interval; this catches programmatic use.
    fatal_if(o_.timelineInterval != 0 && o_.timelineInterval < 256,
             "BundleOptions: timelineInterval must be 0 (off) or "
             ">= 256 guest cycles, got ", o_.timelineInterval);
    if (o_.useCaches) {
        checkCacheGeometry("l1d", o_.hierarchy.l1d);
        checkCacheGeometry("l2", o_.hierarchy.l2);
        checkCacheGeometry("llc", o_.hierarchy.llc);
        fatal_if(o_.hierarchy.dtlb.entries == 0,
                 "BundleOptions: tlbEntries must be >= 1");
        fatal_if(o_.hierarchy.dtlb.pageBytes == 0 ||
                     !std::has_single_bit(static_cast<std::uint64_t>(
                         o_.hierarchy.dtlb.pageBytes)),
                 "BundleOptions: TLB page size must be a nonzero power "
                 "of two, got ", o_.hierarchy.dtlb.pageBytes);
    }
    return o_;
}

SimBundle::SimBundle(const BundleOptions &options)
{
    sim::MachineConfig mc;
    mc.numCores = options.cores;
    mc.pmuCounters = options.pmuCounters;
    mc.pmuFeatures = options.pmuFeatures;
    mc.seed = options.seed;
    mc.batched = options.batched;
    mc.superblocks = options.superblocks;
    mc.shards = options.shards;
    if (options.quantum != 0)
        mc.costs.quantum = options.quantum;
    machine_ = std::make_unique<sim::Machine>(mc);

    if (options.useCaches) {
        hierarchy_ = std::make_unique<mem::CacheHierarchy>(
            options.cores, options.hierarchy);
        machine_->setMemory(hierarchy_.get());
    }

    os::KernelConfig kc = options.kernelConfig;
    kc.seed = options.seed ^ 0x5eed;
    kernel_ = std::make_unique<os::Kernel>(*machine_, kc);

    if (options.traceCapacity > 0) {
        tracer_ = std::make_unique<trace::Tracer>(options.cores,
                                                  options.traceCapacity);
        machine_->setTracer(tracer_.get());
    }

    if (options.timelineInterval > 0) {
        timeline_ = std::make_unique<sim::TimelineRecorder>(
            options.timelineInterval);
        machine_->setTimeline(timeline_.get());
    }
}

sim::Tick
SimBundle::run(sim::Tick stop_at)
{
    if (guard::ProbeScope *probe = guard::ProbeScope::active()) {
        machine_->requestStopAt(probe->window(stop_at));
        const sim::Tick end = machine_->run();
        probe->fold(*kernel_, *machine_, end);
        return end;
    }
    machine_->requestStopAt(stop_at);
    return machine_->run();
}

std::uint64_t
totalEvent(os::Kernel &kernel, sim::EventType event, sim::PrivMode mode)
{
    std::uint64_t total = 0;
    for (unsigned t = 0; t < kernel.numThreads(); ++t)
        total += kernel.thread(t).ctx.ledger().count(event, mode);
    return total;
}

std::uint64_t
totalEvent(os::Kernel &kernel, sim::EventType event)
{
    return totalEvent(kernel, event, sim::PrivMode::User) +
           totalEvent(kernel, event, sim::PrivMode::Kernel);
}

double
percentOf(std::uint64_t a, std::uint64_t b)
{
    return b == 0 ? 0.0
                  : 100.0 * static_cast<double>(a) /
                        static_cast<double>(b);
}

} // namespace limit::analysis
