#include "analysis/bundle.hh"

#include "base/logging.hh"

namespace limit::analysis {

BundleOptions
BundleOptions::Builder::build() const
{
    fatal_if(o_.cores == 0, "BundleOptions: need at least one core");
    fatal_if(o_.pmuCounters == 0 ||
                 o_.pmuCounters > sim::maxPmuCounters,
             "BundleOptions: pmuCounters must be in [1, ",
             sim::maxPmuCounters, "], got ", o_.pmuCounters);
    fatal_if(o_.pmuFeatures.counterWidth < 8 ||
                 o_.pmuFeatures.counterWidth > 64,
             "BundleOptions: pmuWidth must be in [8, 64] bits, got ",
             o_.pmuFeatures.counterWidth);
    // Tagged virtualization swaps per-thread counter sets in
    // hardware; with kernel virtualization off nothing ever saves or
    // restores them, so the feature silently does nothing — reject
    // the combination as a configuration error.
    fatal_if(o_.pmuFeatures.taggedVirtualization &&
                 !o_.kernelConfig.virtualizeCounters,
             "BundleOptions: taggedVirtualization requires "
             "virtualizeCounters(true)");
    return o_;
}

SimBundle::SimBundle(const BundleOptions &options)
{
    sim::MachineConfig mc;
    mc.numCores = options.cores;
    mc.pmuCounters = options.pmuCounters;
    mc.pmuFeatures = options.pmuFeatures;
    mc.seed = options.seed;
    mc.batched = options.batched;
    mc.superblocks = options.superblocks;
    if (options.quantum != 0)
        mc.costs.quantum = options.quantum;
    machine_ = std::make_unique<sim::Machine>(mc);

    if (options.useCaches) {
        hierarchy_ = std::make_unique<mem::CacheHierarchy>(
            options.cores, options.hierarchy);
        machine_->setMemory(hierarchy_.get());
    }

    os::KernelConfig kc = options.kernelConfig;
    kc.seed = options.seed ^ 0x5eed;
    kernel_ = std::make_unique<os::Kernel>(*machine_, kc);

    if (options.traceCapacity > 0) {
        tracer_ = std::make_unique<trace::Tracer>(options.cores,
                                                  options.traceCapacity);
        machine_->setTracer(tracer_.get());
    }
}

std::uint64_t
totalEvent(os::Kernel &kernel, sim::EventType event, sim::PrivMode mode)
{
    std::uint64_t total = 0;
    for (unsigned t = 0; t < kernel.numThreads(); ++t)
        total += kernel.thread(t).ctx.ledger().count(event, mode);
    return total;
}

std::uint64_t
totalEvent(os::Kernel &kernel, sim::EventType event)
{
    return totalEvent(kernel, event, sim::PrivMode::User) +
           totalEvent(kernel, event, sim::PrivMode::Kernel);
}

double
percentOf(std::uint64_t a, std::uint64_t b)
{
    return b == 0 ? 0.0
                  : 100.0 * static_cast<double>(a) /
                        static_cast<double>(b);
}

} // namespace limit::analysis
