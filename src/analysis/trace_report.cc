#include "analysis/trace_report.hh"

#include <cstdio>
#include <fstream>
#include <string>

#include "os/sysno.hh"
#include "trace/exporter.hh"

namespace limit::analysis {

void
harvestStandardMetrics(SimBundle &bundle)
{
    trace::MetricsRegistry &m = bundle.metrics();
    m.set("sim.max_time_ticks",
          static_cast<double>(bundle.machine().maxTime()));
    m.set("os.threads", bundle.kernel().numThreads());
    m.add("os.context_switches",
          bundle.kernel().totalContextSwitches());
    m.add("ledger.instructions",
          totalEvent(bundle.kernel(), sim::EventType::Instructions));
    m.add("ledger.cycles",
          totalEvent(bundle.kernel(), sim::EventType::Cycles));

    // Superblock replay cache effectiveness (zeros when the cache is
    // off — the keys stay present so dashboards can diff runs).
    const sim::SuperblockStats &sb =
        bundle.machine().superblockStats();
    m.add("superblock.blocks_formed", sb.blocksFormed);
    m.add("superblock.entries", sb.entries);
    m.add("superblock.full_commits", sb.fullCommits);
    m.add("superblock.partial_flushes", sb.partialFlushes);
    m.add("superblock.entry_misses", sb.entryMisses);
    m.add("superblock.stall_bridges", sb.stallBridges);
    m.add("superblock.ops_replayed", sb.opsReplayed);
    m.add("superblock.ops_recorded", sb.opsRecorded);
    m.add("superblock.refused_faults", sb.refusedFaults);
    m.add("superblock.refused_pmi", sb.refusedPmi);
    m.add("superblock.refused_horizon", sb.refusedHorizon);
    m.add("superblock.refused_budget", sb.refusedBudget);
    m.add("superblock.refused_overflow", sb.refusedOverflow);
    m.add("superblock.refused_mem_view", sb.refusedMemView);
    // Hit rate over every op the replay machinery saw: replayed,
    // recorded by the detector, or bridged through a mid-replay stall.
    const std::uint64_t sb_total =
        sb.opsReplayed + sb.opsRecorded + sb.stallBridges;
    m.set("superblock.hit_rate",
          sb_total == 0 ? 0.0
                        : static_cast<double>(sb.opsReplayed) /
                              static_cast<double>(sb_total));

    const trace::Tracer *tracer = bundle.tracer();
    if (!tracer)
        return;
    m.add("trace.records", tracer->totalRecorded());
    m.add("trace.dropped", tracer->totalDropped());
    for (unsigned c = 0; c < tracer->numCores(); ++c) {
        const std::uint64_t d = tracer->ring(c).dropped();
        if (d > 0)
            m.add("trace.dropped.core" + std::to_string(c), d);
    }
    for (unsigned c = 0; c < trace::numTraceCategories; ++c) {
        const auto cat = static_cast<trace::TraceCategory>(c);
        const std::uint64_t n = tracer->categoryCount(cat);
        if (n > 0) {
            m.add(std::string("trace.") +
                      std::string(trace::traceCategoryName(cat)),
                  n);
        }
    }
}

bool
writeTraceReport(SimBundle &bundle, const std::string &path)
{
    harvestStandardMetrics(bundle);
    const trace::Tracer *tracer = bundle.tracer();
    if (!tracer) {
        std::fprintf(stderr,
                     "trace: bundle has no tracer (was traceCapacity "
                     "set?); not writing %s\n",
                     path.c_str());
        return false;
    }

    std::ofstream out(path);
    if (!out) {
        std::fprintf(stderr, "trace: cannot open %s for writing\n",
                     path.c_str());
        return false;
    }
    trace::ExportOptions opts;
    opts.syscallName = os::sysName;
    opts.counterTracks = true;
    // Timeline counter tracks ride along when --timeline is also
    // active (the recorder is finalized by writeRunArtifacts before
    // this export runs).
    if (bundle.timeline() != nullptr && bundle.timeline()->finalized())
        opts.timeline = bundle.timeline();
    trace::writeChromeTrace(out, *tracer, &bundle.metrics(), opts);
    out.close();

    std::fputs(trace::asciiSummary(*tracer).c_str(), stdout);
    if (tracer->totalDropped() > 0) {
        std::fprintf(
            stderr,
            "trace: %llu records overwritten in the per-core rings; "
            "the exported trace is incomplete (raise --trace-cap)\n",
            static_cast<unsigned long long>(tracer->totalDropped()));
    }
    std::printf("wrote %s (%llu events)\n", path.c_str(),
                static_cast<unsigned long long>(
                    tracer->totalRecorded() - tracer->totalDropped()));
    return true;
}

} // namespace limit::analysis
