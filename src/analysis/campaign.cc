#include "analysis/campaign.hh"

#include <fcntl.h>
#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <mutex>
#include <sstream>

#include "base/logging.hh"

namespace limit::analysis {

namespace {

// ---------------------------------------------------------------- SIGINT

volatile std::sig_atomic_t sigintDrain = 0;

extern "C" void
campaignSigintHandler(int)
{
    // Async-signal-safe: set the flag and disarm so a second ^C gets
    // the default (killing) disposition.
    sigintDrain = 1;
    std::signal(SIGINT, SIG_DFL);
}

/** RAII install/restore of the drain handler. */
class SigintDrainScope
{
  public:
    explicit SigintDrainScope(bool install) : installed_(install)
    {
        if (installed_) {
            sigintDrain = 0;
            prev_ = std::signal(SIGINT, campaignSigintHandler);
        }
    }

    ~SigintDrainScope()
    {
        if (installed_)
            std::signal(SIGINT, prev_);
    }

  private:
    bool installed_;
    void (*prev_)(int) = SIG_DFL;
};

// ---------------------------------------------------------------- JSON

/** Escape a string for a JSON string literal. */
std::string
jsonEscape(std::string_view s)
{
    std::string out;
    out.reserve(s.size() + 8);
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          case '\r':
            out += "\\r";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

/**
 * Consume a JSON string literal's body starting after the opening
 * quote; true on success with `pos` one past the closing quote.
 * Handles exactly the escapes jsonEscape emits.
 */
bool
jsonUnescape(const std::string &line, std::size_t &pos, std::string &out)
{
    out.clear();
    while (pos < line.size()) {
        const char c = line[pos];
        if (c == '"') {
            ++pos;
            return true;
        }
        if (c == '\\') {
            if (pos + 1 >= line.size())
                return false;
            const char e = line[pos + 1];
            pos += 2;
            switch (e) {
              case '"':
                out += '"';
                break;
              case '\\':
                out += '\\';
                break;
              case 'n':
                out += '\n';
                break;
              case 't':
                out += '\t';
                break;
              case 'r':
                out += '\r';
                break;
              case 'u': {
                if (pos + 4 > line.size())
                    return false;
                unsigned v = 0;
                for (unsigned k = 0; k < 4; ++k) {
                    const char h = line[pos + k];
                    v <<= 4;
                    if (h >= '0' && h <= '9')
                        v |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        v |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        v |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        return false;
                }
                if (v > 0xff)
                    return false; // jsonEscape only emits control bytes
                pos += 4;
                out += static_cast<char>(v);
                break;
              }
              default:
                return false;
            }
        } else {
            out += c;
            ++pos;
        }
    }
    return false; // unterminated
}

/** Consume `expect` at `pos`; true and advance on match. */
bool
consume(const std::string &line, std::size_t &pos, std::string_view expect)
{
    if (line.compare(pos, expect.size(), expect) != 0)
        return false;
    pos += expect.size();
    return true;
}

/** Consume a decimal uint64 at `pos`. */
bool
consumeUint(const std::string &line, std::size_t &pos, std::uint64_t &out)
{
    if (pos >= line.size() || line[pos] < '0' || line[pos] > '9')
        return false;
    out = 0;
    while (pos < line.size() && line[pos] >= '0' && line[pos] <= '9') {
        out = out * 10 + static_cast<std::uint64_t>(line[pos] - '0');
        ++pos;
    }
    return true;
}

// ---------------------------------------------------------------- journal

/** One journaled completion. */
struct JournalRecord
{
    std::string value;
    guard::ExecMode mode = guard::ExecMode::Superblock;
    unsigned attempts = 1;
};

/**
 * Parse one journal line. Strict: anything that doesn't match the
 * schema exactly — including a torn final line from a crash mid-write
 * — is ignored rather than trusted.
 */
bool
parseJournalLine(const std::string &line, const std::string &config,
                 std::uint64_t &job, JournalRecord &rec)
{
    std::size_t pos = 0;
    if (!consume(line, pos, "{\"rec\":\"job\",\"config\":\""))
        return false;
    if (!consume(line, pos, config) || !consume(line, pos, "\",\"job\":"))
        return false;
    if (!consumeUint(line, pos, job))
        return false;
    if (!consume(line, pos, ",\"mode\":\""))
        return false;
    const std::size_t modeEnd = line.find('"', pos);
    if (modeEnd == std::string::npos)
        return false;
    if (!guard::parseMode(line.substr(pos, modeEnd - pos), rec.mode))
        return false;
    pos = modeEnd + 1;
    if (!consume(line, pos, ",\"attempts\":"))
        return false;
    std::uint64_t attempts = 0;
    if (!consumeUint(line, pos, attempts))
        return false;
    rec.attempts = static_cast<unsigned>(attempts);
    if (!consume(line, pos, ",\"value\":\""))
        return false;
    if (!jsonUnescape(line, pos, rec.value))
        return false;
    return consume(line, pos, "}") && pos == line.size();
}

/**
 * Load completed-job records matching `config` from a journal file.
 * Only '\n'-terminated lines count (a crash mid-record leaves a torn
 * tail, which a terminator-less read would misparse); records for
 * other configs are skipped silently (one shared journal file can
 * serve several scenarios).
 */
std::map<std::size_t, JournalRecord>
loadJournal(const std::string &path, const std::string &config)
{
    std::map<std::size_t, JournalRecord> out;
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return out;
    std::string content((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
    std::size_t start = 0;
    while (start < content.size()) {
        const std::size_t nl = content.find('\n', start);
        if (nl == std::string::npos)
            break; // torn tail: never trust it
        const std::string line = content.substr(start, nl - start);
        start = nl + 1;
        std::uint64_t job = 0;
        JournalRecord rec;
        if (parseJournalLine(line, config, job, rec))
            out[static_cast<std::size_t>(job)] = std::move(rec);
    }
    return out;
}

/** Append-only fsync'd journal writer. */
class JournalWriter
{
  public:
    JournalWriter(const std::string &path, const std::string &config,
                  std::size_t jobs)
    {
        fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
        fatal_if(fd_ < 0, "cannot open campaign journal '", path, "'");
        const off_t size = ::lseek(fd_, 0, SEEK_END);
        if (size == 0) {
            std::ostringstream os;
            os << "{\"rec\":\"campaign\",\"schema\":\"limitpp-journal"
               << "-v1\",\"config\":\"" << config
               << "\",\"jobs\":" << jobs << "}\n";
            writeAll(os.str());
        }
    }

    ~JournalWriter()
    {
        if (fd_ >= 0)
            ::close(fd_);
    }

    JournalWriter(const JournalWriter &) = delete;
    JournalWriter &operator=(const JournalWriter &) = delete;

    void
    append(const std::string &config, std::size_t job,
           const JobOutcome &outcome)
    {
        std::ostringstream os;
        os << "{\"rec\":\"job\",\"config\":\"" << config
           << "\",\"job\":" << job << ",\"mode\":\""
           << guard::modeName(outcome.mode)
           << "\",\"attempts\":" << outcome.attempts << ",\"value\":\""
           << jsonEscape(outcome.value) << "\"}\n";
        std::lock_guard<std::mutex> lock(mutex_);
        writeAll(os.str());
    }

  private:
    void
    writeAll(const std::string &data)
    {
        // One write() per record (O_APPEND keeps records atomic with
        // respect to each other) followed by fsync: a SIGKILL can
        // lose at most the in-flight record, never corrupt old ones.
        std::size_t done = 0;
        while (done < data.size()) {
            const ssize_t n =
                ::write(fd_, data.data() + done, data.size() - done);
            if (n < 0) {
                warn("campaign journal write failed; records may be "
                     "missing");
                return;
            }
            done += static_cast<std::size_t>(n);
        }
        ::fsync(fd_);
    }

    int fd_ = -1;
    std::mutex mutex_;
};

} // namespace

StatusReporter::StatusReporter(std::string path, std::size_t total_jobs)
    : path_(std::move(path)), total_(total_jobs),
      start_(std::chrono::steady_clock::now())
{
    maybeWrite(true); // heartbeat exists from the first moment
}

StatusReporter::~StatusReporter()
{
    flush();
}

void
StatusReporter::started()
{
    if (!enabled())
        return;
    std::lock_guard<std::mutex> lock(mutex_);
    ++inFlight_;
    maybeWrite(false);
}

void
StatusReporter::finished(guard::ExecMode mode, unsigned attempts,
                         bool failed, bool diverged)
{
    if (!enabled())
        return;
    std::lock_guard<std::mutex> lock(mutex_);
    if (inFlight_ > 0)
        --inFlight_;
    ++done_;
    if (failed)
        ++failed_;
    else
        ++modes_[static_cast<unsigned>(mode) % modes_.size()];
    if (attempts > 1)
        ++retried_;
    if (diverged)
        ++quarantined_;
    maybeWrite(false);
}

void
StatusReporter::resumed()
{
    if (!enabled())
        return;
    std::lock_guard<std::mutex> lock(mutex_);
    ++resumed_;
    maybeWrite(false);
}

void
StatusReporter::skipped()
{
    if (!enabled())
        return;
    std::lock_guard<std::mutex> lock(mutex_);
    ++skipped_;
    maybeWrite(false);
}

void
StatusReporter::flush()
{
    if (!enabled())
        return;
    std::lock_guard<std::mutex> lock(mutex_);
    maybeWrite(true);
}

void
StatusReporter::maybeWrite(bool force)
{
    // Called with mutex_ held. Throttled so a storm of sub-millisecond
    // jobs doesn't turn the heartbeat into an fsync bottleneck.
    const auto now = std::chrono::steady_clock::now();
    if (!force && lastWrite_.time_since_epoch().count() != 0 &&
        now - lastWrite_ < std::chrono::milliseconds(200)) {
        return;
    }
    lastWrite_ = now;

    const double elapsed =
        std::chrono::duration<double>(now - start_).count();
    const std::size_t accounted = done_ + resumed_ + skipped_;
    const std::size_t remaining =
        total_ > accounted ? total_ - accounted : 0;
    // Fresh-job throughput predicts the rest; resumed/skipped jobs are
    // free and excluded from the rate. -1 = not estimable yet.
    const double eta = (done_ > 0 && elapsed > 0)
        ? static_cast<double>(remaining) *
            (elapsed / static_cast<double>(done_))
        : -1.0;

    std::ostringstream os;
    os << "{\"schema\":\"limitpp-status-v1\""
       << ",\"total\":" << total_
       << ",\"done\":" << done_
       << ",\"in_flight\":" << inFlight_
       << ",\"resumed\":" << resumed_
       << ",\"skipped\":" << skipped_
       << ",\"failed\":" << failed_
       << ",\"retried\":" << retried_
       << ",\"quarantined\":" << quarantined_
       << ",\"modes\":{";
    for (unsigned m = 0; m < modes_.size(); ++m) {
        os << (m == 0 ? "" : ",") << '"'
           << guard::modeName(static_cast<guard::ExecMode>(m))
           << "\":" << modes_[m];
    }
    char num[32];
    std::snprintf(num, sizeof(num), "%.3f", elapsed);
    os << "},\"elapsed_sec\":" << num;
    std::snprintf(num, sizeof(num), "%.3f", eta);
    os << ",\"eta_sec\":" << num
       << ",\"finished\":"
       << (accounted >= total_ && inFlight_ == 0 ? "true" : "false")
       << "}\n";

    // Write-to-temp + rename: a reader polling the path always sees a
    // complete document, never a torn one.
    const std::string tmp = path_ + ".tmp";
    std::FILE *f = std::fopen(tmp.c_str(), "w");
    if (f == nullptr)
        return; // heartbeat is best-effort; never fail the campaign
    const std::string text = os.str();
    std::fwrite(text.data(), 1, text.size(), f);
    std::fclose(f);
    std::rename(tmp.c_str(), path_.c_str());
}

CampaignOptions
campaignOptions(const BenchArgs &args, std::string configFingerprint)
{
    CampaignOptions o;
    o.jobs = args.jobs;
    o.jobTimeoutSec = args.jobTimeoutSec;
    o.journalPath = args.journal;
    o.resume = args.resume;
    o.statusPath = args.statusFile;
    o.configFingerprint = std::move(configFingerprint);
    o.sentinel.enabled = args.sentinel;
    o.sentinel.sampleEvery =
        args.sentinelEvery > 0 ? args.sentinelEvery : 1;
    return o;
}

std::string
configHash(std::string_view canonical)
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (char c : canonical) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ull;
    }
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(h));
    return buf;
}

std::string
encodeDouble(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%a", v);
    return buf;
}

bool
decodeDouble(std::string_view text, double &out)
{
    if (text.empty())
        return false;
    const std::string s(text);
    char *end = nullptr;
    out = std::strtod(s.c_str(), &end);
    return end == s.c_str() + s.size();
}

namespace detail {

bool
sigintDrainRequested()
{
    return sigintDrain != 0;
}

void
resetSigintDrain()
{
    sigintDrain = 0;
}

GuardedOutcome
runGuardedJob(const CampaignOptions &options, guard::Sentinel *sentinel,
              std::size_t index,
              const std::function<void(guard::ExecMode)> &attempt)
{
    GuardedOutcome out;
    guard::ExecMode mode = guard::ExecMode::Superblock;
    if (sentinel != nullptr)
        mode = sentinel->modeFor(mode);

    auto runOnce = [&](guard::ExecMode m, std::string &error) {
        try {
            std::optional<sim::ScopedWatchdog> wd;
            if (options.jobTimeoutSec > 0)
                wd.emplace(options.jobTimeoutSec);
            guard::ModeScope ms(m);
            attempt(m);
            return true;
        } catch (const sim::WatchdogTimeout &e) {
            error = std::string("timed out: ") + e.what();
        } catch (const std::exception &e) {
            error = e.what();
        } catch (...) {
            error = "unknown exception";
        }
        return false;
    };

    // First run, plus at most one retry a rung down the ladder: a
    // transient wedge (runaway horizon, fast-path bug) often clears
    // in a slower mode, and per-op is the last word either way.
    for (unsigned tries = 0; tries < 2; ++tries) {
        ++out.attempts;
        std::string error;
        if (runOnce(mode, error)) {
            out.mode = mode;
            out.failed = false;
            break;
        }
        out.failed = true;
        std::ostringstream os;
        if (!out.error.empty())
            os << out.error << "; ";
        os << "attempt " << out.attempts << " ("
           << guard::modeName(mode) << "): " << error;
        out.error = os.str();
        const guard::ExecMode slower = guard::nextSlower(mode);
        if (slower == mode)
            break; // already per-op: nothing slower to try
        mode = slower;
    }
    if (out.failed)
        return out;

    if (sentinel == nullptr || !sentinel->shouldCheck(index, out.mode))
        return out;

    const auto probe = [&](guard::ExecMode m, std::uint64_t div) {
        std::optional<sim::ScopedWatchdog> wd;
        if (options.jobTimeoutSec > 0)
            wd.emplace(options.jobTimeoutSec);
        guard::ModeScope ms(m);
        guard::ProbeScope ps(div);
        attempt(m);
        return ps.fingerprint();
    };

    // Cross-check; on divergence walk down the ladder, re-running the
    // full job and re-checking, until a mode agrees with the oracle
    // (shouldCheck self-terminates the loop at per-op).
    guard::ExecMode m = out.mode;
    while (sentinel->check(index, m, probe)) {
        out.diverged = true;
        m = sentinel->modeFor(guard::nextSlower(m));
        ++out.attempts;
        std::string error;
        if (!runOnce(m, error)) {
            out.failed = true;
            std::ostringstream os;
            os << "quarantine re-run (" << guard::modeName(m)
               << "): " << error;
            out.error = os.str();
            return out;
        }
        out.mode = m;
    }
    return out;
}

} // namespace detail

CampaignResult
Campaign::run(std::size_t count, const JobFn &fn)
{
    CampaignResult result;
    result.jobs.resize(count);

    const std::string &config = options_.configFingerprint;
    std::map<std::size_t, JournalRecord> resumed;
    if (options_.resume && !options_.journalPath.empty()) {
        resumed = loadJournal(options_.journalPath, config);
        if (resumed.empty()) {
            warn("campaign resume: no matching records in '",
                 options_.journalPath, "' (config ", config,
                 "); running everything");
        }
    }

    std::optional<JournalWriter> journal;
    if (!options_.journalPath.empty())
        journal.emplace(options_.journalPath, config, count);

    guard::Sentinel sentinel(options_.sentinel);
    guard::Sentinel *guardPtr =
        options_.sentinel.enabled ? &sentinel : nullptr;

    StatusReporter status(options_.statusPath, count);

    SigintDrainScope drain(options_.drainOnSigint);

    ParallelRunner pool(options_.jobs);
    // Jobs report through their JobOutcome slot and never throw, so a
    // bad job can't cancel its siblings; the outcome vector keeps
    // submission order regardless of worker interleaving.
    std::vector<char> placeholder = pool.map(count, [&](std::size_t i) {
        JobOutcome &out = result.jobs[i];
        if (auto it = resumed.find(i); it != resumed.end()) {
            out.value = it->second.value;
            out.mode = it->second.mode;
            out.attempts = it->second.attempts;
            out.fromJournal = true;
            status.resumed();
            return '\0';
        }
        if (options_.drainOnSigint && detail::sigintDrainRequested()) {
            out.skipped = true;
            out.failed = true;
            out.error = "interrupted (SIGINT drain)";
            status.skipped();
            return '\0';
        }
        status.started();
        auto attempt = [&](guard::ExecMode) {
            std::string value = fn(i);
            if (guard::ProbeScope::active() == nullptr)
                out.value = std::move(value);
        };
        const detail::GuardedOutcome g =
            detail::runGuardedJob(options_, guardPtr, i, attempt);
        status.finished(g.mode, g.attempts, g.failed, g.diverged);
        out.mode = g.mode;
        out.attempts = g.attempts;
        out.failed = g.failed;
        out.error = g.error;
        if (g.failed)
            out.value.clear();
        else if (journal)
            journal->append(config, i, out);
        return '\0';
    });
    (void)placeholder;

    for (const JobOutcome &out : result.jobs) {
        if (out.fromJournal)
            ++result.resumedJobs;
        if (out.skipped)
            ++result.skippedJobs;
        if (out.failed)
            ++result.failedJobs;
    }
    result.interrupted =
        options_.drainOnSigint && detail::sigintDrainRequested();
    result.sentinelChecks = sentinel.checksRun();
    result.divergences = sentinel.reports();
    sentinel.writeReport();
    return result;
}

} // namespace limit::analysis
