/**
 * @file
 * Multi-level cache hierarchy implementing sim::MemoryIf.
 *
 * Geometry and latencies default to a 2011-era Xeon-class part
 * (per-core 32 KiB L1D and 256 KiB L2, shared 8 MiB LLC), matching
 * the testbed class the paper evaluated on. A tiny last-writer
 * directory adds cache-to-cache transfer cost for contended atomics,
 * which is what makes lock-acquisition cost scale with contention in
 * the synchronization case studies.
 */

#ifndef LIMIT_MEM_HIERARCHY_HH
#define LIMIT_MEM_HIERARCHY_HH

#include <memory>
#include <unordered_map>
#include <vector>

#include "mem/cache.hh"
#include "mem/tlb.hh"
#include "sim/memory_if.hh"

namespace limit::mem {

/** Hierarchy-wide configuration. */
struct HierarchyConfig
{
    CacheGeometry l1d{32 * 1024, 8, 64};
    CacheGeometry l2{256 * 1024, 8, 64};
    CacheGeometry llc{8 * 1024 * 1024, 16, 64};
    TlbGeometry dtlb{64, 4096};

    sim::Tick l1Latency = 4;
    sim::Tick l2Latency = 12;
    sim::Tick llcLatency = 38;
    sim::Tick memLatency = 220;
    sim::Tick tlbMissPenalty = 60;
    /** Extra cycles for a locked RMW on a locally owned line. */
    sim::Tick atomicLocalExtra = 16;
    /** Extra cycles when the line was last written by another core. */
    sim::Tick atomicRemoteExtra = 72;
    /**
     * Next-line prefetcher at L2: every demand L2 lookup preloads the
     * successor line into L2 (zero-latency model; fills count in the
     * prefetch statistic, not the demand-miss events).
     */
    bool nextLinePrefetch = false;
};

/** Private L1D/L2 per core, shared LLC, per-core DTLB. */
class CacheHierarchy : public sim::MemoryIf
{
  public:
    CacheHierarchy(unsigned num_cores, const HierarchyConfig &config);

    using sim::MemoryIf::access;

    sim::Tick access(sim::CoreId core, sim::Addr addr, bool write,
                     bool atomic, sim::EventDeltas &deltas) override;

    const HierarchyConfig &config() const { return config_; }
    Cache &l1d(sim::CoreId core);
    Cache &l2(sim::CoreId core);
    Cache &llc() { return *llc_; }
    Tlb &dtlb(sim::CoreId core);

    /** Drop all cached state (between experiment repetitions). */
    void flushAll();

    /** Lines preloaded by the next-line prefetcher so far. */
    std::uint64_t prefetchesIssued() const { return prefetches_; }

  private:
    HierarchyConfig config_;
    std::vector<std::unique_ptr<Cache>> l1d_;
    std::vector<std::unique_ptr<Cache>> l2_;
    std::unique_ptr<Cache> llc_;
    std::vector<std::unique_ptr<Tlb>> dtlb_;
    /** line -> last core to write it with a locked access. */
    std::unordered_map<std::uint64_t, sim::CoreId> lastAtomicWriter_;
    std::uint64_t prefetches_ = 0;
};

} // namespace limit::mem

#endif // LIMIT_MEM_HIERARCHY_HH
