/**
 * @file
 * Multi-level cache hierarchy implementing sim::MemoryIf.
 *
 * Geometry and latencies default to a 2011-era Xeon-class part
 * (per-core 32 KiB L1D and 256 KiB L2, shared 8 MiB LLC), matching
 * the testbed class the paper evaluated on. A tiny last-writer
 * directory adds cache-to-cache transfer cost for contended atomics,
 * which is what makes lock-acquisition cost scale with contention in
 * the synchronization case studies.
 */

#ifndef LIMIT_MEM_HIERARCHY_HH
#define LIMIT_MEM_HIERARCHY_HH

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "mem/cache.hh"
#include "mem/tlb.hh"
#include "sim/memory_if.hh"

namespace limit::mem {

/** Hierarchy-wide configuration. */
struct HierarchyConfig
{
    CacheGeometry l1d{32 * 1024, 8, 64};
    CacheGeometry l2{256 * 1024, 8, 64};
    CacheGeometry llc{8 * 1024 * 1024, 16, 64};
    TlbGeometry dtlb{64, 4096};

    sim::Tick l1Latency = 4;
    sim::Tick l2Latency = 12;
    sim::Tick llcLatency = 38;
    sim::Tick memLatency = 220;
    sim::Tick tlbMissPenalty = 60;
    /** Extra cycles for a locked RMW on a locally owned line. */
    sim::Tick atomicLocalExtra = 16;
    /** Extra cycles when the line was last written by another core. */
    sim::Tick atomicRemoteExtra = 72;
    /**
     * Next-line prefetcher at L2: every demand L2 lookup preloads the
     * successor line into L2 (zero-latency model; fills count in the
     * prefetch statistic, not the demand-miss events).
     */
    bool nextLinePrefetch = false;
};

/**
 * Named enumeration of every HierarchyConfig knob, in declaration
 * order: ("l1d_size_bytes", 32768), ("l1_latency", 4), ... Report
 * writers stamp this into experiment metadata so a result always
 * carries the exact machine it was measured on, and the sensitivity
 * engine uses it to label the base point of a parameter lattice.
 */
std::vector<std::pair<const char *, std::uint64_t>>
configFields(const HierarchyConfig &config);

/** Private L1D/L2 per core, shared LLC, per-core DTLB. */
class CacheHierarchy : public sim::MemoryIf
{
  public:
    CacheHierarchy(unsigned num_cores, const HierarchyConfig &config);

    using sim::MemoryIf::access;

    sim::Tick access(sim::CoreId core, sim::Addr addr, bool write,
                     bool atomic, sim::EventDeltas &deltas) override;

    /**
     * All-hit fast path: same-page DTLB repeat plus MRU-way L1D hit,
     * the overwhelmingly common case for streaming access patterns.
     * Probes are pure until both are known to hit, then the hit
     * counters / TLB recency are credited exactly as access() would —
     * so hit/miss statistics and replacement state stay bit-identical
     * whichever path an access takes.
     * @return l1Latency on a fast hit, 0 to make the caller fall back
     *         to access() (also declines on out-of-range core ids so
     *         access() can raise the proper panic).
     */
    sim::Tick
    tryFastAccess(sim::CoreId core, sim::Addr addr, bool write) override
    {
        (void)write;
        if (core >= hot_.size())
            return 0;
        const HotPath &h = hot_[core];
        if (!h.tlb->peekLastPage(addr) || !h.l1->peekMru(addr))
            return 0;
        h.tlb->creditLastPageHit();
        h.l1->creditMruHit();
        return config_.l1Latency;
    }

    /**
     * The exact tryFastAccess hit predicate, exported field by field:
     * same-page TLB repeat AND MRU-way L1 hit at l1Latency. Write vs.
     * read makes no difference on this path, mirroring tryFastAccess.
     */
    sim::FastPeekView
    fastPeekView(sim::CoreId core) override
    {
        sim::FastPeekView v;
        if (core >= hot_.size() || config_.l1Latency == 0)
            return v;
        const HotPath &h = hot_[core];
        v.latency = config_.l1Latency;
        v.lastPage = h.tlb->lastPagePtr();
        v.pageShift = h.tlb->pageShiftBits();
        v.mruTags = h.l1->tagArrayPtr();
        v.lineShift = h.l1->lineShiftBits();
        v.setMask = h.l1->setIndexMask();
        v.ways = h.l1->ways();
        return v;
    }

    void
    creditFastAccesses(sim::CoreId core, std::uint64_t n) override
    {
        const HotPath &h = hot_[core];
        h.tlb->creditLastPageHits(n);
        h.l1->creditMruHits(n);
    }

    const HierarchyConfig &config() const { return config_; }
    Cache &l1d(sim::CoreId core);
    Cache &l2(sim::CoreId core);
    Cache &llc() { return *llc_; }
    Tlb &dtlb(sim::CoreId core);

    /** Drop all cached state (between experiment repetitions). */
    void flushAll();

    /** Lines preloaded by the next-line prefetcher so far. */
    std::uint64_t prefetchesIssued() const { return prefetches_; }

  private:
    /** Raw per-core pointers for the fast path: one indexed load
     *  instead of two unique_ptr dereference chains per probe. */
    struct HotPath
    {
        Tlb *tlb;
        Cache *l1;
    };

    HierarchyConfig config_;
    std::vector<HotPath> hot_;
    std::vector<std::unique_ptr<Cache>> l1d_;
    std::vector<std::unique_ptr<Cache>> l2_;
    std::unique_ptr<Cache> llc_;
    std::vector<std::unique_ptr<Tlb>> dtlb_;
    /** line -> last core to write it with a locked access. */
    std::unordered_map<std::uint64_t, sim::CoreId> lastAtomicWriter_;
    std::uint64_t prefetches_ = 0;
};

} // namespace limit::mem

#endif // LIMIT_MEM_HIERARCHY_HH
