/**
 * @file
 * A single set-associative cache (or TLB) array with LRU replacement.
 */

#ifndef LIMIT_MEM_CACHE_HH
#define LIMIT_MEM_CACHE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace limit::mem {

/** Geometry of one cache level. */
struct CacheGeometry
{
    std::uint64_t sizeBytes = 32 * 1024;
    unsigned ways = 8;
    unsigned lineBytes = 64;
};

/**
 * Tag array with true-LRU replacement.
 *
 * Tracks hit/miss counts; data is not stored (the simulator keeps
 * guest values in host objects), only presence.
 */
class Cache
{
  public:
    Cache(std::string name, const CacheGeometry &geometry);

    const std::string &name() const { return name_; }
    unsigned numSets() const { return numSets_; }
    unsigned ways() const { return geometry_.ways; }
    unsigned lineBytes() const { return geometry_.lineBytes; }

    /**
     * Probe for `addr`; on hit, refresh LRU state. Inline: runs up to
     * three times (L1/L2/LLC) per guest memory op.
     * @return true on hit.
     */
    bool
    access(sim::Addr addr)
    {
        const std::uint64_t line = lineOf(addr);
        const unsigned set = setOf(line);
        auto *base =
            &lines_[static_cast<std::size_t>(set) * geometry_.ways];
        // MRU way first: repeated touches to the hot line need no LRU
        // shuffle at all, and this is the overwhelmingly common case.
        if (base[0] == line) {
            ++hits_;
            return true;
        }
        for (unsigned i = 1; i < geometry_.ways; ++i) {
            if (base[i] == line) {
                // Move to MRU position.
                for (unsigned j = i; j > 0; --j)
                    base[j] = base[j - 1];
                base[0] = line;
                ++hits_;
                return true;
            }
        }
        ++misses_;
        return false;
    }

    /**
     * Install the line containing `addr` (after a miss), evicting the
     * LRU way when the set is full.
     */
    void
    fill(sim::Addr addr)
    {
        const std::uint64_t line = lineOf(addr);
        const unsigned set = setOf(line);
        auto *base =
            &lines_[static_cast<std::size_t>(set) * geometry_.ways];
        // Shift everything down one way; LRU falls off the end.
        for (unsigned j = geometry_.ways - 1; j > 0; --j)
            base[j] = base[j - 1];
        base[0] = line;
    }

    /**
     * Pure probe: true iff `addr` sits in the MRU way of its set — the
     * case where access() would hit without any LRU shuffle. Commits
     * nothing; pair with creditMruHit() once the overall fast path is
     * known to apply (see CacheHierarchy::tryFastAccess).
     */
    bool
    peekMru(sim::Addr addr) const
    {
        const std::uint64_t line = lineOf(addr);
        return lines_[static_cast<std::size_t>(setOf(line)) *
                      geometry_.ways] == line;
    }

    /** Commit the hit a successful peekMru() promised: identical
     *  state transition to access() hitting the MRU way. */
    void creditMruHit() { ++hits_; }

    /** Bulk form of creditMruHit() for superblock replay commits:
     *  an MRU hit touches nothing but the hit counter. */
    void creditMruHits(std::uint64_t n) { hits_ += n; }

    /** @name Raw probe state exposed via sim::FastPeekView @{ */
    const std::uint64_t *tagArrayPtr() const { return lines_.data(); }
    unsigned lineShiftBits() const { return lineShift_; }
    std::uint64_t setIndexMask() const { return numSets_ - 1; }
    /** @} */

    /** Probe without changing replacement state (tests/inspection). */
    bool contains(sim::Addr addr) const;

    /** Drop every line. */
    void flush();

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }

  private:
    std::uint64_t lineOf(sim::Addr addr) const
    {
        return addr >> lineShift_;
    }

    unsigned setOf(std::uint64_t line) const
    {
        return static_cast<unsigned>(line & (numSets_ - 1));
    }

    std::string name_;
    CacheGeometry geometry_;
    unsigned numSets_;
    /** log2(lineBytes): line extraction is a shift, not a division. */
    unsigned lineShift_;
    /**
     * ways_[set * ways + i] holds line numbers in LRU order (index 0
     * is most recent); emptyLine marks an invalid way.
     */
    std::vector<std::uint64_t> lines_;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;

    static constexpr std::uint64_t emptyLine = ~0ull;
};

} // namespace limit::mem

#endif // LIMIT_MEM_CACHE_HH
