#include "mem/hierarchy.hh"

#include "base/logging.hh"

namespace limit::mem {

CacheHierarchy::CacheHierarchy(unsigned num_cores,
                               const HierarchyConfig &config)
    : config_(config)
{
    fatal_if(num_cores == 0, "hierarchy needs at least one core");
    for (unsigned i = 0; i < num_cores; ++i) {
        l1d_.push_back(std::make_unique<Cache>(
            "l1d" + std::to_string(i), config.l1d));
        l2_.push_back(std::make_unique<Cache>(
            "l2." + std::to_string(i), config.l2));
        dtlb_.push_back(std::make_unique<Tlb>(config.dtlb));
    }
    llc_ = std::make_unique<Cache>("llc", config.llc);
    for (unsigned i = 0; i < num_cores; ++i)
        hot_.push_back({dtlb_[i].get(), l1d_[i].get()});
}

Cache &
CacheHierarchy::l1d(sim::CoreId core)
{
    panic_if(core >= l1d_.size(), "bad core id ", core);
    return *l1d_[core];
}

Cache &
CacheHierarchy::l2(sim::CoreId core)
{
    panic_if(core >= l2_.size(), "bad core id ", core);
    return *l2_[core];
}

Tlb &
CacheHierarchy::dtlb(sim::CoreId core)
{
    panic_if(core >= dtlb_.size(), "bad core id ", core);
    return *dtlb_[core];
}

sim::Tick
CacheHierarchy::access(sim::CoreId core, sim::Addr addr, bool write,
                       bool atomic, sim::EventDeltas &deltas)
{
    panic_if(core >= l1d_.size(), "bad core id ", core);
    sim::Tick latency = 0;

    // Address translation first.
    Tlb &tlb = *dtlb_[core];
    if (!tlb.access(addr)) {
        tlb.fill(addr);
        latency += config_.tlbMissPenalty;
        deltas[sim::EventType::DTlbMiss] += 1;
    }

    // Data lookup: L1 -> L2 -> LLC -> memory; fill on the way back.
    if (l1d_[core]->access(addr)) {
        latency += config_.l1Latency;
    } else {
        deltas[sim::EventType::L1DMiss] += 1;
        if (l2_[core]->access(addr)) {
            latency += config_.l2Latency;
        } else {
            deltas[sim::EventType::L2Miss] += 1;
            if (llc_->access(addr)) {
                latency += config_.llcLatency;
            } else {
                deltas[sim::EventType::LLCMiss] += 1;
                latency += config_.memLatency;
                llc_->fill(addr);
            }
            l2_[core]->fill(addr);
        }
        l1d_[core]->fill(addr);

        if (config_.nextLinePrefetch) {
            const sim::Addr next = addr + config_.l2.lineBytes;
            if (!l2_[core]->contains(next)) {
                if (!llc_->contains(next))
                    llc_->fill(next);
                l2_[core]->fill(next);
                ++prefetches_;
            }
        }
    }

    if (atomic) {
        const std::uint64_t line = addr / config_.l1d.lineBytes;
        auto it = lastAtomicWriter_.find(line);
        const bool remote =
            it != lastAtomicWriter_.end() && it->second != core;
        latency += remote ? config_.atomicRemoteExtra
                          : config_.atomicLocalExtra;
        if (write)
            lastAtomicWriter_[line] = core;
    }

    (void)write;
    return latency;
}

void
CacheHierarchy::flushAll()
{
    for (auto &c : l1d_)
        c->flush();
    for (auto &c : l2_)
        c->flush();
    llc_->flush();
    for (auto &t : dtlb_)
        t->flush();
    lastAtomicWriter_.clear();
}

std::vector<std::pair<const char *, std::uint64_t>>
configFields(const HierarchyConfig &config)
{
    return {
        {"l1d_size_bytes", config.l1d.sizeBytes},
        {"l1d_ways", config.l1d.ways},
        {"l1d_line_bytes", config.l1d.lineBytes},
        {"l2_size_bytes", config.l2.sizeBytes},
        {"l2_ways", config.l2.ways},
        {"l2_line_bytes", config.l2.lineBytes},
        {"llc_size_bytes", config.llc.sizeBytes},
        {"llc_ways", config.llc.ways},
        {"llc_line_bytes", config.llc.lineBytes},
        {"dtlb_entries", config.dtlb.entries},
        {"dtlb_page_bytes", config.dtlb.pageBytes},
        {"l1_latency", config.l1Latency},
        {"l2_latency", config.l2Latency},
        {"llc_latency", config.llcLatency},
        {"mem_latency", config.memLatency},
        {"tlb_miss_penalty", config.tlbMissPenalty},
        {"atomic_local_extra", config.atomicLocalExtra},
        {"atomic_remote_extra", config.atomicRemoteExtra},
        {"next_line_prefetch", config.nextLinePrefetch ? 1u : 0u},
    };
}

} // namespace limit::mem
