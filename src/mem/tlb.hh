/**
 * @file
 * Fully associative data TLB model.
 */

#ifndef LIMIT_MEM_TLB_HH
#define LIMIT_MEM_TLB_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "sim/types.hh"

namespace limit::mem {

/** TLB shape. */
struct TlbGeometry
{
    unsigned entries = 64;
    unsigned pageBytes = 4096;
};

/**
 * Fully associative, true-LRU TLB.
 *
 * Recency is tracked with a monotonic stamp per slot instead of a
 * linked LRU list: a hit is one hash lookup plus a stamp store, and
 * the O(entries) least-recently-used scan is paid only on refills.
 * A one-entry most-recent-page filter short-circuits the hash lookup
 * on same-page runs (the common case for streaming accesses). Both
 * are pure representation changes: the hit/miss/eviction sequence is
 * identical to the linked-list implementation.
 */
class Tlb
{
  public:
    explicit Tlb(const TlbGeometry &geometry);

    /** Probe (and on hit refresh) the page containing `addr`. Inline:
     *  runs once per guest memory op. */
    bool
    access(sim::Addr addr)
    {
        const std::uint64_t page = pageOf(addr);
        if (page == lastPage_) {
            slots_[lastSlot_].stamp = ++clock_;
            ++hits_;
            return true;
        }
        auto it = where_.find(page);
        if (it == where_.end()) {
            ++misses_;
            return false;
        }
        slots_[it->second].stamp = ++clock_;
        lastPage_ = page;
        lastSlot_ = it->second;
        ++hits_;
        return true;
    }

    /**
     * Pure probe: true iff `addr` is a same-page repeat that access()
     * would hit via the most-recent-page filter. Commits nothing;
     * pair with creditLastPageHit() once the overall fast path is
     * known to apply (see CacheHierarchy::tryFastAccess).
     */
    bool
    peekLastPage(sim::Addr addr) const
    {
        return pageOf(addr) == lastPage_;
    }

    /** Commit the hit a successful peekLastPage() promised: identical
     *  state transition to access()'s most-recent-page branch. */
    void
    creditLastPageHit()
    {
        slots_[lastSlot_].stamp = ++clock_;
        ++hits_;
    }

    /**
     * Bulk form of creditLastPageHit() for superblock replay commits:
     * identical final state to `n` successive credits — the recency
     * clock advances n times and the hot slot's stamp lands on the
     * final clock value (the intermediate stamp stores are overwrites
     * of the same slot, so skipping them is unobservable).
     */
    void
    creditLastPageHits(std::uint64_t n)
    {
        clock_ += n;
        slots_[lastSlot_].stamp = clock_;
        hits_ += n;
    }

    /** @name Raw probe state exposed via sim::FastPeekView @{ */
    const std::uint64_t *lastPagePtr() const { return &lastPage_; }
    unsigned pageShiftBits() const { return pageShift_; }
    /** @} */

    /** Install the page containing `addr`, evicting LRU if needed. */
    void fill(sim::Addr addr);

    void flush();

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }
    unsigned pageBytes() const { return geometry_.pageBytes; }

  private:
    std::uint64_t pageOf(sim::Addr addr) const
    {
        return addr >> pageShift_;
    }

    static constexpr std::uint64_t noPage = ~0ull;

    struct Slot
    {
        std::uint64_t page;
        std::uint64_t stamp;
    };

    TlbGeometry geometry_;
    unsigned pageShift_;
    std::vector<Slot> slots_;
    std::unordered_map<std::uint64_t, unsigned> where_;
    std::uint64_t clock_ = 0;
    /** Most-recently-touched page and its slot (noPage = invalid). */
    std::uint64_t lastPage_ = noPage;
    unsigned lastSlot_ = 0;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
};

} // namespace limit::mem

#endif // LIMIT_MEM_TLB_HH
