/**
 * @file
 * Fully associative data TLB model.
 */

#ifndef LIMIT_MEM_TLB_HH
#define LIMIT_MEM_TLB_HH

#include <cstdint>
#include <list>
#include <unordered_map>

#include "sim/types.hh"

namespace limit::mem {

/** TLB shape. */
struct TlbGeometry
{
    unsigned entries = 64;
    unsigned pageBytes = 4096;
};

/** Fully associative, true-LRU TLB. */
class Tlb
{
  public:
    explicit Tlb(const TlbGeometry &geometry);

    /** Probe (and on hit refresh) the page containing `addr`. */
    bool access(sim::Addr addr);

    /** Install the page containing `addr`, evicting LRU if needed. */
    void fill(sim::Addr addr);

    void flush();

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }
    unsigned pageBytes() const { return geometry_.pageBytes; }

  private:
    std::uint64_t pageOf(sim::Addr addr) const
    {
        return addr / geometry_.pageBytes;
    }

    TlbGeometry geometry_;
    /** LRU list front = MRU; map page -> list node. */
    std::list<std::uint64_t> lru_;
    std::unordered_map<std::uint64_t, std::list<std::uint64_t>::iterator>
        where_;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
};

} // namespace limit::mem

#endif // LIMIT_MEM_TLB_HH
