/**
 * @file
 * Synthetic address-stream generators for workload memory behaviour.
 *
 * Workloads hold real host data structures; what the cache model sees
 * are these generated virtual addresses, which control working-set
 * size and locality. An AddressSpace hands out disjoint regions so
 * different structures/threads do not alias by accident.
 */

#ifndef LIMIT_MEM_ADDRESS_STREAM_HH
#define LIMIT_MEM_ADDRESS_STREAM_HH

#include <cstdint>

#include "base/rng.hh"
#include "sim/types.hh"

namespace limit::mem {

/** Bump allocator of disjoint virtual address regions. */
class AddressSpace
{
  public:
    /** Regions start above the zero page to keep addr 0 invalid. */
    explicit AddressSpace(sim::Addr base = 0x10000) : next_(base) {}

    /** Reserve `bytes`, aligned to `align` (power of two). */
    sim::Addr allocate(std::uint64_t bytes, std::uint64_t align = 64);

  private:
    sim::Addr next_;
};

/** A contiguous region of guest address space. */
struct Region
{
    sim::Addr base = 0;
    std::uint64_t bytes = 0;

    bool
    contains(sim::Addr a) const
    {
        return a >= base && a < base + bytes;
    }
};

/** Uniformly random word addresses within a region. */
class UniformStream
{
  public:
    UniformStream(Region region, Rng rng)
        : region_(region), rng_(rng)
    {}

    sim::Addr
    next()
    {
        return region_.base + (rng_.below(region_.bytes / 8) * 8);
    }

    const Region &region() const { return region_; }

  private:
    Region region_;
    Rng rng_;
};

/** Sequential walk with configurable stride, wrapping at the end. */
class StrideStream
{
  public:
    StrideStream(Region region, std::uint64_t stride_bytes = 64)
        : region_(region), stride_(stride_bytes)
    {}

    sim::Addr
    next()
    {
        const sim::Addr a = region_.base + offset_;
        offset_ += stride_;
        if (offset_ >= region_.bytes)
            offset_ = 0;
        return a;
    }

    void reset() { offset_ = 0; }

  private:
    Region region_;
    std::uint64_t stride_;
    std::uint64_t offset_ = 0;
};

/**
 * Zipf-skewed line addresses: a few lines are hot, the tail is cold.
 * Models index/root-node reuse in the OLTP workload.
 */
class ZipfStream
{
  public:
    ZipfStream(Region region, double skew, Rng rng)
        : region_(region), skew_(skew), rng_(rng)
    {}

    sim::Addr
    next()
    {
        const std::uint64_t lines = region_.bytes / 64;
        const std::uint64_t line = rng_.zipf(lines, skew_);
        // Scatter ranks across the region so hot lines do not all
        // land in the same cache sets.
        const std::uint64_t scattered =
            (line * 0x9e3779b97f4a7c15ull) % lines;
        return region_.base + scattered * 64;
    }

  private:
    Region region_;
    double skew_;
    Rng rng_;
};

/**
 * Dependent pointer chase over a pseudo-random permutation of the
 * region's lines (Weyl-sequence step, which is a bijection for odd
 * steps). Defeats any prefetch-like locality: consecutive addresses
 * share nothing.
 */
class PointerChaseStream
{
  public:
    PointerChaseStream(Region region, Rng rng)
        : region_(region)
    {
        const std::uint64_t lines = region_.bytes / 64;
        step_ = (rng.below(lines) * 2 + 1) % lines; // odd => bijection
        if (step_ == 0)
            step_ = 1;
        pos_ = rng.below(lines);
    }

    sim::Addr
    next()
    {
        const std::uint64_t lines = region_.bytes / 64;
        pos_ = (pos_ + step_) % lines;
        return region_.base + pos_ * 64;
    }

  private:
    Region region_;
    std::uint64_t step_ = 1;
    std::uint64_t pos_ = 0;
};

} // namespace limit::mem

#endif // LIMIT_MEM_ADDRESS_STREAM_HH
