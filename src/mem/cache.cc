#include "mem/cache.hh"

#include <bit>

#include "base/logging.hh"

namespace limit::mem {

Cache::Cache(std::string name, const CacheGeometry &geometry)
    : name_(std::move(name)), geometry_(geometry)
{
    fatal_if(geometry.lineBytes == 0 ||
                 !std::has_single_bit(
                     static_cast<std::uint64_t>(geometry.lineBytes)),
             "cache '", name_, "': line size must be a power of two");
    fatal_if(geometry.ways == 0, "cache '", name_, "': zero ways");
    const std::uint64_t lines = geometry.sizeBytes / geometry.lineBytes;
    fatal_if(lines == 0 || lines % geometry.ways != 0,
             "cache '", name_, "': size/ways/line geometry inconsistent");
    numSets_ = static_cast<unsigned>(lines / geometry.ways);
    fatal_if(!std::has_single_bit(static_cast<std::uint64_t>(numSets_)),
             "cache '", name_, "': set count must be a power of two");
    lineShift_ = static_cast<unsigned>(std::countr_zero(
        static_cast<std::uint64_t>(geometry.lineBytes)));
    lines_.assign(static_cast<std::size_t>(numSets_) * geometry.ways,
                  emptyLine);
}

bool
Cache::contains(sim::Addr addr) const
{
    const std::uint64_t line = lineOf(addr);
    const unsigned set = setOf(line);
    const auto *base =
        &lines_[static_cast<std::size_t>(set) * geometry_.ways];
    for (unsigned i = 0; i < geometry_.ways; ++i) {
        if (base[i] == line)
            return true;
    }
    return false;
}

void
Cache::flush()
{
    std::fill(lines_.begin(), lines_.end(), emptyLine);
}

} // namespace limit::mem
