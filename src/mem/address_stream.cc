#include "mem/address_stream.hh"

#include "base/logging.hh"

namespace limit::mem {

sim::Addr
AddressSpace::allocate(std::uint64_t bytes, std::uint64_t align)
{
    fatal_if(bytes == 0, "allocating an empty region");
    fatal_if(align == 0 || (align & (align - 1)) != 0,
             "alignment must be a power of two");
    next_ = (next_ + align - 1) & ~(align - 1);
    const sim::Addr base = next_;
    next_ += bytes;
    return base;
}

} // namespace limit::mem
