#include "mem/tlb.hh"

#include <bit>

#include "base/logging.hh"

namespace limit::mem {

Tlb::Tlb(const TlbGeometry &geometry) : geometry_(geometry)
{
    fatal_if(geometry.entries == 0, "TLB with zero entries");
    fatal_if(geometry.pageBytes == 0 ||
                 !std::has_single_bit(
                     static_cast<std::uint64_t>(geometry.pageBytes)),
             "TLB page size must be a power of two");
}

bool
Tlb::access(sim::Addr addr)
{
    const std::uint64_t page = pageOf(addr);
    auto it = where_.find(page);
    if (it == where_.end()) {
        ++misses_;
        return false;
    }
    lru_.splice(lru_.begin(), lru_, it->second);
    ++hits_;
    return true;
}

void
Tlb::fill(sim::Addr addr)
{
    const std::uint64_t page = pageOf(addr);
    if (where_.contains(page))
        return;
    if (lru_.size() >= geometry_.entries) {
        where_.erase(lru_.back());
        lru_.pop_back();
    }
    lru_.push_front(page);
    where_[page] = lru_.begin();
}

void
Tlb::flush()
{
    lru_.clear();
    where_.clear();
}

} // namespace limit::mem
