#include "mem/tlb.hh"

#include <bit>

#include "base/logging.hh"

namespace limit::mem {

Tlb::Tlb(const TlbGeometry &geometry) : geometry_(geometry)
{
    fatal_if(geometry.entries == 0, "TLB with zero entries");
    fatal_if(geometry.pageBytes == 0 ||
                 !std::has_single_bit(
                     static_cast<std::uint64_t>(geometry.pageBytes)),
             "TLB page size must be a power of two");
    pageShift_ = static_cast<unsigned>(std::countr_zero(
        static_cast<std::uint64_t>(geometry.pageBytes)));
    slots_.reserve(geometry.entries);
    where_.reserve(geometry.entries);
}

void
Tlb::fill(sim::Addr addr)
{
    const std::uint64_t page = pageOf(addr);
    if (where_.contains(page))
        return;
    unsigned slot;
    if (slots_.size() < geometry_.entries) {
        slot = static_cast<unsigned>(slots_.size());
        slots_.push_back({page, 0});
    } else {
        // Evict the least recently used slot (minimum stamp).
        slot = 0;
        for (unsigned i = 1; i < slots_.size(); ++i) {
            if (slots_[i].stamp < slots_[slot].stamp)
                slot = i;
        }
        if (slots_[slot].page == lastPage_)
            lastPage_ = noPage;
        where_.erase(slots_[slot].page);
        slots_[slot].page = page;
    }
    slots_[slot].stamp = ++clock_;
    where_[page] = slot;
}

void
Tlb::flush()
{
    slots_.clear();
    where_.clear();
    lastPage_ = noPage;
    clock_ = 0;
}

} // namespace limit::mem
