#include "guard/fingerprint.hh"

#include "os/kernel.hh"
#include "os/thread.hh"
#include "sim/cpu.hh"
#include "sim/ledger.hh"
#include "sim/machine.hh"
#include "sim/pmu.hh"

namespace limit::guard {

void
foldRun(Fingerprint &fp, os::Kernel &kernel, sim::Machine &machine,
        sim::Tick endTick)
{
    ++fp.runs;
    fp.mix(endTick);
    if (endTick > fp.endTick)
        fp.endTick = endTick;

    const std::uint64_t cs = kernel.totalContextSwitches();
    fp.mix(cs);
    fp.contextSwitches += cs;

    // Thread-major, mode-major, event-ordered ledgers: the exact
    // ground truth every execution mode must reproduce bit-for-bit.
    const unsigned threads = kernel.numThreads();
    fp.mix(threads);
    for (unsigned t = 0; t < threads; ++t) {
        const sim::EventLedger &ledger = kernel.thread(t).ctx.ledger();
        for (sim::PrivMode m : {sim::PrivMode::User, sim::PrivMode::Kernel}) {
            for (unsigned e = 0; e < sim::numEventTypes; ++e) {
                const std::uint64_t v =
                    ledger.count(static_cast<sim::EventType>(e), m);
                fp.mix(v);
                if (static_cast<sim::EventType>(e) ==
                    sim::EventType::Instructions)
                    fp.instructions += v;
            }
        }
    }

    // Core-major final PMU values — catches save/restore and
    // accumulation bugs the ledgers alone would miss.
    const unsigned cores = machine.numCores();
    fp.mix(cores);
    for (unsigned c = 0; c < cores; ++c) {
        const sim::Pmu &pmu = machine.cpu(c).pmu();
        for (unsigned k = 0; k < pmu.numCounters(); ++k)
            fp.mix(pmu.read(k));
    }
}

} // namespace limit::guard
