#include "guard/sentinel.hh"

#include <cstdio>
#include <ctime>
#include <sstream>

#include "base/logging.hh"

namespace limit::guard {

namespace {

std::uint64_t
threadCpuNs()
{
    timespec ts{};
    clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
    return static_cast<std::uint64_t>(ts.tv_sec) * 1'000'000'000ull +
           static_cast<std::uint64_t>(ts.tv_nsec);
}

thread_local ProbeScope *activeProbe = nullptr;

/** Bisection divisor ceiling; window() clamps to ≥ 1 tick anyway. */
constexpr std::uint64_t maxBisectDiv = 1ull << 40;

void
jsonFingerprint(std::ostringstream &os, const Fingerprint &fp)
{
    os << "{\"hash\":\"0x" << std::hex << fp.hash << std::dec
       << "\",\"end_tick\":" << fp.endTick
       << ",\"instructions\":" << fp.instructions
       << ",\"context_switches\":" << fp.contextSwitches
       << ",\"runs\":" << fp.runs << "}";
}

} // namespace

std::string_view
modeName(ExecMode m)
{
    switch (m) {
      case ExecMode::Superblock:
        return "superblock";
      case ExecMode::Batched:
        return "batched";
      case ExecMode::PerOp:
        return "per-op";
    }
    return "?";
}

bool
parseMode(std::string_view text, ExecMode &out)
{
    for (ExecMode m :
         {ExecMode::Superblock, ExecMode::Batched, ExecMode::PerOp}) {
        if (text == modeName(m)) {
            out = m;
            return true;
        }
    }
    return false;
}

ExecMode
effectiveMode(ExecMode requested)
{
    const bool batchedOk = sim::batchedExecutionDefault() &&
                           sim::ScopedExecutionClamp::batchedAllowed();
    const bool sbOk = batchedOk && sim::superblockExecutionDefault() &&
                      sim::ScopedExecutionClamp::superblocksAllowed();
    if (!batchedOk)
        return ExecMode::PerOp;
    if (requested == ExecMode::Superblock && !sbOk)
        return ExecMode::Batched;
    return requested;
}

ProbeScope::ProbeScope(std::uint64_t windowDiv)
    : windowDiv_(windowDiv > 0 ? windowDiv : 1), prev_(activeProbe)
{
    activeProbe = this;
}

ProbeScope::~ProbeScope()
{
    activeProbe = prev_;
}

ProbeScope *
ProbeScope::active()
{
    return activeProbe;
}

bool
Sentinel::check(std::size_t job, ExecMode mode, const Probe &probe)
{
    if (!shouldCheck(job, mode))
        return false;
    checks_.fetch_add(1);

    const std::uint64_t t0 = threadCpuNs();
    bool diverged = false;
    DivergenceReport report;
    try {
        const std::uint64_t div =
            options_.windowDiv > 0 ? options_.windowDiv : 1;
        const Fingerprint fast = probe(mode, div);
        const Fingerprint ref = probe(ExecMode::PerOp, div);
        if (fast != ref) {
            diverged = true;
            report.job = job;
            report.fast = mode;
            report.windowDiv = div;
            report.divergentDiv = div;
            report.fastFp = fast;
            report.referenceFp = ref;
            report.trail.push_back({div, false});
            // Bisect: doubling the divisor halves the window. The
            // narrowest still-diverging window brackets where the
            // fast path first went wrong; each probe costs half the
            // previous one, so the whole trail is about one more
            // windowDiv-sized probe pair.
            std::uint64_t d = div;
            for (unsigned step = 0; step < options_.maxBisectSteps;
                 ++step) {
                if (d > maxBisectDiv / 2)
                    break;
                d *= 2;
                const Fingerprint f2 = probe(mode, d);
                const Fingerprint r2 = probe(ExecMode::PerOp, d);
                const bool matched = f2 == r2;
                report.trail.push_back({d, matched});
                if (matched) {
                    report.cleanDiv = d;
                    break;
                }
                report.divergentDiv = d;
            }
        }
    } catch (const std::exception &e) {
        probeErrors_.fetch_add(1);
        warn("sentinel: probe for job ", job, " failed (", e.what(),
             "); check voided");
        probeNs_.fetch_add(threadCpuNs() - t0);
        return false;
    }
    probeNs_.fetch_add(threadCpuNs() - t0);

    if (!diverged)
        return false;

    // Quarantine: all later jobs run at least one rung slower. The
    // floor only ever descends the ladder (monotone max).
    const auto slower = static_cast<std::uint8_t>(nextSlower(mode));
    std::uint8_t cur = floor_.load();
    while (cur < slower && !floor_.compare_exchange_weak(cur, slower)) {
    }
    report.quarantined = static_cast<ExecMode>(floor_.load());
    divergences_.fetch_add(1);
    warn("sentinel: job ", job, " diverged in ", modeName(mode),
         " mode (fast 0x", std::hex, report.fastFp.hash,
         " vs reference 0x", report.referenceFp.hash, std::dec,
         "); quarantining to ", modeName(report.quarantined));
    {
        std::lock_guard<std::mutex> lock(mutex_);
        reports_.push_back(std::move(report));
    }
    return true;
}

std::vector<DivergenceReport>
Sentinel::reports() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return reports_;
}

double
Sentinel::probeSeconds() const
{
    return static_cast<double>(probeNs_.load()) * 1e-9;
}

std::string
Sentinel::reportJson() const
{
    std::ostringstream os;
    os << "{\n  \"schema\": \"limitpp-divergence-v1\",\n"
       << "  \"checks\": " << checks_.load() << ",\n"
       << "  \"probe_errors\": " << probeErrors_.load() << ",\n"
       << "  \"window_div\": " << options_.windowDiv << ",\n"
       << "  \"sample_every\": " << options_.sampleEvery << ",\n"
       << "  \"divergences\": [";
    const std::vector<DivergenceReport> reports = this->reports();
    for (std::size_t i = 0; i < reports.size(); ++i) {
        const DivergenceReport &r = reports[i];
        os << (i == 0 ? "\n" : ",\n");
        os << "    {\"job\": " << r.job << ", \"fast\": \""
           << modeName(r.fast) << "\", \"quarantined\": \""
           << modeName(r.quarantined)
           << "\", \"window_div\": " << r.windowDiv
           << ", \"divergent_div\": " << r.divergentDiv
           << ", \"clean_div\": " << r.cleanDiv << ",\n     \"fast_fp\": ";
        jsonFingerprint(os, r.fastFp);
        os << ",\n     \"reference_fp\": ";
        jsonFingerprint(os, r.referenceFp);
        os << ",\n     \"trail\": [";
        for (std::size_t j = 0; j < r.trail.size(); ++j) {
            os << (j == 0 ? "" : ", ") << "{\"div\": " << r.trail[j].div
               << ", \"matched\": "
               << (r.trail[j].matched ? "true" : "false") << "}";
        }
        os << "]}";
    }
    os << (reports.empty() ? "]" : "\n  ]") << "\n}\n";
    return os.str();
}

bool
Sentinel::writeReport() const
{
    if (options_.reportPath.empty() || divergences() == 0)
        return false;
    FILE *f = std::fopen(options_.reportPath.c_str(), "w");
    if (f == nullptr) {
        warn("sentinel: cannot write %s", options_.reportPath.c_str());
        return false;
    }
    const std::string json = reportJson();
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    return true;
}

} // namespace limit::guard
