/**
 * @file
 * Online divergence sentinel and fast-path quarantine.
 *
 * The simulator ships three execution modes with one contract: the
 * decoded-op superblock cache, the horizon-batched scheduler, and the
 * per-op reference interpreter must produce bit-identical results. The
 * sentinel enforces that contract *while a campaign runs* instead of
 * trusting it: for a sampled subset of jobs it re-executes a short
 * prefix window of the job through both the fast path and the per-op
 * oracle, compares Fingerprints, and on mismatch
 *
 *   1. bisects the window (doubling the divisor, i.e. halving the
 *      window, until the fingerprints agree) to bracket the offending
 *      region,
 *   2. records a structured DivergenceReport (serialised as a
 *      `limitpp-divergence-v1` JSON blob), and
 *   3. quarantines the fast path — all later jobs routed through this
 *      sentinel run one rung lower on the mode ladder
 *      (superblock → batched → per-op), and the divergent job itself
 *      is deterministically re-run in the degraded mode.
 *
 * Mode forcing rides on sim::ScopedExecutionClamp (thread-local, purely
 * narrowing), so probes never mutate shared configuration and the
 * sentinel composes with `--no-batch` / `--no-superblock` / the
 * LIMITPP_FORCE_* environment overrides: when those already pin the
 * process to per-op there is nothing faster to cross-check and checks
 * self-disable. See docs/ROBUSTNESS.md for the sampling policy and
 * overhead model.
 */

#ifndef LIMIT_GUARD_SENTINEL_HH
#define LIMIT_GUARD_SENTINEL_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "guard/fingerprint.hh"
#include "sim/machine.hh"

namespace limit::os {
class Kernel;
}

namespace limit::guard {

/** The execution-mode ladder, fastest first. */
enum class ExecMode : std::uint8_t {
    Superblock = 0, ///< batched scheduler + superblock replay cache
    Batched = 1,    ///< batched scheduler, replay cache off
    PerOp = 2,      ///< per-op reference interpreter (the oracle)
};

/** Stable lower-case mode name ("superblock" / "batched" / "per-op"). */
std::string_view modeName(ExecMode m);

/** Parse a mode name; returns false on unknown names. */
bool parseMode(std::string_view text, ExecMode &out);

/** One rung down the ladder; PerOp degrades to itself. */
constexpr ExecMode
nextSlower(ExecMode m)
{
    return m == ExecMode::Superblock ? ExecMode::Batched : ExecMode::PerOp;
}

/**
 * The mode actually reachable for `requested` under the process-wide
 * defaults (`--no-batch` / `--no-superblock` / LIMITPP_FORCE_*) and any
 * enclosing ScopedExecutionClamp. A request can only be narrowed.
 */
ExecMode effectiveMode(ExecMode requested);

/**
 * RAII: force the current thread's simulations into `mode` (narrowing
 * only — an outer clamp or process default still wins). Nestable.
 */
class ModeScope
{
  public:
    explicit ModeScope(ExecMode mode)
        : clamp_(mode != ExecMode::PerOp, mode == ExecMode::Superblock)
    {}

    ModeScope(const ModeScope &) = delete;
    ModeScope &operator=(const ModeScope &) = delete;

  private:
    sim::ScopedExecutionClamp clamp_;
};

/**
 * RAII: marks the current thread as running a sentinel probe. While a
 * ProbeScope is active, SimBundle::run truncates the simulation to a
 * window of the requested horizon (stop / windowDiv) and folds the
 * result into the scope's Fingerprint instead of running to
 * completion — so a probe re-executes only a sampled prefix of the
 * job, at a cost of roughly perOpSlowdown / windowDiv of the job
 * itself.
 */
class ProbeScope
{
  public:
    explicit ProbeScope(std::uint64_t windowDiv);
    ~ProbeScope();

    ProbeScope(const ProbeScope &) = delete;
    ProbeScope &operator=(const ProbeScope &) = delete;

    /** The innermost active scope on this thread, or nullptr. */
    static ProbeScope *active();

    /** Truncate a requested stop tick to this probe's window. */
    sim::Tick
    window(sim::Tick stopAt) const
    {
        const sim::Tick w = stopAt / windowDiv_;
        return w > 0 ? w : 1;
    }

    /** Fold one finished windowed run into the probe fingerprint. */
    void
    fold(os::Kernel &kernel, sim::Machine &machine, sim::Tick endTick)
    {
        foldRun(fp_, kernel, machine, endTick);
    }

    const Fingerprint &fingerprint() const { return fp_; }
    std::uint64_t windowDiv() const { return windowDiv_; }

  private:
    std::uint64_t windowDiv_;
    Fingerprint fp_;
    /**
     * Probe re-executions are the determinism *oracle*, so they must
     * not themselves depend on the machinery under test: both sides of
     * a cross-check run single-shard regardless of --shards or
     * LIMITPP_FORCE_SHARDS (thread-local, purely narrowing — exactly
     * like the execution-mode clamp above).
     */
    sim::ScopedSingleShard singleShard_;
    ProbeScope *prev_;
};

/** Sentinel policy knobs (wired from `--sentinel*` bench flags). */
struct SentinelOptions
{
    /** Master switch; off costs nothing. */
    bool enabled = false;
    /** Cross-check every Nth job routed through the sentinel (≥ 1). */
    unsigned sampleEvery = 1;
    /** Initial window divisor: probe horizon = job horizon / this. */
    std::uint64_t windowDiv = 256;
    /** Cap on bisection probes after a mismatch. */
    unsigned maxBisectSteps = 12;
    /** Where writeReport() lands the JSON blob ("" = don't write). */
    std::string reportPath = "divergence.json";
};

/** One bisection probe: window divisor tried, and whether it agreed. */
struct BisectStep
{
    std::uint64_t div = 0;
    bool matched = false;
};

/** Structured record of one detected fast-path divergence. */
struct DivergenceReport
{
    /** Campaign job index that diverged. */
    std::size_t job = 0;
    /** Fast mode that was caught lying. */
    ExecMode fast = ExecMode::Superblock;
    /** Mode the ladder degraded to. */
    ExecMode quarantined = ExecMode::Batched;
    /** Divisor of the first (widest) diverging window. */
    std::uint64_t windowDiv = 0;
    /** Narrowest divisor that still diverged. */
    std::uint64_t divergentDiv = 0;
    /** Narrowest divisor found to agree (0 = none within the cap). */
    std::uint64_t cleanDiv = 0;
    Fingerprint fastFp;
    Fingerprint referenceFp;
    std::vector<BisectStep> trail;
};

/**
 * Cross-checks sampled jobs and quarantines the fast path on mismatch.
 * Thread-safe: campaign workers call modeFor / shouldCheck / check
 * concurrently; the quarantine floor is a single atomic and reports go
 * behind a mutex.
 */
class Sentinel
{
  public:
    /**
     * Re-runs the job's windowed prefix in `mode` with the given
     * window divisor and returns its fingerprint. The campaign layer
     * supplies this; it must be deterministic and side-effect-free
     * (probe results are discarded).
     */
    using Probe =
        std::function<Fingerprint(ExecMode mode, std::uint64_t windowDiv)>;

    explicit Sentinel(SentinelOptions options) : options_(options) {}

    const SentinelOptions &options() const { return options_; }

    /** Apply the quarantine floor to a requested mode. */
    ExecMode
    modeFor(ExecMode requested) const
    {
        const auto floor = static_cast<ExecMode>(floor_.load());
        return static_cast<std::uint8_t>(requested) >=
                       static_cast<std::uint8_t>(floor)
                   ? requested
                   : floor;
    }

    /** Should job `job`, which ran in `mode`, be cross-checked? */
    bool
    shouldCheck(std::size_t job, ExecMode mode) const
    {
        return options_.enabled && mode != ExecMode::PerOp &&
               effectiveMode(mode) != ExecMode::PerOp &&
               job % (options_.sampleEvery > 0 ? options_.sampleEvery : 1) ==
                   0;
    }

    /**
     * Cross-check job `job` (which ran in `mode`) by probing a sampled
     * window through both `mode` and the per-op oracle. On divergence:
     * bisect, record a DivergenceReport, raise the quarantine floor to
     * nextSlower(mode), and return true (caller must re-run the job in
     * modeFor(mode)). Probe exceptions void the check (counted in
     * probeErrors) rather than failing the job.
     */
    bool check(std::size_t job, ExecMode mode, const Probe &probe);

    /** Divergences recorded so far (snapshot). */
    std::vector<DivergenceReport> reports() const;

    std::uint64_t checksRun() const { return checks_.load(); }
    std::uint64_t divergences() const { return divergences_.load(); }
    std::uint64_t probeErrors() const { return probeErrors_.load(); }

    /** Host CPU seconds spent inside probes (overhead accounting). */
    double probeSeconds() const;

    /** The `limitpp-divergence-v1` JSON blob (valid even when clean). */
    std::string reportJson() const;

    /**
     * Write reportJson() to options().reportPath if any divergence was
     * recorded and the path is nonempty. Returns true if written.
     */
    bool writeReport() const;

  private:
    SentinelOptions options_;
    std::atomic<std::uint8_t> floor_{
        static_cast<std::uint8_t>(ExecMode::Superblock)};
    std::atomic<std::uint64_t> checks_{0};
    std::atomic<std::uint64_t> divergences_{0};
    std::atomic<std::uint64_t> probeErrors_{0};
    std::atomic<std::uint64_t> probeNs_{0};
    mutable std::mutex mutex_;
    std::vector<DivergenceReport> reports_;
};

} // namespace limit::guard

#endif // LIMIT_GUARD_SENTINEL_HH
