/**
 * @file
 * Run fingerprints for the divergence sentinel.
 *
 * A Fingerprint condenses everything the bit-identity contract covers
 * about a finished simulation — end tick, context switches, every
 * thread's exact per-mode event ledgers, and every core's final PMU
 * values — into one FNV-1a hash plus a few headline fields kept
 * un-hashed for diagnostics. Two runs of the same job through
 * different execution modes (superblock / batched / per-op) must
 * produce equal fingerprints; the sentinel treats any mismatch as a
 * fast-path bug (see sentinel.hh and docs/ROBUSTNESS.md).
 */

#ifndef LIMIT_GUARD_FINGERPRINT_HH
#define LIMIT_GUARD_FINGERPRINT_HH

#include <cstdint>

#include "sim/types.hh"

namespace limit::os {
class Kernel;
}
namespace limit::sim {
class Machine;
}

namespace limit::guard {

/** Condensed observable state of one (or more) finished runs. */
struct Fingerprint
{
    /** FNV-1a 64 over every folded field, in a fixed order. */
    std::uint64_t hash = 0xcbf29ce484222325ull;
    /** Largest end tick folded (diagnostics; also hashed). */
    sim::Tick endTick = 0;
    /** Total instructions across all folded ledgers (diagnostics). */
    std::uint64_t instructions = 0;
    /** Total context switches folded (diagnostics). */
    std::uint64_t contextSwitches = 0;
    /** Machine runs folded in (a probe may span several). */
    std::uint64_t runs = 0;

    /** Mix one value into the hash (FNV-1a over its 8 bytes). */
    void
    mix(std::uint64_t v)
    {
        for (unsigned i = 0; i < 8; ++i) {
            hash ^= (v >> (8 * i)) & 0xff;
            hash *= 0x100000001b3ull;
        }
    }

    bool operator==(const Fingerprint &) const = default;
};

/**
 * Fold one finished machine into `fp`: end tick, context switches,
 * thread-major / mode-major / event-ordered ledgers, and core-major
 * final PMU values — the same observables tests/test_batch.cc pins
 * for scheduler equivalence.
 */
void foldRun(Fingerprint &fp, os::Kernel &kernel, sim::Machine &machine,
             sim::Tick endTick);

} // namespace limit::guard

#endif // LIMIT_GUARD_FINGERPRINT_HH
