#include "baseline/sampler.hh"

namespace limit::baseline {

SamplingProfiler::SamplingProfiler(os::Kernel &kernel, unsigned ctr,
                                   sim::EventType event,
                                   std::uint64_t period, bool user,
                                   bool kernel_mode)
    : kernel_(kernel), ctr_(ctr), period_(period)
{
    kernel_.perf().clearSamples();
    kernel_.perf().setupSampling(ctr, event, period, user, kernel_mode);
}

SamplingProfiler::~SamplingProfiler()
{
    if (active_)
        kernel_.perf().teardown(ctr_);
}

void
SamplingProfiler::aggregate()
{
    byRegion_.clear();
    byThread_.clear();
    total_ = 0;
    for (const auto &s : kernel_.perf().samples()) {
        ++byRegion_[s.region];
        ++byThread_[s.tid];
        ++total_;
    }
}

std::uint64_t
SamplingProfiler::samplesIn(sim::RegionId region) const
{
    auto it = byRegion_.find(region);
    return it == byRegion_.end() ? 0 : it->second;
}

std::uint64_t
SamplingProfiler::samplesFor(sim::ThreadId tid) const
{
    auto it = byThread_.find(tid);
    return it == byThread_.end() ? 0 : it->second;
}

std::uint64_t
SamplingProfiler::lostSamples() const
{
    return kernel_.perf().lostSamples();
}

} // namespace limit::baseline
