/**
 * @file
 * Sampling profiler baseline: overflow-driven IP sampling.
 *
 * Represents the "imprecise" arm of the paper's trade-off: no guest
 * instrumentation at all, but every estimate is samples x period —
 * a statistical extrapolation whose error explodes for code segments
 * shorter than the sampling period.
 */

#ifndef LIMIT_BASELINE_SAMPLER_HH
#define LIMIT_BASELINE_SAMPLER_HH

#include <cstdint>
#include <unordered_map>

#include "os/kernel.hh"
#include "os/perf_event.hh"
#include "sim/types.hh"

namespace limit::baseline {

/** Configures sampling on one counter and aggregates the profile. */
class SamplingProfiler
{
  public:
    /**
     * Start sampling `event` every `period` occurrences using
     * hardware counter `ctr`.
     */
    SamplingProfiler(os::Kernel &kernel, unsigned ctr,
                     sim::EventType event, std::uint64_t period,
                     bool user = true, bool kernel_mode = false);
    ~SamplingProfiler();

    SamplingProfiler(const SamplingProfiler &) = delete;
    SamplingProfiler &operator=(const SamplingProfiler &) = delete;

    std::uint64_t period() const { return period_; }

    /** Build/refresh the aggregation from the kernel's ring buffer. */
    void aggregate();

    /** Samples attributed to `region` (after aggregate()). */
    std::uint64_t samplesIn(sim::RegionId region) const;

    /** Estimated event count for `region`: samples x period. */
    double
    estimate(sim::RegionId region) const
    {
        return static_cast<double>(samplesIn(region)) *
               static_cast<double>(period_);
    }

    /** Samples attributed to thread `tid`. */
    std::uint64_t samplesFor(sim::ThreadId tid) const;

    /** Estimated event count for thread `tid`. */
    double
    estimateThread(sim::ThreadId tid) const
    {
        return static_cast<double>(samplesFor(tid)) *
               static_cast<double>(period_);
    }

    std::uint64_t totalSamples() const { return total_; }
    std::uint64_t lostSamples() const;

  private:
    os::Kernel &kernel_;
    unsigned ctr_;
    std::uint64_t period_;
    bool active_ = true;
    std::unordered_map<sim::RegionId, std::uint64_t> byRegion_;
    std::unordered_map<sim::ThreadId, std::uint64_t> byThread_;
    std::uint64_t total_ = 0;
};

} // namespace limit::baseline

#endif // LIMIT_BASELINE_SAMPLER_HH
