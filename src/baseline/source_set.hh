/**
 * @file
 * The standard roster of counter sources, ready to instantiate.
 *
 * E1/E3/E12 all want the same thing: "for each access method, set up
 * whatever that method needs on this kernel, then hand me a
 * CounterSource". A SourceSpec packages the label and that setup;
 * standardSources() returns the roster in the canonical report order
 * (three PEC policies, then papi, perf-syscall, rusage), so adding a
 * method extends every comparison bench at once.
 */

#ifndef LIMIT_BASELINE_SOURCE_SET_HH
#define LIMIT_BASELINE_SOURCE_SET_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "baseline/counter_source.hh"
#include "os/kernel.hh"
#include "pec/session.hh"

namespace limit::baseline {

/**
 * One instantiated access method. The session member keeps the PEC
 * machinery (counter programming, PMI handler) alive for the
 * source's lifetime; it is null for methods that only need the
 * kernel's perf subsystem.
 */
struct SourceInstance
{
    std::unique_ptr<pec::PecSession> session;
    std::unique_ptr<limit::CounterSource> source;
};

/** A named way of building one access method on a kernel. */
struct SourceSpec
{
    /** Stable label (matches CounterSource::name() of the result). */
    std::string label;
    /**
     * Program counter `ctr` to count `event` (in the given modes) the
     * way this method needs, and return the source reading it.
     */
    std::function<SourceInstance(os::Kernel &kernel, unsigned ctr,
                                 sim::EventType event, bool user,
                                 bool kernel_mode)>
        make;
};

/** The canonical six-method roster. */
std::vector<SourceSpec> standardSources();

// ---------------------------------------------------------------------
// Probed roster with graceful degradation
// ---------------------------------------------------------------------

/**
 * Errno-style codes a capability probe can report. Mirrors the host
 * surface a real deployment would see: EINTR/EAGAIN are transient
 * (retried with a bounded budget), anything else is permanent for the
 * process lifetime (EACCES: perf_event_paranoid too strict; ENOSYS:
 * no such syscall / no patched kernel).
 */
inline constexpr int probeOk = 0;
inline constexpr int probeEINTR = 4;
inline constexpr int probeEAGAIN = 11;
inline constexpr int probeEACCES = 13;
inline constexpr int probeENOSYS = 38;

/** "EACCES" etc.; "errno=N" for codes outside the probed set. */
std::string probeErrorName(int err);

/**
 * The host-capability surface the roster is probed against. A null
 * probe means the capability is present (the simulator always grants
 * it); tests and hardened deployments supply functions that fail the
 * way their host does. The attempt number (1-based) is passed so a
 * probe can model transient-then-recovered conditions; real probes
 * would back off between attempts, which a simulated one need not.
 */
struct ProbeEnv
{
    /** PEC availability: rdpmc usable + accumulator page mappable. */
    std::function<int(unsigned attempt)> pecProbe;
    /** perf-syscall surface (perf_event_open-style counting). */
    std::function<int(unsigned attempt)> perfProbe;
    /** Bounded retry budget for transient EINTR/EAGAIN failures. */
    unsigned maxAttempts = 4;
};

/**
 * One roster entry after probing: the method actually usable, what
 * was originally requested, and — when those differ — why, in a
 * sentence fit for a report footnote ("pec/fixup unavailable: EACCES
 * after 1 attempt(s); using perf-syscall").
 */
struct RosterRow
{
    SourceSpec spec;
    std::string requested;
    /** Degradation reason; empty when the request was satisfied. */
    std::string reason;
    /** Probe attempts consumed for the requested method. */
    unsigned attempts = 1;

    bool degraded() const { return spec.label != requested; }
};

/**
 * Probe the canonical roster against `env` and degrade each method
 * down its fallback chain instead of failing the run:
 *
 *   pec policies              -> perf-syscall -> rusage
 *   papi-like, perf-syscall   -> rusage
 *   rusage                    (always available)
 *
 * Transient probe errors are retried up to env.maxAttempts before the
 * method is declared unavailable. Every row is always returned — a
 * fully-degraded roster is all rusage — so comparison benches keep
 * their shape and report the degradation instead of crashing.
 */
std::vector<RosterRow> probedSources(const ProbeEnv &env);

} // namespace limit::baseline

#endif // LIMIT_BASELINE_SOURCE_SET_HH
