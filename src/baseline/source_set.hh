/**
 * @file
 * The standard roster of counter sources, ready to instantiate.
 *
 * E1/E3/E12 all want the same thing: "for each access method, set up
 * whatever that method needs on this kernel, then hand me a
 * CounterSource". A SourceSpec packages the label and that setup;
 * standardSources() returns the roster in the canonical report order
 * (three PEC policies, then papi, perf-syscall, rusage), so adding a
 * method extends every comparison bench at once.
 */

#ifndef LIMIT_BASELINE_SOURCE_SET_HH
#define LIMIT_BASELINE_SOURCE_SET_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "baseline/counter_source.hh"
#include "os/kernel.hh"
#include "pec/session.hh"

namespace limit::baseline {

/**
 * One instantiated access method. The session member keeps the PEC
 * machinery (counter programming, PMI handler) alive for the
 * source's lifetime; it is null for methods that only need the
 * kernel's perf subsystem.
 */
struct SourceInstance
{
    std::unique_ptr<pec::PecSession> session;
    std::unique_ptr<limit::CounterSource> source;
};

/** A named way of building one access method on a kernel. */
struct SourceSpec
{
    /** Stable label (matches CounterSource::name() of the result). */
    std::string label;
    /**
     * Program counter `ctr` to count `event` (in the given modes) the
     * way this method needs, and return the source reading it.
     */
    std::function<SourceInstance(os::Kernel &kernel, unsigned ctr,
                                 sim::EventType event, bool user,
                                 bool kernel_mode)>
        make;
};

/** The canonical six-method roster. */
std::vector<SourceSpec> standardSources();

} // namespace limit::baseline

#endif // LIMIT_BASELINE_SOURCE_SET_HH
