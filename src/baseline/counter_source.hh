/**
 * @file
 * The unified counter-reader interface.
 *
 * Every way of obtaining a virtualized 64-bit event count — the PEC
 * fast read, perf_event syscall reads, PAPI-class library reads,
 * rusage accounting — implements this one surface, so experiments
 * iterate a vector of sources instead of branching per method. Beyond
 * read(), the interface standardizes two things the benches used to
 * reimplement per reader:
 *
 *   - readDelta(): the count since this thread's previous readDelta
 *     of the same counter. Sources with hardware support (destructive
 *     reads) override it; everyone else gets a software diff against
 *     remembered values.
 *   - cost(): static metadata about what a read costs and means, so
 *     tables can annotate methods without hard-coded knowledge.
 */

#ifndef LIMIT_BASELINE_COUNTER_SOURCE_HH
#define LIMIT_BASELINE_COUNTER_SOURCE_HH

#include <cstdint>
#include <string>
#include <unordered_map>

#include "sim/guest.hh"
#include "sim/task.hh"

namespace limit {

/** Static cost/semantics metadata for one access method. */
struct CounterCost
{
    /** Every read crosses into the kernel. */
    bool syscallPerRead = false;
    /**
     * Values are exact event counts. False for methods that return a
     * proxy (rusage's tick-resolution time).
     */
    bool preciseEvents = true;
    /** Userspace library instructions per read beyond the raw access. */
    std::uint64_t libraryInstrs = 0;
};

/** One way of reading a virtualized 64-bit counter from guest code. */
class CounterSource
{
  public:
    virtual ~CounterSource() = default;

    /** Current value of counter `ctr` for the calling thread. */
    virtual sim::Task<std::uint64_t> read(sim::Guest &g, unsigned ctr)
        = 0;

    /**
     * Count since the calling thread's previous readDelta of `ctr`
     * (whole-life count on the first call). The default is a software
     * diff — one read() plus remembered state, no extra guest cost;
     * sources with destructive-read hardware override it.
     */
    virtual sim::Task<std::uint64_t> readDelta(sim::Guest &g,
                                               unsigned ctr);

    /** What a read costs and means. */
    virtual CounterCost cost() const = 0;

    /** Method name for reports. */
    virtual std::string name() const = 0;

  private:
    /** Last read() value per (thread, counter), for the diff. */
    std::unordered_map<std::uint64_t, std::uint64_t> lastValue_;
};

} // namespace limit

#endif // LIMIT_BASELINE_COUNTER_SOURCE_HH
