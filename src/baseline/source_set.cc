#include "baseline/source_set.hh"

#include "baseline/readers.hh"

namespace limit::baseline {

namespace {

SourceSpec
pecSpec(pec::OverflowPolicy policy)
{
    return {std::string("pec/") + pec::policyName(policy),
            [policy](os::Kernel &kernel, unsigned ctr,
                     sim::EventType event, bool user, bool kernel_mode) {
                pec::PecConfig pc;
                pc.policy = policy;
                SourceInstance inst;
                inst.session =
                    std::make_unique<pec::PecSession>(kernel, pc);
                inst.session->addEvent(ctr, event, user, kernel_mode);
                inst.source =
                    std::make_unique<PecReader>(*inst.session);
                return inst;
            }};
}

} // namespace

std::vector<SourceSpec>
standardSources()
{
    std::vector<SourceSpec> specs;
    specs.push_back(pecSpec(pec::OverflowPolicy::KernelFixup));
    specs.push_back(pecSpec(pec::OverflowPolicy::DoubleCheck));
    specs.push_back(pecSpec(pec::OverflowPolicy::NaiveSum));
    specs.push_back(
        {"papi-like", [](os::Kernel &kernel, unsigned ctr,
                         sim::EventType event, bool user,
                         bool kernel_mode) {
             kernel.perf().setupCounting(ctr, event, user, kernel_mode);
             SourceInstance inst;
             inst.source = std::make_unique<PapiReader>();
             return inst;
         }});
    specs.push_back(
        {"perf-syscall", [](os::Kernel &kernel, unsigned ctr,
                            sim::EventType event, bool user,
                            bool kernel_mode) {
             kernel.perf().setupCounting(ctr, event, user, kernel_mode);
             SourceInstance inst;
             inst.source = std::make_unique<PerfSyscallReader>();
             return inst;
         }});
    specs.push_back(
        {"rusage", [](os::Kernel &, unsigned, sim::EventType, bool,
                      bool) {
             // rusage needs no counter programming: it reads the
             // scheduler's jiffy accounting.
             SourceInstance inst;
             inst.source = std::make_unique<RusageReader>();
             return inst;
         }});
    return specs;
}

} // namespace limit::baseline
