#include "baseline/source_set.hh"

#include "baseline/readers.hh"

namespace limit::baseline {

namespace {

SourceSpec
pecSpec(pec::OverflowPolicy policy)
{
    return {std::string("pec/") + pec::policyName(policy),
            [policy](os::Kernel &kernel, unsigned ctr,
                     sim::EventType event, bool user, bool kernel_mode) {
                pec::PecConfig pc;
                pc.policy = policy;
                SourceInstance inst;
                inst.session =
                    std::make_unique<pec::PecSession>(kernel, pc);
                inst.session->addEvent(ctr, event, user, kernel_mode);
                inst.source =
                    std::make_unique<PecReader>(*inst.session);
                return inst;
            }};
}

} // namespace

std::vector<SourceSpec>
standardSources()
{
    std::vector<SourceSpec> specs;
    specs.push_back(pecSpec(pec::OverflowPolicy::KernelFixup));
    specs.push_back(pecSpec(pec::OverflowPolicy::DoubleCheck));
    specs.push_back(pecSpec(pec::OverflowPolicy::NaiveSum));
    specs.push_back(
        {"papi-like", [](os::Kernel &kernel, unsigned ctr,
                         sim::EventType event, bool user,
                         bool kernel_mode) {
             kernel.perf().setupCounting(ctr, event, user, kernel_mode);
             SourceInstance inst;
             inst.source = std::make_unique<PapiReader>();
             return inst;
         }});
    specs.push_back(
        {"perf-syscall", [](os::Kernel &kernel, unsigned ctr,
                            sim::EventType event, bool user,
                            bool kernel_mode) {
             kernel.perf().setupCounting(ctr, event, user, kernel_mode);
             SourceInstance inst;
             inst.source = std::make_unique<PerfSyscallReader>();
             return inst;
         }});
    specs.push_back(
        {"rusage", [](os::Kernel &, unsigned, sim::EventType, bool,
                      bool) {
             // rusage needs no counter programming: it reads the
             // scheduler's jiffy accounting.
             SourceInstance inst;
             inst.source = std::make_unique<RusageReader>();
             return inst;
         }});
    return specs;
}

std::string
probeErrorName(int err)
{
    switch (err) {
      case probeOk: return "OK";
      case probeEINTR: return "EINTR";
      case probeEAGAIN: return "EAGAIN";
      case probeEACCES: return "EACCES";
      case probeENOSYS: return "ENOSYS";
      default: return "errno=" + std::to_string(err);
    }
}

namespace {

/** Which host capability a roster label depends on. */
enum class Capability { None, Pec, Perf };

Capability
capabilityOf(const std::string &label)
{
    if (label.rfind("pec/", 0) == 0)
        return Capability::Pec;
    if (label == "papi-like" || label == "perf-syscall")
        return Capability::Perf;
    return Capability::None;
}

struct ProbeOutcome
{
    int err = probeOk;
    unsigned attempts = 1;
};

/** Run one capability probe with the bounded transient-retry budget. */
ProbeOutcome
runProbe(const std::function<int(unsigned)> &probe, unsigned max_attempts)
{
    ProbeOutcome out;
    if (!probe)
        return out; // no probe supplied: capability present
    if (max_attempts == 0)
        max_attempts = 1;
    for (unsigned a = 1; a <= max_attempts; ++a) {
        out.attempts = a;
        out.err = probe(a);
        if (out.err == probeOk)
            return out;
        if (out.err != probeEINTR && out.err != probeEAGAIN)
            return out; // permanent: retrying cannot help
    }
    return out; // transient budget exhausted; last error stands
}

} // namespace

std::vector<RosterRow>
probedSources(const ProbeEnv &env)
{
    const ProbeOutcome pec = runProbe(env.pecProbe, env.maxAttempts);
    const ProbeOutcome perf = runProbe(env.perfProbe, env.maxAttempts);
    const auto outcomeFor = [&](Capability c) -> const ProbeOutcome & {
        static const ProbeOutcome ok;
        switch (c) {
          case Capability::Pec: return pec;
          case Capability::Perf: return perf;
          case Capability::None: return ok;
        }
        return ok;
    };

    const std::vector<SourceSpec> specs = standardSources();
    const auto specFor = [&](const std::string &label) {
        for (const SourceSpec &s : specs) {
            if (s.label == label)
                return s;
        }
        return specs.back(); // rusage: the chain's fixed point
    };

    std::vector<RosterRow> rows;
    for (const SourceSpec &requested : specs) {
        RosterRow row;
        row.requested = requested.label;
        row.attempts = outcomeFor(capabilityOf(requested.label)).attempts;

        // Walk the fallback chain to the first available method,
        // recording why each earlier hop was skipped.
        std::vector<std::string> chain{requested.label};
        if (capabilityOf(requested.label) == Capability::Pec)
            chain.push_back("perf-syscall");
        chain.push_back("rusage");

        for (const std::string &hop : chain) {
            const ProbeOutcome &o = outcomeFor(capabilityOf(hop));
            if (o.err == probeOk) {
                row.spec = specFor(hop);
                break;
            }
            row.reason += hop + " unavailable: " + probeErrorName(o.err) +
                          " after " + std::to_string(o.attempts) +
                          " attempt(s); ";
        }
        if (row.degraded())
            row.reason += "using " + row.spec.label;
        else
            row.reason.clear();
        rows.push_back(std::move(row));
    }
    return rows;
}

} // namespace limit::baseline
