/**
 * @file
 * Interchangeable counter access methods.
 *
 * The paper's headline comparison is between its fast userspace read
 * and the access methods in use at the time: perf_event syscall
 * reads, PAPI's library-over-syscall reads, and rusage-style time
 * accounting. Each is a limit::CounterSource, so the benches can
 * instrument one workload with any of them and compare cost/precision
 * like for like — see source_set.hh for the standard vector of them.
 */

#ifndef LIMIT_BASELINE_READERS_HH
#define LIMIT_BASELINE_READERS_HH

#include <cstdint>
#include <string>

#include "baseline/counter_source.hh"
#include "os/kernel.hh"
#include "os/sysno.hh"
#include "pec/session.hh"
#include "sim/guest.hh"
#include "sim/task.hh"

namespace limit::baseline {

/**
 * Historical name for the unified interface; new code should say
 * limit::CounterSource (see docs/API.md).
 */
using CounterReader = limit::CounterSource;

/** The paper's method: PEC fast userspace read over a session. */
class PecReader : public limit::CounterSource
{
  public:
    explicit PecReader(pec::PecSession &session) : session_(session) {}

    sim::Task<std::uint64_t>
    read(sim::Guest &g, unsigned ctr) override
    {
        const std::uint64_t v = co_await session_.read(g, ctr);
        co_return v;
    }

    /**
     * With the destructiveRead PMU feature the session's hardware
     * read-and-clear is used (one instruction, no remembered state);
     * otherwise the base-class software diff applies.
     */
    sim::Task<std::uint64_t>
    readDelta(sim::Guest &g, unsigned ctr) override
    {
        if (session_.kernel()
                .machine()
                .cpu(0)
                .pmu()
                .features()
                .destructiveRead) {
            const std::uint64_t v = co_await session_.readDelta(g, ctr);
            co_return v;
        }
        const std::uint64_t v =
            co_await limit::CounterSource::readDelta(g, ctr);
        co_return v;
    }

    limit::CounterCost
    cost() const override
    {
        return {.syscallPerRead = false, .preciseEvents = true,
                .libraryInstrs = 0};
    }

    std::string
    name() const override
    {
        return std::string("pec/") +
               pec::policyName(session_.config().policy);
    }

    pec::PecSession &session() { return session_; }

  private:
    pec::PecSession &session_;
};

/** perf_event-style read: one heavyweight syscall per value. */
class PerfSyscallReader : public limit::CounterSource
{
  public:
    sim::Task<std::uint64_t>
    read(sim::Guest &g, unsigned ctr) override
    {
        const std::uint64_t v =
            co_await g.syscall(os::sysPerfRead, {ctr, 0, 0, 0});
        co_return v;
    }

    limit::CounterCost
    cost() const override
    {
        return {.syscallPerRead = true, .preciseEvents = true,
                .libraryInstrs = 0};
    }

    std::string name() const override { return "perf-syscall"; }
};

/**
 * PAPI-class read: a userspace library layer (event-set lookup,
 * caching, bookkeeping) over a lighter kernel counter read.
 */
class PapiReader : public limit::CounterSource
{
  public:
    sim::Task<std::uint64_t>
    read(sim::Guest &g, unsigned ctr) override
    {
        // Library-side work before and after the kernel crossing.
        co_await g.compute(libraryInstrs / 2);
        const std::uint64_t v =
            co_await g.syscall(os::sysPapiRead, {ctr, 0, 0, 0});
        co_await g.compute(libraryInstrs / 2);
        co_return v;
    }

    limit::CounterCost
    cost() const override
    {
        return {.syscallPerRead = true, .preciseEvents = true,
                .libraryInstrs = libraryInstrs};
    }

    std::string name() const override { return "papi-like"; }

    /** Instructions of userspace library work per read. */
    static constexpr std::uint64_t libraryInstrs = 380;
};

/**
 * rusage-style accounting read: cheap-ish syscall, but it returns
 * scheduler-tick-resolution time, not events — the "fast but useless
 * for events" end of the old trade-off.
 */
class RusageReader : public limit::CounterSource
{
  public:
    sim::Task<std::uint64_t>
    read(sim::Guest &g, unsigned /*ctr*/) override
    {
        const std::uint64_t v =
            co_await g.syscall(os::sysRusage, {0, 0, 0, 0});
        co_return v;
    }

    limit::CounterCost
    cost() const override
    {
        return {.syscallPerRead = true, .preciseEvents = false,
                .libraryInstrs = 0};
    }

    std::string name() const override { return "rusage"; }
};

} // namespace limit::baseline

#endif // LIMIT_BASELINE_READERS_HH
