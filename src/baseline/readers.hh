/**
 * @file
 * Interchangeable counter access methods.
 *
 * The paper's headline comparison is between its fast userspace read
 * and the access methods in use at the time: perf_event syscall
 * reads, PAPI's library-over-syscall reads, and rusage-style time
 * accounting. This interface lets the benches instrument one workload
 * with any of them and compare cost/precision like for like.
 */

#ifndef LIMIT_BASELINE_READERS_HH
#define LIMIT_BASELINE_READERS_HH

#include <cstdint>
#include <string>

#include "os/kernel.hh"
#include "os/sysno.hh"
#include "pec/session.hh"
#include "sim/guest.hh"
#include "sim/task.hh"

namespace limit::baseline {

/** A way of obtaining a 64-bit virtualized counter value. */
class CounterReader
{
  public:
    virtual ~CounterReader() = default;

    /** Current value of counter `ctr` for the calling thread. */
    virtual sim::Task<std::uint64_t> read(sim::Guest &g, unsigned ctr)
        = 0;

    /** Method name for reports. */
    virtual std::string name() const = 0;
};

/** The paper's method: PEC fast userspace read. */
class PecReader : public CounterReader
{
  public:
    explicit PecReader(pec::PecSession &session) : session_(session) {}

    sim::Task<std::uint64_t>
    read(sim::Guest &g, unsigned ctr) override
    {
        const std::uint64_t v = co_await session_.read(g, ctr);
        co_return v;
    }

    std::string
    name() const override
    {
        return std::string("pec/") +
               pec::policyName(session_.config().policy);
    }

  private:
    pec::PecSession &session_;
};

/** perf_event-style read: one heavyweight syscall per value. */
class PerfSyscallReader : public CounterReader
{
  public:
    sim::Task<std::uint64_t>
    read(sim::Guest &g, unsigned ctr) override
    {
        const std::uint64_t v =
            co_await g.syscall(os::sysPerfRead, {ctr, 0, 0, 0});
        co_return v;
    }

    std::string name() const override { return "perf-syscall"; }
};

/**
 * PAPI-class read: a userspace library layer (event-set lookup,
 * caching, bookkeeping) over a lighter kernel counter read.
 */
class PapiReader : public CounterReader
{
  public:
    sim::Task<std::uint64_t>
    read(sim::Guest &g, unsigned ctr) override
    {
        // Library-side work before and after the kernel crossing.
        co_await g.compute(libraryInstrs / 2);
        const std::uint64_t v =
            co_await g.syscall(os::sysPapiRead, {ctr, 0, 0, 0});
        co_await g.compute(libraryInstrs / 2);
        co_return v;
    }

    std::string name() const override { return "papi-like"; }

    /** Instructions of userspace library work per read. */
    static constexpr std::uint64_t libraryInstrs = 380;
};

/**
 * rusage-style accounting read: cheap-ish syscall, but it returns
 * scheduler-tick-resolution time, not events — the "fast but useless
 * for events" end of the old trade-off.
 */
class RusageReader : public CounterReader
{
  public:
    sim::Task<std::uint64_t>
    read(sim::Guest &g, unsigned /*ctr*/) override
    {
        const std::uint64_t v =
            co_await g.syscall(os::sysRusage, {0, 0, 0, 0});
        co_return v;
    }

    std::string name() const override { return "rusage"; }
};

} // namespace limit::baseline

#endif // LIMIT_BASELINE_READERS_HH
