#include "baseline/counter_source.hh"

namespace limit {

sim::Task<std::uint64_t>
CounterSource::readDelta(sim::Guest &g, unsigned ctr)
{
    const std::uint64_t key =
        (static_cast<std::uint64_t>(g.tid()) << 8) | (ctr & 0xff);
    const std::uint64_t v = co_await read(g, ctr);
    auto it = lastValue_.try_emplace(key, 0).first;
    const std::uint64_t prev = it->second;
    it->second = v;
    // A method returning a non-monotonic proxy (rusage after a ledger
    // reset) could go backwards; clamp rather than wrap.
    co_return v >= prev ? v - prev : 0;
}

} // namespace limit
