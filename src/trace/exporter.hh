/**
 * @file
 * Render a Tracer's contents for humans and for Perfetto.
 *
 * writeChromeTrace emits the Chrome trace-event JSON object format
 * (https://chromium.org - trace_event format), which chrome://tracing
 * and ui.perfetto.dev both load: one instant event per TraceRecord,
 * with the simulated core as the pid lane and the simulated thread as
 * the tid lane, timestamps in microseconds of simulated time at the
 * nominal clock. Extra top-level keys ("metrics", "dropped") ride
 * along; trace viewers ignore keys they do not know.
 *
 * asciiSummary prints the per-category / per-event hit counts as a
 * terminal table — the quick look before reaching for the viewer.
 */

#ifndef LIMIT_TRACE_EXPORTER_HH
#define LIMIT_TRACE_EXPORTER_HH

#include <cstdint>
#include <iosfwd>
#include <string>

#include "trace/trace.hh"

namespace limit::sim {
class TimelineRecorder;
}

namespace limit::trace {

class MetricsRegistry;

/** Knobs for writeChromeTrace. */
struct ExportOptions
{
    /**
     * Optional decoder for syscall numbers: given the nr of a
     * syscall-enter/exit record, return a short name (or nullptr to
     * fall back to the number). Lets the os layer label events
     * without this library depending on it.
     */
    const char *(*syscallName)(std::uint32_t nr) = nullptr;

    /**
     * Also emit Perfetto counter tracks ("ph": "C"): per-core
     * cumulative context switches, syscalls, and PMIs, stepped at
     * every matching record. Off by default — it roughly doubles the
     * event count for syscall-dense traces.
     */
    bool counterTracks = false;

    /**
     * Optional finalized timeline recorder: emits one "tl-<event>"
     * counter track per core per PMU event (events with no hits
     * anywhere are skipped), valued at the event's exact per-slice
     * delta, stepped at each slice boundary. Accessed through
     * sim/timeline.hh's inline API only — limit_trace does not link
     * limit_sim.
     */
    const sim::TimelineRecorder *timeline = nullptr;
};

/**
 * Write the full Chrome-trace JSON document to `os`. `metrics` (when
 * non-null) is embedded as a top-level "metrics" object.
 */
void writeChromeTrace(std::ostream &os, const Tracer &tracer,
                      const MetricsRegistry *metrics = nullptr,
                      const ExportOptions &options = {});

/** Per-category and per-event hit counts as an ASCII table. */
std::string asciiSummary(const Tracer &tracer);

} // namespace limit::trace

#endif // LIMIT_TRACE_EXPORTER_HH
