#include "trace/trace.hh"

#include <algorithm>

#include "base/logging.hh"

namespace limit::trace {

std::string_view
traceEventName(TraceEvent e)
{
    switch (e) {
      case TraceEvent::ContextSwitch: return "context-switch";
      case TraceEvent::SyscallEnter: return "syscall-enter";
      case TraceEvent::SyscallExit: return "syscall-exit";
      case TraceEvent::PmiDelivered: return "pmi-delivered";
      case TraceEvent::FutexWait: return "futex-wait";
      case TraceEvent::FutexWake: return "futex-wake";
      case TraceEvent::CounterOverflow: return "counter-overflow";
      case TraceEvent::CounterSave: return "counter-save";
      case TraceEvent::CounterRestore: return "counter-restore";
      case TraceEvent::PecReadRestart: return "pec-read-restart";
      case TraceEvent::PecDoubleCheckRetry:
        return "pec-double-check-retry";
      case TraceEvent::PecOverflowFixup: return "pec-overflow-fixup";
      case TraceEvent::PecRegionEnter: return "pec-region-enter";
      case TraceEvent::PecRegionExit: return "pec-region-exit";
      case TraceEvent::FaultInjected: return "fault-injected";
      default: return "?";
    }
}

TraceCategory
traceEventCategory(TraceEvent e)
{
    switch (e) {
      case TraceEvent::ContextSwitch:
        return TraceCategory::Sched;
      case TraceEvent::SyscallEnter:
      case TraceEvent::SyscallExit:
        return TraceCategory::Syscall;
      case TraceEvent::PmiDelivered:
      case TraceEvent::CounterOverflow:
      case TraceEvent::CounterSave:
      case TraceEvent::CounterRestore:
        return TraceCategory::Pmu;
      case TraceEvent::FutexWait:
      case TraceEvent::FutexWake:
        return TraceCategory::Futex;
      case TraceEvent::FaultInjected:
        return TraceCategory::Fault;
      default:
        return TraceCategory::Pec;
    }
}

std::string_view
traceCategoryName(TraceCategory c)
{
    switch (c) {
      case TraceCategory::Sched: return "sched";
      case TraceCategory::Syscall: return "syscall";
      case TraceCategory::Pmu: return "pmu";
      case TraceCategory::Futex: return "futex";
      case TraceCategory::Pec: return "pec";
      case TraceCategory::Fault: return "fault";
      default: return "?";
    }
}

std::vector<TraceRecord>
Ring::snapshot() const
{
    std::vector<TraceRecord> out;
    const std::size_t n = size();
    out.reserve(n);
    // Oldest retained record first: when the ring has wrapped, that is
    // the slot the next push would overwrite.
    const std::size_t start =
        written_ > buf_.size()
            ? static_cast<std::size_t>(written_ % buf_.size())
            : 0;
    for (std::size_t i = 0; i < n; ++i)
        out.push_back(buf_[(start + i) % buf_.size()]);
    return out;
}

Tracer::Tracer(unsigned cores, std::size_t capacity_per_core)
{
    fatal_if(cores == 0, "Tracer needs at least one core");
    rings_.reserve(cores);
    for (unsigned c = 0; c < cores; ++c)
        rings_.emplace_back(capacity_per_core);
}

const Ring &
Tracer::ring(unsigned core) const
{
    panic_if(core >= rings_.size(), "bad trace core ", core);
    return rings_[core];
}

std::uint64_t
Tracer::categoryCount(TraceCategory c) const
{
    std::uint64_t total = 0;
    for (unsigned e = 0; e < numTraceEvents; ++e) {
        if (traceEventCategory(static_cast<TraceEvent>(e)) == c)
            total += counts_[e];
    }
    return total;
}

std::uint64_t
Tracer::totalRecorded() const
{
    std::uint64_t total = 0;
    for (unsigned e = 0; e < numTraceEvents; ++e)
        total += counts_[e];
    return total;
}

std::uint64_t
Tracer::totalDropped() const
{
    std::uint64_t total = 0;
    for (const Ring &r : rings_)
        total += r.dropped();
    return total;
}

std::vector<TraceRecord>
Tracer::merged() const
{
    std::vector<TraceRecord> out;
    std::size_t n = 0;
    for (const Ring &r : rings_)
        n += r.size();
    out.reserve(n);
    for (const Ring &r : rings_) {
        const std::vector<TraceRecord> s = r.snapshot();
        out.insert(out.end(), s.begin(), s.end());
    }
    // stable_sort keeps each core's (already chronological) records in
    // emission order when ticks tie across cores.
    std::stable_sort(out.begin(), out.end(),
                     [](const TraceRecord &a, const TraceRecord &b) {
                         return a.tick < b.tick;
                     });
    return out;
}

} // namespace limit::trace
