#include "trace/exporter.hh"

#include <cstdio>
#include <map>
#include <ostream>
#include <set>
#include <string>

#include "sim/timeline.hh"
#include "trace/metrics.hh"

namespace limit::trace {

namespace {

/** JSON arg key for a record's a0/a1 (nullptr = omit the field). */
struct ArgKeys
{
    const char *a0 = nullptr;
    const char *a1 = nullptr;
};

ArgKeys
argKeys(TraceEvent e)
{
    switch (e) {
      case TraceEvent::ContextSwitch: return {"to_state", "voluntary"};
      case TraceEvent::SyscallEnter: return {"nr", "arg0"};
      case TraceEvent::SyscallExit: return {"nr", "result"};
      case TraceEvent::PmiDelivered: return {"counter", "wraps"};
      case TraceEvent::FutexWait: return {"word", "eagain"};
      case TraceEvent::FutexWake: return {"word", "woken"};
      case TraceEvent::CounterOverflow: return {"counter", "wraps"};
      case TraceEvent::CounterSave: return {"counters", nullptr};
      case TraceEvent::CounterRestore: return {"counters", nullptr};
      case TraceEvent::PecReadRestart: return {"counter", nullptr};
      case TraceEvent::PecDoubleCheckRetry:
        return {"counter", nullptr};
      case TraceEvent::PecOverflowFixup: return {"counter", "wraps"};
      case TraceEvent::PecRegionEnter: return {"region", nullptr};
      case TraceEvent::PecRegionExit: return {"region", nullptr};
      default: return {};
    }
}

bool
isSyscallEvent(TraceEvent e)
{
    return e == TraceEvent::SyscallEnter || e == TraceEvent::SyscallExit;
}

} // namespace

void
writeChromeTrace(std::ostream &os, const Tracer &tracer,
                 const MetricsRegistry *metrics,
                 const ExportOptions &options)
{
    const std::vector<TraceRecord> records = tracer.merged();

    os << "{\n  \"displayTimeUnit\": \"ns\",\n  \"traceEvents\": [";

    bool first = true;
    const auto sep = [&]() {
        os << (first ? "\n" : ",\n");
        first = false;
    };

    // Name the pid lanes after the simulated cores. Only cores that
    // actually emitted records get a lane.
    std::set<std::uint16_t> cores;
    for (const TraceRecord &r : records)
        cores.insert(r.core);
    if (options.timeline != nullptr && options.timeline->finalized()) {
        for (unsigned c = 0; c < options.timeline->numLanes(); ++c)
            cores.insert(static_cast<std::uint16_t>(c));
    }
    for (const std::uint16_t c : cores) {
        sep();
        os << "    {\"name\": \"process_name\", \"ph\": \"M\", \"pid\": "
           << c << ", \"args\": {\"name\": \"core " << c << "\"}}";
    }

    char ts[48];
    std::map<std::pair<std::uint16_t, std::string>, std::uint64_t>
        counter_track_state;
    for (const TraceRecord &r : records) {
        sep();
        // Instant events with thread scope: ts in microseconds of
        // simulated time (1 tick = 1/3 ns at the nominal 3 GHz).
        std::snprintf(ts, sizeof ts, "%.6f",
                      sim::ticksToNs(r.tick) / 1000.0);
        os << "    {\"name\": \"" << traceEventName(r.event)
           << "\", \"cat\": \""
           << traceCategoryName(traceEventCategory(r.event))
           << "\", \"ph\": \"i\", \"s\": \"t\", \"ts\": " << ts
           << ", \"pid\": " << r.core << ", \"tid\": ";
        if (r.tid == sim::invalidThread)
            os << -1;
        else
            os << r.tid;
        os << ", \"args\": {";
        const ArgKeys keys = argKeys(r.event);
        bool any = false;
        if (keys.a0) {
            os << "\"" << keys.a0 << "\": " << r.a0;
            any = true;
        }
        if (keys.a1) {
            os << (any ? ", " : "") << "\"" << keys.a1
               << "\": " << r.a1;
            any = true;
        }
        if (isSyscallEvent(r.event) && options.syscallName) {
            const char *name = options.syscallName(
                static_cast<std::uint32_t>(r.a0));
            if (name) {
                os << (any ? ", " : "") << "\"sys\": \"" << name
                   << "\"";
            }
        }
        os << "}}";

        if (options.counterTracks) {
            // Counter tracks are cumulative per core, so a viewer
            // shows event *rates* as track slopes.
            const char *track = nullptr;
            switch (r.event) {
              case TraceEvent::ContextSwitch:
                track = "ctx-switches";
                break;
              case TraceEvent::SyscallEnter:
                track = "syscalls";
                break;
              case TraceEvent::PmiDelivered:
                track = "pmis";
                break;
              default:
                break;
            }
            if (track) {
                const std::uint64_t value =
                    ++counter_track_state[{r.core, track}];
                sep();
                os << "    {\"name\": \"" << track
                   << "\", \"ph\": \"C\", \"ts\": " << ts
                   << ", \"pid\": " << r.core
                   << ", \"args\": {\"value\": " << value << "}}";
            }
        }
    }

    if (options.timeline != nullptr && options.timeline->finalized()) {
        // One counter track per (core, event): the value at each
        // slice boundary is the event's exact delta over that slice,
        // so the track reads as an exact rate plot, not a sample.
        const sim::TimelineRecorder &tl = *options.timeline;
        sim::EventDeltas any{};
        for (const auto &lane : tl.lanes()) {
            for (const auto &slice : lane.slices)
                any += slice;
        }
        for (unsigned core = 0; core < tl.numLanes(); ++core) {
            const auto &slices = tl.lanes()[core].slices;
            for (unsigned e = 0; e < sim::numEventTypes; ++e) {
                if (any.counts[e] == 0)
                    continue;
                const std::string track =
                    "tl-" +
                    std::string(sim::eventName(
                        static_cast<sim::EventType>(e)));
                for (std::size_t s = 0; s < slices.size(); ++s) {
                    std::snprintf(
                        ts, sizeof ts, "%.6f",
                        sim::ticksToNs(static_cast<sim::Tick>(s) *
                                       tl.interval()) /
                            1000.0);
                    sep();
                    os << "    {\"name\": \"" << track
                       << "\", \"ph\": \"C\", \"ts\": " << ts
                       << ", \"pid\": " << core
                       << ", \"args\": {\"value\": "
                       << slices[s].counts[e] << "}}";
                }
            }
        }
    }

    os << "\n  ],\n  \"dropped\": {";
    for (unsigned c = 0; c < tracer.numCores(); ++c) {
        os << (c == 0 ? "" : ", ") << "\"core" << c
           << "\": " << tracer.ring(c).dropped();
    }
    os << "}";
    if (metrics)
        os << ",\n  \"metrics\": " << metrics->toJson(2);
    os << "\n}\n";
}

std::string
asciiSummary(const Tracer &tracer)
{
    std::string out;
    char line[128];
    std::snprintf(line, sizeof line,
                  "trace summary: %llu records (%llu dropped)\n",
                  static_cast<unsigned long long>(tracer.totalRecorded()),
                  static_cast<unsigned long long>(tracer.totalDropped()));
    out += line;
    for (unsigned c = 0; c < tracer.numCores(); ++c) {
        const std::uint64_t d = tracer.ring(c).dropped();
        if (d == 0)
            continue;
        std::snprintf(line, sizeof line,
                      "  core%-4u dropped %10llu of %llu\n", c,
                      static_cast<unsigned long long>(d),
                      static_cast<unsigned long long>(
                          tracer.ring(c).written()));
        out += line;
    }
    for (unsigned c = 0; c < numTraceCategories; ++c) {
        const auto cat = static_cast<TraceCategory>(c);
        if (tracer.categoryCount(cat) == 0)
            continue;
        std::snprintf(line, sizeof line, "  %-8s %10llu\n",
                      std::string(traceCategoryName(cat)).c_str(),
                      static_cast<unsigned long long>(
                          tracer.categoryCount(cat)));
        out += line;
        for (unsigned e = 0; e < numTraceEvents; ++e) {
            const auto ev = static_cast<TraceEvent>(e);
            if (traceEventCategory(ev) != cat || tracer.count(ev) == 0)
                continue;
            std::snprintf(line, sizeof line, "    %-24s %10llu\n",
                          std::string(traceEventName(ev)).c_str(),
                          static_cast<unsigned long long>(
                              tracer.count(ev)));
            out += line;
        }
    }
    return out;
}

} // namespace limit::trace
