#include "trace/metrics.hh"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace limit::trace {

void
MetricsRegistry::add(std::string_view name, std::uint64_t delta)
{
    auto it = counters_.find(name);
    if (it == counters_.end())
        counters_.emplace(std::string(name), delta);
    else
        it->second += delta;
}

void
MetricsRegistry::set(std::string_view name, double value)
{
    auto it = gauges_.find(name);
    if (it == gauges_.end())
        gauges_.emplace(std::string(name), value);
    else
        it->second = value;
}

std::uint64_t
MetricsRegistry::counter(std::string_view name) const
{
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
}

double
MetricsRegistry::gauge(std::string_view name) const
{
    auto it = gauges_.find(name);
    return it == gauges_.end() ? 0.0 : it->second;
}

bool
MetricsRegistry::hasCounter(std::string_view name) const
{
    return counters_.find(name) != counters_.end();
}

bool
MetricsRegistry::hasGauge(std::string_view name) const
{
    return gauges_.find(name) != gauges_.end();
}

void
MetricsRegistry::merge(const MetricsRegistry &other)
{
    for (const auto &[name, value] : other.counters_)
        add(name, value);
    for (const auto &[name, value] : other.gauges_) {
        auto it = gauges_.find(name);
        if (it == gauges_.end())
            gauges_.emplace(name, value);
        else
            it->second = std::max(it->second, value);
    }
}

std::string
MetricsRegistry::toJson(unsigned indent) const
{
    // Counters and gauges share one sorted key space; a name used as
    // both would be ambiguous, so gauges lose the tie (counters are
    // the common case and exactly representable).
    const std::string pad(indent, ' ');
    std::ostringstream os;
    os << "{";
    bool first = true;
    auto ci = counters_.begin();
    auto gi = gauges_.begin();
    const auto emitKey = [&](const std::string &key) {
        if (!first)
            os << ",";
        first = false;
        os << "\n" << pad << "  \"" << key << "\": ";
    };
    while (ci != counters_.end() || gi != gauges_.end()) {
        const bool take_counter =
            gi == gauges_.end() ||
            (ci != counters_.end() && ci->first <= gi->first);
        if (take_counter) {
            if (gi != gauges_.end() && gi->first == ci->first)
                ++gi; // counter shadows a same-named gauge
            emitKey(ci->first);
            os << ci->second;
            ++ci;
        } else {
            emitKey(gi->first);
            char buf[64];
            std::snprintf(buf, sizeof buf, "%.6g", gi->second);
            os << buf;
            ++gi;
        }
    }
    if (!first)
        os << "\n" << pad;
    os << "}";
    return os.str();
}

} // namespace limit::trace
