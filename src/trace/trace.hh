/**
 * @file
 * Low-overhead structured tracing for the simulator itself.
 *
 * Every other layer reports *aggregate* numbers; when a bench cell
 * looks wrong the question is always "what actually happened, in
 * order?". A Tracer answers it: per-core fixed-capacity ring buffers
 * of plain typed records (no allocation, no formatting, no locking on
 * the recording path), filled from tracepoints in the kernel, the
 * CPUs, and the PEC session, and rendered after the run by the
 * exporter (Chrome trace-event JSON plus an ASCII summary).
 *
 * Recording costs one pointer test plus a handful of stores, and only
 * on already-expensive paths (context switches, syscalls, PMIs —
 * never the per-op hot path). With no tracer attached the pointer
 * test is all that remains; compiling with LIMITPP_TRACE=OFF removes
 * even that by expanding the LIMIT_TRACE macro to nothing. The class
 * definitions themselves are always compiled (keeping every TU's view
 * of the types identical); only emission is conditional.
 */

#ifndef LIMIT_TRACE_TRACE_HH
#define LIMIT_TRACE_TRACE_HH

#include <cstdint>
#include <string_view>
#include <vector>

#include "sim/types.hh"

/**
 * Master switch for tracepoint emission. The build defines it to 0
 * via the LIMITPP_TRACE=OFF CMake option; a TU may also define it
 * before including this header (the OFF-expansion unit test does).
 */
#ifndef LIMITPP_TRACE_ENABLED
#define LIMITPP_TRACE_ENABLED 1
#endif

namespace limit::trace {

/** Everything a tracepoint can report. */
enum class TraceEvent : std::uint8_t {
    // os::Kernel — scheduling and syscalls.
    ContextSwitch = 0, ///< a0 = new ThreadState, a1 = voluntary
    SyscallEnter,      ///< a0 = syscall nr, a1 = first argument
    SyscallExit,       ///< a0 = syscall nr, a1 = result
    PmiDelivered,      ///< a0 = counter, a1 = wraps
    FutexWait,         ///< a0 = futex word, a1 = 1 when EAGAIN
    FutexWake,         ///< a0 = futex word, a1 = threads woken
    // sim::Cpu / counter virtualization.
    CounterOverflow,   ///< a0 = counter, a1 = wraps (hardware wrap)
    CounterSave,       ///< a0 = enabled counters saved at switch-out
    CounterRestore,    ///< a0 = enabled counters restored at switch-in
    // pec::PecSession / RegionProfiler.
    PecReadRestart,      ///< a0 = counter (kernel-fixup rewind)
    PecDoubleCheckRetry, ///< a0 = counter (userspace retry)
    PecOverflowFixup,    ///< a0 = counter, a1 = wraps absorbed
    PecRegionEnter,      ///< a0 = region id
    PecRegionExit,       ///< a0 = region id
    // fault::PlanController — deterministic fault injection.
    FaultInjected,       ///< a0 = fault::Site, a1 = site-specific arg
    NumEvents, // must be last
};

/** Number of distinct tracepoint types. */
inline constexpr unsigned numTraceEvents =
    static_cast<unsigned>(TraceEvent::NumEvents);

/** Coarse grouping used by the exporter and the ASCII summary. */
enum class TraceCategory : std::uint8_t {
    Sched = 0,
    Syscall,
    Pmu,
    Futex,
    Pec,
    Fault,
    NumCategories, // must be last
};

/** Number of categories. */
inline constexpr unsigned numTraceCategories =
    static_cast<unsigned>(TraceCategory::NumCategories);

/** Stable lowercase-hyphen name (doubles as the JSON event name). */
std::string_view traceEventName(TraceEvent e);

/** Category of one tracepoint type. */
TraceCategory traceEventCategory(TraceEvent e);

/** Stable lowercase category name. */
std::string_view traceCategoryName(TraceCategory c);

/**
 * One tracepoint hit. Plain data, 32 bytes; the meaning of a0/a1
 * depends on the event (see TraceEvent and docs/TRACING.md).
 */
struct TraceRecord
{
    sim::Tick tick = 0;
    std::uint64_t a0 = 0;
    std::uint64_t a1 = 0;
    sim::ThreadId tid = sim::invalidThread;
    std::uint16_t core = 0;
    TraceEvent event = TraceEvent::NumEvents;
};

/**
 * Fixed-capacity overwrite-oldest ring of TraceRecords. Storage is
 * allocated once at construction; push never allocates.
 */
class Ring
{
  public:
    explicit Ring(std::size_t capacity)
        : buf_(capacity > 0 ? capacity : 1)
    {
    }

    void
    push(const TraceRecord &r)
    {
        buf_[written_ % buf_.size()] = r;
        ++written_;
    }

    std::size_t capacity() const { return buf_.size(); }

    /** Records currently held (≤ capacity). */
    std::size_t
    size() const
    {
        return written_ < buf_.size()
            ? static_cast<std::size_t>(written_)
            : buf_.size();
    }

    /** Total records ever pushed. */
    std::uint64_t written() const { return written_; }

    /** Records overwritten because the ring was full. */
    std::uint64_t
    dropped() const
    {
        return written_ > buf_.size() ? written_ - buf_.size() : 0;
    }

    /** Retained records, oldest first. */
    std::vector<TraceRecord> snapshot() const;

  private:
    std::vector<TraceRecord> buf_;
    std::uint64_t written_ = 0;
};

/**
 * The per-run trace sink: one Ring per core plus aggregate per-event
 * counts (the counts see every record, including ones the rings later
 * overwrite). Attach to a sim::Machine with setTracer(); tracepoints
 * find it through the machine.
 */
class Tracer
{
  public:
    /** Default ring capacity per core (records, 32 bytes each). */
    static constexpr std::size_t defaultCapacity = 1 << 16;

    Tracer(unsigned cores, std::size_t capacity_per_core);

    unsigned
    numCores() const
    {
        return static_cast<unsigned>(rings_.size());
    }

    const Ring &ring(unsigned core) const;

    void
    record(sim::CoreId core, TraceEvent ev, sim::Tick tick,
           sim::ThreadId tid, std::uint64_t a0 = 0, std::uint64_t a1 = 0)
    {
        TraceRecord r;
        r.tick = tick;
        r.a0 = a0;
        r.a1 = a1;
        r.tid = tid;
        r.core = static_cast<std::uint16_t>(core);
        r.event = ev;
        rings_[core].push(r);
        ++counts_[static_cast<unsigned>(ev)];
    }

    /** Hits of one tracepoint type (including overwritten records). */
    std::uint64_t
    count(TraceEvent e) const
    {
        return counts_[static_cast<unsigned>(e)];
    }

    /** Hits summed over one category. */
    std::uint64_t categoryCount(TraceCategory c) const;

    /** All hits across all cores. */
    std::uint64_t totalRecorded() const;

    /** Records lost to ring overwrite, all cores. */
    std::uint64_t totalDropped() const;

    /** Retained records from every core, merged in time order. */
    std::vector<TraceRecord> merged() const;

  private:
    std::vector<Ring> rings_;
    std::uint64_t counts_[numTraceEvents] = {};
};

} // namespace limit::trace

/**
 * Emit a tracepoint iff tracing is compiled in and `tracer_expr`
 * yields a non-null Tracer*. With LIMITPP_TRACE_ENABLED == 0 the
 * macro expands to an empty statement and evaluates nothing.
 */
#if LIMITPP_TRACE_ENABLED
#define LIMIT_TRACE(tracer_expr, ...)                                   \
    do {                                                                \
        if (::limit::trace::Tracer *limit_tracer_ = (tracer_expr))      \
            limit_tracer_->record(__VA_ARGS__);                         \
    } while (0)
#else
#define LIMIT_TRACE(tracer_expr, ...)                                   \
    do {                                                                \
    } while (0)
#endif

#endif // LIMIT_TRACE_TRACE_HH
