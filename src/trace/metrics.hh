/**
 * @file
 * Named metrics harvested into bench JSON output.
 *
 * A MetricsRegistry is a flat namespace of monotonic counters and
 * point-in-time gauges, filled after (not during) a simulation run —
 * typically from ledger totals, PEC session stats, and trace counts —
 * and rendered as one sorted JSON object so every bench's output
 * carries the same machine-readable health block. Registries from
 * ParallelRunner jobs merge deterministically: counters add, gauges
 * keep the maximum.
 *
 * Not thread-safe by design: each job owns its registry and the
 * merge happens on the coordinating thread after map() returns.
 */

#ifndef LIMIT_TRACE_METRICS_HH
#define LIMIT_TRACE_METRICS_HH

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

namespace limit::trace {

/** Flat, deterministic registry of named counters and gauges. */
class MetricsRegistry
{
  public:
    /** Add `delta` to monotonic counter `name` (created at zero). */
    void add(std::string_view name, std::uint64_t delta = 1);

    /** Set gauge `name` to `value` (overwrites). */
    void set(std::string_view name, double value);

    /** Current counter value (0 when never touched). */
    std::uint64_t counter(std::string_view name) const;

    /** Current gauge value (0.0 when never set). */
    double gauge(std::string_view name) const;

    bool hasCounter(std::string_view name) const;
    bool hasGauge(std::string_view name) const;

    bool
    empty() const
    {
        return counters_.empty() && gauges_.empty();
    }

    /** Fold another registry in: counters sum, gauges take the max. */
    void merge(const MetricsRegistry &other);

    /**
     * One JSON object, keys sorted, counters as integers and gauges
     * as doubles. `indent` spaces of leading indentation per line.
     */
    std::string toJson(unsigned indent = 0) const;

  private:
    std::map<std::string, std::uint64_t, std::less<>> counters_;
    std::map<std::string, double, std::less<>> gauges_;
};

} // namespace limit::trace

#endif // LIMIT_TRACE_METRICS_HH
