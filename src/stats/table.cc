#include "stats/table.hh"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>

#include "base/logging.hh"

namespace limit::stats {

Table &
Table::header(std::vector<std::string> cells)
{
    panic_if(cells.empty(), "empty table header");
    header_ = std::move(cells);
    return *this;
}

Table &
Table::row(std::vector<std::string> cells)
{
    panic_if(inRow_, "Table::row while a row is under construction");
    panic_if(!header_.empty() && cells.size() != header_.size(),
             "row width ", cells.size(), " != header width ",
             header_.size());
    rows_.push_back(std::move(cells));
    return *this;
}

Table &
Table::beginRow()
{
    if (inRow_) {
        // Close the previous row implicitly.
        row(std::move(pending_));
        pending_.clear();
    }
    inRow_ = true;
    return *this;
}

Table &
Table::cell(const std::string &text)
{
    panic_if(!inRow_, "Table::cell outside beginRow()");
    pending_.push_back(text);
    if (!header_.empty() && pending_.size() == header_.size()) {
        inRow_ = false;
        rows_.push_back(std::move(pending_));
        pending_.clear();
    }
    return *this;
}

Table &
Table::cell(double value, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << value;
    return cell(os.str());
}

Table &
Table::cell(std::uint64_t value)
{
    return cell(std::to_string(value));
}

Table &
Table::cell(std::int64_t value)
{
    return cell(std::to_string(value));
}

std::string
Table::render() const
{
    panic_if(inRow_, "rendering a table with an unterminated row");

    std::vector<std::size_t> widths;
    auto grow = [&](const std::vector<std::string> &cells) {
        if (widths.size() < cells.size())
            widths.resize(cells.size(), 0);
        for (std::size_t i = 0; i < cells.size(); ++i)
            widths[i] = std::max(widths[i], cells[i].size());
    };
    grow(header_);
    for (const auto &r : rows_)
        grow(r);

    auto emit = [&](std::ostringstream &os,
                    const std::vector<std::string> &cells) {
        for (std::size_t i = 0; i < cells.size(); ++i) {
            os << std::left << std::setw(static_cast<int>(widths[i]))
               << cells[i];
            if (i + 1 < cells.size())
                os << "  ";
        }
        os << '\n';
    };

    std::size_t total = 0;
    for (auto w : widths)
        total += w + 2;
    total = total >= 2 ? total - 2 : total;

    std::ostringstream os;
    os << "== " << title_ << " ==\n";
    if (!header_.empty()) {
        emit(os, header_);
        os << std::string(total, '-') << '\n';
    }
    for (const auto &r : rows_)
        emit(os, r);
    return os.str();
}

std::string
Table::renderCsv() const
{
    panic_if(inRow_, "rendering a table with an unterminated row");
    auto quote = [](const std::string &s) {
        if (s.find_first_of(",\"\n") == std::string::npos)
            return s;
        std::string out = "\"";
        for (char c : s) {
            if (c == '"')
                out += '"';
            out += c;
        }
        out += '"';
        return out;
    };
    std::ostringstream os;
    auto emit = [&](const std::vector<std::string> &cells) {
        for (std::size_t i = 0; i < cells.size(); ++i) {
            os << quote(cells[i]);
            if (i + 1 < cells.size())
                os << ',';
        }
        os << '\n';
    };
    if (!header_.empty())
        emit(header_);
    for (const auto &r : rows_)
        emit(r);
    return os.str();
}

std::string
Table::withUnit(double value, const std::string &unit, int precision)
{
    static const struct { double scale; const char *prefix; } scales[] = {
        {1e9, "G"}, {1e6, "M"}, {1e3, "k"}, {1.0, ""},
    };
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision);
    const double mag = std::fabs(value);
    for (const auto &s : scales) {
        if (mag >= s.scale || s.scale == 1.0) {
            os << value / s.scale << ' ' << s.prefix << unit;
            return os.str();
        }
    }
    return os.str();
}

} // namespace limit::stats
