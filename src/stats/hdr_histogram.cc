#include "stats/hdr_histogram.hh"

#include <algorithm>
#include <bit>
#include <cmath>
#include <sstream>

#include "base/logging.hh"

namespace limit::stats {

namespace {

/**
 * Minimal cursor over the toJson() wire format: objects, arrays and
 * unsigned integers only, whitespace-tolerant. Enough for round-trip
 * without pulling in a JSON dependency.
 */
struct Cursor
{
    std::string_view s;
    std::size_t pos = 0;

    void skipWs()
    {
        while (pos < s.size() && (s[pos] == ' ' || s[pos] == '\t' ||
                                  s[pos] == '\n' || s[pos] == '\r'))
            ++pos;
    }

    bool literal(std::string_view want)
    {
        skipWs();
        if (s.compare(pos, want.size(), want) != 0)
            return false;
        pos += want.size();
        return true;
    }

    bool uint(std::uint64_t &out)
    {
        skipWs();
        if (pos >= s.size() || s[pos] < '0' || s[pos] > '9')
            return false;
        std::uint64_t v = 0;
        while (pos < s.size() && s[pos] >= '0' && s[pos] <= '9') {
            const std::uint64_t digit = s[pos] - '0';
            if (v > (UINT64_MAX - digit) / 10)
                return false; // overflow
            v = v * 10 + digit;
            ++pos;
        }
        out = v;
        return true;
    }

    bool done()
    {
        skipWs();
        return pos == s.size();
    }
};

} // namespace

HdrHistogram::HdrHistogram(unsigned bucket_bits)
    : bucketBits_(bucket_bits)
{
    panic_if(bucket_bits < 1 || bucket_bits > 16, "bad HdrHistogram bucketBits");
    const unsigned sub = 1u << bucket_bits;
    counts_.assign(sub + (64 - bucket_bits) * sub, 0);
}

unsigned
HdrHistogram::indexFor(std::uint64_t value) const
{
    const unsigned sub = 1u << bucketBits_;
    if (value < sub)
        return static_cast<unsigned>(value);
    const unsigned exp = static_cast<unsigned>(std::bit_width(value)) - 1;
    const unsigned shift = exp - bucketBits_;
    const auto mantissa = static_cast<unsigned>(value >> shift); // [sub, 2*sub)
    return sub + shift * sub + (mantissa - sub);
}

std::uint64_t
HdrHistogram::bucketLo(unsigned idx) const
{
    const unsigned sub = 1u << bucketBits_;
    if (idx < sub)
        return idx;
    const unsigned shift = (idx - sub) / sub;
    const unsigned rem = (idx - sub) % sub;
    return static_cast<std::uint64_t>(sub + rem) << shift;
}

std::uint64_t
HdrHistogram::bucketHi(unsigned idx) const
{
    const unsigned sub = 1u << bucketBits_;
    if (idx < sub)
        return idx;
    const unsigned shift = (idx - sub) / sub;
    // lo + width - 1; computed without overflow even for the top bucket.
    return bucketLo(idx) + ((1ull << shift) - 1);
}

void
HdrHistogram::add(std::uint64_t value, std::uint64_t weight)
{
    if (weight == 0)
        return;
    counts_[indexFor(value)] += weight;
    if (total_ == 0) {
        min_ = max_ = value;
    } else {
        min_ = std::min(min_, value);
        max_ = std::max(max_, value);
    }
    total_ += weight;
    sum_ += value * weight;
}

void
HdrHistogram::merge(const HdrHistogram &other)
{
    panic_if(other.bucketBits_ != bucketBits_,
             "merging HdrHistograms of different layout");
    if (other.total_ == 0)
        return;
    for (std::size_t i = 0; i < counts_.size(); ++i)
        counts_[i] += other.counts_[i];
    if (total_ == 0) {
        min_ = other.min_;
        max_ = other.max_;
    } else {
        min_ = std::min(min_, other.min_);
        max_ = std::max(max_, other.max_);
    }
    total_ += other.total_;
    sum_ += other.sum_;
}

double
HdrHistogram::mean() const
{
    return total_ ? static_cast<double>(sum_) / static_cast<double>(total_)
                  : 0.0;
}

std::uint64_t
HdrHistogram::quantile(double q) const
{
    if (total_ == 0)
        return 0;
    q = std::clamp(q, 0.0, 1.0);
    // The q-th weighted sample, 1-based; q=0 maps to the first.
    auto target = static_cast<std::uint64_t>(
        std::ceil(q * static_cast<double>(total_)));
    target = std::clamp<std::uint64_t>(target, 1, total_);
    std::uint64_t running = 0;
    for (unsigned idx = 0; idx < counts_.size(); ++idx) {
        running += counts_[idx];
        if (running >= target)
            return std::clamp(bucketHi(idx), min_, max_);
    }
    return max_; // unreachable: total_ > 0 implies some bucket is non-empty
}

void
HdrHistogram::clear()
{
    std::fill(counts_.begin(), counts_.end(), 0);
    total_ = sum_ = min_ = max_ = 0;
}

std::string
HdrHistogram::toJson() const
{
    std::ostringstream os;
    os << "{\"bucket_bits\":" << bucketBits_ << ",\"count\":" << total_
       << ",\"sum\":" << sum_ << ",\"min\":" << minValue()
       << ",\"max\":" << maxValue() << ",\"buckets\":[";
    bool first = true;
    for (unsigned idx = 0; idx < counts_.size(); ++idx) {
        if (!counts_[idx])
            continue;
        if (!first)
            os << ',';
        first = false;
        os << '[' << idx << ',' << counts_[idx] << ']';
    }
    os << "]}";
    return os.str();
}

bool
HdrHistogram::fromJson(std::string_view text, HdrHistogram &out)
{
    Cursor c{text};
    std::uint64_t bits = 0, count = 0, sum = 0, min = 0, max = 0;
    if (!c.literal("{") || !c.literal("\"bucket_bits\"") || !c.literal(":") ||
        !c.uint(bits) || !c.literal(",") || !c.literal("\"count\"") ||
        !c.literal(":") || !c.uint(count) || !c.literal(",") ||
        !c.literal("\"sum\"") || !c.literal(":") || !c.uint(sum) ||
        !c.literal(",") || !c.literal("\"min\"") || !c.literal(":") ||
        !c.uint(min) || !c.literal(",") || !c.literal("\"max\"") ||
        !c.literal(":") || !c.uint(max) || !c.literal(",") ||
        !c.literal("\"buckets\"") || !c.literal(":") || !c.literal("["))
        return false;
    if (bits < 1 || bits > 16)
        return false;

    HdrHistogram h(static_cast<unsigned>(bits));
    std::uint64_t running = 0;
    std::uint64_t first_idx = 0, last_idx = 0;
    bool first = true;
    if (!c.literal("]")) {
        for (;;) {
            std::uint64_t idx = 0, cnt = 0;
            if (!c.literal("[") || !c.uint(idx) || !c.literal(",") ||
                !c.uint(cnt) || !c.literal("]"))
                return false;
            if (idx >= h.counts_.size() || cnt == 0)
                return false;
            if (!first && idx <= last_idx)
                return false; // buckets must be strictly ascending
            if (first)
                first_idx = idx;
            first = false;
            last_idx = idx;
            h.counts_[static_cast<unsigned>(idx)] = cnt;
            running += cnt;
            if (c.literal("]"))
                break;
            if (!c.literal(","))
                return false;
        }
    }
    if (!c.literal("}") || !c.done())
        return false;
    if (running != count)
        return false;
    // min/max must be consistent with the bucket extremes they claim.
    if (count > 0 && (min > max || h.indexFor(min) != first_idx ||
                      h.indexFor(max) != last_idx))
        return false;
    h.total_ = count;
    h.sum_ = sum;
    h.min_ = min;
    h.max_ = max;
    out = std::move(h);
    return true;
}

std::string
HdrHistogram::renderLog2(unsigned width) const
{
    // Re-group sub-buckets per power-of-two magnitude for display.
    std::vector<std::uint64_t> by_exp(64, 0);
    for (unsigned idx = 0; idx < counts_.size(); ++idx) {
        if (!counts_[idx])
            continue;
        const std::uint64_t lo = bucketLo(idx);
        const unsigned exp =
            lo <= 1 ? 0 : static_cast<unsigned>(std::bit_width(lo)) - 1;
        by_exp[exp] += counts_[idx];
    }
    std::uint64_t max_count = 0;
    unsigned first = 64, last = 0;
    for (unsigned e = 0; e < 64; ++e) {
        if (by_exp[e]) {
            max_count = std::max(max_count, by_exp[e]);
            first = std::min(first, e);
            last = std::max(last, e);
        }
    }
    if (max_count == 0)
        return "(empty histogram)\n";

    std::ostringstream os;
    for (unsigned e = first; e <= last; ++e) {
        std::ostringstream label;
        label << "[2^" << e << ", 2^" << e + 1 << ") ";
        std::string l = label.str();
        l.resize(16, ' ');
        os << l;
        const auto bar_len = static_cast<unsigned>(
            std::llround(static_cast<double>(by_exp[e]) * width /
                         static_cast<double>(max_count)));
        os << std::string(bar_len, '#');
        if (by_exp[e] > 0 && bar_len == 0)
            os << '.';
        os << ' ' << by_exp[e] << '\n';
    }
    return os.str();
}

} // namespace limit::stats
