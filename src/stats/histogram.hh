/**
 * @file
 * Fixed-layout histograms used throughout the benches.
 *
 * Two flavours:
 *   - Log2Histogram: one bucket per power of two; the natural choice
 *     for critical-section / latency distributions spanning orders of
 *     magnitude (paper-style figures).
 *   - LinearHistogram: evenly sized buckets over [lo, hi) with
 *     underflow/overflow tails.
 */

#ifndef LIMIT_STATS_HISTOGRAM_HH
#define LIMIT_STATS_HISTOGRAM_HH

#include <cstdint>
#include <string>
#include <vector>

namespace limit::stats {

/** Histogram with one bucket per power-of-two magnitude. */
class Log2Histogram
{
  public:
    /** Buckets cover [2^0, 2^maxLog2); larger samples clamp to the top. */
    explicit Log2Histogram(unsigned max_log2 = 48);

    /** Record one sample. */
    void add(std::uint64_t value) { add(value, 1); }

    /** Record a sample with a weight (e.g. pre-aggregated counts). */
    void add(std::uint64_t value, std::uint64_t weight);

    /** Merge another histogram with identical layout. */
    void merge(const Log2Histogram &other);

    /** Number of buckets (index b covers [2^b, 2^(b+1)), bucket 0 is {0,1}). */
    unsigned numBuckets() const { return static_cast<unsigned>(counts_.size()); }

    /** Weighted count in bucket b. */
    std::uint64_t bucket(unsigned b) const { return counts_.at(b); }

    /** Inclusive lower bound of bucket b. */
    static std::uint64_t bucketLo(unsigned b) { return b == 0 ? 0 : 1ull << b; }

    /** Total weighted samples. */
    std::uint64_t totalCount() const { return total_; }

    /** Sum of recorded values (weighted), for mean computation. */
    std::uint64_t totalValue() const { return sum_; }

    /** Weighted mean of samples; 0 when empty. */
    double mean() const;

    /**
     * Approximate p-quantile (q in [0,1]) assuming samples sit at their
     * bucket's geometric midpoint.
     */
    double quantile(double q) const;

    /** Reset to empty. */
    void clear();

    /**
     * Render an ASCII bar chart, one row per non-empty bucket, at most
     * `width` characters of bar.
     */
    std::string render(unsigned width = 50) const;

  private:
    std::vector<std::uint64_t> counts_;
    std::uint64_t total_ = 0;
    std::uint64_t sum_ = 0;
};

/** Evenly bucketed histogram with explicit under/overflow tails. */
class LinearHistogram
{
  public:
    /** Bucket i covers [lo + i*w, lo + (i+1)*w) with w = (hi-lo)/n. */
    LinearHistogram(double lo, double hi, unsigned num_buckets);

    void add(double value) { add(value, 1); }
    void add(double value, std::uint64_t weight);

    unsigned numBuckets() const { return static_cast<unsigned>(counts_.size()); }
    std::uint64_t bucket(unsigned b) const { return counts_.at(b); }
    std::uint64_t underflow() const { return underflow_; }
    std::uint64_t overflow() const { return overflow_; }
    std::uint64_t totalCount() const { return total_; }
    double bucketLo(unsigned b) const { return lo_ + b * width_; }
    double bucketWidth() const { return width_; }

    double mean() const { return total_ ? sum_ / static_cast<double>(total_) : 0.0; }

    void clear();

    std::string render(unsigned width = 50) const;

  private:
    double lo_;
    double width_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t underflow_ = 0;
    std::uint64_t overflow_ = 0;
    std::uint64_t total_ = 0;
    double sum_ = 0.0;
};

} // namespace limit::stats

#endif // LIMIT_STATS_HISTOGRAM_HH
