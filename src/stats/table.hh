/**
 * @file
 * Paper-style text table rendering shared by every bench binary.
 *
 * Tables are built row by row from heterogeneous cells and rendered
 * either as aligned ASCII (for terminal output) or CSV (for plotting).
 */

#ifndef LIMIT_STATS_TABLE_HH
#define LIMIT_STATS_TABLE_HH

#include <cstdint>
#include <string>
#include <vector>

namespace limit::stats {

/** Column-aligned text/CSV table builder. */
class Table
{
  public:
    /** @param title Caption printed above the rendered table. */
    explicit Table(std::string title) : title_(std::move(title)) {}

    /** Set the header row; defines the column count. */
    Table &header(std::vector<std::string> cells);

    /** Append a fully formed row (must match the header width). */
    Table &row(std::vector<std::string> cells);

    /** Begin an incremental row. */
    Table &beginRow();
    /** Append one cell to the row under construction. */
    Table &cell(const std::string &text);
    Table &cell(const char *text) { return cell(std::string(text)); }
    Table &cell(double value, int precision = 2);
    Table &cell(std::uint64_t value);
    Table &cell(std::int64_t value);
    Table &cell(int value) { return cell(static_cast<std::int64_t>(value)); }
    Table &cell(unsigned value) { return cell(static_cast<std::uint64_t>(value)); }

    std::size_t numRows() const { return rows_.size(); }

    /** Render aligned ASCII with a title and rule lines. */
    std::string render() const;

    /** Render RFC-4180-ish CSV (quotes fields containing commas). */
    std::string renderCsv() const;

    /** Format helper: engineering notation with unit suffix. */
    static std::string withUnit(double value, const std::string &unit,
                                int precision = 2);

  private:
    std::string title_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
    std::vector<std::string> pending_;
    bool inRow_ = false;
};

} // namespace limit::stats

#endif // LIMIT_STATS_TABLE_HH
