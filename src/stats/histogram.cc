#include "stats/histogram.hh"

#include <algorithm>
#include <bit>
#include <cmath>
#include <sstream>

#include "base/logging.hh"

namespace limit::stats {

namespace {

/** log2 bucket index for a value; 0 and 1 land in bucket 0. */
unsigned
log2Bucket(std::uint64_t value)
{
    if (value <= 1)
        return 0;
    return static_cast<unsigned>(std::bit_width(value) - 1);
}

std::string
barRow(const std::string &label, std::uint64_t count, std::uint64_t max_count,
       unsigned width)
{
    std::ostringstream os;
    os << label;
    const auto bar_len = max_count == 0
        ? 0u
        : static_cast<unsigned>(
              std::llround(static_cast<double>(count) * width /
                           static_cast<double>(max_count)));
    os << std::string(bar_len, '#');
    if (count > 0 && bar_len == 0)
        os << '.';
    os << ' ' << count << '\n';
    return os.str();
}

} // namespace

Log2Histogram::Log2Histogram(unsigned max_log2)
    : counts_(max_log2, 0)
{
    panic_if(max_log2 == 0 || max_log2 > 64, "bad Log2Histogram size");
}

void
Log2Histogram::add(std::uint64_t value, std::uint64_t weight)
{
    unsigned b = log2Bucket(value);
    if (b >= counts_.size())
        b = static_cast<unsigned>(counts_.size()) - 1;
    counts_[b] += weight;
    total_ += weight;
    sum_ += value * weight;
}

void
Log2Histogram::merge(const Log2Histogram &other)
{
    panic_if(other.counts_.size() != counts_.size(),
             "merging Log2Histograms of different layout");
    for (size_t i = 0; i < counts_.size(); ++i)
        counts_[i] += other.counts_[i];
    total_ += other.total_;
    sum_ += other.sum_;
}

double
Log2Histogram::mean() const
{
    return total_ ? static_cast<double>(sum_) / static_cast<double>(total_)
                  : 0.0;
}

double
Log2Histogram::quantile(double q) const
{
    if (total_ == 0)
        return 0.0;
    q = std::clamp(q, 0.0, 1.0);
    const double target = q * static_cast<double>(total_);
    double running = 0.0;
    for (unsigned b = 0; b < counts_.size(); ++b) {
        running += static_cast<double>(counts_[b]);
        if (running >= target) {
            const double lo = static_cast<double>(bucketLo(b));
            const double hi = static_cast<double>(
                b + 1 < counts_.size() ? bucketLo(b + 1) : bucketLo(b) * 2);
            return std::sqrt(std::max(lo, 1.0) * std::max(hi, 1.0));
        }
    }
    return static_cast<double>(bucketLo(numBuckets() - 1));
}

void
Log2Histogram::clear()
{
    std::fill(counts_.begin(), counts_.end(), 0);
    total_ = 0;
    sum_ = 0;
}

std::string
Log2Histogram::render(unsigned width) const
{
    std::uint64_t max_count = 0;
    unsigned first = counts_.size(), last = 0;
    for (unsigned b = 0; b < counts_.size(); ++b) {
        if (counts_[b]) {
            max_count = std::max(max_count, counts_[b]);
            first = std::min(first, b);
            last = std::max(last, b);
        }
    }
    if (max_count == 0)
        return "(empty histogram)\n";

    std::ostringstream os;
    for (unsigned b = first; b <= last; ++b) {
        std::ostringstream label;
        label << "[2^" << b << ", 2^" << b + 1 << ") ";
        std::string l = label.str();
        l.resize(16, ' ');
        os << barRow(l, counts_[b], max_count, width);
    }
    return os.str();
}

LinearHistogram::LinearHistogram(double lo, double hi, unsigned num_buckets)
    : lo_(lo), width_((hi - lo) / num_buckets), counts_(num_buckets, 0)
{
    panic_if(num_buckets == 0, "LinearHistogram with zero buckets");
    panic_if(!(hi > lo), "LinearHistogram with hi <= lo");
}

void
LinearHistogram::add(double value, std::uint64_t weight)
{
    total_ += weight;
    sum_ += value * weight;
    if (value < lo_) {
        underflow_ += weight;
        return;
    }
    const auto idx = static_cast<std::uint64_t>((value - lo_) / width_);
    if (idx >= counts_.size()) {
        overflow_ += weight;
        return;
    }
    counts_[static_cast<unsigned>(idx)] += weight;
}

void
LinearHistogram::clear()
{
    std::fill(counts_.begin(), counts_.end(), 0);
    underflow_ = overflow_ = total_ = 0;
    sum_ = 0.0;
}

std::string
LinearHistogram::render(unsigned width) const
{
    std::uint64_t max_count = std::max(underflow_, overflow_);
    for (auto c : counts_)
        max_count = std::max(max_count, c);
    if (total_ == 0)
        return "(empty histogram)\n";

    std::ostringstream os;
    if (underflow_)
        os << barRow("under           ", underflow_, max_count, width);
    for (unsigned b = 0; b < counts_.size(); ++b) {
        if (!counts_[b])
            continue;
        std::ostringstream label;
        label << "[" << bucketLo(b) << ", " << bucketLo(b) + width_ << ") ";
        std::string l = label.str();
        l.resize(16, ' ');
        os << barRow(l, counts_[b], max_count, width);
    }
    if (overflow_)
        os << barRow("over            ", overflow_, max_count, width);
    return os.str();
}

} // namespace limit::stats
