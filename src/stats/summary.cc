#include "stats/summary.hh"

#include <algorithm>
#include <cmath>

#include "base/logging.hh"

namespace limit::stats {

void
Summary::add(double x)
{
    if (n_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
}

void
Summary::merge(const Summary &other)
{
    if (other.n_ == 0)
        return;
    if (n_ == 0) {
        *this = other;
        return;
    }
    const double na = static_cast<double>(n_);
    const double nb = static_cast<double>(other.n_);
    const double delta = other.mean_ - mean_;
    const double n_total = na + nb;
    mean_ += delta * nb / n_total;
    m2_ += other.m2_ + delta * delta * na * nb / n_total;
    n_ += other.n_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

double
Summary::variance() const
{
    return n_ >= 2 ? m2_ / static_cast<double>(n_) : 0.0;
}

double
Summary::stddev() const
{
    return std::sqrt(variance());
}

void
Samples::add(double x)
{
    values_.push_back(x);
    sorted_ = false;
    summary_.add(x);
}

double
Samples::quantile(double q) const
{
    if (values_.empty())
        return 0.0;
    sortIfNeeded();
    q = std::clamp(q, 0.0, 1.0);
    const auto rank = static_cast<std::size_t>(
        q * static_cast<double>(values_.size() - 1) + 0.5);
    return values_[rank];
}

void
Samples::clear()
{
    values_.clear();
    sorted_ = true;
    summary_.clear();
}

void
Samples::sortIfNeeded() const
{
    if (!sorted_) {
        std::sort(values_.begin(), values_.end());
        sorted_ = true;
    }
}

} // namespace limit::stats
