/**
 * @file
 * HdrHistogram: exact log-bucketed histogram for profile attribution.
 *
 * Layout follows the HdrHistogram sub-bucket scheme: values below
 * 2^bucketBits get one bucket each (exact), larger values share
 * 2^bucketBits sub-buckets per power-of-two magnitude, giving a
 * bounded relative error of 2^-bucketBits on bucket boundaries while
 * counts stay simulator-exact. Unlike Log2Histogram this type is
 * serializable (JSON round-trip) and its quantiles are deterministic
 * integers — both required for bit-identical profile output merged
 * across parallel runner jobs.
 */

#ifndef LIMIT_STATS_HDR_HISTOGRAM_HH
#define LIMIT_STATS_HDR_HISTOGRAM_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace limit::stats {

/** Exact log-bucketed histogram over the full uint64 range. */
class HdrHistogram
{
  public:
    /**
     * bucket_bits B gives 2^B sub-buckets per power-of-two magnitude;
     * values below 2^B are recorded exactly. B in [1, 16].
     */
    explicit HdrHistogram(unsigned bucket_bits = 5);

    /** Record one sample. */
    void add(std::uint64_t value) { add(value, 1); }

    /** Record a sample with a weight (pre-aggregated counts). */
    void add(std::uint64_t value, std::uint64_t weight);

    /** Merge another histogram; layouts must match. */
    void merge(const HdrHistogram &other);

    unsigned bucketBits() const { return bucketBits_; }
    unsigned numBuckets() const { return static_cast<unsigned>(counts_.size()); }

    /** Weighted count in bucket idx. */
    std::uint64_t bucket(unsigned idx) const { return counts_.at(idx); }

    /** Bucket index a value lands in. */
    unsigned indexFor(std::uint64_t value) const;

    /** Inclusive lower bound of bucket idx. */
    std::uint64_t bucketLo(unsigned idx) const;

    /** Inclusive upper bound of bucket idx (no overflow at the top). */
    std::uint64_t bucketHi(unsigned idx) const;

    std::uint64_t totalCount() const { return total_; }
    std::uint64_t totalValue() const { return sum_; }

    /** Smallest / largest recorded value; 0 when empty. */
    std::uint64_t minValue() const { return total_ ? min_ : 0; }
    std::uint64_t maxValue() const { return total_ ? max_ : 0; }

    double mean() const;

    /**
     * Deterministic integer p-quantile (q in [0,1]): the inclusive
     * upper bound of the bucket holding the q-th weighted sample,
     * clamped to [minValue, maxValue]. Exact (not a bucket bound)
     * whenever the bucket is single-valued.
     */
    std::uint64_t quantile(double q) const;

    void clear();

    /**
     * Serialize to a single-line JSON object:
     *   {"bucket_bits":B,"count":N,"sum":S,"min":m,"max":M,
     *    "buckets":[[idx,count],...]}
     * Only non-empty buckets are listed, in ascending index order, so
     * equal histograms always serialize byte-identically.
     */
    std::string toJson() const;

    /**
     * Parse the toJson() format back. Returns false (leaving `out`
     * unspecified) on malformed input or layout/total mismatches.
     */
    static bool fromJson(std::string_view text, HdrHistogram &out);

    /**
     * ASCII bar chart with buckets re-grouped per power of two —
     * the paper-figure rendering E6 prints.
     */
    std::string renderLog2(unsigned width = 50) const;

    bool operator==(const HdrHistogram &other) const = default;

  private:
    unsigned bucketBits_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t total_ = 0;
    std::uint64_t sum_ = 0;
    std::uint64_t min_ = 0;
    std::uint64_t max_ = 0;
};

} // namespace limit::stats

#endif // LIMIT_STATS_HDR_HISTOGRAM_HH
