/**
 * @file
 * Streaming and exact summary statistics for experiment reporting.
 */

#ifndef LIMIT_STATS_SUMMARY_HH
#define LIMIT_STATS_SUMMARY_HH

#include <cstdint>
#include <vector>

namespace limit::stats {

/**
 * Streaming mean/variance/min/max accumulator (Welford's algorithm).
 * O(1) space; use Samples when exact quantiles are needed.
 */
class Summary
{
  public:
    /** Record one observation. */
    void add(double x);

    /** Merge another accumulator (Chan et al. parallel update). */
    void merge(const Summary &other);

    std::uint64_t count() const { return n_; }
    double mean() const { return n_ ? mean_ : 0.0; }
    double min() const { return n_ ? min_ : 0.0; }
    double max() const { return n_ ? max_ : 0.0; }
    double sum() const { return mean_ * static_cast<double>(n_); }

    /** Population variance; 0 for fewer than two samples. */
    double variance() const;

    /** Population standard deviation. */
    double stddev() const;

    void clear() { *this = Summary(); }

  private:
    std::uint64_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * Exact-quantile sample store. Keeps every observation; intended for
 * the bench harnesses where sample counts stay modest (<= millions).
 */
class Samples
{
  public:
    void add(double x);
    void reserve(std::size_t n) { values_.reserve(n); }

    std::uint64_t count() const { return values_.size(); }
    double mean() const { return summary_.mean(); }
    double min() const { return summary_.min(); }
    double max() const { return summary_.max(); }
    double stddev() const { return summary_.stddev(); }

    /** Exact q-quantile by nearest-rank; q in [0, 1]. */
    double quantile(double q) const;
    double median() const { return quantile(0.5); }

    const std::vector<double> &values() const { return values_; }
    void clear();

  private:
    void sortIfNeeded() const;

    mutable std::vector<double> values_;
    mutable bool sorted_ = true;
    Summary summary_;
};

} // namespace limit::stats

#endif // LIMIT_STATS_SUMMARY_HH
