/**
 * @file
 * PecSession: precise event counting — the paper's core contribution.
 *
 * A session programs hardware counters, installs the kernel-side
 * pieces (counter virtualization across context switches plus the
 * overflow handler), and provides the userspace fast read: a handful
 * of instructions summing a per-thread 64-bit overflow accumulator
 * with an rdpmc of the live hardware counter — no kernel crossing.
 *
 * The well-known hazard of that read is the overflow race: if the
 * counter wraps between the accumulator load and the rdpmc, the sum
 * undercounts by 2^width. The session supports four policies:
 *
 *   - None:        raw rdpmc, no virtualization. Cheapest, wraps and
 *                  leaks across threads without kernel support.
 *   - NaiveSum:    accumulator + rdpmc with no race protection;
 *                  demonstrates the rare huge undercounts.
 *   - KernelFixup: the paper's mechanism. The overflow handler checks
 *                  whether the interrupted thread was inside the read
 *                  sequence and, if so, restarts the read (modelled as
 *                  a retry loop; the real patch rewinds the PC).
 *                  Zero added cost on reads that see no overflow.
 *   - DoubleCheck: a purely-userspace alternative that re-reads the
 *                  accumulator and retries on change; a couple of
 *                  extra instructions on every read.
 */

#ifndef LIMIT_PEC_SESSION_HH
#define LIMIT_PEC_SESSION_HH

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "os/kernel.hh"
#include "sim/guest.hh"
#include "sim/task.hh"
#include "sim/types.hh"

namespace limit::pec {

/** How userspace reads survive counter overflow. */
enum class OverflowPolicy : std::uint8_t {
    None,
    NaiveSum,
    KernelFixup,
    DoubleCheck,
};

/** Short policy name for reports. */
constexpr const char *
policyName(OverflowPolicy p)
{
    switch (p) {
      case OverflowPolicy::None: return "none";
      case OverflowPolicy::NaiveSum: return "naive-sum";
      case OverflowPolicy::KernelFixup: return "kernel-fixup";
      case OverflowPolicy::DoubleCheck: return "double-check";
      default: return "?";
    }
}

/** Session-wide configuration. */
struct PecConfig
{
    OverflowPolicy policy = OverflowPolicy::KernelFixup;
};

/** One open (entered, not yet exited) segment measurement. */
struct SegFrame
{
    sim::RegionId region = sim::noRegion;
    std::array<std::uint64_t, sim::maxPmuCounters> start{};
    /** Simulated time the region was entered. */
    sim::Tick enterTick = 0;
};

/** Per-thread userspace counter page (lazily attached to a thread). */
struct PecThreadState
{
    /** 64-bit overflow accumulators, one per hardware counter. */
    std::array<std::uint64_t, sim::maxPmuCounters> ovfAccum{};
    /** Simulated address of this thread's counter page. */
    sim::Addr pageAddr = 0;
    /** Owning thread, recorded at first attach. */
    sim::ThreadId tid = sim::invalidThread;
    /** Stack of open segment measurements (nesting supported). */
    std::vector<SegFrame> segStack;
};

/** A live precise-counting session. */
class PecSession
{
  public:
    /**
     * @param kernel the OS that will virtualize counters and deliver
     *               PMIs to this session's overflow handler.
     */
    explicit PecSession(os::Kernel &kernel, const PecConfig &config = {});
    ~PecSession();

    PecSession(const PecSession &) = delete;
    PecSession &operator=(const PecSession &) = delete;

    const PecConfig &config() const { return config_; }
    os::Kernel &kernel() { return kernel_; }

    /**
     * Program hardware counter `ctr` to count `event` (starts
     * immediately, from zero, on every core and thread).
     */
    void addEvent(unsigned ctr, sim::EventType event, bool user = true,
                  bool kernel_mode = false);

    /** Stop and release counter `ctr`. */
    void removeEvent(unsigned ctr);

    /** Events currently configured (by counter index). */
    bool eventActive(unsigned ctr) const { return active_[ctr]; }

    /**
     * The fast userspace read: full virtualized 64-bit value of
     * counter `ctr` for the calling thread. Tens of nanoseconds; no
     * syscall.
     */
    sim::Task<std::uint64_t> read(sim::Guest &g, unsigned ctr);

    /**
     * Destructive-read variant (needs the PMU's destructiveRead
     * feature, hardware enhancement #2): returns the count since the
     * previous readDelta/readClear on this thread and resets it.
     */
    sim::Task<std::uint64_t> readDelta(sim::Guest &g, unsigned ctr);

    /** Per-thread state, created on first use. */
    PecThreadState &threadState(sim::GuestContext &ctx);

    /** All per-thread states created so far (diagnostics). */
    const std::vector<std::unique_ptr<PecThreadState>> &
    threadStates() const
    {
        return states_;
    }

    /**
     * Host-side harvest of one thread's full 64-bit value for counter
     * `ctr`: overflow accumulator plus the live hardware value (when
     * the thread is on a core) or its saved value (when descheduled
     * or exited). Zero cost — analysis-time use, not a guest read.
     */
    std::uint64_t threadTotal(os::Thread &thread, unsigned ctr);

    /** threadTotal summed over every thread (process-wide count). */
    std::uint64_t processTotal(unsigned ctr);

    /** @name Instrumentation-of-the-instrumentation @{ */
    /** Overflow PMIs absorbed into accumulators. */
    std::uint64_t overflowFixups() const { return fixups_; }
    /** Reads restarted by the kernel fix-up (KernelFixup policy). */
    std::uint64_t readRestarts() const { return restarts_; }
    /** Reads retried by the userspace double-check. */
    std::uint64_t doubleCheckRetries() const { return retries_; }
    /** PMIs that arrived with no thread on the core. */
    std::uint64_t orphanOverflows() const { return orphans_; }
    /** @} */

  private:
    void onOverflow(sim::Cpu &cpu, sim::GuestContext *ctx, unsigned ctr,
                    std::uint32_t wraps);

    os::Kernel &kernel_;
    PecConfig config_;
    std::array<bool, sim::maxPmuCounters> active_{};
    std::vector<std::unique_ptr<PecThreadState>> states_;
    std::uint64_t fixups_ = 0;
    std::uint64_t restarts_ = 0;
    std::uint64_t retries_ = 0;
    std::uint64_t orphans_ = 0;
};

} // namespace limit::pec

#endif // LIMIT_PEC_SESSION_HH
