#include "pec/multiplex.hh"

#include "base/logging.hh"
#include "os/sysno.hh"
#include "sim/cpu.hh"

namespace limit::pec {

MuxSession::MuxSession(os::Kernel &kernel, unsigned counter,
                       std::vector<MuxEvent> events)
    : kernel_(kernel), counter_(counter), events_(std::move(events)),
      activeTime_(events_.size(), 0)
{
    fatal_if(events_.empty(), "multiplexing over no events");
    configureCurrent();
}

MuxSession::~MuxSession()
{
    sim::CounterConfig off;
    kernel_.configureCounter(counter_, off);
}

void
MuxSession::configureCurrent()
{
    const MuxEvent &e = events_[current_];
    sim::CounterConfig cfg;
    cfg.event = e.event;
    cfg.countUser = e.user;
    cfg.countKernel = e.kernelMode;
    cfg.enabled = true;
    cfg.interruptOnOverflow = false; // wide-counter assumption
    kernel_.configureCounter(counter_, cfg); // zeroes values + saves
}

void
MuxSession::harvest(sim::Tick now)
{
    // No-double-count invariant: each thread's contribution to the
    // closing window is one continuous virtualized register — zeroed
    // everywhere (hardware and saved) by configureCounter at window
    // start, read exactly once here, from the live PMU when the
    // thread is on a core and from its saved slot otherwise. A
    // preemption inside the window moves the value through the
    // save/restore path but never duplicates it. The one way to count
    // a window twice is harvesting again without the reconfigure in
    // between, which only the post-finish path could do — rotate()
    // and finish() both refuse after finish.
    panic_if(finished_, "MuxSession harvest after finish");
    const unsigned n = kernel_.numThreads();
    if (counts_.size() < n)
        counts_.resize(n, std::vector<std::uint64_t>(events_.size(), 0));

    for (sim::ThreadId tid = 0; tid < n; ++tid) {
        os::Thread &t = kernel_.thread(tid);
        std::uint64_t v;
        sim::Cpu &home = kernel_.machine().cpu(t.ctx.lastCore);
        if (home.current() == &t.ctx) {
            v = home.pmu().read(counter_);
        } else {
            v = t.savedCounters[counter_];
        }
        counts_[tid][current_] += v;
    }
    activeTime_[current_] += now > windowStart_ ? now - windowStart_ : 0;
    windowStart_ = now;
}

sim::Task<void>
MuxSession::rotate(sim::Guest &g)
{
    panic_if(finished_, "MuxSession rotate after finish");
    // Pay for the MSR rewrites in guest time first, then perform the
    // host-side reconfiguration at that same instant. The rotator may
    // be preempted between the syscall op and the host-side harvest
    // below (quantum expiry is checked after every op); that is safe:
    // the outgoing event keeps counting into the same virtualized
    // per-thread values the harvest will read, whenever it runs.
    co_await g.syscall(os::sysPmcConfig, {1, 0, 0, 0});
    harvest(g.now());
    current_ = (current_ + 1) % events_.size();
    ++rotations_;
    configureCurrent();
}

void
MuxSession::finish(sim::Tick now)
{
    panic_if(finished_, "MuxSession::finish called twice");
    harvest(now);
    finished_ = true;
    // Stop counting: anything the machine executes after the final
    // harvest must not accumulate into values a later (buggy) harvest
    // could pick up a second time.
    sim::CounterConfig off;
    kernel_.configureCounter(counter_, off);
}

std::uint64_t
MuxSession::rawCount(sim::ThreadId tid, unsigned idx) const
{
    panic_if(idx >= events_.size(), "bad mux event index");
    if (tid >= counts_.size())
        return 0;
    return counts_[tid][idx];
}

double
MuxSession::estimate(sim::ThreadId tid, unsigned idx) const
{
    const sim::Tick active = activeTime(idx);
    if (active == 0)
        return 0.0;
    return static_cast<double>(rawCount(tid, idx)) *
           static_cast<double>(totalTime()) /
           static_cast<double>(active);
}

sim::Tick
MuxSession::activeTime(unsigned idx) const
{
    panic_if(idx >= events_.size(), "bad mux event index");
    return activeTime_[idx];
}

sim::Tick
MuxSession::totalTime() const
{
    sim::Tick t = 0;
    for (auto a : activeTime_)
        t += a;
    return t;
}

} // namespace limit::pec
