#include "pec/region.hh"

#include <algorithm>
#include <tuple>

#include "base/logging.hh"
#include "sim/cpu.hh"
#include "trace/trace.hh"

namespace limit::pec {

RegionProfiler::RegionProfiler(PecSession &session,
                               RegionProfilerConfig config)
    : session_(session), config_(std::move(config))
{
    fatal_if(config_.counters.empty(),
             "RegionProfiler needs at least one counter");
    // Fail at construction, not at the first readDelta deep inside a
    // guest coroutine: destructive reads are hardware enhancement #2
    // and need the PMU feature bit.
    fatal_if(config_.destructiveReads &&
                 !session.kernel()
                      .machine()
                      .cpu(0)
                      .pmu()
                      .features()
                      .destructiveRead,
             "RegionProfilerConfig::destructiveReads requires the "
             "destructiveRead PMU feature");
    for (unsigned c : config_.counters) {
        fatal_if(!session_.eventActive(c),
                 "RegionProfiler counter ", c, " has no active event");
    }
    bool hist_ok = false;
    for (unsigned c : config_.counters)
        hist_ok |= (c == config_.histogramCounter);
    fatal_if(!hist_ok, "histogramCounter must be one of the counters");
}

sim::Task<std::uint64_t>
RegionProfiler::readCounter(sim::Guest &g, unsigned ctr)
{
    if (config_.destructiveReads) {
        const std::uint64_t v = co_await session_.readDelta(g, ctr);
        co_return v;
    }
    const std::uint64_t v = co_await session_.read(g, ctr);
    co_return v;
}

sim::Task<void>
RegionProfiler::calibrate(sim::Guest &g)
{
    constexpr unsigned reps = 32;
    std::array<std::uint64_t, sim::maxPmuCounters> sums{};

    for (unsigned r = 0; r < reps; ++r) {
        // Snapshot the full counter sequence twice back to back, the
        // same way enter/exit will, so inter-counter skew cancels.
        std::array<std::uint64_t, sim::maxPmuCounters> first{};
        for (unsigned c : config_.counters) {
            const std::uint64_t v = co_await session_.read(g, c);
            first[c] = v;
        }
        for (unsigned c : config_.counters) {
            const std::uint64_t v = co_await session_.read(g, c);
            sums[c] += v - first[c];
        }
    }
    for (unsigned c : config_.counters)
        overhead_[c] = sums[c] / reps;
    calibrated_ = true;
}

sim::Task<void>
RegionProfiler::enter(sim::Guest &g, sim::RegionId region)
{
    PecThreadState &st = session_.threadState(g.context());
    // Keep the sampling profiler's view in sync so the same run can
    // be measured both ways (comparison experiments).
    co_await g.regionEnter(region);

    SegFrame frame;
    frame.region = region;
    frame.enterTick = g.now();
    if (config_.destructiveReads) {
        // Reset-on-read: drain whatever accumulated before the region
        // so exit's readDelta returns the segment count directly.
        for (unsigned c : config_.counters) {
            const std::uint64_t discarded = co_await readCounter(g, c);
            (void)discarded;
        }
    } else {
        for (unsigned c : config_.counters) {
            const std::uint64_t v = co_await readCounter(g, c);
            frame.start[c] = v;
        }
    }
    st.segStack.push_back(frame);
    ++open_[region];
    LIMIT_TRACE(session_.kernel().machine().tracer(),
                g.context().lastCore, trace::TraceEvent::PecRegionEnter,
                g.now(), g.tid(), region);
}

sim::Task<std::uint64_t>
RegionProfiler::exit(sim::Guest &g, sim::RegionId region)
{
    PecThreadState &st = session_.threadState(g.context());
    panic_if(st.segStack.empty(), "RegionProfiler::exit with no open "
                                  "segment in thread '",
             g.name(), "'");
    panic_if(st.segStack.back().region != region,
             "RegionProfiler::exit region mismatch in thread '",
             g.name(), "'");

    std::array<std::uint64_t, sim::maxPmuCounters> deltas{};
    const SegFrame frame = st.segStack.back();
    for (unsigned c : config_.counters) {
        const std::uint64_t v = co_await readCounter(g, c);
        deltas[c] = config_.destructiveReads ? v : v - frame.start[c];
    }
    st.segStack.pop_back();
    co_await g.regionExit();
    auto open_it = open_.find(region);
    panic_if(open_it == open_.end() || open_it->second == 0,
             "RegionProfiler open-count underflow for region ", region);
    if (--open_it->second == 0)
        open_.erase(open_it);
    LIMIT_TRACE(session_.kernel().machine().tracer(),
                g.context().lastCore, trace::TraceEvent::PecRegionExit,
                g.now(), g.tid(), region);

    RegionStats &rs = stats_[region];
    ++rs.entries;
    std::uint64_t hist_delta = 0;
    for (unsigned c : config_.counters) {
        std::uint64_t d = deltas[c];
        if (config_.subtractOverhead && calibrated_)
            d = d > overhead_[c] ? d - overhead_[c] : 0;
        rs.totals[c] += d;
        if (c == config_.histogramCounter) {
            rs.histogram.add(d);
            hist_delta = d;
        }
    }
    co_return hist_delta;
}

const RegionStats &
RegionProfiler::stats(sim::RegionId region) const
{
    static const RegionStats empty;
    auto it = stats_.find(region);
    return it == stats_.end() ? empty : it->second;
}

std::vector<sim::RegionId>
RegionProfiler::regions() const
{
    std::vector<sim::RegionId> out;
    out.reserve(stats_.size());
    for (const auto &[r, s] : stats_)
        out.push_back(r);
    return out;
}

std::vector<RegionProfiler::OpenVisit>
RegionProfiler::openRegions() const
{
    // The open visits live on the per-thread segment stacks; walk
    // them rather than the open_ tally so each visit carries its
    // owner and enter time.
    std::vector<OpenVisit> out;
    for (const auto &st : session_.threadStates()) {
        if (!st)
            continue;
        for (const SegFrame &f : st->segStack)
            out.push_back({f.region, st->tid, f.enterTick});
    }
    std::sort(out.begin(), out.end(), [](const auto &a, const auto &b) {
        return std::tie(a.region, a.tid, a.enterTick) <
               std::tie(b.region, b.tid, b.enterTick);
    });
    return out;
}

} // namespace limit::pec
