/**
 * @file
 * Umbrella header for the precise event counting (PEC) library — the
 * public API of this repository's core contribution.
 *
 * Quick tour:
 *   - PecSession  (pec/session.hh):   program counters, fast reads,
 *                                     overflow policies.
 *   - RegionProfiler (pec/region.hh): exact per-code-segment
 *                                     attribution with calibration.
 *   - MuxSession  (pec/multiplex.hh): event multiplexing and its
 *                                     estimation error.
 *
 * See examples/quickstart.cc for the minimal end-to-end flow.
 */

#ifndef LIMIT_PEC_PEC_HH
#define LIMIT_PEC_PEC_HH

#include "pec/multiplex.hh"
#include "pec/region.hh"
#include "pec/session.hh"

#endif // LIMIT_PEC_PEC_HH
