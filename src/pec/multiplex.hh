/**
 * @file
 * Time-multiplexed counting: more events than hardware counters.
 *
 * When a study needs M events but the PMU has K < M counters, the
 * classic workaround rotates event groups through the counters and
 * scales each event's raw count by the inverse of its duty cycle.
 * The paper points out that this breaks precision — the scaled value
 * is an extrapolation, not a count — which this module makes
 * measurable (experiment E10): run a workload under multiplexing and
 * compare the estimates against the simulator's exact ledger.
 */

#ifndef LIMIT_PEC_MULTIPLEX_HH
#define LIMIT_PEC_MULTIPLEX_HH

#include <cstdint>
#include <vector>

#include "os/kernel.hh"
#include "sim/task.hh"
#include "sim/types.hh"

namespace limit::pec {

/** One multiplexed event. */
struct MuxEvent
{
    sim::EventType event;
    bool user = true;
    bool kernelMode = false;
};

/**
 * Rotates a list of events through one hardware counter and produces
 * duty-cycle-scaled estimates per thread.
 *
 * A guest "rotator" thread drives rotation by calling rotate() on a
 * fixed cadence (paying the MSR-write syscall each time). Harvesting
 * reads each thread's virtualized counter value host-side, exactly
 * the way a kernel-resident multiplexer would at rotation interrupts.
 * Counters are assumed wide enough not to wrap within one window
 * (48-bit default: always true at simulation scale).
 */
class MuxSession
{
  public:
    MuxSession(os::Kernel &kernel, unsigned counter,
               std::vector<MuxEvent> events);
    ~MuxSession();

    /** Switch to the next event group (call from a guest thread). */
    sim::Task<void> rotate(sim::Guest &g);

    /** Close the final window at `now` (after the run completes). */
    void finish(sim::Tick now);

    unsigned numEvents() const
    {
        return static_cast<unsigned>(events_.size());
    }

    /** Raw (unscaled) count of event `idx` for thread `tid`. */
    std::uint64_t rawCount(sim::ThreadId tid, unsigned idx) const;

    /** Duty-cycle-scaled estimate of event `idx` for thread `tid`. */
    double estimate(sim::ThreadId tid, unsigned idx) const;

    /** Ticks during which event `idx` was actually counting. */
    sim::Tick activeTime(unsigned idx) const;

    /** Total ticks across all windows. */
    sim::Tick totalTime() const;

    std::uint64_t rotations() const { return rotations_; }

  private:
    void configureCurrent();
    void harvest(sim::Tick now);

    os::Kernel &kernel_;
    unsigned counter_;
    std::vector<MuxEvent> events_;
    unsigned current_ = 0;
    sim::Tick windowStart_ = 0;
    bool finished_ = false;
    std::uint64_t rotations_ = 0;
    std::vector<sim::Tick> activeTime_;
    /** counts_[tid][event] raw totals. */
    std::vector<std::vector<std::uint64_t>> counts_;
};

} // namespace limit::pec

#endif // LIMIT_PEC_MULTIPLEX_HH
