/**
 * @file
 * Precise per-region (code segment) attribution built on PecSession.
 *
 * This is the workflow the paper's case studies use: wrap interesting
 * code segments (lock acquisition, critical sections, event handlers)
 * in enter/exit reads, subtract the calibrated cost of the reads
 * themselves, and aggregate exact event counts per region — including
 * full distributions, which sampling profilers cannot produce for
 * segments shorter than their sampling period.
 */

#ifndef LIMIT_PEC_REGION_HH
#define LIMIT_PEC_REGION_HH

#include <array>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "pec/session.hh"
#include "stats/histogram.hh"

namespace limit::pec {

/** Exact aggregates for one region. */
struct RegionStats
{
    std::uint64_t entries = 0;
    /** Sum of per-visit deltas for each configured counter. */
    std::array<std::uint64_t, sim::maxPmuCounters> totals{};
    /** Distribution of the histogram counter's per-visit delta. */
    stats::Log2Histogram histogram{48};

    /** Mean per-visit delta of counter `ctr`. */
    double
    mean(unsigned ctr) const
    {
        return entries == 0
            ? 0.0
            : static_cast<double>(totals[ctr]) /
                  static_cast<double>(entries);
    }
};

/** Options for a RegionProfiler. */
struct RegionProfilerConfig
{
    /** Which counters to snapshot at region boundaries. */
    std::vector<unsigned> counters{0};
    /** Counter whose per-visit delta feeds the histogram. */
    unsigned histogramCounter = 0;
    /** Subtract the calibrated read overhead from each visit. */
    bool subtractOverhead = true;
    /**
     * Use destructive reads (hardware enhancement #2) instead of a
     * start/stop snapshot pair; requires the PMU feature.
     */
    bool destructiveReads = false;
};

/** Measures exact event counts for named code regions. */
class RegionProfiler
{
  public:
    RegionProfiler(PecSession &session, RegionProfilerConfig config);

    /**
     * Measure the session's read overhead in each counter's own units
     * by timing back-to-back reads; run once from any guest thread
     * before measurement (enables overhead subtraction).
     */
    sim::Task<void> calibrate(sim::Guest &g);

    /** Begin measuring `region` (regions may nest). */
    sim::Task<void> enter(sim::Guest &g, sim::RegionId region);

    /**
     * Finish the innermost open region (must be `region`) and fold
     * the deltas into its aggregates. Returns this visit's
     * (overhead-subtracted) delta of the histogram counter, so
     * callers can attribute the measurement further (e.g. per
     * call site) without a second read.
     */
    sim::Task<std::uint64_t> exit(sim::Guest &g, sim::RegionId region);

    /** Aggregates for `region` (zeros when never visited). */
    const RegionStats &stats(sim::RegionId region) const;

    /** All regions visited so far. */
    std::vector<sim::RegionId> regions() const;

    /**
     * One entered-never-exited visit: which region, which thread
     * holds it open, and when it was entered.
     */
    struct OpenVisit
    {
        sim::RegionId region = sim::noRegion;
        sim::ThreadId tid = sim::invalidThread;
        sim::Tick enterTick = 0;

        bool operator==(const OpenVisit &) const = default;
    };

    /**
     * Diagnostic: every visit still open (entered, never exited),
     * sorted by (region, tid, enterTick). A visit that never exits
     * contributes nothing to stats() — it has no delta to fold — so
     * a non-empty result means the aggregates silently miss those
     * visits (typically a guest that hit the stop request
     * mid-region). Surfacing beats dropping; prof::Report emits
     * these as their own section.
     */
    std::vector<OpenVisit> openRegions() const;

    /** Calibrated per-visit overhead for counter `ctr`. */
    std::uint64_t overhead(unsigned ctr) const { return overhead_[ctr]; }

    bool calibrated() const { return calibrated_; }

  private:
    sim::Task<std::uint64_t> readCounter(sim::Guest &g, unsigned ctr);

    PecSession &session_;
    RegionProfilerConfig config_;
    std::unordered_map<sim::RegionId, RegionStats> stats_;
    /** Currently-open visit count per region (enter - exit). */
    std::unordered_map<sim::RegionId, std::uint64_t> open_;
    std::array<std::uint64_t, sim::maxPmuCounters> overhead_{};
    bool calibrated_ = false;
};

} // namespace limit::pec

#endif // LIMIT_PEC_REGION_HH
