#include "pec/session.hh"

#include "base/logging.hh"
#include "fault/controller.hh"
#include "sim/cpu.hh"
#include "trace/trace.hh"

namespace limit::pec {

namespace {

/** Simulated VA range where per-thread counter pages live. */
constexpr sim::Addr counterPageBase = 0x7f00'0000'0000ull;

/**
 * Emit a tracepoint from guest (coroutine) context, where no Cpu
 * reference is at hand: the thread's last core supplies both the lane
 * and the clock. Parameters are deliberately [[maybe_unused]] so the
 * LIMITPP_TRACE=OFF build, where LIMIT_TRACE evaluates nothing, stays
 * warning-clean.
 */
void
traceGuest([[maybe_unused]] os::Kernel &kernel,
           [[maybe_unused]] sim::GuestContext &ctx,
           [[maybe_unused]] trace::TraceEvent ev,
           [[maybe_unused]] std::uint64_t a0,
           [[maybe_unused]] std::uint64_t a1 = 0)
{
    LIMIT_TRACE(kernel.machine().tracer(), ctx.lastCore, ev,
                kernel.machine().cpu(ctx.lastCore).now(), ctx.tid(), a0,
                a1);
}

/**
 * Report a read-window position to the fault controller, if any. Called
 * from guest context between ops: a controller mutating the machine
 * here (forcing end-of-quantum, arming an overflow) perturbs the run
 * before the read sequence's next op executes.
 */
void
faultReadStep(os::Kernel &kernel, sim::GuestContext &ctx, unsigned ctr,
              fault::ReadStep step)
{
    if (fault::FaultController *f = kernel.machine().faults())
        f->onPecReadStep(ctx, ctr, step);
}

} // namespace

PecSession::PecSession(os::Kernel &kernel, const PecConfig &config)
    : kernel_(kernel), config_(config)
{
}

PecSession::~PecSession()
{
    for (unsigned i = 0; i < sim::maxPmuCounters; ++i) {
        if (active_[i])
            removeEvent(i);
    }
}

void
PecSession::addEvent(unsigned ctr, sim::EventType event, bool user,
                     bool kernel_mode)
{
    fatal_if(ctr >= kernel_.machine().cpu(0).pmu().numCounters(),
             "PEC event on nonexistent counter ", ctr);
    sim::CounterConfig cfg;
    cfg.event = event;
    cfg.countUser = user;
    cfg.countKernel = kernel_mode;
    cfg.enabled = true;
    // Policy None leaves PMIs off: wraps pass silently, reproducing a
    // bare rdpmc without any kernel support.
    cfg.interruptOnOverflow = config_.policy != OverflowPolicy::None;
    kernel_.configureCounter(ctr, cfg);
    active_[ctr] = true;

    // Zero every thread's accumulator for a clean epoch.
    for (auto &st : states_) {
        if (st)
            st->ovfAccum[ctr] = 0;
    }

    if (cfg.interruptOnOverflow) {
        kernel_.setPmiHandler(
            ctr, [this](sim::Cpu &cpu, sim::GuestContext *ctx, unsigned c,
                        std::uint32_t wraps) {
                onOverflow(cpu, ctx, c, wraps);
            });
    }
}

void
PecSession::removeEvent(unsigned ctr)
{
    sim::CounterConfig off;
    kernel_.configureCounter(ctr, off);
    kernel_.clearPmiHandler(ctr);
    active_[ctr] = false;
}

PecThreadState &
PecSession::threadState(sim::GuestContext &ctx)
{
    if (ctx.pecThread)
        return *static_cast<PecThreadState *>(ctx.pecThread);
    auto st = std::make_unique<PecThreadState>();
    st->pageAddr = counterPageBase +
                   static_cast<sim::Addr>(ctx.tid()) * 4096;
    st->tid = ctx.tid();
    PecThreadState &ref = *st;
    states_.push_back(std::move(st));
    ctx.pecThread = &ref;
    return ref;
}

std::uint64_t
PecSession::threadTotal(os::Thread &thread, unsigned ctr)
{
    const auto *st =
        static_cast<const PecThreadState *>(thread.ctx.pecThread);
    const std::uint64_t accum = st ? st->ovfAccum[ctr] : 0;
    sim::Cpu &home = kernel_.machine().cpu(thread.ctx.lastCore);
    const std::uint64_t hw = home.current() == &thread.ctx
        ? home.pmu().read(ctr)
        : thread.savedCounters[ctr];
    return accum + hw;
}

std::uint64_t
PecSession::processTotal(unsigned ctr)
{
    std::uint64_t total = 0;
    for (unsigned t = 0; t < kernel_.numThreads(); ++t)
        total += threadTotal(kernel_.thread(t), ctr);
    return total;
}

void
PecSession::onOverflow(sim::Cpu &cpu, sim::GuestContext *ctx,
                       unsigned ctr, std::uint32_t wraps)
{
    if (!ctx) {
        // Kernel work on an idle core wrapped the counter: there is no
        // thread to credit; the count is lost (and with virtualization
        // the stale hardware value is overwritten at the next
        // switch-in anyway).
        ++orphans_;
        return;
    }
    PecThreadState &st = threadState(*ctx);
    cpu.kernelWork(cpu.costs().overflowVirtCost);
    st.ovfAccum[ctr] +=
        static_cast<std::uint64_t>(wraps) * cpu.pmu().wrapModulus();
    ++fixups_;
    LIMIT_TRACE(cpu.machine().tracer(), cpu.id(),
                trace::TraceEvent::PecOverflowFixup, cpu.now(),
                ctx->tid(), ctr, wraps);

    if (config_.policy == OverflowPolicy::KernelFixup && ctx->inPmcRead) {
        // The paper's trick: the PMI handler notices the interrupted
        // PC lies inside the read routine and rewinds it, so the read
        // re-executes with a consistent (accumulator, counter) pair.
        ctx->pmcRestartRequested = true;
        ++restarts_;
        LIMIT_TRACE(cpu.machine().tracer(), cpu.id(),
                    trace::TraceEvent::PecReadRestart, cpu.now(),
                    ctx->tid(), ctr);
    }
}

sim::Task<std::uint64_t>
PecSession::read(sim::Guest &g, unsigned ctr)
{
    PecThreadState &st = threadState(g.context());
    sim::GuestContext &ctx = g.context();
    const sim::Addr slot = st.pageAddr + ctr * 8;

    switch (config_.policy) {
      case OverflowPolicy::None: {
        // Bare rdpmc: width-limited, unvirtualized against overflow.
        faultReadStep(kernel_, ctx, ctr, fault::ReadStep::Enter);
        const std::uint64_t h = co_await g.pmcRead(ctr);
        faultReadStep(kernel_, ctx, ctr, fault::ReadStep::AfterRdpmc);
        co_return h;
      }

      case OverflowPolicy::NaiveSum: {
        faultReadStep(kernel_, ctx, ctr, fault::ReadStep::Enter);
        co_await g.load(slot); // accumulator load
        const std::uint64_t a = st.ovfAccum[ctr];
        faultReadStep(kernel_, ctx, ctr,
                      fault::ReadStep::AfterAccumLoad);
        const std::uint64_t h = co_await g.pmcRead(ctr);
        faultReadStep(kernel_, ctx, ctr, fault::ReadStep::AfterRdpmc);
        co_await g.compute(6); // sum + return
        co_return a + h;
      }

      case OverflowPolicy::KernelFixup: {
        for (;;) {
            // Entry marker (two instructions: the real routine's
            // bounds are known to the kernel by PC range).
            ctx.inPmcRead = true;
            ctx.pmcRestartRequested = false;
            faultReadStep(kernel_, ctx, ctr, fault::ReadStep::Enter);
            co_await g.compute(2);
            co_await g.load(slot);
            const std::uint64_t a = st.ovfAccum[ctr];
            faultReadStep(kernel_, ctx, ctr,
                          fault::ReadStep::AfterAccumLoad);
            const std::uint64_t h = co_await g.pmcRead(ctr);
            ctx.inPmcRead = false;
            faultReadStep(kernel_, ctx, ctr,
                          fault::ReadStep::AfterRdpmc);
            co_await g.compute(4); // sum, exit marker, return
            if (!ctx.pmcRestartRequested)
                co_return a + h;
            // An overflow landed mid-read; the kernel requested a
            // restart. Loop — the pair is re-read consistently.
        }
      }

      case OverflowPolicy::DoubleCheck: {
        for (;;) {
            faultReadStep(kernel_, ctx, ctr, fault::ReadStep::Enter);
            co_await g.load(slot);
            const std::uint64_t a1 = st.ovfAccum[ctr];
            faultReadStep(kernel_, ctx, ctr,
                          fault::ReadStep::AfterAccumLoad);
            const std::uint64_t h = co_await g.pmcRead(ctr);
            faultReadStep(kernel_, ctx, ctr,
                          fault::ReadStep::AfterRdpmc);
            co_await g.load(slot);
            const std::uint64_t a2 = st.ovfAccum[ctr];
            faultReadStep(kernel_, ctx, ctr,
                          fault::ReadStep::AfterRecheckLoad);
            co_await g.compute(6); // compare + sum + return
            if (a1 == a2)
                co_return a1 + h;
            ++retries_;
            traceGuest(kernel_, ctx,
                       trace::TraceEvent::PecDoubleCheckRetry, ctr);
        }
      }
    }
    panic("unreachable PEC policy");
}

sim::Task<std::uint64_t>
PecSession::readDelta(sim::Guest &g, unsigned ctr)
{
    fatal_if(!kernel_.machine().cpu(0).pmu().features().destructiveRead,
             "readDelta requires the destructiveRead PMU feature");
    PecThreadState &st = threadState(g.context());
    const sim::Addr slot = st.pageAddr + ctr * 8;

    // One instruction reads and clears the hardware counter; the
    // accumulator is harvested and reset alongside. Any wrap absorbed
    // by the PMI during the read is already in the accumulator by the
    // time the cleared value is returned (the PMI retires first).
    faultReadStep(kernel_, g.context(), ctr, fault::ReadStep::Enter);
    const std::uint64_t h = co_await g.pmcReadClear(ctr);
    faultReadStep(kernel_, g.context(), ctr,
                  fault::ReadStep::AfterRdpmc);
    co_await g.load(slot);
    const std::uint64_t a = st.ovfAccum[ctr];
    st.ovfAccum[ctr] = 0;
    co_await g.compute(3); // zero the slot, sum, return
    co_return a + h;
}

} // namespace limit::pec
