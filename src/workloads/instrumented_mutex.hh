/**
 * @file
 * A futex mutex with optional precise instrumentation of its
 * acquisition cost and hold duration — the way the paper instruments
 * pthread locks in MySQL/Apache/Firefox.
 *
 * Two regions are created per lock: "<name>.acquire" covers the lock
 * call itself (fast-path CAS through futex sleeps) and "<name>.held"
 * covers the critical section. With no profiler attached the wrapper
 * adds zero guest work, giving the uninstrumented baseline.
 *
 * When a prof::SyncProfile is also attached, each acquire/release is
 * attributed host-side to (lock address, acquire call site): the
 * region exit's overhead-subtracted counter delta becomes the wait
 * (resp. hold) sample, the futex-wait count from Mutex::lock marks
 * contention, and the owner observed at entry forms the waiter→owner
 * edge for the longest-waiter-chain report. Attribution is entirely
 * host-side bookkeeping — the guest instruction stream is identical
 * with or without a SyncProfile attached.
 */

#ifndef LIMIT_WORKLOADS_INSTRUMENTED_MUTEX_HH
#define LIMIT_WORKLOADS_INSTRUMENTED_MUTEX_HH

#include <string>

#include "pec/region.hh"
#include "prof/sync_profile.hh"
#include "sim/region_table.hh"
#include "sync/mutex.hh"

namespace limit::workloads {

/** Mutex wrapper with paper-style acquire/held instrumentation. */
class InstrumentedMutex
{
  public:
    InstrumentedMutex(sim::Addr addr, const std::string &name,
                      sim::RegionTable &regions)
        : mutex_(addr), name_(name),
          acquireRegion_(regions.intern(name + ".acquire")),
          heldRegion_(regions.intern(name + ".held"))
    {}

    /** Enable measurement through `profiler` (nullptr disables). */
    void attachProfiler(pec::RegionProfiler *profiler)
    {
        profiler_ = profiler;
    }

    /**
     * Enable per-call-site attribution (nullptr disables). Without a
     * RegionProfiler also attached, acquisitions/contention/edges are
     * still recorded but wait/hold cycle samples are zero.
     */
    void attachSyncProfile(prof::SyncProfile *sync) { sync_ = sync; }

    /**
     * Acquire, measuring acquisition and opening the held region.
     * `site` labels the caller for attribution (prof::noCallSite
     * groups all unlabelled callers).
     */
    sim::Task<void>
    lock(sim::Guest &g, prof::CallSiteId site = prof::noCallSite)
    {
        // Read before the lock attempt: whoever holds the lock when we
        // arrive is whom a contended acquisition waited on. The owner
        // can hand off while we sleep, so the edge names the owner at
        // entry (documented approximation).
        const sim::ThreadId owner_at_entry = owner_;

        if (profiler_ == nullptr) {
            const std::uint64_t w = co_await mutex_.lock(g);
            if (sync_ != nullptr) {
                sync_->onAcquire(mutex_.addr(), name_, site, g.tid(),
                                 owner_at_entry, 0, w);
            }
            owner_ = g.tid();
            ownerSite_ = site;
            co_return;
        }
        co_await profiler_->enter(g, acquireRegion_);
        const std::uint64_t w = co_await mutex_.lock(g);
        const std::uint64_t wait =
            co_await profiler_->exit(g, acquireRegion_);
        if (sync_ != nullptr) {
            sync_->onAcquire(mutex_.addr(), name_, site, g.tid(),
                             owner_at_entry, wait, w);
        }
        owner_ = g.tid();
        ownerSite_ = site;
        co_await profiler_->enter(g, heldRegion_);
    }

    /** Release, closing the held region. */
    sim::Task<void>
    unlock(sim::Guest &g)
    {
        // The hold is attributed to the acquiring call site: "who held
        // this lock" is a property of where it was taken.
        const prof::CallSiteId site = ownerSite_;
        owner_ = sim::invalidThread;
        ownerSite_ = prof::noCallSite;
        if (profiler_ == nullptr) {
            if (sync_ != nullptr)
                sync_->onRelease(mutex_.addr(), site, 0);
            co_await mutex_.unlock(g);
            co_return;
        }
        const std::uint64_t held =
            co_await profiler_->exit(g, heldRegion_);
        if (sync_ != nullptr)
            sync_->onRelease(mutex_.addr(), site, held);
        co_await mutex_.unlock(g);
    }

    sync::Mutex &raw() { return mutex_; }
    const std::string &name() const { return name_; }
    sim::RegionId acquireRegion() const { return acquireRegion_; }
    sim::RegionId heldRegion() const { return heldRegion_; }
    std::uint64_t acquisitions() const { return mutex_.acquisitions(); }

  private:
    sync::Mutex mutex_;
    std::string name_;
    sim::RegionId acquireRegion_;
    sim::RegionId heldRegion_;
    pec::RegionProfiler *profiler_ = nullptr;
    prof::SyncProfile *sync_ = nullptr;
    /** Host-side shadow of the current holder (for wait edges). */
    sim::ThreadId owner_ = sim::invalidThread;
    prof::CallSiteId ownerSite_ = prof::noCallSite;
};

} // namespace limit::workloads

#endif // LIMIT_WORKLOADS_INSTRUMENTED_MUTEX_HH
