/**
 * @file
 * A futex mutex with optional precise instrumentation of its
 * acquisition cost and hold duration — the way the paper instruments
 * pthread locks in MySQL/Apache/Firefox.
 *
 * Two regions are created per lock: "<name>.acquire" covers the lock
 * call itself (fast-path CAS through futex sleeps) and "<name>.held"
 * covers the critical section. With no profiler attached the wrapper
 * adds zero guest work, giving the uninstrumented baseline.
 */

#ifndef LIMIT_WORKLOADS_INSTRUMENTED_MUTEX_HH
#define LIMIT_WORKLOADS_INSTRUMENTED_MUTEX_HH

#include <string>

#include "pec/region.hh"
#include "sim/region_table.hh"
#include "sync/mutex.hh"

namespace limit::workloads {

/** Mutex wrapper with paper-style acquire/held instrumentation. */
class InstrumentedMutex
{
  public:
    InstrumentedMutex(sim::Addr addr, const std::string &name,
                      sim::RegionTable &regions)
        : mutex_(addr),
          acquireRegion_(regions.intern(name + ".acquire")),
          heldRegion_(regions.intern(name + ".held"))
    {}

    /** Enable measurement through `profiler` (nullptr disables). */
    void attachProfiler(pec::RegionProfiler *profiler)
    {
        profiler_ = profiler;
    }

    /** Acquire, measuring acquisition and opening the held region. */
    sim::Task<void>
    lock(sim::Guest &g)
    {
        if (profiler_ == nullptr) {
            const std::uint64_t w = co_await mutex_.lock(g);
            (void)w;
            co_return;
        }
        co_await profiler_->enter(g, acquireRegion_);
        const std::uint64_t w = co_await mutex_.lock(g);
        (void)w;
        co_await profiler_->exit(g, acquireRegion_);
        co_await profiler_->enter(g, heldRegion_);
    }

    /** Release, closing the held region. */
    sim::Task<void>
    unlock(sim::Guest &g)
    {
        if (profiler_ == nullptr) {
            co_await mutex_.unlock(g);
            co_return;
        }
        co_await profiler_->exit(g, heldRegion_);
        co_await mutex_.unlock(g);
    }

    sync::Mutex &raw() { return mutex_; }
    sim::RegionId acquireRegion() const { return acquireRegion_; }
    sim::RegionId heldRegion() const { return heldRegion_; }
    std::uint64_t acquisitions() const { return mutex_.acquisitions(); }

  private:
    sync::Mutex mutex_;
    sim::RegionId acquireRegion_;
    sim::RegionId heldRegion_;
    pec::RegionProfiler *profiler_ = nullptr;
};

} // namespace limit::workloads

#endif // LIMIT_WORKLOADS_INSTRUMENTED_MUTEX_HH
