#include "workloads/oltp.hh"

#include <bit>

#include "base/logging.hh"
#include "os/sysno.hh"

namespace limit::workloads {

namespace {

/** Per-level fan-out of the simulated B-tree. */
constexpr std::uint64_t btreeFanout = 64;

/** Cheap mixing for node addresses. */
std::uint64_t
mix(std::uint64_t x)
{
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdull;
    x ^= x >> 33;
    return x;
}

} // namespace

OltpServer::OltpServer(sim::Machine &machine, os::Kernel &kernel,
                       const OltpConfig &config, std::uint64_t seed)
    : machine_(machine), kernel_(kernel), config_(config), rng_(seed)
{
    fatal_if(config.clients == 0, "OLTP with no clients");
    fatal_if(config.tables == 0, "OLTP with no tables");
    fatal_if(config.rowsPerTable < btreeFanout, "table too small");
    fatal_if(config.opsMin == 0 || config.opsMin > config.opsMax,
             "bad ops range");
    fatal_if(config.scanSpan == 0 ||
                 config.scanSpan >= config.rowsPerTable,
             "scan span must be in [1, rowsPerTable)");

    // Index depth: levels needed at fan-out 64.
    indexDepth_ = 1;
    std::uint64_t reach = btreeFanout;
    while (reach < config.rowsPerTable) {
        reach *= btreeFanout;
        ++indexDepth_;
    }

    for (unsigned t = 0; t < config.tables; ++t) {
        // Index: one 64B node per fan-out group, all levels packed.
        const std::uint64_t index_nodes =
            config.rowsPerTable / (btreeFanout / 2) + btreeFanout;
        indexRegions_.push_back(
            {addressSpace_.allocate(index_nodes * 64, 4096),
             index_nodes * 64});
        // Rows: 128 B each.
        rowRegions_.push_back(
            {addressSpace_.allocate(config.rowsPerTable * 128, 4096),
             config.rowsPerTable * 128});
    }
    logRegion_ = {addressSpace_.allocate(1 << 20, 4096), 1 << 20};

    auto &regions = machine.regions();
    const unsigned total_stripes = config.tables * config.lockStripes;
    stripes_.reserve(total_stripes);
    for (unsigned i = 0; i < total_stripes; ++i) {
        stripes_.push_back(std::make_unique<InstrumentedMutex>(
            addressSpace_.allocate(64, 64), "oltp.row-lock", regions));
    }
    wal_ = std::make_unique<InstrumentedMutex>(
        addressSpace_.allocate(64, 64), "oltp.wal", regions);
    for (unsigned t = 0; t < config.tables; ++t) {
        indexLocks_.push_back(std::make_unique<sync::RwLock>(
            addressSpace_.allocate(64, 64)));
    }
}

void
OltpServer::attachProfiler(pec::RegionProfiler *profiler)
{
    for (auto &s : stripes_)
        s->attachProfiler(profiler);
    wal_->attachProfiler(profiler);
}

void
OltpServer::attachSyncProfile(prof::SyncProfile *sync)
{
    if (sync != nullptr) {
        siteUpdate_ = sync->internSite("OltpServer::runTransaction/update");
        siteWal_ = sync->internSite("OltpServer::runTransaction/wal-append");
    }
    for (auto &s : stripes_)
        s->attachSyncProfile(sync);
    wal_->attachSyncProfile(sync);
}

void
OltpServer::spawn()
{
    for (unsigned i = 0; i < config_.clients; ++i) {
        tids_.push_back(kernel_.spawn(
            "oltp-client" + std::to_string(i),
            [this](sim::Guest &g) -> sim::Task<void> {
                co_await clientBody(g);
            }));
    }
}

sim::Task<void>
OltpServer::clientBody(sim::Guest &g)
{
    while (!g.shouldStop()) {
        co_await runTransaction(g);
        ++committed_;
    }
}

sim::Task<void>
OltpServer::indexWalk(sim::Guest &g, unsigned table, std::uint64_t row)
{
    // Walk from the (always hot) root toward the leaf: level l has
    // fanout^l reachable nodes, so upper levels hit in cache and the
    // leaf level misses for large tables.
    const mem::Region &index = indexRegions_[table];
    const std::uint64_t nodes = index.bytes / 64;
    std::uint64_t span = 1;
    for (unsigned level = 0; level < indexDepth_; ++level) {
        const std::uint64_t node =
            mix(row / std::max<std::uint64_t>(
                          1, config_.rowsPerTable / span) +
                (static_cast<std::uint64_t>(level) << 40) + table) %
            std::min(span, nodes);
        co_await g.load(index.base + node * 64);
        // Binary search within the node.
        co_await g.compute(90);
        span *= btreeFanout;
    }
}

sim::Task<void>
OltpServer::runTransaction(sim::Guest &g)
{
    Rng &rng = g.rng();

    if (config_.networkIo) {
        // Receive the client request.
        co_await g.syscall(os::sysIoSubmit,
                           {config_.netLatency, 0, 0, 0});
        co_await g.compute(4200); // parse + plan the SQL-ish request
    }

    const unsigned ops =
        static_cast<unsigned>(rng.range(config_.opsMin, config_.opsMax));
    for (unsigned op = 0; op < ops; ++op) {
        const unsigned table =
            static_cast<unsigned>(rng.below(config_.tables));
        const std::uint64_t row =
            rng.zipf(config_.rowsPerTable, config_.skew);
        sync::RwLock &index_lock = *indexLocks_[table];

        if (rng.chance(config_.scanRatio)) {
            // Range scan: walk to the leaf under the shared index
            // latch, then stream consecutive rows.
            const std::uint64_t w = co_await index_lock.readLock(g);
            (void)w;
            co_await indexWalk(g, table, row);
            const mem::Region &rows = rowRegions_[table];
            const std::uint64_t start =
                row % (config_.rowsPerTable - config_.scanSpan);
            for (unsigned i = 0; i < config_.scanSpan; ++i) {
                co_await g.load(rows.base + (start + i) * 128);
                co_await g.compute(36); // tuple qualify + aggregate
            }
            co_await index_lock.readUnlock(g);
            ++scans_;
            ++operations_;
            if (config_.opHook && operations_ % config_.hookEvery == 0)
                co_await config_.opHook(g);
            continue;
        }

        const bool is_read = rng.chance(config_.readRatio);
        {
            const std::uint64_t w = co_await index_lock.readLock(g);
            (void)w;
            co_await indexWalk(g, table, row);
            co_await index_lock.readUnlock(g);
        }

        const mem::Region &rows = rowRegions_[table];
        const sim::Addr row_addr = rows.base + row * 128;
        if (is_read) {
            // Read the row outside any lock (MVCC-style read).
            co_await g.load(row_addr);
            co_await g.load(row_addr + 64);
            co_await g.compute(1400); // predicate evaluation, copy-out
        } else {
            InstrumentedMutex &stripe =
                *stripes_[table * config_.lockStripes +
                          static_cast<unsigned>(
                              row % config_.lockStripes)];
            co_await stripe.lock(g, siteUpdate_);
            // Short critical section: modify the row in place.
            co_await g.load(row_addr);
            co_await g.store(row_addr);
            co_await g.store(row_addr + 64);
            co_await g.compute(700);
            co_await stripe.unlock(g);

            // Append to the write-ahead log (global lock, very short).
            co_await wal_->lock(g, siteWal_);
            const sim::Addr slot =
                logRegion_.base + (logOffset_ % logRegion_.bytes);
            logOffset_ += 128;
            co_await g.store(slot);
            co_await g.store(slot + 64);
            co_await g.compute(260);
            co_await wal_->unlock(g);

            if (g.rng().chance(config_.splitProb)) {
                // Leaf split: restructure the index under the
                // exclusive latch (rare but heavy, blocks scanners).
                const std::uint64_t w =
                    co_await index_lock.writeLock(g);
                (void)w;
                const mem::Region &index = indexRegions_[table];
                for (int n = 0; n < 4; ++n) {
                    co_await g.store(
                        index.base + ((row + n) * 64) %
                                         index.bytes);
                }
                co_await g.compute(900); // redistribute keys
                co_await index_lock.writeUnlock(g);
                ++splits_;
            }
        }
        ++operations_;
        if (config_.opHook && operations_ % config_.hookEvery == 0)
            co_await config_.opHook(g);
    }

    if (config_.networkIo) {
        co_await g.compute(2600); // serialize the response
        co_await g.syscall(os::sysIoSubmit,
                           {config_.netLatency, 0, 0, 0});
    }
}

} // namespace limit::workloads
