/**
 * @file
 * WebServer: an Apache-class synthetic web server.
 *
 * An acceptor thread queues connections; a worker pool parses each
 * request, probes a shared in-memory content cache (striped locks,
 * Zipf-distributed URLs), fetches from "disk" on a miss, sends the
 * response, and appends to a globally locked access log. The
 * syscall-dense request path gives the large kernel-instruction share
 * the paper reports for server workloads, and the producer/consumer
 * queue provides classic condvar synchronization.
 */

#ifndef LIMIT_WORKLOADS_WEBSERVER_HH
#define LIMIT_WORKLOADS_WEBSERVER_HH

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "mem/address_stream.hh"
#include "os/kernel.hh"
#include "sync/condvar.hh"
#include "workloads/instrumented_mutex.hh"

namespace limit::workloads {

/** Web-server parameters. */
struct WebConfig
{
    unsigned workers = 8;
    /** Distinct cacheable documents. */
    std::uint64_t documents = 4096;
    /** Zipf skew of document popularity. */
    double skew = 1.0;
    /** Probability a probed document is already cached. */
    double hitRatio = 0.85;
    unsigned cacheStripes = 16;
    /** Inter-arrival of connections at the acceptor, in ticks. */
    sim::Tick arrivalGap = 4'000;
    /** Socket operation latency. */
    sim::Tick netLatency = 15'000;
    /** Disk fetch latency on cache miss. */
    sim::Tick diskLatency = 120'000;
};

/** The server: acceptor + worker pool. */
class WebServer
{
  public:
    WebServer(sim::Machine &machine, os::Kernel &kernel,
              const WebConfig &config, std::uint64_t seed);

    void attachProfiler(pec::RegionProfiler *profiler);

    /** Attribute lock traffic per call site into `sync`. */
    void attachSyncProfile(prof::SyncProfile *sync);

    void spawn();

    const WebConfig &config() const { return config_; }
    std::uint64_t served() const { return served_; }
    std::uint64_t cacheMisses() const { return cacheMisses_; }

    InstrumentedMutex &logLock() { return *logLock_; }
    const std::vector<std::unique_ptr<InstrumentedMutex>> &
    cacheLocks() const
    {
        return cacheLocks_;
    }

    const std::vector<sim::ThreadId> &workerTids() const { return tids_; }
    sim::ThreadId acceptorTid() const { return acceptorTid_; }

  private:
    sim::Task<void> acceptorBody(sim::Guest &g);
    sim::Task<void> workerBody(sim::Guest &g);
    sim::Task<void> handleRequest(sim::Guest &g, std::uint64_t conn);

    sim::Machine &machine_;
    os::Kernel &kernel_;
    WebConfig config_;
    Rng rng_;
    mem::AddressSpace addressSpace_;

    mem::Region cacheRegion_;
    mem::Region logRegion_;
    std::uint64_t logOffset_ = 0;

    /**
     * The connection queue uses an uninstrumented mutex: CondVar::wait
     * releases/re-acquires the raw lock internally, which would tear
     * an instrumented "held" region (per-thread region frames must
     * nest). The cache stripes and the log lock carry instrumentation.
     */
    std::unique_ptr<sync::Mutex> queueMutex_;
    std::unique_ptr<sync::CondVar> queueCv_;
    std::deque<std::uint64_t> connQueue_; // host-side payloads
    std::vector<std::unique_ptr<InstrumentedMutex>> cacheLocks_;
    std::unique_ptr<InstrumentedMutex> logLock_;

    std::vector<sim::ThreadId> tids_;
    sim::ThreadId acceptorTid_ = sim::invalidThread;

    std::uint64_t served_ = 0;
    std::uint64_t cacheMisses_ = 0;
    std::uint64_t accepted_ = 0;

    prof::CallSiteId siteProbe_ = prof::noCallSite;
    prof::CallSiteId siteInstall_ = prof::noCallSite;
    prof::CallSiteId siteLog_ = prof::noCallSite;
};

} // namespace limit::workloads

#endif // LIMIT_WORKLOADS_WEBSERVER_HH
