#include "workloads/kernels.hh"

#include "base/logging.hh"

namespace limit::workloads {

ComputeKernel::ComputeKernel(os::Kernel &kernel, KernelKind kind,
                             std::uint64_t working_set_bytes,
                             std::uint64_t seed)
    : kernel_(kernel), kind_(kind), seed_(seed)
{
    fatal_if(working_set_bytes < 64 * 1024, "working set too small");
    data_ = {addressSpace_.allocate(working_set_bytes, 4096),
             working_set_bytes};
    hot_ = {addressSpace_.allocate(32 * 1024, 4096), 32 * 1024};
}

void
ComputeKernel::spawn()
{
    // Kernel bodies touch only this object's per-instance state between
    // ops, so they satisfy the parallelSafe host-state contract and may
    // run on leased cores under sharded execution.
    tid_ = kernel_.spawn(
        std::string(kernelName(kind_)),
        [this](sim::Guest &g) -> sim::Task<void> { co_await body(g); },
        /*parallel_safe=*/true);
}

sim::Task<void>
ComputeKernel::body(sim::Guest &g)
{
    switch (kind_) {
      case KernelKind::Stream: {
        sim::ComputeProfile p;
        p.branchFrac = 0.06;
        p.mispredictRate = 0.005;
        mem::StrideStream in(data_, 8);
        mem::StrideStream out(data_, 8);
        out.next(); // offset the two streams
        while (!g.shouldStop()) {
            for (int i = 0; i < 64; ++i) {
                const sim::Addr a = in.next();
                co_await g.load(a);
                const sim::Addr b = out.next();
                co_await g.store(b);
                co_await g.compute(6, p);
            }
            ++iterations_;
        }
        co_return;
      }

      case KernelKind::PtrChase: {
        mem::PointerChaseStream chase(data_, Rng(seed_));
        while (!g.shouldStop()) {
            for (int i = 0; i < 64; ++i) {
                const sim::Addr a = chase.next();
                co_await g.load(a);
                co_await g.compute(4);
            }
            ++iterations_;
        }
        co_return;
      }

      case KernelKind::MatMul: {
        sim::ComputeProfile p;
        p.branchFrac = 0.04;
        p.mispredictRate = 0.002;
        mem::StrideStream tile(hot_, 64);
        while (!g.shouldStop()) {
            for (int i = 0; i < 16; ++i) {
                const sim::Addr a = tile.next();
                co_await g.load(a);
                co_await g.compute(120, p); // FMA-dense inner block
            }
            ++iterations_;
        }
        co_return;
      }

      case KernelKind::SortLike: {
        sim::ComputeProfile p;
        p.branchFrac = 0.28;
        p.mispredictRate = 0.12; // data-dependent compares
        mem::UniformStream pick(data_, Rng(seed_));
        while (!g.shouldStop()) {
            for (int i = 0; i < 48; ++i) {
                const sim::Addr a = pick.next();
                co_await g.load(a);
                co_await g.compute(18, p);
            }
            ++iterations_;
        }
        co_return;
      }
    }
    panic("unknown kernel kind");
}

} // namespace limit::workloads
