/**
 * @file
 * SPEC-class single-threaded compute kernels.
 *
 * Used as the "traditional benchmark" side of the paper's comparison
 * between web-era applications and conventional CPU suites: regular
 * memory behaviour, no synchronization, no kernel interaction.
 */

#ifndef LIMIT_WORKLOADS_KERNELS_HH
#define LIMIT_WORKLOADS_KERNELS_HH

#include <cstdint>

#include "mem/address_stream.hh"
#include "os/kernel.hh"

namespace limit::workloads {

/** Available kernel flavours. */
enum class KernelKind : std::uint8_t {
    Stream,   ///< streaming loads/stores, prefetch-friendly
    PtrChase, ///< dependent random loads, cache-hostile
    MatMul,   ///< blocked compute with a small hot working set
    SortLike, ///< branchy compare-heavy work with random access
};

/** Display name for reports. */
constexpr const char *
kernelName(KernelKind k)
{
    switch (k) {
      case KernelKind::Stream: return "stream";
      case KernelKind::PtrChase: return "ptrchase";
      case KernelKind::MatMul: return "matmul";
      case KernelKind::SortLike: return "sortlike";
      default: return "?";
    }
}

/** One single-threaded kernel instance. */
class ComputeKernel
{
  public:
    ComputeKernel(os::Kernel &kernel, KernelKind kind,
                  std::uint64_t working_set_bytes, std::uint64_t seed);

    /** Spawn the kernel thread (runs until shouldStop()). */
    void spawn();

    KernelKind kind() const { return kind_; }
    sim::ThreadId tid() const { return tid_; }
    std::uint64_t iterations() const { return iterations_; }

  private:
    sim::Task<void> body(sim::Guest &g);

    os::Kernel &kernel_;
    KernelKind kind_;
    mem::AddressSpace addressSpace_;
    mem::Region data_;
    mem::Region hot_;
    std::uint64_t seed_;
    sim::ThreadId tid_ = sim::invalidThread;
    std::uint64_t iterations_ = 0;
};

} // namespace limit::workloads

#endif // LIMIT_WORKLOADS_KERNELS_HH
