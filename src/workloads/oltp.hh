/**
 * @file
 * OltpServer: a MySQL-class synthetic OLTP engine.
 *
 * Client threads execute short transactions against striped tables:
 * B-tree index walks (hot upper levels, cold leaves), row reads and
 * updates under striped row locks, and write-ahead-log appends under
 * a global log lock — the fine-grained, many-short-critical-sections
 * locking structure whose behaviour the paper's MySQL case study
 * characterizes. Optional per-transaction network I/O gives the
 * kernel-time profile of a socket-fed database server.
 */

#ifndef LIMIT_WORKLOADS_OLTP_HH
#define LIMIT_WORKLOADS_OLTP_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "mem/address_stream.hh"
#include "os/kernel.hh"
#include "sync/rwlock.hh"
#include "workloads/instrumented_mutex.hh"

namespace limit::workloads {

/** OLTP engine parameters. */
struct OltpConfig
{
    unsigned clients = 8;
    unsigned tables = 8;
    /** Row-lock stripes per table. */
    unsigned lockStripes = 16;
    /** Rows per table (sets index depth and leaf working set). */
    std::uint64_t rowsPerTable = 1 << 16;
    /** Zipf skew of row selection. */
    double skew = 0.9;
    /** Fraction of operations that only read. */
    double readRatio = 0.7;
    /** Fraction of operations that are index range scans. */
    double scanRatio = 0.12;
    /** Rows touched by one range scan. */
    unsigned scanSpan = 32;
    /** Probability a write also restructures the index (node split),
        taking the table's index lock exclusively. */
    double splitProb = 0.03;
    /** Operations per transaction: uniform in [min, max]. */
    unsigned opsMin = 1;
    unsigned opsMax = 4;
    /** Simulate client socket recv/send around each transaction. */
    bool networkIo = true;
    /** Device latency of one socket operation, in ticks. */
    sim::Tick netLatency = 20'000;
    /**
     * Optional per-operation instrumentation hook (e.g. a counter
     * read for the overhead-scaling experiment); awaited after every
     * `hookEvery`-th operation when set.
     */
    std::function<sim::Task<void>(sim::Guest &)> opHook;
    unsigned hookEvery = 1;
};

/** The engine: construct, optionally attach a profiler, spawn. */
class OltpServer
{
  public:
    OltpServer(sim::Machine &machine, os::Kernel &kernel,
               const OltpConfig &config, std::uint64_t seed);

    /** Route all lock instrumentation through `profiler`. */
    void attachProfiler(pec::RegionProfiler *profiler);

    /** Attribute lock traffic per call site into `sync`. */
    void attachSyncProfile(prof::SyncProfile *sync);

    /** Create the client threads (they run until shouldStop()). */
    void spawn();

    const OltpConfig &config() const { return config_; }

    /** Committed transactions (host-side, zero cost). */
    std::uint64_t committed() const { return committed_; }
    /** Executed operations. */
    std::uint64_t operations() const { return operations_; }
    /** Range scans executed. */
    std::uint64_t scans() const { return scans_; }
    /** Index node splits executed (exclusive index lock held). */
    std::uint64_t splits() const { return splits_; }

    /** Lock inventory for reporting. */
    InstrumentedMutex &walLock() { return *wal_; }
    const std::vector<std::unique_ptr<InstrumentedMutex>> &
    stripeLocks() const
    {
        return stripes_;
    }

    /** Thread ids of the spawned clients. */
    const std::vector<sim::ThreadId> &clientTids() const { return tids_; }

  private:
    sim::Task<void> clientBody(sim::Guest &g);
    sim::Task<void> runTransaction(sim::Guest &g);
    sim::Task<void> indexWalk(sim::Guest &g, unsigned table,
                              std::uint64_t row);

    sim::Machine &machine_;
    os::Kernel &kernel_;
    OltpConfig config_;
    Rng rng_;
    mem::AddressSpace addressSpace_;

    unsigned indexDepth_;
    std::vector<mem::Region> indexRegions_; // one per table
    std::vector<mem::Region> rowRegions_;   // one per table
    mem::Region logRegion_;
    std::uint64_t logOffset_ = 0;

    std::vector<std::unique_ptr<InstrumentedMutex>> stripes_;
    std::unique_ptr<InstrumentedMutex> wal_;
    /** Per-table reader-writer index latch (shared walks, exclusive
        structural modification). */
    std::vector<std::unique_ptr<sync::RwLock>> indexLocks_;
    std::vector<sim::ThreadId> tids_;

    std::uint64_t committed_ = 0;
    std::uint64_t operations_ = 0;
    std::uint64_t scans_ = 0;
    std::uint64_t splits_ = 0;

    /** Interned acquire call sites (valid once a profile attached). */
    prof::CallSiteId siteUpdate_ = prof::noCallSite;
    prof::CallSiteId siteWal_ = prof::noCallSite;
};

} // namespace limit::workloads

#endif // LIMIT_WORKLOADS_OLTP_HH
