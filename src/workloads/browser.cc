#include "workloads/browser.hh"

#include "base/logging.hh"
#include "os/sysno.hh"

namespace limit::workloads {

BrowserLoop::BrowserLoop(sim::Machine &machine, os::Kernel &kernel,
                         const BrowserConfig &config, std::uint64_t seed)
    : machine_(machine), kernel_(kernel), config_(config), rng_(seed)
{
    domRegion_ = {addressSpace_.allocate(config.domNodes * 64, 4096),
                  config.domNodes * 64};
    nurseryRegion_ = {addressSpace_.allocate(config.nurseryBytes, 4096),
                      config.nurseryBytes};
    framebufferRegion_ = {addressSpace_.allocate(2 * 1024 * 1024, 4096),
                          2 * 1024 * 1024};
    imageRegion_ = {addressSpace_.allocate(1 * 1024 * 1024, 4096),
                    1 * 1024 * 1024};

    auto &regions = machine.regions();
    for (unsigned i = 0; i < numBrowserEvents; ++i) {
        handlerRegions_[i] = regions.intern(
            std::string("browser.") +
            browserEventName(static_cast<BrowserEvent>(i)));
    }
    queueMutex_ = std::make_unique<sync::Mutex>(
        addressSpace_.allocate(64, 64));
    queueCv_ = std::make_unique<sync::CondVar>(
        addressSpace_.allocate(64, 64));
    imageLock_ = std::make_unique<InstrumentedMutex>(
        addressSpace_.allocate(64, 64), "browser.image-cache", regions);
}

void
BrowserLoop::attachProfiler(pec::RegionProfiler *profiler)
{
    profiler_ = profiler;
    imageLock_->attachProfiler(profiler);
}

void
BrowserLoop::attachSyncProfile(prof::SyncProfile *sync)
{
    if (sync != nullptr)
        siteDecode_ = sync->internSite("BrowserLoop::helperBody/decode-insert");
    imageLock_->attachSyncProfile(sync);
}

void
BrowserLoop::spawn()
{
    mainTid_ = kernel_.spawn(
        "browser-main", [this](sim::Guest &g) -> sim::Task<void> {
            co_await mainBody(g);
        });
    for (unsigned i = 0; i < config_.helpers; ++i) {
        tids_.push_back(kernel_.spawn(
            "browser-decode" + std::to_string(i),
            [this](sim::Guest &g) -> sim::Task<void> {
                co_await helperBody(g);
            }));
    }
}

std::uint64_t
BrowserLoop::totalEvents() const
{
    std::uint64_t total = 0;
    for (auto h : handled_)
        total += h;
    return total;
}

BrowserEvent
BrowserLoop::pickEvent(Rng &rng) const
{
    unsigned total = 0;
    for (auto w : config_.weights)
        total += w;
    std::uint64_t draw = rng.below(total);
    for (unsigned i = 0; i < numBrowserEvents; ++i) {
        if (draw < config_.weights[i])
            return static_cast<BrowserEvent>(i);
        draw -= config_.weights[i];
    }
    return BrowserEvent::Input;
}

sim::Task<void>
BrowserLoop::mainBody(sim::Guest &g)
{
    while (!g.shouldStop()) {
        // Idle until work arrives, then drain the burst that has
        // accumulated (browsers process batches per wakeup).
        co_await g.syscall(os::sysSleep, {config_.idleGap, 0, 0, 0});
        const unsigned burst =
            6 + static_cast<unsigned>(g.rng().below(20));
        for (unsigned i = 0; i < burst; ++i) {
            if (g.shouldStop())
                break;
            const BrowserEvent e = pickEvent(g.rng());
            const sim::RegionId region =
                handlerRegions_[static_cast<unsigned>(e)];
            if (profiler_)
                co_await profiler_->enter(g, region);
            else if (config_.markRegions)
                co_await g.regionEnter(region);
            co_await handleEvent(g, e);
            if (profiler_)
                co_await profiler_->exit(g, region);
            else if (config_.markRegions)
                co_await g.regionExit();
            ++handled_[static_cast<unsigned>(e)];
        }
    }
    // Release any helper parked on an empty decode queue.
    co_await queueCv_->broadcast(g);
}

sim::Task<void>
BrowserLoop::handleEvent(sim::Guest &g, BrowserEvent e)
{
    switch (e) {
      case BrowserEvent::Input: {
        // Hit-test a handful of DOM nodes, update focus state.
        Rng &rng = g.rng();
        for (int i = 0; i < 3; ++i) {
            const std::uint64_t node = rng.below(config_.domNodes);
            co_await g.load(domRegion_.base + node * 64);
        }
        co_await g.compute(180);
        break;
      }
      case BrowserEvent::Timer:
        co_await g.compute(320);
        break;
      case BrowserEvent::Script:
        co_await scriptHandler(g);
        break;
      case BrowserEvent::Layout:
        co_await layoutHandler(g);
        break;
      case BrowserEvent::Paint:
        co_await paintHandler(g);
        break;
      default:
        panic("unknown browser event");
    }
}

sim::Task<void>
BrowserLoop::scriptHandler(sim::Guest &g)
{
    Rng &rng = g.rng();
    // JS-flavoured execution: branchy, allocation-heavy.
    sim::ComputeProfile js;
    js.branchFrac = 0.24;
    js.mispredictRate = 0.06;

    const unsigned allocs = 8 + static_cast<unsigned>(rng.below(24));
    for (unsigned i = 0; i < allocs; ++i) {
        co_await g.compute(60, js);
        // Bump-allocate a 64B object in the nursery.
        const sim::Addr obj =
            nurseryRegion_.base +
            (nurseryFill_ * 64) % nurseryRegion_.bytes;
        ++nurseryFill_;
        co_await g.store(obj);
        if (nurseryFill_ % config_.allocsPerGc == 0) {
            // Minor GC: trace the live nursery (dependent walk).
            ++gcs_;
            mem::PointerChaseStream chase(nurseryRegion_,
                                          g.rng().fork());
            const unsigned live =
                static_cast<unsigned>(nurseryRegion_.bytes / 64 / 8);
            for (unsigned n = 0; n < live; ++n) {
                const sim::Addr a = chase.next();
                co_await g.load(a);
                co_await g.compute(6);
            }
        }
    }
}

sim::Task<void>
BrowserLoop::layoutHandler(sim::Guest &g)
{
    Rng &rng = g.rng();
    // Reflow a subtree: walk 64-256 DOM nodes with sibling locality.
    const std::uint64_t start = rng.below(config_.domNodes);
    const unsigned span = 64 + static_cast<unsigned>(rng.below(192));
    for (unsigned i = 0; i < span; ++i) {
        const std::uint64_t node = (start + i) % config_.domNodes;
        co_await g.load(domRegion_.base + node * 64);
        co_await g.compute(22); // style resolution + box math
    }
    co_await g.compute(400); // finalize geometry
}

sim::Task<void>
BrowserLoop::paintHandler(sim::Guest &g)
{
    // Rasterize a band of the framebuffer: streaming stores.
    for (unsigned i = 0; i < 96; ++i) {
        const sim::Addr px =
            framebufferRegion_.base +
            (fbOffset_ % framebufferRegion_.bytes);
        fbOffset_ += 8;
        co_await g.store(px);
        co_await g.compute(8);
    }
    if (g.rng().chance(config_.decodeProb)) {
        // Queue an image decode for the helper pool.
        co_await queueMutex_->lock(g);
        decodeQueue_.push_back(++queued_);
        co_await queueMutex_->unlock(g);
        co_await queueCv_->signal(g);
    }
}

sim::Task<void>
BrowserLoop::helperBody(sim::Guest &g)
{
    for (;;) {
        bool have_job = false;

        co_await queueMutex_->lock(g);
        for (;;) {
            if (!decodeQueue_.empty()) {
                decodeQueue_.pop_front();
                have_job = true;
                break;
            }
            if (g.shouldStop())
                break;
            co_await queueCv_->wait(g, *queueMutex_);
        }
        co_await queueMutex_->unlock(g);

        if (!have_job) {
            co_await queueCv_->broadcast(g);
            co_return;
        }

        // Decode: streaming reads over the compressed image, compute-
        // heavy inverse transform, then publish under the cache lock.
        mem::StrideStream stream(imageRegion_, 8);
        for (unsigned i = 0; i < 512; ++i) {
            const sim::Addr a = stream.next();
            co_await g.load(a);
            co_await g.compute(14);
        }
        co_await imageLock_->lock(g, siteDecode_);
        co_await g.store(imageRegion_.base);
        co_await g.compute(90); // insert into the decoded-image cache
        co_await imageLock_->unlock(g);
        ++decodes_;
    }
}

} // namespace limit::workloads
