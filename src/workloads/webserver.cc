#include "workloads/webserver.hh"

#include "base/logging.hh"
#include "os/sysno.hh"

namespace limit::workloads {

WebServer::WebServer(sim::Machine &machine, os::Kernel &kernel,
                     const WebConfig &config, std::uint64_t seed)
    : machine_(machine), kernel_(kernel), config_(config), rng_(seed)
{
    fatal_if(config.workers == 0, "web server with no workers");
    fatal_if(config.documents == 0, "web server with no documents");

    cacheRegion_ = {addressSpace_.allocate(config.documents * 256, 4096),
                    config.documents * 256};
    logRegion_ = {addressSpace_.allocate(1 << 20, 4096), 1 << 20};

    auto &regions = machine.regions();
    queueMutex_ = std::make_unique<sync::Mutex>(
        addressSpace_.allocate(64, 64));
    queueCv_ = std::make_unique<sync::CondVar>(
        addressSpace_.allocate(64, 64));
    for (unsigned i = 0; i < config.cacheStripes; ++i) {
        cacheLocks_.push_back(std::make_unique<InstrumentedMutex>(
            addressSpace_.allocate(64, 64), "web.cache-lock", regions));
    }
    logLock_ = std::make_unique<InstrumentedMutex>(
        addressSpace_.allocate(64, 64), "web.access-log", regions);
}

void
WebServer::attachProfiler(pec::RegionProfiler *profiler)
{
    for (auto &c : cacheLocks_)
        c->attachProfiler(profiler);
    logLock_->attachProfiler(profiler);
}

void
WebServer::attachSyncProfile(prof::SyncProfile *sync)
{
    if (sync != nullptr) {
        siteProbe_ = sync->internSite("WebServer::handleRequest/cache-probe");
        siteInstall_ =
            sync->internSite("WebServer::handleRequest/cache-install");
        siteLog_ = sync->internSite("WebServer::handleRequest/access-log");
    }
    for (auto &c : cacheLocks_)
        c->attachSyncProfile(sync);
    logLock_->attachSyncProfile(sync);
}

void
WebServer::spawn()
{
    acceptorTid_ = kernel_.spawn(
        "web-acceptor", [this](sim::Guest &g) -> sim::Task<void> {
            co_await acceptorBody(g);
        });
    for (unsigned i = 0; i < config_.workers; ++i) {
        tids_.push_back(kernel_.spawn(
            "web-worker" + std::to_string(i),
            [this](sim::Guest &g) -> sim::Task<void> {
                co_await workerBody(g);
            }));
    }
}

sim::Task<void>
WebServer::acceptorBody(sim::Guest &g)
{
    while (!g.shouldStop()) {
        // Wait for the next arrival, then accept() it.
        co_await g.syscall(os::sysSleep, {config_.arrivalGap, 0, 0, 0});
        co_await g.syscall(os::sysIoSubmit,
                           {config_.netLatency, 0, 0, 0});
        co_await g.compute(150); // allocate connection state

        co_await queueMutex_->lock(g);
        connQueue_.push_back(++accepted_);
        co_await queueMutex_->unlock(g);
        co_await queueCv_->signal(g);
    }
    // Drain: wake every worker so they can observe the stop flag.
    co_await queueCv_->broadcast(g);
}

sim::Task<void>
WebServer::workerBody(sim::Guest &g)
{
    for (;;) {
        std::uint64_t conn = 0;
        bool have_conn = false;

        co_await queueMutex_->lock(g);
        for (;;) {
            if (!connQueue_.empty()) {
                conn = connQueue_.front();
                connQueue_.pop_front();
                have_conn = true;
                break;
            }
            if (g.shouldStop())
                break;
            co_await queueCv_->wait(g, *queueMutex_);
        }
        co_await queueMutex_->unlock(g);

        if (!have_conn) {
            // Help any sibling still parked on the condvar.
            co_await queueCv_->broadcast(g);
            co_return;
        }
        co_await handleRequest(g, conn);
        ++served_;
    }
}

sim::Task<void>
WebServer::handleRequest(sim::Guest &g, std::uint64_t conn)
{
    Rng &rng = g.rng();

    // Read the request from the socket and parse it.
    co_await g.syscall(os::sysIoSubmit, {config_.netLatency, 0, 0, 0});
    co_await g.compute(3200); // header parse: branchy string work

    const std::uint64_t doc = rng.zipf(config_.documents, config_.skew);
    const sim::Addr doc_addr = cacheRegion_.base + doc * 256;
    InstrumentedMutex &stripe =
        *cacheLocks_[doc % config_.cacheStripes];

    // Probe the content cache (short critical section).
    bool hit;
    co_await stripe.lock(g, siteProbe_);
    co_await g.load(doc_addr);
    co_await g.compute(70); // hash lookup + LRU touch
    hit = rng.chance(config_.hitRatio);
    co_await stripe.unlock(g);

    if (!hit) {
        ++cacheMisses_;
        // Fetch from disk, then install in the cache.
        co_await g.syscall(os::sysIoSubmit,
                           {config_.diskLatency, 0, 0, 0});
        co_await stripe.lock(g, siteInstall_);
        co_await g.store(doc_addr);
        co_await g.store(doc_addr + 64);
        co_await g.compute(120);
        co_await stripe.unlock(g);
    }

    // Build and send the response.
    co_await g.compute(2400);
    co_await g.load(doc_addr + 128);
    co_await g.syscall(os::sysIoSubmit, {config_.netLatency, 0, 0, 0});

    // Append to the access log (global lock, very short hold).
    co_await logLock_->lock(g, siteLog_);
    const sim::Addr slot =
        logRegion_.base + (logOffset_ % logRegion_.bytes);
    logOffset_ += 64;
    co_await g.store(slot);
    co_await g.compute(40 + (conn % 7)); // format the log line
    co_await logLock_->unlock(g);
}

} // namespace limit::workloads
