/**
 * @file
 * BrowserLoop: a Firefox-class synthetic browser.
 *
 * A main thread services a stream of heterogeneous, mostly very short
 * event handlers (input, timers, JS execution with nursery allocation
 * and minor GC, layout, paint) while a small pool of helper threads
 * decodes images from a work queue and shares an image cache. Short
 * heterogeneous handlers are exactly the behaviour the paper says is
 * invisible to sampling profilers but trivially characterized with
 * precise counting.
 */

#ifndef LIMIT_WORKLOADS_BROWSER_HH
#define LIMIT_WORKLOADS_BROWSER_HH

#include <array>
#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "mem/address_stream.hh"
#include "os/kernel.hh"
#include "sync/condvar.hh"
#include "workloads/instrumented_mutex.hh"

namespace limit::workloads {

/** Event categories the main loop dispatches. */
enum class BrowserEvent : std::uint8_t {
    Input = 0,
    Timer,
    Script,
    Layout,
    Paint,
    NumKinds,
};

inline constexpr unsigned numBrowserEvents =
    static_cast<unsigned>(BrowserEvent::NumKinds);

/** Display name for reports. */
constexpr const char *
browserEventName(BrowserEvent e)
{
    switch (e) {
      case BrowserEvent::Input: return "input";
      case BrowserEvent::Timer: return "timer";
      case BrowserEvent::Script: return "script";
      case BrowserEvent::Layout: return "layout";
      case BrowserEvent::Paint: return "paint";
      default: return "?";
    }
}

/** Browser parameters. */
struct BrowserConfig
{
    unsigned helpers = 2;
    /** Relative weights of the event mix (index = BrowserEvent). */
    std::array<unsigned, numBrowserEvents> weights{30, 20, 25, 15, 10};
    /** DOM size in nodes (layout working set). */
    std::uint64_t domNodes = 1 << 14;
    /** Nursery (young generation) size in bytes. */
    std::uint64_t nurseryBytes = 512 * 1024;
    /** Script handler allocations before a minor GC. */
    unsigned allocsPerGc = 4096;
    /** Probability a paint event also queues an image decode. */
    double decodeProb = 0.25;
    /** Pause between main-loop events (idle waiting), in ticks. */
    sim::Tick idleGap = 2'000;
    /**
     * Push/pop handler regions even without an attached profiler so a
     * sampling profiler can attribute to them (comparison studies).
     */
    bool markRegions = false;
};

/** The browser: main loop + decode helpers. */
class BrowserLoop
{
  public:
    BrowserLoop(sim::Machine &machine, os::Kernel &kernel,
                const BrowserConfig &config, std::uint64_t seed);

    /** Instrument handlers (regions "browser.<kind>") and locks. */
    void attachProfiler(pec::RegionProfiler *profiler);

    /** Attribute lock traffic per call site into `sync`. */
    void attachSyncProfile(prof::SyncProfile *sync);

    void spawn();

    const BrowserConfig &config() const { return config_; }

    std::uint64_t eventsHandled(BrowserEvent e) const
    {
        return handled_[static_cast<unsigned>(e)];
    }
    std::uint64_t totalEvents() const;
    std::uint64_t decodesDone() const { return decodes_; }
    std::uint64_t minorGcs() const { return gcs_; }

    sim::RegionId handlerRegion(BrowserEvent e) const
    {
        return handlerRegions_[static_cast<unsigned>(e)];
    }
    InstrumentedMutex &imageCacheLock() { return *imageLock_; }

    sim::ThreadId mainTid() const { return mainTid_; }
    const std::vector<sim::ThreadId> &helperTids() const { return tids_; }

  private:
    sim::Task<void> mainBody(sim::Guest &g);
    sim::Task<void> helperBody(sim::Guest &g);
    sim::Task<void> handleEvent(sim::Guest &g, BrowserEvent e);
    sim::Task<void> scriptHandler(sim::Guest &g);
    sim::Task<void> layoutHandler(sim::Guest &g);
    sim::Task<void> paintHandler(sim::Guest &g);
    BrowserEvent pickEvent(Rng &rng) const;

    sim::Machine &machine_;
    os::Kernel &kernel_;
    BrowserConfig config_;
    Rng rng_;
    mem::AddressSpace addressSpace_;

    mem::Region domRegion_;
    mem::Region nurseryRegion_;
    mem::Region framebufferRegion_;
    mem::Region imageRegion_;
    std::uint64_t nurseryFill_ = 0; // allocations since last GC
    std::uint64_t fbOffset_ = 0;

    pec::RegionProfiler *profiler_ = nullptr;
    std::array<sim::RegionId, numBrowserEvents> handlerRegions_{};

    std::unique_ptr<sync::Mutex> queueMutex_; // uninstrumented: condvar
    std::unique_ptr<sync::CondVar> queueCv_;
    std::deque<std::uint64_t> decodeQueue_;
    std::unique_ptr<InstrumentedMutex> imageLock_;

    sim::ThreadId mainTid_ = sim::invalidThread;
    std::vector<sim::ThreadId> tids_;

    std::array<std::uint64_t, numBrowserEvents> handled_{};
    std::uint64_t decodes_ = 0;
    std::uint64_t gcs_ = 0;
    std::uint64_t queued_ = 0;

    prof::CallSiteId siteDecode_ = prof::noCallSite;
};

} // namespace limit::workloads

#endif // LIMIT_WORKLOADS_BROWSER_HH
