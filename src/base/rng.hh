/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Every stochastic component in the simulator owns a seeded Rng so that
 * whole-machine runs are bit-for-bit reproducible. The generator is
 * xoshiro256** (Blackman & Vigna), which is small, fast, and has no
 * dependence on libc state.
 */

#ifndef LIMIT_BASE_RNG_HH
#define LIMIT_BASE_RNG_HH

#include <cstdint>

#include "base/logging.hh"

namespace limit {

/**
 * xoshiro256** pseudo-random generator with convenience draws.
 *
 * Satisfies UniformRandomBitGenerator so it can be plugged into
 * standard distributions, though the member helpers cover the
 * simulator's needs without the libstdc++ distribution objects (whose
 * output is not specified across implementations).
 */
class Rng
{
  public:
    using result_type = std::uint64_t;

    /** Seed via splitmix64 so that small consecutive seeds diverge. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull)
    {
        std::uint64_t x = seed;
        for (auto &word : state_) {
            x += 0x9e3779b97f4a7c15ull;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
            word = z ^ (z >> 31);
        }
    }

    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~0ull; }

    /** Next raw 64-bit draw. */
    std::uint64_t
    operator()()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). bound must be nonzero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        panic_if(bound == 0, "Rng::below(0)");
        // Lemire's nearly-divisionless bounded draw, biased by at most
        // 2^-64 which is immaterial for simulation workloads.
        const unsigned __int128 m =
            static_cast<unsigned __int128>((*this)()) * bound;
        return static_cast<std::uint64_t>(m >> 64);
    }

    /** Uniform integer in [lo, hi], inclusive. */
    std::uint64_t
    range(std::uint64_t lo, std::uint64_t hi)
    {
        panic_if(lo > hi, "Rng::range with lo > hi");
        return lo + below(hi - lo + 1);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli draw with probability p (clamped to [0,1]). */
    bool
    chance(double p)
    {
        if (p <= 0.0)
            return false;
        if (p >= 1.0)
            return true;
        return uniform() < p;
    }

    /**
     * Geometric draw: number of failures before the first success with
     * success probability p. Used for, e.g., instructions until the
     * next branch mispredict. p must be in (0, 1].
     */
    std::uint64_t
    geometric(double p)
    {
        panic_if(!(p > 0.0) || p > 1.0, "Rng::geometric(p) needs 0<p<=1");
        if (p >= 1.0)
            return 0;
        std::uint64_t n = 0;
        // Inverted-CDF would need log(); keep it allocation and
        // libm-free for the hot path by rejecting in blocks.
        while (!chance(p)) {
            ++n;
            if (n > (1ull << 32))
                panic("Rng::geometric runaway; p too small: ", p);
        }
        return n;
    }

    /**
     * Zipf-like draw over [0, n): rank r selected with probability
     * proportional to 1/(r+1)^s, via rejection sampling against the
     * harmonic envelope. Deterministic given the stream.
     */
    std::uint64_t
    zipf(std::uint64_t n, double s);

    /** Fork an independent stream (hash of a fresh draw). */
    Rng
    fork()
    {
        return Rng((*this)() ^ 0xa0761d6478bd642full);
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4];
};

} // namespace limit

#endif // LIMIT_BASE_RNG_HH
