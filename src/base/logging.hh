/**
 * @file
 * gem5-style status and error reporting helpers.
 *
 * The distinction mirrors gem5's logging conventions:
 *   - panic():  an internal invariant was violated (a bug in LiMiT++
 *               itself). Aborts so a debugger/core dump can be taken.
 *   - fatal():  the simulation cannot continue because of a user error
 *               (bad configuration, invalid argument). Exits with 1.
 *   - warn():   something is modelled approximately; results nearby may
 *               deserve scrutiny.
 *   - inform(): plain status output.
 */

#ifndef LIMIT_BASE_LOGGING_HH
#define LIMIT_BASE_LOGGING_HH

#include <cstdint>
#include <sstream>
#include <string>
#include <string_view>

namespace limit {

/** Verbosity levels for runtime log filtering. */
enum class LogLevel : std::uint8_t {
    Silent = 0,
    Warn = 1,
    Inform = 2,
    Debug = 3,
};

/** Set the global log threshold; messages above it are suppressed. */
void setLogLevel(LogLevel level);

/** Current global log threshold. */
LogLevel logLevel();

namespace detail {

[[noreturn]] void panicImpl(const char *file, int line, const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line, const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);
void debugImpl(const std::string &msg);

/** Concatenate a mixed argument pack into a string via operator<<. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    if constexpr (sizeof...(Args) > 0)
        (os << ... << std::forward<Args>(args));
    return os.str();
}

} // namespace detail

/** Abort with a message; use for internal invariant violations only. */
#define panic(...) \
    ::limit::detail::panicImpl(__FILE__, __LINE__, \
                               ::limit::detail::concat(__VA_ARGS__))

/** Exit(1) with a message; use for unrecoverable user/config errors. */
#define fatal(...) \
    ::limit::detail::fatalImpl(__FILE__, __LINE__, \
                               ::limit::detail::concat(__VA_ARGS__))

/** panic() unless the condition holds. */
#define panic_if(cond, ...)                                          \
    do {                                                             \
        if (cond) {                                                  \
            ::limit::detail::panicImpl(                              \
                __FILE__, __LINE__,                                  \
                ::limit::detail::concat("condition '" #cond "': ",   \
                                        __VA_ARGS__));               \
        }                                                            \
    } while (0)

/** fatal() unless the condition holds. */
#define fatal_if(cond, ...)                                          \
    do {                                                             \
        if (cond) {                                                  \
            ::limit::detail::fatalImpl(                              \
                __FILE__, __LINE__,                                  \
                ::limit::detail::concat("condition '" #cond "': ",   \
                                        __VA_ARGS__));               \
        }                                                            \
    } while (0)

/** Non-fatal advisory message. */
template <typename... Args>
void
warn(Args &&...args)
{
    if (logLevel() >= LogLevel::Warn)
        detail::warnImpl(detail::concat(std::forward<Args>(args)...));
}

/** Plain status message. */
template <typename... Args>
void
inform(Args &&...args)
{
    if (logLevel() >= LogLevel::Inform)
        detail::informImpl(detail::concat(std::forward<Args>(args)...));
}

/** Developer-facing trace message. */
template <typename... Args>
void
debugLog(Args &&...args)
{
    if (logLevel() >= LogLevel::Debug)
        detail::debugImpl(detail::concat(std::forward<Args>(args)...));
}

} // namespace limit

#endif // LIMIT_BASE_LOGGING_HH
