#include "base/rng.hh"

#include <cmath>

namespace limit {

std::uint64_t
Rng::zipf(std::uint64_t n, double s)
{
    panic_if(n == 0, "Rng::zipf over empty range");
    if (n == 1)
        return 0;
    if (s <= 0.0)
        return below(n);

    // Rejection sampling against the continuous envelope
    // f(x) = x^-s on [1, n+1) (Devroye). Expected iterations is small
    // for the s in [0.5, 1.5] the workloads use.
    const double nd = static_cast<double>(n);
    for (int iter = 0; iter < 1024; ++iter) {
        double u = uniform();
        double x;
        if (s == 1.0) {
            x = std::exp(u * std::log(nd + 1.0));
        } else {
            const double t = std::pow(nd + 1.0, 1.0 - s);
            x = std::pow(u * (t - 1.0) + 1.0, 1.0 / (1.0 - s));
        }
        const auto k = static_cast<std::uint64_t>(x); // in [1, n]
        if (k < 1 || k > n)
            continue;
        const double ratio =
            std::pow(static_cast<double>(k) / x, s);
        if (uniform() <= ratio)
            return k - 1;
    }
    // Pathological parameters: fall back to uniform rather than spin.
    warn("Rng::zipf rejection fallback (n=", n, " s=", s, ")");
    return below(n);
}

} // namespace limit
