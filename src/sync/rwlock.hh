/**
 * @file
 * Futex-based readers-writer lock.
 *
 * State word: 0 = free, n in [1, writerBit) = n readers,
 * writerBit = exclusively held. Writers win no special preference;
 * both sides retry after futex wakes. MySQL-class workloads use this
 * for index locks (many readers, occasional structural writer).
 */

#ifndef LIMIT_SYNC_RWLOCK_HH
#define LIMIT_SYNC_RWLOCK_HH

#include <cstdint>

#include "sim/guest.hh"
#include "sim/task.hh"
#include "sim/types.hh"

namespace limit::sync {

/** Shared/exclusive lock for guest threads. */
class RwLock
{
  public:
    explicit RwLock(sim::Addr addr) : addr_(addr) {}

    /** Acquire shared; returns futexWait count (contention metric). */
    sim::Task<std::uint64_t> readLock(sim::Guest &g);
    sim::Task<void> readUnlock(sim::Guest &g);

    /** Acquire exclusive; returns futexWait count. */
    sim::Task<std::uint64_t> writeLock(sim::Guest &g);
    sim::Task<void> writeUnlock(sim::Guest &g);

    /** Host-side inspection. */
    std::uint64_t readersHost() const
    {
        return word_ == writerBit ? 0 : word_;
    }
    bool writerHost() const { return word_ == writerBit; }

    static constexpr std::uint64_t writerBit = 1ull << 32;

  private:
    std::uint64_t word_ = 0;
    sim::Addr addr_;
};

} // namespace limit::sync

#endif // LIMIT_SYNC_RWLOCK_HH
