/**
 * @file
 * Thin guest-side wrappers over the kernel futex syscalls.
 */

#ifndef LIMIT_SYNC_FUTEX_HH
#define LIMIT_SYNC_FUTEX_HH

#include <cstdint>

#include "os/sysno.hh"
#include "sim/guest.hh"
#include "sim/task.hh"

namespace limit::sync {

/**
 * Block until woken, provided *word still equals `expected`.
 * @return 0 when woken by a futexWake, 1 (EAGAIN) on value mismatch.
 */
inline sim::Task<std::uint64_t>
futexWait(sim::Guest &g, std::uint64_t *word, sim::Addr addr,
          std::uint64_t expected)
{
    const std::uint64_t r = co_await g.syscall(
        os::sysFutexWait,
        {reinterpret_cast<std::uint64_t>(word), expected, addr, 0});
    co_return r;
}

/** Wake up to `count` threads blocked on `word`; returns how many. */
inline sim::Task<std::uint64_t>
futexWake(sim::Guest &g, std::uint64_t *word, sim::Addr addr,
          std::uint64_t count)
{
    const std::uint64_t r = co_await g.syscall(
        os::sysFutexWake,
        {reinterpret_cast<std::uint64_t>(word), count, addr, 0});
    co_return r;
}

} // namespace limit::sync

#endif // LIMIT_SYNC_FUTEX_HH
