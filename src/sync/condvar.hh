/**
 * @file
 * Futex-based condition variable and barrier.
 */

#ifndef LIMIT_SYNC_CONDVAR_HH
#define LIMIT_SYNC_CONDVAR_HH

#include <cstdint>

#include "sim/guest.hh"
#include "sim/task.hh"
#include "sim/types.hh"
#include "sync/mutex.hh"

namespace limit::sync {

/** Sequence-counter condition variable (glibc style). */
class CondVar
{
  public:
    explicit CondVar(sim::Addr addr) : addr_(addr) {}

    /**
     * Atomically release `m` and sleep until signalled; re-acquires
     * `m` before returning. Callers must re-check their predicate
     * (spurious wakeups are possible, as with POSIX).
     */
    sim::Task<void> wait(sim::Guest &g, Mutex &m);

    /** Wake one waiter. */
    sim::Task<void> signal(sim::Guest &g);

    /** Wake all waiters. */
    sim::Task<void> broadcast(sim::Guest &g);

  private:
    std::uint64_t seq_ = 0;
    sim::Addr addr_;
};

/** Sense-reversing counting barrier. */
class Barrier
{
  public:
    Barrier(unsigned parties, sim::Addr addr)
        : parties_(parties), addr_(addr)
    {}

    /** Block until `parties` threads have arrived. */
    sim::Task<void> arrive(sim::Guest &g);

    unsigned parties() const { return parties_; }

  private:
    unsigned parties_;
    std::uint64_t count_ = 0;
    std::uint64_t generation_ = 0;
    sim::Addr addr_;
};

} // namespace limit::sync

#endif // LIMIT_SYNC_CONDVAR_HH
