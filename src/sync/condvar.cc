#include "sync/condvar.hh"

#include "sync/futex.hh"

namespace limit::sync {

sim::Task<void>
CondVar::wait(sim::Guest &g, Mutex &m)
{
    const std::uint64_t seq = co_await g.atomicLoad(&seq_, addr_);
    co_await m.unlock(g);
    co_await futexWait(g, &seq_, addr_, seq);
    co_await m.lock(g);
}

sim::Task<void>
CondVar::signal(sim::Guest &g)
{
    co_await g.atomicFetchAdd(&seq_, addr_, 1);
    co_await futexWake(g, &seq_, addr_, 1);
}

sim::Task<void>
CondVar::broadcast(sim::Guest &g)
{
    co_await g.atomicFetchAdd(&seq_, addr_, 1);
    co_await futexWake(g, &seq_, addr_, ~0ull);
}

sim::Task<void>
Barrier::arrive(sim::Guest &g)
{
    // co_await results go through named locals (GCC 12; see task.hh).
    const std::uint64_t gen =
        co_await g.atomicLoad(&generation_, addr_ + 8);
    const std::uint64_t prev =
        co_await g.atomicFetchAdd(&count_, addr_, 1);
    if (prev + 1 == parties_) {
        co_await g.atomicStore(&count_, addr_, 0);
        co_await g.atomicFetchAdd(&generation_, addr_ + 8, 1);
        co_await futexWake(g, &generation_, addr_ + 8, ~0ull);
        co_return;
    }
    for (;;) {
        const std::uint64_t cur =
            co_await g.atomicLoad(&generation_, addr_ + 8);
        if (cur != gen)
            break;
        co_await futexWait(g, &generation_, addr_ + 8, gen);
    }
}

} // namespace limit::sync
