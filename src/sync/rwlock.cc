#include "sync/rwlock.hh"

#include "sync/futex.hh"

// co_await results are bound to named locals before use; see the GCC 12
// note in sim/task.hh.

namespace limit::sync {

sim::Task<std::uint64_t>
RwLock::readLock(sim::Guest &g)
{
    std::uint64_t waits = 0;
    for (;;) {
        const std::uint64_t s = co_await g.atomicLoad(&word_, addr_);
        if (s != writerBit) {
            const std::uint64_t prev =
                co_await g.atomicCas(&word_, addr_, s, s + 1);
            if (prev == s)
                co_return waits;
            co_await g.compute(2); // CAS raced; brief pause and retry
            continue;
        }
        ++waits;
        co_await futexWait(g, &word_, addr_, writerBit);
    }
}

sim::Task<void>
RwLock::readUnlock(sim::Guest &g)
{
    const std::uint64_t old =
        co_await g.atomicFetchAdd(&word_, addr_,
                                  static_cast<std::uint64_t>(-1));
    if (old == 1) {
        // Last reader out: a writer may be sleeping.
        co_await futexWake(g, &word_, addr_, ~0ull);
    }
}

sim::Task<std::uint64_t>
RwLock::writeLock(sim::Guest &g)
{
    std::uint64_t waits = 0;
    for (;;) {
        const std::uint64_t s = co_await g.atomicLoad(&word_, addr_);
        if (s == 0) {
            const std::uint64_t prev =
                co_await g.atomicCas(&word_, addr_, 0, writerBit);
            if (prev == 0)
                co_return waits;
            co_await g.compute(2);
            continue;
        }
        ++waits;
        co_await futexWait(g, &word_, addr_, s);
    }
}

sim::Task<void>
RwLock::writeUnlock(sim::Guest &g)
{
    co_await g.atomicStore(&word_, addr_, 0);
    co_await futexWake(g, &word_, addr_, ~0ull);
}

} // namespace limit::sync
