#include "sync/mutex.hh"

#include "sync/futex.hh"

// NOTE: throughout this library, co_await results are always bound to
// named locals before being tested. GCC 12 miscompiles `co_await`
// expressions that appear directly inside controlling conditions
// (see sim/task.hh), so the pattern is a project-wide rule.

namespace limit::sync {

sim::Task<void>
SpinLock::lock(sim::Guest &g)
{
    for (;;) {
        // Test-and-set attempt.
        const std::uint64_t old =
            co_await g.atomicCas(&word_, addr_, 0, 1);
        if (old == 0)
            co_return;
        // Test loop: spin on plain loads until the lock looks free.
        for (;;) {
            const std::uint64_t v = co_await g.atomicLoad(&word_, addr_);
            if (v == 0)
                break;
            co_await g.compute(2); // pause
        }
    }
}

sim::Task<void>
SpinLock::unlock(sim::Guest &g)
{
    co_await g.atomicStore(&word_, addr_, 0);
}

sim::Task<std::uint64_t>
Mutex::lock(sim::Guest &g)
{
    acquisitions_.fetch_add(1, std::memory_order_relaxed);
    // Fast path: free -> locked.
    std::uint64_t c = co_await g.atomicCas(&word_, addr_, 0, 1);
    if (c == 0)
        co_return 0;

    // Slow path (Drepper's exchange variant): mark contended, sleep,
    // and re-take with the contended mark so unlock wakes a successor.
    std::uint64_t waits = 0;
    if (c != 2)
        c = co_await g.atomicExchange(&word_, addr_, 2);
    while (c != 0) {
        ++waits;
        co_await futexWait(g, &word_, addr_, 2);
        c = co_await g.atomicExchange(&word_, addr_, 2);
    }
    co_return waits;
}

sim::Task<void>
Mutex::unlock(sim::Guest &g)
{
    const std::uint64_t old = co_await g.atomicExchange(&word_, addr_, 0);
    if (old == 2)
        co_await futexWake(g, &word_, addr_, 1);
}

} // namespace limit::sync
