/**
 * @file
 * Guest-level mutual exclusion: spinlock and futex mutex.
 *
 * The futex mutex follows the classic three-state protocol (Drepper,
 * "Futexes Are Tricky"): 0 = free, 1 = locked, 2 = locked with
 * waiters. Uncontended acquire/release is a single CAS/exchange with
 * no kernel involvement — exactly the locking structure whose short
 * critical sections the paper's case studies characterize.
 */

#ifndef LIMIT_SYNC_MUTEX_HH
#define LIMIT_SYNC_MUTEX_HH

#include <atomic>
#include <cstdint>

#include "sim/guest.hh"
#include "sim/task.hh"
#include "sim/types.hh"

namespace limit::sync {

/** Test-and-test-and-set spinlock with pause backoff. */
class SpinLock
{
  public:
    /** @param addr simulated address of the lock word (cache model). */
    explicit SpinLock(sim::Addr addr) : addr_(addr) {}

    /** Acquire; spins in userspace until available. */
    sim::Task<void> lock(sim::Guest &g);

    /** Release. */
    sim::Task<void> unlock(sim::Guest &g);

    /** Host-side inspection (tests). */
    bool lockedHost() const { return word_ != 0; }

    sim::Addr addr() const { return addr_; }

  private:
    std::uint64_t word_ = 0;
    sim::Addr addr_;
};

/** Three-state futex mutex (sleeps in the kernel under contention). */
class Mutex
{
  public:
    explicit Mutex(sim::Addr addr) : addr_(addr) {}

    /**
     * Acquire.
     * @return number of futexWait syscalls performed (0 on the
     *         uncontended fast path) — handy for contention studies.
     */
    sim::Task<std::uint64_t> lock(sim::Guest &g);

    /** Release; wakes one waiter when contended. */
    sim::Task<void> unlock(sim::Guest &g);

    bool lockedHost() const { return word_ != 0; }
    bool contendedHost() const { return word_ == 2; }
    sim::Addr addr() const { return addr_; }

    /** Total acquisitions (host-side statistic, zero cost). */
    std::uint64_t
    acquisitions() const
    {
        return acquisitions_.load(std::memory_order_relaxed);
    }

  private:
    std::uint64_t word_ = 0;
    sim::Addr addr_;
    /**
     * Atomic (relaxed) because lock() bumps it from guest host code,
     * which may run on a leased core's worker thread while another
     * thread of the same workload runs elsewhere. A plain counter is
     * the exact shared-host-state hazard parallelSafe rules out — the
     * relaxed atomic keeps raw-Mutex workloads eligible.
     */
    std::atomic<std::uint64_t> acquisitions_{0};
};

} // namespace limit::sync

#endif // LIMIT_SYNC_MUTEX_HH
