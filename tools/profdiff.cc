/**
 * @file
 * profdiff: diff two limitpp report JSON files (profile, sensitivity
 * or timeline schema) and gate on guest-metric regressions — the
 * guest-side mirror of scripts/check_selfperf.py.
 *
 * Usage:
 *   profdiff [--gate PCT] [--out FILE] BASE[,BASE2,...] NEW[,NEW2,...]
 *
 * Each side is one or more report files (comma-separated, e.g. one
 * per seed); multiple files per side turn into min/max spread bands,
 * and only deltas whose bands do not overlap count against the gate.
 *
 * Exit codes: 0 = no gated regressions (a self-diff prints "No
 * deltas" and exits 0), 1 = at least one significant delta above
 * --gate, 2 = usage or I/O error.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "prof/profdiff.hh"

namespace {

int
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--gate PCT] [--out FILE] "
                 "BASE[,BASE...] NEW[,NEW...]\n",
                 argv0);
    return 2;
}

bool
readFile(const std::string &path, std::string &out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    std::ostringstream ss;
    ss << in.rdbuf();
    out = ss.str();
    return true;
}

std::vector<std::string>
splitList(const std::string &arg)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    while (start <= arg.size()) {
        const std::size_t comma = arg.find(',', start);
        const std::size_t end =
            comma == std::string::npos ? arg.size() : comma;
        if (end > start)
            out.push_back(arg.substr(start, end - start));
        if (comma == std::string::npos)
            break;
        start = comma + 1;
    }
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    double gate = 0.0;
    std::string outPath;
    std::vector<std::string> positional;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        }
        if (arg == "--gate" || arg == "--out") {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "profdiff: %s needs a value\n",
                             arg.c_str());
                return 2;
            }
            const char *value = argv[++i];
            if (arg == "--gate") {
                char *end = nullptr;
                gate = std::strtod(value, &end);
                if (end == value || *end != '\0' || gate < 0) {
                    std::fprintf(stderr,
                                 "profdiff: --gate needs a"
                                 " non-negative percentage, got"
                                 " '%s'\n",
                                 value);
                    return 2;
                }
            } else {
                outPath = value;
            }
            continue;
        }
        if (arg.rfind("--", 0) == 0) {
            std::fprintf(stderr, "profdiff: unknown flag '%s'\n",
                         arg.c_str());
            return usage(argv[0]);
        }
        positional.push_back(arg);
    }
    if (positional.size() != 2)
        return usage(argv[0]);

    auto loadSide = [](const std::string &list,
                       std::vector<std::string> &docs) {
        for (const auto &path : splitList(list)) {
            std::string body;
            if (!readFile(path, body)) {
                std::fprintf(stderr,
                             "profdiff: cannot read '%s'\n",
                             path.c_str());
                return false;
            }
            docs.push_back(std::move(body));
        }
        if (docs.empty()) {
            std::fprintf(stderr, "profdiff: empty file list '%s'\n",
                         list.c_str());
            return false;
        }
        return true;
    };

    std::vector<std::string> baseDocs, freshDocs;
    if (!loadSide(positional[0], baseDocs) ||
        !loadSide(positional[1], freshDocs)) {
        return 2;
    }

    limit::prof::DiffResult diff;
    std::string error;
    if (!limit::prof::diffReports(baseDocs, freshDocs, diff, &error)) {
        std::fprintf(stderr, "profdiff: %s\n", error.c_str());
        return 2;
    }

    const std::string md = diff.markdown(gate);
    if (!outPath.empty()) {
        std::ofstream out(outPath, std::ios::binary);
        out << md;
        if (!out) {
            std::fprintf(stderr, "profdiff: cannot write '%s'\n",
                         outPath.c_str());
            return 2;
        }
    }
    std::fputs(md.c_str(), stdout);

    const std::size_t over = diff.exceeding(gate);
    if (over > 0) {
        std::fprintf(stderr,
                     "profdiff: %zu metric(s) regressed beyond the"
                     " %.2f%% gate\n",
                     over, gate);
        return 1;
    }
    return 0;
}
