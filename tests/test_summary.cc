/**
 * @file
 * Unit tests for streaming summaries and exact-quantile samples.
 */

#include <gtest/gtest.h>

#include "stats/summary.hh"

namespace limit::stats {
namespace {

TEST(Summary, KnownMoments)
{
    Summary s;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(x);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.variance(), 4.0);
    EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(Summary, EmptyIsZero)
{
    Summary s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.variance(), 0.0);
}

TEST(Summary, SingleSampleVarianceZero)
{
    Summary s;
    s.add(3.0);
    EXPECT_EQ(s.variance(), 0.0);
    EXPECT_EQ(s.min(), 3.0);
    EXPECT_EQ(s.max(), 3.0);
}

TEST(Summary, MergeMatchesSequential)
{
    Summary all, a, b;
    for (int i = 0; i < 100; ++i) {
        const double x = i * 0.37 - 5;
        all.add(x);
        (i % 2 ? a : b).add(x);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
    EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
    EXPECT_EQ(a.min(), all.min());
    EXPECT_EQ(a.max(), all.max());
}

TEST(Summary, MergeWithEmpty)
{
    Summary a, empty;
    a.add(1.0);
    a.add(3.0);
    a.merge(empty);
    EXPECT_EQ(a.count(), 2u);
    Summary b;
    b.merge(a);
    EXPECT_EQ(b.count(), 2u);
    EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(Samples, ExactQuantiles)
{
    Samples s;
    for (int i = 1; i <= 100; ++i)
        s.add(i);
    EXPECT_DOUBLE_EQ(s.quantile(0.0), 1.0);
    EXPECT_DOUBLE_EQ(s.quantile(1.0), 100.0);
    EXPECT_NEAR(s.median(), 50.0, 1.0);
    EXPECT_NEAR(s.quantile(0.9), 90.0, 1.0);
}

TEST(Samples, QuantileAfterInterleavedAdds)
{
    Samples s;
    s.add(5.0);
    EXPECT_DOUBLE_EQ(s.median(), 5.0);
    s.add(1.0); // re-sorts lazily
    s.add(9.0);
    EXPECT_DOUBLE_EQ(s.median(), 5.0);
    EXPECT_DOUBLE_EQ(s.min(), 1.0);
}

TEST(Samples, ClearResets)
{
    Samples s;
    s.add(1.0);
    s.clear();
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.quantile(0.5), 0.0);
}

} // namespace
} // namespace limit::stats
