/**
 * @file
 * Unit tests for the cache hierarchy (latencies, event deltas,
 * atomic-coherence extras).
 */

#include <gtest/gtest.h>

#include "mem/hierarchy.hh"

namespace limit::mem {
namespace {

using sim::EventType;

HierarchyConfig
tinyConfig()
{
    HierarchyConfig cfg;
    cfg.l1d = {1024, 2, 64};
    cfg.l2 = {4096, 4, 64};
    cfg.llc = {16384, 4, 64};
    cfg.dtlb = {4, 4096};
    return cfg;
}

TEST(Hierarchy, ColdAccessGoesToMemory)
{
    CacheHierarchy h(2, tinyConfig());
    auto r = h.access(0, 0x100000, false, false);
    const auto &c = h.config();
    EXPECT_EQ(r.latency, c.tlbMissPenalty + c.memLatency);
    EXPECT_EQ(r.deltas[EventType::L1DMiss], 1u);
    EXPECT_EQ(r.deltas[EventType::L2Miss], 1u);
    EXPECT_EQ(r.deltas[EventType::LLCMiss], 1u);
    EXPECT_EQ(r.deltas[EventType::DTlbMiss], 1u);
}

TEST(Hierarchy, SecondAccessHitsL1)
{
    CacheHierarchy h(2, tinyConfig());
    h.access(0, 0x100000, false, false);
    auto r = h.access(0, 0x100000, false, false);
    EXPECT_EQ(r.latency, h.config().l1Latency);
    EXPECT_EQ(r.deltas[EventType::L1DMiss], 0u);
    EXPECT_EQ(r.deltas[EventType::DTlbMiss], 0u);
}

TEST(Hierarchy, OtherCoreMissesL1ButHitsLlc)
{
    CacheHierarchy h(2, tinyConfig());
    h.access(0, 0x100000, false, false); // fills core 0 L1/L2 and LLC
    auto r = h.access(1, 0x100000, false, false);
    const auto &c = h.config();
    EXPECT_EQ(r.deltas[EventType::L1DMiss], 1u);
    EXPECT_EQ(r.deltas[EventType::L2Miss], 1u);
    EXPECT_EQ(r.deltas[EventType::LLCMiss], 0u);
    EXPECT_EQ(r.latency, c.tlbMissPenalty + c.llcLatency);
}

TEST(Hierarchy, L1EvictionFallsBackToL2)
{
    CacheHierarchy h(1, tinyConfig());
    // tiny L1 = 16 lines; stream 64 lines to evict the first.
    for (int i = 0; i < 64; ++i)
        h.access(0, static_cast<sim::Addr>(i) * 64, false, false);
    auto r = h.access(0, 0, false, false); // line 0: out of L1, in L2
    EXPECT_EQ(r.deltas[EventType::L1DMiss], 1u);
    EXPECT_EQ(r.deltas[EventType::L2Miss], 0u);
}

TEST(Hierarchy, AtomicLocalVsRemoteCost)
{
    CacheHierarchy h(2, tinyConfig());
    const auto &c = h.config();
    // Warm the line on both cores so only the atomic extra differs.
    h.access(0, 0x1000, true, false);
    h.access(1, 0x1000, true, false);

    auto first = h.access(0, 0x1000, true, true); // no prior writer
    EXPECT_EQ(first.latency, c.l1Latency + c.atomicLocalExtra);

    auto local = h.access(0, 0x1000, true, true); // same core owns
    EXPECT_EQ(local.latency, c.l1Latency + c.atomicLocalExtra);

    auto remote = h.access(1, 0x1000, true, true); // stolen line
    EXPECT_EQ(remote.latency, c.l1Latency + c.atomicRemoteExtra);

    auto back = h.access(0, 0x1000, true, true); // stolen back
    EXPECT_EQ(back.latency, c.l1Latency + c.atomicRemoteExtra);
}

TEST(Hierarchy, FlushAllForgetsEverything)
{
    CacheHierarchy h(1, tinyConfig());
    h.access(0, 0x1000, false, false);
    h.flushAll();
    auto r = h.access(0, 0x1000, false, false);
    EXPECT_EQ(r.deltas[EventType::LLCMiss], 1u);
    EXPECT_EQ(r.deltas[EventType::DTlbMiss], 1u);
}

TEST(Hierarchy, PerCoreCachesAreIndependent)
{
    CacheHierarchy h(2, tinyConfig());
    h.access(0, 0x1000, false, false);
    EXPECT_TRUE(h.l1d(0).contains(0x1000));
    EXPECT_FALSE(h.l1d(1).contains(0x1000));
}

} // namespace
} // namespace limit::mem
