/**
 * @file
 * Unit tests for stats histograms.
 */

#include <gtest/gtest.h>

#include <limits>

#include "stats/hdr_histogram.hh"
#include "stats/histogram.hh"

namespace limit::stats {
namespace {

TEST(Log2Histogram, BucketMapping)
{
    Log2Histogram h(16);
    h.add(0);
    h.add(1);
    h.add(2);
    h.add(3);
    h.add(4);
    h.add(1023);
    h.add(1024);
    EXPECT_EQ(h.bucket(0), 2u); // 0 and 1
    EXPECT_EQ(h.bucket(1), 2u); // 2 and 3
    EXPECT_EQ(h.bucket(2), 1u); // 4
    EXPECT_EQ(h.bucket(9), 1u); // 1023
    EXPECT_EQ(h.bucket(10), 1u); // 1024
    EXPECT_EQ(h.totalCount(), 7u);
}

TEST(Log2Histogram, OverflowClampsToTopBucket)
{
    Log2Histogram h(4); // buckets 0..3, top covers >= 8
    h.add(1ull << 40);
    EXPECT_EQ(h.bucket(3), 1u);
}

TEST(Log2Histogram, WeightedAddAndMean)
{
    Log2Histogram h(16);
    h.add(8, 3);
    h.add(16, 1);
    EXPECT_EQ(h.totalCount(), 4u);
    EXPECT_DOUBLE_EQ(h.mean(), (8.0 * 3 + 16.0) / 4.0);
}

TEST(Log2Histogram, Merge)
{
    Log2Histogram a(16), b(16);
    a.add(4);
    b.add(4);
    b.add(100);
    a.merge(b);
    EXPECT_EQ(a.bucket(2), 2u);
    EXPECT_EQ(a.totalCount(), 3u);
}

TEST(Log2HistogramDeathTest, MergeLayoutMismatch)
{
    Log2Histogram a(16), b(8);
    EXPECT_DEATH(a.merge(b), "different layout");
}

TEST(Log2Histogram, QuantileMonotone)
{
    Log2Histogram h(32);
    for (std::uint64_t v = 1; v <= 4096; v *= 2)
        h.add(v, 10);
    const double q10 = h.quantile(0.1);
    const double q50 = h.quantile(0.5);
    const double q90 = h.quantile(0.9);
    EXPECT_LE(q10, q50);
    EXPECT_LE(q50, q90);
    EXPECT_GT(q90, 100.0);
}

TEST(Log2Histogram, ClearEmpties)
{
    Log2Histogram h(16);
    h.add(5);
    h.clear();
    EXPECT_EQ(h.totalCount(), 0u);
    EXPECT_EQ(h.render(), "(empty histogram)\n");
}

TEST(Log2Histogram, RenderShowsBars)
{
    Log2Histogram h(16);
    h.add(4, 100);
    h.add(64, 50);
    const std::string r = h.render(20);
    EXPECT_NE(r.find("[2^2, 2^3)"), std::string::npos);
    EXPECT_NE(r.find("100"), std::string::npos);
    EXPECT_NE(r.find('#'), std::string::npos);
}

TEST(LinearHistogram, BucketsAndTails)
{
    LinearHistogram h(0.0, 10.0, 10);
    h.add(-1.0);
    h.add(0.0);
    h.add(9.99);
    h.add(10.0);
    h.add(5.5);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 1u);
    EXPECT_EQ(h.bucket(0), 1u);
    EXPECT_EQ(h.bucket(9), 1u);
    EXPECT_EQ(h.bucket(5), 1u);
    EXPECT_EQ(h.totalCount(), 5u);
}

TEST(LinearHistogram, MeanIncludesTails)
{
    LinearHistogram h(0.0, 10.0, 5);
    h.add(20.0);
    h.add(0.0);
    EXPECT_DOUBLE_EQ(h.mean(), 10.0);
}

TEST(LinearHistogramDeathTest, BadGeometry)
{
    EXPECT_DEATH(LinearHistogram(1.0, 1.0, 4), "hi <= lo");
    EXPECT_DEATH(LinearHistogram(0.0, 1.0, 0), "zero buckets");
}

// ---------------------------------------------------------------------
// HdrHistogram (the exact, serializable histogram profiles use)
// ---------------------------------------------------------------------

constexpr std::uint64_t maxU64 = std::numeric_limits<std::uint64_t>::max();

TEST(HdrHistogram, ZeroAndMaxU64AreRepresentable)
{
    HdrHistogram h;
    h.add(0);
    h.add(maxU64);
    EXPECT_EQ(h.totalCount(), 2u);
    EXPECT_EQ(h.minValue(), 0u);
    EXPECT_EQ(h.maxValue(), maxU64);
    EXPECT_EQ(h.bucket(h.indexFor(0)), 1u);
    EXPECT_EQ(h.bucket(h.indexFor(maxU64)), 1u);
    // sum wraps (0 + max) but min/max/quantiles stay exact.
    EXPECT_EQ(h.quantile(0.0), 0u);
    EXPECT_EQ(h.quantile(1.0), maxU64);
}

TEST(HdrHistogram, ValuesBelowSubBucketRangeAreExact)
{
    HdrHistogram h(5); // one bucket per value below 2^5
    for (std::uint64_t v = 0; v < 32; ++v) {
        const unsigned idx = h.indexFor(v);
        EXPECT_EQ(h.bucketLo(idx), v);
        EXPECT_EQ(h.bucketHi(idx), v);
    }
}

TEST(HdrHistogram, BucketBoundsConsistentAtPowerOfTwoBoundaries)
{
    HdrHistogram h(5);
    const std::uint64_t probes[] = {
        31,        32,         33,         63,         64,
        65,        1023,       1024,       1025,       (1ull << 32) - 1,
        1ull << 32, (1ull << 32) + 1, (1ull << 63), maxU64 - 1, maxU64};
    for (const std::uint64_t v : probes) {
        const unsigned idx = h.indexFor(v);
        const std::uint64_t lo = h.bucketLo(idx);
        const std::uint64_t hi = h.bucketHi(idx);
        EXPECT_LE(lo, v) << v;
        EXPECT_GE(hi, v) << v;
        EXPECT_EQ(h.indexFor(lo), idx) << v;
        EXPECT_EQ(h.indexFor(hi), idx) << v;
        // Buckets tile the axis: the next bucket starts at hi + 1.
        if (idx + 1 < h.numBuckets() && hi != maxU64) {
            EXPECT_EQ(h.bucketLo(idx + 1), hi + 1) << v;
        }
    }
}

TEST(HdrHistogram, MergeOfDisjointAndOverlappingEqualsSinglePassFill)
{
    HdrHistogram a(5), b(5), whole(5);
    const std::uint64_t disjoint_a[] = {0, 7, 100, 1ull << 20};
    const std::uint64_t disjoint_b[] = {3, 999, 1ull << 40, maxU64};
    const std::uint64_t shared[] = {42, 42, 5000};
    for (const auto v : disjoint_a) {
        a.add(v);
        whole.add(v);
    }
    for (const auto v : disjoint_b) {
        b.add(v);
        whole.add(v);
    }
    for (const auto v : shared) {
        a.add(v, 2);
        b.add(v, 3);
        whole.add(v, 5);
    }
    a.merge(b);
    EXPECT_EQ(a, whole); // bucket-exact, including min/max/sum
    // Merging an empty histogram is a no-op.
    a.merge(HdrHistogram(5));
    EXPECT_EQ(a, whole);
}

TEST(HdrHistogramDeathTest, MergeLayoutMismatch)
{
    HdrHistogram a(5), b(6);
    EXPECT_DEATH(a.merge(b), "different layout");
}

TEST(HdrHistogram, PercentileMonotonicityAndRangeClamp)
{
    HdrHistogram h;
    std::uint64_t x = 88172645463325252ull; // xorshift64
    for (int i = 0; i < 10'000; ++i) {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        h.add(x % 1'000'000);
    }
    std::uint64_t prev = 0;
    for (int i = 0; i <= 100; ++i) {
        const std::uint64_t q = h.quantile(i / 100.0);
        EXPECT_GE(q, prev) << "q=" << i;
        EXPECT_GE(q, h.minValue());
        EXPECT_LE(q, h.maxValue());
        prev = q;
    }
}

TEST(HdrHistogram, QuantileExactForSingleValuedBuckets)
{
    HdrHistogram h(5);
    h.add(3, 10);
    h.add(7, 10);
    EXPECT_EQ(h.quantile(0.25), 3u);
    EXPECT_EQ(h.quantile(0.75), 7u);
    EXPECT_EQ(h.quantile(0.5), 3u); // 10th of 20 samples is still a 3
}

TEST(HdrHistogram, JsonRoundTrip)
{
    HdrHistogram h(7);
    h.add(0);
    h.add(1, 12);
    h.add(12345, 3);
    h.add(maxU64);
    const std::string json = h.toJson();
    HdrHistogram back;
    ASSERT_TRUE(HdrHistogram::fromJson(json, back));
    EXPECT_EQ(back, h);
    EXPECT_EQ(back.toJson(), json); // byte-identical re-serialization
}

TEST(HdrHistogram, JsonRoundTripEmpty)
{
    HdrHistogram h(5);
    HdrHistogram back(9); // overwritten, layout included
    ASSERT_TRUE(HdrHistogram::fromJson(h.toJson(), back));
    EXPECT_EQ(back, h);
}

TEST(HdrHistogram, MergeFullyDisjointBucketRanges)
{
    // a's values all land in sub-bucket-exact low buckets, b's in the
    // scaled top decades — no bucket index is shared, so the merge
    // must interleave two runs rather than add overlapping counts.
    HdrHistogram a(5), b(5), whole(5);
    for (std::uint64_t v : {0ull, 1ull, 7ull, 31ull}) {
        a.add(v, 2);
        whole.add(v, 2);
    }
    for (std::uint64_t v :
         {std::uint64_t{1} << 32, std::uint64_t{1} << 48, maxU64}) {
        b.add(v, 3);
        whole.add(v, 3);
    }
    a.merge(b);
    EXPECT_EQ(a, whole);
    EXPECT_EQ(a.minValue(), 0u);
    EXPECT_EQ(a.maxValue(), maxU64);
    EXPECT_EQ(a.totalCount(), 8u + 9u);
    // The low half is untouched by the high-range merge: rank
    // 0.25 * 17 = 4.25 falls past {0, 1} (cumulative 4) into 7.
    EXPECT_EQ(a.quantile(0.25), 7u);
}

TEST(HdrHistogram, MergeIntoEmptyAdoptsOther)
{
    HdrHistogram empty(6), full(6);
    full.add(17, 4);
    full.add(1 << 20);
    empty.merge(full);
    EXPECT_EQ(empty, full);
    EXPECT_EQ(empty.toJson(), full.toJson());
}

TEST(HdrHistogram, JsonRoundTripSingleBucket)
{
    HdrHistogram h(5);
    h.add(42, 7); // one bucket, weighted
    const std::string json = h.toJson();
    HdrHistogram back;
    ASSERT_TRUE(HdrHistogram::fromJson(json, back));
    EXPECT_EQ(back, h);
    EXPECT_EQ(back.toJson(), json);
    EXPECT_EQ(back.totalCount(), 7u);
    EXPECT_EQ(back.minValue(), 42u);
    EXPECT_EQ(back.maxValue(), 42u);
}

TEST(HdrHistogram, FromJsonRejectsMalformed)
{
    HdrHistogram out;
    const char *bad[] = {
        "",
        "{}",
        "not json",
        // bucket_bits out of range
        "{\"bucket_bits\":0,\"count\":0,\"sum\":0,\"min\":0,\"max\":0,"
        "\"buckets\":[]}",
        "{\"bucket_bits\":17,\"count\":0,\"sum\":0,\"min\":0,\"max\":0,"
        "\"buckets\":[]}",
        // count does not match the bucket sum
        "{\"bucket_bits\":5,\"count\":2,\"sum\":3,\"min\":3,\"max\":3,"
        "\"buckets\":[[3,1]]}",
        // buckets out of order
        "{\"bucket_bits\":5,\"count\":2,\"sum\":5,\"min\":2,\"max\":3,"
        "\"buckets\":[[3,1],[2,1]]}",
        // min inconsistent with the first bucket
        "{\"bucket_bits\":5,\"count\":1,\"sum\":3,\"min\":9,\"max\":3,"
        "\"buckets\":[[3,1]]}",
        // trailing garbage
        "{\"bucket_bits\":5,\"count\":1,\"sum\":3,\"min\":3,\"max\":3,"
        "\"buckets\":[[3,1]]}x",
    };
    for (const char *text : bad)
        EXPECT_FALSE(HdrHistogram::fromJson(text, out)) << text;
}

TEST(HdrHistogram, RenderLog2GroupsByMagnitude)
{
    HdrHistogram h;
    h.add(5, 100);
    h.add(6, 20); // same power of two as 5
    h.add(300, 7);
    const std::string r = h.renderLog2(20);
    EXPECT_NE(r.find("[2^2, 2^3)"), std::string::npos);
    EXPECT_NE(r.find("120"), std::string::npos); // 5s and 6s grouped
    EXPECT_NE(r.find("[2^8, 2^9)"), std::string::npos);
    EXPECT_EQ(HdrHistogram().renderLog2(), "(empty histogram)\n");
}

} // namespace
} // namespace limit::stats
