/**
 * @file
 * Unit tests for stats histograms.
 */

#include <gtest/gtest.h>

#include "stats/histogram.hh"

namespace limit::stats {
namespace {

TEST(Log2Histogram, BucketMapping)
{
    Log2Histogram h(16);
    h.add(0);
    h.add(1);
    h.add(2);
    h.add(3);
    h.add(4);
    h.add(1023);
    h.add(1024);
    EXPECT_EQ(h.bucket(0), 2u); // 0 and 1
    EXPECT_EQ(h.bucket(1), 2u); // 2 and 3
    EXPECT_EQ(h.bucket(2), 1u); // 4
    EXPECT_EQ(h.bucket(9), 1u); // 1023
    EXPECT_EQ(h.bucket(10), 1u); // 1024
    EXPECT_EQ(h.totalCount(), 7u);
}

TEST(Log2Histogram, OverflowClampsToTopBucket)
{
    Log2Histogram h(4); // buckets 0..3, top covers >= 8
    h.add(1ull << 40);
    EXPECT_EQ(h.bucket(3), 1u);
}

TEST(Log2Histogram, WeightedAddAndMean)
{
    Log2Histogram h(16);
    h.add(8, 3);
    h.add(16, 1);
    EXPECT_EQ(h.totalCount(), 4u);
    EXPECT_DOUBLE_EQ(h.mean(), (8.0 * 3 + 16.0) / 4.0);
}

TEST(Log2Histogram, Merge)
{
    Log2Histogram a(16), b(16);
    a.add(4);
    b.add(4);
    b.add(100);
    a.merge(b);
    EXPECT_EQ(a.bucket(2), 2u);
    EXPECT_EQ(a.totalCount(), 3u);
}

TEST(Log2HistogramDeathTest, MergeLayoutMismatch)
{
    Log2Histogram a(16), b(8);
    EXPECT_DEATH(a.merge(b), "different layout");
}

TEST(Log2Histogram, QuantileMonotone)
{
    Log2Histogram h(32);
    for (std::uint64_t v = 1; v <= 4096; v *= 2)
        h.add(v, 10);
    const double q10 = h.quantile(0.1);
    const double q50 = h.quantile(0.5);
    const double q90 = h.quantile(0.9);
    EXPECT_LE(q10, q50);
    EXPECT_LE(q50, q90);
    EXPECT_GT(q90, 100.0);
}

TEST(Log2Histogram, ClearEmpties)
{
    Log2Histogram h(16);
    h.add(5);
    h.clear();
    EXPECT_EQ(h.totalCount(), 0u);
    EXPECT_EQ(h.render(), "(empty histogram)\n");
}

TEST(Log2Histogram, RenderShowsBars)
{
    Log2Histogram h(16);
    h.add(4, 100);
    h.add(64, 50);
    const std::string r = h.render(20);
    EXPECT_NE(r.find("[2^2, 2^3)"), std::string::npos);
    EXPECT_NE(r.find("100"), std::string::npos);
    EXPECT_NE(r.find('#'), std::string::npos);
}

TEST(LinearHistogram, BucketsAndTails)
{
    LinearHistogram h(0.0, 10.0, 10);
    h.add(-1.0);
    h.add(0.0);
    h.add(9.99);
    h.add(10.0);
    h.add(5.5);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 1u);
    EXPECT_EQ(h.bucket(0), 1u);
    EXPECT_EQ(h.bucket(9), 1u);
    EXPECT_EQ(h.bucket(5), 1u);
    EXPECT_EQ(h.totalCount(), 5u);
}

TEST(LinearHistogram, MeanIncludesTails)
{
    LinearHistogram h(0.0, 10.0, 5);
    h.add(20.0);
    h.add(0.0);
    EXPECT_DOUBLE_EQ(h.mean(), 10.0);
}

TEST(LinearHistogramDeathTest, BadGeometry)
{
    EXPECT_DEATH(LinearHistogram(1.0, 1.0, 4), "hi <= lo");
    EXPECT_DEATH(LinearHistogram(0.0, 1.0, 0), "zero buckets");
}

} // namespace
} // namespace limit::stats
